// Benchmarks: one per table/figure of the paper (running the corresponding
// experiment harness at reduced scale — run cmd/experiments for full-scale
// reproductions) plus micro-benchmarks of the kernels the paper's
// complexity claims rest on (SpMM, factorized summarization, the
// graph-size-independent DCE optimization, LinBP propagation).
package factorgraph_test

import (
	"testing"

	"factorgraph"
	"factorgraph/internal/core"
	"factorgraph/internal/dense"
	"factorgraph/internal/experiments"
	"factorgraph/internal/gen"
	"factorgraph/internal/hashimoto"
	"factorgraph/internal/labels"
	"factorgraph/internal/propagation"
)

// benchCfg shrinks the experiment harness so every figure bench completes
// in seconds; shapes (who wins, scaling slopes) are preserved. The
// dataset-replica figures need a gentler scale: Cora has 2708 nodes and 7
// classes, so dividing by 40 leaves too few nodes per class.
func benchCfg(id string) experiments.Config {
	scale := 40
	switch id {
	case "fig7", "fig7d", "fig8", "fig12", "fig13", "fig14":
		scale = 8
	}
	return experiments.Config{Scale: scale, Reps: 1, Seed: 7, MaxEdges: 50_000, Quiet: true}
}

func benchFigure(b *testing.B, id string) {
	b.Helper()
	cfg := benchCfg(id)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one bench per paper table/figure ---

func BenchmarkFig3a(b *testing.B) { benchFigure(b, "fig3a") }
func BenchmarkFig3b(b *testing.B) { benchFigure(b, "fig3b") }
func BenchmarkFig5a(b *testing.B) { benchFigure(b, "fig5a") }
func BenchmarkFig5b(b *testing.B) { benchFigure(b, "fig5b") }
func BenchmarkFig6a(b *testing.B) { benchFigure(b, "fig6a") }
func BenchmarkFig6b(b *testing.B) { benchFigure(b, "fig6b") }
func BenchmarkFig6c(b *testing.B) { benchFigure(b, "fig6c") }
func BenchmarkFig6d(b *testing.B) { benchFigure(b, "fig6d") }
func BenchmarkFig6e(b *testing.B) { benchFigure(b, "fig6e") }
func BenchmarkFig6f(b *testing.B) { benchFigure(b, "fig6f") }
func BenchmarkFig6g(b *testing.B) { benchFigure(b, "fig6g") }
func BenchmarkFig6h(b *testing.B) { benchFigure(b, "fig6h") }
func BenchmarkFig6i(b *testing.B) { benchFigure(b, "fig6i") }
func BenchmarkFig6j(b *testing.B) { benchFigure(b, "fig6j") }
func BenchmarkFig6k(b *testing.B) { benchFigure(b, "fig6k") }
func BenchmarkFig6l(b *testing.B) { benchFigure(b, "fig6l") }
func BenchmarkFig7(b *testing.B)  { benchFigure(b, "fig7") }
func BenchmarkFig7d(b *testing.B) { benchFigure(b, "fig7d") }
func BenchmarkFig8(b *testing.B)  { benchFigure(b, "fig8") }
func BenchmarkFig10(b *testing.B) { benchFigure(b, "fig10") }
func BenchmarkFig12(b *testing.B) { benchFigure(b, "fig12") }
func BenchmarkFig13(b *testing.B) { benchFigure(b, "fig13") }
func BenchmarkFig14(b *testing.B) { benchFigure(b, "fig14") }

// --- ablation benches for the design choices DESIGN.md calls out ---

func BenchmarkBreakdown(b *testing.B)         { benchFigure(b, "breakdown") }
func BenchmarkAblationEC(b *testing.B)        { benchFigure(b, "ablation-ec") }
func BenchmarkAblationNB(b *testing.B)        { benchFigure(b, "ablation-nb") }
func BenchmarkAblationBP(b *testing.B)        { benchFigure(b, "ablation-bp") }
func BenchmarkAblationOptimizer(b *testing.B) { benchFigure(b, "ablation-optimizer") }

// --- kernel micro-benchmarks ---

// benchGraph builds a standard n=10k, d=25, k=3 workload once.
func benchGraph(b *testing.B, f float64) (*gen.Result, []int) {
	b.Helper()
	res, err := gen.Generate(gen.Config{
		N: 10000, M: 125000, Alpha: gen.Balanced(3),
		H: core.HFromSkew(3), Dist: gen.PowerLaw{Exponent: 0.3}, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	seeds, err := factorgraph.SampleSeeds(res.Labels, 3, f, 5)
	if err != nil {
		b.Fatal(err)
	}
	return res, seeds
}

// BenchmarkSpMM measures W×X, the inner kernel of both summarization and
// propagation (125k edges, k=3).
func BenchmarkSpMM(b *testing.B) {
	res, seeds := benchGraph(b, 0.1)
	x, err := labels.Matrix(seeds, 3)
	if err != nil {
		b.Fatal(err)
	}
	out := dense.New(res.Graph.N, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res.Graph.Adj.MulDenseInto(out, x)
	}
}

// BenchmarkSummarize measures Algorithm 4.4: all ℓmax=5 non-backtracking
// sketches in O(mkℓmax) — the paper's Example 4.6 kernel.
func BenchmarkSummarize(b *testing.B) {
	res, seeds := benchGraph(b, 0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Summarize(res.Graph.Adj, seeds, 3, core.DefaultSummaryOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDCEOptimize measures the second stage of DCEr alone (10
// restarts): its cost is independent of the graph size — the paper's
// central scalability claim.
func BenchmarkDCEOptimize(b *testing.B) {
	res, seeds := benchGraph(b, 0.01)
	sums, err := core.Summarize(res.Graph.Adj, seeds, 3, core.DefaultSummaryOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateDCE(sums, core.DefaultDCErOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateDCEr measures the full two-step DCEr pipeline
// (summaries + optimization).
func BenchmarkEstimateDCEr(b *testing.B) {
	res, seeds := benchGraph(b, 0.01)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := factorgraph.EstimateDCEr(res.Graph, seeds, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLinBP measures 10 propagation iterations (the denominator of
// the paper's "estimation is 28× faster than labeling" claim).
func BenchmarkLinBP(b *testing.B) {
	res, seeds := benchGraph(b, 0.01)
	x, err := labels.Matrix(seeds, 3)
	if err != nil {
		b.Fatal(err)
	}
	h := core.HFromSkew(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := propagation.LinBP(res.Graph.Adj, x, h, propagation.DefaultLinBPOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerate measures planted-graph generation (125k edges).
func BenchmarkGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Generate(gen.Config{
			N: 10000, M: 125000, Alpha: gen.Balanced(3),
			H: core.HFromSkew(3), Dist: gen.PowerLaw{Exponent: 0.3}, Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNBCounting contrasts the three ways this repo can count
// non-backtracking paths on the same ~2.5k-edge graph: the factorized
// sketches (Algorithm 4.4, n×k intermediates), the explicit recurrence on
// n×n sparse matrices (Prop. 4.3), and the 2m-state Hashimoto matrix —
// quantifying the paper's §2.6/§4.6 size argument.
func BenchmarkNBCounting(b *testing.B) {
	res, err := gen.Generate(gen.Config{
		N: 500, M: 2500, Alpha: gen.Balanced(3),
		H: core.HFromSkew(3), Dist: gen.Uniform{}, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	seeds, err := factorgraph.SampleSeeds(res.Labels, 3, 0.1, 5)
	if err != nil {
		b.Fatal(err)
	}
	const lmax = 4
	b.Run("factorized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.Summarize(res.Graph.Adj, seeds, 3, core.SummaryOptions{LMax: lmax, NonBacktracking: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("explicit-recurrence", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.ExplicitNBPowers(res.Graph.Adj, lmax); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hashimoto", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h, err := hashimoto.New(res.Graph.Adj)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := h.NBPathCounts(res.Graph.N, lmax); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMCEProjection measures the graph-size-independent MCE
// projection (Eq. 12).
func BenchmarkMCEProjection(b *testing.B) {
	res, seeds := benchGraph(b, 0.1)
	sums, err := core.Summarize(res.Graph.Adj, seeds, 3, core.SummaryOptions{LMax: 1, NonBacktracking: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.EstimateMCE(sums, core.MCEOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
