// Command benchdiff compares benchmark artifacts between two runs and
// fails when the new one regresses: CI runs it against the previous
// commit's artifacts so a performance regression breaks the build instead
// of sliding by unnoticed. Two artifact pairs are understood:
//
//   - loadgen serve reports (BENCH_serve.json): the gate is the classify
//     p95 (and the patch p95 when both reports carry one) — new_p95 must
//     not exceed old_p95 × (1 + max-regress). QPS is reported for context
//     but not gated: it conflates client and server effects on shared CI
//     runners.
//
//   - residual-path reports (BENCH_residual.json, emitted by
//     TestResidualPatchQuerySpeedup under BENCH_RESIDUAL_OUT): the gate is
//     the WORK RATIO — edges the o(Δ) patch touched over edges a full
//     propagation scans. It is deterministic, so the gate cannot flake on
//     a noisy runner; the wall-clock speedup is reported for context only.
//
//   - mutation-workload reports (BENCH_mutate.json, emitted by loadgen
//     -mutate-frac): the gate is the PATCH /edges mutation p95 —
//     new_p95 must not exceed old_p95 × (1 + max-regress) — so a
//     regression in the streaming-mutation hot path (delta overlay,
//     residual repropagation, compaction) breaks the build.
//
//   - kernel reports (BENCH_kernel.json, emitted by
//     TestKernelThroughputArtifact under BENCH_KERNEL_OUT): the gates are
//     the blocked-SpMM effective GB/s (must not drop by more than max-regress
//     vs the baseline) and the full-propagation seconds (must not grow by
//     more than max-regress) — the two numbers the locality/tiling/
//     auto-tune work optimizes.
//
//   - re-estimation reports (BENCH_reestimate.json, emitted by
//     TestReestimateSpeedArtifact under BENCH_REESTIMATE_OUT): the gate is
//     STRUCTURAL -- a Reestimate on a dirty delta overlay must have forced
//     zero compactions and zero summary rebuilds (the o(Δ) sketch-update
//     claim), which is deterministic. The wall-clock speedup over a cold
//     estimate is reported for context only.
//
//     benchdiff -old baseline/BENCH_serve.json -new BENCH_serve.json
//     benchdiff -old prev.json -new cur.json -max-regress 0.25 \
//     -old-residual baseline/BENCH_residual.json -new-residual BENCH_residual.json \
//     -old-mutate baseline/BENCH_mutate.json -new-mutate BENCH_mutate.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
)

// benchReport is the subset of the loadgen report the diff reads.
type benchReport struct {
	QPS       float64 `json:"qps"`
	LatencyMS struct {
		P95    float64 `json:"p95"`
		Sample int     `json:"samples"`
	} `json:"latency_ms"`
	PatchLatencyMS *struct {
		P95    float64 `json:"p95"`
		Sample int     `json:"samples"`
	} `json:"patch_latency_ms"`
}

// residualReport is the subset of the residual-path artifact the diff reads.
type residualReport struct {
	WorkRatio float64 `json:"work_ratio"`
	Speedup   float64 `json:"speedup"`
}

// reestimateReport is the o(Δ) re-estimation artifact: structural counters
// proving the sketch path ran (no compaction, no summary rebuild), plus
// context-only timings.
type reestimateReport struct {
	Mutations            int     `json:"mutations"`
	SketchUpdates        int64   `json:"sketch_updates"`
	CompactionsDuring    int64   `json:"compactions_during"`
	SummarizationsDuring int64   `json:"summarizations_during"`
	ReestimateMS         float64 `json:"reestimate_ms"`
	ColdEstimateMS       float64 `json:"cold_estimate_ms"`
	Speedup              float64 `json:"speedup"`
}

// kernelReport is the subset of the kernel-throughput artifact the diff
// reads: the blocked SpMM's effective bandwidth and the end-to-end
// propagation seconds, plus context fields.
type kernelReport struct {
	Nodes              int     `json:"nodes"`
	Edges              int     `json:"edges"`
	SpmmSimpleGBps     float64 `json:"spmm_simple_gbps"`
	SpmmBlockedGBps    float64 `json:"spmm_blocked_gbps"`
	SpmmF32GBps        float64 `json:"spmm_f32_gbps"`
	SpmmSpeedup        float64 `json:"spmm_speedup"`
	PropagationSeconds float64 `json:"propagation_seconds"`
}

// mutateReport is the subset of the mutation-workload artifact the diff
// reads: the loadgen report's mutation latency percentiles.
type mutateReport struct {
	QPS             float64 `json:"qps"`
	MutateLatencyMS *struct {
		P95    float64 `json:"p95"`
		Sample int     `json:"samples"`
	} `json:"mutate_latency_ms"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run() error {
	oldPath := flag.String("old", "", "baseline report (previous commit's BENCH_serve.json)")
	newPath := flag.String("new", "BENCH_serve.json", "fresh report")
	oldResidual := flag.String("old-residual", "", "baseline residual-path report (BENCH_residual.json)")
	newResidual := flag.String("new-residual", "", "fresh residual-path report")
	oldMutate := flag.String("old-mutate", "", "baseline mutation-workload report (BENCH_mutate.json)")
	newMutate := flag.String("new-mutate", "", "fresh mutation-workload report")
	oldReest := flag.String("old-reestimate", "", "baseline re-estimation report (BENCH_reestimate.json); context only")
	newReest := flag.String("new-reestimate", "", "fresh re-estimation report")
	oldKernel := flag.String("old-kernel", "", "baseline kernel-throughput report (BENCH_kernel.json)")
	newKernel := flag.String("new-kernel", "", "fresh kernel-throughput report")
	maxRegress := flag.Float64("max-regress", 0.25, "maximum tolerated p95/work-ratio growth (0.25 = +25%)")
	allowMissing := flag.Bool("allow-missing-old", false, "exit 0 for comparisons whose baseline file does not exist (first run)")
	flag.Parse()

	if *oldPath == "" {
		return errors.New("-old is required")
	}
	var failures []error
	oldRep, err := load[benchReport](*oldPath)
	switch {
	case err == nil:
		newRep, err := load[benchReport](*newPath)
		if err != nil {
			return err
		}
		if err := compare(oldRep, newRep, *maxRegress, os.Stdout); err != nil {
			failures = append(failures, err)
		}
	case *allowMissing && errors.Is(err, os.ErrNotExist):
		fmt.Printf("benchdiff: no baseline at %s; nothing to compare\n", *oldPath)
	default:
		return err
	}
	if *newResidual != "" {
		if *oldResidual == "" {
			return errors.New("-new-residual requires -old-residual")
		}
		oldRes, err := load[residualReport](*oldResidual)
		switch {
		case err == nil:
			newRes, err := load[residualReport](*newResidual)
			if err != nil {
				return err
			}
			if err := compareResidual(oldRes, newRes, *maxRegress, os.Stdout); err != nil {
				failures = append(failures, err)
			}
		case *allowMissing && errors.Is(err, os.ErrNotExist):
			fmt.Printf("benchdiff: no residual baseline at %s; nothing to compare\n", *oldResidual)
		default:
			return err
		}
	}
	if *newMutate != "" {
		if *oldMutate == "" {
			return errors.New("-new-mutate requires -old-mutate")
		}
		oldMut, err := load[mutateReport](*oldMutate)
		switch {
		case err == nil:
			newMut, err := load[mutateReport](*newMutate)
			if err != nil {
				return err
			}
			if err := compareMutate(oldMut, newMut, *maxRegress, os.Stdout); err != nil {
				failures = append(failures, err)
			}
		case *allowMissing && errors.Is(err, os.ErrNotExist):
			fmt.Printf("benchdiff: no mutation baseline at %s; nothing to compare\n", *oldMutate)
		default:
			return err
		}
	}
	if *newKernel != "" {
		if *oldKernel == "" {
			return errors.New("-new-kernel requires -old-kernel")
		}
		oldKer, err := load[kernelReport](*oldKernel)
		switch {
		case err == nil:
			newKer, err := load[kernelReport](*newKernel)
			if err != nil {
				return err
			}
			if err := compareKernel(oldKer, newKer, *maxRegress, os.Stdout); err != nil {
				failures = append(failures, err)
			}
		case *allowMissing && errors.Is(err, os.ErrNotExist):
			fmt.Printf("benchdiff: no kernel baseline at %s; nothing to compare\n", *oldKernel)
		default:
			return err
		}
	}
	if *newReest != "" {
		newRep, err := load[reestimateReport](*newReest)
		if err != nil {
			return err
		}
		var oldRep *reestimateReport
		if *oldReest != "" {
			oldRep, err = load[reestimateReport](*oldReest)
			switch {
			case err == nil:
			case *allowMissing && errors.Is(err, os.ErrNotExist):
				fmt.Printf("benchdiff: no re-estimation baseline at %s; gating structure only\n", *oldReest)
				oldRep = nil
			default:
				return err
			}
		}
		if err := compareReestimate(oldRep, newRep, os.Stdout); err != nil {
			failures = append(failures, err)
		}
	}
	if len(failures) > 0 {
		return errors.Join(failures...)
	}
	return nil
}

// compareReestimate gates the o(Δ) re-estimation claim structurally: a
// Reestimate over a dirty overlay must not have compacted the topology or
// rebuilt the neighborhood summaries -- both counters are deterministic, so
// the gate cannot flake. Timings are printed for context only (they measure
// the runner); the baseline, when present, is shown for trend reading.
func compareReestimate(oldRep, newRep *reestimateReport, w *os.File) error {
	if oldRep != nil {
		fmt.Fprintf(w, "reestimate: %.3fms → %.3fms over %d→%d mutations (context only, speedup %.1fx → %.1fx)\n",
			oldRep.ReestimateMS, newRep.ReestimateMS, oldRep.Mutations, newRep.Mutations,
			oldRep.Speedup, newRep.Speedup)
	} else {
		fmt.Fprintf(w, "reestimate: %.3fms over %d mutations (cold estimate %.3fms, speedup %.1fx; context only)\n",
			newRep.ReestimateMS, newRep.Mutations, newRep.ColdEstimateMS, newRep.Speedup)
	}
	fmt.Fprintf(w, "reestimate structure: %d sketch updates, %d compactions, %d summary rebuilds during mutation+reestimate\n",
		newRep.SketchUpdates, newRep.CompactionsDuring, newRep.SummarizationsDuring)
	if newRep.CompactionsDuring != 0 {
		return fmt.Errorf("reestimate forced %d compaction(s): the o(Δ) path fell back to merging the overlay", newRep.CompactionsDuring)
	}
	if newRep.SummarizationsDuring != 0 {
		return fmt.Errorf("reestimate rebuilt summaries %d time(s): the incremental sketch cache was dropped", newRep.SummarizationsDuring)
	}
	if newRep.Mutations > 0 && newRep.SketchUpdates == 0 {
		return errors.New("reestimate applied no sketch updates despite mutations: the incremental path never ran")
	}
	fmt.Fprintln(w, "benchdiff: o(Δ) re-estimation structure intact")
	return nil
}

// compareKernel gates the SpMM effective bandwidth (warns on shrink past
// the budget) and the end-to-end propagation seconds (warns on growth past
// it); the float32 tier and the blocked-over-simple speedup are printed for
// context. Different graph dimensions between the reports make the numbers
// incomparable and fail loudly rather than gating noise.
func compareKernel(oldKer, newKer *kernelReport, maxRegress float64, w *os.File) error {
	if oldKer.Nodes != newKer.Nodes || oldKer.Edges != newKer.Edges {
		return fmt.Errorf("kernel reports measure different graphs (%d nodes/%d edges vs %d/%d); refusing to gate",
			oldKer.Nodes, oldKer.Edges, newKer.Nodes, newKer.Edges)
	}
	fmt.Fprintf(w, "spmm blocked: %.2f GB/s → %.2f GB/s (%+.1f%%, limit -%.0f%%; simple %.2f → %.2f, f32 %.2f → %.2f, speedup %.2fx → %.2fx)\n",
		oldKer.SpmmBlockedGBps, newKer.SpmmBlockedGBps, pct(oldKer.SpmmBlockedGBps, newKer.SpmmBlockedGBps), maxRegress*100,
		oldKer.SpmmSimpleGBps, newKer.SpmmSimpleGBps, oldKer.SpmmF32GBps, newKer.SpmmF32GBps,
		oldKer.SpmmSpeedup, newKer.SpmmSpeedup)
	var failures []string
	if oldKer.SpmmBlockedGBps > 0 && newKer.SpmmBlockedGBps < oldKer.SpmmBlockedGBps*(1-maxRegress) {
		failures = append(failures, fmt.Sprintf("blocked SpMM throughput regressed %.2f → %.2f GB/s (>%.0f%%)",
			oldKer.SpmmBlockedGBps, newKer.SpmmBlockedGBps, maxRegress*100))
	}
	fmt.Fprintf(w, "propagation: %.3fs → %.3fs (%+.1f%%, limit +%.0f%%)\n",
		oldKer.PropagationSeconds, newKer.PropagationSeconds,
		pct(oldKer.PropagationSeconds, newKer.PropagationSeconds), maxRegress*100)
	if oldKer.PropagationSeconds > 0 && newKer.PropagationSeconds > oldKer.PropagationSeconds*(1+maxRegress) {
		failures = append(failures, fmt.Sprintf("propagation regressed %.3fs → %.3fs (>%.0f%%)",
			oldKer.PropagationSeconds, newKer.PropagationSeconds, maxRegress*100))
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d kernel regression(s): %v", len(failures), failures)
	}
	fmt.Fprintln(w, "benchdiff: kernel within budget")
	return nil
}

// compareMutate gates the streaming-mutation p95 like compare gates the
// classify/patch p95s. A report without mutation latencies (mutate-frac
// was 0) cannot be gated and fails loudly rather than silently passing.
func compareMutate(oldRep, newRep *mutateReport, maxRegress float64, w *os.File) error {
	if oldRep.MutateLatencyMS == nil || newRep.MutateLatencyMS == nil {
		return errors.New("mutation report carries no mutate_latency_ms (was loadgen run with -mutate-frac > 0?)")
	}
	oldP95, newP95 := oldRep.MutateLatencyMS.P95, newRep.MutateLatencyMS.P95
	fmt.Fprintf(w, "mutate p95: %.3fms → %.3fms (%+.1f%%, limit +%.0f%%)\n",
		oldP95, newP95, pct(oldP95, newP95), maxRegress*100)
	if oldP95 > 0 && newP95 > oldP95*(1+maxRegress) {
		return fmt.Errorf("mutate p95 regressed %.3fms → %.3fms (>%.0f%%): the streaming-mutation hot path slowed down",
			oldP95, newP95, maxRegress*100)
	}
	fmt.Fprintln(w, "benchdiff: mutation path within budget")
	return nil
}

func load[T any](path string) (*T, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r T
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// compare gates new against old, writing a human-readable summary to w and
// returning an error on regression.
func compare(oldRep, newRep *benchReport, maxRegress float64, w *os.File) error {
	fmt.Fprintf(w, "qps: %.1f → %.1f (%+.1f%%)\n",
		oldRep.QPS, newRep.QPS, pct(oldRep.QPS, newRep.QPS))
	var failures []string
	check := func(name string, oldP95, newP95 float64) {
		fmt.Fprintf(w, "%s p95: %.3fms → %.3fms (%+.1f%%, limit +%.0f%%)\n",
			name, oldP95, newP95, pct(oldP95, newP95), maxRegress*100)
		if oldP95 > 0 && newP95 > oldP95*(1+maxRegress) {
			failures = append(failures,
				fmt.Sprintf("%s p95 regressed %.3fms → %.3fms (>%.0f%%)", name, oldP95, newP95, maxRegress*100))
		}
	}
	check("classify", oldRep.LatencyMS.P95, newRep.LatencyMS.P95)
	if oldRep.PatchLatencyMS != nil && newRep.PatchLatencyMS != nil {
		check("patch", oldRep.PatchLatencyMS.P95, newRep.PatchLatencyMS.P95)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d regression(s): %v", len(failures), failures)
	}
	fmt.Fprintln(w, "benchdiff: serve within budget")
	return nil
}

// compareResidual gates the residual path's deterministic work ratio; the
// wall-clock speedup is printed for context but never gated (it measures
// the runner as much as the code).
func compareResidual(oldRes, newRes *residualReport, maxRegress float64, w *os.File) error {
	fmt.Fprintf(w, "residual speedup: %.1fx → %.1fx (context only)\n", oldRes.Speedup, newRes.Speedup)
	fmt.Fprintf(w, "residual work ratio: %.6f → %.6f (%+.1f%%, limit +%.0f%%)\n",
		oldRes.WorkRatio, newRes.WorkRatio, pct(oldRes.WorkRatio, newRes.WorkRatio), maxRegress*100)
	if oldRes.WorkRatio > 0 && newRes.WorkRatio > oldRes.WorkRatio*(1+maxRegress) {
		return fmt.Errorf("residual work ratio regressed %.6f → %.6f (>%.0f%%): the o(Δ) patch path is touching more of the graph",
			oldRes.WorkRatio, newRes.WorkRatio, maxRegress*100)
	}
	fmt.Fprintln(w, "benchdiff: residual path within budget")
	return nil
}

func pct(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV * 100
}
