// Command benchdiff compares two loadgen reports (BENCH_serve.json) and
// fails when the new one regresses: CI runs it against the previous
// commit's artifact so a serving-latency regression breaks the build
// instead of sliding by unnoticed.
//
//	benchdiff -old baseline/BENCH_serve.json -new BENCH_serve.json
//	benchdiff -old prev.json -new cur.json -max-regress 0.25
//
// The gate is the classify p95 (and the patch p95 when both reports carry
// one): new_p95 must not exceed old_p95 × (1 + max-regress). QPS is
// reported for context but not gated — it conflates client and server
// effects on shared CI runners.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
)

// benchReport is the subset of the loadgen report the diff reads.
type benchReport struct {
	QPS       float64 `json:"qps"`
	LatencyMS struct {
		P95    float64 `json:"p95"`
		Sample int     `json:"samples"`
	} `json:"latency_ms"`
	PatchLatencyMS *struct {
		P95    float64 `json:"p95"`
		Sample int     `json:"samples"`
	} `json:"patch_latency_ms"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run() error {
	oldPath := flag.String("old", "", "baseline report (previous commit's BENCH_serve.json)")
	newPath := flag.String("new", "BENCH_serve.json", "fresh report")
	maxRegress := flag.Float64("max-regress", 0.25, "maximum tolerated p95 growth (0.25 = +25%)")
	allowMissing := flag.Bool("allow-missing-old", false, "exit 0 when the baseline file does not exist (first run)")
	flag.Parse()

	if *oldPath == "" {
		return errors.New("-old is required")
	}
	oldRep, err := load(*oldPath)
	if err != nil {
		if *allowMissing && errors.Is(err, os.ErrNotExist) {
			fmt.Printf("benchdiff: no baseline at %s; nothing to compare\n", *oldPath)
			return nil
		}
		return err
	}
	newRep, err := load(*newPath)
	if err != nil {
		return err
	}
	return compare(oldRep, newRep, *maxRegress, os.Stdout)
}

func load(path string) (*benchReport, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// compare gates new against old, writing a human-readable summary to w and
// returning an error on regression.
func compare(oldRep, newRep *benchReport, maxRegress float64, w *os.File) error {
	fmt.Fprintf(w, "qps: %.1f → %.1f (%+.1f%%)\n",
		oldRep.QPS, newRep.QPS, pct(oldRep.QPS, newRep.QPS))
	var failures []string
	check := func(name string, oldP95, newP95 float64) {
		fmt.Fprintf(w, "%s p95: %.3fms → %.3fms (%+.1f%%, limit +%.0f%%)\n",
			name, oldP95, newP95, pct(oldP95, newP95), maxRegress*100)
		if oldP95 > 0 && newP95 > oldP95*(1+maxRegress) {
			failures = append(failures,
				fmt.Sprintf("%s p95 regressed %.3fms → %.3fms (>%.0f%%)", name, oldP95, newP95, maxRegress*100))
		}
	}
	check("classify", oldRep.LatencyMS.P95, newRep.LatencyMS.P95)
	if oldRep.PatchLatencyMS != nil && newRep.PatchLatencyMS != nil {
		check("patch", oldRep.PatchLatencyMS.P95, newRep.PatchLatencyMS.P95)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d regression(s): %v", len(failures), failures)
	}
	fmt.Fprintln(w, "benchdiff: within budget")
	return nil
}

func pct(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV * 100
}
