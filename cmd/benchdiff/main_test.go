package main

import (
	"os"
	"path/filepath"
	"testing"
)

func report(qp95, pp95 float64) *benchReport {
	r := &benchReport{QPS: 100}
	r.LatencyMS.P95 = qp95
	if pp95 > 0 {
		r.PatchLatencyMS = &struct {
			P95    float64 `json:"p95"`
			Sample int     `json:"samples"`
		}{P95: pp95}
	}
	return r
}

func TestCompare(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	// Within budget: +20% under a 25% limit.
	if err := compare(report(10, 0), report(12, 0), 0.25, devnull); err != nil {
		t.Errorf("+20%% flagged under 25%% budget: %v", err)
	}
	// Over budget.
	if err := compare(report(10, 0), report(12.6, 0), 0.25, devnull); err == nil {
		t.Error("+26% not flagged under 25% budget")
	}
	// Patch p95 gated when both sides have it.
	if err := compare(report(10, 5), report(10, 7), 0.25, devnull); err == nil {
		t.Error("patch p95 +40% not flagged")
	}
	// Patch p95 ignored when the baseline predates mixed workloads.
	if err := compare(report(10, 0), report(10, 7), 0.25, devnull); err != nil {
		t.Errorf("patch p95 without baseline flagged: %v", err)
	}
	// Improvements always pass.
	if err := compare(report(10, 5), report(5, 2), 0.25, devnull); err != nil {
		t.Errorf("improvement flagged: %v", err)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "b.json")
	blob := `{"qps": 50.5, "latency_ms": {"p95": 3.25, "samples": 100}, "patch_latency_ms": {"p95": 9.5, "samples": 10}}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := load[benchReport](path)
	if err != nil {
		t.Fatal(err)
	}
	if r.QPS != 50.5 || r.LatencyMS.P95 != 3.25 || r.PatchLatencyMS == nil || r.PatchLatencyMS.P95 != 9.5 {
		t.Errorf("loaded %+v", r)
	}
	if _, err := load[benchReport](filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file did not error")
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load[benchReport](path); err == nil {
		t.Error("bad JSON did not error")
	}
}

func residual(workRatio, speedup float64) *residualReport {
	return &residualReport{WorkRatio: workRatio, Speedup: speedup}
}

func TestCompareResidual(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	// Within budget: +20% work ratio under a 25% limit.
	if err := compareResidual(residual(0.001, 30), residual(0.0012, 28), 0.25, devnull); err != nil {
		t.Errorf("+20%% work ratio flagged under 25%% budget: %v", err)
	}
	// Over budget: the o(Δ) path touching 30% more edges fails.
	if err := compareResidual(residual(0.001, 30), residual(0.0013, 35), 0.25, devnull); err == nil {
		t.Error("+30% work ratio not flagged")
	}
	// Speedup is context only: a halved speedup with a flat work ratio
	// (noisy runner) must not fail the build.
	if err := compareResidual(residual(0.001, 30), residual(0.001, 15), 0.25, devnull); err != nil {
		t.Errorf("wall-clock speedup drop flagged despite flat work ratio: %v", err)
	}
	// Improvements always pass.
	if err := compareResidual(residual(0.001, 30), residual(0.0004, 60), 0.25, devnull); err != nil {
		t.Errorf("improvement flagged: %v", err)
	}
}

func mutate(p95 float64) *mutateReport {
	r := &mutateReport{QPS: 100}
	if p95 > 0 {
		r.MutateLatencyMS = &struct {
			P95    float64 `json:"p95"`
			Sample int     `json:"samples"`
		}{P95: p95, Sample: 50}
	}
	return r
}

func TestCompareMutate(t *testing.T) {
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	// Within budget: +20% under a 25% limit.
	if err := compareMutate(mutate(4), mutate(4.8), 0.25, devnull); err != nil {
		t.Errorf("+20%% flagged under 25%% budget: %v", err)
	}
	// Over budget.
	if err := compareMutate(mutate(4), mutate(5.1), 0.25, devnull); err == nil {
		t.Error("+27.5% not flagged under 25% budget")
	}
	// Improvements pass.
	if err := compareMutate(mutate(4), mutate(2), 0.25, devnull); err != nil {
		t.Errorf("improvement flagged: %v", err)
	}
	// A report without mutation latencies must fail loudly, not pass.
	if err := compareMutate(mutate(0), mutate(4), 0.25, devnull); err == nil {
		t.Error("missing mutate_latency_ms not flagged")
	}
}
