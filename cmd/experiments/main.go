// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig3a
//	experiments -run all -scale 10 -reps 1
//
// Each experiment prints the rows/series of the corresponding figure; see
// DESIGN.md for the per-experiment index and EXPERIMENTS.md for recorded
// paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"factorgraph/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	run := flag.String("run", "", "experiment id to run, or 'all'")
	scale := flag.Int("scale", 1, "divide the paper's graph sizes by this factor")
	reps := flag.Int("reps", 3, "repetitions averaged per data point")
	seed := flag.Uint64("seed", 1, "base RNG seed")
	maxEdges := flag.Int("maxedges", 1_000_000, "largest graph in scalability sweeps")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}
	if *run == "" {
		flag.Usage()
		os.Exit(2)
	}
	cfg := experiments.Config{
		Scale: *scale, Reps: *reps, Seed: *seed, MaxEdges: *maxEdges,
		Quiet: *quiet, Progress: os.Stderr,
	}
	ids := []string{*run}
	if *run == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		tab, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		tab.Print(os.Stdout)
	}
}
