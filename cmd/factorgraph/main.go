// Command factorgraph is the end-to-end CLI for the reproduction: generate
// planted graphs, estimate compatibility matrices from sparse labels, and
// propagate labels.
//
// Usage:
//
//	factorgraph gen       -n 10000 -m 125000 -k 3 -skew 3 -powerlaw -edges g.tsv -labels l.tsv
//	factorgraph estimate  -edges g.tsv -labels seeds.tsv -k 3 -method dcer
//	factorgraph propagate -edges g.tsv -labels seeds.tsv -k 3 -method dcer -out pred.tsv
//	factorgraph stats     -edges g.tsv
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"factorgraph"
	"factorgraph/internal/dense"
	"factorgraph/internal/graph"
	"factorgraph/internal/labels"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "estimate":
		err = cmdEstimate(os.Args[2:])
	case "propagate":
		err = cmdPropagate(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "summarize":
		err = cmdSummarize(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "factorgraph:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: factorgraph <command> [flags]

commands:
  gen        generate a synthetic graph with planted compatibilities
  estimate   estimate the compatibility matrix from sparse labels
  propagate  estimate + label all nodes with LinBP
  summarize  print the factorized path sketches P(l)
  stats      print graph statistics`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	n := fs.Int("n", 10000, "number of nodes")
	m := fs.Int("m", 125000, "number of edges")
	k := fs.Int("k", 3, "number of classes")
	skew := fs.Float64("skew", 3, "compatibility skew h (max/min ratio)")
	alphaStr := fs.String("alpha", "", "comma-separated class fractions (default balanced)")
	powerlaw := fs.Bool("powerlaw", false, "power-law degree distribution")
	seed := fs.Uint64("seed", 1, "RNG seed")
	f := fs.Float64("f", 1, "fraction of labels to keep in the label file (stratified)")
	edgesPath := fs.String("edges", "graph.tsv", "output edge-list path")
	labelsPath := fs.String("labels", "labels.tsv", "output labels path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var alpha []float64
	if *alphaStr != "" {
		for _, part := range strings.Split(*alphaStr, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return fmt.Errorf("bad -alpha entry %q: %w", part, err)
			}
			alpha = append(alpha, v)
		}
		*k = len(alpha)
	}
	g, truth, err := factorgraph.Generate(factorgraph.GenerateConfig{
		N: *n, M: *m, K: *k, Alpha: alpha,
		H: factorgraph.SkewedH(*k, *skew), PowerLaw: *powerlaw, Seed: *seed,
	})
	if err != nil {
		return err
	}
	out := truth
	if *f < 1 {
		out, err = factorgraph.SampleSeeds(truth, *k, *f, *seed)
		if err != nil {
			return err
		}
	}
	if err := writeFile(*edgesPath, func(w *os.File) error { return graph.WriteEdgeList(w, g) }); err != nil {
		return err
	}
	if err := writeFile(*labelsPath, func(w *os.File) error { return graph.WriteLabels(w, out) }); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d nodes, %d edges) and %s (%d labels)\n",
		*edgesPath, g.N, g.M, *labelsPath, labels.NumLabeled(out))
	return nil
}

func runEstimator(method string, g *factorgraph.Graph, seeds []int, k int) (*factorgraph.Estimate, error) {
	if strings.EqualFold(method, "dcer-auto") {
		est, lambda, err := factorgraph.EstimateDCErAuto(g, seeds, k)
		if err != nil {
			return nil, err
		}
		fmt.Printf("auto-selected lambda = %g\n", lambda)
		return est, nil
	}
	// All other names share the library's single dispatch.
	est, err := factorgraph.EstimateBy(strings.ToLower(method), g, seeds, k, factorgraph.EstimateOptions{})
	if errors.Is(err, factorgraph.ErrUnknownEstimator) {
		return nil, fmt.Errorf("%w; the CLI additionally supports dcer-auto", err)
	}
	return est, err
}

func cmdEstimate(args []string) error {
	fs := flag.NewFlagSet("estimate", flag.ExitOnError)
	edgesPath := fs.String("edges", "graph.tsv", "edge-list path")
	labelsPath := fs.String("labels", "labels.tsv", "seed labels path")
	k := fs.Int("k", 0, "number of classes (default: inferred from labels)")
	method := fs.String("method", "dcer", "estimator: dcer, dcer-auto, dce, mce, lce, holdout")
	hout := fs.String("hout", "", "optional path to save the estimated H as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, seeds, err := graph.LoadFiles(*edgesPath, *labelsPath)
	if err != nil {
		return err
	}
	if *k == 0 {
		*k = labels.NumClasses(seeds)
	}
	est, err := runEstimator(*method, g, seeds, *k)
	if err != nil {
		return err
	}
	fmt.Printf("method=%s  k=%d  labeled=%d/%d  time=%s\nestimated H:\n%s",
		est.Method, *k, labels.NumLabeled(seeds), g.N, est.Runtime, est.H)
	if *hout != "" {
		if err := writeFile(*hout, func(w *os.File) error { return dense.WriteJSON(w, est.H) }); err != nil {
			return err
		}
		fmt.Printf("saved H to %s\n", *hout)
	}
	return nil
}

func cmdPropagate(args []string) error {
	fs := flag.NewFlagSet("propagate", flag.ExitOnError)
	edgesPath := fs.String("edges", "graph.tsv", "edge-list path")
	labelsPath := fs.String("labels", "labels.tsv", "seed labels path")
	k := fs.Int("k", 0, "number of classes (default: inferred from labels)")
	method := fs.String("method", "dcer", "estimator: dcer, dcer-auto, dce, mce, lce, holdout")
	hfile := fs.String("hfile", "", "use a precomputed H (JSON) instead of estimating")
	outPath := fs.String("out", "pred.tsv", "output predictions path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, seeds, err := graph.LoadFiles(*edgesPath, *labelsPath)
	if err != nil {
		return err
	}
	if *k == 0 {
		*k = labels.NumClasses(seeds)
	}
	var h *factorgraph.Matrix
	how := ""
	if *hfile != "" {
		f, err := os.Open(*hfile)
		if err != nil {
			return err
		}
		h, err = dense.ReadJSON(f)
		f.Close()
		if err != nil {
			return err
		}
		if h.Rows != *k || h.Cols != *k {
			return fmt.Errorf("H in %s is %d×%d but k=%d", *hfile, h.Rows, h.Cols, *k)
		}
		how = fmt.Sprintf("loaded H from %s", *hfile)
	} else {
		est, err := runEstimator(*method, g, seeds, *k)
		if err != nil {
			return err
		}
		h = est.H
		how = fmt.Sprintf("estimated with %s in %s", est.Method, est.Runtime)
	}
	pred, err := factorgraph.Propagate(g, seeds, *k, h)
	if err != nil {
		return err
	}
	if err := writeFile(*outPath, func(w *os.File) error { return graph.WriteLabels(w, pred) }); err != nil {
		return err
	}
	fmt.Printf("%s; wrote %d predictions to %s\n", how, len(pred), *outPath)
	return nil
}

func cmdSummarize(args []string) error {
	fs := flag.NewFlagSet("summarize", flag.ExitOnError)
	edgesPath := fs.String("edges", "graph.tsv", "edge-list path")
	labelsPath := fs.String("labels", "labels.tsv", "seed labels path")
	k := fs.Int("k", 0, "number of classes (default: inferred from labels)")
	lmax := fs.Int("lmax", 5, "maximum path length")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, seeds, err := graph.LoadFiles(*edgesPath, *labelsPath)
	if err != nil {
		return err
	}
	if *k == 0 {
		*k = labels.NumClasses(seeds)
	}
	sketches, err := factorgraph.Sketches(g, seeds, *k, *lmax)
	if err != nil {
		return err
	}
	for l, p := range sketches {
		fmt.Printf("P(%d) — observed class statistics over non-backtracking paths of length %d:\n%s\n", l+1, l+1, p)
	}
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	edgesPath := fs.String("edges", "graph.tsv", "edge-list path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ef, err := os.Open(*edgesPath)
	if err != nil {
		return err
	}
	defer ef.Close()
	g, err := graph.ReadEdgeList(ef, 0)
	if err != nil {
		return err
	}
	degs := g.Degrees()
	maxd := 0.0
	for _, d := range degs {
		if d > maxd {
			maxd = d
		}
	}
	fmt.Printf("nodes=%d edges=%d avg-degree=%.2f max-degree=%.0f\n", g.N, g.M, g.AvgDegree(), maxd)
	return nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
