package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeServe emulates the serving API surface loadgen touches and records
// graph registrations and deletions.
type fakeServe struct {
	mu         sync.Mutex
	registered []string
	deleted    []string
}

func (f *fakeServe) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/graphs", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Name string `json:"name"`
		}
		_ = json.NewDecoder(r.Body).Decode(&req)
		f.mu.Lock()
		f.registered = append(f.registered, req.Name)
		f.mu.Unlock()
		w.WriteHeader(http.StatusCreated)
		_, _ = w.Write([]byte(`{}`))
	})
	mux.HandleFunc("DELETE /v1/graphs/{name}", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.deleted = append(f.deleted, r.PathValue("name"))
		f.mu.Unlock()
		_, _ = w.Write([]byte(`{}`))
	})
	mux.HandleFunc("GET /v1/graphs/{name}", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"nodes":100,"edges":500,"classes":3}`))
	})
	mux.HandleFunc("POST /v1/graphs/{name}/classify", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"count":0,"results":[]}`))
	})
	mux.HandleFunc("PATCH /v1/graphs/{name}/labels", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{}`))
	})
	mux.HandleFunc("PATCH /v1/graphs/{name}/edges", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{}`))
	})
	return mux
}

func (f *fakeServe) snapshot() (reg, del []string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.registered...), append([]string(nil), f.deleted...)
}

func testParams(addr string) params {
	return params{
		addr: addr, graph: "default",
		graphs: 2, graphsNodes: 100, graphsEdges: 500, graphsIncremental: true,
		conc: 2, batch: 4, topK: 1,
		duration: 200 * time.Millisecond, warmup: 0,
		out: "", mutateOut: "", seed: 1, repeat: 1,
		patchFrac: 0.1, patchBatch: 1, mutateFrac: 0.1, mutateBatch: 1,
	}
}

// TestMixedTenantCleanupOnAbort is the leak regression test: a mixed-tenant
// run aborted mid-burst (the signal path cancels the context) must still
// delete every graph it registered.
func TestMixedTenantCleanupOnAbort(t *testing.T) {
	f := &fakeServe{}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()

	p := testParams(srv.URL)
	p.duration = 30 * time.Second // only the abort can end the run in time
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel() // what SIGINT/SIGTERM do in run()
	}()
	done := make(chan error, 1)
	go func() { done <- execute(ctx, p) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("aborted run did not return (workers ignored the context)")
	}
	reg, del := f.snapshot()
	if len(reg) != 2 {
		t.Fatalf("registered %v, want 2 graphs", reg)
	}
	if len(del) != 2 {
		t.Fatalf("aborted run leaked graphs: registered %v, deleted %v", reg, del)
	}
}

// TestMixedTenantCleanupOnError: a failure between registration and the
// measured run (here: a graph whose warm-up classify breaks) must delete
// the graphs that were already admitted.
func TestMixedTenantCleanupOnError(t *testing.T) {
	f := &fakeServe{}
	mux := http.NewServeMux()
	base := f.handler()
	broken := false
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if broken && r.Method == "POST" && strings.HasSuffix(r.URL.Path, "/classify") {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		base.ServeHTTP(w, r)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	p := testParams(srv.URL)
	broken = true // resolveTarget's warm-up classify fails after registration
	if err := execute(context.Background(), p); err == nil {
		t.Fatal("expected the broken warm-up to fail the run")
	}
	reg, del := f.snapshot()
	if len(reg) == 0 {
		t.Fatal("no graphs registered")
	}
	if len(del) != len(reg) {
		t.Fatalf("error path leaked graphs: registered %v, deleted %v", reg, del)
	}
}

// TestMixedTenantCleanupHappyPath: the normal completion path still
// deletes (and -keep-graphs suppresses it).
func TestMixedTenantCleanupHappyPath(t *testing.T) {
	f := &fakeServe{}
	srv := httptest.NewServer(f.handler())
	defer srv.Close()

	if err := execute(context.Background(), testParams(srv.URL)); err != nil {
		t.Fatal(err)
	}
	if _, del := f.snapshot(); len(del) != 2 {
		t.Fatalf("completed run deleted %v, want both graphs", del)
	}

	f2 := &fakeServe{}
	srv2 := httptest.NewServer(f2.handler())
	defer srv2.Close()
	p := testParams(srv2.URL)
	p.keepGraphs = true
	if err := execute(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	if _, del := f2.snapshot(); len(del) != 0 {
		t.Fatalf("-keep-graphs still deleted %v", del)
	}
}
