// Command loadgen is a closed-loop load generator for the serving API: C
// workers each keep exactly one request in flight, drawing random node
// batches, until a duration or request budget is exhausted. By default
// every request is a classify; -patch-frac mixes in PATCH /labels writes
// (random nodes, random classes), which is the benchmark for the
// incremental residual subsystem — query and patch latencies are reported
// separately. -repeat aggregates the percentiles over N runs instead of a
// single one.
//
// By default the run drives one graph (-graph). With -graphs N it becomes a
// mixed-tenant workload: N synthetic graphs are registered over POST
// /v1/graphs (and deleted afterwards), every request picks a tenant
// uniformly at random, and the report carries a per-graph latency
// breakdown alongside the aggregate — so registry contention, eviction and
// per-tenant tail latency are measured, not just single-graph throughput.
//
// Results are written as JSON — BENCH_serve.json by convention — to seed
// the serving-performance trajectory tracked in CI.
//
//	loadgen -addr http://localhost:8080 -graph default -c 8 -duration 10s
//	loadgen -addr http://localhost:8080 -graph demo -requests 5000 -batch 32 -stream
//	loadgen -addr http://localhost:8080 -graphs 4 -patch-frac 0.2 -repeat 3
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type workload struct {
	Graph       string  `json:"graph,omitempty"`
	Graphs      int     `json:"graphs,omitempty"`
	Concurrency int     `json:"concurrency"`
	Batch       int     `json:"nodes_per_request"`
	TopK        int     `json:"top_k"`
	Stream      bool    `json:"stream"`
	Gzip        bool    `json:"gzip"`
	PatchFrac   float64 `json:"patch_frac,omitempty"`
	PatchBatch  int     `json:"patch_batch,omitempty"`
	Repeat      int     `json:"repeat"`
	DurationS   float64 `json:"duration_s"`
	Requests    int64   `json:"requests"`
	Patches     int64   `json:"patches,omitempty"`
	Errors      int64   `json:"errors"`
	GraphNodes  int     `json:"graph_nodes"`
	GraphEdges  int     `json:"graph_edges"`
}

// graphLatencies is one tenant's slice of a mixed-tenant report.
type graphLatencies struct {
	LatencyMS      latencies  `json:"latency_ms"`
	PatchLatencyMS *latencies `json:"patch_latency_ms,omitempty"`
}

type report struct {
	Workload workload `json:"workload"`
	QPS      float64  `json:"qps"`
	// LatencyMS summarizes classify (read) requests only — across every
	// graph of a mixed-tenant run — so benchdiff gates one stable number;
	// patch (write) requests are reported separately so a mixed workload
	// cannot hide write latency inside read percentiles.
	LatencyMS      latencies  `json:"latency_ms"`
	PatchLatencyMS *latencies `json:"patch_latency_ms,omitempty"`
	// PerGraph breaks the same populations down by tenant (present only
	// with -graphs > 0 or as a single entry for the named graph).
	PerGraph  map[string]graphLatencies `json:"per_graph,omitempty"`
	Timestamp string                    `json:"timestamp"`
}

// target is one graph a worker can direct a request at.
type target struct {
	name                  string
	n, m, k               int
	classifyURL, patchURL string
}

type config struct {
	base              string
	targets           []target
	conc, batch, topK int
	duration, warmup  time.Duration
	requests          int64
	stream, gz        bool
	patchFrac         float64
	patchBatch        int
	seed              int64
}

// runResult is one run's raw measurements, indexed by target.
type runResult struct {
	queries, patches [][]time.Duration
	errs             int64
	elapsed          time.Duration
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "http://127.0.0.1:8080", "server base URL")
	graph := flag.String("graph", "default", "graph name to drive (single-tenant mode)")
	graphs := flag.Int("graphs", 0, "mixed-tenant mode: register N synthetic graphs and spread the workload across them")
	graphsNodes := flag.Int("graphs-nodes", 2000, "mixed-tenant: nodes per registered graph")
	graphsEdges := flag.Int("graphs-edges", 0, "mixed-tenant: edges per registered graph (0 = 5× nodes)")
	graphsIncremental := flag.Bool("graphs-incremental", true, "mixed-tenant: register graphs with the incremental residual subsystem")
	keepGraphs := flag.Bool("keep-graphs", false, "mixed-tenant: leave the registered graphs in place after the run")
	conc := flag.Int("c", 8, "concurrent closed-loop workers")
	duration := flag.Duration("duration", 10*time.Second, "run length (ignored when -requests > 0)")
	requests := flag.Int64("requests", 0, "per-run request budget (0 = duration-bound)")
	batch := flag.Int("batch", 16, "nodes per classify request")
	topK := flag.Int("topk", 2, "top-k class scores per node")
	stream := flag.Bool("stream", false, "request NDJSON streaming responses")
	gz := flag.Bool("gzip", false, "advertise Accept-Encoding: gzip")
	warmup := flag.Duration("warmup", 500*time.Millisecond, "measurement excluded warm-up period")
	out := flag.String("out", "BENCH_serve.json", "output JSON path ('' = stdout only)")
	seed := flag.Int64("seed", 1, "node-sampling RNG seed")
	repeat := flag.Int("repeat", 1, "number of measured runs; percentiles aggregate across all of them")
	patchFrac := flag.Float64("patch-frac", 0, "fraction of requests that are PATCH /labels writes (mixed patch+query workload)")
	patchBatch := flag.Int("patch-batch", 1, "seed labels set per patch request")
	flag.Parse()

	if *repeat < 1 {
		return fmt.Errorf("-repeat must be ≥ 1, got %d", *repeat)
	}
	if *patchFrac < 0 || *patchFrac > 1 {
		return fmt.Errorf("-patch-frac %v outside [0,1]", *patchFrac)
	}
	if *patchBatch < 1 {
		return fmt.Errorf("-patch-batch must be ≥ 1, got %d", *patchBatch)
	}
	if *graphs < 0 {
		return fmt.Errorf("-graphs must be ≥ 0, got %d", *graphs)
	}

	base := strings.TrimRight(*addr, "/")
	var targets []target
	if *graphs > 0 {
		edges := *graphsEdges
		if edges == 0 {
			edges = 5 * *graphsNodes
		}
		names, err := registerGraphs(base, *graphs, *graphsNodes, edges, *graphsIncremental, uint64(*seed))
		if err != nil {
			return err
		}
		if !*keepGraphs {
			defer deleteGraphs(base, names)
		}
		for _, name := range names {
			t, err := resolveTarget(base, name)
			if err != nil {
				return err
			}
			targets = append(targets, t)
		}
	} else {
		t, err := resolveTarget(base, *graph)
		if err != nil {
			return err
		}
		targets = []target{t}
	}
	minN := targets[0].n
	for _, t := range targets {
		if t.n < minN {
			minN = t.n
		}
	}
	if *batch > minN {
		*batch = minN
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d graph(s) (%d nodes each at least); %d workers, batch=%d, top_k=%d, patch_frac=%g, repeat=%d\n",
		len(targets), minN, *conc, *batch, *topK, *patchFrac, *repeat)

	cfg := config{
		base: base, targets: targets,
		conc: *conc, batch: *batch, topK: *topK,
		duration: *duration, warmup: *warmup, requests: *requests,
		stream: *stream, gz: *gz,
		patchFrac: *patchFrac, patchBatch: *patchBatch,
		seed: *seed,
	}

	queries := make([][]time.Duration, len(targets))
	patches := make([][]time.Duration, len(targets))
	var nErrs int64
	var elapsed time.Duration
	for r := 0; r < *repeat; r++ {
		res, err := runOnce(cfg, int64(r))
		if err != nil {
			return fmt.Errorf("run %d/%d: %w", r+1, *repeat, err)
		}
		for t := range targets {
			queries[t] = append(queries[t], res.queries[t]...)
			patches[t] = append(patches[t], res.patches[t]...)
		}
		nErrs += res.errs
		elapsed += res.elapsed
	}
	var allQ, allP []time.Duration
	perGraph := make(map[string]graphLatencies, len(targets))
	for t, tgt := range targets {
		allQ = append(allQ, queries[t]...)
		allP = append(allP, patches[t]...)
		gl := graphLatencies{LatencyMS: summarize(queries[t])}
		if len(patches[t]) > 0 {
			pl := summarize(patches[t])
			gl.PatchLatencyMS = &pl
		}
		perGraph[tgt.name] = gl
	}
	if len(allQ) == 0 {
		return fmt.Errorf("no successful measured classify requests (%d errors)", nErrs)
	}

	wl := workload{
		Concurrency: *conc, Batch: *batch, TopK: *topK,
		Stream: *stream, Gzip: *gz,
		PatchFrac: *patchFrac, PatchBatch: *patchBatch, Repeat: *repeat,
		DurationS: elapsed.Seconds(),
		Requests:  int64(len(allQ)) + int64(len(allP)), Patches: int64(len(allP)), Errors: nErrs,
		GraphNodes: targets[0].n, GraphEdges: targets[0].m,
	}
	if *graphs > 0 {
		wl.Graphs = len(targets)
	} else {
		wl.Graph = targets[0].name
	}
	rep := report{
		Workload:  wl,
		QPS:       float64(len(allQ)+len(allP)) / elapsed.Seconds(),
		LatencyMS: summarize(allQ),
		PerGraph:  perGraph,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	if len(allP) > 0 {
		pl := summarize(allP)
		rep.PatchLatencyMS = &pl
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(blob))
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loadgen: wrote %s\n", *out)
	}
	return nil
}

// runOnce executes one closed-loop measurement run across cfg.targets.
func runOnce(cfg config, run int64) (runResult, error) {
	client := &http.Client{Timeout: 60 * time.Second}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		qAll     = make([][]time.Duration, len(cfg.targets))
		pAll     = make([][]time.Duration, len(cfg.targets))
		tickets  int64 // request budget ticket counter (budget mode only)
		nErrs    int64
		budget   = cfg.requests
		warmup   = cfg.warmup
		stop     = make(chan struct{})
		started  = time.Now()
		measured atomic.Bool
	)
	if budget > 0 {
		// A fixed request budget measures every request: a warm-up window
		// would silently discard samples (all of them, for a budget that
		// drains faster than the window).
		warmup = 0
	}
	if warmup == 0 {
		measured.Store(true)
	} else {
		go func() {
			time.Sleep(warmup)
			measured.Store(true)
		}()
	}
	if budget == 0 {
		go func() {
			time.Sleep(cfg.duration + warmup)
			close(stop)
		}()
	}
	measureStart := started.Add(warmup)

	for w := 0; w < cfg.conc; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + run*1000003 + int64(worker)))
			qLocal := make([][]time.Duration, len(cfg.targets))
			pLocal := make([][]time.Duration, len(cfg.targets))
			flush := func() {
				mu.Lock()
				for t := range cfg.targets {
					qAll[t] = append(qAll[t], qLocal[t]...)
					pAll[t] = append(pAll[t], pLocal[t]...)
				}
				mu.Unlock()
			}
			for {
				select {
				case <-stop:
					flush()
					return
				default:
				}
				if budget > 0 && atomic.AddInt64(&tickets, 1) > budget {
					flush()
					return
				}
				ti := 0
				if len(cfg.targets) > 1 {
					ti = rng.Intn(len(cfg.targets))
				}
				tgt := cfg.targets[ti]
				isPatch := cfg.patchFrac > 0 && rng.Float64() < cfg.patchFrac
				var lat time.Duration
				var err error
				if isPatch {
					lat, err = onePatch(client, tgt.patchURL, rng, tgt.n, tgt.k, cfg.patchBatch)
				} else {
					lat, err = oneRequest(client, tgt.classifyURL, rng, tgt.n, cfg.batch, cfg.topK, cfg.stream, cfg.gz)
				}
				if err != nil {
					atomic.AddInt64(&nErrs, 1)
					continue
				}
				if measured.Load() {
					if isPatch {
						pLocal[ti] = append(pLocal[ti], lat)
					} else {
						qLocal[ti] = append(qLocal[ti], lat)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(measureStart)
	if elapsed <= 0 {
		elapsed = time.Since(started)
	}
	return runResult{queries: qAll, patches: pAll, errs: atomic.LoadInt64(&nErrs), elapsed: elapsed}, nil
}

// registerGraphs admits count synthetic graphs (warm, so the benchmark
// excludes build cost) and returns their names.
func registerGraphs(base string, count, nodes, edges int, incremental bool, seed uint64) ([]string, error) {
	names := make([]string, 0, count)
	for i := 0; i < count; i++ {
		name := fmt.Sprintf("lg-%d", i)
		body, err := json.Marshal(map[string]any{
			"name":        name,
			"incremental": incremental,
			"warm":        true,
			"synthetic": map[string]any{
				"n": nodes, "m": edges, "f": 0.1, "seed": seed + uint64(i),
			},
		})
		if err != nil {
			return nil, err
		}
		resp, err := http.Post(base+"/v1/graphs", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("registering %s: %w", name, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusCreated:
			names = append(names, name)
		case http.StatusConflict:
			// Left over from a -keep-graphs run: reuse it.
			names = append(names, name)
		default:
			deleteGraphs(base, names)
			return nil, fmt.Errorf("registering %s: status %d", name, resp.StatusCode)
		}
	}
	fmt.Fprintf(os.Stderr, "loadgen: registered %d synthetic graphs (%d nodes, %d edges each)\n", len(names), nodes, edges)
	return names, nil
}

// deleteGraphs best-effort unregisters the graphs a mixed-tenant run admitted.
func deleteGraphs(base string, names []string) {
	client := &http.Client{Timeout: 10 * time.Second}
	for _, name := range names {
		req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/graphs/%s", base, name), nil)
		if err != nil {
			continue
		}
		if resp, err := client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
}

// resolveTarget resolves a graph's node/edge/class counts, warming the
// engine with a one-node classify first so a cold (or file-backed) graph
// reports real dimensions and the benchmark excludes the one-off build.
func resolveTarget(base, graph string) (target, error) {
	n, m, k, err := graphDims(base, graph)
	if err != nil {
		return target{}, err
	}
	return target{
		name: graph, n: n, m: m, k: k,
		classifyURL: fmt.Sprintf("%s/v1/graphs/%s/classify", base, graph),
		patchURL:    fmt.Sprintf("%s/v1/graphs/%s/labels", base, graph),
	}, nil
}

func graphDims(base, graph string) (n, m, k int, err error) {
	warmBody := `{"nodes":[0]}`
	resp, err := http.Post(fmt.Sprintf("%s/v1/graphs/%s/classify", base, graph),
		"application/json", strings.NewReader(warmBody))
	if err != nil {
		return 0, 0, 0, fmt.Errorf("warm-up classify: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, 0, fmt.Errorf("warm-up classify: status %d", resp.StatusCode)
	}
	resp, err = http.Get(fmt.Sprintf("%s/v1/graphs/%s", base, graph))
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, 0, fmt.Errorf("GET /v1/graphs/%s: status %d", graph, resp.StatusCode)
	}
	var info struct {
		Nodes   int `json:"nodes"`
		Edges   int `json:"edges"`
		Classes int `json:"classes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return 0, 0, 0, err
	}
	if info.Nodes <= 0 {
		return 0, 0, 0, fmt.Errorf("graph %q reports %d nodes", graph, info.Nodes)
	}
	if info.Classes < 2 {
		info.Classes = 2
	}
	return info.Nodes, info.Edges, info.Classes, nil
}

// oneRequest issues a single classify call and returns its latency.
func oneRequest(client *http.Client, url string, rng *rand.Rand, n, batch, topK int, stream, gz bool) (time.Duration, error) {
	nodes := make([]int, batch)
	for i := range nodes {
		nodes[i] = rng.Intn(n)
	}
	body, err := json.Marshal(map[string]any{
		"nodes": nodes, "top_k": topK, "stream": stream,
	})
	if err != nil {
		return 0, err
	}
	return timedDo(client, "POST", url, body, gz)
}

// onePatch issues a single PATCH /labels call setting patchBatch random
// nodes to random classes.
func onePatch(client *http.Client, url string, rng *rand.Rand, n, k, patchBatch int) (time.Duration, error) {
	set := make(map[string]int, patchBatch)
	for i := 0; i < patchBatch; i++ {
		set[strconv.Itoa(rng.Intn(n))] = rng.Intn(k)
	}
	body, err := json.Marshal(map[string]any{"set": set})
	if err != nil {
		return 0, err
	}
	return timedDo(client, "PATCH", url, body, false)
}

func timedDo(client *http.Client, method, url string, body []byte, gz bool) (time.Duration, error) {
	req, err := http.NewRequestWithContext(context.Background(), method, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if gz {
		req.Header.Set("Accept-Encoding", "gzip")
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	_, copyErr := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	lat := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	if copyErr != nil {
		return 0, copyErr
	}
	return lat, nil
}
