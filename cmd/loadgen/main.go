// Command loadgen is a closed-loop load generator for the serving API: C
// workers each keep exactly one request in flight, drawing random node
// batches, until a duration or request budget is exhausted. By default
// every request is a classify; -patch-frac mixes in PATCH /labels writes
// (random nodes, random classes) and -mutate-frac mixes in PATCH /edges
// topology mutations (random edge adds, removals of previously added
// edges) — the benchmarks for the incremental residual subsystem and the
// streaming-mutation subsystem respectively. Query, patch and mutation
// latencies are reported separately. -repeat aggregates the percentiles
// over N runs instead of a single one.
//
// By default the run drives one graph (-graph). With -graphs N it becomes a
// mixed-tenant workload: N synthetic graphs are registered over POST
// /v1/graphs (and deleted afterwards), every request picks a tenant
// uniformly at random, and the report carries a per-graph latency
// breakdown alongside the aggregate — so registry contention, eviction and
// per-tenant tail latency are measured, not just single-graph throughput.
// The auto-delete is signal-safe: SIGINT/SIGTERM stop the workers and the
// registered graphs are cleaned up before exit, so an aborted burst cannot
// leak tenants into a long-lived server.
//
// Results are written as JSON — BENCH_serve.json by convention — to seed
// the serving-performance trajectory tracked in CI; a mutation workload
// additionally writes BENCH_mutate.json, whose mutation p95 cmd/benchdiff
// gates.
//
//	loadgen -addr http://localhost:8080 -graph default -c 8 -duration 10s
//	loadgen -addr http://localhost:8080 -graph demo -requests 5000 -batch 32 -stream
//	loadgen -addr http://localhost:8080 -graphs 4 -patch-frac 0.2 -mutate-frac 0.1 -repeat 3
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"factorgraph/internal/telemetry"
)

type workload struct {
	Graph       string  `json:"graph,omitempty"`
	Graphs      int     `json:"graphs,omitempty"`
	Concurrency int     `json:"concurrency"`
	Batch       int     `json:"nodes_per_request"`
	TopK        int     `json:"top_k"`
	Stream      bool    `json:"stream"`
	Gzip        bool    `json:"gzip"`
	F32         bool    `json:"f32,omitempty"`
	Reorder     string  `json:"reorder,omitempty"`
	PatchFrac   float64 `json:"patch_frac,omitempty"`
	PatchBatch  int     `json:"patch_batch,omitempty"`
	MutateFrac  float64 `json:"mutate_frac,omitempty"`
	MutateBatch int     `json:"mutate_batch,omitempty"`
	Repeat      int     `json:"repeat"`
	DurationS   float64 `json:"duration_s"`
	Requests    int64   `json:"requests"`
	Patches     int64   `json:"patches,omitempty"`
	Mutations   int64   `json:"mutations,omitempty"`
	Errors      int64   `json:"errors"`
	GraphNodes  int     `json:"graph_nodes"`
	GraphEdges  int     `json:"graph_edges"`
}

// graphLatencies is one tenant's slice of a mixed-tenant report.
type graphLatencies struct {
	LatencyMS       latencies  `json:"latency_ms"`
	PatchLatencyMS  *latencies `json:"patch_latency_ms,omitempty"`
	MutateLatencyMS *latencies `json:"mutate_latency_ms,omitempty"`
}

type report struct {
	Workload workload `json:"workload"`
	QPS      float64  `json:"qps"`
	// LatencyMS summarizes classify (read) requests only — across every
	// graph of a mixed-tenant run — so benchdiff gates one stable number;
	// patch and mutation (write) requests are reported separately so a
	// mixed workload cannot hide write latency inside read percentiles.
	LatencyMS       latencies  `json:"latency_ms"`
	PatchLatencyMS  *latencies `json:"patch_latency_ms,omitempty"`
	MutateLatencyMS *latencies `json:"mutate_latency_ms,omitempty"`
	// PerGraph breaks the same populations down by tenant (present only
	// with -graphs > 0 or as a single entry for the named graph).
	PerGraph map[string]graphLatencies `json:"per_graph,omitempty"`
	// ServerMetrics embeds server-side counter deltas over the whole burst,
	// scraped from GET /metrics before and after (label dimensions summed
	// away). Client latencies say how the run felt; these say what the
	// server DID for it — propagations, patch flushes, compactions,
	// evictions, fallback sweeps. Absent when the server has no /metrics
	// (older builds) or the scrape failed — ServerMetricsError then says
	// why, so a missing section is diagnosable from the report alone.
	ServerMetrics      map[string]float64 `json:"server_metrics,omitempty"`
	ServerMetricsError string             `json:"server_metrics_error,omitempty"`
	// ServerTimeline is the tail of the server's flight-recorder timeline
	// (GET /v1/admin/timeline) captured after the burst: the last few
	// sampled points per series, enough for benchdiff to see trends
	// (ramping RSS, growing overlay) without an external Prometheus.
	ServerTimeline []timelineSeriesTail `json:"server_timeline,omitempty"`
	// TraceparentSent / TraceparentEchoed count the synthetic traceparent
	// headers injected on measured requests and the responses that carried
	// the same trace id back; echoed == sent means every request's trace
	// context propagated through the server.
	TraceparentSent   int64  `json:"traceparent_sent,omitempty"`
	TraceparentEchoed int64  `json:"traceparent_echoed,omitempty"`
	Timestamp         string `json:"timestamp"`
}

// scrapeKeys is the subset of server series worth embedding in the report.
var scrapeKeys = []string{
	"fg_http_requests_total",
	"fg_http_ndjson_flushes_total",
	"fg_engine_queries_total",
	"fg_engine_propagations_total",
	"fg_engine_label_patches_total",
	"fg_engine_edge_mutations_total",
	"fg_engine_compactions_total",
	"fg_engine_whatif_cache_total",
	"fg_residual_flushes_total",
	"fg_residual_pushes_total",
	"fg_residual_edges_traversed_total",
	"fg_residual_fallback_sweeps_total",
	"fg_graph_cost_pushes_total",
	"fg_graph_cost_edges_traversed_total",
	"fg_graph_cost_rows_cloned_total",
	"fg_exec_rounds_total",
	"fg_delta_epochs_published_total",
	"fg_registry_builds_total",
	"fg_registry_evictions_total",
}

// scrapeMetrics fetches base/metrics and sums each family's series into one
// total per metric name. A nil map with a non-nil error means the endpoint
// was missing or unreadable — the report omits server metrics and records
// the reason instead of silently dropping the section.
func scrapeMetrics(base string) (map[string]float64, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("GET /metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	totals, err := telemetry.ParseTextTotals(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("parse /metrics exposition: %w", err)
	}
	return totals, nil
}

// timelineSeriesTail is one embedded flight-recorder series, trimmed to
// its most recent points.
type timelineSeriesTail struct {
	Graph  string                    `json:"graph,omitempty"`
	Name   string                    `json:"name"`
	Points []telemetry.TimelinePoint `json:"points"`
}

// timelineTailPoints bounds how much history rides along per series.
const timelineTailPoints = 12

// timelineTail fetches the server's rolling timeline and keeps the last
// timelineTailPoints points of every series. nil when the server predates
// the endpoint or the fetch fails — the section is optional color, unlike
// server_metrics it carries no gating numbers.
func timelineTail(base string) []timelineSeriesTail {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(base + "/v1/admin/timeline")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var body struct {
		Series []timelineSeriesTail `json:"series"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil
	}
	out := body.Series
	for i := range out {
		if n := len(out[i].Points); n > timelineTailPoints {
			out[i].Points = out[i].Points[n-timelineTailPoints:]
		}
	}
	return out
}

// metricsDelta selects the scrapeKeys deltas between two scrapes. Counters
// only move forward, so a negative delta means the server restarted
// mid-burst; the post-restart absolute value is the best remaining answer.
func metricsDelta(before, after map[string]float64) map[string]float64 {
	if after == nil {
		return nil
	}
	out := make(map[string]float64, len(scrapeKeys))
	for _, key := range scrapeKeys {
		v, ok := after[key]
		if !ok {
			continue
		}
		d := v - before[key]
		if d < 0 {
			d = v
		}
		out[key] = d
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// target is one graph a worker can direct a request at.
type target struct {
	name                            string
	n, m, k                         int
	classifyURL, patchURL, edgesURL string
}

type config struct {
	base              string
	targets           []target
	conc, batch, topK int
	duration, warmup  time.Duration
	requests          int64
	stream, gz        bool
	patchFrac         float64
	patchBatch        int
	mutateFrac        float64
	mutateBatch       int
	seed              int64
}

// params is the parsed flag set; run is factored over it so tests can
// drive the full workflow (including the abort-cleanup paths) against a
// fake server without touching global flag state.
type params struct {
	addr, graph                   string
	graphs, graphsNodes           int
	graphsEdges                   int
	graphsIncremental, keepGraphs bool
	graphsAsyncCompact            bool
	f32                           bool
	reorder                       string
	conc, batch, topK             int
	duration, warmup              time.Duration
	requests                      int64
	stream, gz                    bool
	out, mutateOut                string
	seed                          int64
	repeat                        int
	patchFrac, mutateFrac         float64
	patchBatch, mutateBatch       int
}

// runResult is one run's raw measurements, indexed by target.
type runResult struct {
	queries, patches, mutates [][]time.Duration
	errs                      int64
	elapsed                   time.Duration
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var p params
	flag.StringVar(&p.addr, "addr", "http://127.0.0.1:8080", "server base URL")
	flag.StringVar(&p.graph, "graph", "default", "graph name to drive (single-tenant mode)")
	flag.IntVar(&p.graphs, "graphs", 0, "mixed-tenant mode: register N synthetic graphs and spread the workload across them")
	flag.IntVar(&p.graphsNodes, "graphs-nodes", 2000, "mixed-tenant: nodes per registered graph")
	flag.IntVar(&p.graphsEdges, "graphs-edges", 0, "mixed-tenant: edges per registered graph (0 = 5× nodes)")
	flag.BoolVar(&p.graphsIncremental, "graphs-incremental", true, "mixed-tenant: register graphs with the incremental residual subsystem")
	flag.BoolVar(&p.graphsAsyncCompact, "async-compact", false, "mixed-tenant: register graphs with background topology compaction (epoch swap off the mutation path; implies -graphs-incremental)")
	flag.BoolVar(&p.keepGraphs, "keep-graphs", false, "mixed-tenant: leave the registered graphs in place after the run")
	flag.BoolVar(&p.f32, "f32", false, "mixed-tenant: register graphs with the float32 belief tier (forces -graphs-incremental=false)")
	flag.StringVar(&p.reorder, "reorder", "", "mixed-tenant: locality reordering pass for registered graphs (degree, rcm)")
	flag.IntVar(&p.conc, "c", 8, "concurrent closed-loop workers")
	flag.DurationVar(&p.duration, "duration", 10*time.Second, "run length (ignored when -requests > 0)")
	flag.Int64Var(&p.requests, "requests", 0, "per-run request budget (0 = duration-bound)")
	flag.IntVar(&p.batch, "batch", 16, "nodes per classify request")
	flag.IntVar(&p.topK, "topk", 2, "top-k class scores per node")
	flag.BoolVar(&p.stream, "stream", false, "request NDJSON streaming responses")
	flag.BoolVar(&p.gz, "gzip", false, "advertise Accept-Encoding: gzip")
	flag.DurationVar(&p.warmup, "warmup", 500*time.Millisecond, "measurement excluded warm-up period")
	flag.StringVar(&p.out, "out", "BENCH_serve.json", "output JSON path ('' = stdout only)")
	flag.Int64Var(&p.seed, "seed", 1, "node-sampling RNG seed")
	flag.IntVar(&p.repeat, "repeat", 1, "number of measured runs; percentiles aggregate across all of them")
	flag.Float64Var(&p.patchFrac, "patch-frac", 0, "fraction of requests that are PATCH /labels writes (mixed patch+query workload)")
	flag.IntVar(&p.patchBatch, "patch-batch", 1, "seed labels set per patch request")
	flag.Float64Var(&p.mutateFrac, "mutate-frac", 0, "fraction of requests that are PATCH /edges topology mutations (mixed edge-mutation workload)")
	flag.IntVar(&p.mutateBatch, "mutate-batch", 1, "edge mutations per PATCH /edges request")
	flag.StringVar(&p.mutateOut, "mutate-out", "BENCH_mutate.json", "mutation-workload report path, written when -mutate-frac > 0 ('' disables)")
	flag.Parse()

	// SIGINT/SIGTERM cancel the context: workers stop, the run returns,
	// and the deferred graph cleanup still executes — an aborted burst
	// must not leak registered tenants into a long-lived server.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return execute(ctx, p)
}

func execute(ctx context.Context, p params) error {
	if p.repeat < 1 {
		return fmt.Errorf("-repeat must be ≥ 1, got %d", p.repeat)
	}
	if p.patchFrac < 0 || p.patchFrac > 1 {
		return fmt.Errorf("-patch-frac %v outside [0,1]", p.patchFrac)
	}
	if p.patchBatch < 1 {
		return fmt.Errorf("-patch-batch must be ≥ 1, got %d", p.patchBatch)
	}
	if p.mutateFrac < 0 || p.mutateFrac > 1 {
		return fmt.Errorf("-mutate-frac %v outside [0,1]", p.mutateFrac)
	}
	if p.patchFrac+p.mutateFrac > 1 {
		return fmt.Errorf("-patch-frac + -mutate-frac = %v exceeds 1", p.patchFrac+p.mutateFrac)
	}
	if p.mutateBatch < 1 {
		return fmt.Errorf("-mutate-batch must be ≥ 1, got %d", p.mutateBatch)
	}
	if p.graphs < 0 {
		return fmt.Errorf("-graphs must be ≥ 0, got %d", p.graphs)
	}

	base := strings.TrimRight(p.addr, "/")
	var targets []target
	if p.graphs > 0 {
		edges := p.graphsEdges
		if edges == 0 {
			edges = 5 * p.graphsNodes
		}
		incremental := p.graphsIncremental || p.graphsAsyncCompact
		if p.f32 {
			// The float32 tier requires a non-incremental engine.
			incremental = false
		}
		names, err := registerGraphs(ctx, base, p.graphs, p.graphsNodes, edges, incremental, p.graphsAsyncCompact && !p.f32, p.f32, p.reorder, uint64(p.seed))
		// The cleanup is registered BEFORE the error check: a partial
		// registration (or a signal mid-burst) must still delete whatever
		// was admitted. deleteGraphs is idempotent and detached from ctx —
		// it must run precisely when ctx was canceled.
		if !p.keepGraphs {
			defer deleteGraphs(base, names)
		}
		if err != nil {
			return err
		}
		for _, name := range names {
			t, err := resolveTarget(base, name)
			if err != nil {
				return err
			}
			targets = append(targets, t)
		}
	} else {
		t, err := resolveTarget(base, p.graph)
		if err != nil {
			return err
		}
		targets = []target{t}
	}
	minN := targets[0].n
	for _, t := range targets {
		if t.n < minN {
			minN = t.n
		}
	}
	if p.batch > minN {
		p.batch = minN
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d graph(s) (%d nodes each at least); %d workers, batch=%d, top_k=%d, patch_frac=%g, mutate_frac=%g, repeat=%d\n",
		len(targets), minN, p.conc, p.batch, p.topK, p.patchFrac, p.mutateFrac, p.repeat)

	cfg := config{
		base: base, targets: targets,
		conc: p.conc, batch: p.batch, topK: p.topK,
		duration: p.duration, warmup: p.warmup, requests: p.requests,
		stream: p.stream, gz: p.gz,
		patchFrac: p.patchFrac, patchBatch: p.patchBatch,
		mutateFrac: p.mutateFrac, mutateBatch: p.mutateBatch,
		seed: p.seed,
	}

	queries := make([][]time.Duration, len(targets))
	patches := make([][]time.Duration, len(targets))
	mutates := make([][]time.Duration, len(targets))
	metricsBefore, scrapeErr := scrapeMetrics(base)
	var nErrs int64
	var elapsed time.Duration
	for r := 0; r < p.repeat; r++ {
		res, err := runOnce(ctx, cfg, int64(r))
		if err != nil {
			return fmt.Errorf("run %d/%d: %w", r+1, p.repeat, err)
		}
		for t := range targets {
			queries[t] = append(queries[t], res.queries[t]...)
			patches[t] = append(patches[t], res.patches[t]...)
			mutates[t] = append(mutates[t], res.mutates[t]...)
		}
		nErrs += res.errs
		elapsed += res.elapsed
		if ctx.Err() != nil {
			break // aborted: report what was measured, then clean up
		}
	}
	var allQ, allP, allM []time.Duration
	perGraph := make(map[string]graphLatencies, len(targets))
	for t, tgt := range targets {
		allQ = append(allQ, queries[t]...)
		allP = append(allP, patches[t]...)
		allM = append(allM, mutates[t]...)
		gl := graphLatencies{LatencyMS: summarize(queries[t])}
		if len(patches[t]) > 0 {
			pl := summarize(patches[t])
			gl.PatchLatencyMS = &pl
		}
		if len(mutates[t]) > 0 {
			ml := summarize(mutates[t])
			gl.MutateLatencyMS = &ml
		}
		perGraph[tgt.name] = gl
	}
	if len(allQ) == 0 {
		return fmt.Errorf("no successful measured classify requests (%d errors)", nErrs)
	}

	wl := workload{
		Concurrency: p.conc, Batch: p.batch, TopK: p.topK,
		Stream: p.stream, Gzip: p.gz,
		F32: p.f32, Reorder: p.reorder,
		PatchFrac: p.patchFrac, PatchBatch: p.patchBatch,
		MutateFrac: p.mutateFrac, MutateBatch: p.mutateBatch,
		Repeat:    p.repeat,
		DurationS: elapsed.Seconds(),
		Requests:  int64(len(allQ) + len(allP) + len(allM)),
		Patches:   int64(len(allP)), Mutations: int64(len(allM)), Errors: nErrs,
		GraphNodes: targets[0].n, GraphEdges: targets[0].m,
	}
	if p.graphs > 0 {
		wl.Graphs = len(targets)
	} else {
		wl.Graph = targets[0].name
	}
	metricsAfter, afterErr := scrapeMetrics(base)
	if scrapeErr == nil {
		scrapeErr = afterErr
	}
	rep := report{
		Workload:       wl,
		QPS:            float64(wl.Requests) / elapsed.Seconds(),
		LatencyMS:      summarize(allQ),
		PerGraph:       perGraph,
		ServerMetrics:  metricsDelta(metricsBefore, metricsAfter),
		ServerTimeline: timelineTail(base),
		Timestamp:      time.Now().UTC().Format(time.RFC3339),
	}
	rep.TraceparentSent = tracesSent.Load()
	rep.TraceparentEchoed = tracesEchoed.Load()
	if rep.TraceparentSent > 0 && rep.TraceparentEchoed == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: no response echoed a traceparent (server predates tracing, or telemetry is disabled)")
	}
	if scrapeErr != nil {
		rep.ServerMetricsError = scrapeErr.Error()
	}
	if len(allP) > 0 {
		pl := summarize(allP)
		rep.PatchLatencyMS = &pl
	}
	if len(allM) > 0 {
		ml := summarize(allM)
		rep.MutateLatencyMS = &ml
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(blob))
	if p.out != "" {
		if err := os.WriteFile(p.out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loadgen: wrote %s\n", p.out)
	}
	if p.mutateFrac > 0 && p.mutateOut != "" {
		// The mutation workload's dedicated artifact: benchdiff gates its
		// mutate_latency_ms p95 (-old-mutate/-new-mutate).
		if err := os.WriteFile(p.mutateOut, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loadgen: wrote %s\n", p.mutateOut)
	}
	return nil
}

// runOnce executes one closed-loop measurement run across cfg.targets.
// Cancelling ctx stops the workers early (signal-initiated shutdown).
func runOnce(ctx context.Context, cfg config, run int64) (runResult, error) {
	client := &http.Client{Timeout: 60 * time.Second}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		qAll     = make([][]time.Duration, len(cfg.targets))
		pAll     = make([][]time.Duration, len(cfg.targets))
		mAll     = make([][]time.Duration, len(cfg.targets))
		tickets  int64 // request budget ticket counter (budget mode only)
		nErrs    int64
		budget   = cfg.requests
		warmup   = cfg.warmup
		stop     = make(chan struct{})
		started  = time.Now()
		measured atomic.Bool
	)
	if budget > 0 {
		// A fixed request budget measures every request: a warm-up window
		// would silently discard samples (all of them, for a budget that
		// drains faster than the window).
		warmup = 0
	}
	if warmup == 0 {
		measured.Store(true)
	} else {
		go func() {
			time.Sleep(warmup)
			measured.Store(true)
		}()
	}
	if budget == 0 {
		go func() {
			select {
			case <-time.After(cfg.duration + warmup):
			case <-ctx.Done():
			}
			close(stop)
		}()
	} else {
		go func() {
			<-ctx.Done()
			close(stop)
		}()
	}
	measureStart := started.Add(warmup)

	for w := 0; w < cfg.conc; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + run*1000003 + int64(worker)))
			qLocal := make([][]time.Duration, len(cfg.targets))
			pLocal := make([][]time.Duration, len(cfg.targets))
			mLocal := make([][]time.Duration, len(cfg.targets))
			// addedEdges tracks the edges this worker added per target, so
			// mutation removals target edges known to exist.
			addedEdges := make([][][2]int, len(cfg.targets))
			flush := func() {
				mu.Lock()
				for t := range cfg.targets {
					qAll[t] = append(qAll[t], qLocal[t]...)
					pAll[t] = append(pAll[t], pLocal[t]...)
					mAll[t] = append(mAll[t], mLocal[t]...)
				}
				mu.Unlock()
			}
			for {
				select {
				case <-stop:
					flush()
					return
				default:
				}
				if budget > 0 && atomic.AddInt64(&tickets, 1) > budget {
					flush()
					return
				}
				ti := 0
				if len(cfg.targets) > 1 {
					ti = rng.Intn(len(cfg.targets))
				}
				tgt := cfg.targets[ti]
				var lat time.Duration
				var err error
				kind := 0 // 0 = classify, 1 = patch, 2 = mutate
				if roll := rng.Float64(); cfg.patchFrac > 0 && roll < cfg.patchFrac {
					kind = 1
				} else if cfg.mutateFrac > 0 && roll < cfg.patchFrac+cfg.mutateFrac {
					kind = 2
				}
				switch kind {
				case 1:
					lat, err = onePatch(client, tgt.patchURL, rng, tgt.n, tgt.k, cfg.patchBatch)
				case 2:
					lat, err = oneMutate(client, tgt.edgesURL, rng, tgt.n, cfg.mutateBatch, &addedEdges[ti])
				default:
					lat, err = oneRequest(client, tgt.classifyURL, rng, tgt.n, cfg.batch, cfg.topK, cfg.stream, cfg.gz)
				}
				if err != nil {
					atomic.AddInt64(&nErrs, 1)
					continue
				}
				if measured.Load() {
					switch kind {
					case 1:
						pLocal[ti] = append(pLocal[ti], lat)
					case 2:
						mLocal[ti] = append(mLocal[ti], lat)
					default:
						qLocal[ti] = append(qLocal[ti], lat)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(measureStart)
	if elapsed <= 0 {
		elapsed = time.Since(started)
	}
	return runResult{queries: qAll, patches: pAll, mutates: mAll, errs: atomic.LoadInt64(&nErrs), elapsed: elapsed}, nil
}

// registerGraphs admits count synthetic graphs (warm, so the benchmark
// excludes build cost) and returns the names admitted so far — on error or
// cancellation the partial list is returned alongside, so the caller's
// deferred cleanup can release them.
func registerGraphs(ctx context.Context, base string, count, nodes, edges int, incremental, asyncCompact, f32 bool, reorder string, seed uint64) ([]string, error) {
	names := make([]string, 0, count)
	for i := 0; i < count; i++ {
		if err := ctx.Err(); err != nil {
			return names, err
		}
		name := fmt.Sprintf("lg-%d", i)
		body, err := json.Marshal(map[string]any{
			"name":          name,
			"incremental":   incremental,
			"async_compact": asyncCompact,
			"f32_beliefs":   f32,
			"reorder":       reorder,
			"warm":          true,
			"synthetic": map[string]any{
				"n": nodes, "m": edges, "f": 0.1, "seed": seed + uint64(i),
			},
		})
		if err != nil {
			return names, err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/graphs", bytes.NewReader(body))
		if err != nil {
			return names, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return names, fmt.Errorf("registering %s: %w", name, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusCreated:
			names = append(names, name)
		case http.StatusConflict:
			// Left over from a -keep-graphs run: reuse it.
			names = append(names, name)
		default:
			return names, fmt.Errorf("registering %s: status %d", name, resp.StatusCode)
		}
	}
	fmt.Fprintf(os.Stderr, "loadgen: registered %d synthetic graphs (%d nodes, %d edges each)\n", len(names), nodes, edges)
	return names, nil
}

// deleteGraphs best-effort unregisters the graphs a mixed-tenant run
// admitted. Deliberately context-free: it runs AFTER the run context was
// canceled (that is the point — cleanup on abort).
func deleteGraphs(base string, names []string) {
	client := &http.Client{Timeout: 10 * time.Second}
	for _, name := range names {
		req, err := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/graphs/%s", base, name), nil)
		if err != nil {
			continue
		}
		if resp, err := client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
}

// resolveTarget resolves a graph's node/edge/class counts, warming the
// engine with a one-node classify first so a cold (or file-backed) graph
// reports real dimensions and the benchmark excludes the one-off build.
func resolveTarget(base, graph string) (target, error) {
	n, m, k, err := graphDims(base, graph)
	if err != nil {
		return target{}, err
	}
	return target{
		name: graph, n: n, m: m, k: k,
		classifyURL: fmt.Sprintf("%s/v1/graphs/%s/classify", base, graph),
		patchURL:    fmt.Sprintf("%s/v1/graphs/%s/labels", base, graph),
		edgesURL:    fmt.Sprintf("%s/v1/graphs/%s/edges", base, graph),
	}, nil
}

func graphDims(base, graph string) (n, m, k int, err error) {
	warmBody := `{"nodes":[0]}`
	resp, err := http.Post(fmt.Sprintf("%s/v1/graphs/%s/classify", base, graph),
		"application/json", strings.NewReader(warmBody))
	if err != nil {
		return 0, 0, 0, fmt.Errorf("warm-up classify: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, 0, fmt.Errorf("warm-up classify: status %d", resp.StatusCode)
	}
	resp, err = http.Get(fmt.Sprintf("%s/v1/graphs/%s", base, graph))
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, 0, fmt.Errorf("GET /v1/graphs/%s: status %d", graph, resp.StatusCode)
	}
	var info struct {
		Nodes   int `json:"nodes"`
		Edges   int `json:"edges"`
		Classes int `json:"classes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return 0, 0, 0, err
	}
	if info.Nodes <= 0 {
		return 0, 0, 0, fmt.Errorf("graph %q reports %d nodes", graph, info.Nodes)
	}
	if info.Classes < 2 {
		info.Classes = 2
	}
	return info.Nodes, info.Edges, info.Classes, nil
}

// oneRequest issues a single classify call and returns its latency.
func oneRequest(client *http.Client, url string, rng *rand.Rand, n, batch, topK int, stream, gz bool) (time.Duration, error) {
	nodes := make([]int, batch)
	for i := range nodes {
		nodes[i] = rng.Intn(n)
	}
	body, err := json.Marshal(map[string]any{
		"nodes": nodes, "top_k": topK, "stream": stream,
	})
	if err != nil {
		return 0, err
	}
	return timedDo(client, "POST", url, body, gz)
}

// onePatch issues a single PATCH /labels call setting patchBatch random
// nodes to random classes.
func onePatch(client *http.Client, url string, rng *rand.Rand, n, k, patchBatch int) (time.Duration, error) {
	set := make(map[string]int, patchBatch)
	for i := 0; i < patchBatch; i++ {
		set[strconv.Itoa(rng.Intn(n))] = rng.Intn(k)
	}
	body, err := json.Marshal(map[string]any{"set": set})
	if err != nil {
		return 0, err
	}
	return timedDo(client, "PATCH", url, body, false)
}

// oneMutate issues a single PATCH /edges topology mutation: each op either
// adds a random edge (recorded in added) or removes a previously added one,
// so the graph churns without drifting unboundedly and removals always
// target existing edges.
func oneMutate(client *http.Client, url string, rng *rand.Rand, n, mutateBatch int, added *[][2]int) (time.Duration, error) {
	var set, remove [][2]int
	for i := 0; i < mutateBatch; i++ {
		if len(*added) > 0 && rng.Intn(2) == 0 {
			last := len(*added) - 1
			pick := rng.Intn(len(*added))
			e := (*added)[pick]
			(*added)[pick] = (*added)[last]
			*added = (*added)[:last]
			remove = append(remove, e)
			continue
		}
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			v = (v + 1) % n
		}
		set = append(set, [2]int{u, v})
		*added = append(*added, [2]int{u, v})
	}
	req := struct {
		Set    [][2]int `json:"set,omitempty"`
		Remove [][2]int `json:"remove,omitempty"`
	}{Set: set, Remove: remove}
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	return timedDo(client, "PATCH", url, body, false)
}

// traceparent round-trip accounting: timedDo injects a synthetic W3C
// traceparent on every measured request and counts the responses that echo
// the same trace id back, proving trace-context propagation end to end.
var tracesSent, tracesEchoed atomic.Int64

func timedDo(client *http.Client, method, url string, body []byte, gz bool) (time.Duration, error) {
	req, err := http.NewRequestWithContext(context.Background(), method, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if gz {
		req.Header.Set("Accept-Encoding", "gzip")
	}
	// Inject an unsampled traceparent: the server keeps the trace id (its
	// response header proves the round trip) but its own head sampler
	// decides capture, so injection never distorts the measured workload by
	// forcing every request into the trace store.
	tid := telemetry.NewTraceID()
	req.Header.Set("traceparent", telemetry.Traceparent(tid, telemetry.NewSpanID(), false))
	tracesSent.Add(1)
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	if rtid, _, _, ok := telemetry.ParseTraceparent(resp.Header.Get("traceparent")); ok && rtid == tid {
		tracesEchoed.Add(1)
	}
	_, copyErr := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	lat := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	if copyErr != nil {
		return 0, copyErr
	}
	return lat, nil
}
