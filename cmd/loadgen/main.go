// Command loadgen is a closed-loop load generator for the serving API: C
// workers each keep exactly one request in flight against a graph, drawing
// random node batches, until a duration or request budget is exhausted. By
// default every request is a classify; -patch-frac mixes in PATCH /labels
// writes (random nodes, random classes), which is the benchmark for the
// incremental residual subsystem — query and patch latencies are reported
// separately. -repeat aggregates the percentiles over N runs instead of a
// single one. Results are written as JSON — BENCH_serve.json by
// convention — to seed the serving-performance trajectory tracked in CI.
//
//	loadgen -addr http://localhost:8080 -graph default -c 8 -duration 10s
//	loadgen -addr http://localhost:8080 -graph demo -requests 5000 -batch 32 -stream
//	loadgen -addr http://localhost:8080 -graph demo -patch-frac 0.2 -repeat 3
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type workload struct {
	Graph       string  `json:"graph"`
	Concurrency int     `json:"concurrency"`
	Batch       int     `json:"nodes_per_request"`
	TopK        int     `json:"top_k"`
	Stream      bool    `json:"stream"`
	Gzip        bool    `json:"gzip"`
	PatchFrac   float64 `json:"patch_frac,omitempty"`
	PatchBatch  int     `json:"patch_batch,omitempty"`
	Repeat      int     `json:"repeat"`
	DurationS   float64 `json:"duration_s"`
	Requests    int64   `json:"requests"`
	Patches     int64   `json:"patches,omitempty"`
	Errors      int64   `json:"errors"`
	GraphNodes  int     `json:"graph_nodes"`
	GraphEdges  int     `json:"graph_edges"`
}

type report struct {
	Workload workload `json:"workload"`
	QPS      float64  `json:"qps"`
	// LatencyMS summarizes classify (read) requests only; patch (write)
	// requests are reported separately so a mixed workload cannot hide
	// write latency inside read percentiles.
	LatencyMS      latencies  `json:"latency_ms"`
	PatchLatencyMS *latencies `json:"patch_latency_ms,omitempty"`
	Timestamp      string     `json:"timestamp"`
}

type config struct {
	base, graph       string
	conc, batch, topK int
	duration, warmup  time.Duration
	requests          int64
	stream, gz        bool
	patchFrac         float64
	patchBatch        int
	seed              int64
	n, k              int
}

// runResult is one run's raw measurements.
type runResult struct {
	queries, patches []time.Duration
	errs             int64
	elapsed          time.Duration
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "http://127.0.0.1:8080", "server base URL")
	graph := flag.String("graph", "default", "graph name to drive")
	conc := flag.Int("c", 8, "concurrent closed-loop workers")
	duration := flag.Duration("duration", 10*time.Second, "run length (ignored when -requests > 0)")
	requests := flag.Int64("requests", 0, "per-run request budget (0 = duration-bound)")
	batch := flag.Int("batch", 16, "nodes per classify request")
	topK := flag.Int("topk", 2, "top-k class scores per node")
	stream := flag.Bool("stream", false, "request NDJSON streaming responses")
	gz := flag.Bool("gzip", false, "advertise Accept-Encoding: gzip")
	warmup := flag.Duration("warmup", 500*time.Millisecond, "measurement excluded warm-up period")
	out := flag.String("out", "BENCH_serve.json", "output JSON path ('' = stdout only)")
	seed := flag.Int64("seed", 1, "node-sampling RNG seed")
	repeat := flag.Int("repeat", 1, "number of measured runs; percentiles aggregate across all of them")
	patchFrac := flag.Float64("patch-frac", 0, "fraction of requests that are PATCH /labels writes (mixed patch+query workload)")
	patchBatch := flag.Int("patch-batch", 1, "seed labels set per patch request")
	flag.Parse()

	if *repeat < 1 {
		return fmt.Errorf("-repeat must be ≥ 1, got %d", *repeat)
	}
	if *patchFrac < 0 || *patchFrac > 1 {
		return fmt.Errorf("-patch-frac %v outside [0,1]", *patchFrac)
	}
	if *patchBatch < 1 {
		return fmt.Errorf("-patch-batch must be ≥ 1, got %d", *patchBatch)
	}

	base := strings.TrimRight(*addr, "/")
	n, m, k, err := graphDims(base, *graph)
	if err != nil {
		return err
	}
	if *batch > n {
		*batch = n
	}
	fmt.Fprintf(os.Stderr, "loadgen: graph %q has %d nodes, %d edges, %d classes; %d workers, batch=%d, top_k=%d, patch_frac=%g, repeat=%d\n",
		*graph, n, m, k, *conc, *batch, *topK, *patchFrac, *repeat)

	cfg := config{
		base: base, graph: *graph,
		conc: *conc, batch: *batch, topK: *topK,
		duration: *duration, warmup: *warmup, requests: *requests,
		stream: *stream, gz: *gz,
		patchFrac: *patchFrac, patchBatch: *patchBatch,
		seed: *seed, n: n, k: k,
	}

	var queries, patches []time.Duration
	var nErrs, nPatches int64
	var elapsed time.Duration
	for r := 0; r < *repeat; r++ {
		res, err := runOnce(cfg, int64(r))
		if err != nil {
			return fmt.Errorf("run %d/%d: %w", r+1, *repeat, err)
		}
		queries = append(queries, res.queries...)
		patches = append(patches, res.patches...)
		nErrs += res.errs
		nPatches += int64(len(res.patches))
		elapsed += res.elapsed
	}
	if len(queries) == 0 {
		return fmt.Errorf("no successful measured classify requests (%d errors)", nErrs)
	}

	rep := report{
		Workload: workload{
			Graph: *graph, Concurrency: *conc, Batch: *batch, TopK: *topK,
			Stream: *stream, Gzip: *gz,
			PatchFrac: *patchFrac, PatchBatch: *patchBatch, Repeat: *repeat,
			DurationS: elapsed.Seconds(),
			Requests:  int64(len(queries)) + nPatches, Patches: nPatches, Errors: nErrs,
			GraphNodes: n, GraphEdges: m,
		},
		QPS:       float64(len(queries)+len(patches)) / elapsed.Seconds(),
		LatencyMS: summarize(queries),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	if len(patches) > 0 {
		pl := summarize(patches)
		rep.PatchLatencyMS = &pl
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(blob))
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loadgen: wrote %s\n", *out)
	}
	return nil
}

// runOnce executes one closed-loop measurement run.
func runOnce(cfg config, run int64) (runResult, error) {
	classifyURL := fmt.Sprintf("%s/v1/graphs/%s/classify", cfg.base, cfg.graph)
	patchURL := fmt.Sprintf("%s/v1/graphs/%s/labels", cfg.base, cfg.graph)
	client := &http.Client{Timeout: 60 * time.Second}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		qAll     []time.Duration
		pAll     []time.Duration
		tickets  int64 // request budget ticket counter (budget mode only)
		nErrs    int64
		budget   = cfg.requests
		warmup   = cfg.warmup
		stop     = make(chan struct{})
		started  = time.Now()
		measured atomic.Bool
	)
	if budget > 0 {
		// A fixed request budget measures every request: a warm-up window
		// would silently discard samples (all of them, for a budget that
		// drains faster than the window).
		warmup = 0
	}
	if warmup == 0 {
		measured.Store(true)
	} else {
		go func() {
			time.Sleep(warmup)
			measured.Store(true)
		}()
	}
	if budget == 0 {
		go func() {
			time.Sleep(cfg.duration + warmup)
			close(stop)
		}()
	}
	measureStart := started.Add(warmup)

	for w := 0; w < cfg.conc; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + run*1000003 + int64(worker)))
			qLocal := make([]time.Duration, 0, 4096)
			pLocal := make([]time.Duration, 0, 512)
			flush := func() {
				mu.Lock()
				qAll = append(qAll, qLocal...)
				pAll = append(pAll, pLocal...)
				mu.Unlock()
			}
			for {
				select {
				case <-stop:
					flush()
					return
				default:
				}
				if budget > 0 && atomic.AddInt64(&tickets, 1) > budget {
					flush()
					return
				}
				isPatch := cfg.patchFrac > 0 && rng.Float64() < cfg.patchFrac
				var lat time.Duration
				var err error
				if isPatch {
					lat, err = onePatch(client, patchURL, rng, cfg.n, cfg.k, cfg.patchBatch)
				} else {
					lat, err = oneRequest(client, classifyURL, rng, cfg.n, cfg.batch, cfg.topK, cfg.stream, cfg.gz)
				}
				if err != nil {
					atomic.AddInt64(&nErrs, 1)
					continue
				}
				if measured.Load() {
					if isPatch {
						pLocal = append(pLocal, lat)
					} else {
						qLocal = append(qLocal, lat)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(measureStart)
	if elapsed <= 0 {
		elapsed = time.Since(started)
	}
	return runResult{queries: qAll, patches: pAll, errs: atomic.LoadInt64(&nErrs), elapsed: elapsed}, nil
}

// graphDims resolves the graph's node/edge/class counts, warming the engine
// with a one-node classify first so a cold (or file-backed) graph reports
// real dimensions and the benchmark excludes the one-off build.
func graphDims(base, graph string) (n, m, k int, err error) {
	warmBody := `{"nodes":[0]}`
	resp, err := http.Post(fmt.Sprintf("%s/v1/graphs/%s/classify", base, graph),
		"application/json", strings.NewReader(warmBody))
	if err != nil {
		return 0, 0, 0, fmt.Errorf("warm-up classify: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, 0, fmt.Errorf("warm-up classify: status %d", resp.StatusCode)
	}
	resp, err = http.Get(fmt.Sprintf("%s/v1/graphs/%s", base, graph))
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, 0, fmt.Errorf("GET /v1/graphs/%s: status %d", graph, resp.StatusCode)
	}
	var info struct {
		Nodes   int `json:"nodes"`
		Edges   int `json:"edges"`
		Classes int `json:"classes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return 0, 0, 0, err
	}
	if info.Nodes <= 0 {
		return 0, 0, 0, fmt.Errorf("graph %q reports %d nodes", graph, info.Nodes)
	}
	if info.Classes < 2 {
		info.Classes = 2
	}
	return info.Nodes, info.Edges, info.Classes, nil
}

// oneRequest issues a single classify call and returns its latency.
func oneRequest(client *http.Client, url string, rng *rand.Rand, n, batch, topK int, stream, gz bool) (time.Duration, error) {
	nodes := make([]int, batch)
	for i := range nodes {
		nodes[i] = rng.Intn(n)
	}
	body, err := json.Marshal(map[string]any{
		"nodes": nodes, "top_k": topK, "stream": stream,
	})
	if err != nil {
		return 0, err
	}
	return timedDo(client, "POST", url, body, gz)
}

// onePatch issues a single PATCH /labels call setting patchBatch random
// nodes to random classes.
func onePatch(client *http.Client, url string, rng *rand.Rand, n, k, patchBatch int) (time.Duration, error) {
	set := make(map[string]int, patchBatch)
	for i := 0; i < patchBatch; i++ {
		set[strconv.Itoa(rng.Intn(n))] = rng.Intn(k)
	}
	body, err := json.Marshal(map[string]any{"set": set})
	if err != nil {
		return 0, err
	}
	return timedDo(client, "PATCH", url, body, false)
}

func timedDo(client *http.Client, method, url string, body []byte, gz bool) (time.Duration, error) {
	req, err := http.NewRequestWithContext(context.Background(), method, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if gz {
		req.Header.Set("Accept-Encoding", "gzip")
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	_, copyErr := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	lat := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	if copyErr != nil {
		return 0, copyErr
	}
	return lat, nil
}
