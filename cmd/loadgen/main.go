// Command loadgen is a closed-loop load generator for the serving API: C
// workers each keep exactly one classify request in flight against
// /v1/graphs/{name}/classify, drawing random node batches, until a duration
// or request budget is exhausted. It reports throughput (QPS) and latency
// percentiles (p50/p95/p99) and writes them as JSON — BENCH_serve.json by
// convention — to seed the serving-performance trajectory tracked in CI.
//
//	loadgen -addr http://localhost:8080 -graph default -c 8 -duration 10s
//	loadgen -addr http://localhost:8080 -graph demo -requests 5000 -batch 32 -stream
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type workload struct {
	Graph       string  `json:"graph"`
	Concurrency int     `json:"concurrency"`
	Batch       int     `json:"nodes_per_request"`
	TopK        int     `json:"top_k"`
	Stream      bool    `json:"stream"`
	Gzip        bool    `json:"gzip"`
	DurationS   float64 `json:"duration_s"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	GraphNodes  int     `json:"graph_nodes"`
	GraphEdges  int     `json:"graph_edges"`
}

type latencies struct {
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
	Mean   float64 `json:"mean"`
	Max    float64 `json:"max"`
	Sample int     `json:"samples"`
}

type report struct {
	Workload  workload  `json:"workload"`
	QPS       float64   `json:"qps"`
	LatencyMS latencies `json:"latency_ms"`
	Timestamp string    `json:"timestamp"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "http://127.0.0.1:8080", "server base URL")
	graph := flag.String("graph", "default", "graph name to drive")
	conc := flag.Int("c", 8, "concurrent closed-loop workers")
	duration := flag.Duration("duration", 10*time.Second, "run length (ignored when -requests > 0)")
	requests := flag.Int64("requests", 0, "total request budget (0 = duration-bound)")
	batch := flag.Int("batch", 16, "nodes per classify request")
	topK := flag.Int("topk", 2, "top-k class scores per node")
	stream := flag.Bool("stream", false, "request NDJSON streaming responses")
	gz := flag.Bool("gzip", false, "advertise Accept-Encoding: gzip")
	warmup := flag.Duration("warmup", 500*time.Millisecond, "measurement excluded warm-up period")
	out := flag.String("out", "BENCH_serve.json", "output JSON path ('' = stdout only)")
	seed := flag.Int64("seed", 1, "node-sampling RNG seed")
	flag.Parse()

	base := strings.TrimRight(*addr, "/")
	n, m, err := graphDims(base, *graph)
	if err != nil {
		return err
	}
	if *batch > n {
		*batch = n
	}
	fmt.Fprintf(os.Stderr, "loadgen: graph %q has %d nodes, %d edges; %d workers, batch=%d, top_k=%d\n",
		*graph, n, m, *conc, *batch, *topK)

	url := fmt.Sprintf("%s/v1/graphs/%s/classify", base, *graph)
	client := &http.Client{Timeout: 60 * time.Second}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		all      []time.Duration
		tickets  int64 // request budget ticket counter (budget mode only)
		nErrs    int64
		budget   = *requests
		stop     = make(chan struct{})
		started  = time.Now()
		measured atomic.Bool
	)
	if budget > 0 {
		// A fixed request budget measures every request: a warm-up window
		// would silently discard samples (all of them, for a budget that
		// drains faster than the window).
		*warmup = 0
	}
	if *warmup == 0 {
		measured.Store(true)
	} else {
		go func() {
			time.Sleep(*warmup)
			measured.Store(true)
		}()
	}
	if budget == 0 {
		go func() {
			time.Sleep(*duration + *warmup)
			close(stop)
		}()
	}
	measureStart := started.Add(*warmup)

	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(worker)))
			local := make([]time.Duration, 0, 4096)
			for {
				select {
				case <-stop:
					mu.Lock()
					all = append(all, local...)
					mu.Unlock()
					return
				default:
				}
				if budget > 0 && atomic.AddInt64(&tickets, 1) > budget {
					mu.Lock()
					all = append(all, local...)
					mu.Unlock()
					return
				}
				lat, err := oneRequest(client, url, rng, n, *batch, *topK, *stream, *gz)
				if err != nil {
					atomic.AddInt64(&nErrs, 1)
					continue
				}
				if measured.Load() {
					local = append(local, lat)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(measureStart)
	if elapsed <= 0 {
		elapsed = time.Since(started)
	}

	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if len(all) == 0 {
		return fmt.Errorf("no successful measured requests (%d errors)", atomic.LoadInt64(&nErrs))
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	var sum time.Duration
	for _, d := range all {
		sum += d
	}
	rep := report{
		Workload: workload{
			Graph: *graph, Concurrency: *conc, Batch: *batch, TopK: *topK,
			Stream: *stream, Gzip: *gz,
			DurationS: elapsed.Seconds(),
			Requests:  int64(len(all)), Errors: atomic.LoadInt64(&nErrs),
			GraphNodes: n, GraphEdges: m,
		},
		QPS: float64(len(all)) / elapsed.Seconds(),
		LatencyMS: latencies{
			P50:    ms(percentile(all, 0.50)),
			P95:    ms(percentile(all, 0.95)),
			P99:    ms(percentile(all, 0.99)),
			Mean:   ms(sum / time.Duration(len(all))),
			Max:    ms(all[len(all)-1]),
			Sample: len(all),
		},
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(blob))
	if *out != "" {
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loadgen: wrote %s\n", *out)
	}
	return nil
}

// percentile returns the p-quantile of sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// graphDims resolves the graph's node/edge counts, warming the engine with
// a one-node classify first so a cold (or file-backed) graph reports real
// dimensions and the benchmark excludes the one-off build.
func graphDims(base, graph string) (n, m int, err error) {
	warmBody := `{"nodes":[0]}`
	resp, err := http.Post(fmt.Sprintf("%s/v1/graphs/%s/classify", base, graph),
		"application/json", strings.NewReader(warmBody))
	if err != nil {
		return 0, 0, fmt.Errorf("warm-up classify: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("warm-up classify: status %d", resp.StatusCode)
	}
	resp, err = http.Get(fmt.Sprintf("%s/v1/graphs/%s", base, graph))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("GET /v1/graphs/%s: status %d", graph, resp.StatusCode)
	}
	var info struct {
		Nodes int `json:"nodes"`
		Edges int `json:"edges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return 0, 0, err
	}
	if info.Nodes <= 0 {
		return 0, 0, fmt.Errorf("graph %q reports %d nodes", graph, info.Nodes)
	}
	return info.Nodes, info.Edges, nil
}

// oneRequest issues a single classify call and returns its latency.
func oneRequest(client *http.Client, url string, rng *rand.Rand, n, batch, topK int, stream, gz bool) (time.Duration, error) {
	nodes := make([]int, batch)
	for i := range nodes {
		nodes[i] = rng.Intn(n)
	}
	body, err := json.Marshal(map[string]any{
		"nodes": nodes, "top_k": topK, "stream": stream,
	})
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(context.Background(), "POST", url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if gz {
		req.Header.Set("Accept-Encoding", "gzip")
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	_, copyErr := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	lat := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	if copyErr != nil {
		return 0, copyErr
	}
	return lat, nil
}
