package main

import (
	"sort"
	"time"
)

// latencies is the percentile summary of one latency population.
type latencies struct {
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
	Mean   float64 `json:"mean"`
	Max    float64 `json:"max"`
	Sample int     `json:"samples"`
}

// percentile returns the p-quantile of sorted latencies (nearest-rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// summarize sorts samples in place (possibly aggregated across several
// runs) and reduces them to the percentile summary the report carries.
func summarize(samples []time.Duration) latencies {
	if len(samples) == 0 {
		return latencies{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	return latencies{
		P50:    ms(percentile(samples, 0.50)),
		P95:    ms(percentile(samples, 0.95)),
		P99:    ms(percentile(samples, 0.99)),
		Mean:   ms(sum / time.Duration(len(samples))),
		Max:    ms(samples[len(samples)-1]),
		Sample: len(samples),
	}
}
