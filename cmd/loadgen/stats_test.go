package main

import (
	"testing"
	"time"
)

func TestPercentile(t *testing.T) {
	var s []time.Duration
	if got := percentile(s, 0.5); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
	for i := 1; i <= 100; i++ {
		s = append(s, time.Duration(i)*time.Millisecond)
	}
	if got := percentile(s, 0.50); got != 51*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := percentile(s, 0.99); got != 100*time.Millisecond {
		t.Errorf("p99 = %v", got)
	}
	if got := percentile(s, 1.0); got != 100*time.Millisecond {
		t.Errorf("p100 clamped = %v", got)
	}
}

// TestSummarizeAggregatesAcrossRuns: summarize over the concatenation of
// two runs' samples must equal summarize over a single combined population
// — the property -repeat relies on.
func TestSummarizeAggregatesAcrossRuns(t *testing.T) {
	run1 := []time.Duration{3 * time.Millisecond, 1 * time.Millisecond, 2 * time.Millisecond}
	run2 := []time.Duration{6 * time.Millisecond, 4 * time.Millisecond, 5 * time.Millisecond}
	combined := append(append([]time.Duration(nil), run1...), run2...)
	got := summarize(combined)
	if got.Sample != 6 {
		t.Errorf("samples = %d, want 6", got.Sample)
	}
	if got.Max != 6 {
		t.Errorf("max = %v, want 6", got.Max)
	}
	if got.Mean != 3.5 {
		t.Errorf("mean = %v, want 3.5", got.Mean)
	}
	if got.P50 != 4 { // nearest-rank: index 3 of [1 2 3 4 5 6]
		t.Errorf("p50 = %v, want 4", got.P50)
	}
	if s := summarize(nil); s.Sample != 0 || s.P99 != 0 {
		t.Errorf("empty summarize = %+v", s)
	}
}
