// Command serve runs the factorgraph classification engine as a long-lived
// HTTP/JSON service: the graph is loaded and preprocessed once (CSR, ρ(W),
// compatibility estimate), then /v1/classify answers concurrent queries
// from the cached state.
//
// Serve a real graph:
//
//	serve -edges graph.tsv -labels seeds.tsv -k 3 -addr :8080
//
// Or a synthetic planted graph for demos and load tests:
//
//	serve -synthetic -n 20000 -m 100000 -k 3 -f 0.05 -addr :8080
//
// Endpoints: GET /healthz, POST /v1/estimate, POST /v1/classify,
// GET /v1/labels, PATCH /v1/labels. See internal/serve for the wire format.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"factorgraph"
	"factorgraph/internal/graph"
	"factorgraph/internal/labels"
	"factorgraph/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	edgesPath := flag.String("edges", "", "edge-list path (TSV: u\\tv[\\tw])")
	labelsPath := flag.String("labels", "", "seed labels path (TSV: node\\tlabel)")
	k := flag.Int("k", 0, "number of classes (default: inferred from labels)")
	estimator := flag.String("estimator", "dcer", "compatibility estimator: dcer, dce, mce, lce, holdout")
	synthetic := flag.Bool("synthetic", false, "serve a synthetic planted graph instead of files")
	n := flag.Int("n", 20000, "synthetic: number of nodes")
	m := flag.Int("m", 100000, "synthetic: number of edges")
	skew := flag.Float64("skew", 3, "synthetic: compatibility skew h")
	f := flag.Float64("f", 0.05, "synthetic: labeled fraction")
	seed := flag.Uint64("seed", 1, "synthetic: RNG seed")
	flag.Parse()

	g, seeds, kk, err := loadInputs(*synthetic, *edgesPath, *labelsPath, *k, *n, *m, *skew, *f, *seed)
	if err != nil {
		return err
	}
	log.Printf("graph loaded: %d nodes, %d edges, k=%d, %d seed labels",
		g.N, g.M, kk, labels.NumLabeled(seeds))

	start := time.Now()
	eng, err := factorgraph.NewEngine(g, seeds, kk,
		factorgraph.EngineOptions{Estimator: *estimator})
	if err != nil {
		return err
	}
	est := eng.Estimate()
	log.Printf("engine ready in %s (estimator=%s, estimation=%s)",
		time.Since(start).Round(time.Millisecond), est.Method, est.Runtime.Round(time.Millisecond))

	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.New(eng),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("received %s, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

func loadInputs(synthetic bool, edgesPath, labelsPath string, k, n, m int, skew, f float64, seed uint64) (*factorgraph.Graph, []int, int, error) {
	if synthetic {
		if k == 0 {
			k = 3 // flag default: unset means a 3-class demo graph
		}
		if k < 2 {
			return nil, nil, 0, fmt.Errorf("-k must be ≥ 2, got %d", k)
		}
		g, truth, err := factorgraph.Generate(factorgraph.GenerateConfig{
			N: n, M: m, K: k, H: factorgraph.SkewedH(k, skew), Seed: seed,
		})
		if err != nil {
			return nil, nil, 0, err
		}
		seeds, err := factorgraph.SampleSeeds(truth, k, f, seed)
		if err != nil {
			return nil, nil, 0, err
		}
		return g, seeds, k, nil
	}
	if edgesPath == "" || labelsPath == "" {
		return nil, nil, 0, fmt.Errorf("need -edges and -labels (or -synthetic)")
	}
	g, seeds, err := graph.LoadFiles(edgesPath, labelsPath)
	if err != nil {
		return nil, nil, 0, err
	}
	if k == 0 {
		k = labels.NumClasses(seeds)
	}
	return g, seeds, k, nil
}
