// Command serve runs the factorgraph classification service as a
// long-lived, multi-tenant HTTP/JSON server. Graphs live in a registry:
// they are admitted by name (POST /v1/graphs with a synthetic spec, server
// file paths, or an inline upload), their engines are built lazily on
// first use — with concurrent first requests deduplicated into one build —
// and cold engines are evicted LRU under a configurable memory budget and
// rebuilt transparently on the next access.
//
// The single-graph flags pre-register a graph named "default", so the PR 1
// endpoints (POST /v1/classify etc.) keep working unchanged:
//
//	serve -edges graph.tsv -labels seeds.tsv -k 3 -addr :8080
//	serve -synthetic -n 20000 -m 100000 -k 3 -f 0.05 -addr :8080
//
// Or start empty and admit graphs over HTTP:
//
//	serve -addr :8080 -mem-budget-mb 2048
//	curl -X POST localhost:8080/v1/graphs -d '{"name":"demo","synthetic":{"n":20000,"m":100000}}'
//
// Endpoints: GET /healthz, GET /metrics, GET /v1/admin/registry,
// GET /v1/admin/build, GET /v1/admin/timeline, GET /v1/admin/slowlog,
// GET /v1/admin/health, GET /v1/admin/traces, GET /v1/admin/tenants,
// POST|GET /v1/graphs, GET|DELETE /v1/graphs/{name},
// POST /v1/graphs/{name}/estimate|classify, GET|PATCH
// /v1/graphs/{name}/labels|edges, plus the legacy default-graph aliases.
// See internal/serve for the wire format.
//
// Observability: Prometheus-text metrics at /metrics (on -addr, or on a
// separate -metrics-addr admin listener, which also mounts /debug/pprof;
// -pprof mounts pprof on the main listener too). Logs go through log/slog
// (-log-format text|json, -log-level; debug level adds per-request access
// logs). Non-streaming classify accepts ?debug=1 for a per-stage timing
// breakdown. The flight recorder adds per-graph series to /metrics, a
// rolling timeline ring (-timeline-interval, -timeline-samples), and an
// adaptive slow-query log (-slowlog-factor, -slowlog-floor). Distributed
// tracing: engine-backed requests extract and echo W3C traceparent
// headers, a head sampler (-trace-sample, plus forced capture on errors
// and slow requests) feeds the bounded trace ring behind /v1/admin/traces
// (-trace-capacity), latency histograms carry exemplar trace ids, and the
// per-tenant cost report is served at /v1/admin/tenants.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"factorgraph"
	"factorgraph/internal/registry"
	"factorgraph/internal/serve"
	"factorgraph/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	edgesPath := flag.String("edges", "", "default graph: edge-list path (TSV: u\\tv[\\tw])")
	labelsPath := flag.String("labels", "", "default graph: seed labels path (TSV: node\\tlabel)")
	k := flag.Int("k", 0, "default graph: number of classes (default: inferred from labels)")
	estimator := flag.String("estimator", "dcer", "compatibility estimator: dcer, dce, mce, lce, holdout")
	synthetic := flag.Bool("synthetic", false, "serve a synthetic planted graph as the default graph")
	n := flag.Int("n", 20000, "synthetic: number of nodes")
	m := flag.Int("m", 100000, "synthetic: number of edges")
	skew := flag.Float64("skew", 3, "synthetic: compatibility skew h")
	f := flag.Float64("f", 0.05, "synthetic: labeled fraction")
	seed := flag.Uint64("seed", 1, "synthetic: RNG seed")
	budgetMB := flag.Int64("mem-budget-mb", 0, "engine memory budget in MiB; cold graphs beyond it are evicted LRU (0 = unlimited)")
	flushEvery := flag.Int("flush-every", 256, "NDJSON records between flushes on streaming classify responses")
	incremental := flag.Bool("incremental", true, "default graph: enable push-based residual propagation (o(Δ) label patches, copy-on-write what-if overlays)")
	residualTol := flag.Float64("residual-tol", 0, "default graph: per-node residual tolerance for -incremental (0 = engine default 1e-8)")
	compactFrac := flag.Float64("compact-frac", 0, "default graph: delta-overlay share triggering topology compaction on PATCH /edges (0 = engine default 0.25; requires -incremental)")
	asyncCompact := flag.Bool("async-compact", false, "default graph: build fraction-triggered compactions in the background and swap epochs off the mutation path (requires -incremental)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error (debug adds per-request access logs)")
	metricsAddr := flag.String("metrics-addr", "", "separate admin listen address for /metrics and /debug/pprof (empty = serve them on -addr)")
	pprofFlag := flag.Bool("pprof", false, "mount /debug/pprof on the main -addr listener (the -metrics-addr listener always has it)")
	timelineInterval := flag.Duration("timeline-interval", 0, "flight recorder: sampling resolution of /v1/admin/timeline (0 = default 10s)")
	timelineSamples := flag.Int("timeline-samples", 0, "flight recorder: ring length per timeline series (0 = default 90)")
	slowFactor := flag.Float64("slowlog-factor", 0, "flight recorder: capture requests slower than this multiple of the tracked p99 (0 = default 3)")
	slowFloor := flag.Duration("slowlog-floor", 0, "flight recorder: hard minimum slow-query threshold, also active during p99 warmup (0 = adaptive only)")
	traceSample := flag.Float64("trace-sample", 0, "tracing: head-sampling fraction of requests captured into /v1/admin/traces (0 = default 0.01, negative = off; errors and slow requests are always captured)")
	traceCapacity := flag.Int("trace-capacity", 0, "tracing: in-process trace ring size behind /v1/admin/traces (0 = default 256)")
	flag.Parse()

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		return err
	}
	slog.SetDefault(logger)

	// The registry treats zero synthetic parameters as "use the default",
	// which a JSON API needs (omitted and zero are indistinguishable) but a
	// CLI does not: an operator typing -f 0 or -skew 0 means zero, and
	// silently substituting 0.05/3 would serve a different graph than asked
	// for. Reject explicitly-zeroed values instead.
	var flagErr error
	if *synthetic {
		flag.Visit(func(fl *flag.Flag) {
			if (fl.Name == "f" && *f == 0) || (fl.Name == "skew" && *skew == 0) {
				flagErr = fmt.Errorf("-%s 0 is not servable (an engine needs seed labels and a non-degenerate H); omit the flag for the default", fl.Name)
			}
		})
	}
	if flagErr != nil {
		return flagErr
	}

	reg := registry.New(registry.Options{MemoryBudget: *budgetMB << 20})
	srvHandler := serve.NewMulti(reg, serve.Options{
		FlushEvery:         *flushEvery,
		Logger:             logger,
		Pprof:              *pprofFlag,
		TimelineInterval:   *timelineInterval,
		TimelineSamples:    *timelineSamples,
		SlowLogFactor:      *slowFactor,
		SlowLogFloor:       *slowFloor,
		TraceSampleRate:    *traceSample,
		TraceStoreCapacity: *traceCapacity,
	})
	defer srvHandler.Close()

	if spec, ok, err := defaultSpec(*synthetic, *edgesPath, *labelsPath, *k, *n, *m, *skew, *f, *seed, *estimator, *incremental, *residualTol, *compactFrac, *asyncCompact); err != nil {
		return err
	} else if ok {
		if _, err := reg.Register(serve.DefaultGraph, spec); err != nil {
			return err
		}
		// Warm the default graph eagerly so the first query is fast and a
		// broken flag combination fails at boot, not at first request.
		start := time.Now()
		eng, release, err := reg.Acquire(serve.DefaultGraph)
		if err != nil {
			return err
		}
		g := eng.Graph()
		est := eng.Estimate()
		logger.Info("default graph ready",
			slog.Duration("build", time.Since(start).Round(time.Millisecond)),
			slog.Int("nodes", g.N), slog.Int("edges", g.M), slog.Int("k", eng.K()),
			slog.String("estimator", est.Method),
			slog.Duration("estimation", est.Runtime.Round(time.Millisecond)),
			slog.Int64("mib", eng.MemoryFootprint()>>20))
		release()
	} else {
		logger.Info("no default graph; admit graphs via POST /v1/graphs")
	}
	if *budgetMB > 0 {
		logger.Info("engine memory budget set", slog.Int64("mib", *budgetMB))
	}

	if *metricsAddr != "" {
		go func() {
			admin := http.NewServeMux()
			admin.Handle("GET /metrics", telemetry.Handler(telemetry.Default()))
			admin.HandleFunc("GET /debug/pprof/", pprof.Index)
			admin.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
			admin.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
			admin.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
			admin.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
			adminSrv := &http.Server{
				Addr:              *metricsAddr,
				Handler:           admin,
				ReadHeaderTimeout: 10 * time.Second,
			}
			logger.Info("admin listener up", slog.String("addr", *metricsAddr))
			if err := adminSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("admin listener failed", slog.String("error", err.Error()))
			}
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           srvHandler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", slog.String("addr", *addr))
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		logger.Info("shutting down", slog.String("signal", sig.String()))
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

// newLogger builds the process logger from the -log-format/-log-level
// flags. Text goes to stderr in slog's key=value form; json emits one JSON
// object per line for log shippers.
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "info", "":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level %q: want debug, info, warn or error", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "text", "":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("-log-format %q: want text or json", format)
}

// defaultSpec translates the single-graph flags into a registry spec for
// the "default" graph; ok is false when no default graph was requested.
func defaultSpec(synthetic bool, edgesPath, labelsPath string, k, n, m int, skew, f float64, seed uint64, estimator string, incremental bool, residualTol, compactFrac float64, asyncCompact bool) (registry.Spec, bool, error) {
	opts := factorgraph.EngineOptions{Estimator: estimator, Incremental: incremental}
	if incremental {
		opts.ResidualTol = residualTol
		opts.CompactFraction = compactFrac
		opts.AsyncCompact = asyncCompact
	} else if residualTol != 0 {
		return registry.Spec{}, false, fmt.Errorf("-residual-tol requires -incremental")
	} else if compactFrac != 0 {
		return registry.Spec{}, false, fmt.Errorf("-compact-frac requires -incremental")
	} else if asyncCompact {
		return registry.Spec{}, false, fmt.Errorf("-async-compact requires -incremental")
	}
	if synthetic {
		if k != 0 && k < 2 {
			return registry.Spec{}, false, fmt.Errorf("-k must be ≥ 2, got %d", k)
		}
		return registry.Spec{
			Synthetic: &registry.SyntheticSpec{N: n, M: m, Skew: skew, F: f, Seed: seed},
			K:         k,
			Options:   opts,
		}, true, nil
	}
	if edgesPath == "" && labelsPath == "" {
		return registry.Spec{}, false, nil
	}
	if edgesPath == "" || labelsPath == "" {
		return registry.Spec{}, false, fmt.Errorf("need both -edges and -labels (or -synthetic, or neither for an empty registry)")
	}
	return registry.Spec{
		Files:   &registry.FileSpec{Edges: edgesPath, Labels: labelsPath},
		K:       k,
		Options: opts,
	}, true, nil
}
