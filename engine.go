package factorgraph

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"factorgraph/internal/core"
	"factorgraph/internal/delta"
	"factorgraph/internal/dense"
	"factorgraph/internal/exec"
	"factorgraph/internal/graph"
	"factorgraph/internal/labels"
	"factorgraph/internal/propagation"
	"factorgraph/internal/residual"
	"factorgraph/internal/sparse"
	"factorgraph/internal/telemetry"
)

// ErrUnknownEstimator is wrapped by estimation entry points when the
// estimator name does not exist; callers (the HTTP layer) use it to
// distinguish a caller mistake from an estimation failure.
var ErrUnknownEstimator = errors.New("unknown estimator")

// ErrEngineInternal is wrapped by engine failures that are NOT the fault of
// the request (e.g. a propagation state that cannot be built); the HTTP
// layer maps these to 5xx instead of 4xx.
var ErrEngineInternal = errors.New("engine internal error")

// ErrEngineClosed is returned by operations on an Engine after Close. The
// registry guarantees (via refcounts) that a managed engine is never closed
// while a request holds it; this error is the defensive backstop for
// callers that retain a stale pointer anyway.
var ErrEngineClosed = errors.New("engine closed")

// Engine is the long-lived serving counterpart of the one-shot pipeline
// (Classify): it loads a graph once, performs the expensive preprocessing
// once — CSR construction (done by the Graph), the spectral radius ρ(W),
// and the compatibility estimate H from the configured estimator — and then
// answers classification queries concurrently.
//
// Concurrency model: queries take a read lock and serve from an immutable
// belief snapshot; label updates and re-estimation take the write lock to
// mutate the seed state and invalidate the snapshot, which the next query
// rebuilds. On Incremental engines the write lock is narrow: a label
// patch's residual flush runs on a cloned copy-on-write view
// (residual.Patch) with NO engine lock held — concurrent readers keep
// serving the untouched pre-patch beliefs — and only the final
// belief/residual row swap (Patch.Apply) takes the write lock. patchMu
// serializes patch sessions against each other, never against readers.
// What-if queries (Query.ExtraSeeds) run on copy-on-write overlays (or a
// pooled propagation.State on the non-incremental path), so steady-state
// serving does not allocate per query. All execution — dense rounds and
// saturated residual drains alike — runs on the shared parallel core in
// internal/exec over internal/sparse's worker pool.
type Engine struct {
	mu sync.RWMutex

	g        *Graph
	k        int
	seeds    []int         // current seed labels, Unlabeled for unknown
	nLabeled int           // labeled-seed count, maintained incrementally
	x        *dense.Matrix // explicit-belief matrix kept in sync with seeds
	est      *Estimate     // current compatibility estimate

	snap   *snapshot  // cached propagation result; nil ⇒ stale
	gen    int64      // bumped under mu on every seed/H/topology change
	pool   *sync.Pool // *propagation.State bound to the current H
	eopts  EngineOptions
	closed bool // set by Close; all expensive operations refuse afterwards
	shed   bool // transient state dropped by ReleaseTransient; cleared on rebuild

	// topo is the mutable topology (Incremental engines only): the frozen
	// base CSR plus the copy-on-write delta overlay that MutateTopology
	// publishes new epochs of. nil on non-incremental engines — their
	// topology is immutable. rhoW is the canonical ρ(W) of the current
	// epoch's base CSR; ε is pinned to it between compactions.
	topo *delta.Graph
	rhoW float64

	// perm maps external (wire) node ids to internal CSR rows when the
	// locality-aware reordering pass is active (EngineOptions.Reorder).
	// Everything the engine stores — g, seeds, x, topo, res, snapshots — is
	// in internal order; external ids are translated exactly once at the
	// boundaries (query nodes, extra seeds, label patches, edge mutations,
	// emitted results). nil means identity (no reordering). Guarded by mu:
	// synchronous compactions swap it together with everything indexed by it.
	perm *sparse.Perm

	// sched is the exec drain schedule pinned for the current topology
	// epoch: measured by exec.Tune at build and at each compaction on
	// incremental engines, static defaults otherwise. An atomic pointer so
	// snapshot rebuilds (which run without mu) read a consistent value.
	sched atomic.Pointer[exec.Schedule]

	// compacting marks a background compactor building the next epoch
	// (AsyncCompact engines only); mutations keep landing in fresh
	// overlays stacked on the frozen epoch meanwhile. Guarded by mu;
	// compactCond broadcasts when it clears (WaitCompaction).
	compacting  bool
	compactCond *sync.Cond

	// nNodes is the live node count (grown by node additions); lock-free
	// so validation on the hot query paths never takes the engine lock.
	nNodes atomic.Int64

	// res is the live residual-propagation state (Incremental engines
	// only): beliefs converged to the current (seeds, H) pair, updated in
	// place by o(Δ) pushes on label patches. nil ⇒ cold or invalidated by
	// an H change; the next snapshot rebuild re-initializes it with one
	// full propagation.
	res *residual.State

	rebuildMu sync.Mutex // serializes snapshot rebuilds (never held with mu)
	patchMu   sync.Mutex // serializes residual patch sessions (acquired before mu)

	// ovCache memoizes what-if overlay frontiers keyed by the canonical
	// extra-seed set, so repeated interactive what-ifs skip the re-push
	// entirely. Entries are validated against gen: any seed or H change
	// invalidates them lazily.
	ovCache overlayCache

	// Cached factorized summaries (the M⁽ℓ⁾/P̂⁽ℓ⁾ sketches). They depend
	// only on the graph and the seed labels — not on H — so they are keyed
	// by labelGen, which UpdateLabels bumps but SetH/Reestimate do not.
	// All sketch-based estimators (DCEr, DCE, MCE) share one summarization.
	labelGen int64 // bumped under mu on seed changes only
	sumMu    sync.Mutex
	sums     *core.Summaries
	sumGen   int64 // labelGen the cached summaries were computed at
	// sumDrift is the cumulative |Δw| folded into the cached sketches by
	// incremental edge-delta updates since their last full summarization;
	// past sketchDriftFraction of the live edge count the cache is dropped
	// (the first-order updates accumulate O(Δw²) error). Guarded by sumMu.
	sumDrift float64

	// epochAt is when the current topology epoch was published — at
	// construction, then at every installEpoch. Guarded by mu; the health
	// surface reports its age so operators can see ε-staleness building
	// up on mutation-heavy graphs that never hit a compaction trigger.
	epochAt time.Time

	nEstimations       atomic.Int64
	nPropagations      atomic.Int64
	nQueries           atomic.Int64
	nLabelUpdates      atomic.Int64
	nSummarizations    atomic.Int64
	nResidualPatches   atomic.Int64
	nResidualPushes    atomic.Int64
	nResidualFallbacks atomic.Int64
	nOverlayCacheHits  atomic.Int64
	nEdgeMutations     atomic.Int64
	nCompactions       atomic.Int64
	nRescales          atomic.Int64
	nAsyncCompactions  atomic.Int64
	nSketchUpdates     atomic.Int64
}

// snapshot is an immutable (beliefs, labels) pair; readers that hold a
// pointer to one can format responses without any lock. perm is the id
// mapping the rows are ordered by — carried along so a formatter racing a
// compaction-time reorder still translates with the mapping its rows were
// built under.
type snapshot struct {
	beliefs *dense.Matrix
	labels  []int
	perm    *sparse.Perm
}

// EngineOptions configures an Engine. The zero value estimates H with DCEr
// (the paper's recommended method) and propagates with the paper's LinBP
// defaults (s = 0.5, 10 iterations, centered).
type EngineOptions struct {
	// Estimator selects the compatibility estimator: "dcer" (default),
	// "dce", "mce", "lce" or "holdout".
	Estimator string
	// Estimate tunes the DCE/DCEr estimators (ℓmax, λ, restarts, seed).
	Estimate EstimateOptions
	// S is the LinBP convergence parameter s ∈ (0,1); default 0.5. Values
	// outside (0,1) are rejected: the serving engine must never iterate a
	// non-contracting update (the library-level LinBPOptions stays
	// permissive for divergence experiments).
	S float64
	// Iterations is the LinBP iteration count; default 10.
	Iterations int
	// Incremental enables the push-based residual propagation subsystem
	// (internal/residual): beliefs are maintained at the LinBP fixed point
	// (to ResidualTol) and label updates cost o(Δ) pushes around the
	// perturbed neighborhood instead of a full re-propagation; what-if
	// overlays clone only the belief rows their frontier touches. In this
	// mode Iterations is not used — convergence is tolerance-driven — and
	// a full propagation runs only on the first query per (graph, H) pair,
	// after SetH/Reestimate, or when a perturbation spreads so far that
	// dense sweeps are cheaper than pushing (the engine falls back
	// automatically and counts it in Stats().ResidualFallbacks).
	Incremental bool
	// ResidualTol is the per-node residual ∞-norm tolerance of the
	// incremental mode; 0 means residual.DefaultTol (1e-8). Setting it
	// without Incremental is an error rather than a silent no-op.
	ResidualTol float64
	// ResidualEdgeBudget bounds a single push pass at
	// ResidualEdgeBudget × nnz(W) edge traversals before the subsystem
	// falls back to dense sweeps (patches) or a full propagation
	// (overlays); 0 means the residual package default (4). Raise it on
	// small or dense graphs where frontiers saturate quickly. Setting it
	// without Incremental is an error.
	ResidualEdgeBudget float64
	// CompactFraction is the share of stored adjacency entries allowed to
	// live in the streaming-mutation delta overlay before a mutation batch
	// triggers compaction (merge into a fresh canonical CSR + ε
	// re-derivation); 0 means the default 0.25. Requires Incremental —
	// only incremental engines accept topology mutations.
	CompactFraction float64
	// AsyncCompact moves overlay-fraction compactions off the mutation
	// path: the triggering MutateTopology batch returns immediately
	// (MutateMeta.CompactPending) while a background compactor merges the
	// frozen epoch and runs the ρ(W) power iteration; mutations keep
	// landing in a fresh overlay stacked on top, and only the swap + the
	// closed-form residual rescale run under the write lock once the
	// build is ready. The contraction guard still compacts synchronously —
	// convergence is never left to a pending build. Requires Incremental.
	AsyncCompact bool
	// Reorder selects a locality-aware node-reordering pass applied to the
	// CSR at build time and again at every synchronous compaction: "degree"
	// sorts rows by descending degree (hub rows become contiguous), "rcm"
	// runs reverse Cuthill–McKee (bandwidth reduction). "" or "none"
	// disables. Reordering is invisible on the wire: the engine keeps an
	// external↔internal id map and every query, patch, mutation and emitted
	// result uses external ids. Async compactions keep the previous epoch's
	// ordering (the overlay rebase reuses frozen rows by id).
	Reorder string
	// F32Beliefs runs full propagations in float32 storage and arithmetic —
	// half the belief-matrix bandwidth on the SpMM-bound round loop. Belief
	// drift vs the float64 kernel is bounded by ~k·deg·2⁻²³ per round and
	// observed ≤1e-3 end-to-end (pinned in tests); emitted beliefs are
	// widened back to float64. Requires !Incremental: the residual
	// subsystem's o(Δ) invariant needs float64 accumulation.
	F32Beliefs bool
}

// EngineStats counts the expensive operations an Engine has performed;
// tests use it to assert that preprocessing happens once, not per query.
type EngineStats struct {
	// Estimations is the number of compatibility estimations (the O(mkℓ)
	// sketch + optimization pass).
	Estimations int64
	// Propagations is the number of full LinBP runs, including what-if
	// queries.
	Propagations int64
	// Queries is the number of Classify calls answered.
	Queries int64
	// LabelUpdates is the number of UpdateLabels calls applied.
	LabelUpdates int64
	// Summarizations is the number of sketch computations (the O(mkℓ)
	// pass over the graph); estimator calls that reuse the cached
	// summaries do not increment it.
	Summarizations int64
	// ResidualPatches is the number of label updates applied as o(Δ)
	// residual pushes instead of snapshot invalidation (Incremental mode).
	ResidualPatches int64
	// ResidualPushes is the total number of node pushes performed by the
	// residual subsystem, across patches and what-if overlays.
	ResidualPushes int64
	// ResidualFallbacks counts pushes that spread past the edge budget and
	// finished as (or were rerouted to) dense sweeps or full propagations.
	ResidualFallbacks int64
	// OverlayCacheHits counts what-if queries answered from the memoized
	// overlay-frontier cache without any pushing.
	OverlayCacheHits int64
	// EdgeMutations counts applied streaming edge mutations
	// (MutateTopology upserts + removals).
	EdgeMutations int64
	// TopoCompactions counts delta-overlay compactions (merge + canonical
	// ε re-derivation); TopoRescales counts the subset whose ρ(W) moved
	// and whose residual state was rescaled and re-converged.
	// TopoAsyncCompactions counts the compactions built by the background
	// compactor and installed by epoch swap (a subset of TopoCompactions).
	TopoCompactions      int64
	TopoRescales         int64
	TopoAsyncCompactions int64
	// SketchUpdates counts edge mutations folded into the cached DCEr
	// sketches incrementally (o(1) per summary entry) instead of
	// invalidating them.
	SketchUpdates int64
}

// Query describes one classification request against an Engine.
type Query struct {
	// Nodes restricts the response to these node ids; nil means all nodes.
	Nodes []int
	// TopK, when positive, attaches the top-k classes by belief score to
	// every returned node (clamped to the engine's class count). 0 returns
	// the argmax label only.
	TopK int
	// ExtraSeeds overlays ephemeral seed labels for this query only:
	// node → class, or node → Unlabeled to ignore an existing seed. The
	// engine's state is not modified; the query runs its own propagation.
	ExtraSeeds map[int]int
	// Trace, when non-nil, records per-stage timings of how the query was
	// served (the HTTP layer attaches one for debug=1 requests). nil — the
	// normal case — costs nothing: no clock reads, no allocation.
	Trace *telemetry.Trace
}

// ClassScore is one (class, belief score) pair of a top-k response.
type ClassScore struct {
	Class int     `json:"class"`
	Score float64 `json:"score"`
}

// NodeResult is the classification of a single node.
type NodeResult struct {
	Node  int          `json:"node"`
	Label int          `json:"label"`
	Top   []ClassScore `json:"top,omitempty"`
}

// NewEngine builds a serving engine over g with the given seed labels
// (length g.N, Unlabeled for unknown) and k classes. It performs all
// preprocessing eagerly: ρ(W) by cached power iteration and the H estimate
// with the configured estimator. The engine keeps its own copy of seeds;
// the graph must not be mutated afterwards.
func NewEngine(g *Graph, seeds []int, k int, opts ...EngineOptions) (*Engine, error) {
	return newEngine(g, seeds, k, nil, "", opts)
}

// NewEngineWithH builds a serving engine like NewEngine but installs the
// given compatibility matrix instead of running an estimator — the expensive
// O(mkℓ) sketch+optimization pass is skipped entirely. The registry uses
// this to rebuild evicted engines from a persisted H, cutting rebuild cost
// to one propagation; method is recorded as the estimate's provenance.
func NewEngineWithH(g *Graph, seeds []int, k int, h *Matrix, method string, opts ...EngineOptions) (*Engine, error) {
	if h == nil {
		return nil, fmt.Errorf("factorgraph: NewEngineWithH needs a compatibility matrix")
	}
	return newEngine(g, seeds, k, h, method, opts)
}

func newEngine(g *Graph, seeds []int, k int, h *Matrix, method string, opts []EngineOptions) (*Engine, error) {
	var o EngineOptions
	if len(opts) > 1 {
		return nil, fmt.Errorf("factorgraph: at most one EngineOptions")
	}
	if len(opts) == 1 {
		o = opts[0]
	}
	if k < 2 {
		return nil, fmt.Errorf("factorgraph: engine needs k ≥ 2, got %d", k)
	}
	if o.S < 0 || o.S >= 1 {
		return nil, fmt.Errorf("factorgraph: convergence parameter s=%v outside (0,1)", o.S)
	}
	if o.Iterations < 0 {
		return nil, fmt.Errorf("factorgraph: negative iteration count %d", o.Iterations)
	}
	if o.ResidualTol < 0 {
		return nil, fmt.Errorf("factorgraph: negative residual tolerance %v", o.ResidualTol)
	}
	if o.ResidualTol > 0 && !o.Incremental {
		return nil, fmt.Errorf("factorgraph: ResidualTol set without Incremental (the tolerance tunes the residual subsystem only)")
	}
	if o.ResidualEdgeBudget < 0 {
		return nil, fmt.Errorf("factorgraph: negative residual edge budget %v", o.ResidualEdgeBudget)
	}
	if o.ResidualEdgeBudget > 0 && !o.Incremental {
		return nil, fmt.Errorf("factorgraph: ResidualEdgeBudget set without Incremental")
	}
	if o.CompactFraction < 0 || o.CompactFraction >= 1 {
		if o.CompactFraction != 0 {
			return nil, fmt.Errorf("factorgraph: compact fraction %v outside (0,1)", o.CompactFraction)
		}
	}
	if o.CompactFraction > 0 && !o.Incremental {
		return nil, fmt.Errorf("factorgraph: CompactFraction set without Incremental (topology mutations require the residual subsystem)")
	}
	if o.AsyncCompact && !o.Incremental {
		return nil, fmt.Errorf("factorgraph: AsyncCompact set without Incremental (only incremental engines accept topology mutations)")
	}
	if !sparse.KnownReorder(o.Reorder) {
		return nil, fmt.Errorf("factorgraph: unknown reorder mode %q (want \"\", %q, %q or %q)",
			o.Reorder, sparse.ReorderNone, sparse.ReorderDegree, sparse.ReorderRCM)
	}
	if o.F32Beliefs && o.Incremental {
		return nil, fmt.Errorf("factorgraph: F32Beliefs set with Incremental (the residual fixed-point invariant needs float64 accumulation)")
	}
	if h != nil && (h.Rows != k || h.Cols != k) {
		return nil, fmt.Errorf("factorgraph: H is %d×%d, engine has k=%d", h.Rows, h.Cols, k)
	}
	if len(seeds) != g.N {
		return nil, fmt.Errorf("factorgraph: %d seed labels for %d nodes", len(seeds), g.N)
	}
	seedsUse := append([]int(nil), seeds...)
	var perm *sparse.Perm
	if newID := sparse.OrderBy(g.Adj, o.Reorder); newID != nil {
		// Locality pass: permute the CSR — and everything row-indexed by
		// it — into internal order before any preprocessing touches it.
		// The caller's graph is left untouched.
		g = graph.FromCSR(g.Adj.Permute(newID))
		perm = sparse.NewPerm(newID)
		ps := make([]int, len(seedsUse))
		for ext, lab := range seedsUse {
			ps[newID[ext]] = lab
		}
		seedsUse = ps
	}
	e := &Engine{g: g, k: k, seeds: seedsUse, perm: perm, eopts: o}
	e.compactCond = sync.NewCond(&e.mu)
	e.nLabeled = labels.NumLabeled(e.seeds)
	x, err := labels.Matrix(e.seeds, k)
	if err != nil {
		return nil, err
	}
	e.x = x
	e.nNodes.Store(int64(g.N))
	e.epochAt = time.Now()
	// Warm the spectral-radius cache before any query arrives; incremental
	// engines pin this canonical ρ(W) until their next topology compaction.
	e.rhoW = g.Adj.SpectralRadiusCached(e.linbpOptions().SpectralIters)
	if o.Incremental {
		e.topo = delta.New(g.Adj)
	}
	sched := exec.DefaultSchedule()
	if o.Incremental {
		// Measure the scatter/pull/delta-sweep crossovers on the live graph
		// (~ms budget); the result is pinned until a compaction re-tunes it.
		sched = exec.Tune(g.Adj, k, exec.Runner{}, exec.DefaultTuneBudget)
	}
	e.sched.Store(&sched)
	est := &Estimate{H: nil, Method: method}
	if h != nil {
		est.H = h.Clone()
	} else {
		if est, err = e.runEstimator(); err != nil {
			return nil, err
		}
	}
	e.est = est
	if e.pool, err = e.newStatePool(est.H, e.topo, e.rhoW); err != nil {
		return nil, err
	}
	return e, nil
}

// residualOptions derives the residual subsystem's settings from the
// engine's propagation options, so the incremental fixed point and the
// pooled LinBP states share s, centering and the spectral-iteration budget.
func (e *Engine) residualOptions() residual.Options {
	lo := e.linbpOptions()
	return residual.Options{
		S: lo.S, Tol: e.eopts.ResidualTol, SpectralIters: lo.SpectralIters,
		EdgeBudgetFactor: e.eopts.ResidualEdgeBudget,
		Schedule:         e.schedule(),
	}
}

// schedule returns the exec drain schedule pinned for the current epoch.
func (e *Engine) schedule() exec.Schedule {
	if p := e.sched.Load(); p != nil {
		return *p
	}
	return exec.DefaultSchedule()
}

func (e *Engine) linbpOptions() propagation.LinBPOptions {
	o := propagation.DefaultLinBPOptions()
	if e.eopts.S != 0 {
		o.S = e.eopts.S
	}
	if e.eopts.Iterations != 0 {
		o.Iterations = e.eopts.Iterations
	}
	o.SpectralIters = 50
	o.F32 = e.eopts.F32Beliefs
	if e.eopts.Incremental {
		// The residual subsystem serves fixed-point beliefs (to
		// ResidualTol); when a what-if overlay floods the graph and falls
		// back to a pooled dense propagation, that propagation must reach
		// the same fixed point or fallback answers would visibly differ
		// from push answers. Error decays like s^T, so T ≈ log_s(tol).
		tol := e.eopts.ResidualTol
		if tol == 0 {
			tol = residual.DefaultTol
		}
		if it := int(math.Ceil(math.Log(tol)/math.Log(o.S))) + 2; it > o.Iterations {
			o.Iterations = it
		}
	}
	return o
}

// KnownEstimator reports whether EstimateBy would accept the name (""
// means the DCEr default; names are case-insensitive). Admission layers
// use it to reject a misspelled estimator at registration instead of on
// the first — expensive — engine build.
func KnownEstimator(method string) bool {
	switch strings.ToLower(method) {
	case "", "dcer", "dce", "mce", "lce", "holdout":
		return true
	}
	return false
}

// EstimateBy dispatches to the named estimator ("" means DCEr; names are
// case-insensitive). It is the single source of truth for estimator names —
// the Engine, the HTTP layer and the CLI all route through it. Unknown
// names wrap ErrUnknownEstimator. The opts only apply to DCE/DCEr;
// passing non-zero options to the other estimators is an error rather than
// a silent no-op, so hyperparameter sweeps cannot misreport.
func EstimateBy(method string, g *Graph, seeds []int, k int, opts EstimateOptions) (*Estimate, error) {
	method = strings.ToLower(method)
	switch method {
	case "", "dcer":
		return EstimateDCEr(g, seeds, k, opts)
	case "dce":
		return EstimateDCE(g, seeds, k, opts)
	case "mce", "lce", "holdout":
		if opts != (EstimateOptions{}) {
			return nil, fmt.Errorf("factorgraph: estimator %q takes no options (lmax/lambda/restarts/seed tune DCE and DCEr only)", method)
		}
	}
	switch method {
	case "mce":
		return EstimateMCE(g, seeds, k)
	case "lce":
		return EstimateLCE(g, seeds, k)
	case "holdout":
		return EstimateHoldout(g, seeds, k, 1)
	default:
		return nil, fmt.Errorf("factorgraph: %w %q (want dcer, dce, mce, lce or holdout)", ErrUnknownEstimator, method)
	}
}

// runEstimator runs the configured estimator on the current seeds. Callers
// must NOT hold e.mu: the cached-summaries path takes read locks
// internally, and RWMutex is not reentrant.
func (e *Engine) runEstimator() (*Estimate, error) {
	e.nEstimations.Add(1)
	engEstimations.Inc()
	return e.estimateCached(e.eopts.Estimator, e.eopts.Estimate)
}

// EstimateWith runs the named estimator over the engine's graph and current
// seeds without installing the result (use SetH to apply it). The run is
// counted in Stats().Estimations. Sketch-based estimators (DCEr, DCE, MCE)
// reuse the engine's cached summaries, so switching estimators costs only
// the k×k optimization, not a fresh O(mkℓ) pass over the graph.
func (e *Engine) EstimateWith(method string, opts EstimateOptions) (*Estimate, error) {
	e.nEstimations.Add(1)
	engEstimations.Inc()
	return e.estimateCached(method, opts)
}

// summariesFor returns factorized summaries of depth ≥ lmax for the current
// seeds, computing them at most once per label generation. A request for a
// shallower depth than the cached one is served by prefix truncation
// (M⁽ℓ⁾ of an ℓmax=5 summary equals M⁽ℓ⁾ of an ℓmax=1 summary); a deeper
// request replaces the cache.
func (e *Engine) summariesFor(lmax int) (*core.Summaries, error) {
	if lmax <= 0 {
		lmax = 5
	}
	e.sumMu.Lock()
	defer e.sumMu.Unlock()
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return nil, ErrEngineClosed
	}
	gen := e.labelGen
	if e.sums != nil && e.sumGen == gen && e.sums.LMax >= lmax {
		e.mu.RUnlock()
		return e.sums, nil
	}
	seeds := append([]int(nil), e.seeds...)
	// Sketch the LIVE topology: on incremental engines that is the current
	// delta epoch — a published, immutable overlay that satisfies
	// core.Topology directly, so a dirty overlay never forces a compaction
	// just to be summarized. Frozen engines sketch their CSR as before.
	var w core.Topology = e.g.Adj
	if e.topo != nil {
		w = e.topo
	}
	e.mu.RUnlock()
	// Summarize at the requested depth only: an MCE-configured engine
	// (ℓmax=1) must not pay the 5-level sketch cost on every build and
	// rebuild. A later deeper request replaces the cache, after which
	// shallower ones are served by prefix truncation. Incremental engines
	// retain the N⁽ℓ⁾ matrices so streaming edge mutations can update the
	// sketches in place (applySketchDeltas) instead of invalidating them.
	e.nSummarizations.Add(1)
	s, err := core.SummarizeOn(w, seeds, e.k, core.SummaryOptions{
		LMax: lmax, NonBacktracking: true, Variant: core.Variant1,
		KeepN: e.eopts.Incremental,
	})
	if err != nil {
		return nil, err
	}
	e.sums, e.sumGen = s, gen
	e.sumDrift = 0
	return s, nil
}

// truncateSummaries views the first lmax sketches of s without copying.
func truncateSummaries(s *core.Summaries, lmax int) *core.Summaries {
	if s.LMax == lmax {
		return s
	}
	return &core.Summaries{K: s.K, LMax: lmax, M: s.M[:lmax], P: s.P[:lmax]}
}

// estimateCached is EstimateBy routed through the engine's summary cache.
// Estimators that do not run on sketches (LCE, holdout), unknown names and
// invalid options all fall back to EstimateBy so error behavior stays
// identical across entry points.
func (e *Engine) estimateCached(method string, opts EstimateOptions) (*Estimate, error) {
	start := time.Now()
	switch m := strings.ToLower(method); m {
	case "", "dcer", "dce":
		if opts.LMax < 0 {
			break // EstimateBy produces the proper validation error
		}
		lmax := opts.LMax
		if lmax == 0 {
			lmax = 5
		}
		s, err := e.summariesFor(lmax)
		if err != nil {
			return nil, err
		}
		defRestarts, name := dceDefRestarts(m)
		return finishDCE(name, truncateSummaries(s, lmax), opts, defRestarts, start)
	case "mce":
		if opts != (EstimateOptions{}) {
			break // EstimateBy rejects options on option-less estimators
		}
		s, err := e.summariesFor(1)
		if err != nil {
			return nil, err
		}
		return finishMCE(truncateSummaries(s, 1), start)
	}
	// Non-sketch estimators (LCE, holdout) and unknown names fall through
	// to EstimateBy, which runs on the canonical *Graph: merge any pending
	// delta overlay first so they see the mutated topology. The sketch
	// estimators above never need this — summaries read the live overlay.
	if err := e.compactForEstimate(); err != nil {
		return nil, err
	}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return nil, ErrEngineClosed
	}
	seeds := append([]int(nil), e.seeds...)
	g := e.g // compaction swaps e.g under mu
	e.mu.RUnlock()
	return EstimateBy(method, g, seeds, e.k, opts)
}

// newStatePool builds a pool of propagation states bound to h and to the
// given topology epoch (nil topo = the frozen construction CSR). The pool
// is replaced wholesale whenever H changes — and, on mutable-topology
// engines, whenever an epoch is published — so pooled states never serve a
// stale compatibility matrix or a stale graph. One state is constructed
// eagerly so an invalid configuration fails here with its real cause, not
// on every query with a generic one.
func (e *Engine) newStatePool(h *Matrix, topo *delta.Graph, rhoW float64) (*sync.Pool, error) {
	opts := e.linbpOptions()
	build := func() (*propagation.State, error) {
		if topo != nil {
			return propagation.NewStateOn(topo, h, opts, rhoW)
		}
		return propagation.NewState(e.g.Adj, h, opts)
	}
	first, err := build()
	if err != nil {
		return nil, err
	}
	pool := &sync.Pool{New: func() any {
		st, err := build()
		if err != nil {
			return nil
		}
		return st
	}}
	if !e.eopts.Incremental {
		// Incremental engines touch pooled states only when an overlay
		// floods its edge budget; retaining the eagerly-built one would pin
		// four n×k buffers on an idle engine for a rare path. It served its
		// purpose (validating the configuration) and is left to the GC.
		pool.Put(first)
	}
	return pool, nil
}

// K returns the class count.
func (e *Engine) K() int { return e.k }

// liveN is the current node count (construction nodes + streamed
// additions); lock-free so hot-path validation never contends.
func (e *Engine) liveN() int { return int(e.nNodes.Load()) }

// Graph returns the underlying graph (shared, read-only).
func (e *Engine) Graph() *Graph { return e.g }

// Estimate returns the current compatibility estimate.
func (e *Engine) Estimate() *Estimate {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.est
}

// Seeds returns a copy of the current seed labels, indexed by external
// node id (the internal storage order is translated back when the
// locality reordering pass is active).
func (e *Engine) Seeds() []int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.perm == nil {
		return append([]int(nil), e.seeds...)
	}
	out := make([]int, len(e.seeds))
	for ext := range out {
		out[ext] = e.seeds[e.perm.ToInternal(ext)]
	}
	return out
}

// LabeledCount returns the number of labeled seeds without copying the
// seed vector; cheap enough for liveness probes on huge graphs.
func (e *Engine) LabeledCount() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.nLabeled
}

// Stats returns operation counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Estimations:       e.nEstimations.Load(),
		Propagations:      e.nPropagations.Load(),
		Queries:           e.nQueries.Load(),
		LabelUpdates:      e.nLabelUpdates.Load(),
		Summarizations:    e.nSummarizations.Load(),
		ResidualPatches:   e.nResidualPatches.Load(),
		ResidualPushes:    e.nResidualPushes.Load(),
		ResidualFallbacks: e.nResidualFallbacks.Load(),
		OverlayCacheHits:  e.nOverlayCacheHits.Load(),
		EdgeMutations:     e.nEdgeMutations.Load(),
		TopoCompactions:   e.nCompactions.Load(),
		TopoRescales:      e.nRescales.Load(),

		TopoAsyncCompactions: e.nAsyncCompactions.Load(),
		SketchUpdates:        e.nSketchUpdates.Load(),
	}
}

// NumericHealth is a point-in-time reading of the engine's numeric
// machinery — the quantities that silently decide correctness fallbacks
// and accuracy drift but are invisible in work counters. The flight
// recorder exports them per graph and the /v1/admin/health rollup applies
// ok/warn thresholds to them.
type NumericHealth struct {
	// Incremental reports whether the engine runs the residual subsystem;
	// the contraction/overlay/sketch fields are zero when it does not.
	Incremental bool

	// ResidualDroppedMass is the cumulative residual ∞-norm mass discarded
	// by tier demotions, sparse compactions and patch applies since the
	// residual state was (re)initialized; each unit perturbs served
	// beliefs by at most s/(1−s) of itself. ResidualTol is the per-node
	// discard threshold in force.
	ResidualDroppedMass float64
	ResidualTol         float64

	// ContractionSEff is the worst-case effective convergence parameter
	// s·(1+ρ(ΔW)bound/ρ(W)) of the pinned ε under the live overlay;
	// ContractionMargin is ContractionGuard − ContractionSEff — when it
	// reaches zero the next mutation batch forces a compaction.
	ContractionSEff   float64
	ContractionMargin float64
	ContractionGuard  float64

	// OverlayFraction is the delta overlay's patched share of the base
	// rows; CompactTrigger is the fraction that triggers compaction.
	OverlayFraction float64
	CompactTrigger  float64

	// EpochAgeSeconds is the age of the current topology epoch (time
	// since construction, or since the last compaction epoch swap).
	// Epoch is the compaction generation of the live overlay, so a
	// health poller can tell "old epoch, quiet graph" from "old epoch,
	// compaction stuck".
	EpochAgeSeconds float64
	Epoch           int64

	// SketchDrift is the cumulative |Δw| folded into the cached estimator
	// sketches by first-order updates since the last full summarization;
	// at SketchDriftLimit (sketchDriftFraction of the live edge count)
	// the cache is dropped for accuracy. Zero limit means no live cache
	// bound (no mutable topology).
	SketchDrift      float64
	SketchDriftLimit float64

	// TunedDeltaDivisor and TunedMinPullWorkers are the exec drain-schedule
	// thresholds pinned for the current epoch; ScheduleTuned reports whether
	// they came from a live measurement (exec.Tune at build/compaction) or
	// are the static defaults.
	TunedDeltaDivisor   int
	TunedMinPullWorkers int
	ScheduleTuned       bool
}

// NumericHealth reads the engine's numeric-health signals. It takes the
// read lock briefly and never blocks on propagation work, so health
// surfaces can poll it freely.
func (e *Engine) NumericHealth() NumericHealth {
	e.mu.RLock()
	h := NumericHealth{
		Incremental:      e.eopts.Incremental,
		ContractionGuard: contractionGuard,
		ResidualTol:      e.eopts.ResidualTol,
	}
	if h.ResidualTol == 0 {
		h.ResidualTol = residual.DefaultTol
	}
	if e.topo != nil {
		s := e.linbpOptions().S
		bound := e.topo.RhoDeltaBound()
		switch {
		case e.rhoW > 0:
			h.ContractionSEff = s * (1 + bound/e.rhoW)
		case bound > 0:
			h.ContractionSEff = 1 // degenerate base: guard trips immediately
		default:
			h.ContractionSEff = s
		}
		h.ContractionMargin = contractionGuard - h.ContractionSEff
		h.OverlayFraction = e.topo.PatchedFraction()
		h.CompactTrigger = e.compactFraction()
		h.SketchDriftLimit = sketchDriftFraction * float64(e.topo.UndirectedEdges())
		h.Epoch = e.topo.Stats().Compactions
	}
	res := e.res
	epochAt := e.epochAt
	e.mu.RUnlock()
	if res != nil {
		h.ResidualDroppedMass = res.DroppedMass()
	}
	if !epochAt.IsZero() {
		h.EpochAgeSeconds = time.Since(epochAt).Seconds()
	}
	e.sumMu.Lock()
	h.SketchDrift = e.sumDrift
	e.sumMu.Unlock()
	sched := e.schedule()
	h.TunedDeltaDivisor = sched.DeltaDivisor
	h.TunedMinPullWorkers = sched.MinPullWorkers
	h.ScheduleTuned = sched.Tuned
	return h
}

// EstimateEngineBytes estimates the resident memory of an Engine serving an
// n-node, m-edge, k-class graph: the CSR adjacency matrix (IndPtr int64,
// Indices int32 over 2m stored entries, Data float64 when weighted), the
// seed and label vectors, and the n×k float64 working set — explicit
// beliefs, belief snapshot, and roughly two pooled propagation states of
// four buffers each. The registry uses this as the admission weight for its
// memory budget; it deliberately overcounts slightly rather than under.
func EstimateEngineBytes(n, m, k int, weighted bool) int64 {
	vectors := 2 * 8 * int64(n)                     // seeds + snapshot labels
	matrices := (2 + 2*4) * 8 * int64(n) * int64(k) // x, snapshot beliefs, 2 states × 4 buffers
	return csrBytes(n, m, weighted) + vectors + matrices
}

// csrBytes is the CSR adjacency share of an engine's footprint.
func csrBytes(n, m int, weighted bool) int64 {
	b := 8*(int64(n)+1) + 8*int64(m) // IndPtr + 2m int32 indices
	if weighted {
		b += 16 * int64(m) // 2m float64 weights
	}
	return b
}

// MemoryFootprint estimates this engine's resident bytes.
//
// Non-incremental engines report the static EstimateEngineBytes formula
// (their working set really is the pooled states plus the snapshot).
// Incremental engines report the tier actually in use: the CSR matrix, the
// seed/label vectors, the explicit-belief matrix, the snapshot if one is
// resident, and the residual state's MemoryBytes — two n×k matrices plus
// only the residual rows currently materialized. An idle incremental
// engine with an empty frontier therefore reports a fraction of the old
// five-dense-buffers estimate; the dense residual tier and the
// patch/overlay clones are transient and never idle-resident. The pooled
// propagation states an incremental engine keeps for overlay floods are
// not retained eagerly (see newStatePool) and are excluded as transient
// scratch. The registry re-reads this per access, so /v1/admin/registry
// tracks tier changes live.
func (e *Engine) MemoryFootprint() int64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if !e.eopts.Incremental {
		if !e.shed {
			return EstimateEngineBytes(e.g.N, e.g.M, e.k, e.g.Adj.Data != nil)
		}
		// Partially released (ReleaseTransient): the snapshot and pooled
		// states are gone until the next query rebuilds them; what remains
		// resident is the CSR, the vectors and the explicit beliefs.
		nn, kk := int64(e.g.N), int64(e.k)
		return csrBytes(e.g.N, e.g.M, e.g.Adj.Data != nil) + 2*8*nn + 8*nn*kk
	}
	nn, kk := int64(e.liveN()), int64(e.k)
	b := csrBytes(e.g.N, e.g.M, e.g.Adj.Data != nil)
	if e.topo != nil {
		b += e.topo.MemoryBytes() // delta-overlay patch rows
	}
	b += 2 * 8 * nn // seeds + snapshot labels
	if e.x != nil {
		b += 8 * nn * kk // explicit beliefs
	}
	if e.snap != nil {
		b += 8*nn*kk + 8*nn // snapshot beliefs + labels
	}
	if e.res != nil {
		b += e.res.MemoryBytes()
	}
	return b
}

// Mutated reports whether the engine's state has diverged from its
// construction inputs: any label update, re-estimation or externally
// installed H since NewEngine. A registry uses this to refuse to evict
// engines whose spec-based rebuild would silently lose acknowledged
// mutations.
func (e *Engine) Mutated() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.gen != 0
}

// Close releases the engine's large buffers — the belief snapshot, the
// propagation-state pool and the cached summaries — and marks the engine
// closed; subsequent queries and updates fail with ErrEngineClosed. The
// graph itself is NOT owned by the engine and is left untouched. Close is
// idempotent.
func (e *Engine) Close() {
	e.mu.Lock()
	e.closed = true
	e.snap = nil
	e.pool = nil
	e.x = nil
	e.res = nil
	e.topo = nil
	e.mu.Unlock()
	e.sumMu.Lock()
	e.sums = nil
	e.sumMu.Unlock()
	e.ovCache.purge()
}

// currentSnapshot returns the cached propagation result, rebuilding it when
// a label update or re-estimation invalidated it. The rebuild propagates
// OUTSIDE the engine lock (a multi-second operation on large graphs must
// not block /healthz readers behind a pending writer) on inputs captured
// under a short read lock, and installs the result only if no write landed
// in between — otherwise it retries on the fresher state. rebuildMu keeps
// concurrent cold queries from duplicating the propagation.
func (e *Engine) currentSnapshot(tr *telemetry.Trace) (*snapshot, error) {
	e.mu.RLock()
	s := e.snap
	e.mu.RUnlock()
	if s != nil {
		return s, nil
	}
	e.rebuildMu.Lock()
	defer e.rebuildMu.Unlock()
	for {
		e.mu.RLock()
		if e.closed {
			e.mu.RUnlock()
			return nil, ErrEngineClosed
		}
		if e.snap != nil {
			s := e.snap
			e.mu.RUnlock()
			return s, nil
		}
		if e.eopts.Incremental && e.res != nil {
			// The residual state already holds the converged beliefs for
			// the current seeds (label patches were flushed in place): the
			// snapshot is a clone + argmax, no propagation. The clone runs
			// under the read lock so no patch can mutate rows mid-copy.
			b := e.res.Beliefs().Clone()
			gen := e.gen
			perm := e.perm
			e.mu.RUnlock()
			snap := &snapshot{beliefs: b, labels: dense.ArgmaxRows(b), perm: perm}
			e.mu.Lock()
			if e.gen == gen && !e.closed {
				e.snap = snap
				e.shed = false
				e.mu.Unlock()
				return snap, nil
			}
			e.mu.Unlock()
			continue
		}
		x := e.x.Clone()
		pool := e.pool
		h := e.est.H
		gen := e.gen
		topo := e.topo
		rhoW := e.rhoW
		perm := e.perm
		e.mu.RUnlock()

		if e.eopts.Incremental {
			// Cold (or invalidated by an H change): one full solve seeds
			// the residual state, after which patches are o(Δ). The state
			// is built over the live topology epoch with the pinned ρ(W),
			// so a mutated-then-evicted working set re-solves against the
			// mutated graph, not the construction one.
			rs, err := residual.NewStateOn(topo, h, e.residualOptions(), rhoW)
			if err != nil {
				return nil, fmt.Errorf("factorgraph: %w: %v", ErrEngineInternal, err)
			}
			e.nPropagations.Add(1)
			engPropagations.Inc()
			start := telemetry.Now()
			doneInit := tr.Start("residual.init")
			if _, err := rs.Init(x); err != nil {
				doneInit()
				return nil, fmt.Errorf("factorgraph: %w: %v", ErrEngineInternal, err)
			}
			doneInit()
			hPropagation.ObserveSince(start)
			e.mu.Lock()
			if e.gen == gen && !e.closed {
				e.res = rs
				e.shed = false
			}
			e.mu.Unlock()
			continue // the res branch above builds (or retries) the snapshot
		}

		f, err := e.propagateOn(pool, x, tr)
		if err != nil {
			return nil, err
		}
		snap := &snapshot{beliefs: f, labels: dense.ArgmaxRows(f), perm: perm}

		e.mu.Lock()
		if e.gen == gen {
			e.snap = snap
			e.shed = false
			e.mu.Unlock()
			return snap, nil
		}
		// A write landed mid-rebuild; the result is stale. Go again.
		e.mu.Unlock()
	}
}

// propagateOn runs one LinBP pass over x on a state from the given pool
// (which pins a specific H) and returns an owned copy of the beliefs (the
// state's buffer goes back to the pool). Callers either hold a lock or own
// a pool reference captured under one.
func (e *Engine) propagateOn(pool *sync.Pool, x *dense.Matrix, tr *telemetry.Trace) (*dense.Matrix, error) {
	st, _ := pool.Get().(*propagation.State)
	if st == nil {
		return nil, fmt.Errorf("factorgraph: %w: could not build propagation state", ErrEngineInternal)
	}
	defer pool.Put(st)
	e.nPropagations.Add(1)
	engPropagations.Inc()
	start := telemetry.Now()
	donePropagation := tr.Start("propagation")
	f, err := st.Run(x)
	donePropagation()
	hPropagation.ObserveSince(start)
	if err != nil {
		return nil, err
	}
	return f.Clone(), nil
}

// Classify answers one query. With no ExtraSeeds the response is served
// from the cached belief snapshot — O(len result), no propagation; with
// ExtraSeeds it propagates the overlaid seed matrix on a pooled state.
func (e *Engine) Classify(q Query) ([]NodeResult, error) {
	var out []NodeResult
	if q.Nodes != nil {
		out = make([]NodeResult, 0, len(q.Nodes))
	} else {
		out = make([]NodeResult, 0, e.liveN())
	}
	err := e.ClassifyEach(q, func(r NodeResult) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// QueryMeta describes how a query was answered; the HTTP layer reports it
// so clients (and benchmarks) can see the incremental subsystem at work.
type QueryMeta struct {
	// Residual is true when the residual subsystem answered the query —
	// either directly from live beliefs (small node lists after a patch)
	// or through a what-if overlay.
	Residual bool
	// PushedNodes / TouchedEdges is the push work an overlay performed
	// (zero for non-overlay queries).
	PushedNodes  int
	TouchedEdges int
	// ClonedRows is how many copy-on-write belief rows an overlay
	// materialized — the size of its frontier.
	ClonedRows int
	// CacheHit is true when the overlay frontier came from the engine's
	// what-if cache: the query's extra-seed set was flushed before at the
	// current label generation, so no pushing ran at all. The push/clone
	// counts then describe the cached flush.
	CacheHit bool
}

// ClassifyEach is Classify without materializing the result slice: fn is
// invoked once per node in order. Queried nodes are validated before the
// first invocation, so fn never sees a partial error-bound iteration; an
// error from fn aborts and is returned. This is what the HTTP layer's
// NDJSON streaming uses — memory stays O(k) per record even when
// classifying every node of a huge graph.
func (e *Engine) ClassifyEach(q Query, fn func(NodeResult) error) error {
	_, err := e.ClassifyEachMeta(q, fn)
	return err
}

// ClassifyEachMeta is ClassifyEach plus metadata about how the query was
// served. On Incremental engines it prefers the residual paths: what-if
// queries run on a copy-on-write overlay over the live residual state
// (falling back to a full pooled propagation only when the overlay frontier
// floods the graph), and small node-list queries hitting a stale snapshot
// are answered straight from the live belief rows without rebuilding it.
func (e *Engine) ClassifyEachMeta(q Query, fn func(NodeResult) error) (QueryMeta, error) {
	e.nQueries.Add(1)
	engQueries.Inc()
	tr := q.Trace // nil on untraced queries: every span call below is inert
	done := tr.Start("engine.classify")
	meta, err := e.classifyEachMeta(q, tr, fn)
	done()
	tr.AddWork(meta.PushedNodes, meta.TouchedEdges, meta.ClonedRows)
	return meta, err
}

// classifyEachMeta is the body of ClassifyEachMeta under its
// "engine.classify" span: the residual fast paths record themselves as
// deferred-name child spans (the stage only learns what it was — cached,
// flushed, rerouted — after the fact), and the slow path nests resolve and
// emit under the same parent.
func (e *Engine) classifyEachMeta(q Query, tr *telemetry.Trace, fn func(NodeResult) error) (QueryMeta, error) {
	if e.eopts.Incremental {
		if len(q.ExtraSeeds) > 0 {
			end := tr.StartSpan()
			meta, handled, err := e.overlayResidual(q, tr, fn)
			if handled || err != nil {
				name := "overlay_flush"
				if meta.CacheHit {
					name = "overlay_cached"
				}
				end(name)
				return meta, err
			}
			// Declined: the overlay flooded (or raced an H change) and the
			// full propagation below serves the query.
			end("overlay_reroute")
		} else {
			end := tr.StartSpan()
			meta, handled, err := e.residualDirect(q, tr, fn)
			if handled || err != nil {
				end("residual_direct")
				return meta, err
			}
			end("") // declined without doing work: no span
		}
	}
	doneResolve := tr.Start("resolve")
	beliefs, lab, perm, err := e.resolve(q, tr)
	doneResolve()
	if err != nil {
		return QueryMeta{}, err
	}
	doneEmit := tr.Start("emit")
	err = e.formatEach(q, beliefs, lab, perm, fn)
	doneEmit()
	return QueryMeta{}, err
}

// residualDirectMax bounds the node-list size served straight from the live
// residual rows; anything larger rebuilds the snapshot (a clone + argmax),
// which amortizes better across records.
const residualDirectMax = 1024

// residualDirect answers a small node-list query from the live residual
// beliefs under the read lock — no snapshot rebuild, no propagation. It
// declines (handled=false) when a fresh snapshot already exists (serving
// from it is zero-copy) or the residual state is cold.
func (e *Engine) residualDirect(q Query, tr *telemetry.Trace, fn func(NodeResult) error) (QueryMeta, bool, error) {
	if q.Nodes == nil || len(q.Nodes) == 0 || len(q.Nodes) > residualDirectMax {
		return QueryMeta{}, false, nil
	}
	n := e.liveN()
	for _, node := range q.Nodes {
		if node < 0 || node >= n {
			return QueryMeta{}, true, fmt.Errorf("factorgraph: query node %d out of range n=%d", node, n)
		}
	}
	topk := q.TopK
	if topk > e.k {
		topk = e.k
	}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return QueryMeta{}, true, ErrEngineClosed
	}
	if e.snap != nil || e.res == nil {
		e.mu.RUnlock()
		return QueryMeta{}, false, nil
	}
	// Copy the queried rows out under the lock; formatting (and fn, which
	// may write to a network) runs outside it. Node ids translate to
	// internal rows under the same lock that freezes the mapping.
	rows := make([][]float64, len(q.Nodes))
	labs := make([]int, len(q.Nodes))
	for i, node := range q.Nodes {
		row := e.res.Row(e.perm.ToInternal(node))
		labs[i] = argmaxRow(row)
		if topk > 0 {
			rows[i] = append([]float64(nil), row...)
		}
	}
	e.mu.RUnlock()
	doneEmit := tr.Start("emit")
	defer doneEmit()
	for i, node := range q.Nodes {
		if err := e.emitResult(node, rows[i], labs[i], topk, fn); err != nil {
			return QueryMeta{Residual: true}, true, err
		}
	}
	return QueryMeta{Residual: true}, true, nil
}

// overlayResidual answers a what-if query on a copy-on-write overlay over
// the live residual state: only the frontier the extra seeds perturb is
// cloned and pushed. handled=false (with no error) reroutes to the full
// pooled propagation — either the residual state raced an H change, or the
// overlay flooded past the edge budget.
//
// The overlay flush and row materialization run under the read lock (they
// read live base rows a concurrent patch could mutate); that hold is
// bounded by the edge budget — a flooding overlay stops at the budget and
// reroutes to the pooled propagation, which runs lock-free as always. Keep
// ResidualEdgeBudget modest on latency-sensitive deployments.
func (e *Engine) overlayResidual(q Query, tr *telemetry.Trace, fn func(NodeResult) error) (QueryMeta, bool, error) {
	// Validate before any work, exactly like the full overlay path.
	liveN := e.liveN()
	for node, c := range q.ExtraSeeds {
		if node < 0 || node >= liveN {
			return QueryMeta{}, true, fmt.Errorf("factorgraph: extra seed node %d out of range n=%d", node, liveN)
		}
		if c != Unlabeled && (c < 0 || c >= e.k) {
			return QueryMeta{}, true, fmt.Errorf("factorgraph: extra seed class %d outside [0,%d)", c, e.k)
		}
	}
	for _, node := range q.Nodes {
		if node < 0 || node >= liveN {
			return QueryMeta{}, true, fmt.Errorf("factorgraph: query node %d out of range n=%d", node, liveN)
		}
	}
	// Ensure the residual base exists (first query per (graph, H) pays the
	// one full solve).
	if _, err := e.currentSnapshot(tr); err != nil {
		return QueryMeta{}, true, err
	}
	topk := q.TopK
	if topk > e.k {
		topk = e.k
	}
	key := overlayCacheKey(q.ExtraSeeds)
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return QueryMeta{}, true, ErrEngineClosed
	}
	if e.res == nil {
		e.mu.RUnlock()
		return QueryMeta{}, false, nil // raced an H change; full path serves it
	}
	var meta QueryMeta
	var overlayRow func(node int) []float64
	if cached := e.ovCache.get(key, e.gen); cached != nil {
		// This exact what-if was flushed at the current generation: its
		// cloned frontier rows are still the fixed point, so serving is a
		// pure read — no pushing, no cloning.
		meta = QueryMeta{
			Residual: true, CacheHit: true,
			PushedNodes: cached.pushed, TouchedEdges: cached.edges,
			ClonedRows: len(cached.rows),
		}
		overlayRow = func(node int) []float64 {
			if row, ok := cached.rows[int32(node)]; ok {
				return row
			}
			return e.res.Row(node)
		}
		e.nOverlayCacheHits.Add(1)
		engWhatifHits.Inc()
	} else {
		engWhatifMisses.Inc()
		ov := e.res.NewOverlay()
		ov.Trace = tr
		for node, c := range q.ExtraSeeds {
			ov.SetSeed(e.perm.ToInternal(node), c)
		}
		st := ov.Flush()
		e.nResidualPushes.Add(int64(st.Pushed))
		if st.FellBack {
			e.mu.RUnlock()
			e.nResidualFallbacks.Add(1)
			return QueryMeta{}, false, nil // graph-wide what-if: full propagation
		}
		meta = QueryMeta{Residual: true, PushedNodes: st.Pushed, TouchedEdges: st.Edges, ClonedRows: ov.Touched()}
		overlayRow = ov.Row
		// Memoize the frontier for the next identical what-if. gen cannot
		// move while we hold the read lock, so the entry is pinned to
		// exactly the base state the flush read; any later patch or H
		// change bumps gen and invalidates it lazily.
		e.ovCache.put(&overlayCacheEntry{
			key: key, gen: e.gen,
			rows: ov.ClonedBeliefRows(), pushed: st.Pushed, edges: st.Edges,
		})
	}
	// Materialize the answer under the read lock (overlay rows alias the
	// base, and the id mapping is frozen while we hold it), then emit
	// outside it. Overlay rows and the cache are keyed by internal ids.
	n := len(q.Nodes)
	if q.Nodes == nil {
		n = liveN
	}
	rows := make([][]float64, n)
	labs := make([]int, n)
	for i := 0; i < n; i++ {
		node := i
		if q.Nodes != nil {
			node = q.Nodes[i]
		}
		row := overlayRow(e.perm.ToInternal(node))
		labs[i] = argmaxRow(row)
		if topk > 0 {
			rows[i] = append([]float64(nil), row...)
		}
	}
	e.mu.RUnlock()
	doneEmit := tr.Start("emit")
	defer doneEmit()
	for i := 0; i < n; i++ {
		node := i
		if q.Nodes != nil {
			node = q.Nodes[i]
		}
		if err := e.emitResult(node, rows[i], labs[i], topk, fn); err != nil {
			return meta, true, err
		}
	}
	return meta, true, nil
}

func argmaxRow(row []float64) int {
	best := 0
	for j := 1; j < len(row); j++ {
		if row[j] > row[best] {
			best = j
		}
	}
	return best
}

// resolve produces the belief matrix, labels and row-ordering permutation
// answering q: the cached snapshot for plain queries, a dedicated
// propagation for overlay queries.
func (e *Engine) resolve(q Query, tr *telemetry.Trace) (*dense.Matrix, []int, *sparse.Perm, error) {
	if len(q.ExtraSeeds) == 0 {
		s, err := e.currentSnapshot(tr)
		if err != nil {
			return nil, nil, nil, err
		}
		return s.beliefs, s.labels, s.perm, nil
	}
	return e.overlayBeliefs(q, tr)
}

func (e *Engine) overlayBeliefs(q Query, tr *telemetry.Trace) (*dense.Matrix, []int, *sparse.Perm, error) {
	// Capture the belief matrix and the pool (which pins H) under a short
	// read lock, then propagate OUTSIDE the lock: a what-if propagation can
	// take hundreds of milliseconds on a large graph, and holding the read
	// lock that long would stall every snapshot query behind any pending
	// writer. A concurrent H swap is harmless — this query completes
	// against the H it captured, as if it had arrived just before.
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return nil, nil, nil, ErrEngineClosed
	}
	x := e.x.Clone()
	pool := e.pool
	perm := e.perm
	e.mu.RUnlock()
	for node, c := range q.ExtraSeeds {
		if node < 0 || node >= x.Rows {
			return nil, nil, nil, fmt.Errorf("factorgraph: extra seed node %d out of range n=%d", node, x.Rows)
		}
		row := x.Row(perm.ToInternal(node))
		for j := range row {
			row[j] = 0
		}
		if c == Unlabeled {
			continue
		}
		if c < 0 || c >= e.k {
			return nil, nil, nil, fmt.Errorf("factorgraph: extra seed class %d outside [0,%d)", c, e.k)
		}
		row[c] = 1
	}
	f, err := e.propagateOn(pool, x, tr)
	if err != nil {
		return nil, nil, nil, err
	}
	return f, dense.ArgmaxRows(f), perm, nil
}

// formatEach renders the query response record by record. All queried
// nodes are range-checked before the first fn call so callers streaming
// over a network never emit a partial response for an invalid request.
// perm is the row ordering of beliefs/lab (nil = identity): emitted node
// ids stay external, belief rows are looked up by internal id.
func (e *Engine) formatEach(q Query, beliefs *dense.Matrix, lab []int, perm *sparse.Perm, fn func(NodeResult) error) error {
	// Bound by the belief matrix actually answering the query: a node
	// added after the snapshot was cut is out of range for THIS response.
	for _, node := range q.Nodes {
		if node < 0 || node >= beliefs.Rows {
			return fmt.Errorf("factorgraph: query node %d out of range n=%d", node, beliefs.Rows)
		}
	}
	n := len(q.Nodes)
	if q.Nodes == nil {
		n = beliefs.Rows
	}
	topk := q.TopK
	if topk > e.k {
		topk = e.k
	}
	for i := 0; i < n; i++ {
		node := i
		if q.Nodes != nil {
			node = q.Nodes[i]
		}
		in := perm.ToInternal(node)
		var row []float64
		if topk > 0 {
			row = beliefs.Row(in)
		}
		if err := e.emitResult(node, row, lab[in], topk, fn); err != nil {
			return err
		}
	}
	return nil
}

// emitResult renders one NodeResult and hands it to fn. row is only read
// when topk > 0.
func (e *Engine) emitResult(node int, row []float64, lab, topk int, fn func(NodeResult) error) error {
	r := NodeResult{Node: node, Label: lab}
	if topk > 0 {
		scores := make([]ClassScore, e.k)
		for c := 0; c < e.k; c++ {
			scores[c] = ClassScore{Class: c, Score: row[c]}
		}
		sort.Slice(scores, func(a, b int) bool {
			if scores[a].Score != scores[b].Score {
				return scores[a].Score > scores[b].Score
			}
			return scores[a].Class < scores[b].Class
		})
		r.Top = scores[:topk]
	}
	return fn(r)
}

// ClassifyBatch answers many queries concurrently (bounded by GOMAXPROCS).
// Queries without ExtraSeeds share one snapshot rebuild; overlay queries
// each run on their own pooled propagation state. Results align with qs;
// the first error is returned, with successful entries preserved.
func (e *Engine) ClassifyBatch(qs []Query) ([][]NodeResult, error) {
	out := make([][]NodeResult, len(qs))
	errs := make([]error, len(qs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := range qs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i], errs[i] = e.Classify(qs[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// PatchMeta describes how a label update was applied; the HTTP layer
// reports it in PATCH /labels responses.
type PatchMeta struct {
	// Residual is true when the update was propagated in place by o(Δ)
	// residual pushes; false means the belief snapshot was invalidated and
	// the next query pays a full propagation (non-incremental engines, or
	// an incremental engine whose residual state is still cold).
	Residual bool
	// PushedNodes / TouchedEdges is the push work the flush performed.
	PushedNodes  int
	TouchedEdges int
	// FellBack reports that the perturbation spread past the edge budget
	// and the patch session finished with dense sweeps on its private
	// cloned view — still outside the engine's locks, so readers were
	// never stalled and the residual state survives the flood.
	FellBack bool
	// LockWaitSeconds / FlushSeconds attribute the update's time to its two
	// expensive phases — waiting behind the patch/write locks and the
	// residual flush itself — for per-request cost accounting.
	LockWaitSeconds float64
	FlushSeconds    float64
}

// UpdateLabels applies an incremental seed-label update without rebuilding
// anything expensive: set assigns classes to nodes, remove clears seeds.
// The CSR matrix, ρ(W) and the H estimate are all retained. On a
// non-incremental engine only the explicit-belief matrix changes and the
// belief snapshot is invalidated (rebuilt lazily by the next query); on an
// Incremental engine the change is pushed through the live residual state,
// so the next query costs o(Δ), not a propagation. Call Reestimate when
// enough labels changed that H itself should be refreshed.
func (e *Engine) UpdateLabels(set map[int]int, remove []int) error {
	_, err := e.UpdateLabelsMeta(set, remove)
	return err
}

// UpdateLabelsMeta is UpdateLabels plus metadata about how the update was
// propagated.
//
// Locking: the write lock is held twice, briefly — once to validate and
// install the new seeds, once to swap in the flushed result. The residual
// flush itself (the propagation-scale work) runs in between on a
// copy-on-write residual.Patch with no engine lock held: concurrent
// readers serve the pre-patch beliefs from the untouched base, exactly as
// if they had arrived just before the patch. patchMu serializes patch
// sessions so two concurrent updates cannot interleave their base views.
func (e *Engine) UpdateLabelsMeta(set map[int]int, remove []int) (PatchMeta, error) {
	return e.UpdateLabelsMetaCtx(context.Background(), set, remove)
}

// UpdateLabelsMetaCtx is UpdateLabelsMeta carrying the request context: a
// trace attached to ctx (telemetry.WithTrace) records the update as an
// "engine.patch" span tree — lock_wait, the residual flush (with the exec
// drain nested under it) and the apply swap.
func (e *Engine) UpdateLabelsMetaCtx(ctx context.Context, set map[int]int, remove []int) (PatchMeta, error) {
	tr := telemetry.TraceFrom(ctx)
	done := tr.Start("engine.patch")
	meta, err := e.updateLabelsMeta(set, remove, tr)
	done()
	tr.AddWork(meta.PushedNodes, meta.TouchedEdges, 0)
	tr.AddWait(meta.FlushSeconds, meta.LockWaitSeconds)
	return meta, err
}

func (e *Engine) updateLabelsMeta(set map[int]int, remove []int, tr *telemetry.Trace) (PatchMeta, error) {
	lockStart := telemetry.Now()
	doneLock := tr.Start("lock_wait")
	e.patchMu.Lock()
	defer e.patchMu.Unlock()
	e.mu.Lock()
	doneLock()
	hPatchLockWaitLabel.ObserveSince(lockStart)
	var lockWaitSec float64
	if !lockStart.IsZero() {
		lockWaitSec = time.Since(lockStart).Seconds()
	}
	if e.closed {
		e.mu.Unlock()
		return PatchMeta{}, ErrEngineClosed
	}
	// Validate fully before mutating so a bad request leaves state intact.
	n := len(e.seeds)
	for node, c := range set {
		if node < 0 || node >= n {
			e.mu.Unlock()
			return PatchMeta{}, fmt.Errorf("factorgraph: label update node %d out of range n=%d", node, n)
		}
		if c < 0 || c >= e.k {
			e.mu.Unlock()
			return PatchMeta{}, fmt.Errorf("factorgraph: label update class %d outside [0,%d)", c, e.k)
		}
	}
	for _, node := range remove {
		if node < 0 || node >= n {
			e.mu.Unlock()
			return PatchMeta{}, fmt.Errorf("factorgraph: label removal node %d out of range n=%d", node, n)
		}
	}
	res := e.res
	var patch *residual.Patch
	if res != nil {
		patch = res.BeginPatch()
		patch.Trace = tr
	}
	// External ids translate to internal rows under the write lock that
	// freezes the mapping; seeds, x and the residual state are all in
	// internal order.
	for node, c := range set {
		e.setSeedLocked(e.perm.ToInternal(node), c, patch)
	}
	for _, node := range remove {
		e.setSeedLocked(e.perm.ToInternal(node), Unlabeled, patch)
	}
	e.snap = nil
	e.gen++
	e.labelGen++ // seeds changed ⇒ cached summaries are stale
	e.nLabelUpdates.Add(1)
	engLabelPatches.Inc()
	e.mu.Unlock()
	if patch == nil {
		return PatchMeta{LockWaitSeconds: lockWaitSec}, nil
	}
	// Flush OUTSIDE the engine locks: a wide patch promotes to parallel
	// pull rounds (and dense sweeps past the edge budget) without stalling
	// a single reader. The deltas queued by setSeedLocked coalesce into one
	// flush per batch.
	flushStart := telemetry.Now()
	st := patch.Flush()
	hPatchFlushLabel.ObserveSince(flushStart)
	var flushSec float64
	if !flushStart.IsZero() {
		flushSec = time.Since(flushStart).Seconds()
	}
	e.nResidualPatches.Add(1)
	e.nResidualPushes.Add(int64(st.Pushed))
	if st.FellBack {
		e.nResidualFallbacks.Add(1)
	}
	applyStart := telemetry.Now()
	doneApply := tr.Start("apply")
	e.mu.Lock()
	applied := e.res == res && !e.closed
	if applied {
		// The swap: row copies for a narrow patch, pointer swaps for a
		// promoted one.
		patch.Apply()
		e.snap = nil
		e.gen++
	}
	e.mu.Unlock()
	doneApply()
	hPatchApplyLabel.ObserveSince(applyStart)
	if !applied {
		// An H change, ReleaseTransient or Close replaced (or dropped) the
		// residual state mid-flush: any successor state initializes from the
		// already patched seeds, so the session result is discarded — Abort
		// releases a promoted session's O(n·k) clones eagerly.
		patch.Abort()
	}
	return PatchMeta{
		Residual: true, PushedNodes: st.Pushed, TouchedEdges: st.Edges, FellBack: st.FellBack,
		LockWaitSeconds: lockWaitSec, FlushSeconds: flushSec,
	}, nil
}

// setSeedLocked installs seed class c on a node given by INTERNAL row id
// (callers translate external ids first).
func (e *Engine) setSeedLocked(node, c int, patch *residual.Patch) {
	old := e.seeds[node]
	if old == Unlabeled && c != Unlabeled {
		e.nLabeled++
	} else if old != Unlabeled && c == Unlabeled {
		e.nLabeled--
	}
	e.seeds[node] = c
	row := e.x.Row(node)
	for j := range row {
		row[j] = 0
	}
	if c != Unlabeled {
		row[c] = 1
	}
	if patch != nil && old != c {
		// Queue the explicit-belief delta on the patch session;
		// UpdateLabelsMeta flushes once after the whole batch so
		// overlapping patches coalesce.
		delta := make([]float64, e.k)
		if old != Unlabeled {
			delta[old] -= 1
		}
		if c != Unlabeled {
			delta[c] += 1
		}
		patch.AddDelta(node, delta)
	}
}

// Reestimate re-runs the configured estimator on the current seeds,
// replaces H and invalidates the belief snapshot. ρ(W) and the CSR matrix
// are reused via the caches, so this costs one sketch+optimization pass —
// which runs OUTSIDE the lock (like EstimateWith), so queries keep serving
// from the old snapshot while it computes. If seeds change concurrently,
// last-writer-wins: the installed H reflects the seeds captured at entry.
func (e *Engine) Reestimate() (*Estimate, error) {
	est, err := e.EstimateWith(e.eopts.Estimator, e.eopts.Estimate)
	if err != nil {
		return nil, err
	}
	e.mu.RLock()
	topo, rhoW := e.topo, e.rhoW
	e.mu.RUnlock()
	pool, err := e.newStatePool(est.H, topo, rhoW)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrEngineClosed
	}
	e.est = est
	e.pool = pool
	e.snap = nil
	e.res = nil // H changed: the residual fixed point is void
	e.gen++
	return est, nil
}

// SetH installs an externally supplied compatibility matrix (e.g. a gold
// standard or an estimate produced with different options) and invalidates
// the belief snapshot.
func (e *Engine) SetH(h *Matrix, method string) error {
	if h.Rows != e.k || h.Cols != e.k {
		return fmt.Errorf("factorgraph: H is %d×%d, engine has k=%d", h.Rows, h.Cols, e.k)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrEngineClosed
	}
	est := &Estimate{H: h.Clone(), Method: method}
	pool, err := e.newStatePool(est.H, e.topo, e.rhoW)
	if err != nil {
		return err
	}
	e.est = est
	e.pool = pool
	e.snap = nil
	e.res = nil // H changed: the residual fixed point is void
	e.gen++
	return nil
}
