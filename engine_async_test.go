package factorgraph

import (
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"factorgraph/internal/core"
	"factorgraph/internal/graph"
)

// TestEngineAsyncCompactParity is the background-compaction acceptance
// property: with AsyncCompact on, fraction-triggered compactions are built
// by the compactor goroutine and installed by epoch swap, mutations never
// block on a merge (meta.Compacted stays false outside forced paths), and
// the final beliefs still match a cold build of the final edge set to 1e-6.
func TestEngineAsyncCompactParity(t *testing.T) {
	g, seeds, _ := engineFixture(t, 1500, 6000, 0.05)
	inc, err := NewEngine(g, seeds, 3, EngineOptions{
		Incremental: true, AsyncCompact: true, CompactFraction: 0.02,
		ResidualTol: 1e-10, ResidualEdgeBudget: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Classify(Query{Nodes: []int{0}}); err != nil {
		t.Fatal(err) // warm: the one full solve
	}

	rng := rand.New(rand.NewSource(23))
	edges := edgeSetOf(g)
	n := g.N
	sawPending := false
	for round := 0; round < 15; round++ {
		var muts []EdgeMutation
		for i := 0; i < 8; i++ {
			if rng.Intn(4) == 0 && len(edges) > 100 {
				list := edgeList(edges)
				e := list[rng.Intn(len(list))]
				muts = append(muts, EdgeMutation{U: int(e[0]), V: int(e[1]), Remove: true})
				delete(edges, e)
			} else {
				u, v := rng.Intn(n), rng.Intn(n)
				if u == v {
					continue
				}
				a, b := int32(u), int32(v)
				if a > b {
					a, b = b, a
				}
				if edges[[2]int32{a, b}] {
					continue
				}
				muts = append(muts, EdgeMutation{U: u, V: v})
				edges[[2]int32{a, b}] = true
			}
		}
		meta, err := inc.MutateTopology(0, muts)
		if err != nil {
			t.Fatal(err)
		}
		if meta.Compacted {
			t.Fatalf("round %d: async engine compacted on the mutation path (%+v)", round, meta)
		}
		if meta.CompactPending {
			sawPending = true
		}
		// Reads stay serviceable while the compactor runs.
		if _, err := inc.Classify(Query{Nodes: []int{round % n}}); err != nil {
			t.Fatal(err)
		}
		// Drain the background build so each install swaps a clean frozen
		// epoch and the final state below is deterministic.
		inc.WaitCompaction()
	}
	if !sawPending {
		t.Error("threshold crossings never reported CompactPending")
	}
	if _, err := inc.CompactTopology(); err != nil {
		t.Fatal(err) // canonicalize the tail overlay (sync, explicit)
	}

	st := inc.Stats()
	if st.TopoAsyncCompactions == 0 {
		t.Error("no background compactions installed")
	}
	if st.TopoCompactions < st.TopoAsyncCompactions {
		t.Errorf("TopoCompactions %d < TopoAsyncCompactions %d", st.TopoCompactions, st.TopoAsyncCompactions)
	}

	gf, err := graph.New(n, edgeList(edges), nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewEngineWithH(gf, seeds, 3, inc.Estimate().H, "pinned", EngineOptions{Iterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxBeliefDiff(beliefsOf(t, inc), beliefsOf(t, cold)); d > 1e-6 {
		t.Errorf("async-compacted beliefs differ from cold build by %g", d)
	}
	t.Logf("async stats: %d compactions (%d async), %d rescales", st.TopoCompactions, st.TopoAsyncCompactions, st.TopoRescales)
}

// TestReestimateIncremental pins the o(Δ) re-estimation contract: edge
// mutations fold into the cached DCEr sketches in place, so Reestimate on
// a dirty overlay reuses them — no compaction, no fresh summarization —
// and the level-1 sketch matches an exact recomputation (the update is
// exact for ℓ=1, first-order for deeper levels).
func TestReestimateIncremental(t *testing.T) {
	g, seeds, _ := engineFixture(t, 1000, 5000, 0.1)
	inc, err := NewEngine(g, seeds, 3, EngineOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	base := inc.Stats()
	if base.Summarizations == 0 {
		t.Fatal("construction did not summarize (estimator changed?)")
	}

	edges := edgeSetOf(g)
	rng := rand.New(rand.NewSource(9))
	applied := 0
	for applied < 24 {
		u, v := rng.Intn(g.N), rng.Intn(g.N)
		a, b := int32(u), int32(v)
		if a > b {
			a, b = b, a
		}
		if u == v || edges[[2]int32{a, b}] {
			continue
		}
		muts := []EdgeMutation{{U: u, V: v, W: 1 + rng.Float64()}}
		if applied%3 == 2 && len(edges) > 100 {
			list := edgeList(edges)
			e := list[rng.Intn(len(list))]
			muts = append(muts, EdgeMutation{U: int(e[0]), V: int(e[1]), Remove: true})
			delete(edges, e)
			applied++
		}
		if _, err := inc.MutateTopology(0, muts); err != nil {
			t.Fatal(err)
		}
		edges[[2]int32{a, b}] = true
		applied++
	}

	if _, err := inc.Reestimate(); err != nil {
		t.Fatal(err)
	}
	st := inc.Stats()
	if st.SketchUpdates != int64(applied) {
		t.Errorf("SketchUpdates = %d, want %d (every effective delta folded in)", st.SketchUpdates, applied)
	}
	if st.Summarizations != base.Summarizations {
		t.Errorf("Reestimate re-summarized (%d → %d): the sketch cache was dropped", base.Summarizations, st.Summarizations)
	}
	if st.TopoCompactions != base.TopoCompactions {
		t.Errorf("Reestimate forced a compaction (%d → %d)", base.TopoCompactions, st.TopoCompactions)
	}
	if ts := inc.TopoStats(); ts.OverlayFraction == 0 {
		t.Error("overlay unexpectedly clean: the o(Δ) claim was not exercised")
	}

	// Exactness at ℓ=1: the incrementally maintained M⁽¹⁾ = XᵀWX must
	// match a fresh sketch of the live overlay to numerical noise.
	inc.sumMu.Lock()
	sums := inc.sums
	inc.sumMu.Unlock()
	if sums == nil {
		t.Fatal("sketch cache empty after incremental updates")
	}
	inc.mu.RLock()
	topo := inc.topo
	seedsNow := append([]int(nil), inc.seeds...)
	inc.mu.RUnlock()
	fresh, err := core.SummarizeOn(topo, seedsNow, 3, core.SummaryOptions{
		LMax: 1, NonBacktracking: true, Variant: core.Variant1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, want := sums.M[0].Row(i), fresh.M[0].Row(i)
		for j := range got {
			if math.Abs(got[j]-want[j]) > 1e-9 {
				t.Fatalf("M¹[%d][%d] = %g, want %g (exact level-1 update violated)", i, j, got[j], want[j])
			}
		}
	}
}

// TestReestimateDriftInvalidation: past the drift bound the sketches are
// dropped (first-order error would accumulate) and the next estimate pays
// one fresh summarization of the live overlay — still no compaction.
func TestReestimateDriftInvalidation(t *testing.T) {
	g, seeds, _ := engineFixture(t, 300, 1200, 0.1)
	inc, err := NewEngine(g, seeds, 3, EngineOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	base := inc.Stats()
	// One batch whose cumulative |Δw| exceeds 5% of the live edge count
	// (the sketch drift bound) while staying spread across distinct rows,
	// so neither the Gershgorin contraction guard nor the overlay-fraction
	// trigger forces a compaction.
	var muts []EdgeMutation
	for i := 0; i < 16; i++ {
		muts = append(muts, EdgeMutation{U: 2 * i, V: 2*i + 1, W: 5})
	}
	if _, err := inc.MutateTopology(0, muts); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Reestimate(); err != nil {
		t.Fatal(err)
	}
	st := inc.Stats()
	if st.SketchUpdates != 0 {
		t.Errorf("over-drift delta was folded in (SketchUpdates=%d)", st.SketchUpdates)
	}
	if st.Summarizations != base.Summarizations+1 {
		t.Errorf("Summarizations %d → %d, want exactly one fresh sketch pass", base.Summarizations, st.Summarizations)
	}
	if st.TopoCompactions != base.TopoCompactions {
		t.Errorf("drift invalidation forced a compaction (%d → %d)", base.TopoCompactions, st.TopoCompactions)
	}
}

// TestEngineMutateReleaseRace hammers the e.res == res install guards: a
// registry releasing transient state (which nils the residual solver)
// while label patches and topology mutations are mid-flush must abort the
// orphaned patch sessions, not apply them to a replaced solver. Run with
// -race. The engine must stay queryable and converge to parity afterwards.
func TestEngineMutateReleaseRace(t *testing.T) {
	g, seeds, _ := engineFixture(t, 600, 3000, 0.1)
	eng, err := NewEngine(g, seeds, 3, EngineOptions{Incremental: true, CompactFraction: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Classify(Query{Nodes: []int{0}}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	wg.Add(1)
	go func() { // topology mutator: fresh edges, no self-loops
		defer wg.Done()
		for i := 0; i < 60; i++ {
			u, v := (i*7)%g.N, (i*13+1)%g.N
			if u == v {
				v = (v + 1) % g.N
			}
			if _, err := eng.MutateTopology(0, []EdgeMutation{{U: u, V: v}}); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // label patcher
		defer wg.Done()
		for i := 0; i < 60; i++ {
			if err := eng.UpdateLabels(map[int]int{(i * 11) % g.N: i % 3}, nil); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() { // the racing release: nils e.res under the flushes
		defer wg.Done()
		for i := 0; i < 30; i++ {
			eng.ReleaseTransient()
			if _, err := eng.Classify(Query{Nodes: []int{i % g.N}}); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	// Converge and check parity against a cold build of the final state.
	if _, err := eng.CompactTopology(); err != nil {
		t.Fatal(err)
	}
	gf, err := graph.New(g.N, edgeList(edgeSetOf(eng.Graph())), nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewEngineWithH(gf, eng.Seeds(), 3, eng.Estimate().H, "pinned", EngineOptions{Iterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxBeliefDiff(beliefsOf(t, eng), beliefsOf(t, cold)); d > 1e-6 {
		t.Errorf("post-race beliefs differ from cold build by %g", d)
	}
}

// TestReestimateSpeedArtifact measures Reestimate on a mutated overlay
// against a cold estimate of the same edge set and emits the o(Δ)
// re-estimation artifact (BENCH_REESTIMATE_OUT) that CI gates with
// benchdiff: the structural counters are asserted here too — zero
// compactions and zero summarizations during mutate+reestimate — because
// they, unlike wall-clock, cannot flake. Skipped in -short.
func TestReestimateSpeedArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-node benchmark; run without -short")
	}
	const n, m = 100_000, 200_000
	g, truth, err := Generate(GenerateConfig{N: n, M: m, K: 3, H: SkewedH(3, 8), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := SampleSeeds(truth, 3, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewEngine(g, seeds, 3, EngineOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	base := inc.Stats()

	const mutations = 300
	edges := edgeSetOf(g)
	applied := 0
	for i := 0; applied < mutations; i++ {
		u, v := (i*17)%n, (i*31+5)%n
		a, b := int32(u), int32(v)
		if a > b {
			a, b = b, a
		}
		if u == v || edges[[2]int32{a, b}] {
			continue
		}
		if _, err := inc.MutateTopology(0, []EdgeMutation{{U: u, V: v}}); err != nil {
			t.Fatal(err)
		}
		edges[[2]int32{a, b}] = true
		applied++
	}

	start := time.Now()
	if _, err := inc.Reestimate(); err != nil {
		t.Fatal(err)
	}
	reestDur := time.Since(start)

	st := inc.Stats()
	compactionsDuring := st.TopoCompactions - base.TopoCompactions
	summarizationsDuring := st.Summarizations - base.Summarizations
	if compactionsDuring != 0 {
		t.Errorf("mutate+reestimate forced %d compaction(s)", compactionsDuring)
	}
	if summarizationsDuring != 0 {
		t.Errorf("mutate+reestimate re-summarized %d time(s)", summarizationsDuring)
	}
	if st.SketchUpdates != mutations {
		t.Errorf("SketchUpdates = %d, want %d", st.SketchUpdates, mutations)
	}

	// Cold reference: estimate the same final edge set from scratch — the
	// O(mkℓ) summarization the sketch updates avoided. Context only.
	gf, err := graph.New(n, edgeList(edges), nil)
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	if _, err := EstimateBy("dcer", gf, seeds, 3, EstimateOptions{}); err != nil {
		t.Fatal(err)
	}
	coldDur := time.Since(start)
	speedup := float64(coldDur) / float64(reestDur)
	t.Logf("reestimate after %d mutations: %v vs cold estimate %v — %.1f× (%d sketch updates)",
		mutations, reestDur, coldDur, speedup, st.SketchUpdates)

	if out := os.Getenv("BENCH_REESTIMATE_OUT"); out != "" {
		blob, err := json.MarshalIndent(map[string]any{
			"nodes":                 n,
			"edges":                 m,
			"mutations":             mutations,
			"sketch_updates":        st.SketchUpdates,
			"compactions_during":    compactionsDuring,
			"summarizations_during": summarizationsDuring,
			"reestimate_ms":         float64(reestDur) / float64(time.Millisecond),
			"cold_estimate_ms":      float64(coldDur) / float64(time.Millisecond),
			"speedup":               speedup,
			"timestamp":             time.Now().UTC().Format(time.RFC3339),
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			t.Fatalf("writing %s: %v", out, err)
		}
		t.Logf("wrote re-estimation artifact to %s", out)
	}
}
