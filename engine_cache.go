package factorgraph

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// overlayCacheCap bounds the what-if cache at this many memoized frontiers
// per engine. Interactive what-if exploration replays a handful of seed
// sets; 64 covers that with a worst case of 64×overlayCacheMaxRows cloned
// rows, far below one belief matrix on any graph worth caching for.
const overlayCacheCap = 64

// overlayCacheMaxRows is the largest overlay frontier worth memoizing:
// beyond it the cloned rows stop being "a frontier" and start being a
// belief matrix, and re-pushing is cheap relative to the memory.
const overlayCacheMaxRows = 8192

// overlayCacheEntry is one memoized what-if: the overlay's cloned belief
// rows plus the flush work that produced them, pinned to the engine
// generation they were computed at.
type overlayCacheEntry struct {
	key    string
	gen    int64
	rows   map[int32][]float64
	pushed int
	edges  int
}

// overlayCache is a small LRU keyed by the canonical extra-seed set.
// Entries carry the engine generation they were computed at; lookups at any
// other generation delete lazily, so every seed patch or H change
// invalidates the whole cache without a scan. The zero value is ready to
// use.
type overlayCache struct {
	mu      sync.Mutex
	lru     list.List // of *overlayCacheEntry, front = most recent
	entries map[string]*list.Element
}

// get returns the entry for key if it was computed at gen, refreshing its
// LRU position; stale entries are dropped on sight.
func (c *overlayCache) get(key string, gen int64) *overlayCacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	ent := el.Value.(*overlayCacheEntry)
	if ent.gen != gen {
		c.lru.Remove(el)
		delete(c.entries, key)
		return nil
	}
	c.lru.MoveToFront(el)
	return ent
}

// put installs (or replaces) an entry, evicting the least recently used
// one past capacity.
func (c *overlayCache) put(ent *overlayCacheEntry) {
	if len(ent.rows) > overlayCacheMaxRows {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.entries == nil {
		c.entries = make(map[string]*list.Element)
	}
	if el, ok := c.entries[ent.key]; ok {
		el.Value = ent
		c.lru.MoveToFront(el)
		return
	}
	c.entries[ent.key] = c.lru.PushFront(ent)
	for c.lru.Len() > overlayCacheCap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*overlayCacheEntry).key)
	}
}

// purge empties the cache (Close calls it to release the cloned rows).
func (c *overlayCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lru.Init()
	c.entries = nil
}

// len reports the entry count (tests).
func (c *overlayCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// overlayCacheKey canonicalizes an extra-seed set: sorted "node:class"
// pairs, so map iteration order cannot split identical what-ifs across
// cache entries.
func overlayCacheKey(extra map[int]int) string {
	nodes := make([]int, 0, len(extra))
	for node := range extra {
		nodes = append(nodes, node)
	}
	sort.Ints(nodes)
	var b strings.Builder
	for _, node := range nodes {
		b.WriteString(strconv.Itoa(node))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(extra[node]))
		b.WriteByte(';')
	}
	return b.String()
}
