package factorgraph

import (
	"testing"
)

// TestEngineOverlayCache: an identical what-if repeated at the same label
// generation is served from the memoized frontier (no pushes), and any
// label patch invalidates it.
func TestEngineOverlayCache(t *testing.T) {
	g, seeds, _ := engineFixture(t, 2000, 16000, 0.05)
	eng, err := NewEngine(g, seeds, 3, EngineOptions{
		Incremental: true, ResidualEdgeBudget: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	node := -1
	for i, c := range seeds {
		if c == Unlabeled {
			node = i
			break
		}
	}
	q := Query{Nodes: []int{node, (node + 3) % g.N}, TopK: 3,
		ExtraSeeds: map[int]int{node: 2}}

	collect := func() ([]NodeResult, QueryMeta) {
		var out []NodeResult
		meta, err := eng.ClassifyEachMeta(q, func(r NodeResult) error {
			out = append(out, r)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out, meta
	}

	first, m1 := collect()
	if !m1.Residual || m1.CacheHit {
		t.Fatalf("first what-if meta = %+v, want residual miss", m1)
	}
	if m1.PushedNodes == 0 || m1.ClonedRows == 0 {
		t.Fatalf("first what-if did no push work: %+v", m1)
	}
	second, m2 := collect()
	if !m2.CacheHit {
		t.Fatalf("repeated what-if meta = %+v, want cache hit", m2)
	}
	if m2.ClonedRows != m1.ClonedRows || m2.PushedNodes != m1.PushedNodes {
		t.Errorf("cache hit reports different work: %+v vs %+v", m2, m1)
	}
	for i := range first {
		if first[i].Label != second[i].Label {
			t.Fatalf("cached label differs at node %d: %d vs %d", first[i].Node, second[i].Label, first[i].Label)
		}
		for j := range first[i].Top {
			if first[i].Top[j] != second[i].Top[j] {
				t.Fatalf("cached scores differ at node %d", first[i].Node)
			}
		}
	}
	if st := eng.Stats(); st.OverlayCacheHits != 1 {
		t.Errorf("OverlayCacheHits = %d, want 1", st.OverlayCacheHits)
	}

	// A different extra-seed set is its own entry, not a hit.
	q2 := q
	q2.ExtraSeeds = map[int]int{node: 1}
	if meta, err := eng.ClassifyEachMeta(q2, func(NodeResult) error { return nil }); err != nil {
		t.Fatal(err)
	} else if meta.CacheHit {
		t.Error("different seed set hit the cache")
	}

	// A label patch bumps the generation: the cached frontier is stale.
	if err := eng.UpdateLabels(map[int]int{(node + 5) % g.N: 1}, nil); err != nil {
		t.Fatal(err)
	}
	_, m3 := collect()
	if m3.CacheHit {
		t.Error("what-if after a patch served a stale cached frontier")
	}
	if st := eng.Stats(); st.OverlayCacheHits != 1 {
		t.Errorf("OverlayCacheHits after invalidation = %d, want 1", st.OverlayCacheHits)
	}
	// And the refreshed entry hits again.
	if _, m4 := collect(); !m4.CacheHit {
		t.Error("refreshed what-if entry did not hit")
	}
}

// TestOverlayCacheKeyCanonical: map iteration order must not split
// identical seed sets across entries.
func TestOverlayCacheKeyCanonical(t *testing.T) {
	a := map[int]int{5: 1, 17: 2, 3: 0}
	for i := 0; i < 20; i++ {
		b := map[int]int{17: 2, 3: 0, 5: 1}
		if overlayCacheKey(a) != overlayCacheKey(b) {
			t.Fatal("identical seed sets produced different keys")
		}
	}
	if overlayCacheKey(map[int]int{5: 1}) == overlayCacheKey(map[int]int{5: 2}) {
		t.Fatal("different classes share a key")
	}
}

// TestOverlayCacheLRU: capacity bounds entries; eviction drops the oldest.
func TestOverlayCacheLRU(t *testing.T) {
	var c overlayCache
	for i := 0; i < overlayCacheCap+10; i++ {
		c.put(&overlayCacheEntry{key: overlayCacheKey(map[int]int{i: 1}), gen: 1,
			rows: map[int32][]float64{}})
	}
	if c.len() != overlayCacheCap {
		t.Fatalf("cache len = %d, want cap %d", c.len(), overlayCacheCap)
	}
	if c.get(overlayCacheKey(map[int]int{0: 1}), 1) != nil {
		t.Error("oldest entry survived eviction")
	}
	if c.get(overlayCacheKey(map[int]int{overlayCacheCap + 9: 1}), 1) == nil {
		t.Error("newest entry evicted")
	}
	// Oversized frontiers are not cached at all.
	big := make(map[int32][]float64, overlayCacheMaxRows+1)
	for i := int32(0); i <= overlayCacheMaxRows; i++ {
		big[i] = nil
	}
	c.put(&overlayCacheEntry{key: "big", gen: 1, rows: big})
	if c.get("big", 1) != nil {
		t.Error("oversized frontier was cached")
	}
}

// TestEngineIncrementalMemoryFootprint is the memory acceptance check: on
// a 200k-node graph an idle Incremental engine (warmed, empty frontier)
// must report at least 40% less than the old static formula — the dense
// residual buffers are gone and the pooled states are not idle-resident.
func TestEngineIncrementalMemoryFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("200k-node engine build; run without -short")
	}
	const n, m, k = 200_000, 400_000, 3
	g, truth, err := Generate(GenerateConfig{N: n, M: m, K: k, H: SkewedH(k, 8), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := SampleSeeds(truth, k, 0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	// A preset H skips estimation: this test is about memory, not DCEr.
	h := SkewedH(k, 8)
	eng, err := NewEngineWithH(g, seeds, k, h, "gold", EngineOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	// Warm: one full solve seeds the residual state; the frontier is then
	// empty and the snapshot resident — the steady serving state.
	if _, err := eng.Classify(Query{Nodes: []int{0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Classify(Query{}); err != nil {
		t.Fatal(err)
	}
	// The formula MemoryFootprint used before the tiered residual landed:
	// the static engine estimate plus five dense n×k residual buffers and
	// per-node bookkeeping.
	old := EstimateEngineBytes(n, m, k, false) + int64(n)*(5*8*int64(k)+9)
	got := eng.MemoryFootprint()
	t.Logf("idle incremental footprint: %d MiB (old formula %d MiB, %.0f%% drop)",
		got>>20, old>>20, 100*(1-float64(got)/float64(old)))
	if got > old*6/10 {
		t.Errorf("idle footprint %d > 60%% of the old estimate %d (want ≥40%% drop)", got, old)
	}
	// Sanity floor: the CSR matrix and the belief working set are real.
	if got < csrBytes(n, m, false) {
		t.Errorf("footprint %d below the CSR matrix alone", got)
	}
}
