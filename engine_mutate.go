package factorgraph

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"factorgraph/internal/delta"
	"factorgraph/internal/dense"
	"factorgraph/internal/exec"
	"factorgraph/internal/graph"
	"factorgraph/internal/propagation"
	"factorgraph/internal/residual"
	"factorgraph/internal/sparse"
	"factorgraph/internal/telemetry"
)

// ErrTopologyImmutable is returned by topology mutations on an engine that
// was not built with EngineOptions.Incremental: only the residual subsystem
// can repropagate an edge change in o(Δ), so the non-incremental engine
// keeps its construction-time guarantee that the graph is frozen. The HTTP
// layer maps this to 409.
var ErrTopologyImmutable = errors.New("graph topology is immutable (engine not incremental)")

// EdgeMutation is one streaming topology change: an undirected edge upsert
// (W == 0 means weight 1; negative weights are rejected) or, with Remove
// set, an edge deletion.
type EdgeMutation struct {
	U, V   int
	W      float64
	Remove bool
}

// MutateMeta describes how a topology mutation batch was applied.
type MutateMeta struct {
	// AddedNodes / SetEdges / RemovedEdges count the applied changes;
	// MissingRemoves counts removals of absent edges (no-ops, not errors —
	// streams may replay).
	AddedNodes     int
	SetEdges       int
	RemovedEdges   int
	MissingRemoves int
	// Residual is true when the perturbation was repropagated in place by
	// o(Δ) residual pushes seeded at the mutated endpoints; false means the
	// engine was cold (or the contraction guard forced a re-solve) and the
	// next query pays the full propagation.
	Residual bool
	// PushedNodes / TouchedEdges is the push work of the residual flush.
	PushedNodes  int
	TouchedEdges int
	// FellBack reports the flush spread past the edge budget and finished
	// as dense sweeps on the patch session's private clone.
	FellBack bool
	// Compacted reports that this batch ended in a compaction: the delta
	// overlay was merged into a fresh canonical CSR, swapped in under the
	// snapshot lock, and ρ(W)/ε were re-derived from it.
	Compacted bool
	// CompactPending reports that this batch tripped the overlay-fraction
	// threshold on an AsyncCompact engine: a background compactor is
	// building the merged CSR against the frozen epoch and will swap it in
	// off the mutation path — this batch did NOT pay the merge.
	CompactPending bool
	// Rescaled reports that the compaction moved ε (ρ(W) changed) and the
	// residual state was rescaled and re-converged to the new fixed point.
	Rescaled bool
	// OverlayFraction is the post-batch share of stored entries living in
	// the delta overlay (0 right after a compaction).
	OverlayFraction float64
	// Nodes / Edges are the post-batch live dimensions.
	Nodes, Edges int
	// LockWaitSeconds / FlushSeconds attribute the batch's time to lock
	// acquisition and the residual flush, for per-request cost accounting.
	LockWaitSeconds float64
	FlushSeconds    float64
}

// defaultCompactFraction is the overlay share of stored entries past which
// a mutation batch triggers compaction.
const defaultCompactFraction = 0.25

// contractionGuard bounds the effective convergence parameter the pinned
// ε may reach between compactions: mutations keep ε·ρ(W')·ρ(H̃) ≤
// contractionGuard via the Gershgorin drift bound, forcing an early
// compaction (which re-derives ε) instead of ever iterating a
// non-contracting update.
const contractionGuard = 0.95

// MutateTopology applies a batch of streaming topology mutations — node
// additions followed by edge upserts/removals — against the live engine,
// without rebuilding anything: the CSR stays frozen and the changes land in
// a copy-on-write delta overlay (internal/delta) that every execution
// kernel iterates transparently. On a warm engine the batch seeds the
// residual frontier at the mutated endpoints (ΔR = ε·ΔW·F·H̃) and a
// residual.Patch session flushes it OUTSIDE the engine locks, so
// convergence costs o(Δ) like label patches and concurrent readers keep
// serving the pre-mutation beliefs until the row swap.
//
// Consistency: beliefs between compactions are the exact fixed point of
// the LIVE topology under the ε-scaling pinned at the last compaction
// epoch. Once the overlay fraction passes CompactFraction (or the
// contraction guard trips) the batch ends in a compaction: the overlay
// merges into a fresh canonical CSR — bit-identical to a cold build of the
// same edge set — ρ(W) and ε are re-derived from it exactly as a cold
// build would, and the residual state is rescaled and re-converged, so a
// compacted mutated engine is indistinguishable from a cold engine on the
// final edge set (the parity tests pin this to 1e-6).
func (e *Engine) MutateTopology(addNodes int, muts []EdgeMutation) (meta MutateMeta, err error) {
	return e.MutateTopologyCtx(context.Background(), addNodes, muts)
}

// MutateTopologyCtx is MutateTopology carrying the request context: a trace
// attached to ctx (telemetry.WithTrace) records the batch as an
// "engine.mutate" span tree — lock_wait, the residual flush (with the exec
// tiers nested under it), the apply swap and any compaction the batch
// triggered.
func (e *Engine) MutateTopologyCtx(ctx context.Context, addNodes int, muts []EdgeMutation) (MutateMeta, error) {
	tr := telemetry.TraceFrom(ctx)
	done := tr.Start("engine.mutate")
	meta, err := e.mutateTopology(addNodes, muts, tr)
	done()
	tr.AddWork(meta.PushedNodes, meta.TouchedEdges, 0)
	tr.AddWait(meta.FlushSeconds, meta.LockWaitSeconds)
	return meta, err
}

func (e *Engine) mutateTopology(addNodes int, muts []EdgeMutation, tr *telemetry.Trace) (meta MutateMeta, err error) {
	// Stamp the live dimensions on EVERY return path — error metas
	// included, so a compaction failure surfaced over HTTP still reports
	// the real node/edge counts instead of zeros. Every return below runs
	// with e.mu released, so the deferred read-lock cannot deadlock.
	defer e.fillTopoDims(&meta)
	if !e.eopts.Incremental {
		return MutateMeta{}, ErrTopologyImmutable
	}
	if addNodes < 0 {
		return MutateMeta{}, fmt.Errorf("factorgraph: negative node addition %d", addNodes)
	}
	lockStart := telemetry.Now()
	doneLock := tr.Start("lock_wait")
	e.patchMu.Lock()
	defer e.patchMu.Unlock()

	e.mu.Lock()
	doneLock()
	hPatchLockWaitTopo.ObserveSince(lockStart)
	if !lockStart.IsZero() {
		meta.LockWaitSeconds = time.Since(lockStart).Seconds()
	}
	if e.closed {
		e.mu.Unlock()
		return MutateMeta{}, ErrEngineClosed
	}
	n := e.topo.Dim() + addNodes
	for _, m := range muts {
		if m.U < 0 || m.U >= n || m.V < 0 || m.V >= n {
			e.mu.Unlock()
			return MutateMeta{}, fmt.Errorf("factorgraph: edge (%d,%d) out of range n=%d", m.U, m.V, n)
		}
		if m.U == m.V {
			// The reproduction serves simple undirected graphs end-to-end
			// (cold builds never produce self-loops, loadgen avoids them,
			// and the paper's W is hollow); the delta storage layer can
			// represent u == v, but accepting it here would create graphs a
			// cold rebuild of the same edge stream cannot reproduce.
			// Rejected for upserts and removals alike, before any mutation
			// lands — the batch is all-or-nothing.
			e.mu.Unlock()
			return MutateMeta{}, fmt.Errorf("factorgraph: self-loop (%d,%d) rejected (the engine serves simple graphs)", m.U, m.V)
		}
		if !m.Remove {
			w := m.W
			if w == 0 {
				w = 1
			}
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				e.mu.Unlock()
				return MutateMeta{}, fmt.Errorf("factorgraph: invalid edge weight %v on (%d,%d)", m.W, m.U, m.V)
			}
		}
	}
	next := e.topo.Clone()
	if addNodes > 0 {
		next.AddNodes(addNodes)
		e.growLocked(n)
		meta.AddedNodes = addNodes
	}
	if e.perm != nil {
		// Translate endpoints to internal rows once, after the grown perm
		// identity-extends over the added nodes. The caller's slice is not
		// mutated.
		tmuts := make([]EdgeMutation, len(muts))
		copy(tmuts, muts)
		for i := range tmuts {
			tmuts[i].U = e.perm.ToInternal(tmuts[i].U)
			tmuts[i].V = e.perm.ToInternal(tmuts[i].V)
		}
		muts = tmuts
	}
	res := e.res
	var patch *residual.Patch
	if res != nil {
		// Publish the mutated epoch to the solver first: the patch flush
		// must converge against the NEW topology (the residual invariant is
		// R = X̃ + εW'FH̃ − F once the seeds below land).
		res.Grow(n)
		res.SetAdj(next)
		patch = res.BeginPatch()
		patch.Trace = tr
	}
	var skDeltas []sketchDelta
	for _, m := range muts {
		var dw float64
		if m.Remove {
			old, ok := next.RemoveEdge(m.U, m.V)
			if !ok {
				meta.MissingRemoves++
				continue
			}
			dw = -old
			meta.RemovedEdges++
		} else {
			w := m.W
			if w == 0 {
				w = 1
			}
			old := next.SetEdge(m.U, m.V, w)
			dw = w - old
			meta.SetEdges++
		}
		if dw != 0 {
			if patch != nil {
				patch.AddEdgeDelta(m.U, m.V, dw)
			}
			skDeltas = append(skDeltas, sketchDelta{u: m.U, v: m.V, dw: dw})
		}
	}
	e.topo = next
	// Rebind the overlay-flood fallback pool to the new epoch (lazily — no
	// eager n×k allocation on the o(Δ) path); stale pooled states drain
	// with their old pool object.
	e.pool = e.lazyIncrementalPool(next, e.rhoW, e.est.H)
	e.snap = nil
	e.gen++
	oldLabelGen := e.labelGen
	e.labelGen++ // the summaries sketch the topology; it changed
	newLabelGen := e.labelGen
	// The seed slice header is safe to read after unlock: every seed
	// writer holds patchMu, which we hold for the whole batch.
	seeds := e.seeds
	liveEdges := next.UndirectedEdges()
	e.nNodes.Store(int64(next.Dim()))
	e.nEdgeMutations.Add(int64(meta.SetEdges + meta.RemovedEdges))
	engEdgeMutations.Add(int64(meta.SetEdges + meta.RemovedEdges))
	force := e.contractionGuardTrippedLocked(next)
	if force && patch != nil {
		// The pinned ε can no longer guarantee contraction: do not flush
		// (pushes might not converge). Abort the seeded session so its
		// clones release, drop the residual state; the forced compaction
		// below re-derives ε and the next query re-solves.
		patch.Abort()
		e.res = nil
		res, patch = nil, nil
		e.nResidualFallbacks.Add(1)
	}
	e.mu.Unlock()

	// Fold the batch into the cached DCEr sketches in o(1) per summary
	// entry (or invalidate them past the drift bound) so Reestimate on the
	// mutated engine stays o(Δ) — no compaction, no re-summarization.
	e.applySketchDeltas(oldLabelGen, newLabelGen, seeds, liveEdges, skDeltas)

	if patch != nil {
		// Flush OUTSIDE the engine locks — same narrow-locking contract as
		// label patches: readers serve pre-mutation beliefs meanwhile.
		flushStart := telemetry.Now()
		st := patch.Flush()
		hPatchFlushTopo.ObserveSince(flushStart)
		if !flushStart.IsZero() {
			meta.FlushSeconds = time.Since(flushStart).Seconds()
		}
		meta.Residual = true
		meta.PushedNodes, meta.TouchedEdges, meta.FellBack = st.Pushed, st.Edges, st.FellBack
		e.nResidualPushes.Add(int64(st.Pushed))
		if st.FellBack {
			e.nResidualFallbacks.Add(1)
		}
		applyStart := telemetry.Now()
		doneApply := tr.Start("apply")
		e.mu.Lock()
		applied := e.res == res && !e.closed
		if applied {
			patch.Apply()
			e.snap = nil
			e.gen++
		}
		e.mu.Unlock()
		doneApply()
		hPatchApplyTopo.ObserveSince(applyStart)
		if !applied {
			patch.Abort() // base replaced mid-flush; discard the session
		}
	}

	switch {
	case force:
		// Convergence is at stake: never defer to a background build.
		doneCompact := tr.Start("delta.compact")
		compacted, rescaled, cerr := e.compactNow()
		doneCompact()
		if cerr != nil {
			return meta, cerr
		}
		meta.Compacted, meta.Rescaled = compacted, rescaled
	case next.PatchedFraction() > e.compactFraction():
		if e.eopts.AsyncCompact {
			meta.CompactPending = e.startAsyncCompact()
		} else {
			doneCompact := tr.Start("delta.compact")
			compacted, rescaled, cerr := e.compactNow()
			doneCompact()
			if cerr != nil {
				return meta, cerr
			}
			meta.Compacted, meta.Rescaled = compacted, rescaled
		}
	}
	return meta, nil
}

// sketchDelta is one effective edge-weight change of a mutation batch,
// queued for the incremental summary update.
type sketchDelta struct {
	u, v int
	dw   float64
}

// sketchDriftFraction bounds the cumulative |Δw| the first-order
// ApplyEdgeDelta updates may fold into the cached sketches, relative to
// the live undirected edge count, before accuracy demands a fresh
// summarization (the updates drop O(Δw²) terms and leave N⁽ℓ⁾ frozen).
const sketchDriftFraction = 0.05

// applySketchDeltas folds a mutation batch into the cached summaries in
// place — O(ℓmax²·k²) per mutation, independent of n and m — and marks
// them current for the post-batch label generation, so the next estimator
// run reuses them without summarizing or compacting anything. If the
// cache is cold, from another generation, lacks the retained N matrices,
// or the accumulated drift passes the accuracy bound, the cache is
// dropped instead and the next estimator summarizes the live overlay.
// The caller holds patchMu (seed writers are excluded).
func (e *Engine) applySketchDeltas(oldGen, newGen int64, seeds []int, liveEdges int, deltas []sketchDelta) {
	if len(deltas) == 0 {
		return
	}
	e.sumMu.Lock()
	defer e.sumMu.Unlock()
	if e.sums == nil || e.sums.N == nil || e.sumGen != oldGen {
		return
	}
	var drift float64
	for _, d := range deltas {
		drift += math.Abs(d.dw)
	}
	if e.sumDrift+drift > sketchDriftFraction*float64(liveEdges) {
		e.sums = nil
		e.sumDrift = 0
		return
	}
	for _, d := range deltas {
		if err := e.sums.ApplyEdgeDelta(seeds, d.u, d.v, d.dw); err != nil {
			e.sums = nil
			e.sumDrift = 0
			return
		}
	}
	e.sumDrift += drift
	e.sumGen = newGen
	e.nSketchUpdates.Add(int64(len(deltas)))
	engSketchApplies.Add(int64(len(deltas)))
}

// compactFraction returns the configured overlay-share compaction trigger.
func (e *Engine) compactFraction() float64 {
	if e.eopts.CompactFraction > 0 {
		return e.eopts.CompactFraction
	}
	return defaultCompactFraction
}

// contractionGuardTrippedLocked bounds the spectral drift of the pinned ε:
// ρ(W') ≤ ρ(W_base) + ρ(ΔW) with the overlay's Gershgorin bound on ρ(ΔW),
// so the effective convergence parameter is at most s·(1 + bound/ρ_base).
// Callers hold e.mu.
func (e *Engine) contractionGuardTrippedLocked(t *delta.Graph) bool {
	bound := t.RhoDeltaBound()
	if bound == 0 {
		return false
	}
	if e.rhoW == 0 {
		return true // base had no edges; ε was degenerate — re-derive
	}
	s := e.linbpOptions().S
	return s*(1+bound/e.rhoW) > contractionGuard
}

// growLocked extends the engine's per-node state to n nodes (appended ids,
// Unlabeled, zero explicit beliefs). Callers hold e.mu; the residual state
// grows separately (the caller orders it against SetAdj).
func (e *Engine) growLocked(n int) {
	for len(e.seeds) < n {
		e.seeds = append(e.seeds, Unlabeled)
	}
	grown := dense.New(n, e.k)
	copy(grown.Data, e.x.Data)
	e.x = grown
	if e.perm != nil {
		// Added nodes map identically until the next reordering compaction.
		e.perm = e.perm.Grown(n)
	}
}

// fillTopoDims stamps the live dimensions and overlay fraction on meta.
func (e *Engine) fillTopoDims(meta *MutateMeta) {
	e.mu.RLock()
	if e.topo != nil {
		meta.Nodes = e.topo.Dim()
		meta.Edges = e.topo.UndirectedEdges()
		meta.OverlayFraction = e.topo.PatchedFraction()
	} else {
		meta.Nodes, meta.Edges = e.g.N, e.g.M
	}
	e.mu.RUnlock()
}

// compactForEstimate merges any pending overlay before a NON-sketch
// estimator (LCE, holdout) runs: those read the canonical *Graph, and
// estimating on the frozen base while serving a mutated topology would
// silently fit H to a stale graph. The sketch estimators (DCEr, DCE, MCE)
// never call this — their summaries read the live overlay directly and
// are maintained under mutations by applySketchDeltas, so Reestimate on a
// dirty engine is o(Δ). No-op on frozen engines and clean overlays.
func (e *Engine) compactForEstimate() error {
	if !e.eopts.Incremental {
		return nil
	}
	e.mu.RLock()
	dirty := e.topo != nil && e.topo.Dirty()
	e.mu.RUnlock()
	if !dirty {
		return nil
	}
	_, err := e.CompactTopology()
	return err
}

// CompactTopology forces a compaction of the delta overlay regardless of
// the overlay-fraction trigger: the merged CSR is swapped in under the
// snapshot lock, ρ(W)/ε are re-derived canonically, and the residual state
// is rescaled and re-converged. A no-op (Compacted=false) when the overlay
// is clean.
func (e *Engine) CompactTopology() (MutateMeta, error) {
	if !e.eopts.Incremental {
		return MutateMeta{}, ErrTopologyImmutable
	}
	e.patchMu.Lock()
	defer e.patchMu.Unlock()
	var meta MutateMeta
	compacted, rescaled, err := e.compactNow()
	if err != nil {
		return meta, err
	}
	meta.Compacted, meta.Rescaled = compacted, rescaled
	e.fillTopoDims(&meta)
	return meta, nil
}

// maxRescale bounds the ε ratio the residual rescale path will converge
// incrementally; a larger jump (pathological topologies, a degenerate old
// ρ) drops the residual state instead, and the next query re-solves.
const maxRescale = 0.5

// compactNow merges the overlay into a fresh canonical CSR and installs it
// as the new epoch, synchronously: the merge and the ρ(W) power iteration
// run outside the engine locks (the overlay epoch is immutable and
// patchMu — held by the caller — excludes other mutators), then
// installEpoch swaps the result in.
func (e *Engine) compactNow() (compacted, rescaled bool, err error) {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return false, false, ErrEngineClosed
	}
	topo := e.topo
	e.mu.RUnlock()
	if topo == nil || !topo.Dirty() {
		return false, false, nil
	}
	start := telemetry.Now()
	// Only the synchronous path reorders: the compaction is built from the
	// live (frozen-by-patchMu) overlay, so the install below composes the
	// id map atomically with the epoch swap. Async builds keep the previous
	// ordering (Rebase reuses frozen rows keyed by node id).
	csr, order := topo.CompactOrdered(e.eopts.Reorder)
	rhoNew := csr.SpectralRadiusCached(e.linbpOptions().SpectralIters)
	sched := exec.Tune(csr, e.k, exec.Runner{}, exec.DefaultTuneBudget)
	installed, rescaled := e.installEpoch(topo, csr, rhoNew, order, &sched)
	if !installed {
		// patchMu (held by the caller) excludes every other epoch producer,
		// so a refused install means the engine closed mid-build.
		return false, false, ErrEngineClosed
	}
	engCompactionsSync.Inc()
	hCompactSync.ObserveSince(start)
	return true, rescaled, nil
}

// installEpoch publishes the compacted successor of the frozen epoch: csr
// is the canonical merge of frozen's edge set and rhoNew its spectral
// radius, both built by the caller with no engine lock held. The LIVE
// epoch — which on the async path kept accepting mutations stacked on
// frozen while the build ran — is rebased onto the new CSR
// (delta.Rebase: post-capture patch rows carry over, everything else
// reads through), ρ(W)/ε move to the canonical values, and the residual
// state is rescaled closed-form under the write lock with its
// re-convergence flushing outside the locks like any other patch. On the
// synchronous path the live epoch IS frozen and the rebase degenerates to
// an empty overlay. Returns installed=false when the engine closed or a
// competing compaction already replaced the base epoch (the caller's
// build is stale and simply discarded). The caller must hold patchMu.
//
// order, when non-nil, is the reordering the caller already applied to csr
// (newID[old] = new, over the pre-compaction internal space): the id map,
// the seed/belief vectors and the residual state are permuted to match
// under the same write lock, so readers never observe mixed orderings.
// Only synchronous compactions pass it — the rebase of an async build
// reuses frozen rows keyed by node id, which a renumbering would break.
// sched, when non-nil, is the freshly measured exec schedule to pin for
// the new epoch.
func (e *Engine) installEpoch(frozen *delta.Graph, csr *sparse.CSR, rhoNew float64, order []int32, sched *exec.Schedule) (installed, rescaled bool) {
	newGraph := graph.FromCSR(csr)
	e.mu.Lock()
	if e.closed || e.topo == nil || e.topo.Base() != frozen.Base() {
		e.mu.Unlock()
		return false, false
	}
	// The swap latency metric covers exactly the write-lock hold: this is
	// the reader-visible stall an epoch install costs.
	swapStart := telemetry.Now()
	newTopo := e.topo.Rebase(frozen, csr)
	rhoOld := e.rhoW
	e.topo = newTopo
	e.g = newGraph
	e.rhoW = rhoNew
	e.epochAt = time.Now()
	e.snap = nil
	e.gen++
	e.nCompactions.Add(1)
	e.pool = e.lazyIncrementalPool(newTopo, rhoNew, e.est.H)
	res := e.res
	if order != nil {
		e.perm = e.perm.ComposedWith(order)
		ns := make([]int, len(e.seeds))
		nx := dense.New(e.x.Rows, e.k)
		for old, lab := range e.seeds {
			ns[order[old]] = lab
			copy(nx.Row(int(order[old])), e.x.Row(old))
		}
		e.seeds = ns
		e.x = nx
		if res != nil {
			// Carry the resident fixed point across the renumbering instead
			// of dropping it; SetAdj below rebuilds the drain machinery.
			res.Permute(order)
		}
	}
	if sched != nil {
		e.sched.Store(sched)
		if res != nil {
			res.SetSchedule(*sched)
		}
	}
	if res != nil {
		switch {
		case rhoNew == rhoOld:
			// Bit-equal ρ (e.g. a balanced add/remove churn): ε unchanged.
		case rhoOld == 0 || rhoNew == 0 ||
			math.Abs(rhoOld/rhoNew-1) > maxRescale ||
			math.IsNaN(rhoOld/rhoNew) || math.IsInf(rhoOld/rhoNew, 0):
			// ε jump too large to reconcile incrementally: re-solve lazily.
			e.res = nil
			res = nil
			e.nResidualFallbacks.Add(1)
		default:
			// ε_new/ε_old = rhoOld/rhoNew; the live adjacency is unchanged
			// by the rebase, so the closed-form rescale math is identical
			// for sync and async installs.
			res.SetAdj(newTopo)
			res.Rescale(rhoOld / rhoNew)
			rescaled = true
			e.nRescales.Add(1)
		}
		if res != nil && !rescaled {
			res.SetAdj(newTopo)
		}
	}
	e.mu.Unlock()
	hEpochSwap.ObserveSince(swapStart)

	if rescaled {
		// Re-converge to the rescaled fixed point outside the locks.
		patch := res.BeginPatch()
		st := patch.Flush()
		e.nResidualPushes.Add(int64(st.Pushed))
		if st.FellBack {
			e.nResidualFallbacks.Add(1)
		}
		e.mu.Lock()
		applied := e.res == res && !e.closed
		if applied {
			patch.Apply()
			e.snap = nil
			e.gen++
		}
		e.mu.Unlock()
		if !applied {
			patch.Abort() // base replaced mid-flush; discard the session
		}
	}
	return true, rescaled
}

// startAsyncCompact launches the background compactor for the current
// epoch unless one is already in flight, and reports whether a build is
// pending afterwards. The caller holds patchMu.
func (e *Engine) startAsyncCompact() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || e.topo == nil || !e.topo.Dirty() {
		return false
	}
	if e.compacting {
		return true // the running build will pick up a still-dirty overlay
	}
	e.compacting = true
	go e.runAsyncCompact(e.topo)
	return true
}

// runAsyncCompact is the background compactor: it merges the frozen epoch
// and runs the ρ(W) power iteration entirely lock-free (the epoch is
// immutable — mutations land in fresh overlays stacked on top meanwhile),
// then takes patchMu like any mutator and swaps the build in. A stale
// build (the engine closed, or the contraction guard forced a synchronous
// compaction first) is discarded; Close never waits for this goroutine —
// it aborts at the swap via the closed check.
func (e *Engine) runAsyncCompact(frozen *delta.Graph) {
	start := telemetry.Now()
	csr := frozen.Compact()
	rhoNew := csr.SpectralRadiusCached(e.linbpOptions().SpectralIters)
	// No reordering off-thread (the rebase needs stable node ids), but the
	// schedule is still re-measured on the compacted CSR.
	sched := exec.Tune(csr, e.k, exec.Runner{}, exec.DefaultTuneBudget)
	e.patchMu.Lock()
	installed, _ := e.installEpoch(frozen, csr, rhoNew, nil, &sched)
	e.patchMu.Unlock()
	if installed {
		e.nAsyncCompactions.Add(1)
		engCompactionsAsync.Inc()
		hCompactAsync.ObserveSince(start)
	}
	e.mu.Lock()
	e.compacting = false
	e.mu.Unlock()
	e.compactCond.Broadcast()
}

// WaitCompaction blocks until no background compaction is in flight; it
// returns immediately on engines without AsyncCompact (or with nothing
// pending). Deterministic tests and drain paths use it — serving never
// needs to.
func (e *Engine) WaitCompaction() {
	e.mu.Lock()
	for e.compacting {
		e.compactCond.Wait()
	}
	e.mu.Unlock()
}

// lazyIncrementalPool returns a propagation-state pool bound to the given
// topology epoch and pinned ρ(W) WITHOUT building a state eagerly: the
// pool exists for the rare overlay-flood fallback, and topology mutations
// swap pools per batch — an eager n×k×4 allocation per mutated edge would
// dwarf the o(Δ) push work. The engine's configuration was validated by
// the eager build at construction.
func (e *Engine) lazyIncrementalPool(t *delta.Graph, rhoW float64, h *Matrix) *sync.Pool {
	opts := e.linbpOptions()
	hc := h.Clone()
	return &sync.Pool{New: func() any {
		st, err := propagation.NewStateOn(t, hc, opts, rhoW)
		if err != nil {
			return nil
		}
		return st
	}}
}

// TopoStats is the live view of a mutable topology for admin surfaces.
type TopoStats struct {
	// Nodes / Edges are the live dimensions (they track node additions and
	// edge mutations; for frozen engines they equal the build-time graph).
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// OverlayFraction is the share of stored adjacency entries living in
	// the copy-on-write delta overlay — the distance to the next
	// compaction.
	OverlayFraction float64 `json:"overlay_fraction,omitempty"`
	// EdgeMutations / Compactions count applied edge mutations and overlay
	// compactions over the engine's lifetime; AsyncCompactions is the
	// subset built off-thread and installed by epoch swap.
	EdgeMutations    int64 `json:"edge_mutations,omitempty"`
	Compactions      int64 `json:"compactions,omitempty"`
	AsyncCompactions int64 `json:"async_compactions,omitempty"`
	// Compacting reports a background compactor currently building the
	// next epoch (AsyncCompact engines only).
	Compacting bool `json:"compacting,omitempty"`
}

// TopoStats reports the engine's live topology dimensions and mutation
// counters; the registry refreshes GraphInfo from it at request release.
func (e *Engine) TopoStats() TopoStats {
	ts := TopoStats{
		EdgeMutations:    e.nEdgeMutations.Load(),
		Compactions:      e.nCompactions.Load(),
		AsyncCompactions: e.nAsyncCompactions.Load(),
	}
	e.mu.RLock()
	ts.Compacting = e.compacting
	if e.topo != nil {
		ts.Nodes = e.topo.Dim()
		ts.Edges = e.topo.UndirectedEdges()
		ts.OverlayFraction = e.topo.PatchedFraction()
	} else {
		ts.Nodes, ts.Edges = e.g.N, e.g.M
	}
	e.mu.RUnlock()
	return ts
}

// Dims returns the live (nodes, edges) dimensions.
func (e *Engine) Dims() (n, m int) {
	ts := e.TopoStats()
	return ts.Nodes, ts.Edges
}

// ReleaseTransient drops the engine's rebuildable working state — the
// belief snapshot, the residual solver state, the pooled propagation
// states, the cached summaries and the what-if cache — while keeping
// everything whose loss would force a cold rebuild: the graph (CSR plus
// delta overlay), the seed labels, the explicit beliefs and the H
// estimate. The next query re-solves with ONE propagation — o(build), not
// o(parse+estimate+build) — and no acknowledged mutation (labels, H,
// topology) is lost, so the registry may partially release ANY engine,
// mutated or not. Returns the post-release footprint.
func (e *Engine) ReleaseTransient() int64 {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return 0
	}
	e.snap = nil
	e.res = nil
	e.shed = true
	if e.eopts.Incremental && e.topo != nil {
		e.pool = e.lazyIncrementalPool(e.topo, e.rhoW, e.est.H)
	} else {
		// Rebuild lazily on the frozen CSR: same states the eager pool
		// would hold, just not resident while shed.
		w, h, opts := e.g.Adj, e.est.H.Clone(), e.linbpOptions()
		e.pool = &sync.Pool{New: func() any {
			st, err := propagation.NewState(w, h, opts)
			if err != nil {
				return nil
			}
			return st
		}}
	}
	e.mu.Unlock()
	e.sumMu.Lock()
	e.sums = nil
	e.sumMu.Unlock()
	e.ovCache.purge()
	return e.MemoryFootprint()
}
