package factorgraph

import (
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"factorgraph/internal/graph"
)

// edgeSetOf extracts the undirected edge set of a graph's CSR.
func edgeSetOf(g *Graph) map[[2]int32]bool {
	out := make(map[[2]int32]bool)
	for u := 0; u < g.N; u++ {
		cols, _ := g.Adj.Row(u)
		for _, v := range cols {
			a, b := int32(u), v
			if a > b {
				a, b = b, a
			}
			out[[2]int32{a, b}] = true
		}
	}
	return out
}

func edgeList(set map[[2]int32]bool) [][2]int32 {
	out := make([][2]int32, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	return out
}

// TestEngineMutateParity is the tentpole acceptance property: a graph
// built by a random sequence of edge mutations (adds, removals, upserts,
// node additions) against a live incremental engine must converge to the
// same beliefs (≤1e-6) as a cold build of the final edge set with the same
// H — including across compaction swaps (one forced mid-sequence, one at
// the end, plus any the overlay fraction triggers).
func TestEngineMutateParity(t *testing.T) {
	g, seeds, _ := engineFixture(t, 1500, 6000, 0.05)
	inc, err := NewEngine(g, seeds, 3, EngineOptions{
		Incremental: true, ResidualTol: 1e-10, ResidualEdgeBudget: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Classify(Query{Nodes: []int{0}}); err != nil {
		t.Fatal(err) // warm: the one full solve
	}

	rng := rand.New(rand.NewSource(11))
	edges := edgeSetOf(g)
	n := g.N
	var totalSet, totalRemoved, totalAddedNodes int
	for round := 0; round < 12; round++ {
		var muts []EdgeMutation
		addNodes := 0
		if round%4 == 3 {
			// Grow the graph and wire the new node in (node additions).
			addNodes = 1
			u := rng.Intn(n)
			muts = append(muts, EdgeMutation{U: n, V: u})
			edges[[2]int32{int32(u), int32(n)}] = true
			n++
			totalSet++
			totalAddedNodes++
		}
		for i := 0; i < 6; i++ {
			if rng.Intn(3) == 0 && len(edges) > 100 {
				// Remove a random present edge.
				list := edgeList(edges)
				e := list[rng.Intn(len(list))]
				muts = append(muts, EdgeMutation{U: int(e[0]), V: int(e[1]), Remove: true})
				delete(edges, e)
				totalRemoved++
			} else {
				u, v := rng.Intn(n), rng.Intn(n)
				if u == v {
					continue // self-loops are rejected by validation
				}
				a, b := int32(u), int32(v)
				if a > b {
					a, b = b, a
				}
				if edges[[2]int32{a, b}] {
					continue // upserts of existing weight-1 edges are no-op deltas
				}
				muts = append(muts, EdgeMutation{U: u, V: v})
				edges[[2]int32{a, b}] = true
				totalSet++
			}
		}
		meta, err := inc.MutateTopology(addNodes, muts)
		if err != nil {
			t.Fatal(err)
		}
		if !meta.Residual {
			t.Fatalf("round %d: mutation batch bypassed the residual subsystem (%+v)", round, meta)
		}
		if round == 5 {
			// Mid-sequence forced compaction: parity must survive the swap.
			cm, err := inc.CompactTopology()
			if err != nil {
				t.Fatal(err)
			}
			if !cm.Compacted {
				t.Fatal("mid-sequence compaction was a no-op on a dirty overlay")
			}
		}
	}
	if _, err := inc.CompactTopology(); err != nil {
		t.Fatal(err)
	}

	liveN, liveM := inc.Dims()
	if liveN != n || liveM != len(edges) {
		t.Fatalf("live dims (%d, %d), want (%d, %d)", liveN, liveM, n, len(edges))
	}

	// Cold build of the final edge set, same H: the reference fixed point.
	gf, err := graph.New(n, edgeList(edges), nil)
	if err != nil {
		t.Fatal(err)
	}
	seedsFinal := append([]int(nil), seeds...)
	for len(seedsFinal) < n {
		seedsFinal = append(seedsFinal, Unlabeled)
	}
	cold, err := NewEngineWithH(gf, seedsFinal, 3, inc.Estimate().H, "pinned", EngineOptions{Iterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxBeliefDiff(beliefsOf(t, inc), beliefsOf(t, cold)); d > 1e-6 {
		t.Errorf("mutated beliefs differ from cold build of the final edge set by %g", d)
	}

	st := inc.Stats()
	if got := int(st.EdgeMutations); got != totalSet+totalRemoved {
		t.Errorf("EdgeMutations = %d, want %d", got, totalSet+totalRemoved)
	}
	if st.TopoCompactions < 2 {
		t.Errorf("TopoCompactions = %d, want ≥ 2 (forced mid-sequence + final)", st.TopoCompactions)
	}
	if st.TopoRescales == 0 {
		t.Error("no ε rescale recorded: compactions should have moved ρ(W)")
	}
	ts := inc.TopoStats()
	if ts.OverlayFraction != 0 {
		t.Errorf("overlay fraction %v after compaction, want 0", ts.OverlayFraction)
	}
	t.Logf("applied %d sets, %d removals, %d node adds; stats %+v", totalSet, totalRemoved, totalAddedNodes, ts)
}

// TestEngineMutateDeletionsOnly pins the deletion path specifically: ρ(W)
// shrinks, the pinned ε stays contracting, and post-compaction beliefs
// match a cold build.
func TestEngineMutateDeletionsOnly(t *testing.T) {
	g, seeds, _ := engineFixture(t, 1000, 5000, 0.1)
	inc, err := NewEngine(g, seeds, 3, EngineOptions{
		Incremental: true, ResidualTol: 1e-10, ResidualEdgeBudget: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Classify(Query{Nodes: []int{0}}); err != nil {
		t.Fatal(err)
	}
	edges := edgeSetOf(g)
	rng := rand.New(rand.NewSource(5))
	list := edgeList(edges)
	var muts []EdgeMutation
	for i := 0; i < 40; i++ {
		e := list[rng.Intn(len(list))]
		if !edges[e] {
			continue
		}
		muts = append(muts, EdgeMutation{U: int(e[0]), V: int(e[1]), Remove: true})
		delete(edges, e)
	}
	meta, err := inc.MutateTopology(0, muts)
	if err != nil {
		t.Fatal(err)
	}
	if meta.RemovedEdges != len(muts) || !meta.Residual {
		t.Fatalf("deletion batch meta %+v", meta)
	}
	if _, err := inc.CompactTopology(); err != nil {
		t.Fatal(err)
	}
	gf, err := graph.New(g.N, edgeList(edges), nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewEngineWithH(gf, seeds, 3, inc.Estimate().H, "pinned", EngineOptions{Iterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxBeliefDiff(beliefsOf(t, inc), beliefsOf(t, cold)); d > 1e-6 {
		t.Errorf("post-deletion beliefs differ from cold build by %g", d)
	}
}

// TestEngineMutateColdAndLabels: mutations on a cold engine (no residual
// state yet) simply re-target the first solve; label patches and edge
// mutations interleave safely.
func TestEngineMutateColdAndLabels(t *testing.T) {
	g, seeds, _ := engineFixture(t, 800, 4000, 0.1)
	inc, err := NewEngine(g, seeds, 3, EngineOptions{Incremental: true, ResidualEdgeBudget: 256})
	if err != nil {
		t.Fatal(err)
	}
	// Cold mutation: no pushes, next query solves against the mutated graph.
	meta, err := inc.MutateTopology(1, []EdgeMutation{{U: g.N, V: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Residual {
		t.Fatal("cold mutation claimed a residual flush")
	}
	if meta.Nodes != g.N+1 {
		t.Fatalf("nodes = %d, want %d", meta.Nodes, g.N+1)
	}
	if st := inc.Stats(); st.Propagations != 0 {
		t.Fatalf("cold mutation triggered %d propagations", st.Propagations)
	}
	// The first query pays exactly one solve, over the mutated topology.
	res, err := inc.Classify(Query{Nodes: []int{g.N}, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Node != g.N {
		t.Fatalf("new node unqueryable: %+v", res)
	}
	if st := inc.Stats(); st.Propagations != 1 {
		t.Fatalf("propagations = %d, want 1", st.Propagations)
	}
	// Label the new node, then mutate again: both o(Δ) paths, no re-solve.
	if err := inc.UpdateLabels(map[int]int{g.N: 2}, nil); err != nil {
		t.Fatal(err)
	}
	if meta, err = inc.MutateTopology(0, []EdgeMutation{{U: g.N, V: 5}}); err != nil {
		t.Fatal(err)
	}
	if !meta.Residual {
		t.Fatal("warm mutation did not flush through the residual subsystem")
	}
	if st := inc.Stats(); st.Propagations != 1 {
		t.Fatalf("o(Δ) paths re-solved: propagations = %d", st.Propagations)
	}
}

// TestEngineMutateValidation covers the error paths.
func TestEngineMutateValidation(t *testing.T) {
	g, seeds, _ := engineFixture(t, 100, 500, 0.5)
	frozen, err := NewEngine(g, seeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := frozen.MutateTopology(0, []EdgeMutation{{U: 0, V: 1}}); err != ErrTopologyImmutable {
		t.Errorf("non-incremental mutation error = %v, want ErrTopologyImmutable", err)
	}
	if _, err := frozen.CompactTopology(); err != ErrTopologyImmutable {
		t.Errorf("non-incremental compaction error = %v", err)
	}
	inc, err := NewEngine(g, seeds, 3, EngineOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if meta, err := inc.MutateTopology(0, []EdgeMutation{{U: 0, V: g.N}}); err == nil {
		t.Error("out-of-range endpoint accepted")
	} else if meta.Nodes != g.N || meta.Edges == 0 {
		// Error metas still carry the live dimensions (the HTTP layer
		// reports them); a zero Nodes means a return path skipped the
		// deferred fillTopoDims stamp.
		t.Errorf("error meta not stamped with live dims: %+v", meta)
	}
	if _, err := inc.MutateTopology(0, []EdgeMutation{{U: 7, V: 7}}); err == nil {
		t.Error("self-loop upsert accepted")
	}
	if _, err := inc.MutateTopology(0, []EdgeMutation{{U: 7, V: 7, Remove: true}}); err == nil {
		t.Error("self-loop removal accepted")
	}
	// A self-loop anywhere in the batch rejects the whole batch atomically.
	before := inc.Stats().EdgeMutations
	if _, err := inc.MutateTopology(0, []EdgeMutation{{U: 0, V: 2}, {U: 5, V: 5}}); err == nil {
		t.Error("batch containing a self-loop accepted")
	}
	if after := inc.Stats().EdgeMutations; after != before {
		t.Errorf("rejected batch still applied mutations (%d → %d)", before, after)
	}
	if _, err := inc.MutateTopology(-1, nil); err == nil {
		t.Error("negative node addition accepted")
	}
	if _, err := inc.MutateTopology(0, []EdgeMutation{{U: 0, V: 1, W: -2}}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := inc.MutateTopology(0, []EdgeMutation{{U: 0, V: 1, W: math.NaN()}}); err == nil {
		t.Error("NaN weight accepted")
	}
	// Removing an absent edge is a replayable no-op, not an error.
	meta, err := inc.MutateTopology(0, []EdgeMutation{{U: 0, V: 1, Remove: true}, {U: 0, V: 1, Remove: true}})
	if err != nil {
		t.Fatal(err)
	}
	if meta.MissingRemoves == 0 {
		t.Error("absent removal not reported as missing")
	}
	if _, err := NewEngine(g, seeds, 3, EngineOptions{CompactFraction: 0.5}); err == nil {
		t.Error("CompactFraction without Incremental accepted")
	}
	if _, err := NewEngine(g, seeds, 3, EngineOptions{Incremental: true, CompactFraction: 1.5}); err == nil {
		t.Error("CompactFraction ≥ 1 accepted")
	}
	if _, err := NewEngine(g, seeds, 3, EngineOptions{AsyncCompact: true}); err == nil {
		t.Error("AsyncCompact without Incremental accepted")
	}
	inc.Close()
	if _, err := inc.MutateTopology(0, []EdgeMutation{{U: 0, V: 1}}); err != ErrEngineClosed {
		t.Errorf("closed-engine mutation error = %v", err)
	}
}

// TestEngineMutateConcurrent hammers an incremental engine with parallel
// classify/what-if readers, label patches and topology mutations. Run with
// -race: this is the mutation subsystem's race-cleanliness test.
func TestEngineMutateConcurrent(t *testing.T) {
	g, seeds, _ := engineFixture(t, 1000, 8000, 0.1)
	eng, err := NewEngine(g, seeds, 3, EngineOptions{Incremental: true, CompactFraction: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Classify(Query{Nodes: []int{0}}); err != nil {
		t.Fatal(err)
	}
	const readers, perGoro = 8, 25
	var wg sync.WaitGroup
	errc := make(chan error, readers+3)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				q := Query{Nodes: []int{(r*perGoro + i) % g.N}, TopK: 3}
				if i%5 == 0 {
					q.ExtraSeeds = map[int]int{(r + i) % g.N: i % 3}
				}
				if _, err := eng.Classify(q); err != nil {
					errc <- err
					return
				}
			}
		}(r)
	}
	// Topology mutator: adds + removes, crossing the tiny compaction
	// threshold repeatedly so swaps run under live read traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 40; i++ {
			u, v := rng.Intn(g.N), rng.Intn(g.N)
			if u == v {
				v = (v + 1) % g.N
			}
			if _, err := eng.MutateTopology(0, []EdgeMutation{{U: u, V: v}}); err != nil {
				errc <- err
				return
			}
			if i%4 == 0 {
				if _, err := eng.MutateTopology(0, []EdgeMutation{{U: u, V: v, Remove: true}}); err != nil {
					errc <- err
					return
				}
			}
		}
	}()
	// Label mutator.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < perGoro; i++ {
			node := (i * 13) % g.N
			if err := eng.UpdateLabels(map[int]int{node: i % 3}, nil); err != nil {
				errc <- err
				return
			}
		}
	}()
	// Footprint/stat readers (registry release path).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < perGoro; i++ {
			eng.MemoryFootprint()
			eng.TopoStats()
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if st := eng.Stats(); st.EdgeMutations == 0 {
		t.Error("no edge mutations recorded")
	}
}

// TestMutateQuerySpeedup is the streaming-mutation acceptance benchmark:
// on a 200k-node graph, a single-edge mutation + query through the delta
// overlay and residual repropagation must be ≥10× faster than a
// rebuild + query of the mutated edge set, with a deterministic work-ratio
// backstop (edges touched vs. edges a rebuild's solve scans) so a noisy
// runner cannot produce a false failure alone. Skipped in -short.
func TestMutateQuerySpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("200k-node benchmark; run without -short")
	}
	const n, m = 200_000, 400_000
	g, truth, err := Generate(GenerateConfig{N: n, M: m, K: 3, H: SkewedH(3, 8), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := SampleSeeds(truth, 3, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewEngine(g, seeds, 3, EngineOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	h := inc.Estimate().H
	if _, err := inc.Classify(Query{Nodes: []int{0}}); err != nil {
		t.Fatal(err) // warm: the one full solve
	}
	probe := []int{1, 17, 33}

	// Mutate path: one edge upsert + query against the live engine.
	mutateOnce := func(u, v int, remove bool) (time.Duration, MutateMeta) {
		start := time.Now()
		meta, err := inc.MutateTopology(0, []EdgeMutation{{U: u, V: v, Remove: remove}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := inc.Classify(Query{Nodes: probe, TopK: 3}); err != nil {
			t.Fatal(err)
		}
		return time.Since(start), meta
	}
	// Rebuild path: cold engine over the mutated edge set (H persisted, so
	// the rebuild pays one propagation — the registry's CHEAPEST rebuild)
	// + the same query.
	edges := edgeSetOf(g)
	rebuildOnce := func(u, v int) time.Duration {
		a, b := int32(u), int32(v)
		if a > b {
			a, b = b, a
		}
		edges[[2]int32{a, b}] = true
		start := time.Now()
		gf, err := graph.New(n, edgeList(edges), nil)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := NewEngineWithH(gf, seeds, 3, h, "persisted", EngineOptions{Incremental: true})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cold.Classify(Query{Nodes: probe, TopK: 3}); err != nil {
			t.Fatal(err)
		}
		d := time.Since(start)
		cold.Close()
		return d
	}

	var mutDur time.Duration = math.MaxInt64
	var mutMeta MutateMeta
	for i := 0; i < 3; i++ {
		d, meta := mutateOnce(100+i, 2000+7*i, false)
		if !meta.Residual {
			t.Fatal("mutation bypassed the residual subsystem")
		}
		if meta.Compacted {
			t.Fatal("single-edge mutation triggered compaction")
		}
		if d < mutDur {
			mutDur, mutMeta = d, meta
		}
	}
	var rebDur time.Duration = math.MaxInt64
	for i := 0; i < 3; i++ {
		if d := rebuildOnce(300+i, 4000+11*i); d < rebDur {
			rebDur = d
		}
	}

	// Deterministic work backstop: the rebuild's solve sweeps all 2m stored
	// edges per iteration until the residual tolerance; bound it below by
	// 10 sweeps (residual.Init needs ~27 at s=0.5, tol 1e-8). The mutate
	// path must touch ≥10× fewer edges than even that undercount.
	rebuildWork := int64(10) * int64(g.Adj.NNZ())
	if int64(mutMeta.TouchedEdges)*10 > rebuildWork {
		t.Errorf("mutation touched %d edges; rebuild scans ≥%d (want ≥10× less)",
			mutMeta.TouchedEdges, rebuildWork)
	}
	speedup := float64(rebDur) / float64(mutDur)
	t.Logf("mutate+query %v (pushed %d, %d edges) vs rebuild+query %v — %.1f× speedup",
		mutDur, mutMeta.PushedNodes, mutMeta.TouchedEdges, rebDur, speedup)
	if rebDur < 10*mutDur {
		if os.Getenv("CI") != "" {
			t.Logf("mutate path %v not ≥10× faster than rebuild %v (not failing: CI runner timing)", mutDur, rebDur)
		} else {
			t.Errorf("mutate path %v not ≥10× faster than rebuild %v", mutDur, rebDur)
		}
	}
	if out := os.Getenv("BENCH_MUTATE_OUT"); out != "" {
		blob, err := json.MarshalIndent(map[string]any{
			"nodes":         n,
			"edges":         m,
			"pushed_nodes":  mutMeta.PushedNodes,
			"touched_edges": mutMeta.TouchedEdges,
			"rebuild_edges": rebuildWork,
			"work_ratio":    float64(mutMeta.TouchedEdges) / float64(rebuildWork),
			"speedup":       speedup,
			"mutate_ms":     float64(mutDur) / float64(time.Millisecond),
			"rebuild_ms":    float64(rebDur) / float64(time.Millisecond),
			"timestamp":     time.Now().UTC().Format(time.RFC3339),
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			t.Fatalf("writing %s: %v", out, err)
		}
		t.Logf("wrote mutation bench artifact to %s", out)
	}
}
