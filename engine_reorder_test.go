package factorgraph

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"factorgraph/internal/graph"
)

// TestEngineReorderColdParity: a reordered cold build must serve the exact
// same beliefs per EXTERNAL node id as the unordered build — the
// permutation is an internal layout decision, invisible on every surface.
func TestEngineReorderColdParity(t *testing.T) {
	g, seeds, _ := engineFixture(t, 1500, 6000, 0.05)
	plain, err := NewEngine(g, seeds, 3, EngineOptions{Iterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"degree", "rcm"} {
		g2, seeds2, _ := engineFixture(t, 1500, 6000, 0.05)
		ord, err := NewEngineWithH(g2, seeds2, 3, plain.Estimate().H, "pinned",
			EngineOptions{Iterations: 60, Reorder: mode})
		if err != nil {
			t.Fatal(err)
		}
		if d := maxBeliefDiff(beliefsOf(t, plain), beliefsOf(t, ord)); d > 1e-9 {
			t.Errorf("reorder=%q: cold-build beliefs differ from unordered by %g", mode, d)
		}
		// Seeds() must come back in external order, untouched by the
		// internal permutation.
		got := ord.Seeds()
		for i, want := range seeds {
			if got[i] != want {
				t.Fatalf("reorder=%q: Seeds()[%d] = %d, want %d", mode, i, got[i], want)
			}
		}
	}
}

// TestEngineReorderMutateParity extends the compaction parity property to
// locality reordering: an incremental engine that renumbers its rows at
// every compaction epoch must still converge to the same beliefs (≤1e-6)
// as an unordered cold build of the final edge set — with all mutations,
// label patches and queries expressed in external ids throughout.
func TestEngineReorderMutateParity(t *testing.T) {
	for _, mode := range []string{"degree", "rcm"} {
		t.Run(mode, func(t *testing.T) {
			g, seeds, _ := engineFixture(t, 1500, 6000, 0.05)
			inc, err := NewEngine(g, seeds, 3, EngineOptions{
				Incremental: true, ResidualTol: 1e-10, ResidualEdgeBudget: 256,
				Reorder: mode,
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := inc.Classify(Query{Nodes: []int{0}}); err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(23))
			edges := edgeSetOf(g)
			n := g.N
			seedState := append([]int(nil), seeds...)
			for round := 0; round < 10; round++ {
				var muts []EdgeMutation
				addNodes := 0
				if round%4 == 3 {
					addNodes = 1
					u := rng.Intn(n)
					muts = append(muts, EdgeMutation{U: n, V: u})
					edges[[2]int32{int32(u), int32(n)}] = true
					n++
				}
				for i := 0; i < 6; i++ {
					if rng.Intn(3) == 0 && len(edges) > 100 {
						list := edgeList(edges)
						e := list[rng.Intn(len(list))]
						muts = append(muts, EdgeMutation{U: int(e[0]), V: int(e[1]), Remove: true})
						delete(edges, e)
					} else {
						u, v := rng.Intn(n), rng.Intn(n)
						if u == v {
							continue
						}
						a, b := int32(u), int32(v)
						if a > b {
							a, b = b, a
						}
						if edges[[2]int32{a, b}] {
							continue
						}
						muts = append(muts, EdgeMutation{U: u, V: v})
						edges[[2]int32{a, b}] = true
					}
				}
				if _, err := inc.MutateTopology(addNodes, muts); err != nil {
					t.Fatal(err)
				}
				// Interleave external-id label patches with the topology
				// churn: each renumbering epoch must keep translating them.
				node := rng.Intn(n)
				c := rng.Intn(3)
				if err := inc.UpdateLabels(map[int]int{node: c}, nil); err != nil {
					t.Fatal(err)
				}
				for len(seedState) < n {
					seedState = append(seedState, Unlabeled)
				}
				seedState[node] = c
				if round == 4 {
					// Mid-sequence forced compaction: the first reordered
					// epoch swap. Parity must survive the renumbering.
					cm, err := inc.CompactTopology()
					if err != nil {
						t.Fatal(err)
					}
					if !cm.Compacted {
						t.Fatal("mid-sequence compaction was a no-op on a dirty overlay")
					}
				}
			}
			if _, err := inc.CompactTopology(); err != nil {
				t.Fatal(err)
			}

			// Seeds() round-trips through the composed permutation.
			for len(seedState) < n {
				seedState = append(seedState, Unlabeled)
			}
			got := inc.Seeds()
			for i, want := range seedState {
				if got[i] != want {
					t.Fatalf("Seeds()[%d] = %d, want %d (external ids drifted)", i, got[i], want)
				}
			}

			// Cold build of the final edge set in the ORIGINAL (external)
			// numbering, same H: the reference fixed point.
			gf, err := graph.New(n, edgeList(edges), nil)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := NewEngineWithH(gf, seedState, 3, inc.Estimate().H, "pinned",
				EngineOptions{Iterations: 60})
			if err != nil {
				t.Fatal(err)
			}
			if d := maxBeliefDiff(beliefsOf(t, inc), beliefsOf(t, cold)); d > 1e-6 {
				t.Errorf("reorder=%q: mutated beliefs differ from cold build by %g", mode, d)
			}
			if st := inc.Stats(); st.TopoCompactions < 2 {
				t.Errorf("TopoCompactions = %d, want ≥ 2", st.TopoCompactions)
			}
		})
	}
}

// TestEngineF32BeliefParity pins the float32 tier's accuracy bound: on a
// heterophilous 6k-edge fixture the widened beliefs must stay within 1e-3
// of the float64 fixed point — the documented contract for f32_beliefs.
func TestEngineF32BeliefParity(t *testing.T) {
	g, seeds, _ := engineFixture(t, 1500, 6000, 0.05)
	f64, err := NewEngine(g, seeds, 3, EngineOptions{Iterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	g2, seeds2, _ := engineFixture(t, 1500, 6000, 0.05)
	f32, err := NewEngineWithH(g2, seeds2, 3, f64.Estimate().H, "pinned",
		EngineOptions{Iterations: 60, F32Beliefs: true})
	if err != nil {
		t.Fatal(err)
	}
	d := maxBeliefDiff(beliefsOf(t, f64), beliefsOf(t, f32))
	if d > 1e-3 {
		t.Errorf("float32 beliefs differ from float64 by %g, want ≤ 1e-3", d)
	}
	if d == 0 {
		t.Error("float32 and float64 beliefs are bit-identical: the f32 kernel did not run")
	}

	// The tier composes with reordering; the bound is unchanged.
	g3, seeds3, _ := engineFixture(t, 1500, 6000, 0.05)
	f32r, err := NewEngineWithH(g3, seeds3, 3, f64.Estimate().H, "pinned",
		EngineOptions{Iterations: 60, F32Beliefs: true, Reorder: "degree"})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxBeliefDiff(beliefsOf(t, f64), beliefsOf(t, f32r)); d > 1e-3 {
		t.Errorf("float32+reorder beliefs differ from float64 by %g, want ≤ 1e-3", d)
	}

	// Rejected combination: the residual subsystem accumulates in float64.
	if _, err := NewEngine(g, seeds, 3, EngineOptions{Incremental: true, F32Beliefs: true}); err == nil {
		t.Error("F32Beliefs+Incremental was accepted; the residual invariant needs float64")
	}
	// Unknown reorder modes are rejected at construction.
	if _, err := NewEngine(g, seeds, 3, EngineOptions{Reorder: "zorder"}); err == nil {
		t.Error(`Reorder "zorder" was accepted; want a validation error`)
	}
}

// TestEngineReorderConcurrentExternalIDs is the -race acceptance property:
// classify, label patches, edge mutations and forced (reordering)
// compactions run concurrently, and every emitted result must carry the
// EXTERNAL node id it was asked for. After quiescence the engine must
// still match an unordered cold build of the final state.
func TestEngineReorderConcurrentExternalIDs(t *testing.T) {
	g, seeds, _ := engineFixture(t, 1200, 5000, 0.05)
	eng, err := NewEngine(g, seeds, 3, EngineOptions{
		Incremental: true, ResidualTol: 1e-10, ResidualEdgeBudget: 256,
		Reorder: "degree",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Classify(Query{Nodes: []int{0}}); err != nil {
		t.Fatal(err)
	}

	n := g.N
	edges := edgeSetOf(g)
	seedState := append([]int(nil), seeds...)
	var wg sync.WaitGroup

	// Readers: every result must echo the requested external id with
	// finite scores, across every epoch swap.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 120; i++ {
				nodes := []int{(i*31 + r*17) % n, (i*53 + r*7) % n}
				res, err := eng.Classify(Query{Nodes: nodes, TopK: 3})
				if err != nil {
					t.Error(err)
					return
				}
				for j, nr := range res {
					if nr.Node != nodes[j] {
						t.Errorf("result %d echoes node %d, want %d", j, nr.Node, nodes[j])
						return
					}
					for _, cs := range nr.Top {
						if math.IsNaN(cs.Score) || math.IsInf(cs.Score, 0) {
							t.Errorf("node %d: non-finite score %v", nr.Node, cs.Score)
							return
						}
					}
				}
			}
		}(r)
	}

	// Patcher: deterministic external-id label patches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			node := (i*211 + 5) % n
			c := i % 3
			if err := eng.UpdateLabels(map[int]int{node: c}, nil); err != nil {
				t.Error(err)
				return
			}
			seedState[node] = c
		}
	}()

	// Mutator: deterministic external-id edge adds plus forced
	// compactions, each of which renumbers the internal rows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 30; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			a, b := int32(u), int32(v)
			if a > b {
				a, b = b, a
			}
			if u == v || edges[[2]int32{a, b}] {
				continue
			}
			if _, err := eng.MutateTopology(0, []EdgeMutation{{U: u, V: v}}); err != nil {
				t.Error(err)
				return
			}
			edges[[2]int32{a, b}] = true
			if i%10 == 9 {
				if _, err := eng.CompactTopology(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	wg.Wait()
	if t.Failed() {
		return
	}
	if _, err := eng.CompactTopology(); err != nil {
		t.Fatal(err)
	}

	got := eng.Seeds()
	for i, want := range seedState {
		if got[i] != want {
			t.Fatalf("Seeds()[%d] = %d, want %d (external ids drifted)", i, got[i], want)
		}
	}
	gf, err := graph.New(n, edgeList(edges), nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewEngineWithH(gf, seedState, 3, eng.Estimate().H, "pinned",
		EngineOptions{Iterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxBeliefDiff(beliefsOf(t, eng), beliefsOf(t, cold)); d > 1e-6 {
		t.Errorf("post-churn beliefs differ from cold build by %g", d)
	}
}
