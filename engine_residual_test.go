package factorgraph

import (
	"encoding/json"
	"math"
	"os"
	"sync"
	"testing"
	"time"
)

// incParityEngines builds an incremental engine and a converged plain
// engine sharing the same H, so their beliefs are comparable to tolerance.
func incParityEngines(t *testing.T, g *Graph, seeds []int) (inc, full *Engine) {
	t.Helper()
	// The 2k-node test graphs saturate a push frontier long before a
	// 1e-10 tolerance bites, so give the subsystem a generous edge budget:
	// these tests verify parity and isolation, not push economics.
	inc, err := NewEngine(g, seeds, 3, EngineOptions{
		Incremental: true, ResidualTol: 1e-10, ResidualEdgeBudget: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Warm: the incremental engine pays its one full solve here, so
	// subsequent patches ride the residual state.
	if _, err := inc.Classify(Query{Nodes: []int{0}}); err != nil {
		t.Fatal(err)
	}
	// 60 iterations at s=0.5 puts the dense path ~1e-18 from the fixed
	// point, far inside the 1e-6 agreement budget.
	full, err = NewEngine(g, seeds, 3, EngineOptions{Iterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	if err := full.SetH(inc.Estimate().H, inc.Estimate().Method); err != nil {
		t.Fatal(err)
	}
	return inc, full
}

// beliefsOf pulls the full belief table (scores per class) via TopK.
func beliefsOf(t *testing.T, e *Engine) map[int][]float64 {
	t.Helper()
	res, err := e.Classify(Query{TopK: e.K()})
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[int][]float64, len(res))
	for _, r := range res {
		row := make([]float64, e.K())
		for _, cs := range r.Top {
			row[cs.Class] = cs.Score
		}
		out[r.Node] = row
	}
	return out
}

func maxBeliefDiff(a, b map[int][]float64) float64 {
	worst := 0.0
	for node, row := range a {
		for j, v := range row {
			if d := math.Abs(v - b[node][j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// TestEngineIncrementalPatchParity is the engine-level randomized parity
// property: a random sequence of label patches applied incrementally must
// leave the engine's beliefs within 1e-6 of a converged full propagation
// on the same final seed state.
func TestEngineIncrementalPatchParity(t *testing.T) {
	g, seeds, _ := engineFixture(t, 2000, 16000, 0.05)
	inc, full := incParityEngines(t, g, seeds)

	// Same deterministic patch sequence on both engines.
	patch := func(e *Engine) {
		for round := 0; round < 10; round++ {
			set := map[int]int{}
			var remove []int
			for i := 0; i < 3; i++ {
				node := (round*911 + i*337) % g.N
				if (round+i)%5 == 0 {
					remove = append(remove, node)
				} else {
					set[node] = (node + round) % 3
				}
			}
			if err := e.UpdateLabels(set, remove); err != nil {
				t.Fatal(err)
			}
		}
	}
	patch(inc)
	patch(full)

	if d := maxBeliefDiff(beliefsOf(t, inc), beliefsOf(t, full)); d > 1e-6 {
		t.Errorf("incremental beliefs differ from converged full propagation by %g", d)
	}
	st := inc.Stats()
	if st.ResidualPatches != 10 {
		t.Errorf("residual patches = %d, want 10", st.ResidualPatches)
	}
	if st.ResidualPushes == 0 {
		t.Error("no residual pushes recorded")
	}
	if st.Propagations != 1 {
		t.Errorf("incremental engine ran %d propagations, want 1 (the initial solve)", st.Propagations)
	}
	if st.LabelUpdates != 10 {
		t.Errorf("label updates = %d, want 10", st.LabelUpdates)
	}
}

// TestEngineIncrementalOverlayParity compares residual what-if overlays
// against the converged engine's full-propagation overlays.
func TestEngineIncrementalOverlayParity(t *testing.T) {
	g, seeds, _ := engineFixture(t, 2000, 16000, 0.05)
	inc, full := incParityEngines(t, g, seeds)

	node := -1
	for i, c := range seeds {
		if c == Unlabeled {
			node = i
			break
		}
	}
	q := Query{TopK: 3, ExtraSeeds: map[int]int{node: 2, (node + 1) % g.N: Unlabeled}}

	var incMeta QueryMeta
	incRows := map[int][]float64{}
	meta, err := inc.ClassifyEachMeta(q, func(r NodeResult) error {
		row := make([]float64, 3)
		for _, cs := range r.Top {
			row[cs.Class] = cs.Score
		}
		incRows[r.Node] = row
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	incMeta = meta
	if !incMeta.Residual {
		t.Error("incremental overlay did not use the residual path")
	}
	// At this graph size and tolerance the frontier may legitimately reach
	// every node (locality on large/partitioned graphs is covered by the
	// residual package's own tests); here we only require the overlay to
	// have actually cloned rows rather than mutated the base.
	if incMeta.ClonedRows == 0 {
		t.Error("overlay cloned no rows")
	}

	fullRows := map[int][]float64{}
	if _, err := full.ClassifyEachMeta(q, func(r NodeResult) error {
		row := make([]float64, 3)
		for _, cs := range r.Top {
			row[cs.Class] = cs.Score
		}
		fullRows[r.Node] = row
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if d := maxBeliefDiff(incRows, fullRows); d > 1e-6 {
		t.Errorf("overlay beliefs differ from full what-if propagation by %g", d)
	}

	// The overlay must not have leaked into the engine.
	if inc.Seeds()[node] != Unlabeled {
		t.Error("overlay persisted its seed")
	}
}

// TestEngineIncrementalDirectPath: after a patch, a small node-list query
// is served from live residual rows without rebuilding the snapshot or
// re-propagating.
func TestEngineIncrementalDirectPath(t *testing.T) {
	g, seeds, _ := engineFixture(t, 2000, 16000, 0.05)
	// Generous budget: the dense 2k fixture floods the default one, which
	// would (correctly) drop the residual state instead of exercising the
	// direct path this test is about.
	eng, err := NewEngine(g, seeds, 3, EngineOptions{Incremental: true, ResidualEdgeBudget: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Classify(Query{Nodes: []int{0}}); err != nil {
		t.Fatal(err) // initial solve
	}
	if err := eng.UpdateLabels(map[int]int{1: 2}, nil); err != nil {
		t.Fatal(err)
	}
	meta, err := eng.ClassifyEachMeta(Query{Nodes: []int{1, 2, 3}, TopK: 2}, func(NodeResult) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Residual {
		t.Error("post-patch small query did not use the residual direct path")
	}
	if st := eng.Stats(); st.Propagations != 1 {
		t.Errorf("direct path ran %d propagations, want 1", st.Propagations)
	}
	// A full-graph query now rebuilds the snapshot by cloning — still no
	// propagation.
	if _, err := eng.Classify(Query{}); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Propagations != 1 {
		t.Errorf("snapshot rebuild after patch ran %d propagations, want 1 (clone only)", st.Propagations)
	}
}

// TestEngineIncrementalConcurrent hammers an incremental engine with
// parallel snapshot queries, overlay what-ifs, patches and re-estimations.
// Run with -race: this is the overlay-frontier-isolation-under-concurrency
// test at the engine level.
func TestEngineIncrementalConcurrent(t *testing.T) {
	g, seeds, _ := engineFixture(t, 1000, 8000, 0.1)
	eng, err := NewEngine(g, seeds, 3, EngineOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	const readers, writers, perGoro = 8, 2, 25
	var wg sync.WaitGroup
	errc := make(chan error, readers+writers+1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				q := Query{Nodes: []int{(r*perGoro + i) % g.N}, TopK: 3}
				if i%5 == 0 {
					q.ExtraSeeds = map[int]int{(r + i) % g.N: i % 3}
				}
				if _, err := eng.Classify(q); err != nil {
					errc <- err
					return
				}
			}
		}(r)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				node := (w*perGoro + i) % g.N
				if err := eng.UpdateLabels(map[int]int{node: i % 3}, nil); err != nil {
					errc <- err
					return
				}
				if err := eng.UpdateLabels(nil, []int{node}); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, err := eng.Reestimate(); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestEngineIncrementalPatchFallback: a patch whose frontier exceeds the
// edge budget must not run propagation-scale work under the engine lock —
// the patch session finishes with dense sweeps on its private cloned view
// (fell_back) and the swap preserves the residual state, so no query ever
// pays a re-solve and beliefs still land right.
func TestEngineIncrementalPatchFallback(t *testing.T) {
	g, seeds, _ := engineFixture(t, 2000, 16000, 0.05)
	// Tight budget: any real patch floods it on this dense fixture.
	inc, err := NewEngine(g, seeds, 3, EngineOptions{
		Incremental: true, ResidualTol: 1e-10, ResidualEdgeBudget: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Classify(Query{Nodes: []int{0}}); err != nil {
		t.Fatal(err) // initial solve
	}
	node := -1
	for i, c := range seeds {
		if c == Unlabeled {
			node = i
			break
		}
	}
	meta, err := inc.UpdateLabelsMeta(map[int]int{node: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !meta.Residual || !meta.FellBack {
		t.Fatalf("tight-budget patch meta = %+v, want residual fell-back", meta)
	}
	if st := inc.Stats(); st.ResidualFallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1", st.ResidualFallbacks)
	}
	// The sweeps ran on the patch's cloned view and the swap kept the
	// residual state: the next query is a snapshot clone, not a re-solve.
	res, err := inc.Classify(Query{Nodes: []int{node}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Label != 1 {
		t.Errorf("post-fallback label %d, want 1", res[0].Label)
	}
	if st := inc.Stats(); st.Propagations != 1 {
		t.Errorf("propagations = %d, want 1 (the fallback swept on the patch clone, no re-solve)", st.Propagations)
	}
}

// TestEngineIncrementalValidation covers the new option and request error
// paths.
func TestEngineIncrementalValidation(t *testing.T) {
	g, seeds, _ := engineFixture(t, 100, 500, 0.5)
	if _, err := NewEngine(g, seeds, 3, EngineOptions{ResidualTol: 1e-6}); err == nil {
		t.Error("ResidualTol without Incremental accepted")
	}
	if _, err := NewEngine(g, seeds, 3, EngineOptions{Incremental: true, ResidualTol: -1}); err == nil {
		t.Error("negative ResidualTol accepted")
	}
	eng, err := NewEngine(g, seeds, 3, EngineOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Classify(Query{ExtraSeeds: map[int]int{g.N: 0}}); err == nil {
		t.Error("out-of-range extra seed accepted on residual overlay")
	}
	if _, err := eng.Classify(Query{ExtraSeeds: map[int]int{0: 7}}); err == nil {
		t.Error("out-of-range extra class accepted on residual overlay")
	}
	if _, err := eng.Classify(Query{Nodes: []int{-1}}); err == nil {
		t.Error("negative query node accepted on residual direct path")
	}
}

// TestNewEngineWithH: a preset compatibility matrix skips estimation
// entirely and classifies identically to an engine that estimated then had
// the same H installed.
func TestNewEngineWithH(t *testing.T) {
	g, seeds, _ := engineFixture(t, 1000, 8000, 0.1)
	ref, err := NewEngine(g, seeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	h := ref.Estimate().H
	preset, err := NewEngineWithH(g, seeds, 3, h, "dcer (persisted)")
	if err != nil {
		t.Fatal(err)
	}
	if st := preset.Stats(); st.Estimations != 0 {
		t.Errorf("preset-H engine ran %d estimations, want 0", st.Estimations)
	}
	if m := preset.Estimate().Method; m != "dcer (persisted)" {
		t.Errorf("preset method = %q", m)
	}
	a, err := ref.Classify(Query{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := preset.Classify(Query{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Label != b[i].Label {
			t.Fatalf("node %d: preset-H label %d != reference %d", a[i].Node, b[i].Label, a[i].Label)
		}
	}
	if _, err := NewEngineWithH(g, seeds, 3, nil, "x"); err == nil {
		t.Error("nil H accepted")
	}
	bad := NewMatrix([][]float64{{1, 0}, {0, 1}})
	if _, err := NewEngineWithH(g, seeds, 3, bad, "x"); err == nil {
		t.Error("wrong-shape H accepted")
	}
}

// TestResidualPatchQuerySpeedup is the acceptance benchmark: on a synthetic
// 100k-node graph, a single-node label patch followed by a query must be
// ≥10× faster through the residual subsystem than through a full
// re-propagation, with matching beliefs. The wall-clock assert is backed by
// a deterministic work-ratio assert (edges touched vs. edges a full
// propagation scans), so a noisy machine cannot produce a false failure
// alone. Skipped in -short; the full suite runs it.
func TestResidualPatchQuerySpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-node benchmark; run without -short")
	}
	// Average degree 4: a unit single-node perturbation decays below the
	// tolerance after ~8 hops, well before its frontier can cover 200k
	// nodes — the locality regime the subsystem is built for. (On denser
	// graphs the frontier saturates and the engine's budget fallback makes
	// the patch a dense re-solve; that regime is exercised elsewhere.)
	const n, m = 200_000, 400_000
	g, truth, err := Generate(GenerateConfig{N: n, M: m, K: 3, H: SkewedH(3, 8), Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := SampleSeeds(truth, 3, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	// fullIters puts the dense path within the 1e-6 agreement budget of
	// the fixed point the residual engine maintains (0.5^30 ≈ 1e-9).
	const fullIters = 30
	inc, err := NewEngine(g, seeds, 3, EngineOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewEngine(g, seeds, 3, EngineOptions{Iterations: fullIters})
	if err != nil {
		t.Fatal(err)
	}
	if err := full.SetH(inc.Estimate().H, inc.Estimate().Method); err != nil {
		t.Fatal(err)
	}
	// Warm both: the incremental engine pays its one full solve here.
	if _, err := inc.Classify(Query{Nodes: []int{0}}); err != nil {
		t.Fatal(err)
	}
	if _, err := full.Classify(Query{Nodes: []int{0}}); err != nil {
		t.Fatal(err)
	}

	node := -1
	for i, c := range seeds {
		if c == Unlabeled {
			node = i
			break
		}
	}
	probe := []int{node, (node + 1) % n, (node + 17) % n}

	patchAndQuery := func(e *Engine, class int) (time.Duration, PatchMeta) {
		start := time.Now()
		meta, err := e.UpdateLabelsMeta(map[int]int{node: class}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Classify(Query{Nodes: probe, TopK: 3}); err != nil {
			t.Fatal(err)
		}
		return time.Since(start), meta
	}

	// Best-of-3 for each path, alternating classes so every patch is a
	// real change.
	best := func(e *Engine) (time.Duration, PatchMeta) {
		bd, bm := time.Duration(math.MaxInt64), PatchMeta{}
		for i := 0; i < 3; i++ {
			d, m := patchAndQuery(e, i%3)
			if d < bd {
				bd, bm = d, m
			}
		}
		return bd, bm
	}
	incDur, incMeta := best(inc)
	fullDur, _ := best(full)

	if !incMeta.Residual {
		t.Fatal("patch did not go through the residual subsystem")
	}
	if incMeta.FellBack {
		t.Errorf("single-node patch fell back to dense sweeps (touched %d edges)", incMeta.TouchedEdges)
	}
	// Deterministic work bound: the full path scans 2m stored edges per
	// iteration; the residual path must do ≥10× less edge work.
	fullWork := int64(fullIters) * int64(g.Adj.NNZ())
	if int64(incMeta.TouchedEdges)*10 > fullWork {
		t.Errorf("residual patch touched %d edges; full path scans %d (want ≥10× less)",
			incMeta.TouchedEdges, fullWork)
	}
	t.Logf("patch+query: residual %v (pushed %d nodes, %d edges) vs full %v — %.1f× speedup",
		incDur, incMeta.PushedNodes, incMeta.TouchedEdges, fullDur,
		float64(fullDur)/float64(incDur))
	if fullDur < 10*incDur {
		// On shared CI runners wall-clock is too noisy to gate a build on;
		// the deterministic work-ratio assert above (and the benchdiff
		// trend on the emitted artifact) is the regression gate there.
		if os.Getenv("CI") != "" {
			t.Logf("residual path %v not ≥10× faster than full %v (not failing: CI runner timing)", incDur, fullDur)
		} else {
			t.Errorf("residual path %v not ≥10× faster than full %v", incDur, fullDur)
		}
	}
	// CI trends the residual path: when BENCH_RESIDUAL_OUT names a file,
	// emit the work ratio (deterministic — the regression gate) and the
	// wall-clock speedup (context) as a JSON artifact for cmd/benchdiff.
	if out := os.Getenv("BENCH_RESIDUAL_OUT"); out != "" {
		blob, err := json.MarshalIndent(map[string]any{
			"nodes":         n,
			"edges":         m,
			"pushed_nodes":  incMeta.PushedNodes,
			"touched_edges": incMeta.TouchedEdges,
			"full_edges":    fullWork,
			"work_ratio":    float64(incMeta.TouchedEdges) / float64(fullWork),
			"speedup":       float64(fullDur) / float64(incDur),
			"residual_ms":   float64(incDur) / float64(time.Millisecond),
			"full_ms":       float64(fullDur) / float64(time.Millisecond),
			"timestamp":     time.Now().UTC().Format(time.RFC3339),
		}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			t.Fatalf("writing %s: %v", out, err)
		}
		t.Logf("wrote residual bench artifact to %s", out)
	}

	// Belief parity on the patched state: both engines saw the same final
	// patch (class 2), same H.
	ai, err := inc.Classify(Query{Nodes: probe, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	af, err := full.Classify(Query{Nodes: probe, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ai {
		for j := range ai[i].Top {
			d := math.Abs(ai[i].Top[j].Score - af[i].Top[j].Score)
			if d > 1e-6 {
				t.Errorf("node %d: residual and full beliefs differ by %g", ai[i].Node, d)
			}
		}
	}
}
