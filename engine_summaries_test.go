package factorgraph

import (
	"errors"
	"math"
	"testing"
)

// TestEngineSummariesCache asserts that the factorized sketches (M⁽ℓ⁾) are
// computed once per label generation and shared across sketch-based
// estimators: DCEr, DCE and MCE all run off the single cached pass, while
// label updates invalidate it.
func TestEngineSummariesCache(t *testing.T) {
	g, seeds, _ := engineFixture(t, 2000, 12000, 0.05)
	eng, err := NewEngine(g, seeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Summarizations != 1 {
		t.Fatalf("construction ran %d summarizations, want 1", st.Summarizations)
	}

	// Switching estimators reuses the cached sketches.
	for _, method := range []string{"dcer", "dce", "mce", "DCEr"} {
		if _, err := eng.EstimateWith(method, EstimateOptions{}); err != nil {
			t.Fatalf("EstimateWith(%s): %v", method, err)
		}
	}
	if st := eng.Stats(); st.Summarizations != 1 {
		t.Errorf("estimator switching ran %d summarizations, want 1", st.Summarizations)
	}

	// A shallower ℓmax is served by prefix truncation; a deeper one
	// recomputes (and becomes the new cache).
	if _, err := eng.EstimateWith("dce", EstimateOptions{LMax: 3}); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Summarizations != 1 {
		t.Errorf("lmax=3 after lmax=5 ran %d summarizations, want 1", st.Summarizations)
	}
	if _, err := eng.EstimateWith("dce", EstimateOptions{LMax: 7}); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Summarizations != 2 {
		t.Errorf("lmax=7 ran %d summarizations, want 2", st.Summarizations)
	}

	// Label updates invalidate the cache: the next estimate re-summarizes
	// at its own depth (dcer ⇒ 5)...
	if err := eng.UpdateLabels(map[int]int{0: 1}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.EstimateWith("dcer", EstimateOptions{}); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Summarizations != 3 {
		t.Errorf("post-update estimate ran %d summarizations, want 3", st.Summarizations)
	}
	// ...shallower estimators reuse its prefix, and H swaps (Reestimate
	// installs a new H over unchanged seeds) reuse it outright.
	if _, err := eng.EstimateWith("mce", EstimateOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Reestimate(); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Summarizations != 3 {
		t.Errorf("Reestimate after warm cache ran %d summarizations, want 3", st.Summarizations)
	}
}

// TestEngineMCEShallowSummaries: an MCE-configured engine summarizes at
// ℓmax=1 only; a later DCE-family request deepens the cache once and MCE
// then reuses its prefix.
func TestEngineMCEShallowSummaries(t *testing.T) {
	g, seeds, _ := engineFixture(t, 1000, 6000, 0.1)
	eng, err := NewEngine(g, seeds, 3, EngineOptions{Estimator: "mce"})
	if err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Summarizations != 1 {
		t.Fatalf("mce construction ran %d summarizations, want 1", st.Summarizations)
	}
	if _, err := eng.EstimateWith("dcer", EstimateOptions{}); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Summarizations != 2 {
		t.Errorf("dcer after mce ran %d summarizations, want 2 (deepen once)", st.Summarizations)
	}
	if _, err := eng.EstimateWith("mce", EstimateOptions{}); err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Summarizations != 2 {
		t.Errorf("mce after deepening ran %d summarizations, want 2 (prefix reuse)", st.Summarizations)
	}
}

// TestEngineCachedEstimateParity asserts the cached-summaries estimation
// path returns the same H as the one-shot facade estimators.
func TestEngineCachedEstimateParity(t *testing.T) {
	g, seeds, _ := engineFixture(t, 2000, 12000, 0.05)
	eng, err := NewEngine(g, seeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		method string
		direct func() (*Estimate, error)
	}{
		{"dcer", func() (*Estimate, error) { return EstimateDCEr(g, seeds, 3) }},
		{"dce", func() (*Estimate, error) { return EstimateDCE(g, seeds, 3) }},
		{"mce", func() (*Estimate, error) { return EstimateMCE(g, seeds, 3) }},
	} {
		cached, err := eng.EstimateWith(tc.method, EstimateOptions{})
		if err != nil {
			t.Fatalf("engine %s: %v", tc.method, err)
		}
		direct, err := tc.direct()
		if err != nil {
			t.Fatalf("direct %s: %v", tc.method, err)
		}
		if cached.Method != direct.Method {
			t.Errorf("%s: method %q vs %q", tc.method, cached.Method, direct.Method)
		}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				a, b := cached.H.At(i, j), direct.H.At(i, j)
				if math.Abs(a-b) > 1e-12 {
					t.Fatalf("%s: H[%d][%d] = %v (cached) vs %v (direct)", tc.method, i, j, a, b)
				}
			}
		}
	}
	// Error behavior parity with EstimateBy.
	if _, err := eng.EstimateWith("nope", EstimateOptions{}); !errors.Is(err, ErrUnknownEstimator) {
		t.Errorf("unknown estimator: err=%v", err)
	}
	if _, err := eng.EstimateWith("mce", EstimateOptions{Lambda: 2}); err == nil {
		t.Error("mce with options must be rejected")
	}
	if _, err := eng.EstimateWith("dcer", EstimateOptions{LMax: -1}); err == nil {
		t.Error("negative lmax must be rejected")
	}
}

func TestEngineClose(t *testing.T) {
	g, seeds, _ := engineFixture(t, 500, 3000, 0.1)
	eng, err := NewEngine(g, seeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fp := eng.MemoryFootprint(); fp <= 0 {
		t.Fatalf("memory footprint %d, want > 0", fp)
	}
	// Footprint grows with graph size.
	if EstimateEngineBytes(1000, 5000, 3, false) <= EstimateEngineBytes(100, 500, 3, false) {
		t.Error("footprint estimate not monotone in graph size")
	}

	eng.Close()
	eng.Close() // idempotent
	if _, err := eng.Classify(Query{Nodes: []int{0}}); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("Classify after Close: err=%v, want ErrEngineClosed", err)
	}
	if _, err := eng.Classify(Query{Nodes: []int{0}, ExtraSeeds: map[int]int{0: 1}}); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("overlay Classify after Close: err=%v, want ErrEngineClosed", err)
	}
	if err := eng.UpdateLabels(map[int]int{0: 1}, nil); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("UpdateLabels after Close: err=%v, want ErrEngineClosed", err)
	}
	if _, err := eng.Reestimate(); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("Reestimate after Close: err=%v, want ErrEngineClosed", err)
	}
	if err := eng.SetH(SkewedH(3, 2), "manual"); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("SetH after Close: err=%v, want ErrEngineClosed", err)
	}
}
