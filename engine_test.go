package factorgraph

import (
	"sync"
	"testing"
)

// engineFixture plants a heterophilous graph with sparse stratified seeds
// and returns (graph, seeds, truth).
func engineFixture(t *testing.T, n, m int, f float64) (*Graph, []int, []int) {
	t.Helper()
	h := SkewedH(3, 8)
	g, truth, err := Generate(GenerateConfig{N: n, M: m, K: 3, H: h, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := SampleSeeds(truth, 3, f, 7)
	if err != nil {
		t.Fatal(err)
	}
	return g, seeds, truth
}

// TestEnginePreprocessesOnce is the serving acceptance test: 1000
// sequential classification queries against a cached 100k-edge planted
// graph must run estimation exactly once (at engine construction) and
// propagation exactly once (first query), never re-running CSR
// construction or the sketch pass per query.
func TestEnginePreprocessesOnce(t *testing.T) {
	g, seeds, _ := engineFixture(t, 20000, 100000, 0.05)
	eng, err := NewEngine(g, seeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Estimations != 1 {
		t.Fatalf("after construction: %d estimations, want 1", st.Estimations)
	}
	for i := 0; i < 1000; i++ {
		node := (i * 37) % g.N
		res, err := eng.Classify(Query{Nodes: []int{node}, TopK: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || res[0].Node != node {
			t.Fatalf("query %d: bad result %+v", i, res)
		}
		if len(res[0].Top) != 2 {
			t.Fatalf("query %d: want top-2 scores, got %d", i, len(res[0].Top))
		}
		if res[0].Top[0].Score < res[0].Top[1].Score {
			t.Fatalf("query %d: top-k not sorted: %+v", i, res[0].Top)
		}
		if res[0].Top[0].Class != res[0].Label {
			t.Fatalf("query %d: top-1 class %d != label %d", i, res[0].Top[0].Class, res[0].Label)
		}
	}
	st := eng.Stats()
	if st.Estimations != 1 {
		t.Errorf("after 1000 queries: %d estimations, want 1", st.Estimations)
	}
	if st.Propagations != 1 {
		t.Errorf("after 1000 queries: %d propagations, want 1", st.Propagations)
	}
	if st.Queries != 1000 {
		t.Errorf("query counter = %d, want 1000", st.Queries)
	}
}

// TestEngineParityWithOneShot asserts the engine classifies identically to
// the one-shot facade pipeline (same estimator, same options) and beats the
// chance baseline on a planted graph.
func TestEngineParityWithOneShot(t *testing.T) {
	g, seeds, truth := engineFixture(t, 3000, 36000, 0.05)

	est, err := EstimateDCEr(g, seeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := Propagate(g, seeds, 3, est.H)
	if err != nil {
		t.Fatal(err)
	}

	eng, err := NewEngine(g, seeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Classify(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != g.N {
		t.Fatalf("full classify returned %d results, want %d", len(res), g.N)
	}
	served := make([]int, g.N)
	for _, r := range res {
		served[r.Node] = r.Label
	}
	diff := 0
	for i := range served {
		if served[i] != oneShot[i] {
			diff++
		}
	}
	if diff != 0 {
		t.Errorf("engine and one-shot pipeline disagree on %d/%d nodes", diff, g.N)
	}
	acc := Accuracy(served, truth, seeds)
	if acc < 0.5 {
		t.Errorf("engine accuracy %.3f not above chance 1/3", acc)
	}
}

// TestEngineIncrementalLabels checks that UpdateLabels changes predictions
// without re-estimating H, and that removing the update restores the
// original snapshot behavior.
func TestEngineIncrementalLabels(t *testing.T) {
	g, seeds, truth := engineFixture(t, 3000, 36000, 0.05)
	eng, err := NewEngine(g, seeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Find an unlabeled node and pin it to a class.
	node := -1
	for i, c := range seeds {
		if c == Unlabeled {
			node = i
			break
		}
	}
	if node < 0 {
		t.Fatal("fixture has no unlabeled node")
	}
	want := (truth[node] + 1) % 3 // deliberately "wrong" class: must stick
	if err := eng.UpdateLabels(map[int]int{node: want}, nil); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Classify(Query{Nodes: []int{node}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Label != want {
		t.Errorf("after labeling node %d as %d, classify returned %d", node, want, res[0].Label)
	}
	st := eng.Stats()
	if st.Estimations != 1 {
		t.Errorf("incremental update triggered %d estimations, want 1", st.Estimations)
	}
	if st.LabelUpdates != 1 {
		t.Errorf("label update counter = %d, want 1", st.LabelUpdates)
	}
	// Each update invalidates the snapshot: expect exactly one more
	// propagation for the post-update query.
	if st.Propagations != 1 {
		t.Errorf("propagations = %d, want 1 (snapshot rebuild)", st.Propagations)
	}

	// The incremental labeled count must track set/remove transitions.
	base := eng.LabeledCount()
	if err := eng.UpdateLabels(map[int]int{node: (want + 1) % 3}, nil); err != nil {
		t.Fatal(err) // relabel an already-labeled node: count unchanged
	}
	if got := eng.LabeledCount(); got != base {
		t.Errorf("relabel changed count %d → %d", base, got)
	}

	// Removing the seed must invalidate again and classify from scratch.
	if err := eng.UpdateLabels(nil, []int{node}); err != nil {
		t.Fatal(err)
	}
	if got := eng.Seeds()[node]; got != Unlabeled {
		t.Errorf("seed %d not removed: %d", node, got)
	}
	if got := eng.LabeledCount(); got != base-1 {
		t.Errorf("remove: labeled count %d, want %d", got, base-1)
	}

	// Validation failures must leave state untouched.
	if err := eng.UpdateLabels(map[int]int{-1: 0}, nil); err == nil {
		t.Error("negative node accepted")
	}
	if err := eng.UpdateLabels(map[int]int{node: 9}, nil); err == nil {
		t.Error("out-of-range class accepted")
	}
	if got := eng.Seeds()[node]; got != Unlabeled {
		t.Errorf("failed update mutated seed %d to %d", node, got)
	}
}

// TestEngineExtraSeeds checks what-if queries: overlaid seeds affect only
// the query, not the engine state.
func TestEngineExtraSeeds(t *testing.T) {
	g, seeds, _ := engineFixture(t, 3000, 36000, 0.05)
	eng, err := NewEngine(g, seeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	node := -1
	for i, c := range seeds {
		if c == Unlabeled {
			node = i
			break
		}
	}
	base, err := eng.Classify(Query{Nodes: []int{node}})
	if err != nil {
		t.Fatal(err)
	}
	target := (base[0].Label + 1) % 3
	whatIf, err := eng.Classify(Query{Nodes: []int{node}, ExtraSeeds: map[int]int{node: target}})
	if err != nil {
		t.Fatal(err)
	}
	if whatIf[0].Label != target {
		t.Errorf("what-if seed %d→%d, classify returned %d", node, target, whatIf[0].Label)
	}
	// Engine state untouched: same base answer, seed still unlabeled.
	again, err := eng.Classify(Query{Nodes: []int{node}})
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Label != base[0].Label {
		t.Errorf("what-if query mutated engine state: %d → %d", base[0].Label, again[0].Label)
	}
	if eng.Seeds()[node] != Unlabeled {
		t.Error("what-if query persisted its seed")
	}

	// Invalid overlays are rejected.
	if _, err := eng.Classify(Query{ExtraSeeds: map[int]int{g.N: 0}}); err == nil {
		t.Error("out-of-range extra seed accepted")
	}
	if _, err := eng.Classify(Query{ExtraSeeds: map[int]int{0: 7}}); err == nil {
		t.Error("out-of-range extra class accepted")
	}
}

// TestEngineBatch runs a mixed batch of snapshot and what-if queries.
func TestEngineBatch(t *testing.T) {
	g, seeds, _ := engineFixture(t, 3000, 36000, 0.05)
	eng, err := NewEngine(g, seeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]Query, 32)
	for i := range qs {
		qs[i] = Query{Nodes: []int{i % g.N}, TopK: 1}
		if i%4 == 0 {
			qs[i].ExtraSeeds = map[int]int{(i * 13) % g.N: i % 3}
		}
	}
	res, err := eng.ClassifyBatch(qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(qs) {
		t.Fatalf("batch returned %d results, want %d", len(res), len(qs))
	}
	for i, r := range res {
		if len(r) != 1 || r[0].Node != i%g.N {
			t.Errorf("batch entry %d malformed: %+v", i, r)
		}
	}
}

// TestEngineConcurrentQueriesAndUpdates is the race-detector stress test:
// parallel classification queries, what-if overlays, incremental label
// updates and re-estimations hammering one engine. Run with -race.
func TestEngineConcurrentQueriesAndUpdates(t *testing.T) {
	g, seeds, _ := engineFixture(t, 1000, 8000, 0.1)
	eng, err := NewEngine(g, seeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	const (
		readers  = 8
		writers  = 2
		perGoro  = 25
		whatIfEv = 5
	)
	var wg sync.WaitGroup
	errc := make(chan error, readers+writers+1)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				q := Query{Nodes: []int{(r*perGoro + i) % g.N}, TopK: 3}
				if i%whatIfEv == 0 {
					q.ExtraSeeds = map[int]int{(r + i) % g.N: i % 3}
				}
				if _, err := eng.Classify(q); err != nil {
					errc <- err
					return
				}
			}
		}(r)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perGoro; i++ {
				node := (w*perGoro + i) % g.N
				if err := eng.UpdateLabels(map[int]int{node: i % 3}, nil); err != nil {
					errc <- err
					return
				}
				if err := eng.UpdateLabels(nil, []int{node}); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, err := eng.Reestimate(); err != nil {
				errc <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	st := eng.Stats()
	if st.Queries != readers*perGoro {
		t.Errorf("queries = %d, want %d", st.Queries, readers*perGoro)
	}
	if st.LabelUpdates != 2*writers*perGoro {
		t.Errorf("label updates = %d, want %d", st.LabelUpdates, 2*writers*perGoro)
	}
}

// TestEngineValidation covers constructor error paths.
func TestEngineValidation(t *testing.T) {
	g, seeds, _ := engineFixture(t, 100, 500, 0.5)
	if _, err := NewEngine(g, seeds, 1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := NewEngine(g, seeds[:10], 3); err == nil {
		t.Error("short seed vector accepted")
	}
	if _, err := NewEngine(g, seeds, 3, EngineOptions{Estimator: "nope"}); err == nil {
		t.Error("unknown estimator accepted")
	}
	if _, err := NewEngine(g, seeds, 3, EngineOptions{S: -1}); err == nil {
		t.Error("negative convergence parameter accepted")
	}
	if _, err := NewEngine(g, seeds, 3, EngineOptions{S: 2}); err == nil {
		t.Error("non-contracting s >= 1 accepted")
	}
	if _, err := NewEngine(g, seeds, 3, EngineOptions{Iterations: -5}); err == nil {
		t.Error("negative iteration count accepted")
	}
	if _, err := NewEngine(g, seeds, 3, EngineOptions{Estimate: EstimateOptions{LMax: -1}}); err == nil {
		t.Error("negative lmax accepted (would panic in Summarize)")
	}
	if _, err := EstimateBy("mce", g, seeds, 3, EstimateOptions{Lambda: 2}); err == nil {
		t.Error("options silently ignored for mce")
	}
	if _, err := EstimateBy("DCEr", g, seeds, 3, EstimateOptions{}); err != nil {
		t.Errorf("mixed-case estimator name rejected: %v", err)
	}
	if _, err := NewEngine(g, seeds, 3, EngineOptions{}, EngineOptions{}); err == nil {
		t.Error("two option structs accepted")
	}
}
