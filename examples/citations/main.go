// Citations: topic classification on a Cora-like citation graph — the
// homophilous case.
//
// The paper notes (§2.5) that with network structure alone (no paper text,
// only 21 estimated parameters for k=7) it reaches ~66% accuracy on Cora at
// ~5% labeled nodes, versus 81.5% for a GCN that additionally reads the
// documents' words. This example runs the replica: estimate the 7-class
// compatibility matrix, check it discovers homophily (dominant diagonal),
// and classify the remaining papers. It also shows that here — unlike the
// heterophilous examples — a homophily baseline is competitive, which is
// exactly why estimation (rather than assuming either structure) is the
// safe default.
//
// Run: go run ./examples/citations
package main

import (
	"fmt"
	"log"

	"factorgraph"
	"factorgraph/internal/core"
	"factorgraph/internal/datasets"
	"factorgraph/internal/graph"
	"factorgraph/internal/metrics"
	"factorgraph/internal/propagation"
)

func main() {
	ds, err := datasets.ByName("Cora")
	if err != nil {
		log.Fatal(err)
	}
	res, err := ds.Replica(1, 3) // full published size: n=2708, m=10858
	if err != nil {
		log.Fatal(err)
	}
	g := graph.FromCSR(res.Graph.Adj)
	fmt.Printf("Cora replica: n=%d m=%d k=%d (7 ML topics)\n\n", g.N, g.M, ds.K)

	seeds, err := factorgraph.SampleSeeds(res.Labels, ds.K, 0.052, 3)
	if err != nil {
		log.Fatal(err)
	}

	est, err := factorgraph.EstimateDCEr(g, seeds, ds.K)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated %d free parameters in %s\n", core.NumFree(ds.K), est.Runtime)

	// Did estimation discover the homophily? The diagonal (same-topic
	// citation rate) should dominate on average.
	var diagSum, offSum float64
	for i := 0; i < ds.K; i++ {
		for j := 0; j < ds.K; j++ {
			if i == j {
				diagSum += est.H.At(i, j)
			} else {
				offSum += est.H.At(i, j)
			}
		}
	}
	diagAvg := diagSum / float64(ds.K)
	offAvg := offSum / float64(ds.K*(ds.K-1))
	fmt.Printf("homophily discovered: avg diagonal %.2f vs avg off-diagonal %.2f: %v\n\n",
		diagAvg, offAvg, diagAvg > offAvg)

	pred, err := factorgraph.Propagate(g, seeds, ds.K, est.H)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topic accuracy, 5.2%% labels, structure only (DCEr): %.3f\n",
		factorgraph.MacroAccuracy(pred, res.Labels, seeds, ds.K))

	gsPred, err := factorgraph.Propagate(g, seeds, ds.K, ds.H)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topic accuracy with published gold standard:         %.3f\n",
		factorgraph.MacroAccuracy(gsPred, res.Labels, seeds, ds.K))

	// On a homophilous graph the classic baselines work too — the point of
	// estimation is not having to know which regime you are in.
	mrw, err := propagation.MultiRankWalk(g.Adj, seeds, ds.K, propagation.MRWOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topic accuracy with MultiRankWalk (assumes homophily): %.3f\n",
		metrics.MacroAccuracy(mrw, res.Labels, seeds, ds.K))
}
