// Email: the paper's motivating Example 1.1.
//
// A corporate email network has three classes of users: marketing (class
// 0), engineers (class 1) and C-level executives (class 2). Marketing and
// engineering email each other constantly (heterophily); executives mostly
// email amongst themselves (homophily). Given the labels of a handful of
// employees, who does everyone else work for?
//
// This mixed homophily/heterophily pattern breaks random-walk methods; the
// example shows compatibility estimation recovering the org structure from
// 30 known employees out of 15,000, and compares against a harmonic
// homophily baseline.
//
// Run: go run ./examples/email
package main

import (
	"fmt"
	"log"

	"factorgraph"
	"factorgraph/internal/metrics"
	"factorgraph/internal/propagation"
)

func main() {
	// Communication compatibilities: marketing↔engineering heavy,
	// executives cliquish (Figure 1b's pattern).
	orgH := factorgraph.NewMatrix([][]float64{
		{0.15, 0.70, 0.15},
		{0.70, 0.15, 0.15},
		{0.15, 0.15, 0.70},
	})
	classNames := []string{"marketing", "engineering", "executives"}

	// 15k employees: 40% marketing, 50% engineers, 10% executives; email
	// volume follows a heavy-tailed degree distribution.
	g, truth, err := factorgraph.Generate(factorgraph.GenerateConfig{
		N: 15000, M: 180000,
		Alpha:    []float64{0.4, 0.5, 0.1},
		H:        orgH,
		PowerLaw: true,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// HR gave us ~30 known roles (0.2%).
	seeds, err := factorgraph.SampleSeeds(truth, 3, 0.002, 7)
	if err != nil {
		log.Fatal(err)
	}
	known := 0
	for _, s := range seeds {
		if s != factorgraph.Unlabeled {
			known++
		}
	}
	fmt.Printf("known roles: %d of %d employees\n\n", known, g.N)

	// Estimate who-emails-whom compatibilities and classify everyone.
	pred, est, err := factorgraph.Classify(g, seeds, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated communication compatibilities (%s, %s):\n%s\n",
		est.Method, est.Runtime, est.H)
	acc := factorgraph.MacroAccuracy(pred, truth, seeds, 3)
	fmt.Printf("role prediction accuracy (DCEr + LinBP): %.3f\n", acc)

	// Homophily baseline: harmonic functions assume colleagues email their
	// own team — exactly wrong for marketing/engineering.
	hom, err := propagation.Harmonic(g.Adj, seeds, 3, propagation.HarmonicOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("role prediction accuracy (homophily):    %.3f\n",
		metrics.MacroAccuracy(hom, truth, seeds, 3))

	// Per-team breakdown.
	fmt.Println("\nper-team accuracy:")
	cm := metrics.ConfusionMatrix(pred, truth, seeds, 3)
	for c, name := range classNames {
		var total, correct float64
		for j := 0; j < 3; j++ {
			total += cm.At(c, j)
		}
		correct = cm.At(c, c)
		if total > 0 {
			fmt.Printf("  %-12s %.3f (%d employees)\n", name, correct/total, int(total))
		}
	}
}
