// Fraud: online auction fraud detection (the NetProbe scenario the paper
// cites in its introduction [46]).
//
// Three classes of auction accounts: fraudsters (0), accomplices (1) and
// honest users (2). Fraudsters avoid linking to each other — they transact
// with accomplices who look legitimate (heterophily between 0 and 1), while
// honest users mostly trade with other honest users and accomplices. The
// mixed compatibility structure means neither a pure homophily nor a pure
// heterophily assumption works; it has to be learned.
//
// We label 0.5% of accounts (e.g. confirmed fraud cases and verified
// users), estimate the compatibilities, and rank everyone.
//
// Run: go run ./examples/fraud
package main

import (
	"fmt"
	"log"
	"sort"

	"factorgraph"
)

func main() {
	// Fraudsters (5%), accomplices (10%), honest (85%). Fraudsters link to
	// accomplices heavily and to honest users when executing a scam;
	// accomplices trade with everyone to build reputation.
	fraudH := factorgraph.NewMatrix([][]float64{
		{0.10, 0.65, 0.25},
		{0.65, 0.10, 0.25},
		{0.25, 0.25, 0.50},
	})
	g, truth, err := factorgraph.Generate(factorgraph.GenerateConfig{
		N: 20000, M: 160000,
		Alpha:    []float64{0.05, 0.10, 0.85},
		H:        fraudH,
		PowerLaw: true, // a few power sellers dominate transaction volume
		Seed:     2026,
	})
	if err != nil {
		log.Fatal(err)
	}

	seeds, err := factorgraph.SampleSeeds(truth, 3, 0.005, 2026)
	if err != nil {
		log.Fatal(err)
	}

	est, err := factorgraph.EstimateDCEr(g, seeds, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned transaction compatibilities in %s:\n%s\n", est.Runtime, est.H)

	// Rank accounts by fraud belief instead of hard-labeling.
	beliefs, err := factorgraph.PropagateBeliefs(g, seeds, 3, est.H)
	if err != nil {
		log.Fatal(err)
	}
	type scored struct {
		node  int
		score float64
	}
	var ranking []scored
	for i := 0; i < g.N; i++ {
		if seeds[i] != factorgraph.Unlabeled {
			continue // already known
		}
		ranking = append(ranking, scored{i, beliefs.At(i, 0)})
	}
	sort.Slice(ranking, func(a, b int) bool { return ranking[a].score > ranking[b].score })

	// Precision@K on the unknown accounts: how many of the top suspects
	// are actual fraudsters?
	for _, k := range []int{100, 500, 1000} {
		hits := 0
		for _, s := range ranking[:k] {
			if truth[s.node] == 0 {
				hits++
			}
		}
		fmt.Printf("precision@%-5d %.3f (base rate 0.05)\n", k, float64(hits)/float64(k))
	}

	pred, err := factorgraph.Propagate(g, seeds, 3, est.H)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmacro-accuracy over all unknown accounts: %.3f\n",
		factorgraph.MacroAccuracy(pred, truth, seeds, 3))
}
