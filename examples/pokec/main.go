// Pokec: gender prediction on a social-network replica (Figure 7g's
// dataset, the paper's largest graph).
//
// The Pokec social network exhibits mild heterophily — members interact
// slightly more with the opposite gender (published compatibilities
// [[0.44, 0.56], [0.56, 0.44]]). With only ~0.01% of genders disclosed, a
// two-value compatibility matrix must be estimated from the graph alone.
// Mild skew is the hard case: the signal per edge is weak, which is
// exactly where distance-ℓ statistics and restarts matter.
//
// The replica preserves the published n/m ratio (average degree 37.5) and
// the published H at a reduced size; pass -scale to change it.
//
// Run: go run ./examples/pokec [-scale 40]
package main

import (
	"flag"
	"fmt"
	"log"

	"factorgraph"
	"factorgraph/internal/datasets"
	"factorgraph/internal/graph"
	"factorgraph/internal/metrics"
)

func main() {
	scale := flag.Int("scale", 40, "shrink factor for the 1.6M-node graph")
	// At the default 1/40 replica scale, 0.2% disclosed ≈ 80 seeds — the
	// same absolute signal the paper's full-size graph has near 0.005%.
	f := flag.Float64("f", 0.002, "fraction of disclosed genders")
	flag.Parse()

	ds, err := datasets.ByName("Pokec-Gender")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replicating %s: published n=%d m=%d k=%d, running at scale 1/%d\n",
		ds.Name, ds.N, ds.M, ds.K, *scale)
	res, err := ds.Replica(*scale, 11)
	if err != nil {
		log.Fatal(err)
	}
	g := graph.FromCSR(res.Graph.Adj)
	fmt.Printf("replica: n=%d m=%d avg-degree=%.1f\n\n", g.N, g.M, g.AvgDegree())

	seeds, err := factorgraph.SampleSeeds(res.Labels, ds.K, *f, 11)
	if err != nil {
		log.Fatal(err)
	}

	est, err := factorgraph.EstimateDCEr(g, seeds, ds.K)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published gender compatibilities:\n%s\n", ds.H)
	fmt.Printf("estimated from %.3g%% disclosed genders (in %s):\n%s\n",
		100**f, est.Runtime, est.H)
	fmt.Printf("estimation L2 error: %.3f\n\n", metrics.L2(est.H, ds.H))

	pred, err := factorgraph.Propagate(g, seeds, ds.K, est.H)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gender prediction accuracy (DCEr):          %.3f\n",
		factorgraph.MacroAccuracy(pred, res.Labels, seeds, ds.K))

	gsPred, err := factorgraph.Propagate(g, seeds, ds.K, ds.H)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gender prediction accuracy (gold standard): %.3f\n",
		factorgraph.MacroAccuracy(gsPred, res.Labels, seeds, ds.K))
}
