// Quickstart: automatic node classification without knowing how classes
// connect.
//
// We plant a heterophilous 3-class graph (classes 1 and 2 prefer each
// other; class 3 keeps to itself), reveal the labels of just 1% of the
// nodes, and let the library (1) estimate the class-compatibility matrix H
// with DCEr and (2) propagate the seed labels with linearized belief
// propagation. Standard homophily-based label propagation would fail here;
// with the estimated H, accuracy matches the gold standard.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"factorgraph"
)

func main() {
	// The unobserved truth: how the three classes connect (Figure 1b).
	planted := factorgraph.NewMatrix([][]float64{
		{0.2, 0.6, 0.2},
		{0.6, 0.2, 0.2},
		{0.2, 0.2, 0.6},
	})

	// A synthetic world that follows these compatibilities.
	g, truth, err := factorgraph.Generate(factorgraph.GenerateConfig{
		N: 10000, M: 125000, K: 3, H: planted, PowerLaw: true, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// We only observe 1% of the labels.
	seeds, err := factorgraph.SampleSeeds(truth, 3, 0.01, 42)
	if err != nil {
		log.Fatal(err)
	}

	// End-to-end: estimate H, then label every node.
	pred, est, err := factorgraph.Classify(g, seeds, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("estimated H with %s in %s:\n%s\n", est.Method, est.Runtime, est.H)
	fmt.Printf("planted H:\n%s\n", planted)
	fmt.Printf("accuracy on the 99%% unlabeled nodes: %.3f\n",
		factorgraph.MacroAccuracy(pred, truth, seeds, 3))

	// Compare against knowing the gold standard compatibilities.
	gs, err := factorgraph.GoldStandard(g, truth, 3)
	if err != nil {
		log.Fatal(err)
	}
	gsPred, err := factorgraph.Propagate(g, seeds, 3, gs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gold-standard accuracy:                    %.3f\n",
		factorgraph.MacroAccuracy(gsPred, truth, seeds, 3))
}
