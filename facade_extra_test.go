package factorgraph

import (
	"math"
	"testing"
)

func TestSketchesShapeAndStochasticity(t *testing.T) {
	g, _, seeds, _ := endToEndFixture(t, 0.2)
	sketches, err := Sketches(g, seeds, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sketches) != 4 {
		t.Fatalf("%d sketches, want 4", len(sketches))
	}
	for l, p := range sketches {
		if p.Rows != 3 || p.Cols != 3 {
			t.Fatalf("sketch %d is %d×%d", l, p.Rows, p.Cols)
		}
		// Variant-1 normalization: rows sum to 1 (or 0 for unobserved
		// classes, which should not happen at f=0.2 on this graph).
		for i := 0; i < 3; i++ {
			s := 0.0
			for j := 0; j < 3; j++ {
				s += p.At(i, j)
			}
			if math.Abs(s-1) > 1e-9 {
				t.Errorf("sketch %d row %d sums to %v", l, i, s)
			}
		}
	}
}

func TestSketchesApproachUniformWithLength(t *testing.T) {
	// Hℓ → uniform as ℓ grows (doubly stochastic mixing); the sketches
	// must inherit this.
	g, _, seeds, _ := endToEndFixture(t, 0.5)
	sketches, err := Sketches(g, seeds, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	spread := func(m *Matrix) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range m.Data {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return hi - lo
	}
	if spread(sketches[4]) > spread(sketches[0]) {
		t.Errorf("sketch spread grew with path length: %v -> %v",
			spread(sketches[0]), spread(sketches[4]))
	}
}

func TestEstimateDCErAutoFacade(t *testing.T) {
	g, truth, seeds, planted := endToEndFixture(t, 0.05)
	est, lambda, err := EstimateDCErAuto(g, seeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if est.Method != "DCEr-auto" || lambda <= 0 {
		t.Errorf("metadata: %+v lambda=%v", est, lambda)
	}
	var l2 float64
	for i := range planted.Data {
		d := est.H.Data[i] - planted.Data[i]
		l2 += d * d
	}
	if math.Sqrt(l2) > 0.2 {
		t.Errorf("auto estimate L2 %v", math.Sqrt(l2))
	}
	pred, err := Propagate(g, seeds, 3, est.H)
	if err != nil {
		t.Fatal(err)
	}
	if acc := MacroAccuracy(pred, truth, seeds, 3); acc < 0.5 {
		t.Errorf("auto end-to-end accuracy %v", acc)
	}
}

func TestWeightedGraphPropagation(t *testing.T) {
	// A node tied between two opposite seeds follows the heavier edge.
	// Graph: 1 —(w=5)— 0 —(w=1)— 2, heterophilous H, seeds at 1 and 2.
	g, err := NewWeightedGraph(3, [][2]int32{{0, 1}, {0, 2}}, []float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	h := NewMatrix([][]float64{{0.1, 0.9}, {0.9, 0.1}})
	seeds := []int{Unlabeled, 0, 0}
	beliefs, err := PropagateBeliefs(g, seeds, 2, h)
	if err != nil {
		t.Fatal(err)
	}
	// Both neighbors are class 0 under heterophily → node 0 should be
	// class 1, with the heavy edge dominating the magnitude.
	if beliefs.At(0, 1) <= beliefs.At(0, 0) {
		t.Errorf("weighted heterophily propagation wrong: %v", beliefs.Row(0))
	}
}
