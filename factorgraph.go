// Package factorgraph is the public API of this reproduction of
// "Factorized Graph Representations for Semi-Supervised Learning from
// Sparse Data" (Krishna Kumar P., Langton, Gatterbauer; SIGMOD 2020).
//
// The package solves automatic node classification (Problem 1.2): given an
// undirected graph, a handful of labeled seed nodes and NO knowledge of how
// classes connect, it (1) estimates the k×k class-compatibility matrix H
// from factorized graph representations — small sketches built from
// non-backtracking path statistics — and (2) propagates the seed labels
// with linearized belief propagation modulated by the estimated H.
//
// Quick start:
//
//	g, _ := factorgraph.NewGraph(n, edges)          // build the graph
//	est, _ := factorgraph.EstimateDCEr(g, seeds, k) // learn H from sparse labels
//	pred, _ := factorgraph.Propagate(g, seeds, k, est.H)
//
// For repeated queries against one graph, build an Engine instead: it
// performs the expensive preprocessing (CSR construction, spectral radius,
// compatibility estimate) once and answers classification queries
// concurrently, with incremental label updates and what-if overlays; see
// engine.go and cmd/serve for the HTTP layer.
//
// The heavy lifting lives in internal packages (sparse CSR kernel,
// generator, estimators, experiment harness); this facade re-exports the
// workflow a downstream user needs.
package factorgraph

import (
	"fmt"
	"time"

	"factorgraph/internal/core"
	"factorgraph/internal/dense"
	"factorgraph/internal/gen"
	"factorgraph/internal/graph"
	"factorgraph/internal/labels"
	"factorgraph/internal/metrics"
	"factorgraph/internal/propagation"
)

// Unlabeled marks an unknown node class in a label slice.
const Unlabeled = labels.Unlabeled

// Graph is an undirected graph; see NewGraph.
type Graph = graph.Graph

// Matrix is a dense matrix; compatibility matrices are k×k Matrix values.
type Matrix = dense.Matrix

// NewGraph builds an undirected, unweighted graph on n nodes from an edge
// list (node ids in [0, n)).
func NewGraph(n int, edges [][2]int32) (*Graph, error) {
	return graph.New(n, edges, nil)
}

// NewWeightedGraph builds an undirected weighted graph.
func NewWeightedGraph(n int, edges [][2]int32, weights []float64) (*Graph, error) {
	return graph.New(n, edges, weights)
}

// NewMatrix builds a matrix from rows; used to specify known compatibility
// matrices in examples and tests.
func NewMatrix(rows [][]float64) *Matrix { return dense.FromRows(rows) }

// Estimate is the result of a compatibility estimation.
type Estimate struct {
	// H is the estimated k×k symmetric doubly-stochastic compatibility
	// matrix.
	H *Matrix
	// Runtime is the wall-clock estimation time.
	Runtime time.Duration
	// Method records which estimator produced the result.
	Method string
}

// EstimateOptions tunes the DCE/DCEr estimators; the zero value reproduces
// the paper's recommended settings (ℓmax=5, λ=10, normalization variant 1,
// non-backtracking paths).
type EstimateOptions struct {
	// LMax is the maximum path length ℓmax (default 5).
	LMax int
	// Lambda is the distance-weight ratio λ (default 10).
	Lambda float64
	// Restarts overrides the number of restarts (default 1 for DCE,
	// 10 for DCEr).
	Restarts int
	// Seed drives restart sampling (DCEr only).
	Seed uint64
}

func summarize(g *Graph, seeds []int, k, lmax int) (*core.Summaries, error) {
	if lmax == 0 {
		lmax = 5
	}
	return core.Summarize(g.Adj, seeds, k, core.SummaryOptions{
		LMax: lmax, NonBacktracking: true, Variant: core.Variant1,
	})
}

// EstimateDCEr learns H with distant compatibility estimation with
// restarts — the paper's recommended method: robust down to ~1 labeled
// node in 10,000.
func EstimateDCEr(g *Graph, seeds []int, k int, opts ...EstimateOptions) (*Estimate, error) {
	return estimateDCE("DCEr", g, seeds, k, 10, opts...)
}

// EstimateDCE learns H with single-start distant compatibility estimation
// (sufficient when labels are not extremely sparse).
func EstimateDCE(g *Graph, seeds []int, k int, opts ...EstimateOptions) (*Estimate, error) {
	return estimateDCE("DCE", g, seeds, k, 1, opts...)
}

func estimateDCE(method string, g *Graph, seeds []int, k, defRestarts int, opts ...EstimateOptions) (*Estimate, error) {
	var o EstimateOptions
	if len(opts) > 1 {
		return nil, fmt.Errorf("factorgraph: at most one EstimateOptions")
	}
	if len(opts) == 1 {
		o = opts[0]
	}
	start := time.Now()
	s, err := summarize(g, seeds, k, o.LMax)
	if err != nil {
		return nil, err
	}
	return finishDCE(method, s, o, defRestarts, start)
}

// finishDCE turns precomputed summaries into a DCE/DCEr estimate. It is the
// single source of the DCE option defaults (λ=10, restarts per method) —
// both the one-shot estimators above and the Engine's cached-summaries path
// finish through here, so they cannot drift apart.
func finishDCE(method string, s *core.Summaries, o EstimateOptions, defRestarts int, start time.Time) (*Estimate, error) {
	restarts := o.Restarts
	if restarts == 0 {
		restarts = defRestarts
	}
	lambda := o.Lambda
	if lambda == 0 {
		lambda = 10
	}
	h, err := core.EstimateDCE(s, core.DCEOptions{Lambda: lambda, Restarts: restarts, Seed: o.Seed})
	if err != nil {
		return nil, err
	}
	return &Estimate{H: h, Runtime: time.Since(start), Method: method}, nil
}

// dceDefRestarts maps a (lower-cased) DCE-family method name to its
// default restart count and canonical name.
func dceDefRestarts(method string) (restarts int, name string) {
	if method == "dce" {
		return 1, "DCE"
	}
	return 10, "DCEr"
}

// EstimateDCErAuto is DCEr with automatic selection of the λ
// hyperparameter by sketch-level cross-validation over the seed labels
// (the paper's stated future work). Returns the estimate and the λ chosen.
func EstimateDCErAuto(g *Graph, seeds []int, k int) (*Estimate, float64, error) {
	start := time.Now()
	h, lambda, err := core.EstimateDCErAuto(g.Adj, seeds, k, core.AutoLambdaOptions{})
	if err != nil {
		return nil, 0, err
	}
	return &Estimate{H: h, Runtime: time.Since(start), Method: "DCEr-auto"}, lambda, nil
}

// EstimateMCE learns H from direct neighbor statistics only (myopic
// compatibility estimation) — fastest, but needs enough labeled neighbor
// pairs.
func EstimateMCE(g *Graph, seeds []int, k int) (*Estimate, error) {
	start := time.Now()
	s, err := summarize(g, seeds, k, 1)
	if err != nil {
		return nil, err
	}
	return finishMCE(s, start)
}

// finishMCE is the shared MCE tail; see finishDCE.
func finishMCE(s *core.Summaries, start time.Time) (*Estimate, error) {
	h, err := core.EstimateMCE(s, core.MCEOptions{})
	if err != nil {
		return nil, err
	}
	return &Estimate{H: h, Runtime: time.Since(start), Method: "MCE"}, nil
}

// EstimateLCE learns H by minimizing the LinBP energy with the seed labels
// substituted for the unknown beliefs (linear compatibility estimation).
func EstimateLCE(g *Graph, seeds []int, k int) (*Estimate, error) {
	start := time.Now()
	h, err := core.EstimateLCE(g.Adj, seeds, k, core.LCEOptions{})
	if err != nil {
		return nil, err
	}
	return &Estimate{H: h, Runtime: time.Since(start), Method: "LCE"}, nil
}

// EstimateHoldout learns H with the textbook seed/holdout baseline
// (accuracy maximization with inference as a subroutine). Orders of
// magnitude slower than the sketch-based estimators; provided as the
// paper's baseline.
func EstimateHoldout(g *Graph, seeds []int, k int, splits int) (*Estimate, error) {
	start := time.Now()
	h, err := core.EstimateHoldout(g.Adj, seeds, k, core.HoldoutOptions{Splits: splits})
	if err != nil {
		return nil, err
	}
	return &Estimate{H: h, Runtime: time.Since(start), Method: "Holdout"}, nil
}

// Sketches returns the factorized graph representations themselves: the
// ℓmax observed statistics matrices P̂⁽ℓ⁾ over non-backtracking paths
// (normalization variant 1). These k×k sketches are what all estimation
// runs on; exposing them lets downstream users build their own objectives.
func Sketches(g *Graph, seeds []int, k, lmax int) ([]*Matrix, error) {
	s, err := summarize(g, seeds, k, lmax)
	if err != nil {
		return nil, err
	}
	return s.P, nil
}

// GoldStandard measures the compatibility matrix from a fully labeled
// graph (the relative label frequencies between neighbors).
func GoldStandard(g *Graph, truth []int, k int) (*Matrix, error) {
	return core.GoldStandard(g.Adj, truth, k)
}

// Propagate labels every node with linearized belief propagation under the
// compatibility matrix h (paper defaults: s=0.5, 10 iterations). seeds uses
// Unlabeled for unknown nodes; the return value has a class for every node.
func Propagate(g *Graph, seeds []int, k int, h *Matrix) ([]int, error) {
	x, err := labels.Matrix(seeds, k)
	if err != nil {
		return nil, err
	}
	return propagation.LinBPLabels(g.Adj, x, h, propagation.DefaultLinBPOptions())
}

// PropagateBeliefs is Propagate but returns the full n×k belief matrix.
func PropagateBeliefs(g *Graph, seeds []int, k int, h *Matrix) (*Matrix, error) {
	x, err := labels.Matrix(seeds, k)
	if err != nil {
		return nil, err
	}
	return propagation.LinBP(g.Adj, x, h, propagation.DefaultLinBPOptions())
}

// Classify is the end-to-end pipeline of the paper: estimate H with DCEr,
// then propagate — automatic node classification with no prior knowledge
// of class compatibilities.
func Classify(g *Graph, seeds []int, k int) ([]int, *Estimate, error) {
	est, err := EstimateDCEr(g, seeds, k)
	if err != nil {
		return nil, nil, err
	}
	pred, err := Propagate(g, seeds, k, est.H)
	if err != nil {
		return nil, nil, err
	}
	return pred, est, nil
}

// Accuracy scores predictions on the nodes that are labeled in truth but
// not seeds (micro-averaged).
func Accuracy(pred, truth, seeds []int) float64 {
	return metrics.Accuracy(pred, truth, seeds)
}

// MacroAccuracy macro-averages per-class accuracies (the paper's measure
// under class imbalance).
func MacroAccuracy(pred, truth, seeds []int, k int) float64 {
	return metrics.MacroAccuracy(pred, truth, seeds, k)
}

// GenerateConfig plants a synthetic graph; see Generate.
type GenerateConfig struct {
	N, M  int       // nodes and edges
	Alpha []float64 // class distribution (nil ⇒ balanced over K)
	K     int       // used when Alpha is nil
	H     *Matrix   // symmetric doubly-stochastic compatibility matrix
	// PowerLaw switches from uniform to power-law (coefficient 0.3)
	// degrees.
	PowerLaw bool
	Seed     uint64
}

// Generate creates a synthetic graph with planted class sizes, per-pair
// edge counts and degree distribution (the paper's generator, Section 5),
// returning the graph and ground-truth labels.
func Generate(cfg GenerateConfig) (*Graph, []int, error) {
	alpha := cfg.Alpha
	if alpha == nil {
		if cfg.K < 2 {
			return nil, nil, fmt.Errorf("factorgraph: need Alpha or K ≥ 2")
		}
		alpha = gen.Balanced(cfg.K)
	}
	var dist gen.DegreeDist = gen.Uniform{}
	if cfg.PowerLaw {
		dist = gen.PowerLaw{Exponent: 0.3}
	}
	res, err := gen.Generate(gen.Config{
		N: cfg.N, M: cfg.M, Alpha: alpha, H: cfg.H, Dist: dist, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	return res.Graph, res.Labels, nil
}

// SkewedH builds the paper's parametric k-class compatibility matrix with
// skew h (HFromSkew for k=3, its generalization otherwise).
func SkewedH(k int, h float64) *Matrix {
	if k == 3 {
		return core.HFromSkew(h)
	}
	return core.HPlanted(k, h)
}

// SampleSeeds draws a stratified random fraction f of the true labels, the
// paper's seed-sampling protocol.
func SampleSeeds(truth []int, k int, f float64, seed uint64) ([]int, error) {
	return sampleStratified(truth, k, f, seed)
}
