package factorgraph

import (
	"math"
	"testing"
)

// endToEndFixture generates a heterophilous graph with sparse seeds.
func endToEndFixture(t *testing.T, f float64) (*Graph, []int, []int, *Matrix) {
	t.Helper()
	h := SkewedH(3, 8)
	g, truth, err := Generate(GenerateConfig{N: 3000, M: 36000, K: 3, H: h, PowerLaw: true, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := SampleSeeds(truth, 3, f, 17)
	if err != nil {
		t.Fatal(err)
	}
	return g, truth, seeds, h
}

func TestClassifyEndToEnd(t *testing.T) {
	g, truth, seeds, planted := endToEndFixture(t, 0.05)
	pred, est, err := Classify(g, seeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if est.Method != "DCEr" || est.Runtime <= 0 {
		t.Errorf("estimate metadata wrong: %+v", est)
	}
	// Estimated H close to planted.
	var l2 float64
	for i := range planted.Data {
		d := est.H.Data[i] - planted.Data[i]
		l2 += d * d
	}
	if math.Sqrt(l2) > 0.15 {
		t.Errorf("estimated H L2 = %v from planted", math.Sqrt(l2))
	}
	// End-to-end accuracy comparable to gold standard propagation.
	gs, err := GoldStandard(g, truth, 3)
	if err != nil {
		t.Fatal(err)
	}
	gsPred, err := Propagate(g, seeds, 3, gs)
	if err != nil {
		t.Fatal(err)
	}
	accGS := MacroAccuracy(gsPred, truth, seeds, 3)
	accDCEr := MacroAccuracy(pred, truth, seeds, 3)
	if accGS-accDCEr > 0.05 {
		t.Errorf("DCEr accuracy %v vs GS %v", accDCEr, accGS)
	}
	if accDCEr < 0.5 {
		t.Errorf("end-to-end accuracy %v too low", accDCEr)
	}
}

func TestEstimatorsAgreeWhenDense(t *testing.T) {
	g, _, seeds, planted := endToEndFixture(t, 0.5)
	for _, est := range []func() (*Estimate, error){
		func() (*Estimate, error) { return EstimateDCEr(g, seeds, 3) },
		func() (*Estimate, error) { return EstimateDCE(g, seeds, 3) },
		func() (*Estimate, error) { return EstimateMCE(g, seeds, 3) },
	} {
		e, err := est()
		if err != nil {
			t.Fatal(err)
		}
		var l2 float64
		for i := range planted.Data {
			d := e.H.Data[i] - planted.Data[i]
			l2 += d * d
		}
		if math.Sqrt(l2) > 0.1 {
			t.Errorf("%s: L2 %v from planted at f=0.5", e.Method, math.Sqrt(l2))
		}
	}
}

func TestEstimateOptionsValidation(t *testing.T) {
	g, _, seeds, _ := endToEndFixture(t, 0.1)
	if _, err := EstimateDCEr(g, seeds, 3, EstimateOptions{}, EstimateOptions{}); err == nil {
		t.Error("expected error for multiple option structs")
	}
	e, err := EstimateDCEr(g, seeds, 3, EstimateOptions{LMax: 3, Lambda: 5, Restarts: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if e.H.Rows != 3 {
		t.Errorf("bad H shape %d", e.H.Rows)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, _, err := Generate(GenerateConfig{N: 10, M: 5}); err == nil {
		t.Error("expected error without Alpha or K")
	}
	if _, _, err := Generate(GenerateConfig{N: 10, M: 5, K: 2, H: NewMatrix([][]float64{{1}})}); err == nil {
		t.Error("expected shape error")
	}
}

func TestNewGraphAndAccuracyHelpers(t *testing.T) {
	g, err := NewGraph(3, [][2]int32{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.M != 2 {
		t.Errorf("n=%d m=%d", g.N, g.M)
	}
	wg, err := NewWeightedGraph(2, [][2]int32{{0, 1}}, []float64{2})
	if err != nil || wg.Adj.At(0, 1) != 2 {
		t.Errorf("weighted graph: %v", err)
	}
	pred := []int{0, 1, 1}
	truth := []int{0, 1, 0}
	seeds := []int{0, Unlabeled, Unlabeled}
	if a := Accuracy(pred, truth, seeds); a != 0.5 {
		t.Errorf("Accuracy = %v", a)
	}
	if a := MacroAccuracy(pred, truth, seeds, 2); a != 0.5 {
		t.Errorf("MacroAccuracy = %v", a)
	}
}

func TestHoldoutFacade(t *testing.T) {
	h := SkewedH(3, 8)
	g, truth, err := Generate(GenerateConfig{N: 600, M: 6000, K: 3, H: h, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	seeds, err := SampleSeeds(truth, 3, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	e, err := EstimateHoldout(g, seeds, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e.Method != "Holdout" || e.H.Rows != 3 {
		t.Errorf("holdout estimate: %+v", e)
	}
}

func TestLCEFacade(t *testing.T) {
	g, _, seeds, _ := endToEndFixture(t, 0.5)
	e, err := EstimateLCE(g, seeds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if e.Method != "LCE" {
		t.Errorf("method %s", e.Method)
	}
}

func TestPropagateBeliefs(t *testing.T) {
	g, _, seeds, h := endToEndFixture(t, 0.1)
	f, err := PropagateBeliefs(g, seeds, 3, h)
	if err != nil {
		t.Fatal(err)
	}
	if f.Rows != g.N || f.Cols != 3 {
		t.Errorf("beliefs shape %dx%d", f.Rows, f.Cols)
	}
}

func TestSkewedHShapes(t *testing.T) {
	for k := 2; k <= 6; k++ {
		h := SkewedH(k, 4)
		if h.Rows != k || h.Cols != k {
			t.Errorf("SkewedH(%d) shape %dx%d", k, h.Rows, h.Cols)
		}
	}
}
