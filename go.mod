module factorgraph

go 1.22
