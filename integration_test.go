package factorgraph_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"factorgraph/internal/graph"
	"factorgraph/internal/labels"
	"factorgraph/internal/metrics"
)

// TestCLIPipeline exercises the factorgraph binary end to end:
// gen → estimate (saving H) → propagate (reusing the saved H), checking
// the files it produces and the accuracy of its predictions.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "factorgraph-bin")
	build := exec.Command("go", "build", "-o", bin, "./cmd/factorgraph")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building CLI: %v", err)
	}

	edges := filepath.Join(dir, "g.tsv")
	truthPath := filepath.Join(dir, "truth.tsv")
	seedsPath := filepath.Join(dir, "seeds.tsv")
	hPath := filepath.Join(dir, "h.json")
	predPath := filepath.Join(dir, "pred.tsv")

	run := func(args ...string) string {
		t.Helper()
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	// Full truth for scoring, then a sparse seed file for the pipeline.
	run("gen", "-n", "3000", "-m", "36000", "-k", "3", "-skew", "8",
		"-seed", "5", "-edges", edges, "-labels", truthPath)
	run("gen", "-n", "3000", "-m", "36000", "-k", "3", "-skew", "8",
		"-seed", "5", "-f", "0.05", "-edges", edges, "-labels", seedsPath)

	out := run("estimate", "-edges", edges, "-labels", seedsPath, "-k", "3",
		"-method", "dcer", "-hout", hPath)
	if !strings.Contains(out, "method=DCEr") || !strings.Contains(out, "estimated H:") {
		t.Errorf("estimate output unexpected:\n%s", out)
	}
	if _, err := os.Stat(hPath); err != nil {
		t.Fatalf("H file not written: %v", err)
	}

	out = run("propagate", "-edges", edges, "-labels", seedsPath, "-k", "3",
		"-hfile", hPath, "-out", predPath)
	if !strings.Contains(out, "loaded H from") {
		t.Errorf("propagate output unexpected:\n%s", out)
	}

	// Score the CLI's predictions against the truth file.
	truthF, err := os.Open(truthPath)
	if err != nil {
		t.Fatal(err)
	}
	defer truthF.Close()
	truth, err := graph.ReadLabels(truthF, 3000)
	if err != nil {
		t.Fatal(err)
	}
	seedsF, err := os.Open(seedsPath)
	if err != nil {
		t.Fatal(err)
	}
	defer seedsF.Close()
	seeds, err := graph.ReadLabels(seedsF, 3000)
	if err != nil {
		t.Fatal(err)
	}
	predF, err := os.Open(predPath)
	if err != nil {
		t.Fatal(err)
	}
	defer predF.Close()
	pred, err := graph.ReadLabels(predF, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if n := labels.NumLabeled(pred); n != 3000 {
		t.Errorf("predictions cover %d of 3000 nodes", n)
	}
	if acc := metrics.MacroAccuracy(pred, truth, seeds, 3); acc < 0.6 {
		t.Errorf("CLI end-to-end accuracy %v, want > 0.6 at h=8 f=0.05", acc)
	}

	stats := run("stats", "-edges", edges)
	if !strings.Contains(stats, "nodes=3000") || !strings.Contains(stats, "edges=36000") {
		t.Errorf("stats output unexpected: %s", stats)
	}
}

// TestExperimentsCLIList checks the experiments binary lists the registry.
func TestExperimentsCLIList(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "experiments-bin")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/experiments").CombinedOutput(); err != nil {
		t.Fatalf("building: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("-list: %v\n%s", err, out)
	}
	for _, id := range []string{"fig3a", "fig6k", "fig7", "ablation-nb"} {
		if !strings.Contains(string(out), id) {
			t.Errorf("-list missing %s:\n%s", id, out)
		}
	}
}
