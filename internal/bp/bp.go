// Package bp implements standard loopy belief propagation on the pairwise
// Markov random field defined by a graph and an edge potential
// (Section 2.2 of the paper). It exists as the reference point LinBP
// linearizes: the update equations are the paper's
//
//	f_i ← Z_i⁻¹ x_i ⊙ ∏_{j∈N(i)} m_{ji}
//	m_{ij} ← H(x_i ⊙ ∏_{v∈N(i)\j} m_{vi})
//
// with per-edge message vectors, optional damping, and residual-based
// convergence detection. BP has well-known convergence problems on loopy
// graphs — the experiments use it to show where linearization pays off.
package bp

import (
	"fmt"
	"math"

	"factorgraph/internal/dense"
	"factorgraph/internal/labels"
	"factorgraph/internal/sparse"
)

// Options configures BP.
type Options struct {
	// MaxIterations bounds message-passing rounds (default 100).
	MaxIterations int
	// Tol stops iteration when the largest message change falls below it
	// (default 1e-6).
	Tol float64
	// Damping blends new messages with old: m ← (1−Damping)·m_new +
	// Damping·m_old. 0 disables damping; 0.1–0.5 often rescues
	// convergence on loopy graphs (default 0).
	Damping float64
	// Epsilon controls potential strength: the edge potential used is
	// H^ε-like interpolation (1−ε)·uniform + ε·H, keeping BP in its
	// convergent regime for small ε. 0 means use H as given.
	Epsilon float64
}

func (o *Options) defaults() {
	if o.MaxIterations == 0 {
		o.MaxIterations = 100
	}
	if o.Tol == 0 {
		o.Tol = 1e-6
	}
}

// Result carries the BP outcome.
type Result struct {
	// Beliefs is the n×k matrix of normalized posterior beliefs.
	Beliefs *dense.Matrix
	// Iterations actually performed.
	Iterations int
	// Converged reports whether the message residual fell below Tol.
	Converged bool
	// MaxResidual is the final largest message change.
	MaxResidual float64
}

// Run executes loopy BP. w is the symmetric adjacency matrix; seed labels
// anchor the priors (labeled nodes get a spiked prior, unlabeled a uniform
// one); h is the k×k compatibility (edge potential) matrix.
func Run(w *sparse.CSR, seed []int, k int, h *dense.Matrix, opts Options) (*Result, error) {
	if len(seed) != w.N {
		return nil, fmt.Errorf("bp: %d seed labels for %d nodes", len(seed), w.N)
	}
	if h.Rows != k || h.Cols != k {
		return nil, fmt.Errorf("bp: H is %d×%d, want %d×%d", h.Rows, h.Cols, k, k)
	}
	opts.defaults()

	pot := h.Clone()
	if opts.Epsilon > 0 {
		uni := 1 / float64(k)
		for i := range pot.Data {
			pot.Data[i] = (1-opts.Epsilon)*uni + opts.Epsilon*pot.Data[i]
		}
	}
	for _, v := range pot.Data {
		if v < 0 {
			return nil, fmt.Errorf("bp: negative potential entry %v (BP multiplies messages; use Epsilon to soften)", v)
		}
	}

	// Directed-edge message storage: for CSR entry p of row i (edge i→j at
	// position p), messages[p] is m_{i→j}. reverse[p] locates m_{j→i}.
	nnz := w.NNZ()
	reverse := make([]int, nnz)
	for i := 0; i < w.N; i++ {
		for p := w.IndPtr[i]; p < w.IndPtr[i+1]; p++ {
			j := int(w.Indices[p])
			// Find position of edge j→i.
			lo, hi := w.IndPtr[j], w.IndPtr[j+1]
			row := w.Indices[lo:hi]
			q := search32(row, int32(i))
			if q < 0 {
				return nil, fmt.Errorf("bp: adjacency not symmetric at (%d,%d)", i, j)
			}
			reverse[p] = lo + q
		}
	}

	// Priors: spiked for labeled nodes, uniform otherwise.
	const spike = 0.9
	prior := dense.New(w.N, k)
	for i := 0; i < w.N; i++ {
		row := prior.Row(i)
		if c := seed[i]; c != labels.Unlabeled {
			if c < 0 || c >= k {
				return nil, fmt.Errorf("bp: node %d has label %d outside [0,%d)", i, c, k)
			}
			for j := range row {
				row[j] = (1 - spike) / float64(k-1)
			}
			row[c] = spike
		} else {
			for j := range row {
				row[j] = 1 / float64(k)
			}
		}
	}

	msgs := make([]float64, nnz*k)
	next := make([]float64, nnz*k)
	for p := 0; p < nnz; p++ {
		for c := 0; c < k; c++ {
			msgs[p*k+c] = 1 / float64(k)
		}
	}

	prod := make([]float64, k)
	pre := make([]float64, k)
	out := make([]float64, k)
	res := &Result{}
	for it := 1; it <= opts.MaxIterations; it++ {
		maxDelta := 0.0
		for i := 0; i < w.N; i++ {
			// Total product of incoming messages times prior (in logs we
			// would be safer, but k and degrees here are modest and we
			// re-normalize per message).
			start, end := w.IndPtr[i], w.IndPtr[i+1]
			copy(prod, prior.Row(i))
			for p := start; p < end; p++ {
				q := reverse[p] // message j→i
				for c := 0; c < k; c++ {
					prod[c] *= msgs[q*k+c]
				}
				normalizeVec(prod)
			}
			for p := start; p < end; p++ {
				q := reverse[p]
				// Cavity: divide out the recipient's message (guard zeros).
				for c := 0; c < k; c++ {
					in := msgs[q*k+c]
					if in > 1e-300 {
						pre[c] = prod[c] / in
					} else {
						pre[c] = prod[c]
					}
				}
				normalizeVec(pre)
				// Modulate through the potential: out_e = Σ_c pre_c·H_ce.
				for e := 0; e < k; e++ {
					s := 0.0
					for c := 0; c < k; c++ {
						s += pre[c] * pot.At(c, e)
					}
					out[e] = s
				}
				normalizeVec(out)
				for c := 0; c < k; c++ {
					nv := out[c]
					if opts.Damping > 0 {
						nv = (1-opts.Damping)*nv + opts.Damping*msgs[p*k+c]
					}
					if d := math.Abs(nv - msgs[p*k+c]); d > maxDelta {
						maxDelta = d
					}
					next[p*k+c] = nv
				}
			}
		}
		msgs, next = next, msgs
		res.Iterations = it
		res.MaxResidual = maxDelta
		if maxDelta < opts.Tol {
			res.Converged = true
			break
		}
	}

	// Final beliefs.
	beliefs := dense.New(w.N, k)
	for i := 0; i < w.N; i++ {
		row := beliefs.Row(i)
		copy(row, prior.Row(i))
		for p := w.IndPtr[i]; p < w.IndPtr[i+1]; p++ {
			q := reverse[p]
			for c := 0; c < k; c++ {
				row[c] *= msgs[q*k+c]
			}
			normalizeVec(row)
		}
	}
	res.Beliefs = beliefs
	return res, nil
}

// Labels runs BP and returns argmax labels.
func Labels(w *sparse.CSR, seed []int, k int, h *dense.Matrix, opts Options) ([]int, *Result, error) {
	res, err := Run(w, seed, k, h, opts)
	if err != nil {
		return nil, nil, err
	}
	return dense.ArgmaxRows(res.Beliefs), res, nil
}

func normalizeVec(v []float64) {
	s := 0.0
	for _, x := range v {
		s += x
	}
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		u := 1 / float64(len(v))
		for i := range v {
			v[i] = u
		}
		return
	}
	for i := range v {
		v[i] /= s
	}
}

// search32 finds x in a sorted int32 slice, returning its index or −1.
func search32(row []int32, x int32) int {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := (lo + hi) / 2
		if row[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(row) && row[lo] == x {
		return lo
	}
	return -1
}
