package bp

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"factorgraph/internal/dense"
	"factorgraph/internal/labels"
	"factorgraph/internal/sparse"
)

func ring(t *testing.T, n int) *sparse.CSR {
	t.Helper()
	edges := make([][2]int32, n)
	for i := 0; i < n; i++ {
		edges[i] = [2]int32{int32(i), int32((i + 1) % n)}
	}
	w, err := sparse.NewSymmetricFromEdges(n, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func seedVec(n int, known map[int]int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = labels.Unlabeled
	}
	for i, c := range known {
		s[i] = c
	}
	return s
}

func TestBPTreeExact(t *testing.T) {
	// On a tree (path graph) BP is exact and must converge.
	edges := [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}}
	w, err := sparse.NewSymmetricFromEdges(5, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	hetero := dense.FromRows([][]float64{{0.1, 0.9}, {0.9, 0.1}})
	seed := seedVec(5, map[int]int{0: 0})
	pred, res, err := Labels(w, seed, 2, hetero, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("BP did not converge on a tree (residual %v)", res.MaxResidual)
	}
	want := []int{0, 1, 0, 1, 0}
	for i := range want {
		if pred[i] != want[i] {
			t.Errorf("node %d labeled %d, want %d", i, pred[i], want[i])
		}
	}
}

func TestBPHeterophilyRing(t *testing.T) {
	w := ring(t, 12)
	hetero := dense.FromRows([][]float64{{0.1, 0.9}, {0.9, 0.1}})
	seed := seedVec(12, map[int]int{0: 0})
	pred, _, err := Labels(w, seed, 2, hetero, Options{Damping: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if pred[i] != i%2 {
			t.Fatalf("node %d labeled %d, want %d (%v)", i, pred[i], i%2, pred)
		}
	}
}

func TestBPHomophilyCliques(t *testing.T) {
	var edges [][2]int32
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, [2]int32{int32(i), int32(j)})
			edges = append(edges, [2]int32{int32(i + 5), int32(j + 5)})
		}
	}
	edges = append(edges, [2]int32{4, 5})
	w, err := sparse.NewSymmetricFromEdges(10, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	homo := dense.FromRows([][]float64{{0.9, 0.1}, {0.1, 0.9}})
	seed := seedVec(10, map[int]int{0: 0, 9: 1})
	pred, _, err := Labels(w, seed, 2, homo, Options{Damping: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if pred[i] != 0 || pred[i+5] != 1 {
			t.Fatalf("clique labeling wrong: %v", pred)
		}
	}
}

func TestBPBeliefsNormalized(t *testing.T) {
	w := ring(t, 10)
	h := dense.FromRows([][]float64{{0.3, 0.7}, {0.7, 0.3}})
	seed := seedVec(10, map[int]int{0: 0, 5: 1})
	res, err := Run(w, seed, 2, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s := 0.0
		for _, v := range res.Beliefs.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("belief out of range at node %d: %v", i, res.Beliefs.Row(i))
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("beliefs of node %d sum to %v", i, s)
		}
	}
}

func TestBPErrors(t *testing.T) {
	w := ring(t, 4)
	h2 := dense.FromRows([][]float64{{0.5, 0.5}, {0.5, 0.5}})
	if _, err := Run(w, []int{0}, 2, h2, Options{}); err == nil {
		t.Error("expected length error")
	}
	if _, err := Run(w, seedVec(4, nil), 3, h2, Options{}); err == nil {
		t.Error("expected shape error")
	}
	neg := dense.FromRows([][]float64{{-0.5, 1.5}, {1.5, -0.5}})
	if _, err := Run(w, seedVec(4, nil), 2, neg, Options{}); err == nil {
		t.Error("expected negative-potential error")
	}
	if _, err := Run(w, seedVec(4, map[int]int{0: 7}), 2, h2, Options{}); err == nil {
		t.Error("expected out-of-range label error")
	}
}

func TestBPEpsilonSoftening(t *testing.T) {
	// Strong potentials on a loopy graph may oscillate; epsilon-softened
	// potentials converge.
	w := ring(t, 9) // odd ring frustrates 2-class heterophily
	h := dense.FromRows([][]float64{{0.0, 1.0}, {1.0, 0.0}})
	seed := seedVec(9, map[int]int{0: 0})
	hard, err := Run(w, seed, 2, h, Options{MaxIterations: 200})
	if err != nil {
		t.Fatal(err)
	}
	soft, err := Run(w, seed, 2, h, Options{MaxIterations: 200, Epsilon: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !soft.Converged {
		t.Errorf("softened BP should converge (residual %v)", soft.MaxResidual)
	}
	// Document behaviour: the frustrated hard potential may not converge.
	_ = hard
}

// Property: on random graphs BP with softened potentials returns finite,
// normalized beliefs regardless of convergence.
func TestBPRobustnessProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(91, 92))
	f := func() bool {
		n := 5 + r.IntN(15)
		var edges [][2]int32
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.3 {
					edges = append(edges, [2]int32{int32(i), int32(j)})
				}
			}
		}
		if len(edges) == 0 {
			return true
		}
		w, err := sparse.NewSymmetricFromEdges(n, edges, nil)
		if err != nil {
			return false
		}
		k := 2 + r.IntN(2)
		h := dense.New(k, k)
		for i := range h.Data {
			h.Data[i] = r.Float64()
		}
		h = dense.RowNormalize(h)
		seed := make([]int, n)
		for i := range seed {
			if r.Float64() < 0.3 {
				seed[i] = r.IntN(k)
			} else {
				seed[i] = labels.Unlabeled
			}
		}
		res, err := Run(w, seed, k, h, Options{MaxIterations: 30, Damping: 0.2})
		if err != nil {
			return false
		}
		for _, v := range res.Beliefs.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestBPvsLinBPAgreement: in the weak-potential regime where both are
// well-behaved, BP and LinBP should broadly agree on labels (LinBP is the
// linearization of BP around the uninformative point).
func TestBPvsLinBPAgreement(t *testing.T) {
	w := ring(t, 30)
	h := dense.FromRows([][]float64{{0.35, 0.65}, {0.65, 0.35}})
	seed := seedVec(30, map[int]int{0: 0, 15: 1})
	bpPred, res, err := Labels(w, seed, 2, h, Options{Epsilon: 0.5, Damping: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("BP did not converge: residual %v", res.MaxResidual)
	}
	x, err := labels.Matrix(seed, 2)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := linbpLabels(w, x, h)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i := range bpPred {
		if bpPred[i] == lin[i] {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(bpPred)); frac < 0.9 {
		t.Errorf("BP and LinBP agree on only %.2f of nodes", frac)
	}
}

// linbpLabels is a minimal local LinBP to avoid an import cycle with the
// propagation package's tests.
func linbpLabels(w *sparse.CSR, x *dense.Matrix, h *dense.Matrix) ([]int, error) {
	k := h.Rows
	ht := dense.AddScalar(h, -1.0/float64(k))
	rhoW := w.SpectralRadius(100)
	rhoH := dense.SpectralRadiusSym(ht, 200)
	eps := 0.5 / (rhoW * rhoH)
	hs := dense.Scale(ht, eps)
	xt := dense.AddScalar(x, -1.0/float64(k))
	f := xt.Clone()
	for it := 0; it < 10; it++ {
		f = dense.Add(xt, w.MulDense(dense.Mul(f, hs)))
	}
	return dense.ArgmaxRows(f), nil
}
