package core

import (
	"fmt"
	"math/rand/v2"

	"factorgraph/internal/dense"
	"factorgraph/internal/labels"
	"factorgraph/internal/sparse"
)

// AutoLambdaOptions configures EstimateDCErAuto.
type AutoLambdaOptions struct {
	// Grid is the λ candidates (default {1, 3, 10, 30}).
	Grid []float64
	// Folds is the number of seed re-splits averaged per candidate
	// (default 3).
	Folds int
	// Restarts per DCE run (default 10, as in DCEr).
	Restarts int
	// LMax for the summaries (default 5).
	LMax int
	// Seed drives splits and restarts.
	Seed uint64
}

func (o *AutoLambdaOptions) defaults() {
	if len(o.Grid) == 0 {
		o.Grid = []float64{1, 3, 10, 30}
	}
	if o.Folds == 0 {
		o.Folds = 3
	}
	if o.Restarts == 0 {
		o.Restarts = 10
	}
	if o.LMax == 0 {
		o.LMax = 5
	}
}

// EstimateDCErAuto extends DCEr with automatic selection of the single
// hyperparameter λ — the paper's stated future work ("Fine-tuning of λ on
// real datasets remains interesting future work", §5.3). For each
// candidate λ it estimates H on summaries built from half the seed labels
// and scores the fit of H's powers against the *held-out* half's
// summaries (a sketch-level cross-validation: every step runs on k×k
// matrices, so the selection adds only O(folds·|grid|) sketch builds and
// optimizations). The λ with the best held-out fit wins; the final H is
// re-estimated on all seeds.
func EstimateDCErAuto(w *sparse.CSR, seed []int, k int, opts AutoLambdaOptions) (*dense.Matrix, float64, error) {
	opts.defaults()
	if labels.NumLabeled(seed) < 2 {
		return nil, 0, fmt.Errorf("core: auto-lambda needs at least 2 labeled nodes")
	}
	rng := rand.New(rand.NewPCG(opts.Seed, 0x853c49e6748fea9b))

	scores := make([]float64, len(opts.Grid))
	valid := make([]int, len(opts.Grid))
	for fold := 0; fold < opts.Folds; fold++ {
		train, hold, err := labels.SplitSeedHoldout(seed, k, 0.5, rng)
		if err != nil {
			return nil, 0, err
		}
		if labels.NumLabeled(train) == 0 || labels.NumLabeled(hold) == 0 {
			continue
		}
		sTrain, err := Summarize(w, train, k, SummaryOptions{LMax: opts.LMax, NonBacktracking: true, Variant: Variant1})
		if err != nil {
			return nil, 0, err
		}
		sHold, err := Summarize(w, hold, k, SummaryOptions{LMax: opts.LMax, NonBacktracking: true, Variant: Variant1})
		if err != nil {
			return nil, 0, err
		}
		for gi, lambda := range opts.Grid {
			est, err := EstimateDCE(sTrain, DCEOptions{Lambda: lambda, Restarts: opts.Restarts, Seed: opts.Seed + uint64(fold)})
			if err != nil {
				return nil, 0, err
			}
			// Validation: weighted distance of est's powers from the
			// held-out statistics. A fixed moderate weighting (λ=3)
			// scores all candidates on the same scale.
			valObj, err := NewDCEObjective(sHold, PathWeights(3, opts.LMax))
			if err != nil {
				return nil, 0, err
			}
			h, err := ToFree(est)
			if err != nil {
				return nil, 0, err
			}
			scores[gi] += valObj.Value(h)
			valid[gi]++
		}
	}
	bestIdx := -1
	for gi := range opts.Grid {
		if valid[gi] == 0 {
			continue
		}
		if bestIdx < 0 || scores[gi]/float64(valid[gi]) < scores[bestIdx]/float64(valid[bestIdx]) {
			bestIdx = gi
		}
	}
	if bestIdx < 0 {
		return nil, 0, fmt.Errorf("core: auto-lambda could not evaluate any fold (too few labels per class)")
	}
	bestLambda := opts.Grid[bestIdx]

	sAll, err := Summarize(w, seed, k, SummaryOptions{LMax: opts.LMax, NonBacktracking: true, Variant: Variant1})
	if err != nil {
		return nil, 0, err
	}
	h, err := EstimateDCE(sAll, DCEOptions{Lambda: bestLambda, Restarts: opts.Restarts, Seed: opts.Seed})
	if err != nil {
		return nil, 0, err
	}
	return h, bestLambda, nil
}
