package core

import (
	"testing"

	"factorgraph/internal/labels"
	"factorgraph/internal/metrics"
)

func TestEstimateDCErAutoRecoversH(t *testing.T) {
	res, sample, H := makeLabeledGraph(t, 5000, 60000, 8, 0.05, 21)
	est, lambda, err := EstimateDCErAuto(res.Graph.Adj, sample, 3, AutoLambdaOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, g := range []float64{1, 3, 10, 30} {
		if lambda == g {
			found = true
		}
	}
	if !found {
		t.Errorf("selected lambda %v not in default grid", lambda)
	}
	if d := metrics.L2(est, H); d > 0.15 {
		t.Errorf("auto-lambda DCEr L2 = %v from planted H", d)
	}
	if !IsSymmetricDoublyStochastic(est, 1e-6) {
		t.Error("estimate violates constraints")
	}
}

func TestEstimateDCErAutoDenseLabels(t *testing.T) {
	// With plentiful labels every candidate λ fits well (the validation
	// scores are within noise of each other); whatever λ wins, the final
	// estimate must be accurate.
	res, sample, H := makeLabeledGraph(t, 3000, 36000, 8, 0.5, 23)
	est, _, err := EstimateDCErAuto(res.Graph.Adj, sample, 3, AutoLambdaOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d := metrics.L2(est, H); d > 0.05 {
		t.Errorf("auto-lambda L2 = %v at f=0.5", d)
	}
}

func TestEstimateDCErAutoErrors(t *testing.T) {
	res, _, _ := makeLabeledGraph(t, 200, 1000, 3, 1, 25)
	unl := make([]int, res.Graph.N)
	for i := range unl {
		unl[i] = labels.Unlabeled
	}
	if _, _, err := EstimateDCErAuto(res.Graph.Adj, unl, 3, AutoLambdaOptions{}); err == nil {
		t.Error("expected too-few-labels error")
	}
}
