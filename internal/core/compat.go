// Package core implements the paper's primary contribution: estimating the
// k×k class-compatibility matrix H from a sparsely labeled graph.
//
// It provides the free-parameter encoding of symmetric doubly-stochastic
// matrices (Eq. 6), the factorized non-backtracking path summaries
// (Propositions 4.3/4.5, Algorithm 4.4), and the estimators LCE (§4.2),
// MCE (§4.3), DCE/DCEr (§4.4–4.8), the Holdout baseline (§4.1) and the
// heuristic baseline (Appendix E.1).
package core

import (
	"fmt"

	"factorgraph/internal/dense"
)

// NumFree returns k* = k(k−1)/2, the number of free parameters of a
// symmetric doubly-stochastic k×k matrix.
func NumFree(k int) int { return k * (k - 1) / 2 }

// freeIndex maps a lower-triangular position (i,j) with j ≤ i ≤ k−2 to its
// position in the free-parameter vector, following the paper's row-major
// enumeration h1 = H00; h2, h3 = H10, H11; …
func freeIndex(i, j int) int { return i*(i+1)/2 + j }

// FromFree reconstructs the full k×k matrix H from its k* free parameters
// using the symmetry and double-stochasticity conditions of Eq. 6.
func FromFree(h []float64, k int) (*dense.Matrix, error) {
	if k < 2 {
		return nil, fmt.Errorf("core: k=%d, need at least 2 classes", k)
	}
	if len(h) != NumFree(k) {
		return nil, fmt.Errorf("core: %d free parameters for k=%d, want %d", len(h), k, NumFree(k))
	}
	m := dense.New(k, k)
	last := k - 1
	// Free block: rows/cols 0..k−2.
	for i := 0; i < last; i++ {
		for j := 0; j <= i; j++ {
			v := h[freeIndex(i, j)]
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	// Last column and row from row-stochasticity, H[i][k−1] = 1 − Σ_{ℓ<k−1} H[i][ℓ].
	for i := 0; i < last; i++ {
		s := 0.0
		for j := 0; j < last; j++ {
			s += m.At(i, j)
		}
		m.Set(i, last, 1-s)
		m.Set(last, i, 1-s)
	}
	// Bottom-right corner, H[k−1][k−1] = 2 − k + Σ_{ℓ,r<k−1} H[ℓ][r].
	s := 0.0
	for i := 0; i < last; i++ {
		for j := 0; j < last; j++ {
			s += m.At(i, j)
		}
	}
	m.Set(last, last, 2-float64(k)+s)
	return m, nil
}

// ToFree extracts the k* free parameters from a symmetric doubly-stochastic
// matrix (the lower triangle of its leading (k−1)×(k−1) block).
func ToFree(h *dense.Matrix) ([]float64, error) {
	if h.Rows != h.Cols {
		return nil, fmt.Errorf("core: H is %d×%d, want square", h.Rows, h.Cols)
	}
	k := h.Rows
	if k < 2 {
		return nil, fmt.Errorf("core: k=%d, need at least 2 classes", k)
	}
	out := make([]float64, NumFree(k))
	for i := 0; i < k-1; i++ {
		for j := 0; j <= i; j++ {
			out[freeIndex(i, j)] = h.At(i, j)
		}
	}
	return out, nil
}

// UniformFree returns the free-parameter vector of the uniform matrix with
// every entry 1/k — the paper's optimization starting point (§4.4).
func UniformFree(k int) []float64 {
	h := make([]float64, NumFree(k))
	for i := range h {
		h[i] = 1 / float64(k)
	}
	return h
}

// Uniform returns the k×k matrix with every entry 1/k.
func Uniform(k int) *dense.Matrix {
	return dense.Constant(k, k, 1/float64(k))
}

// ProjectGradient contracts a full-matrix gradient G = ∂E/∂H (entries
// treated as independent) through the structure matrix S of Proposition 4.7,
// yielding the gradient with respect to the k* free parameters.
func ProjectGradient(g *dense.Matrix) []float64 {
	k := g.Rows
	last := k - 1
	out := make([]float64, NumFree(k))
	for i := 0; i < last; i++ {
		for j := 0; j <= i; j++ {
			if i == j {
				out[freeIndex(i, j)] = g.At(i, i) - g.At(i, last) - g.At(last, i) + g.At(last, last)
			} else {
				out[freeIndex(i, j)] = g.At(i, j) + g.At(j, i) -
					g.At(i, last) - g.At(last, j) -
					g.At(j, last) - g.At(last, i) +
					2*g.At(last, last)
			}
		}
	}
	return out
}

// IsSymmetricDoublyStochastic reports whether h is symmetric with unit row
// sums within tolerance tol (entries may be negative during optimization;
// only the equality constraints are checked, as in the paper).
func IsSymmetricDoublyStochastic(h *dense.Matrix, tol float64) bool {
	if h.Rows != h.Cols {
		return false
	}
	k := h.Rows
	for i := 0; i < k; i++ {
		s := 0.0
		for j := 0; j < k; j++ {
			s += h.At(i, j)
			if diff := h.At(i, j) - h.At(j, i); diff > tol || diff < -tol {
				return false
			}
		}
		if d := s - 1; d > tol || d < -tol {
			return false
		}
	}
	return true
}

// HFromSkew builds the paper's parametric 3-class compatibility matrix for
// skew h (Section 5): H = [[1,h,1],[h,1,1],[1,1,h]]/(2+h). For example
// h=8 gives [[.1,.8,.1],[.8,.1,.1],[.1,.1,.8]].
func HFromSkew(h float64) *dense.Matrix {
	d := 2 + h
	return dense.FromRows([][]float64{
		{1 / d, h / d, 1 / d},
		{h / d, 1 / d, 1 / d},
		{1 / d, 1 / d, h / d},
	})
}

// HPlanted builds a k-class generalization of the skewed matrix: a
// permutation-like pattern with one "high" entry h per row (off-diagonal
// pairs for the first ⌊k/2⌋·2 classes, diagonal for a trailing odd class),
// low entries 1 elsewhere, normalized to doubly stochastic. For k=3 it
// reproduces HFromSkew.
func HPlanted(k int, h float64) *dense.Matrix {
	m := dense.Constant(k, k, 1)
	for c := 0; c+1 < k; c += 2 {
		m.Set(c, c+1, h)
		m.Set(c+1, c, h)
	}
	if k%2 == 1 {
		m.Set(k-1, k-1, h)
	}
	// Each row has exactly one h and k−1 ones, so a single scale makes it
	// doubly stochastic.
	dense.ScaleInPlace(m, 1/(float64(k-1)+h))
	return m
}
