package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"factorgraph/internal/dense"
)

func TestNumFree(t *testing.T) {
	for _, tc := range []struct{ k, want int }{{2, 1}, {3, 3}, {4, 6}, {7, 21}} {
		if got := NumFree(tc.k); got != tc.want {
			t.Errorf("NumFree(%d) = %d, want %d", tc.k, got, tc.want)
		}
	}
}

func TestFromFreeK3PaperExample(t *testing.T) {
	// Paper §4: for k=3, H reconstructed from h = [H11, H21, H22]:
	// last column 1−row sums, corner H11+2H21+H22−1.
	h := []float64{0.2, 0.6, 0.2}
	H, err := FromFree(h, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := dense.FromRows([][]float64{
		{0.2, 0.6, 0.2},
		{0.6, 0.2, 0.2},
		{0.2, 0.2, 0.6},
	})
	if !dense.Equal(H, want, 1e-12) {
		t.Errorf("FromFree = \n%v want \n%v", H, want)
	}
}

func TestFromFreeErrors(t *testing.T) {
	if _, err := FromFree([]float64{1}, 1); err == nil {
		t.Error("expected error for k=1")
	}
	if _, err := FromFree([]float64{1, 2}, 3); err == nil {
		t.Error("expected error for wrong parameter count")
	}
}

func TestToFreeErrors(t *testing.T) {
	if _, err := ToFree(dense.New(2, 3)); err == nil {
		t.Error("expected error for non-square")
	}
	if _, err := ToFree(dense.New(1, 1)); err == nil {
		t.Error("expected error for k=1")
	}
}

// Property: FromFree always produces a symmetric matrix with unit row and
// column sums, for arbitrary free parameters (Eq. 6 invariant).
func TestFromFreeInvariantProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(21, 22))
	f := func() bool {
		k := 2 + r.IntN(6)
		h := make([]float64, NumFree(k))
		for i := range h {
			h[i] = r.NormFloat64()
		}
		H, err := FromFree(h, k)
		if err != nil {
			return false
		}
		return IsSymmetricDoublyStochastic(H, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: ToFree(FromFree(h)) == h (round trip).
func TestFreeRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(23, 24))
	f := func() bool {
		k := 2 + r.IntN(6)
		h := make([]float64, NumFree(k))
		for i := range h {
			h[i] = r.NormFloat64()
		}
		H, err := FromFree(h, k)
		if err != nil {
			return false
		}
		back, err := ToFree(H)
		if err != nil {
			return false
		}
		for i := range h {
			if math.Abs(back[i]-h[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUniform(t *testing.T) {
	u := Uniform(4)
	for _, v := range u.Data {
		if v != 0.25 {
			t.Fatalf("Uniform entry %v", v)
		}
	}
	uf := UniformFree(4)
	H, _ := FromFree(uf, 4)
	if !dense.Equal(H, u, 1e-12) {
		t.Error("UniformFree does not reconstruct the uniform matrix")
	}
}

func TestIsSymmetricDoublyStochastic(t *testing.T) {
	good := HFromSkew(3)
	if !IsSymmetricDoublyStochastic(good, 1e-9) {
		t.Error("HFromSkew(3) should be doubly stochastic")
	}
	bad := dense.FromRows([][]float64{{0.5, 0.5}, {0.3, 0.7}})
	if IsSymmetricDoublyStochastic(bad, 1e-9) {
		t.Error("asymmetric matrix accepted")
	}
	bad2 := dense.FromRows([][]float64{{0.5, 0.4}, {0.4, 0.5}})
	if IsSymmetricDoublyStochastic(bad2, 1e-9) {
		t.Error("non-stochastic matrix accepted")
	}
	if IsSymmetricDoublyStochastic(dense.New(2, 3), 1e-9) {
		t.Error("non-square matrix accepted")
	}
}

func TestHFromSkew(t *testing.T) {
	h8 := HFromSkew(8)
	want := dense.FromRows([][]float64{
		{0.1, 0.8, 0.1},
		{0.8, 0.1, 0.1},
		{0.1, 0.1, 0.8},
	})
	if !dense.Equal(h8, want, 1e-12) {
		t.Errorf("HFromSkew(8) = \n%v", h8)
	}
	h3 := HFromSkew(3)
	want3 := dense.FromRows([][]float64{
		{0.2, 0.6, 0.2},
		{0.6, 0.2, 0.2},
		{0.2, 0.2, 0.6},
	})
	if !dense.Equal(h3, want3, 1e-12) {
		t.Errorf("HFromSkew(3) = \n%v", h3)
	}
}

func TestHPlanted(t *testing.T) {
	if !dense.Equal(HPlanted(3, 8), HFromSkew(8), 1e-12) {
		t.Error("HPlanted(3, h) should match HFromSkew(h)")
	}
	for k := 2; k <= 8; k++ {
		H := HPlanted(k, 5)
		if !IsSymmetricDoublyStochastic(H, 1e-9) {
			t.Errorf("HPlanted(%d, 5) not doubly stochastic:\n%v", k, H)
		}
		// Skew must be present: max/min entry ratio = 5.
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range H.Data {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if math.Abs(hi/lo-5) > 1e-9 {
			t.Errorf("HPlanted(%d, 5) skew = %v, want 5", k, hi/lo)
		}
	}
}

// Property: ProjectGradient matches a finite-difference derivative of any
// smooth function composed with FromFree. We use f(H) = <C, H> whose
// full-matrix gradient is exactly C.
func TestProjectGradientProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(25, 26))
	f := func() bool {
		k := 2 + r.IntN(5)
		c := dense.New(k, k)
		for i := range c.Data {
			c.Data[i] = r.NormFloat64()
		}
		h := make([]float64, NumFree(k))
		for i := range h {
			h[i] = 1/float64(k) + 0.1*r.NormFloat64()
		}
		got := ProjectGradient(c)
		// Finite differences of f(h) = <C, FromFree(h)>.
		eps := 1e-6
		for p := range h {
			hp := append([]float64(nil), h...)
			hp[p] += eps
			hm := append([]float64(nil), h...)
			hm[p] -= eps
			Hp, _ := FromFree(hp, k)
			Hm, _ := FromFree(hm, k)
			fd := (dense.Dot(c, Hp) - dense.Dot(c, Hm)) / (2 * eps)
			if math.Abs(fd-got[p]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
