package core

import (
	"fmt"
	"math/rand/v2"
	"sync"

	"factorgraph/internal/dense"
	"factorgraph/internal/optimize"
)

// DCEOptions configures distant compatibility estimation (§4.4–4.8).
type DCEOptions struct {
	// Lambda is the single hyperparameter λ: the geometric weight ratio
	// w_{ℓ+1} = λ·w_ℓ balancing longer (more numerous, weaker) against
	// shorter (sparser, more reliable) paths. Default 10 (Result 1).
	Lambda float64
	// Restarts is the number of random restarts r; 1 is plain DCE,
	// 10 reproduces DCEr as configured in the paper (Result 3).
	Restarts int
	// Seed drives the restart-point sampling.
	Seed uint64
	// Solver selects the inner optimizer. The default (SolverLBFGS)
	// mirrors the paper's quasi-Newton SLSQP; plain gradient descent is
	// kept for the optimizer ablation — it stalls far from the optimum on
	// the k* ≥ 20 dimensional energies of k ≥ 7 classes.
	Solver Solver
	// GD configures the gradient-descent solver (SolverGD).
	GD optimize.GDOptions
	// LBFGS configures the L-BFGS solver (SolverLBFGS).
	LBFGS optimize.LBFGSOptions
}

// Solver selects the inner optimizer for DCE/DCEr.
type Solver int

const (
	// SolverLBFGS is the default quasi-Newton solver.
	SolverLBFGS Solver = iota
	// SolverGD is steepest descent with Armijo backtracking.
	SolverGD
)

func (o *DCEOptions) defaults() {
	if o.Lambda == 0 {
		o.Lambda = 10
	}
	if o.Restarts == 0 {
		o.Restarts = 1
	}
}

// DefaultDCEOptions returns λ=10 and a single start (plain DCE).
func DefaultDCEOptions() DCEOptions { return DCEOptions{Lambda: 10, Restarts: 1} }

// DefaultDCErOptions returns λ=10 with r=10 restarts (DCEr).
func DefaultDCErOptions() DCEOptions { return DCEOptions{Lambda: 10, Restarts: 10} }

// PathWeights returns the weight vector [1, λ, λ², …] of length lmax,
// normalized so the weights sum to 1 (normalization does not change the
// minimizer but keeps energies comparable across ℓmax).
func PathWeights(lambda float64, lmax int) []float64 {
	w := make([]float64, lmax)
	cur, sum := 1.0, 0.0
	for i := range w {
		w[i] = cur
		sum += cur
		cur *= lambda
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// DCEObjective is the distance-smoothed energy of Eq. 13/14,
//
//	E(H) = Σ_ℓ w_ℓ ‖Hℓ − P̂⁽ℓ⁾‖²,
//
// over the free parameters of H, with the explicit gradient of
// Proposition 4.7. The objective runs entirely on the k×k sketches — its
// cost is independent of the graph size.
type DCEObjective struct {
	Phats   []*dense.Matrix // P̂⁽ℓ⁾, ℓ = 1..ℓmax
	Weights []float64       // w_ℓ
	K       int

	sym []*dense.Matrix // symmetrized P̂⁽ℓ⁾ used by the gradient
}

// NewDCEObjective builds the objective from summaries and path weights.
func NewDCEObjective(s *Summaries, weights []float64) (*DCEObjective, error) {
	if len(weights) > s.LMax {
		return nil, fmt.Errorf("core: %d weights but only %d summaries", len(weights), s.LMax)
	}
	o := &DCEObjective{Phats: s.P[:len(weights)], Weights: weights, K: s.K}
	o.sym = make([]*dense.Matrix, len(o.Phats))
	for i, p := range o.Phats {
		o.sym[i] = dense.Symmetrize(p)
	}
	return o, nil
}

// Value implements optimize.Objective.
func (o *DCEObjective) Value(h []float64) float64 {
	H, err := FromFree(h, o.K)
	if err != nil {
		panic(err) // parameter-length mismatch is a programming error
	}
	powers := dense.Powers(H, len(o.Weights))
	e := 0.0
	for l, w := range o.Weights {
		d := dense.FrobeniusDist(powers[l], o.Phats[l])
		e += w * d * d
	}
	return e
}

// Grad implements optimize.Objective. The full-matrix gradient
//
//	G = Σ_ℓ w_ℓ (2ℓ·H^{2ℓ−1} − Σ_{r=0}^{ℓ−1} H^r (P̂+P̂ᵀ) H^{ℓ−1−r})
//
// (Proposition 4.7, exact for arbitrary P̂ via symmetrization) is contracted
// through the structure matrix S by ProjectGradient.
func (o *DCEObjective) Grad(h []float64) []float64 {
	H, err := FromFree(h, o.K)
	if err != nil {
		panic(err)
	}
	lmax := len(o.Weights)
	// H⁰..H^{2ℓmax−1}
	powers := make([]*dense.Matrix, 2*lmax)
	powers[0] = dense.Identity(o.K)
	for p := 1; p < 2*lmax; p++ {
		powers[p] = dense.Mul(powers[p-1], H)
	}
	g := dense.New(o.K, o.K)
	for l1, w := range o.Weights {
		l := l1 + 1
		term := dense.Scale(powers[2*l-1], 2*float64(l))
		for r := 0; r < l; r++ {
			mid := dense.Mul(dense.Mul(powers[r], o.sym[l1]), powers[l-1-r])
			dense.AddInPlace(term, dense.Scale(mid, -2))
		}
		dense.AddInPlace(g, dense.Scale(term, w))
	}
	return ProjectGradient(g)
}

// EstimateDCE minimizes the DCE energy from the uniform start (plain DCE)
// or from multiple hyper-quadrant restarts (DCEr), returning the estimated
// compatibility matrix with the lowest final energy.
func EstimateDCE(s *Summaries, opts DCEOptions) (*dense.Matrix, error) {
	opts.defaults()
	if opts.Lambda < 0 {
		return nil, fmt.Errorf("core: negative lambda %v", opts.Lambda)
	}
	weights := PathWeights(opts.Lambda, s.LMax)
	obj, err := NewDCEObjective(s, weights)
	if err != nil {
		return nil, err
	}
	starts := restartPoints(s.K, opts.Restarts, opts.Seed)
	// Restarts are independent; run them concurrently. The winner is
	// chosen by (energy, restart index), so results are deterministic
	// regardless of scheduling.
	type outcome struct {
		res optimize.Result
		err error
	}
	outcomes := make([]outcome, len(starts))
	var wg sync.WaitGroup
	for i, x0 := range starts {
		wg.Add(1)
		go func(i int, x0 []float64) {
			defer wg.Done()
			switch opts.Solver {
			case SolverGD:
				outcomes[i].res, outcomes[i].err = optimize.GradientDescent(obj, x0, opts.GD)
			default:
				outcomes[i].res, outcomes[i].err = optimize.LBFGS(obj, x0, opts.LBFGS)
			}
		}(i, x0)
	}
	wg.Wait()
	bestVal := 0.0
	var bestX []float64
	for i, o := range outcomes {
		if o.err != nil {
			return nil, fmt.Errorf("core: DCE restart %d: %w", i, o.err)
		}
		if bestX == nil || o.res.Value < bestVal {
			bestVal, bestX = o.res.Value, o.res.X
		}
	}
	return FromFree(bestX, s.K)
}

// restartPoints returns r starting vectors in the k*-dimensional parameter
// space: the uniform point 1/k first, then points 1/k ± δ with δ = 1/(2k²)
// drawn from the 2^{k*} hyper-quadrants (§4.8) — enumerated exhaustively
// when they fit in r, sampled uniformly otherwise.
func restartPoints(k, r int, seed uint64) [][]float64 {
	kstar := NumFree(k)
	delta := 1 / (2 * float64(k) * float64(k))
	points := [][]float64{UniformFree(k)}
	if r <= 1 {
		return points
	}
	remaining := r - 1
	if kstar < 20 && (1<<uint(kstar)) <= remaining {
		// Enumerate every quadrant.
		for mask := 0; mask < 1<<uint(kstar); mask++ {
			x := UniformFree(k)
			for b := 0; b < kstar; b++ {
				if mask>>uint(b)&1 == 1 {
					x[b] += delta
				} else {
					x[b] -= delta
				}
			}
			points = append(points, x)
		}
		return points
	}
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	for i := 0; i < remaining; i++ {
		x := UniformFree(k)
		for b := range x {
			if rng.IntN(2) == 1 {
				x[b] += delta
			} else {
				x[b] -= delta
			}
		}
		points = append(points, x)
	}
	return points
}
