package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"factorgraph/internal/dense"
	"factorgraph/internal/gen"
	"factorgraph/internal/labels"
	"factorgraph/internal/metrics"
	"factorgraph/internal/optimize"
)

// makeLabeledGraph generates a planted graph and a stratified seed sample.
func makeLabeledGraph(t *testing.T, n, m int, h float64, f float64, seed uint64) (*gen.Result, []int, *dense.Matrix) {
	t.Helper()
	H := HFromSkew(h)
	res, err := gen.Generate(gen.Config{N: n, M: m, Alpha: gen.Balanced(3), H: H, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(seed, 99))
	sample, err := labels.SampleStratified(res.Labels, 3, f, rng)
	if err != nil {
		t.Fatal(err)
	}
	return res, sample, H
}

func TestPathWeights(t *testing.T) {
	w := PathWeights(10, 3)
	if len(w) != 3 {
		t.Fatalf("len = %d", len(w))
	}
	// Ratios must be λ; normalization to sum 1.
	if math.Abs(w[1]/w[0]-10) > 1e-9 || math.Abs(w[2]/w[1]-10) > 1e-9 {
		t.Errorf("weight ratios wrong: %v", w)
	}
	sum := w[0] + w[1] + w[2]
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("weights sum to %v", sum)
	}
}

// Property (Proposition 4.7): the analytic DCE gradient matches central
// finite differences for random P̂ matrices and random parameter points.
func TestDCEGradientMatchesFiniteDifferenceProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(41, 42))
	f := func() bool {
		k := 2 + r.IntN(4)
		lmax := 1 + r.IntN(4)
		s := &Summaries{K: k, LMax: lmax, P: make([]*dense.Matrix, lmax), M: make([]*dense.Matrix, lmax)}
		for l := 0; l < lmax; l++ {
			p := dense.New(k, k)
			for i := range p.Data {
				p.Data[i] = r.Float64()
			}
			s.P[l] = p
			s.M[l] = p
		}
		obj, err := NewDCEObjective(s, PathWeights(5, lmax))
		if err != nil {
			return false
		}
		h := UniformFree(k)
		for i := range h {
			h[i] += 0.2 * r.NormFloat64()
		}
		got := obj.Grad(h)
		want := optimize.FiniteDiffGrad(obj.Value, h, 1e-6)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-4*(1+math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestClosestDoublyStochasticProjectsStochasticMatrix(t *testing.T) {
	// A matrix that is already symmetric doubly stochastic is its own
	// projection.
	H := HFromSkew(3)
	got, err := ClosestDoublyStochastic(H, optimize.GDOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d := dense.FrobeniusDist(got, H); d > 1e-6 {
		t.Errorf("projection moved a feasible point by %v", d)
	}
}

func TestMCERecoversHOnFullyLabeledGraph(t *testing.T) {
	res, _, H := makeLabeledGraph(t, 3000, 30000, 8, 1, 5)
	sums, err := Summarize(res.Graph.Adj, res.Labels, 3, DefaultSummaryOptions())
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateMCE(sums, MCEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d := metrics.L2(est, H); d > 0.03 {
		t.Errorf("MCE L2 from planted H = %v on fully labeled graph\n%v", d, est)
	}
}

func TestDCERecoversHSparseLabels(t *testing.T) {
	// At f=0.05 with n=5000 MCE degrades but DCE with ℓmax=5 stays close.
	res, sample, H := makeLabeledGraph(t, 5000, 60000, 8, 0.05, 6)
	sums, err := Summarize(res.Graph.Adj, sample, 3, DefaultSummaryOptions())
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateDCE(sums, DefaultDCErOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d := metrics.L2(est, H); d > 0.15 {
		t.Errorf("DCEr L2 from planted H = %v at f=0.05\n%v", d, est)
	}
}

func TestDCErBeatsOrMatchesDCEEnergy(t *testing.T) {
	res, sample, _ := makeLabeledGraph(t, 4000, 40000, 8, 0.01, 8)
	sums, err := Summarize(res.Graph.Adj, sample, 3, DefaultSummaryOptions())
	if err != nil {
		t.Fatal(err)
	}
	weights := PathWeights(10, sums.LMax)
	obj, err := NewDCEObjective(sums, weights)
	if err != nil {
		t.Fatal(err)
	}
	dce, err := EstimateDCE(sums, DCEOptions{Lambda: 10, Restarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	dcer, err := EstimateDCE(sums, DCEOptions{Lambda: 10, Restarts: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	hd, _ := ToFree(dce)
	hr, _ := ToFree(dcer)
	if obj.Value(hr) > obj.Value(hd)+1e-9 {
		t.Errorf("DCEr energy %v worse than DCE %v", obj.Value(hr), obj.Value(hd))
	}
}

func TestDCErParallelRestartsDeterministic(t *testing.T) {
	res, sample, _ := makeLabeledGraph(t, 3000, 30000, 8, 0.01, 14)
	sums, err := Summarize(res.Graph.Adj, sample, 3, DefaultSummaryOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DCEOptions{Lambda: 10, Restarts: 10, Seed: 4}
	a, err := EstimateDCE(sums, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateDCE(sums, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equal(a, b, 0) {
		t.Error("parallel restarts are not deterministic")
	}
}

func TestEstimateDCEErrors(t *testing.T) {
	s := &Summaries{K: 3, LMax: 1, P: []*dense.Matrix{Uniform(3)}, M: []*dense.Matrix{Uniform(3)}}
	if _, err := EstimateDCE(s, DCEOptions{Lambda: -1}); err == nil {
		t.Error("expected negative-lambda error")
	}
	if _, err := NewDCEObjective(s, []float64{1, 1}); err == nil {
		t.Error("expected too-many-weights error")
	}
}

func TestLCERecoversHOnFullyLabeledGraph(t *testing.T) {
	res, _, H := makeLabeledGraph(t, 3000, 30000, 8, 1, 9)
	est, err := EstimateLCE(res.Graph.Adj, res.Labels, 3, LCEOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// LCE minimizes a different (propagation-flavored) energy; it should
	// still identify the heterophily structure: H01 is the largest entry of
	// row 0 and H22 the largest of row 2.
	if est.At(0, 1) <= est.At(0, 0) || est.At(0, 1) <= est.At(0, 2) {
		t.Errorf("LCE missed heterophily structure:\n%v (planted\n%v)", est, H)
	}
	if est.At(2, 2) <= est.At(2, 0) {
		t.Errorf("LCE missed homophily of class 3:\n%v", est)
	}
}

func TestLCEErrors(t *testing.T) {
	res, _, _ := makeLabeledGraph(t, 100, 500, 3, 1, 10)
	if _, err := EstimateLCE(res.Graph.Adj, []int{0}, 3, LCEOptions{}); err == nil {
		t.Error("expected length-mismatch error")
	}
	unl := make([]int, res.Graph.N)
	for i := range unl {
		unl[i] = labels.Unlabeled
	}
	if _, err := EstimateLCE(res.Graph.Adj, unl, 3, LCEOptions{}); err == nil {
		t.Error("expected no-labels error")
	}
}

func TestHoldoutRecoversStructure(t *testing.T) {
	res, sample, H := makeLabeledGraph(t, 1000, 10000, 8, 0.2, 12)
	est, err := EstimateHoldout(res.Graph.Adj, sample, 3, HoldoutOptions{
		Splits: 2,
		NM:     optimize.NMOptions{MaxIter: 120},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !IsSymmetricDoublyStochastic(est, 1e-6) {
		t.Errorf("holdout estimate not doubly stochastic:\n%v", est)
	}
	// Structure check: strong 0↔1 heterophily should be detected.
	if est.At(0, 1) <= est.At(0, 0) {
		t.Errorf("holdout missed heterophily:\nest\n%v planted\n%v", est, H)
	}
}

func TestHoldoutErrors(t *testing.T) {
	res, _, _ := makeLabeledGraph(t, 100, 500, 3, 1, 13)
	if _, err := EstimateHoldout(res.Graph.Adj, []int{0}, 3, HoldoutOptions{}); err == nil {
		t.Error("expected length-mismatch error")
	}
	one := make([]int, res.Graph.N)
	for i := range one {
		one[i] = labels.Unlabeled
	}
	one[0] = 0
	if _, err := EstimateHoldout(res.Graph.Adj, one, 3, HoldoutOptions{}); err == nil {
		t.Error("expected too-few-labels error")
	}
}

func TestHeuristicHL(t *testing.T) {
	// MovieLens-like: clear two-level structure → heuristic close to a
	// doubly-stochastic matrix with matching high/low positions.
	gs := dense.FromRows([][]float64{
		{0.08, 0.45, 0.47},
		{0.45, 0.02, 0.53},
		{0.47, 0.53, 0.00},
	})
	h, err := HeuristicHL(gs)
	if err != nil {
		t.Fatal(err)
	}
	// MovieLens has one high entry pair per row ([L H H; H L H; H H L]),
	// so the scaled pattern is doubly stochastic.
	if !IsSymmetricDoublyStochastic(h, 1e-9) {
		t.Errorf("MovieLens heuristic should be row-constant:\n%v", h)
	}
	// High positions must dominate low positions by exactly 2×.
	if h.At(0, 1) != 2*h.At(0, 0) || h.At(1, 2) != 2*h.At(1, 1) {
		t.Errorf("heuristic lost the H/L pattern:\n%v", h)
	}
	if _, err := HeuristicHL(dense.New(2, 3)); err == nil {
		t.Error("expected non-square error")
	}

	// Prop-37's pattern [H L H; L L H; H H L] has non-constant row sums —
	// the heuristic must NOT repair that (the point of Figure 12).
	prop37 := dense.FromRows([][]float64{
		{0.35, 0.26, 0.38},
		{0.26, 0.12, 0.61},
		{0.38, 0.61, 0.00},
	})
	hp, err := HeuristicHL(prop37)
	if err != nil {
		t.Fatal(err)
	}
	rs := dense.RowSums(hp)
	if math.Abs(rs[0]-rs[1]) < 1e-9 {
		t.Errorf("Prop-37 heuristic rows should be imbalanced: %v", rs)
	}
}

func TestSinkhorn(t *testing.T) {
	m := dense.FromRows([][]float64{{1, 2}, {2, 1}})
	s := Sinkhorn(m, 50)
	if !IsSymmetricDoublyStochastic(s, 1e-6) {
		t.Errorf("Sinkhorn result not doubly stochastic:\n%v", s)
	}
}

// Property: restartPoints always returns r points, the first being uniform,
// all valid parameter vectors.
func TestRestartPointsProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(43, 44))
	f := func() bool {
		k := 2 + r.IntN(6)
		rr := 1 + r.IntN(12)
		pts := restartPoints(k, rr, r.Uint64())
		if len(pts) < 1 {
			return false
		}
		for i, p := range pts {
			if len(p) != NumFree(k) {
				return false
			}
			if i == 0 {
				for _, v := range p {
					if math.Abs(v-1/float64(k)) > 1e-12 {
						return false
					}
				}
			}
			if _, err := FromFree(p, k); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
