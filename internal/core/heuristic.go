package core

import (
	"fmt"

	"factorgraph/internal/dense"
)

// HeuristicHL reproduces the heuristic of Appendix E.1 used by prior work
// [15, 18, 29]: assume H has only two kinds of entries, a high value H and
// a low value L, and assume their positions can be guessed correctly from
// the gold standard. Entries of gs above the midpoint (min+max)/2 become
// H = 2/(k·avg row pattern), the rest L = H/2, scaled globally so the
// average row sums to 1 — but NOT row-balanced: the whole point of
// Figure 12 is that when the binary pattern has non-constant row sums
// (Prop-37's [H L H; L L H; H H L]), the quantization distorts propagation
// and the heuristic collapses, whereas patterns with one H per row
// (MovieLens) survive. Row-balancing the matrix would silently repair the
// heuristic and erase the paper's finding.
func HeuristicHL(gs *dense.Matrix) (*dense.Matrix, error) {
	if gs.Rows != gs.Cols {
		return nil, fmt.Errorf("core: gold standard is %d×%d, want square", gs.Rows, gs.Cols)
	}
	k := gs.Rows
	lo, hi := gs.Data[0], gs.Data[0]
	for _, v := range gs.Data {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	mid := (lo + hi) / 2
	out := dense.New(k, k)
	for i := range gs.Data {
		if gs.Data[i] > mid {
			out.Data[i] = 2
		} else {
			out.Data[i] = 1
		}
	}
	// Guessing positions from a symmetric gold standard yields a symmetric
	// pattern; enforce it against rounding asymmetries in gs.
	out = dense.Symmetrize(out)
	// Global scale only: average row sum 1 (ϵ is immaterial under the
	// LinBP scaling; the row-sum imbalance is what matters).
	total := dense.Sum(out)
	if total > 0 {
		dense.ScaleInPlace(out, float64(k)/total)
	}
	return out, nil
}

// Sinkhorn performs iters rounds of alternating row/column normalization,
// driving a positive matrix toward doubly stochastic. For symmetric input
// the result stays (numerically) symmetric.
func Sinkhorn(m *dense.Matrix, iters int) *dense.Matrix {
	out := m.Clone()
	k := out.Rows
	for it := 0; it < iters; it++ {
		for i := 0; i < k; i++ {
			row := out.Row(i)
			s := 0.0
			for _, v := range row {
				s += v
			}
			if s > 0 {
				for j := range row {
					row[j] /= s
				}
			}
		}
		cs := dense.ColSums(out)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if cs[j] > 0 {
					out.Data[i*k+j] /= cs[j]
				}
			}
		}
	}
	return out
}
