package core

import (
	"fmt"
	"math/rand/v2"

	"factorgraph/internal/dense"
	"factorgraph/internal/labels"
	"factorgraph/internal/metrics"
	"factorgraph/internal/optimize"
	"factorgraph/internal/propagation"
	"factorgraph/internal/sparse"
)

// HoldoutOptions configures the textbook baseline of §4.1.
type HoldoutOptions struct {
	// Splits is the number of seed/holdout partitions b; the energy is the
	// negative compound accuracy over all of them (Eq. 7). Default 1.
	Splits int
	// SeedFrac is the fraction of labeled nodes kept as propagation seeds
	// in each split. Default 0.5.
	SeedFrac float64
	// Seed drives the partitioning.
	Seed uint64
	// LinBP configures the inner inference subroutine.
	LinBP propagation.LinBPOptions
	// NM configures the Nelder–Mead search over the k* free parameters
	// (gradient-free, because accuracy is a step function of H).
	NM optimize.NMOptions
}

func (o *HoldoutOptions) defaults() {
	if o.Splits == 0 {
		o.Splits = 1
	}
	if o.SeedFrac == 0 {
		o.SeedFrac = 0.5
	}
	if o.LinBP == (propagation.LinBPOptions{}) {
		o.LinBP = propagation.DefaultLinBPOptions()
	}
}

// EstimateHoldout learns H by repeatedly running label propagation as a
// black-box subroutine: it splits the available labels into Seed/Holdout
// sets, propagates from Seed under a candidate H, scores accuracy on
// Holdout, and searches the k*-dimensional parameter space with Nelder–Mead
// for the accuracy-maximizing matrix. Each energy evaluation performs
// inference over the whole graph, which is why this baseline is orders of
// magnitude slower than the sketch-based estimators (Figure 3b).
func EstimateHoldout(w *sparse.CSR, seed []int, k int, opts HoldoutOptions) (*dense.Matrix, error) {
	if len(seed) != w.N {
		return nil, fmt.Errorf("core: %d seed labels for %d nodes", len(seed), w.N)
	}
	opts.defaults()
	if labels.NumLabeled(seed) < 2 {
		return nil, fmt.Errorf("core: holdout needs at least 2 labeled nodes, have %d", labels.NumLabeled(seed))
	}
	rng := rand.New(rand.NewPCG(opts.Seed, 0xda3e39cb94b95bdb))
	type split struct {
		x       *dense.Matrix // seed part as belief matrix
		holdout []int         // holdout part as label vector
	}
	splits := make([]split, 0, opts.Splits)
	for b := 0; b < opts.Splits; b++ {
		s, h, err := labels.SplitSeedHoldout(seed, k, opts.SeedFrac, rng)
		if err != nil {
			return nil, err
		}
		if labels.NumLabeled(h) == 0 {
			return nil, fmt.Errorf("core: holdout split %d has no holdout labels", b)
		}
		x, err := labels.Matrix(s, k)
		if err != nil {
			return nil, err
		}
		splits = append(splits, split{x: x, holdout: h})
	}

	energy := func(h []float64) float64 {
		H, err := FromFree(h, k)
		if err != nil {
			panic(err)
		}
		total := 0.0
		for _, sp := range splits {
			pred, err := propagation.LinBPLabels(w, sp.x, H, opts.LinBP)
			if err != nil {
				return 1e6 // propagate as a bad candidate rather than aborting the search
			}
			acc := metrics.MacroAccuracyOn(pred, sp.holdout, k)
			total += acc
		}
		return -total
	}
	res, err := optimize.NelderMead(energy, UniformFree(k), opts.NM)
	if err != nil {
		return nil, err
	}
	return FromFree(res.X, k)
}
