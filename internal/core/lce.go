package core

import (
	"fmt"

	"factorgraph/internal/dense"
	"factorgraph/internal/labels"
	"factorgraph/internal/optimize"
	"factorgraph/internal/sparse"
)

// LCEOptions configures linear compatibility estimation (§4.2).
type LCEOptions struct {
	// LBFGS configures the solver. Every objective evaluation touches an
	// n×k residual, so the quasi-Newton solver's low evaluation count
	// matters here more than anywhere else.
	LBFGS optimize.LBFGSOptions
}

// EstimateLCE minimizes E(H) = ‖X − WXH‖² (Eq. 8), the energy obtained by
// substituting the sparse labels X for the unknown beliefs F in the LinBP
// objective (Proposition 3.2). The problem is convex; following the paper,
// each evaluation works with the full n×k residual (N = WX is precomputed,
// but the per-iteration cost still scales with the graph size — this is
// exactly what MCE/DCE avoid and why they are faster on large graphs).
func EstimateLCE(w *sparse.CSR, seed []int, k int, opts LCEOptions) (*dense.Matrix, error) {
	if len(seed) != w.N {
		return nil, fmt.Errorf("core: %d seed labels for %d nodes", len(seed), w.N)
	}
	if labels.NumLabeled(seed) == 0 {
		return nil, fmt.Errorf("core: no labeled nodes")
	}
	x, err := labels.Matrix(seed, k)
	if err != nil {
		return nil, err
	}
	n := w.MulDense(x) // N = WX, n×k

	obj := optimize.FuncObjective{
		F: func(h []float64) float64 {
			H, err := FromFree(h, k)
			if err != nil {
				panic(err)
			}
			r := dense.Sub(x, dense.Mul(n, H))
			fr := dense.Frobenius(r)
			return fr * fr
		},
		G: func(h []float64) []float64 {
			H, err := FromFree(h, k)
			if err != nil {
				panic(err)
			}
			// ∂‖X−NH‖²/∂H = −2Nᵀ(X − NH).
			r := dense.Sub(x, dense.Mul(n, H))
			g := dense.Scale(dense.Mul(dense.Transpose(n), r), -2)
			return ProjectGradient(g)
		},
	}
	lopts := opts.LBFGS
	if lopts.MaxIter == 0 {
		lopts.MaxIter = 200
	}
	res, err := optimize.LBFGS(obj, UniformFree(k), lopts)
	if err != nil {
		return nil, err
	}
	return FromFree(res.X, k)
}
