package core

import (
	"fmt"

	"factorgraph/internal/dense"
	"factorgraph/internal/optimize"
)

// MCEOptions configures myopic compatibility estimation (§4.3).
type MCEOptions struct {
	// Variant selects the normalization of the neighbor-statistics matrix
	// (default Variant1, the paper's consistently best choice).
	Variant Normalization
	// GD configures the inner solver for the convex projection Eq. 12.
	GD optimize.GDOptions
}

// EstimateMCE finds the symmetric doubly-stochastic matrix closest (in
// Frobenius norm, Eq. 12) to the observed neighbor-statistics matrix
// P̂ = normalize(XᵀWX). MCE is DCE restricted to ℓmax = 1: it is "myopic"
// because it only sees directly-neighboring labeled pairs.
func EstimateMCE(s *Summaries, opts MCEOptions) (*dense.Matrix, error) {
	if opts.Variant == 0 {
		opts.Variant = Variant1
	}
	phat, err := opts.Variant.Normalize(s.M[0])
	if err != nil {
		return nil, err
	}
	return ClosestDoublyStochastic(phat, opts.GD)
}

// ClosestDoublyStochastic minimizes E(H) = ‖H − P̂‖² over symmetric
// doubly-stochastic matrices via the free-parameter encoding. The problem
// is convex, so gradient descent from the uniform start finds the global
// optimum.
func ClosestDoublyStochastic(phat *dense.Matrix, gd optimize.GDOptions) (*dense.Matrix, error) {
	if phat.Rows != phat.Cols {
		return nil, fmt.Errorf("core: P̂ is %d×%d, want square", phat.Rows, phat.Cols)
	}
	k := phat.Rows
	sym := dense.Symmetrize(phat)
	obj := optimize.FuncObjective{
		F: func(h []float64) float64 {
			H, err := FromFree(h, k)
			if err != nil {
				panic(err)
			}
			d := dense.FrobeniusDist(H, phat)
			return d * d
		},
		G: func(h []float64) []float64 {
			H, err := FromFree(h, k)
			if err != nil {
				panic(err)
			}
			// ∂‖H−P̂‖²/∂H = 2H − (P̂+P̂ᵀ), exact for arbitrary P̂.
			g := dense.Sub(dense.Scale(H, 2), dense.Scale(sym, 2))
			return ProjectGradient(g)
		},
	}
	res, err := optimize.GradientDescent(obj, UniformFree(k), gd)
	if err != nil {
		return nil, err
	}
	return FromFree(res.X, k)
}
