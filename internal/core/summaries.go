package core

import (
	"fmt"

	"factorgraph/internal/dense"
	"factorgraph/internal/labels"
	"factorgraph/internal/sparse"
)

// Normalization selects how the raw label-count matrices M⁽ℓ⁾ are turned
// into observed statistics matrices P̂⁽ℓ⁾ (Section 4.3).
type Normalization int

const (
	// Variant1 is the row-stochastic normalization diag(M1)⁻¹M (Eq. 9),
	// the paper's recommended default.
	Variant1 Normalization = iota + 1
	// Variant2 is the LGC-style symmetric normalization
	// diag(M1)^(−1/2)·M·diag(M1)^(−1/2) (Eq. 10).
	Variant2
	// Variant3 scales M so the average entry is 1/k (Eq. 11).
	Variant3
)

// Normalize applies the selected variant to a k×k statistics matrix.
func (v Normalization) Normalize(m *dense.Matrix) (*dense.Matrix, error) {
	switch v {
	case Variant1:
		return dense.RowNormalize(m), nil
	case Variant2:
		return dense.SymNormalize(m), nil
	case Variant3:
		return dense.ScaleNormalize(m), nil
	default:
		return nil, fmt.Errorf("core: unknown normalization variant %d", int(v))
	}
}

// SummaryOptions configures Summarize.
type SummaryOptions struct {
	// LMax is the maximum path length ℓmax (default 5, the paper's
	// recommended setting, Result 1).
	LMax int
	// NonBacktracking selects the consistent NB-path statistics of §4.5
	// (default in the paper; the full-path variant exists for Fig 5a).
	NonBacktracking bool
	// Variant selects the normalization (default Variant1).
	Variant Normalization
}

func (o *SummaryOptions) defaults() {
	if o.LMax == 0 {
		o.LMax = 5
	}
	if o.Variant == 0 {
		o.Variant = Variant1
	}
}

// DefaultSummaryOptions returns ℓmax=5, non-backtracking, variant 1.
func DefaultSummaryOptions() SummaryOptions {
	return SummaryOptions{LMax: 5, NonBacktracking: true, Variant: Variant1}
}

// Summaries holds the factorized graph representations: for each path
// length ℓ ∈ [ℓmax], the raw k×k label-count matrix M⁽ℓ⁾ = XᵀW⁽ℓ⁾X and its
// normalized statistics matrix P̂⁽ℓ⁾. Their size is independent of the
// graph — this is the sketch all estimation runs on (Figure 2).
type Summaries struct {
	K    int
	LMax int
	M    []*dense.Matrix // M[ℓ−1] = M⁽ℓ⁾
	P    []*dense.Matrix // P[ℓ−1] = P̂⁽ℓ⁾
}

// Summarize computes the graph summaries of Algorithm 4.4 in O(mkℓmax):
//
//	N⁽¹⁾ = WX,  N⁽²⁾ = WN⁽¹⁾ − DX,  N⁽ℓ⁾ = WN⁽ℓ⁻¹⁾ − (D−I)N⁽ℓ⁻²⁾
//	M⁽ℓ⁾ = XᵀN⁽ℓ⁾,  P̂⁽ℓ⁾ = normalize(M⁽ℓ⁾)
//
// (non-backtracking recurrence, Proposition 4.3). With
// opts.NonBacktracking = false it instead uses the plain powers
// N⁽ℓ⁾ = WN⁽ℓ⁻¹⁾, whose statistics are biased (Theorem 4.1) — kept for the
// Figure 5a comparison.
//
// seed is the sparse label vector (labels.Unlabeled for unknown nodes).
func Summarize(w *sparse.CSR, seed []int, k int, opts SummaryOptions) (*Summaries, error) {
	if len(seed) != w.N {
		return nil, fmt.Errorf("core: %d seed labels for %d nodes", len(seed), w.N)
	}
	if k < 2 {
		return nil, fmt.Errorf("core: k=%d, need at least 2 classes", k)
	}
	if opts.LMax < 0 {
		return nil, fmt.Errorf("core: negative path length ℓmax=%d", opts.LMax)
	}
	opts.defaults()
	if labels.NumLabeled(seed) == 0 {
		return nil, fmt.Errorf("core: no labeled nodes to summarize")
	}
	x, err := labels.Matrix(seed, k)
	if err != nil {
		return nil, err
	}
	deg := w.Degrees()

	s := &Summaries{K: k, LMax: opts.LMax, M: make([]*dense.Matrix, opts.LMax), P: make([]*dense.Matrix, opts.LMax)}
	var prev, cur *dense.Matrix // N⁽ℓ⁻²⁾, N⁽ℓ⁻¹⁾
	for l := 1; l <= opts.LMax; l++ {
		var next *dense.Matrix
		switch {
		case l == 1:
			next = w.MulDense(x)
		case l == 2 && opts.NonBacktracking:
			next = w.MulDense(cur)
			// Subtract DX: row i scaled by degree of i.
			for i := 0; i < w.N; i++ {
				if seed[i] == labels.Unlabeled {
					continue // X row is zero
				}
				next.Data[i*k+seed[i]] -= deg[i]
			}
		case opts.NonBacktracking:
			next = w.MulDense(cur)
			// Subtract (D−I)·N⁽ℓ⁻²⁾.
			for i := 0; i < w.N; i++ {
				c := deg[i] - 1
				if c == 0 {
					continue
				}
				nrow := next.Data[i*k : (i+1)*k]
				prow := prev.Data[i*k : (i+1)*k]
				for j := range nrow {
					nrow[j] -= c * prow[j]
				}
			}
		default:
			next = w.MulDense(cur)
		}
		prev, cur = cur, next

		// M⁽ℓ⁾ = XᵀN⁽ℓ⁾: only labeled rows of X contribute.
		m := dense.New(k, k)
		for i, c := range seed {
			if c == labels.Unlabeled {
				continue
			}
			mrow := m.Row(c)
			nrow := next.Data[i*k : (i+1)*k]
			for j, v := range nrow {
				mrow[j] += v
			}
		}
		s.M[l-1] = m
		p, err := opts.Variant.Normalize(m)
		if err != nil {
			return nil, err
		}
		s.P[l-1] = p
	}
	return s, nil
}

// GoldStandard measures the "true" compatibility matrix from a fully (or
// maximally) labeled graph: the row-normalized neighbor label-count matrix
// |XᵀWX|_row (Section 5.3: "if we know all labels in a graph, then we can
// simply measure the relative frequencies of classes between neighboring
// nodes").
func GoldStandard(w *sparse.CSR, truth []int, k int) (*dense.Matrix, error) {
	s, err := Summarize(w, truth, k, SummaryOptions{LMax: 1, Variant: Variant1})
	if err != nil {
		return nil, err
	}
	return s.P[0], nil
}

// ExplicitNBPowers returns W⁽ℓ⁾NB for ℓ = 1..lmax as explicit sparse
// matrices via the recurrence of Proposition 4.3:
//
//	W⁽¹⁾ = W, W⁽²⁾ = W² − D, W⁽ℓ⁾ = W·W⁽ℓ⁻¹⁾ − (D−I)·W⁽ℓ⁻²⁾.
//
// This is the expensive strategy Figure 5b benchmarks against the
// factorized Algorithm 4.4; intermediate results densify quickly.
func ExplicitNBPowers(w *sparse.CSR, lmax int) ([]*sparse.CSR, error) {
	if lmax < 1 {
		return nil, fmt.Errorf("core: lmax=%d, want ≥ 1", lmax)
	}
	deg := w.Degrees()
	out := make([]*sparse.CSR, lmax)
	out[0] = w
	if lmax == 1 {
		return out, nil
	}
	w2, err := sparse.Mul(w, w)
	if err != nil {
		return nil, err
	}
	negD := make([]float64, w.N)
	for i, d := range deg {
		negD[i] = -d
	}
	out[1], err = sparse.AddDiag(w2, negD)
	if err != nil {
		return nil, err
	}
	for l := 3; l <= lmax; l++ {
		prod, err := sparse.Mul(w, out[l-2])
		if err != nil {
			return nil, err
		}
		// prod − (D−I)·out[l−3]: scale rows of the older matrix.
		older := out[l-3]
		coords := make([]sparse.Coord, 0, prod.NNZ()+older.NNZ())
		for i := 0; i < prod.N; i++ {
			for p := prod.IndPtr[i]; p < prod.IndPtr[i+1]; p++ {
				wv := 1.0
				if prod.Data != nil {
					wv = prod.Data[p]
				}
				coords = append(coords, sparse.Coord{Row: int32(i), Col: prod.Indices[p], W: wv})
			}
			c := deg[i] - 1
			if c == 0 {
				continue
			}
			for p := older.IndPtr[i]; p < older.IndPtr[i+1]; p++ {
				wv := 1.0
				if older.Data != nil {
					wv = older.Data[p]
				}
				coords = append(coords, sparse.Coord{Row: int32(i), Col: older.Indices[p], W: -c * wv})
			}
		}
		out[l-1], err = sparse.NewFromCoords(prod.N, coords)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
