package core

import (
	"fmt"

	"factorgraph/internal/dense"
	"factorgraph/internal/labels"
	"factorgraph/internal/sparse"
)

// Normalization selects how the raw label-count matrices M⁽ℓ⁾ are turned
// into observed statistics matrices P̂⁽ℓ⁾ (Section 4.3).
type Normalization int

const (
	// Variant1 is the row-stochastic normalization diag(M1)⁻¹M (Eq. 9),
	// the paper's recommended default.
	Variant1 Normalization = iota + 1
	// Variant2 is the LGC-style symmetric normalization
	// diag(M1)^(−1/2)·M·diag(M1)^(−1/2) (Eq. 10).
	Variant2
	// Variant3 scales M so the average entry is 1/k (Eq. 11).
	Variant3
)

// Normalize applies the selected variant to a k×k statistics matrix.
func (v Normalization) Normalize(m *dense.Matrix) (*dense.Matrix, error) {
	switch v {
	case Variant1:
		return dense.RowNormalize(m), nil
	case Variant2:
		return dense.SymNormalize(m), nil
	case Variant3:
		return dense.ScaleNormalize(m), nil
	default:
		return nil, fmt.Errorf("core: unknown normalization variant %d", int(v))
	}
}

// SummaryOptions configures Summarize.
type SummaryOptions struct {
	// LMax is the maximum path length ℓmax (default 5, the paper's
	// recommended setting, Result 1).
	LMax int
	// NonBacktracking selects the consistent NB-path statistics of §4.5
	// (default in the paper; the full-path variant exists for Fig 5a).
	NonBacktracking bool
	// Variant selects the normalization (default Variant1).
	Variant Normalization
	// KeepN retains the n×k neighborhood matrices N⁽ℓ⁾ on the result so
	// ApplyEdgeDelta can maintain the sketches under streaming edge
	// mutations in o(1) per M⁽ℓ⁾ entry. Costs ℓmax extra n×k float64
	// matrices of residency.
	KeepN bool
}

func (o *SummaryOptions) defaults() {
	if o.LMax == 0 {
		o.LMax = 5
	}
	if o.Variant == 0 {
		o.Variant = Variant1
	}
}

// DefaultSummaryOptions returns ℓmax=5, non-backtracking, variant 1.
func DefaultSummaryOptions() SummaryOptions {
	return SummaryOptions{LMax: 5, NonBacktracking: true, Variant: Variant1}
}

// Summaries holds the factorized graph representations: for each path
// length ℓ ∈ [ℓmax], the raw k×k label-count matrix M⁽ℓ⁾ = XᵀW⁽ℓ⁾X and its
// normalized statistics matrix P̂⁽ℓ⁾. Their size is independent of the
// graph — this is the sketch all estimation runs on (Figure 2) — except
// when built with KeepN, which retains the n×k N⁽ℓ⁾ matrices so the
// sketches can track streaming edge mutations via ApplyEdgeDelta.
type Summaries struct {
	K    int
	LMax int
	M    []*dense.Matrix // M[ℓ−1] = M⁽ℓ⁾
	P    []*dense.Matrix // P[ℓ−1] = P̂⁽ℓ⁾

	// N (KeepN builds only) retains N[ℓ−1] = N⁽ℓ⁾, the n×k neighborhood
	// matrices of the recurrence, frozen at summarization time. Variant is
	// the normalization the P̂ matrices were produced with; ApplyEdgeDelta
	// re-applies it after updating M.
	N       []*dense.Matrix
	Variant Normalization
}

// Topology is the adjacency view Summarize actually needs: dimensions, a
// row-parallel dense multiply and weighted degrees. *sparse.CSR is the
// canonical implementation; internal/delta's overlay Graph satisfies it
// too, so a dirty streaming-mutation overlay can be sketched directly —
// summarization never forces a compaction.
type Topology interface {
	Dim() int
	MulDenseInto(out, x *dense.Matrix)
	Degrees() []float64
}

func mulDense(w Topology, x *dense.Matrix) *dense.Matrix {
	out := dense.New(w.Dim(), x.Cols)
	w.MulDenseInto(out, x)
	return out
}

// Summarize computes the graph summaries of Algorithm 4.4 over a CSR; see
// SummarizeOn for the algorithm.
func Summarize(w *sparse.CSR, seed []int, k int, opts SummaryOptions) (*Summaries, error) {
	return SummarizeOn(w, seed, k, opts)
}

// SummarizeOn computes the graph summaries of Algorithm 4.4 in O(mkℓmax):
//
//	N⁽¹⁾ = WX,  N⁽²⁾ = WN⁽¹⁾ − DX,  N⁽ℓ⁾ = WN⁽ℓ⁻¹⁾ − (D−I)N⁽ℓ⁻²⁾
//	M⁽ℓ⁾ = XᵀN⁽ℓ⁾,  P̂⁽ℓ⁾ = normalize(M⁽ℓ⁾)
//
// (non-backtracking recurrence, Proposition 4.3). With
// opts.NonBacktracking = false it instead uses the plain powers
// N⁽ℓ⁾ = WN⁽ℓ⁻¹⁾, whose statistics are biased (Theorem 4.1) — kept for the
// Figure 5a comparison.
//
// seed is the sparse label vector (labels.Unlabeled for unknown nodes).
func SummarizeOn(w Topology, seed []int, k int, opts SummaryOptions) (*Summaries, error) {
	n := w.Dim()
	if len(seed) != n {
		return nil, fmt.Errorf("core: %d seed labels for %d nodes", len(seed), n)
	}
	if k < 2 {
		return nil, fmt.Errorf("core: k=%d, need at least 2 classes", k)
	}
	if opts.LMax < 0 {
		return nil, fmt.Errorf("core: negative path length ℓmax=%d", opts.LMax)
	}
	opts.defaults()
	if labels.NumLabeled(seed) == 0 {
		return nil, fmt.Errorf("core: no labeled nodes to summarize")
	}
	x, err := labels.Matrix(seed, k)
	if err != nil {
		return nil, err
	}
	deg := w.Degrees()

	s := &Summaries{K: k, LMax: opts.LMax, M: make([]*dense.Matrix, opts.LMax), P: make([]*dense.Matrix, opts.LMax), Variant: opts.Variant}
	if opts.KeepN {
		s.N = make([]*dense.Matrix, opts.LMax)
	}
	var prev, cur *dense.Matrix // N⁽ℓ⁻²⁾, N⁽ℓ⁻¹⁾
	for l := 1; l <= opts.LMax; l++ {
		var next *dense.Matrix
		switch {
		case l == 1:
			next = mulDense(w, x)
		case l == 2 && opts.NonBacktracking:
			next = mulDense(w, cur)
			// Subtract DX: row i scaled by degree of i.
			for i := 0; i < n; i++ {
				if seed[i] == labels.Unlabeled {
					continue // X row is zero
				}
				next.Data[i*k+seed[i]] -= deg[i]
			}
		case opts.NonBacktracking:
			next = mulDense(w, cur)
			// Subtract (D−I)·N⁽ℓ⁻²⁾.
			for i := 0; i < n; i++ {
				c := deg[i] - 1
				if c == 0 {
					continue
				}
				nrow := next.Data[i*k : (i+1)*k]
				prow := prev.Data[i*k : (i+1)*k]
				for j := range nrow {
					nrow[j] -= c * prow[j]
				}
			}
		default:
			next = mulDense(w, cur)
		}
		prev, cur = cur, next
		if opts.KeepN {
			s.N[l-1] = next
		}

		// M⁽ℓ⁾ = XᵀN⁽ℓ⁾: only labeled rows of X contribute.
		m := dense.New(k, k)
		for i, c := range seed {
			if c == labels.Unlabeled {
				continue
			}
			mrow := m.Row(c)
			nrow := next.Data[i*k : (i+1)*k]
			for j, v := range nrow {
				mrow[j] += v
			}
		}
		s.M[l-1] = m
		p, err := opts.Variant.Normalize(m)
		if err != nil {
			return nil, err
		}
		s.P[l-1] = p
	}
	return s, nil
}

// walkRow returns the length-l walk-statistics row for node: the one-hot
// X row for l = 0, the retained N⁽ˡ⁾ row otherwise. Nodes added after the
// summarization (beyond the retained matrices) and unlabeled l = 0 rows
// are zero; buf is scratch for those cases.
func (s *Summaries) walkRow(l, node int, seed []int, buf []float64) []float64 {
	if l == 0 {
		for j := range buf {
			buf[j] = 0
		}
		if c := seed[node]; c != labels.Unlabeled {
			buf[c] = 1
		}
		return buf
	}
	if nm := s.N[l-1]; node < nm.Rows {
		return nm.Row(node)
	}
	for j := range buf {
		buf[j] = 0
	}
	return buf
}

// ApplyEdgeDelta folds one undirected edge-weight change Δw on (u, v)
// into the retained sketches in O(ℓmax²·k²) — o(1) per M⁽ℓ⁾ entry,
// independent of n and m. The ℓ = 1 update is exact:
//
//	ΔM⁽¹⁾ = Δw·(x_u ⊗ x_v + x_v ⊗ x_u)
//
// For ℓ ≥ 2 it applies the first-order walk expansion
// Δ(W⁽ℓ⁾) ≈ Σ_{a+b=ℓ−1} W⁽a⁾·ΔW·W⁽b⁾ using the retained N⁽ℓ⁾ = W⁽ℓ⁾X:
//
//	ΔM⁽ℓ⁾ ≈ Δw·Σ_{a+b=ℓ−1} (N⁽a⁾_u ⊗ N⁽b⁾_v + N⁽a⁾_v ⊗ N⁽b⁾_u),  N⁽⁰⁾ = X
//
// which drops the O(Δw²) cross terms and the degree shift in the
// non-backtracking correction; the owner bounds the accumulated |Δw|
// drift and re-summarizes past a threshold. The N matrices themselves are
// left frozen (their staleness is the same second order). P̂ matrices are
// re-normalized from the updated M. seed must be the label vector the
// summaries were computed at.
func (s *Summaries) ApplyEdgeDelta(seed []int, u, v int, dw float64) error {
	if s.N == nil {
		return fmt.Errorf("core: summaries built without KeepN cannot apply edge deltas")
	}
	if dw == 0 {
		return nil
	}
	bufA := make([]float64, s.K)
	bufB := make([]float64, s.K)
	for l := 1; l <= s.LMax; l++ {
		m := s.M[l-1]
		for a := 0; a <= l-1; a++ {
			b := l - 1 - a
			addOuter(m, s.walkRow(a, u, seed, bufA), s.walkRow(b, v, seed, bufB), dw)
			if u != v {
				addOuter(m, s.walkRow(a, v, seed, bufA), s.walkRow(b, u, seed, bufB), dw)
			}
		}
		p, err := s.Variant.Normalize(m)
		if err != nil {
			return err
		}
		s.P[l-1] = p
	}
	return nil
}

// addOuter accumulates m += c·(a ⊗ b) for k-vectors a, b.
func addOuter(m *dense.Matrix, a, b []float64, c float64) {
	for i, av := range a {
		if av == 0 {
			continue
		}
		row := m.Row(i)
		s := c * av
		for j, bv := range b {
			row[j] += s * bv
		}
	}
}

// GoldStandard measures the "true" compatibility matrix from a fully (or
// maximally) labeled graph: the row-normalized neighbor label-count matrix
// |XᵀWX|_row (Section 5.3: "if we know all labels in a graph, then we can
// simply measure the relative frequencies of classes between neighboring
// nodes").
func GoldStandard(w *sparse.CSR, truth []int, k int) (*dense.Matrix, error) {
	s, err := Summarize(w, truth, k, SummaryOptions{LMax: 1, Variant: Variant1})
	if err != nil {
		return nil, err
	}
	return s.P[0], nil
}

// ExplicitNBPowers returns W⁽ℓ⁾NB for ℓ = 1..lmax as explicit sparse
// matrices via the recurrence of Proposition 4.3:
//
//	W⁽¹⁾ = W, W⁽²⁾ = W² − D, W⁽ℓ⁾ = W·W⁽ℓ⁻¹⁾ − (D−I)·W⁽ℓ⁻²⁾.
//
// This is the expensive strategy Figure 5b benchmarks against the
// factorized Algorithm 4.4; intermediate results densify quickly.
func ExplicitNBPowers(w *sparse.CSR, lmax int) ([]*sparse.CSR, error) {
	if lmax < 1 {
		return nil, fmt.Errorf("core: lmax=%d, want ≥ 1", lmax)
	}
	deg := w.Degrees()
	out := make([]*sparse.CSR, lmax)
	out[0] = w
	if lmax == 1 {
		return out, nil
	}
	w2, err := sparse.Mul(w, w)
	if err != nil {
		return nil, err
	}
	negD := make([]float64, w.N)
	for i, d := range deg {
		negD[i] = -d
	}
	out[1], err = sparse.AddDiag(w2, negD)
	if err != nil {
		return nil, err
	}
	for l := 3; l <= lmax; l++ {
		prod, err := sparse.Mul(w, out[l-2])
		if err != nil {
			return nil, err
		}
		// prod − (D−I)·out[l−3]: scale rows of the older matrix.
		older := out[l-3]
		coords := make([]sparse.Coord, 0, prod.NNZ()+older.NNZ())
		for i := 0; i < prod.N; i++ {
			for p := prod.IndPtr[i]; p < prod.IndPtr[i+1]; p++ {
				wv := 1.0
				if prod.Data != nil {
					wv = prod.Data[p]
				}
				coords = append(coords, sparse.Coord{Row: int32(i), Col: prod.Indices[p], W: wv})
			}
			c := deg[i] - 1
			if c == 0 {
				continue
			}
			for p := older.IndPtr[i]; p < older.IndPtr[i+1]; p++ {
				wv := 1.0
				if older.Data != nil {
					wv = older.Data[p]
				}
				coords = append(coords, sparse.Coord{Row: int32(i), Col: older.Indices[p], W: -c * wv})
			}
		}
		out[l-1], err = sparse.NewFromCoords(prod.N, coords)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
