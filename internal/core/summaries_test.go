package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"factorgraph/internal/dense"
	"factorgraph/internal/gen"
	"factorgraph/internal/labels"
	"factorgraph/internal/sparse"
)

// pathGraph builds the 3-node path 0–1–2 of Figure 4.
func pathGraph(t *testing.T) *sparse.CSR {
	t.Helper()
	w, err := sparse.NewSymmetricFromEdges(3, [][2]int32{{0, 1}, {1, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestFigure4NonBacktracking reproduces the paper's Figure 4 illustration:
// with full paths, blue node 0 counts itself as a distance-2 neighbor
// (N⁽²⁾ row [1,0,1]); non-backtracking paths remove the echo ([0,0,1]).
func TestFigure4NonBacktracking(t *testing.T) {
	w := pathGraph(t)
	seed := []int{0, 1, 2} // classes blue=0, orange=1, green=2

	full, err := Summarize(w, seed, 3, SummaryOptions{LMax: 2, NonBacktracking: false})
	if err != nil {
		t.Fatal(err)
	}
	// M⁽²⁾ counts all length-2 paths: node 0 reaches {0, 2}.
	if got := full.M[1].At(0, 0); got != 1 {
		t.Errorf("full paths M⁽²⁾[0][0] = %v, want 1 (backtracking echo)", got)
	}

	nb, err := Summarize(w, seed, 3, SummaryOptions{LMax: 2, NonBacktracking: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := nb.M[1].At(0, 0); got != 0 {
		t.Errorf("NB M⁽²⁾[0][0] = %v, want 0", got)
	}
	if got := nb.M[1].At(0, 2); got != 1 {
		t.Errorf("NB M⁽²⁾[0][2] = %v, want 1", got)
	}
}

// bruteForceNB counts non-backtracking paths of length l between every node
// pair by explicit DFS over edges (u_{j} ≠ u_{j+2} definition, §4.5).
func bruteForceNB(w *sparse.CSR, l int) *dense.Matrix {
	n := w.N
	out := dense.New(n, n)
	adj := make([][]int32, n)
	for i := 0; i < n; i++ {
		adj[i] = w.Indices[w.IndPtr[i]:w.IndPtr[i+1]]
	}
	var walk func(prev, cur, depth, start int)
	walk = func(prev, cur, depth, start int) {
		if depth == l {
			out.Set(start, cur, out.At(start, cur)+1)
			return
		}
		for _, nxt := range adj[cur] {
			if int(nxt) == prev {
				continue
			}
			walk(cur, int(nxt), depth+1, start)
		}
	}
	for s := 0; s < n; s++ {
		walk(-1, s, 0, s)
	}
	return out
}

// Property (Proposition 4.3): the recurrence W⁽ℓ⁾NB matches brute-force
// enumeration of non-backtracking paths on random graphs up to length 5.
func TestNBRecurrenceMatchesBruteForceProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(31, 32))
	f := func() bool {
		n := 3 + r.IntN(6)
		var edges [][2]int32
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.5 {
					edges = append(edges, [2]int32{int32(i), int32(j)})
				}
			}
		}
		if len(edges) == 0 {
			return true
		}
		w, err := sparse.NewSymmetricFromEdges(n, edges, nil)
		if err != nil {
			return false
		}
		const lmax = 5
		powers, err := ExplicitNBPowers(w, lmax)
		if err != nil {
			return false
		}
		for l := 1; l <= lmax; l++ {
			if !dense.Equal(powers[l-1].ToDense(), bruteForceNB(w, l), 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property (Algorithm 4.4): the factorized summaries equal the explicit
// ones, M⁽ℓ⁾ = Xᵀ·W⁽ℓ⁾NB·X, on random graphs with random partial labels.
func TestFactorizedEqualsExplicitProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(33, 34))
	f := func() bool {
		n := 4 + r.IntN(8)
		k := 2 + r.IntN(3)
		var edges [][2]int32
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.5 {
					edges = append(edges, [2]int32{int32(i), int32(j)})
				}
			}
		}
		if len(edges) == 0 {
			return true
		}
		w, err := sparse.NewSymmetricFromEdges(n, edges, nil)
		if err != nil {
			return false
		}
		seed := make([]int, n)
		labeled := 0
		for i := range seed {
			if r.Float64() < 0.6 {
				seed[i] = r.IntN(k)
				labeled++
			} else {
				seed[i] = labels.Unlabeled
			}
		}
		if labeled == 0 {
			seed[0] = 0
		}
		const lmax = 4
		sums, err := Summarize(w, seed, k, SummaryOptions{LMax: lmax, NonBacktracking: true})
		if err != nil {
			return false
		}
		x, _ := labels.Matrix(seed, k)
		xt := dense.Transpose(x)
		powers, err := ExplicitNBPowers(w, lmax)
		if err != nil {
			return false
		}
		for l := 1; l <= lmax; l++ {
			want := dense.Mul(xt, powers[l-1].MulDense(x))
			if !dense.Equal(sums.M[l-1], want, 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestW2NBIdentity checks W⁽²⁾NB = W² − D on a concrete graph (§4.5).
func TestW2NBIdentity(t *testing.T) {
	w, err := sparse.NewSymmetricFromEdges(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {0, 3}, {0, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	powers, err := ExplicitNBPowers(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	wd := w.ToDense()
	w2 := dense.Mul(wd, wd)
	for i, d := range w.Degrees() {
		w2.Set(i, i, w2.At(i, i)-d)
	}
	if !dense.Equal(powers[1].ToDense(), w2, 1e-9) {
		t.Errorf("W⁽²⁾NB ≠ W² − D:\n%v vs\n%v", powers[1].ToDense(), w2)
	}
}

// TestConsistencyTheorem41 verifies Theorem 4.1 statistically: on a fully
// labeled balanced synthetic graph, P̂⁽ℓ⁾NB ≈ Hℓ while the full-path
// statistic overestimates the diagonal (Example 4.2 / Figure 5a).
func TestConsistencyTheorem41(t *testing.T) {
	H := HFromSkew(3) // [0.2 0.6 0.2; ...]
	res, err := gen.Generate(gen.Config{
		N: 4000, M: 40000, Alpha: gen.Balanced(3), H: H, Dist: gen.Uniform{}, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	nb, err := Summarize(res.Graph.Adj, res.Labels, 3, SummaryOptions{LMax: 2, NonBacktracking: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Summarize(res.Graph.Adj, res.Labels, 3, SummaryOptions{LMax: 2, NonBacktracking: false})
	if err != nil {
		t.Fatal(err)
	}
	h2 := dense.Mul(H, H) // diag 0.44, off 0.28
	// NB statistic close to H².
	if d := dense.FrobeniusDist(nb.P[1], h2); d > 0.05 {
		t.Errorf("NB P̂⁽²⁾ too far from H²: L2 = %v\n%v", d, nb.P[1])
	}
	// Full-path statistic biased upward on the diagonal by O(1/d).
	diagBiasNB := nb.P[1].At(0, 0) - h2.At(0, 0)
	diagBiasFull := full.P[1].At(0, 0) - h2.At(0, 0)
	if diagBiasFull < 0.01 {
		t.Errorf("full-path statistic should overestimate the diagonal, bias = %v", diagBiasFull)
	}
	if math.Abs(diagBiasNB) > diagBiasFull {
		t.Errorf("NB bias %v should be smaller than full-path bias %v", diagBiasNB, diagBiasFull)
	}
}

func TestSummarizeErrors(t *testing.T) {
	w := pathGraph(t)
	if _, err := Summarize(w, []int{0, 1}, 3, SummaryOptions{}); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, err := Summarize(w, []int{-1, -1, -1}, 3, SummaryOptions{}); err == nil {
		t.Error("expected no-labels error")
	}
	if _, err := Summarize(w, []int{0, 1, 2}, 1, SummaryOptions{}); err == nil {
		t.Error("expected k<2 error")
	}
	if _, err := Summarize(w, []int{0, 5, 1}, 3, SummaryOptions{}); err == nil {
		t.Error("expected out-of-range label error")
	}
	if _, err := Summarize(w, []int{0, 1, 2}, 3, SummaryOptions{Variant: 99}); err == nil {
		t.Error("expected unknown-variant error")
	}
}

func TestNormalizationVariants(t *testing.T) {
	m := dense.FromRows([][]float64{{2, 2}, {1, 3}})
	v1, err := Variant1.Normalize(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v1.At(0, 0)-0.5) > 1e-12 || math.Abs(v1.At(1, 1)-0.75) > 1e-12 {
		t.Errorf("variant 1 wrong: %v", v1)
	}
	// Variant 2 preserves symmetry of symmetric inputs (M = XᵀWX is
	// symmetric on undirected graphs).
	ms := dense.FromRows([][]float64{{2, 1}, {1, 3}})
	v2, err := Variant2.Normalize(ms)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v2.At(0, 1)-v2.At(1, 0)) > 1e-9 {
		t.Errorf("variant 2 not symmetric: %v", v2)
	}
	v3, err := Variant3.Normalize(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dense.Sum(v3)/4-0.5) > 1e-12 {
		t.Errorf("variant 3 average ≠ 1/k: %v", v3)
	}
}

func TestGoldStandardFullyLabeled(t *testing.T) {
	// On a fully labeled planted graph the measured GS equals the planted
	// pair-count distribution row-normalized.
	H := HFromSkew(8)
	res, err := gen.Generate(gen.Config{
		N: 3000, M: 30000, Alpha: gen.Balanced(3), H: H, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	gs, err := GoldStandard(res.Graph.Adj, res.Labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d := dense.FrobeniusDist(gs, H); d > 0.02 {
		t.Errorf("gold standard L2 from planted H = %v\n%v", d, gs)
	}
}

func TestExplicitNBPowersErrors(t *testing.T) {
	w := pathGraph(t)
	if _, err := ExplicitNBPowers(w, 0); err == nil {
		t.Error("expected lmax<1 error")
	}
	one, err := ExplicitNBPowers(w, 1)
	if err != nil || len(one) != 1 {
		t.Fatalf("lmax=1: %v %d", err, len(one))
	}
}
