package core

import (
	"math/rand/v2"
	"testing"

	"factorgraph/internal/gen"
	"factorgraph/internal/labels"
	"factorgraph/internal/metrics"
)

// TestDCErOnWeightedGraph: the estimators operate on the weighted
// adjacency matrix W throughout (§2.1); label-independent edge weights
// must not bias the estimate.
func TestDCErOnWeightedGraph(t *testing.T) {
	H := HFromSkew(8)
	res, err := gen.Generate(gen.Config{
		N: 5000, M: 60000, Alpha: gen.Balanced(3), H: H, Seed: 31, WeightJitter: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(31, 1))
	sample, err := labels.SampleStratified(res.Labels, 3, 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	sums, err := Summarize(res.Graph.Adj, sample, 3, DefaultSummaryOptions())
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateDCE(sums, DefaultDCErOptions())
	if err != nil {
		t.Fatal(err)
	}
	if d := metrics.L2(est, H); d > 0.15 {
		t.Errorf("DCEr on weighted graph: L2 = %v\n%v", d, est)
	}
}

// TestGoldStandardWeighted: weighted neighbor statistics still recover the
// planted H on a fully labeled weighted graph.
func TestGoldStandardWeighted(t *testing.T) {
	H := HFromSkew(3)
	res, err := gen.Generate(gen.Config{
		N: 3000, M: 30000, Alpha: gen.Balanced(3), H: H, Seed: 33, WeightJitter: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	gs, err := GoldStandard(res.Graph.Adj, res.Labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	if d := metrics.L2(gs, H); d > 0.03 {
		t.Errorf("weighted gold standard L2 = %v", d)
	}
}
