// Package datasets provides synthetic replicas of the 8 real-world graphs
// of Section 5.3. The original graphs are not redistributable/downloadable
// in this offline environment, so each replica is generated with the
// dataset's published statistics: the exact node/edge/class counts of
// Figure 8 and the full gold-standard compatibility matrix printed in
// Figure 13. Class-imbalance vectors α are chosen from the datasets'
// documented semantics (see each entry) since the paper does not print
// them; the estimation problem — recover H from a sparsely labeled graph
// whose edge structure follows H — is preserved exactly.
package datasets

import (
	"fmt"
	"math"

	"factorgraph/internal/dense"
	"factorgraph/internal/gen"
)

// Dataset describes one real-world graph replica.
type Dataset struct {
	Name string
	// N, M, K are the published node, edge and class counts (Figure 8).
	N, M, K int
	// AvgDegree is the published average degree d (Figure 8).
	AvgDegree float64
	// Alpha is the class distribution used for the replica (chosen from
	// dataset semantics; see Description).
	Alpha []float64
	// H is the published gold-standard compatibility matrix (Figure 13),
	// rebalanced to exactly doubly stochastic (the printed values are
	// rounded to 2 decimals) via Sinkhorn iteration.
	H *dense.Matrix
	// Homophilous records whether the paper classifies the gold-standard
	// compatibilities as homophile (Figures 7i–7p: first 3 homophily,
	// last 5 arbitrary heterophily).
	Homophilous bool
	// Description explains the dataset and the α substitution.
	Description string
}

// sinkhorn rebalances a (rounded) symmetric nonnegative matrix to doubly
// stochastic. Local copy to keep the package free of core dependencies.
func sinkhorn(m *dense.Matrix, iters int) *dense.Matrix {
	out := m.Clone()
	k := out.Rows
	for it := 0; it < iters; it++ {
		for i := 0; i < k; i++ {
			row := out.Row(i)
			s := 0.0
			for _, v := range row {
				s += v
			}
			if s > 0 {
				for j := range row {
					row[j] /= s
				}
			}
		}
		cs := dense.ColSums(out)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if cs[j] > 0 {
					out.Data[i*k+j] /= cs[j]
				}
			}
		}
		out = dense.Symmetrize(out)
	}
	return out
}

func balanced(name string, n, m, k int, d float64, alpha []float64, rows [][]float64, homophilous bool, desc string) Dataset {
	h := sinkhorn(dense.Symmetrize(dense.FromRows(rows)), 200)
	var sum float64
	for _, a := range alpha {
		sum += a
	}
	for i := range alpha {
		alpha[i] /= sum
	}
	return Dataset{Name: name, N: n, M: m, K: k, AvgDegree: d, Alpha: alpha, H: h, Homophilous: homophilous, Description: desc}
}

// All returns the 8 datasets in the paper's order (Figure 8).
func All() []Dataset {
	return []Dataset{
		Cora(), Citeseer(), HepTh(), MovieLens(), Enron(), Prop37(), PokecGender(), Flickr(),
	}
}

// ByName looks a dataset up case-sensitively by its Figure 8 name.
func ByName(name string) (Dataset, error) {
	for _, d := range All() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("datasets: unknown dataset %q", name)
}

// Replica generates the synthetic stand-in graph at 1/scale size: n and m
// are divided by scale (preserving the average degree), the class
// distribution and compatibility matrix stay exact. scale=1 reproduces the
// published size. Degrees follow the power-law family used for the paper's
// synthetic experiments.
func (d Dataset) Replica(scale int, seed uint64) (*gen.Result, error) {
	if scale < 1 {
		return nil, fmt.Errorf("datasets: scale %d, want ≥ 1", scale)
	}
	n := d.N / scale
	m := d.M / scale
	if n < 10*d.K {
		return nil, fmt.Errorf("datasets: scale %d leaves only %d nodes for %d classes", scale, n, d.K)
	}
	return gen.Generate(gen.Config{
		N:     n,
		M:     m,
		Alpha: append([]float64(nil), d.Alpha...),
		H:     d.H,
		Dist:  gen.PowerLaw{Exponent: 0.3},
		Seed:  seed,
		// Plant edge mass ∝ H itself: the published matrices are the
		// row-normalized neighbor counts measured on the real graphs and
		// are doubly stochastic, i.e. every class carries equal total
		// degree mass. Planting E = H makes the replica's measured gold
		// standard equal the published H exactly, including under class
		// imbalance (classes with fewer nodes get higher average degree,
		// as in the real tripartite graphs).
		EdgeMass: d.H,
	})
}

// Skew returns the max/min ratio of the gold-standard compatibilities,
// ignoring zero entries (the paper's measure of "skews of compatibilities
// by orders of magnitude").
func (d Dataset) Skew() float64 {
	lo, hi := math.Inf(1), 0.0
	for _, v := range d.H.Data {
		if v <= 0 {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo == math.Inf(1) || lo == 0 {
		return 0
	}
	return hi / lo
}

// Cora: citation graph of 2708 ML publications in 7 categories
// (neural nets, rule learning, reinforcement learning, probabilistic
// methods, theory, genetic algorithms, case based). Strongly homophilous.
// α follows the published per-category paper counts.
func Cora() Dataset {
	return balanced("Cora", 2708, 10858, 7, 8.0,
		[]float64{818, 426, 217, 351, 418, 298, 180},
		[][]float64{
			{0.81, 0.01, 0.04, 0.05, 0.06, 0.01, 0.02},
			{0.01, 0.79, 0.02, 0.02, 0.09, 0.01, 0.07},
			{0.04, 0.02, 0.81, 0.02, 0.03, 0.05, 0.04},
			{0.05, 0.02, 0.02, 0.84, 0.05, 0.00, 0.02},
			{0.06, 0.09, 0.03, 0.05, 0.70, 0.01, 0.06},
			{0.01, 0.01, 0.05, 0.00, 0.01, 0.90, 0.02},
			{0.02, 0.07, 0.04, 0.02, 0.06, 0.02, 0.78},
		}, true,
		"Citation graph, 7 ML topics; homophilous. α: published class sizes.")
}

// Citeseer: citation graph of 3312 CS publications in 6 categories
// (agents, IR, DB, AI, HCI, ML). Homophilous. α follows the published
// per-category counts.
func Citeseer() Dataset {
	return balanced("Citeseer", 3312, 9428, 6, 5.7,
		[]float64{596, 668, 701, 249, 508, 590},
		[][]float64{
			{0.77, 0.00, 0.01, 0.13, 0.05, 0.03},
			{0.00, 0.75, 0.06, 0.06, 0.03, 0.10},
			{0.01, 0.06, 0.77, 0.10, 0.03, 0.03},
			{0.13, 0.06, 0.10, 0.48, 0.06, 0.17},
			{0.05, 0.03, 0.03, 0.06, 0.81, 0.02},
			{0.03, 0.10, 0.03, 0.17, 0.02, 0.64},
		}, true,
		"Citation graph, 6 CS areas; homophilous. α: published class sizes.")
}

// HepTh: arXiv High Energy Physics Theory citations, nodes labeled by one
// of 11 publication years (1993–2003). Near-diagonal band structure
// (papers cite recent papers). α grows over the years, mirroring arXiv's
// growth.
func HepTh() Dataset {
	return balanced("Hep-Th", 27770, 352807, 11, 25.4,
		[]float64{3, 5, 6, 7, 8, 9, 10, 11, 12, 13, 16},
		[][]float64{
			{0.10, 0.11, 0.14, 0.11, 0.11, 0.08, 0.08, 0.08, 0.04, 0.08, 0.08},
			{0.11, 0.09, 0.12, 0.12, 0.10, 0.08, 0.09, 0.09, 0.05, 0.06, 0.09},
			{0.14, 0.12, 0.11, 0.13, 0.11, 0.10, 0.09, 0.06, 0.03, 0.03, 0.06},
			{0.11, 0.12, 0.13, 0.15, 0.12, 0.10, 0.08, 0.06, 0.03, 0.04, 0.06},
			{0.11, 0.10, 0.11, 0.12, 0.17, 0.13, 0.08, 0.07, 0.03, 0.02, 0.05},
			{0.08, 0.08, 0.10, 0.10, 0.13, 0.18, 0.12, 0.08, 0.04, 0.03, 0.06},
			{0.08, 0.09, 0.09, 0.08, 0.08, 0.12, 0.17, 0.13, 0.07, 0.03, 0.06},
			{0.08, 0.09, 0.06, 0.06, 0.07, 0.08, 0.13, 0.16, 0.14, 0.08, 0.07},
			{0.04, 0.05, 0.03, 0.03, 0.03, 0.04, 0.07, 0.14, 0.28, 0.17, 0.11},
			{0.08, 0.06, 0.03, 0.04, 0.02, 0.03, 0.03, 0.08, 0.17, 0.26, 0.20},
			{0.08, 0.09, 0.06, 0.06, 0.05, 0.06, 0.06, 0.07, 0.11, 0.20, 0.16},
		}, true,
		"arXiv Hep-Th citations, 11 publication years; weak banded homophily. α: growing yearly volume.")
}

// MovieLens: tripartite recommender graph with users, movies and tags —
// nodes of one class link almost exclusively to the other classes
// (heterophily; zero movie–movie edges). α reflects the tripartite
// composition (movies and tags dominate node counts).
func MovieLens() Dataset {
	return balanced("MovieLens", 26850, 336742, 3, 25.0,
		[]float64{0.30, 0.40, 0.30},
		[][]float64{
			{0.08, 0.45, 0.47},
			{0.45, 0.02, 0.53},
			{0.47, 0.53, 0.00},
		}, false,
		"Tripartite users/movies/tags recommender graph; heterophilous. α: plausible tripartite split (not published).")
}

// Enron: heterogeneous email network with 4 node types: person, email
// address, message and topic. Messages connect to topics and addresses;
// people connect to addresses — a mixed homophily/heterophily pattern.
func Enron() Dataset {
	return balanced("Enron", 46463, 613838, 4, 26.4,
		[]float64{0.05, 0.30, 0.60, 0.05},
		[][]float64{
			{0.62, 0.24, 0.00, 0.14},
			{0.24, 0.06, 0.55, 0.16},
			{0.00, 0.55, 0.00, 0.45},
			{0.14, 0.16, 0.45, 0.25},
		}, false,
		"Heterogeneous email graph (person/address/message/topic); mixed compatibilities. α: messages dominate (not published).")
}

// Prop37: Twitter discussion graph of the California Prop-37 ballot
// initiative, with users, tweets and words. Compatibilities are graded
// rather than two-valued — the case where the H/L heuristic collapses
// (Figure 12).
func Prop37() Dataset {
	return balanced("Prop-37", 62383, 2167809, 3, 69.4,
		[]float64{0.15, 0.55, 0.30},
		[][]float64{
			{0.35, 0.26, 0.38},
			{0.26, 0.12, 0.61},
			{0.38, 0.61, 0.00},
		}, false,
		"Twitter users/tweets/words around Prop-37; graded heterophily. α: tweets dominate (not published).")
}

// PokecGender: Slovak social network with 1.6M people labeled by gender;
// more interaction edges between opposite genders (mild heterophily).
func PokecGender() Dataset {
	return balanced("Pokec-Gender", 1632803, 30622564, 2, 37.5,
		[]float64{0.5, 0.5},
		[][]float64{
			{0.44, 0.56},
			{0.56, 0.44},
		}, false,
		"Social network labeled by gender; mild heterophily. α: balanced genders.")
}

// Flickr: users, their uploaded pictures and picture groups; pictures
// connect to users and groups (heterophily, zero group–group edges).
func Flickr() Dataset {
	return balanced("Flickr", 2007369, 18147504, 3, 18.1,
		[]float64{0.20, 0.70, 0.10},
		[][]float64{
			{0.17, 0.32, 0.51},
			{0.32, 0.19, 0.49},
			{0.51, 0.49, 0.00},
		}, false,
		"Users/pictures/groups image-sharing graph; heterophilous. α: pictures dominate (not published).")
}
