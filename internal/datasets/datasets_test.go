package datasets

import (
	"math"
	"testing"

	"factorgraph/internal/dense"
)

func TestAllDatasetsWellFormed(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("%d datasets, want 8", len(all))
	}
	for _, d := range all {
		t.Run(d.Name, func(t *testing.T) {
			if d.N <= 0 || d.M <= 0 || d.K < 2 {
				t.Errorf("bad stats n=%d m=%d k=%d", d.N, d.M, d.K)
			}
			if len(d.Alpha) != d.K {
				t.Errorf("alpha has %d entries for k=%d", len(d.Alpha), d.K)
			}
			var sum float64
			for _, a := range d.Alpha {
				if a <= 0 {
					t.Errorf("non-positive alpha %v", a)
				}
				sum += a
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("alpha sums to %v", sum)
			}
			if d.H.Rows != d.K || d.H.Cols != d.K {
				t.Errorf("H is %d×%d for k=%d", d.H.Rows, d.H.Cols, d.K)
			}
			// H must be exactly symmetric doubly stochastic after
			// rebalancing, and within ~rounding distance of the published
			// figure-13 values (2-decimal rounding ⇒ entries move < 0.03).
			for i := 0; i < d.K; i++ {
				rs := 0.0
				for j := 0; j < d.K; j++ {
					rs += d.H.At(i, j)
					if math.Abs(d.H.At(i, j)-d.H.At(j, i)) > 1e-9 {
						t.Errorf("H asymmetric at (%d,%d)", i, j)
					}
					if d.H.At(i, j) < 0 {
						t.Errorf("H negative at (%d,%d)", i, j)
					}
				}
				if math.Abs(rs-1) > 1e-6 {
					t.Errorf("H row %d sums to %v", i, rs)
				}
			}
			if d.Description == "" {
				t.Error("missing description")
			}
		})
	}
}

func TestPublishedValuesPreserved(t *testing.T) {
	// Rebalancing must stay close to the printed Figure-13 values.
	ml := MovieLens()
	published := dense.FromRows([][]float64{
		{0.08, 0.45, 0.47},
		{0.45, 0.02, 0.53},
		{0.47, 0.53, 0.00},
	})
	if d := dense.FrobeniusDist(ml.H, published); d > 0.05 {
		t.Errorf("MovieLens H moved %v from published values:\n%v", d, ml.H)
	}
	pokec := PokecGender()
	if math.Abs(pokec.H.At(0, 1)-0.56) > 0.01 {
		t.Errorf("Pokec H01 = %v, want ≈0.56", pokec.H.At(0, 1))
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("Cora")
	if err != nil || d.Name != "Cora" {
		t.Errorf("ByName(Cora): %v %v", d.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("expected unknown-dataset error")
	}
}

func TestReplicaSmallScale(t *testing.T) {
	for _, d := range []Dataset{Cora(), MovieLens()} {
		res, err := d.Replica(4, 1)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if res.Graph.N != d.N/4 {
			t.Errorf("%s: n=%d want %d", d.Name, res.Graph.N, d.N/4)
		}
		if res.Graph.M != d.M/4 {
			t.Errorf("%s: m=%d want %d", d.Name, res.Graph.M, d.M/4)
		}
		// Average degree preserved within 5%.
		if got, want := res.Graph.AvgDegree(), 2*float64(d.M)/float64(d.N); math.Abs(got-want)/want > 0.05 {
			t.Errorf("%s: avg degree %v, want ≈%v", d.Name, got, want)
		}
	}
}

func TestReplicaErrors(t *testing.T) {
	d := Cora()
	if _, err := d.Replica(0, 1); err == nil {
		t.Error("expected scale<1 error")
	}
	if _, err := d.Replica(1000000, 1); err == nil {
		t.Error("expected too-small error")
	}
}

func TestSkew(t *testing.T) {
	if s := MovieLens().Skew(); s < 5 {
		t.Errorf("MovieLens skew %v, want large", s)
	}
	if s := PokecGender().Skew(); math.Abs(s-0.56/0.44) > 0.05 {
		t.Errorf("Pokec skew %v", s)
	}
}

func TestHomophilyFlags(t *testing.T) {
	homo := map[string]bool{"Cora": true, "Citeseer": true, "Hep-Th": true}
	for _, d := range All() {
		if d.Homophilous != homo[d.Name] {
			t.Errorf("%s homophilous=%v", d.Name, d.Homophilous)
		}
	}
}
