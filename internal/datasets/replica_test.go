package datasets

import (
	"testing"

	"factorgraph/internal/core"
	"factorgraph/internal/dense"
)

// TestReplicaMeasuredGoldStandardMatchesPublished is the key fidelity
// property of the replicas: the gold-standard compatibilities measured on
// the fully labeled replica must equal the published Figure-13 matrices,
// including for datasets with strong class imbalance (the EdgeMass
// planting makes this exact up to rounding of integer edge counts).
func TestReplicaMeasuredGoldStandardMatchesPublished(t *testing.T) {
	// Scales keep per-pair edge counts large enough that integer rounding
	// and pair-capacity effects stay below the tolerance (tiny replicas of
	// Enron cannot host the person–person edge mass on 58 person nodes).
	scales := map[string]int{"Flickr": 40, "MovieLens": 8, "Enron": 8, "Citeseer": 2}
	for _, d := range []Dataset{Flickr(), MovieLens(), Enron(), Citeseer()} {
		res, err := d.Replica(scales[d.Name], 9)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		gs, err := core.GoldStandard(res.Graph.Adj, res.Labels, d.K)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if l2 := dense.FrobeniusDist(gs, d.H); l2 > 0.02 {
			t.Errorf("%s: measured GS is %v away from published H\nmeasured:\n%vpublished:\n%v",
				d.Name, l2, gs, d.H)
		}
	}
}

// TestReplicaClassDegreeMass: with EdgeMass = H (doubly stochastic), each
// class carries ~equal total degree regardless of its node count.
func TestReplicaClassDegreeMass(t *testing.T) {
	d := Flickr() // α = [0.2, 0.7, 0.1]: strong imbalance
	res, err := d.Replica(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	degs := res.Graph.Degrees()
	mass := make([]float64, d.K)
	for i, c := range res.Labels {
		mass[c] += degs[i]
	}
	total := 0.0
	for _, m := range mass {
		total += m
	}
	for c, m := range mass {
		if frac := m / total; frac < 0.30 || frac > 0.37 {
			t.Errorf("class %d degree mass fraction %v, want ≈1/3", c, frac)
		}
	}
}
