// Package delta implements streaming graph mutations: a copy-on-write
// delta overlay over a frozen CSR adjacency matrix, so a live serving
// engine can accept online edge insertions, deletions and node additions
// without rebuilding the graph.
//
// The representation is a base CSR plus a sparse map of fully-merged
// per-node patch rows: the first mutation touching a node copies its base
// row once, and every later mutation of that node edits the copy in place.
// Unpatched rows read straight through to the base, so the overlay
// implements the execution layer's RowIterator contract (internal/exec)
// with the same slice-scan inner loops as a plain CSR — kernels cannot
// tell a mutated graph from a frozen one.
//
// Publication is epoch-based: a published *Graph is immutable. A mutator
// calls Clone (O(patched rows) — shallow row sharing with copy-on-write),
// applies its batch to the clone, and swaps the clone in under whatever
// lock serializes readers (the serving engine's write lock). Concurrent
// readers therefore always see a consistent topology, and in-flight
// iterations over the previous epoch stay valid because the rows they
// alias are never edited.
//
// Once the patched fraction of stored entries passes a threshold, the
// owner compacts: Compact merges base and patches into a fresh canonical
// CSR — bit-identical to what a cold build of the same edge set would
// construct, so spectral radii and ε-scalings re-derived from it match a
// cold engine exactly — and the overlay restarts empty over the new base.
package delta

import (
	"fmt"
	"sort"

	"factorgraph/internal/dense"
	"factorgraph/internal/sparse"
)

// row is one merged patched adjacency row: the base row with every
// mutation applied, sorted by column. wts nil means all stored entries
// are 1 (same convention as the CSR). shared marks a row still owned by
// an older published epoch; it is copied before the first write.
type row struct {
	cols []int32
	wts  []float64
	// absDelta is Σ|w_new − w_old| over this row's mutated entries since
	// the last compaction — a Gershgorin-style row bound on the mutation
	// matrix ΔW, so ρ(ΔW) ≤ max absDelta and the owner can bound spectral
	// drift without a power iteration.
	absDelta float64
	shared   bool
}

// Graph is a mutable adjacency matrix: base CSR + copy-on-write patch
// rows. The zero value is not usable; call New. A published Graph is
// immutable — mutate a Clone and swap it in (see the package comment).
type Graph struct {
	base *sparse.CSR
	n    int
	rows map[int32]*row

	nnz     int // current stored entries across base + patches
	patched int // stored entries living in patched rows
	diag    int // stored diagonal entries (for the undirected edge count)

	maxAbsDelta float64 // max row absDelta since the last compaction

	setEdges, removedEdges, addedNodes int64 // cumulative mutation counters
	compactions                        int64
}

// New wraps a frozen base CSR with an empty overlay.
func New(base *sparse.CSR) *Graph {
	return &Graph{
		base: base,
		n:    base.N,
		rows: make(map[int32]*row),
		nnz:  base.NNZ(),
		diag: countDiag(base),
	}
}

func countDiag(c *sparse.CSR) int {
	d := 0
	for i := 0; i < c.N; i++ {
		lo, hi := c.IndPtr[i], c.IndPtr[i+1]
		r := c.Indices[lo:hi]
		p := sort.Search(len(r), func(p int) bool { return r[p] >= int32(i) })
		if p < len(r) && r[p] == int32(i) {
			d++
		}
	}
	return d
}

// Dim returns the current node count (base nodes plus added nodes).
func (g *Graph) Dim() int { return g.n }

// NNZ returns the current stored-entry count.
func (g *Graph) NNZ() int { return g.nnz }

// Base returns the frozen base CSR of the current epoch.
func (g *Graph) Base() *sparse.CSR { return g.base }

// Dirty reports whether the overlay diverges from its base (patched rows
// or added nodes).
func (g *Graph) Dirty() bool { return len(g.rows) > 0 || g.n != g.base.N }

// PatchedEntries returns how many stored entries live in patch rows.
func (g *Graph) PatchedEntries() int { return g.patched }

// PatchedFraction returns the share of stored entries living in patch
// rows — the compaction trigger. An empty graph reports 0.
func (g *Graph) PatchedFraction() float64 {
	if g.nnz == 0 {
		if g.patched > 0 || g.n != g.base.N {
			return 1
		}
		return 0
	}
	return float64(g.patched) / float64(g.nnz)
}

// UndirectedEdges returns the undirected edge count m (off-diagonal
// entries appear twice in the symmetric matrix, diagonal ones once).
func (g *Graph) UndirectedEdges() int { return (g.nnz-g.diag)/2 + g.diag }

// RhoDeltaBound returns a Gershgorin-style upper bound on ρ(ΔW) for the
// symmetric mutation matrix ΔW accumulated since the last compaction:
// the maximum over rows of Σ|Δw|. The owner uses ρ(W') ≤ ρ(W_base) +
// RhoDeltaBound() to guard the pinned ε-scaling's contraction margin
// without running a power iteration per mutation.
func (g *Graph) RhoDeltaBound() float64 { return g.maxAbsDelta }

// Stats reports the cumulative mutation counters.
type Stats struct {
	SetEdges     int64 `json:"set_edges"`
	RemovedEdges int64 `json:"removed_edges"`
	AddedNodes   int64 `json:"added_nodes"`
	Compactions  int64 `json:"compactions"`
}

// Stats returns the cumulative mutation counters (they survive
// compactions and clones).
func (g *Graph) Stats() Stats {
	return Stats{
		SetEdges: g.setEdges, RemovedEdges: g.removedEdges,
		AddedNodes: g.addedNodes, Compactions: g.compactions,
	}
}

// Row returns node u's merged adjacency row (RowIterator contract). The
// slices alias overlay or base storage and must be treated as frozen.
func (g *Graph) Row(u int) ([]int32, []float64) {
	if r, ok := g.rows[int32(u)]; ok {
		return r.cols, r.wts
	}
	if u >= g.base.N {
		return nil, nil // added node with no edges yet
	}
	return g.base.Row(u)
}

// MulDenseInto computes out = W × X row-parallel on the shared worker
// pool, merged rows included (RowIterator contract).
func (g *Graph) MulDenseInto(out, x *dense.Matrix) {
	if x.Rows != g.n {
		panic(fmt.Sprintf("delta: MulDense shape mismatch: W is %d×%d, X has %d rows", g.n, g.n, x.Rows))
	}
	if out.Rows != g.n || out.Cols != x.Cols {
		panic(fmt.Sprintf("delta: MulDenseInto bad out shape %d×%d, want %d×%d", out.Rows, out.Cols, g.n, x.Cols))
	}
	k := x.Cols
	sparse.ParallelRows(g.n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			orow := out.Data[i*k : (i+1)*k]
			for j := range orow {
				orow[j] = 0
			}
			cols, wts := g.Row(i)
			if wts == nil {
				for _, col := range cols {
					xrow := x.Data[int(col)*k : int(col+1)*k]
					for j, v := range xrow {
						orow[j] += v
					}
				}
			} else {
				for p, col := range cols {
					wv := wts[p]
					xrow := x.Data[int(col)*k : int(col+1)*k]
					for j, v := range xrow {
						orow[j] += wv * v
					}
				}
			}
		}
	})
}

// Clone returns a mutable copy sharing every row copy-on-write. The
// receiver must be treated as frozen afterwards (publish-then-clone is the
// mutation protocol; see the package comment).
func (g *Graph) Clone() *Graph {
	out := *g
	out.rows = make(map[int32]*row, len(g.rows))
	for node, r := range g.rows {
		r.shared = true // benign on the frozen original: never written again
		out.rows[node] = r
	}
	mEpochs.Inc()
	mOverlayFraction.Set(g.PatchedFraction())
	return &out
}

// AddNodes appends count isolated nodes (ids n..n+count-1) and returns the
// new node count. New nodes acquire edges through SetEdge.
func (g *Graph) AddNodes(count int) int {
	g.n += count
	g.addedNodes += int64(count)
	return g.n
}

// patchRow returns the writable merged row for node, materializing it from
// the base (or copying a shared clone) on first write.
func (g *Graph) patchRow(node int32) *row {
	r, ok := g.rows[node]
	if ok {
		if r.shared {
			cp := &row{
				cols:     append([]int32(nil), r.cols...),
				absDelta: r.absDelta,
			}
			if r.wts != nil {
				cp.wts = append([]float64(nil), r.wts...)
			}
			g.rows[node] = cp
			return cp
		}
		return r
	}
	r = &row{}
	if int(node) < g.base.N {
		cols, wts := g.base.Row(int(node))
		r.cols = append([]int32(nil), cols...)
		if wts != nil {
			r.wts = append([]float64(nil), wts...)
		}
		g.patched += len(r.cols)
	}
	g.rows[node] = r
	return r
}

// set upserts the directed entry (u → v) and returns its previous weight
// (0 when absent).
func (g *Graph) set(u, v int32, w float64) (old float64) {
	r := g.patchRow(u)
	p := sort.Search(len(r.cols), func(i int) bool { return r.cols[i] >= v })
	if p < len(r.cols) && r.cols[p] == v {
		old = 1
		if r.wts != nil {
			old = r.wts[p]
		}
		if w != old && r.wts == nil {
			r.materializeWts()
		}
		if r.wts != nil {
			r.wts[p] = w
		}
	} else {
		r.cols = append(r.cols, 0)
		copy(r.cols[p+1:], r.cols[p:])
		r.cols[p] = v
		if r.wts != nil {
			r.wts = append(r.wts, 0)
			copy(r.wts[p+1:], r.wts[p:])
			r.wts[p] = w
		} else if w != 1 {
			r.materializeWts()
			r.wts[p] = w
		}
		g.nnz++
		g.patched++
		if u == v {
			g.diag++
		}
	}
	r.absDelta += abs(w - old)
	if r.absDelta > g.maxAbsDelta {
		g.maxAbsDelta = r.absDelta
	}
	return old
}

// remove deletes the directed entry (u → v), reporting its previous weight.
func (g *Graph) remove(u, v int32) (old float64, existed bool) {
	r := g.patchRow(u)
	p := sort.Search(len(r.cols), func(i int) bool { return r.cols[i] >= v })
	if p >= len(r.cols) || r.cols[p] != v {
		return 0, false
	}
	old = 1
	if r.wts != nil {
		old = r.wts[p]
		r.wts = append(r.wts[:p], r.wts[p+1:]...)
	}
	r.cols = append(r.cols[:p], r.cols[p+1:]...)
	g.nnz--
	g.patched--
	if u == v {
		g.diag--
	}
	r.absDelta += abs(old)
	if r.absDelta > g.maxAbsDelta {
		g.maxAbsDelta = r.absDelta
	}
	return old, true
}

func (r *row) materializeWts() {
	r.wts = make([]float64, len(r.cols))
	for i := range r.wts {
		r.wts[i] = 1
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// SetEdge upserts the undirected edge (u, v) with weight w, patching both
// symmetric entries, and returns the previous weight (0 when the edge was
// absent). Endpoints must be in [0, Dim()) and w > 0; the caller
// validates — this is the storage layer.
func (g *Graph) SetEdge(u, v int, w float64) (old float64) {
	old = g.set(int32(u), int32(v), w)
	if u != v {
		g.set(int32(v), int32(u), w)
	}
	g.setEdges++
	return old
}

// RemoveEdge deletes the undirected edge (u, v) from both symmetric rows,
// returning its previous weight; existed is false (and the graph is
// unchanged) when the edge was not present.
func (g *Graph) RemoveEdge(u, v int) (old float64, existed bool) {
	old, existed = g.remove(int32(u), int32(v))
	if !existed {
		return 0, false
	}
	if u != v {
		g.remove(int32(v), int32(u))
	}
	g.removedEdges++
	return old, true
}

// Compact merges the base and the overlay into a fresh canonical CSR:
// rows ordered, columns sorted, and the implicit all-ones representation
// restored when every weight is 1 — bit-identical to a cold
// NewSymmetricFromEdges build of the same edge set, so anything re-derived
// from it (spectral radius, ε) matches a cold engine exactly. The receiver
// is not modified; call ResetBase with the result to start a new epoch.
func (g *Graph) Compact() *sparse.CSR {
	mCompacts.Inc()
	indptr := make([]int, g.n+1)
	indices := make([]int32, 0, g.nnz)
	data := make([]float64, 0, g.nnz)
	allOnes := true
	for i := 0; i < g.n; i++ {
		cols, wts := g.Row(i)
		indices = append(indices, cols...)
		if wts == nil {
			for range cols {
				data = append(data, 1)
			}
		} else {
			for _, w := range wts {
				if w != 1 {
					allOnes = false
				}
				data = append(data, w)
			}
		}
		indptr[i+1] = len(indices)
	}
	out := &sparse.CSR{N: g.n, IndPtr: indptr, Indices: indices}
	if !allOnes {
		out.Data = data
	}
	return out
}

// CompactOrdered is Compact followed by the locality-aware node-reordering
// pass: the merged CSR is relabeled by mode ("degree" or "rcm", see
// sparse.OrderBy) so that hot rows and near neighbors share cache lines in
// every subsequent kernel scan. It returns the permuted canonical CSR and
// the scatter map newID (newID[old] = new row), or (Compact(), nil) when
// the mode is the identity. The permuted matrix is bit-identical to a cold
// ordered build of the same edge set; the caller owns translating ids at
// its boundaries (the engine composes newID into its sparse.Perm) and must
// renumber any node-indexed state it carries across the epoch swap.
//
// Only the synchronous compaction path reorders: Rebase's row reuse is
// keyed by node id and pointer equality against the frozen epoch, which a
// renumbering would break — an asynchronously compacted epoch therefore
// keeps the ordering of its predecessor (established at build or at the
// last synchronous compaction).
func (g *Graph) CompactOrdered(mode string) (*sparse.CSR, []int32) {
	csr := g.Compact()
	newID := sparse.OrderBy(csr, mode)
	if newID == nil {
		return csr, nil
	}
	return csr.Permute(newID), newID
}

// Compacted returns the successor epoch of a compaction: a fresh Graph
// over base (normally the CSR Compact just produced) with an empty
// overlay, carrying the cumulative mutation counters. The receiver is not
// modified — published epochs stay immutable.
func (g *Graph) Compacted(base *sparse.CSR) *Graph {
	out := *g
	out.ResetBase(base)
	return &out
}

// Rebase returns the successor epoch of an asynchronous compaction: base
// is the canonical CSR compacted from the frozen epoch, and the receiver
// is the live epoch that kept accepting mutations while that build ran.
// The copy-on-write protocol makes the separation exact — a row whose
// pointer still equals the frozen epoch's was never written after the
// capture and is fully covered by base, while a diverged or new row holds
// the post-capture mutations merged over content base already includes, so
// carrying it as a patch row over the new base reproduces the live
// topology bit-for-bit. Kept rows mark shared (they are still aliased by
// the receiver, which stays published until the owner swaps the result
// in). nnz/diag carry over (the live edge set is unchanged); absDelta on
// kept rows accumulates since the OLD base, so the carried drift bound
// stays a conservative upper bound on ρ(ΔW) versus the new base. The
// receiver is not modified beyond the shared marks; when the receiver IS
// the frozen epoch the result degenerates to Compacted(base).
func (g *Graph) Rebase(frozen *Graph, base *sparse.CSR) *Graph {
	out := &Graph{
		base: base,
		n:    g.n,
		rows: make(map[int32]*row),
		nnz:  g.nnz,
		diag: g.diag,

		setEdges: g.setEdges, removedEdges: g.removedEdges,
		addedNodes:  g.addedNodes,
		compactions: g.compactions + 1,
	}
	reused, carried := int64(0), int64(0)
	for node, r := range g.rows {
		if fr, ok := frozen.rows[node]; ok && fr == r {
			reused++
			continue // untouched since the capture: base covers it
		}
		carried++
		r.shared = true
		out.rows[node] = r
		out.patched += len(r.cols)
		if r.absDelta > out.maxAbsDelta {
			out.maxAbsDelta = r.absDelta
		}
	}
	mRebaseReused.Add(reused)
	mRebaseCarried.Add(carried)
	mOverlayFraction.Set(out.PatchedFraction())
	return out
}

// Degrees returns the weighted degree (row sum) of every live row — the
// diagonal of the degree matrix D over base + overlay. Together with Dim
// and MulDenseInto it lets the summaries layer sketch a dirty overlay
// directly, without compacting first.
func (g *Graph) Degrees() []float64 {
	d := make([]float64, g.n)
	for i := 0; i < g.n; i++ {
		cols, wts := g.Row(i)
		if wts == nil {
			d[i] = float64(len(cols))
			continue
		}
		var s float64
		for _, w := range wts {
			s += w
		}
		d[i] = s
	}
	return d
}

// ResetBase starts a fresh epoch over base (normally the CSR Compact just
// produced): the overlay empties, the spectral drift bound resets, and the
// cumulative mutation counters carry over.
func (g *Graph) ResetBase(base *sparse.CSR) {
	g.base = base
	g.n = base.N
	g.rows = make(map[int32]*row)
	g.nnz = base.NNZ()
	g.patched = 0
	g.diag = countDiag(base)
	g.maxAbsDelta = 0
	g.compactions++
	// The previous epoch's patched share is gone; without this the global
	// overlay gauge reads stale until the next Clone.
	mOverlayFraction.Set(0)
}

// MemoryBytes estimates the overlay's resident bytes beyond the base CSR:
// patch-row payloads plus map and slice overhead.
func (g *Graph) MemoryBytes() int64 {
	var b int64
	for _, r := range g.rows {
		b += 4 * int64(cap(r.cols))
		if r.wts != nil {
			b += 8 * int64(cap(r.wts))
		}
		b += 96 // row struct + two slice headers + map bucket share
	}
	return b
}
