package delta

import (
	"math/rand"
	"reflect"
	"testing"

	"factorgraph/internal/dense"
	"factorgraph/internal/sparse"
)

// buildCSR constructs the canonical CSR of an undirected edge set the same
// way a cold graph build does.
func buildCSR(t *testing.T, n int, edges map[[2]int32]float64) *sparse.CSR {
	t.Helper()
	var list [][2]int32
	var wts []float64
	allOnes := true
	for e, w := range edges {
		list = append(list, e)
		wts = append(wts, w)
		if w != 1 {
			allOnes = false
		}
	}
	if allOnes {
		wts = nil
	}
	csr, err := sparse.NewSymmetricFromEdges(n, list, wts)
	if err != nil {
		t.Fatal(err)
	}
	return csr
}

func key(u, v int32) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{u, v}
}

// TestDeltaFuzzAgainstRebuild drives a random add/remove/upsert/grow
// sequence through the overlay and checks, after every batch, that every
// row matches a cold CSR rebuild of the tracked edge set — including
// NNZ/diag accounting and the undirected edge count.
func TestDeltaFuzzAgainstRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 30
	edges := map[[2]int32]float64{}
	for len(edges) < 60 {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		edges[key(u, v)] = 1
	}
	g := New(buildCSR(t, n, edges))

	check := func(step int) {
		t.Helper()
		want := buildCSR(t, n, edges)
		if g.Dim() != n {
			t.Fatalf("step %d: dim %d want %d", step, g.Dim(), n)
		}
		if g.NNZ() != want.NNZ() {
			t.Fatalf("step %d: nnz %d want %d", step, g.NNZ(), want.NNZ())
		}
		for i := 0; i < n; i++ {
			gc, gw := g.Row(i)
			wc, ww := want.Row(i)
			if !equalRows(gc, gw, wc, ww) {
				t.Fatalf("step %d: row %d = (%v, %v), want (%v, %v)", step, i, gc, gw, wc, ww)
			}
		}
		wantM := 0
		for range edges {
			wantM++
		}
		if g.UndirectedEdges() != wantM {
			t.Fatalf("step %d: edges %d want %d", step, g.UndirectedEdges(), wantM)
		}
	}

	for step := 0; step < 200; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // add or upsert
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			w := 1.0
			if rng.Intn(3) == 0 {
				w = 1 + rng.Float64()
			}
			g.SetEdge(int(u), int(v), w)
			edges[key(u, v)] = w
		case op < 7: // remove (possibly absent)
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			_, existed := g.RemoveEdge(int(u), int(v))
			if _, ok := edges[key(u, v)]; ok != existed {
				t.Fatalf("step %d: remove(%d,%d) existed=%v want %v", step, u, v, existed, ok)
			}
			delete(edges, key(u, v))
		case op < 8: // grow
			g.AddNodes(1)
			n++
		case op < 9: // epoch churn: publish + clone (CoW isolation)
			pub := g
			pubRows := snapshotRows(pub)
			g = pub.Clone()
			// Mutate the clone heavily, then verify the published epoch
			// still reads exactly as snapshotted.
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			g.SetEdge(int(u), int(v), 1)
			edges[key(u, v)] = 1
			for node, want := range pubRows {
				gc, gw := pub.Row(node)
				if !equalRows(gc, gw, want.cols, want.wts) {
					t.Fatalf("step %d: published row %d mutated by clone", step, node)
				}
			}
		default: // compact mid-stream
			csr := g.Compact()
			g = g.Compacted(csr)
			if g.Dirty() {
				t.Fatalf("step %d: dirty right after compaction", step)
			}
		}
		check(step)
	}
	if st := g.Stats(); st.SetEdges == 0 || st.RemovedEdges == 0 {
		t.Fatalf("counters not maintained: %+v", st)
	}
}

type rowSnap struct {
	cols []int32
	wts  []float64
}

func snapshotRows(g *Graph) map[int]rowSnap {
	out := make(map[int]rowSnap)
	for i := 0; i < g.Dim(); i++ {
		c, w := g.Row(i)
		out[i] = rowSnap{cols: append([]int32(nil), c...), wts: append([]float64(nil), w...)}
	}
	return out
}

func equalRows(ac []int32, aw []float64, bc []int32, bw []float64) bool {
	if len(ac) != len(bc) {
		return false
	}
	for i := range ac {
		if ac[i] != bc[i] {
			return false
		}
		wa, wb := 1.0, 1.0
		if aw != nil {
			wa = aw[i]
		}
		if bw != nil {
			wb = bw[i]
		}
		if wa != wb {
			return false
		}
	}
	return true
}

// TestDeltaCompactCanonical: the compacted CSR must be bit-identical to a
// cold build of the same edge set — IndPtr, Indices and the implicit
// all-ones collapse — so ρ(W) and ε re-derived from it match a cold engine
// exactly (the parity guarantee rides on this).
func TestDeltaCompactCanonical(t *testing.T) {
	n := 12
	edges := map[[2]int32]float64{
		{0, 1}: 1, {1, 2}: 1, {2, 3}: 1, {4, 4}: 1, {3, 7}: 1,
	}
	g := New(buildCSR(t, n, edges))
	g.SetEdge(5, 6, 1)
	edges[key(5, 6)] = 1
	g.RemoveEdge(1, 2)
	delete(edges, key(1, 2))
	g.AddNodes(2)
	n += 2
	g.SetEdge(12, 0, 1)
	edges[key(12, 0)] = 1

	got := g.Compact()
	want := buildCSR(t, n, edges)
	if !reflect.DeepEqual(got.IndPtr, want.IndPtr) || !reflect.DeepEqual(got.Indices, want.Indices) {
		t.Fatalf("compacted structure differs:\n got %v %v\nwant %v %v", got.IndPtr, got.Indices, want.IndPtr, want.Indices)
	}
	if got.Data != nil || want.Data != nil {
		t.Fatalf("all-ones graph compacted with explicit weights: got %v want %v", got.Data, want.Data)
	}
	if got.SpectralRadius(50) != want.SpectralRadius(50) {
		t.Fatal("spectral radius of compacted CSR differs from cold build")
	}

	// Weighted variant keeps explicit data.
	g.SetEdge(2, 3, 2.5)
	edges[key(2, 3)] = 2.5
	got = g.Compact()
	want = buildCSR(t, n, edges)
	if !reflect.DeepEqual(got.Data, want.Data) {
		t.Fatalf("weighted compacted data differs:\n got %v\nwant %v", got.Data, want.Data)
	}
}

// TestDeltaMulDense: the overlay multiply must agree with the compacted
// CSR's multiply on the same dense operand.
func TestDeltaMulDense(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 40
	edges := map[[2]int32]float64{}
	for len(edges) < 80 {
		edges[key(int32(rng.Intn(n)), int32(rng.Intn(n)))] = 1 + rng.Float64()
	}
	g := New(buildCSR(t, n, edges))
	for i := 0; i < 25; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if rng.Intn(2) == 0 {
			g.SetEdge(u, v, rng.Float64()*2)
		} else {
			g.RemoveEdge(u, v)
		}
	}
	x := dense.New(n, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	got := dense.New(n, 3)
	g.MulDenseInto(got, x)
	want := dense.New(n, 3)
	g.Compact().MulDenseInto(want, x)
	for i := range got.Data {
		if d := got.Data[i] - want.Data[i]; d > 1e-12 || d < -1e-12 {
			t.Fatalf("MulDense mismatch at %d: %g vs %g", i, got.Data[i], want.Data[i])
		}
	}
}

// TestDeltaRhoBoundAndFraction pins the drift bound and the compaction
// trigger accounting.
func TestDeltaRhoBoundAndFraction(t *testing.T) {
	edges := map[[2]int32]float64{{0, 1}: 1, {1, 2}: 1, {2, 0}: 1}
	g := New(buildCSR(t, 3, edges))
	if g.RhoDeltaBound() != 0 || g.PatchedFraction() != 0 {
		t.Fatal("fresh overlay not clean")
	}
	g.SetEdge(0, 2, 3) // was 1 → |Δ| = 2 on rows 0 and 2
	if b := g.RhoDeltaBound(); b != 2 {
		t.Fatalf("rho bound %v, want 2", b)
	}
	g.RemoveEdge(0, 1) // row 0 accumulates |−1| → 3
	if b := g.RhoDeltaBound(); b != 3 {
		t.Fatalf("rho bound %v, want 3", b)
	}
	if f := g.PatchedFraction(); f <= 0 || f > 1 {
		t.Fatalf("patched fraction %v out of range", f)
	}
	if g.MemoryBytes() <= 0 {
		t.Fatal("overlay memory unaccounted")
	}
	g = g.Compacted(g.Compact())
	if g.RhoDeltaBound() != 0 || g.PatchedFraction() != 0 || g.MemoryBytes() != 0 {
		t.Fatal("compaction did not reset the overlay")
	}
	if g.Stats().Compactions != 1 {
		t.Fatal("compaction counter not carried")
	}
}
