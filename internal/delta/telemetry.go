package delta

import "factorgraph/internal/telemetry"

var (
	mEpochs = telemetry.Default().Counter("fg_delta_epochs_published_total",
		"Delta-overlay epochs published (one Clone per mutation batch).")
	mCompacts = telemetry.Default().Counter("fg_delta_compactions_total",
		"Overlay-to-canonical CSR compaction builds.")
	mRebaseReused = telemetry.Default().Counter("fg_delta_rebase_rows_reused_total",
		"Rebase rows dropped because the compacted base already covers them.")
	mRebaseCarried = telemetry.Default().Counter("fg_delta_rebase_rows_carried_total",
		"Rebase rows carried as patch rows over the new base (mutated mid-build).")
	// mOverlayFraction tracks the patched-entry share of the most recently
	// published epoch — the value the engine's compaction trigger compares
	// against CompactFraction.
	mOverlayFraction = telemetry.Default().Gauge("fg_delta_overlay_fraction",
		"Patched-entry fraction of the last published delta-overlay epoch.")
)
