// Package dense implements the small dense-matrix kernel used throughout the
// reproduction: n×k belief matrices and k×k compatibility matrices.
//
// Matrices are stored row-major in a single contiguous slice. The package is
// deliberately minimal — only the operations the paper's algorithms need —
// but every operation validates its shapes so misuse fails loudly rather
// than silently corrupting an experiment.
package dense

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a row-major dense matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// New returns a zero-valued Rows×Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("dense: negative dimensions %d×%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("dense: ragged rows: row %d has %d cols, want %d", i, len(r), c))
		}
		copy(m.Data[i*c:(i+1)*c], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Constant returns a rows×cols matrix with every entry equal to v.
func Constant(rows, cols int, v float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = v
	}
	return m
}

// At returns the entry at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.Data[i*m.Cols+j]
}

// Set stores v at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("dense: index (%d,%d) out of range %d×%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns the i-th row as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("dense: row %d out of range %d", i, m.Rows))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// CopyFrom overwrites m with the contents of src (shapes must match).
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("dense: CopyFrom shape mismatch %d×%d vs %d×%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// String renders the matrix with 4 decimal places, one row per line.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%7.4f", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Equal reports whether the two matrices have the same shape and entries
// within tolerance tol.
func Equal(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}
