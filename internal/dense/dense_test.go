package dense

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewAndAt(t *testing.T) {
	m := New(2, 3)
	if m.Rows != 2 || m.Cols != 3 || len(m.Data) != 6 {
		t.Fatalf("bad shape: %+v", m)
	}
	m.Set(1, 2, 4.5)
	if got := m.At(1, 2); got != 4.5 {
		t.Errorf("At(1,2) = %v, want 4.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Errorf("At(0,0) = %v, want 0", got)
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Errorf("FromRows wrong entries: %v", m)
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows != 0 || m.Cols != 0 {
		t.Errorf("empty FromRows: %+v", m)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Errorf("I(%d,%d) = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !Equal(got, want, 1e-12) {
		t.Errorf("Mul = %v, want %v", got, want)
	}
}

func TestMulIdentity(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	a := randMat(r, 4, 4)
	if !Equal(Mul(a, Identity(4)), a, 1e-12) {
		t.Error("A·I ≠ A")
	}
	if !Equal(Mul(Identity(4), a), a, 1e-12) {
		t.Error("I·A ≠ A")
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on shape mismatch")
		}
	}()
	Mul(New(2, 3), New(2, 3))
}

// Property: matrix multiplication is associative, (AB)C = A(BC).
func TestMulAssociativeProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	f := func() bool {
		a, b, c := randMat(r, 3, 4), randMat(r, 4, 2), randMat(r, 2, 5)
		return Equal(Mul(Mul(a, b), c), Mul(a, Mul(b, c)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := Transpose(a)
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Errorf("Transpose wrong: %v", at)
	}
}

// Property: (AB)ᵀ = BᵀAᵀ.
func TestTransposeMulProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	f := func() bool {
		a, b := randMat(r, 3, 4), randMat(r, 4, 2)
		return Equal(Transpose(Mul(a, b)), Mul(Transpose(b), Transpose(a)), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 5}})
	if got := Add(a, b); !Equal(got, FromRows([][]float64{{4, 7}}), 0) {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(b, a); !Equal(got, FromRows([][]float64{{2, 3}}), 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := Scale(a, 2); !Equal(got, FromRows([][]float64{{2, 4}}), 0) {
		t.Errorf("Scale = %v", got)
	}
	c := a.Clone()
	AddInPlace(c, b)
	if !Equal(c, FromRows([][]float64{{4, 7}}), 0) {
		t.Errorf("AddInPlace = %v", c)
	}
	d := a.Clone()
	ScaleInPlace(d, -1)
	if !Equal(d, FromRows([][]float64{{-1, -2}}), 0) {
		t.Errorf("ScaleInPlace = %v", d)
	}
	if got := AddScalar(a, 10); !Equal(got, FromRows([][]float64{{11, 12}}), 0) {
		t.Errorf("AddScalar = %v", got)
	}
}

func TestFrobenius(t *testing.T) {
	a := FromRows([][]float64{{3, 4}})
	if got := Frobenius(a); math.Abs(got-5) > 1e-12 {
		t.Errorf("Frobenius = %v, want 5", got)
	}
	b := FromRows([][]float64{{0, 0}})
	if got := FrobeniusDist(a, b); math.Abs(got-5) > 1e-12 {
		t.Errorf("FrobeniusDist = %v, want 5", got)
	}
}

func TestDot(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	if got := Dot(a, b); got != 5+12+21+32 {
		t.Errorf("Dot = %v", got)
	}
}

func TestRowColSums(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	rs := RowSums(a)
	if rs[0] != 3 || rs[1] != 7 {
		t.Errorf("RowSums = %v", rs)
	}
	cs := ColSums(a)
	if cs[0] != 4 || cs[1] != 6 {
		t.Errorf("ColSums = %v", cs)
	}
	if Sum(a) != 10 {
		t.Errorf("Sum = %v", Sum(a))
	}
}

func TestRowNormalize(t *testing.T) {
	a := FromRows([][]float64{{2, 2}, {0, 0}, {1, 3}})
	got := RowNormalize(a)
	want := FromRows([][]float64{{0.5, 0.5}, {0, 0}, {0.25, 0.75}})
	if !Equal(got, want, 1e-12) {
		t.Errorf("RowNormalize = %v", got)
	}
}

// Property: RowNormalize yields row sums of 1 for positive matrices.
func TestRowNormalizeStochasticProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	f := func() bool {
		a := randPosMat(r, 4, 4)
		for _, s := range RowSums(RowNormalize(a)) {
			if math.Abs(s-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSymNormalizePreservesSymmetry(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	got := SymNormalize(a)
	if math.Abs(got.At(0, 1)-got.At(1, 0)) > 1e-12 {
		t.Errorf("SymNormalize broke symmetry: %v", got)
	}
	// diag entries: 2/3 and 3/4
	if math.Abs(got.At(0, 0)-2.0/3) > 1e-12 || math.Abs(got.At(1, 1)-3.0/4) > 1e-12 {
		t.Errorf("SymNormalize diagonal wrong: %v", got)
	}
}

func TestScaleNormalize(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {1, 1}})
	got := ScaleNormalize(a)
	// average entry must be 1/k = 1/2
	if math.Abs(Sum(got)/4-0.5) > 1e-12 {
		t.Errorf("ScaleNormalize avg = %v, want 0.5", Sum(got)/4)
	}
	z := New(2, 2)
	if !Equal(ScaleNormalize(z), z, 0) {
		t.Error("ScaleNormalize of zero matrix should be zero")
	}
}

func TestPower(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {0, 1}})
	if !Equal(Power(a, 0), Identity(2), 0) {
		t.Error("a⁰ ≠ I")
	}
	if !Equal(Power(a, 3), FromRows([][]float64{{1, 3}, {0, 1}}), 1e-12) {
		t.Errorf("a³ = %v", Power(a, 3))
	}
	ps := Powers(a, 3)
	if len(ps) != 3 || !Equal(ps[2], Power(a, 3), 1e-12) {
		t.Errorf("Powers wrong: %v", ps)
	}
}

func TestSymmetrize(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {4, 3}})
	got := Symmetrize(a)
	want := FromRows([][]float64{{1, 3}, {3, 3}})
	if !Equal(got, want, 1e-12) {
		t.Errorf("Symmetrize = %v", got)
	}
}

func TestMaxAbs(t *testing.T) {
	a := FromRows([][]float64{{1, -7}, {4, 3}})
	if MaxAbs(a) != 7 {
		t.Errorf("MaxAbs = %v", MaxAbs(a))
	}
}

func TestArgmaxRows(t *testing.T) {
	a := FromRows([][]float64{{1, 3, 2}, {5, 5, 1}, {-2, -1, -3}})
	got := ArgmaxRows(a)
	want := []int{1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ArgmaxRows[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSpectralRadiusSym(t *testing.T) {
	// Known eigenvalues: diag(3, 1) rotated is still {3, 1}.
	a := FromRows([][]float64{{2, 1}, {1, 2}}) // eigenvalues 3 and 1
	if got := SpectralRadiusSym(a, 200); math.Abs(got-3) > 1e-6 {
		t.Errorf("SpectralRadiusSym = %v, want 3", got)
	}
	z := New(3, 3)
	if got := SpectralRadiusSym(z, 10); got != 0 {
		t.Errorf("zero matrix radius = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage")
	}
}

func TestString(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	if a.String() == "" {
		t.Error("empty String()")
	}
}

func randMat(r *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.NormFloat64()
	}
	return m
}

func randPosMat(r *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = r.Float64() + 0.01
	}
	return m
}
