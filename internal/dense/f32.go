package dense

import "fmt"

// Matrix32 is the float32 twin of Matrix: the storage tier behind
// EngineOptions.F32Beliefs. Belief propagation on memory-bandwidth-bound
// graphs spends its time streaming n×k rows; halving the element width
// halves that traffic. It deliberately mirrors only the operations the f32
// propagation path needs — everything else stays float64.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32 // row-major, len Rows*Cols
}

// New32 allocates a zeroed rows×cols float32 matrix.
func New32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("dense: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix32) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// FillFrom overwrites m with src, narrowing each entry to float32.
func (m *Matrix32) FillFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("dense: FillFrom shape %dx%d from %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for i, v := range src.Data {
		m.Data[i] = float32(v)
	}
}

// StoreTo widens m into dst (float64).
func (m *Matrix32) StoreTo(dst *Matrix) {
	if m.Rows != dst.Rows || m.Cols != dst.Cols {
		panic(fmt.Sprintf("dense: StoreTo shape %dx%d to %dx%d", m.Rows, m.Cols, dst.Rows, dst.Cols))
	}
	for i, v := range m.Data {
		dst.Data[i] = float64(v)
	}
}
