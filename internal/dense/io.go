package dense

import (
	"encoding/json"
	"fmt"
	"io"
)

// matrixJSON is the on-disk form of a Matrix: explicit rows keep the file
// human-readable and diffable (compatibility matrices are tiny).
type matrixJSON struct {
	Rows [][]float64 `json:"rows"`
}

// WriteJSON serializes the matrix as {"rows": [[...], ...]}.
func WriteJSON(w io.Writer, m *Matrix) error {
	rows := make([][]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		rows[i] = append([]float64(nil), m.Row(i)...)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(matrixJSON{Rows: rows})
}

// ReadJSON parses a matrix written by WriteJSON, validating that the rows
// are rectangular and non-empty.
func ReadJSON(r io.Reader) (*Matrix, error) {
	var mj matrixJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&mj); err != nil {
		return nil, fmt.Errorf("dense: decoding matrix JSON: %w", err)
	}
	if len(mj.Rows) == 0 {
		return nil, fmt.Errorf("dense: matrix JSON has no rows")
	}
	cols := len(mj.Rows[0])
	if cols == 0 {
		return nil, fmt.Errorf("dense: matrix JSON has empty rows")
	}
	for i, row := range mj.Rows {
		if len(row) != cols {
			return nil, fmt.Errorf("dense: matrix JSON row %d has %d entries, want %d", i, len(row), cols)
		}
	}
	return FromRows(mj.Rows), nil
}
