package dense

import (
	"bytes"
	"strings"
	"testing"
)

func TestMatrixJSONRoundTrip(t *testing.T) {
	m := FromRows([][]float64{{0.2, 0.6, 0.2}, {0.6, 0.2, 0.2}, {0.2, 0.2, 0.6}})
	var buf bytes.Buffer
	if err := WriteJSON(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(m, back, 0) {
		t.Errorf("round trip changed matrix:\n%v vs\n%v", m, back)
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"rows": []}`,
		`{"rows": [[]]}`,
		`{"rows": [[1,2],[3]]}`,
	}
	for _, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}
