package dense

import (
	"fmt"
	"math"
)

// Mul returns a × b. Shapes must be compatible (a.Cols == b.Rows).
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("dense: Mul shape mismatch %d×%d × %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	MulInto(out, a, b)
	return out
}

// MulInto computes out = a × b, reusing out's storage. out must not alias a
// or b.
func MulInto(out, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("dense: MulInto shape mismatch %d×%d × %d×%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("dense: MulInto bad out shape %d×%d, want %d×%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	n, k, c := a.Rows, a.Cols, b.Cols
	for i := 0; i < n; i++ {
		orow := out.Data[i*c : (i+1)*c]
		for j := range orow {
			orow[j] = 0
		}
		arow := a.Data[i*k : (i+1)*k]
		for l, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[l*c : (l+1)*c]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// Transpose returns the transpose of m.
func Transpose(m *Matrix) *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Add returns a + b.
func Add(a, b *Matrix) *Matrix {
	sameShape("Add", a, b)
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// Sub returns a − b.
func Sub(a, b *Matrix) *Matrix {
	sameShape("Sub", a, b)
	out := a.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// AddInPlace sets a += b.
func AddInPlace(a, b *Matrix) {
	sameShape("AddInPlace", a, b)
	for i, v := range b.Data {
		a.Data[i] += v
	}
}

// Scale returns c·m as a new matrix.
func Scale(m *Matrix, c float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= c
	}
	return out
}

// ScaleInPlace multiplies every entry of m by c.
func ScaleInPlace(m *Matrix, c float64) {
	for i := range m.Data {
		m.Data[i] *= c
	}
}

// AddScalar returns m + c applied entry-wise (the paper's "broadcasting
// notation", footnote 3).
func AddScalar(m *Matrix, c float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += c
	}
	return out
}

// Frobenius returns the Frobenius norm sqrt(Σ m_ij²).
func Frobenius(m *Matrix) float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// FrobeniusDist returns ||a − b||_F.
func FrobeniusDist(a, b *Matrix) float64 {
	sameShape("FrobeniusDist", a, b)
	var s float64
	for i := range a.Data {
		d := a.Data[i] - b.Data[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Dot returns the entry-wise inner product <a, b> = Σ a_ij·b_ij.
func Dot(a, b *Matrix) float64 {
	sameShape("Dot", a, b)
	var s float64
	for i := range a.Data {
		s += a.Data[i] * b.Data[i]
	}
	return s
}

// RowSums returns the vector of row sums (M·1 in the paper's notation).
func RowSums(m *Matrix) []float64 {
	s := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var t float64
		for _, v := range m.Row(i) {
			t += v
		}
		s[i] = t
	}
	return s
}

// ColSums returns the vector of column sums.
func ColSums(m *Matrix) []float64 {
	s := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j, v := range m.Row(i) {
			s[j] += v
		}
	}
	return s
}

// Sum returns the sum of all entries (1ᵀM1).
func Sum(m *Matrix) float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// RowNormalize returns diag(M1)⁻¹·M, the row-stochastic normalization
// (normalization variant 1, Eq. 9). Rows whose sum is zero are left as-is.
func RowNormalize(m *Matrix) *Matrix {
	out := m.Clone()
	for i := 0; i < m.Rows; i++ {
		var t float64
		row := out.Row(i)
		for _, v := range row {
			t += v
		}
		if t == 0 {
			continue
		}
		for j := range row {
			row[j] /= t
		}
	}
	return out
}

// SymNormalize returns diag(M1)^(−1/2)·M·diag(M1)^(−1/2), the LGC-style
// symmetric normalization (normalization variant 2, Eq. 10). Rows with zero
// sum contribute zero scaling.
func SymNormalize(m *Matrix) *Matrix {
	if m.Rows != m.Cols {
		panic("dense: SymNormalize requires a square matrix")
	}
	sums := RowSums(m)
	inv := make([]float64, len(sums))
	for i, s := range sums {
		if s > 0 {
			inv[i] = 1 / math.Sqrt(s)
		}
	}
	out := m.Clone()
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[i*m.Cols+j] *= inv[i] * inv[j]
		}
	}
	return out
}

// ScaleNormalize returns k·(1ᵀM1)⁻¹·M so the average entry is 1/k
// (normalization variant 3, Eq. 11).
func ScaleNormalize(m *Matrix) *Matrix {
	if m.Rows != m.Cols {
		panic("dense: ScaleNormalize requires a square matrix")
	}
	total := Sum(m)
	if total == 0 {
		return m.Clone()
	}
	return Scale(m, float64(m.Rows)/total)
}

// Power returns mᵖ for a square matrix m and p ≥ 0 (m⁰ = I).
func Power(m *Matrix, p int) *Matrix {
	if m.Rows != m.Cols {
		panic("dense: Power requires a square matrix")
	}
	if p < 0 {
		panic("dense: negative matrix power")
	}
	out := Identity(m.Rows)
	for i := 0; i < p; i++ {
		out = Mul(out, m)
	}
	return out
}

// Powers returns the slice [m¹, m², …, mᵖ].
func Powers(m *Matrix, p int) []*Matrix {
	out := make([]*Matrix, p)
	cur := m.Clone()
	for i := 0; i < p; i++ {
		out[i] = cur
		if i+1 < p {
			cur = Mul(cur, m)
		}
	}
	return out
}

// Symmetrize returns (m + mᵀ)/2.
func Symmetrize(m *Matrix) *Matrix {
	if m.Rows != m.Cols {
		panic("dense: Symmetrize requires a square matrix")
	}
	out := m.Clone()
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (m.Data[i*n+j] + m.Data[j*n+i]) / 2
			out.Data[i*n+j] = v
			out.Data[j*n+i] = v
		}
	}
	return out
}

// MaxAbs returns the largest absolute entry.
func MaxAbs(m *Matrix) float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// ArgmaxRows returns, for each row, the index of its maximum entry. Ties
// resolve to the lowest index, matching the paper's label(·) operator.
func ArgmaxRows(m *Matrix) []int {
	return ArgmaxRowsInto(nil, m)
}

// ArgmaxRowsInto is ArgmaxRows reusing dst when it has sufficient capacity;
// hot loops (LinBP's label-stability early stop) call it once per iteration.
func ArgmaxRowsInto(dst []int, m *Matrix) []int {
	if cap(dst) < m.Rows {
		dst = make([]int, m.Rows)
	}
	dst = dst[:m.Rows]
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		best, bi := math.Inf(-1), 0
		for j, v := range row {
			if v > best {
				best, bi = v, j
			}
		}
		dst[i] = bi
	}
	return dst
}

// SpectralRadiusSym estimates the spectral radius of a symmetric matrix by
// power iteration. For symmetric matrices the spectral radius equals the
// 2-norm, so power iteration on m converges to it.
func SpectralRadiusSym(m *Matrix, iters int) float64 {
	if m.Rows != m.Cols {
		panic("dense: SpectralRadiusSym requires a square matrix")
	}
	n := m.Rows
	if n == 0 {
		return 0
	}
	// Deterministic non-degenerate start vector.
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 + float64(i%7)/7
	}
	w := make([]float64, n)
	var lambda float64
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			var s float64
			row := m.Data[i*n : (i+1)*n]
			for j, mv := range row {
				s += mv * v[j]
			}
			w[i] = s
		}
		var norm float64
		for _, x := range w {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0
		}
		for i := range w {
			v[i] = w[i] / norm
		}
		lambda = norm
	}
	return lambda
}

func sameShape(op string, a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("dense: %s shape mismatch %d×%d vs %d×%d", op, a.Rows, a.Cols, b.Rows, b.Cols))
	}
}
