package dense

import (
	"math"
	"testing"
)

func TestConstant(t *testing.T) {
	c := Constant(2, 3, 0.5)
	for _, v := range c.Data {
		if v != 0.5 {
			t.Fatalf("Constant entry %v", v)
		}
	}
}

func TestMulIntoAliasSafeShapes(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{1, 0}, {0, 1}})
	out := New(2, 2)
	MulInto(out, a, b)
	if !Equal(out, a, 0) {
		t.Errorf("MulInto identity wrong: %v", out)
	}
}

func TestMulIntoPanics(t *testing.T) {
	a := New(2, 3)
	b := New(3, 2)
	for _, out := range []*Matrix{New(3, 2), New(2, 3)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for bad out shape")
				}
			}()
			MulInto(out, a, b)
		}()
	}
}

func TestPowerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative power")
		}
	}()
	Power(Identity(2), -1)
}

func TestPowerNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-square")
		}
	}()
	Power(New(2, 3), 2)
}

func TestSymNormalizeZeroRow(t *testing.T) {
	m := FromRows([][]float64{{0, 0}, {0, 4}})
	got := SymNormalize(m)
	if got.At(0, 0) != 0 || got.At(0, 1) != 0 {
		t.Errorf("zero row should stay zero: %v", got)
	}
	if math.Abs(got.At(1, 1)-1) > 1e-12 {
		t.Errorf("SymNormalize(4/4) = %v", got.At(1, 1))
	}
}

func TestRowNormalizeZeroRowPreserved(t *testing.T) {
	m := FromRows([][]float64{{0, 0}, {1, 1}})
	got := RowNormalize(m)
	if got.At(0, 0) != 0 || got.At(0, 1) != 0 {
		t.Errorf("zero row changed: %v", got)
	}
}

func TestAddScalarAndBroadcastConsistency(t *testing.T) {
	// The paper's "broadcasting notation" (footnote 3): X + c applied
	// entry-wise. Verify AddScalar(X,c) − X is the constant matrix.
	x := FromRows([][]float64{{1, 2}, {3, 4}})
	diff := Sub(AddScalar(x, 0.25), x)
	if !Equal(diff, Constant(2, 2, 0.25), 1e-12) {
		t.Errorf("broadcast inconsistency: %v", diff)
	}
}

func TestCopyFromPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on shape mismatch")
		}
	}()
	New(2, 2).CopyFrom(New(3, 3))
}

func TestRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on bad row")
		}
	}()
	New(2, 2).Row(5)
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative dims")
		}
	}()
	New(-1, 2)
}

func TestSpectralRadiusSymNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	SpectralRadiusSym(New(2, 3), 10)
}

func TestSymmetrizeNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Symmetrize(New(2, 3))
}

func TestEqualShapes(t *testing.T) {
	if Equal(New(2, 2), New(2, 3), 1) {
		t.Error("different shapes reported equal")
	}
}
