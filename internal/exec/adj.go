package exec

import "factorgraph/internal/dense"

// RowIterator is the adjacency access every execution kernel needs: row
// iteration for the push/pull schedules and the dense multiply for sweeps.
// *sparse.CSR is the canonical frozen implementation; internal/delta's
// copy-on-write overlay is the mutable one, so a kernel written against
// this interface serves streaming topology mutations transparently.
//
// The contract is deliberately row-granular: Row returns the full adjacency
// row as two slices (weights nil means implicit all-ones), so the per-edge
// inner loops stay branch-light slice scans and the interface cost is one
// dynamic call per row, not per edge. Returned slices may alias internal
// storage and must not be mutated or retained across a mutation of the
// underlying matrix; every caller in this repository reads them under the
// lock that freezes the topology.
type RowIterator interface {
	// Dim returns the node count n (the matrix is n×n).
	Dim() int
	// NNZ returns the number of stored entries.
	NNZ() int
	// Row returns node u's column indices (sorted) and weights; a nil
	// weight slice means every stored entry is 1.
	Row(u int) (cols []int32, weights []float64)
	// MulDenseInto computes out = W × X for a dense n×k matrix X. out
	// must not alias x.
	MulDenseInto(out, x *dense.Matrix)
}
