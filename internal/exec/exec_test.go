package exec

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"factorgraph/internal/dense"
	"factorgraph/internal/sparse"
)

// TestRunnerRowsIndexed: every index in [0, n) is visited exactly once,
// chunk ids stay below MaxChunks, and a chunk id is never shared by two
// concurrent ranges (per-chunk scratch would race otherwise).
func TestRunnerRowsIndexed(t *testing.T) {
	for _, workers := range []int{0, 1, 3} {
		r := Runner{Workers: workers}
		for _, n := range []int{0, 1, 7, 1000} {
			seen := make([]int32, n)
			r.RowsIndexed(n, func(chunk, lo, hi int) {
				if chunk < 0 || chunk >= r.MaxChunks() {
					t.Errorf("workers=%d n=%d: chunk %d outside [0,%d)", workers, n, chunk, r.MaxChunks())
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

// ring builds a weighted ring graph with a couple of chords per node.
func ring(t *testing.T, n int) *sparse.CSR {
	t.Helper()
	edges := make([][2]int32, 0, 2*n)
	weights := make([]float64, 0, 2*n)
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int32{int32(i), int32((i + 1) % n)})
		weights = append(weights, 1)
		edges = append(edges, [2]int32{int32(i), int32((i + 7) % n)})
		weights = append(weights, 0.5)
	}
	w, err := sparse.NewSymmetricFromEdges(n, edges, weights)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// pullFixture builds a (W, H̃, F, R) quadruple with a dirty frontier. The
// scaled H̃ has spectral norm well below 1 so drains contract.
func pullFixture(t *testing.T, n, k int, dirtyFrac float64, seed int64) (w *sparse.CSR, hs, f, r *dense.Matrix, norms []float64, active []int32) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w = ring(t, n)
	hs = dense.New(k, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			hs.Set(i, j, (rng.Float64()-0.5)*0.05) // ‖εWH̃‖ ≪ 1 on a ring
		}
	}
	f = dense.New(n, k)
	r = dense.New(n, k)
	norms = make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			f.Set(i, j, rng.Float64())
		}
		if rng.Float64() < dirtyFrac {
			norm := 0.0
			for j := 0; j < k; j++ {
				v := rng.Float64() - 0.5
				r.Set(i, j, v)
				if math.Abs(v) > norm {
					norm = math.Abs(v)
				}
			}
			norms[i] = norm
			active = append(active, int32(i))
		}
	}
	return w, hs, f, r, norms, active
}

// applyA computes out = W · (m · H̃), the contraction the drain applies.
func applyA(w *sparse.CSR, hs, m *dense.Matrix) *dense.Matrix {
	mh := dense.Mul(m, hs)
	return w.MulDense(mh)
}

// TestPullPassConvergesToInvariant: after a drain, F must equal the exact
// solution F0 + (I − A)⁻¹ R0 within the tolerance bound, and every norm
// must be at or below tolerance — for every schedule: the parallel pull
// rounds (both candidate-discovery and full-scan flavors), the pinned
// single-worker execution of the same pull schedule (which must agree
// bitwise — Jacobi is schedule-deterministic), and the sequential
// Gauss–Seidel scatter.
func TestPullPassConvergesToInvariant(t *testing.T) {
	const n, k, tol = 600, 3, 1e-10
	for _, dirtyFrac := range []float64{0.05, 0.5} { // below and above the full-scan density
		w, hs, f0, r0, _, _ := pullFixture(t, n, k, dirtyFrac, 7)

		// Reference: F* = F0 + Σ_{i≥0} A^i R0, summed until exhaustion.
		want := f0.Clone()
		acc := r0.Clone()
		for i := 0; i < 200; i++ {
			dense.AddInPlace(want, acc)
			acc = applyA(w, hs, acc)
			if dense.MaxAbs(acc) < 1e-14 {
				break
			}
		}

		drains := map[string]func(p *PullPass, active []int32) (int, int, int, []int32){
			"pull":        func(p *PullPass, a []int32) (int, int, int, []int32) { return p.drainPull(a, 0) },
			"pull-seq":    func(p *PullPass, a []int32) (int, int, int, []int32) { return p.drainPull(a, 0) },
			"scatter":     func(p *PullPass, a []int32) (int, int, int, []int32) { return p.drainScatter(a, 0) },
			"auto-select": func(p *PullPass, a []int32) (int, int, int, []int32) { return p.Drain(a, 0) },
		}
		workersFor := map[string]int{"pull": 0, "pull-seq": 1, "scatter": 0, "auto-select": 0}
		results := map[string]*dense.Matrix{}
		for name, drain := range drains {
			f := f0.Clone()
			r := r0.Clone()
			norms := make([]float64, n)
			var active []int32
			for i := 0; i < n; i++ {
				norms[i] = infRow(r.Row(i))
				if norms[i] > tol {
					active = append(active, int32(i))
				}
			}
			p := NewPullPass(w, hs, f, r, norms, tol, Runner{Workers: workersFor[name]})
			pushed, edges, rounds, remaining := drain(p, active)
			if remaining != nil {
				t.Fatalf("%s frac=%v: unbounded drain returned remaining frontier", name, dirtyFrac)
			}
			if pushed == 0 || edges == 0 || rounds == 0 {
				t.Fatalf("%s frac=%v: drain did no work: pushed=%d edges=%d rounds=%d", name, dirtyFrac, pushed, edges, rounds)
			}
			for i := range norms {
				if norms[i] > tol {
					t.Fatalf("%s frac=%v: node %d left at norm %g > tol", name, dirtyFrac, i, norms[i])
				}
			}
			// F + (I−A)⁻¹ R must still be the invariant: with R ≤ tol the
			// belief error against the exact solution is O(tol/(1−s)).
			worst := 0.0
			for i := range f.Data {
				if d := math.Abs(f.Data[i] - want.Data[i]); d > worst {
					worst = d
				}
			}
			if worst > 1e-8 {
				t.Errorf("%s frac=%v: drained beliefs off the exact solution by %g", name, dirtyFrac, worst)
			}
			results[name] = f
		}
		// The Jacobi pull schedule is worker-count-deterministic: the same
		// arithmetic runs, only on different goroutines.
		for i := range results["pull"].Data {
			if d := math.Abs(results["pull"].Data[i] - results["pull-seq"].Data[i]); d > 1e-12 {
				t.Fatalf("frac=%v: pull diverges across worker counts by %g at %d", dirtyFrac, d, i)
			}
		}
	}
}

// TestPullPassBudget: a tight edge budget stops the drain between rounds
// with an exact remaining frontier the caller can resume.
func TestPullPassBudget(t *testing.T) {
	const n, k, tol = 600, 3, 1e-12
	w, hs, f, r, norms, active := pullFixture(t, n, k, 0.8, 11)
	p := NewPullPass(w, hs, f, r, norms, tol, Runner{})
	pushed, edges, _, remaining := p.Drain(active, 1) // one round's worth at most
	if remaining == nil {
		t.Fatal("tight budget drained cleanly")
	}
	if edges <= 1 || pushed == 0 {
		t.Fatalf("no work before budget stop: pushed=%d edges=%d", pushed, edges)
	}
	for _, v := range remaining {
		if norms[v] <= tol {
			t.Fatalf("remaining frontier lists clean node %d", v)
		}
	}
	// Resuming with no budget finishes the job.
	if _, _, _, rem2 := p.Drain(remaining, 0); rem2 != nil {
		t.Fatal("resumed drain did not finish")
	}
	for i, v := range norms {
		if v > tol {
			t.Fatalf("node %d left dirty after resume (%g)", i, v)
		}
	}
}

// TestDenseRoundMatchesNaive: the fused dense round equals the naive
// two-multiply composition.
func TestDenseRoundMatchesNaive(t *testing.T) {
	const n, k = 200, 4
	rng := rand.New(rand.NewSource(3))
	w := ring(t, n)
	h := dense.New(k, k)
	f := dense.New(n, k)
	for i := range h.Data {
		h.Data[i] = rng.Float64() - 0.5
	}
	for i := range f.Data {
		f.Data[i] = rng.Float64()
	}
	want := w.MulDense(dense.Mul(f, h))
	fh, wfh := dense.New(n, k), dense.New(n, k)
	got := dense.New(n, k)
	Runner{}.DenseRound(w, f, h, fh, wfh, func(_, lo, hi int) {
		copy(got.Data[lo*k:hi*k], wfh.Data[lo*k:hi*k])
	})
	for i := range want.Data {
		if math.Abs(want.Data[i]-got.Data[i]) > 1e-12 {
			t.Fatalf("dense round diverges at %d: %g vs %g", i, got.Data[i], want.Data[i])
		}
	}
}

func infRow(row []float64) float64 {
	m := 0.0
	for _, v := range row {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}
