package exec

import "container/heap"

// Frontier is the small-tier dirty-node set driving push-based
// propagation: a Gauss–Southwell priority queue — a max-heap ordered by
// residual ∞-norm at enqueue time over a sparse membership map — so a
// handful of dirty nodes costs a handful of map entries no matter how
// large the graph is.
//
// The frontier deliberately has no saturated tier of its own: once it
// grows past PromoteAt the strict ordering stops paying for its per-edge
// overhead and ShouldPromote tells the caller to switch to
// round-synchronous drains, whose active arrays and mark bitmaps live in
// PullPass (they are scheduling scratch of the dense storage tier, and
// they are rebuilt from the caller's norm table, not carried over). After
// a promoted drain completes the caller Resets the frontier, which is then
// empty and tiny again.
//
// Norm staleness is allowed by construction: a queued node's residual may
// grow or shrink before it is popped, and callers re-check the live norm
// on pop (Drain does). A Frontier is not safe for concurrent use.
type Frontier struct {
	tol       float64
	promoteAt int

	pq  nodeHeap
	inq map[int32]struct{}
}

// NewFrontier builds an empty frontier. Nodes whose norm is at or below
// tol are never admitted. promoteAt <= 0 disables the promotion signal
// (the frontier stays a heap forever — copy-on-write overlays use this,
// since they bail to a full propagation before a saturated drain could
// pay off).
func NewFrontier(tol float64, promoteAt int) *Frontier {
	return &Frontier{tol: tol, promoteAt: promoteAt, inq: make(map[int32]struct{})}
}

// Tol returns the admission threshold.
func (f *Frontier) Tol() float64 { return f.tol }

// Len returns the number of distinct queued nodes.
func (f *Frontier) Len() int { return len(f.inq) }

// Add queues node if its norm exceeds the tolerance and it is not already
// queued.
func (f *Frontier) Add(node int32, norm float64) {
	if norm <= f.tol {
		return
	}
	if _, ok := f.inq[node]; ok {
		return
	}
	f.inq[node] = struct{}{}
	heap.Push(&f.pq, heapEntry{node: node, norm: norm})
}

// ShouldPromote reports that the frontier has outgrown heap economics and
// the caller should switch to a round-synchronous drain over its dense
// storage tier.
func (f *Frontier) ShouldPromote() bool {
	return f.promoteAt > 0 && len(f.inq) >= f.promoteAt
}

// PopMax removes and returns the queued node with the largest
// enqueue-time norm. ok is false when the frontier is empty.
func (f *Frontier) PopMax() (node int32, ok bool) {
	for len(f.pq) > 0 {
		top := heap.Pop(&f.pq).(heapEntry)
		if _, queued := f.inq[top.node]; !queued {
			continue // superseded duplicate left behind by Reset
		}
		delete(f.inq, top.node)
		return top.node, true
	}
	return 0, false
}

// Reset empties the frontier (callers promote by moving their residual
// rows to dense storage, then Reset — the dirty set's source of truth is
// the norm table from there on).
func (f *Frontier) Reset() {
	f.pq = nil
	f.inq = make(map[int32]struct{})
}

// heapEntry orders the work queue by residual ∞-norm at enqueue time
// (Gauss–Southwell selection). Norms may change while queued; the pop-side
// re-check against the live norm keeps correctness independent of staleness.
type heapEntry struct {
	node int32
	norm float64
}

type nodeHeap []heapEntry

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].norm > h[j].norm }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(heapEntry)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
