package exec

import (
	"math/rand"
	"testing"
)

// TestFrontierOrdering: with no staleness, PopMax drains strictly by
// descending enqueue-time norm and each admitted node comes out exactly
// once.
func TestFrontierOrdering(t *testing.T) {
	f := NewFrontier(0.5, 0)
	norms := map[int32]float64{1: 3, 2: 9, 3: 1, 4: 7}
	for node, norm := range norms {
		f.Add(node, norm)
	}
	f.Add(5, 0.5) // at tolerance: not admitted
	f.Add(2, 99)  // duplicate: ignored (first enqueue wins)
	if f.Len() != 4 {
		t.Fatalf("len = %d, want 4", f.Len())
	}
	want := []int32{2, 4, 1, 3}
	for i, wantNode := range want {
		node, ok := f.PopMax()
		if !ok || node != wantNode {
			t.Fatalf("pop %d = (%d, %v), want %d", i, node, ok, wantNode)
		}
	}
	if _, ok := f.PopMax(); ok {
		t.Error("pop on empty frontier succeeded")
	}
}

// TestFrontierPromoteDemote is the tier property test: random add/pop
// interleavings must (a) keep Len equal to the distinct queued set and
// never surface an unqueued node, (b) signal promotion exactly when the
// threshold is reached (the caller then moves to its dense tier and the
// norm table becomes the source of truth), and (c) come back empty and
// usable from Reset — the demotion step.
func TestFrontierPromoteDemote(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		promoteAt := 4 + rng.Intn(60)
		f := NewFrontier(0, promoteAt)
		queued := map[int32]bool{}
		promoted := false
		for op := 0; op < 500 && !promoted; op++ {
			if rng.Float64() < 0.7 {
				node := int32(rng.Intn(200))
				f.Add(node, rng.Float64()+0.01)
				queued[node] = true
			} else if len(queued) > 0 {
				node, ok := f.PopMax()
				if !ok {
					t.Fatalf("trial %d: queued=%d but PopMax empty", trial, len(queued))
				}
				if !queued[node] {
					t.Fatalf("trial %d: popped %d which was not queued", trial, node)
				}
				delete(queued, node)
			}
			if f.Len() != len(queued) {
				t.Fatalf("trial %d: Len=%d, queued=%d", trial, f.Len(), len(queued))
			}
			if f.ShouldPromote() {
				if len(queued) < promoteAt {
					t.Fatalf("trial %d: promotion signalled at %d < threshold %d", trial, len(queued), promoteAt)
				}
				promoted = true
			} else if len(queued) >= promoteAt {
				t.Fatalf("trial %d: %d ≥ threshold %d without promotion signal", trial, len(queued), promoteAt)
			}
		}
		f.Reset()
		if f.Len() != 0 {
			t.Fatalf("trial %d: Reset left len=%d", trial, f.Len())
		}
		if f.ShouldPromote() {
			t.Fatalf("trial %d: empty frontier signals promotion", trial)
		}
		f.Add(7, 1)
		if f.Len() != 1 {
			t.Fatalf("trial %d: frontier unusable after Reset", trial)
		}
	}
}

// TestFrontierNoPromotion: promoteAt <= 0 never promotes (overlay mode).
func TestFrontierNoPromotion(t *testing.T) {
	f := NewFrontier(0, 0)
	for i := int32(0); i < 10000; i++ {
		f.Add(i, 1)
	}
	if f.ShouldPromote() {
		t.Error("promoteAt=0 frontier wants promotion")
	}
}
