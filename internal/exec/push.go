package exec

// PushKernel is one node-at-a-time push step of a Gauss–Southwell drain.
// The kernel owns the actual storage (dense rows, a sparse map, or a
// copy-on-write view over another kernel's state); Drain owns scheduling.
type PushKernel interface {
	// Norm returns node's current residual ∞-norm. Drain re-checks it on
	// every pop, so stale heap priorities never cause a wrong push.
	Norm(node int32) float64
	// Push absorbs node's residual into its belief row and forwards the
	// mass to its neighbors, reporting every neighbor whose residual norm
	// it changed through dirtied (Drain re-queues the ones above
	// tolerance). It returns the number of edges traversed.
	Push(node int32, dirtied func(node int32, norm float64)) (edges int)
}

// DrainOutcome reports how a Drain ended.
type DrainOutcome int

const (
	// Drained: the frontier emptied — every node is at or below tolerance.
	Drained DrainOutcome = iota
	// Saturated: the frontier grew past its promotion threshold; the
	// caller must move its residual rows to dense storage and drain with
	// round-synchronous passes (PullPass).
	Saturated
	// BudgetExceeded: edge traversals passed edgeBudget; the queue (and
	// the kernel's invariant) are intact for the caller's fallback.
	BudgetExceeded
)

// Drain runs the sequential largest-residual-first push loop over a
// small-tier frontier until it empties, saturates, or exhausts the edge
// budget (edgeBudget <= 0 means unbounded). It is the single push loop
// shared by the resident residual state, what-if overlays and patch
// sessions; the budget check runs after each push so a kernel's invariant
// is never left mid-node.
func Drain(f *Frontier, k PushKernel, edgeBudget int) (pushed, edges int, outcome DrainOutcome) {
	tol := f.tol
	for f.Len() > 0 {
		if f.ShouldPromote() {
			return pushed, edges, Saturated
		}
		node, ok := f.PopMax()
		if !ok {
			break
		}
		if k.Norm(node) <= tol {
			continue // pushed down (or absorbed) since it was enqueued
		}
		edges += k.Push(node, f.Add)
		pushed++
		if edgeBudget > 0 && edges > edgeBudget {
			return pushed, edges, BudgetExceeded
		}
	}
	return pushed, edges, Drained
}
