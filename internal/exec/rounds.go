package exec

import (
	"sync/atomic"

	"factorgraph/internal/dense"
)

// minPullWorkers is the parallelism below which the level-synchronous
// drain runs its sequential scatter schedule instead of the parallel pull
// one. Pull pays roughly twice the per-edge work of scatter (a discovery
// pass plus a full row re-scan at every gather) in exchange for race
// freedom, so it needs ~4-way parallelism before it beats the straight
// Gauss–Seidel scan; below that the scatter schedule is simply faster.
const minPullWorkers = 4

// deltaDivisor: once the active set exceeds n/deltaDivisor, a parallel
// round stops tracking candidates and runs a whole-matrix delta sweep
// instead — F += R; R ← A·R. By linearity that is exactly one Jacobi round
// over every row at once, and it runs on the branch-free CSR multiply
// kernel at a fraction of the per-edge cost of a tracked gather; at this
// density nearly everything neighbors the frontier anyway.
const deltaDivisor = 8

// PullPass drains a saturated frontier with level-synchronous rounds over
// dense residual storage, picking its schedule by available parallelism.
// The adjacency is accessed through the RowIterator abstraction, so the
// same pass drains a frozen CSR matrix and a mutable delta overlay alike.
//
// With ≥minPullWorkers workers each round is a race-free parallel pull
// pass. For moderate frontiers it is three phases:
//
//  1. absorb (parallel over the active list): every active node folds its
//     residual row into its belief row, precomputes its outgoing message
//     r·H̃ into a per-slot buffer, and claims its neighbors as gather
//     candidates (an atomic CAS on a mark word dedupes claims — the only
//     atomic in the pass, and it guards list membership, not float data);
//  2. gather (parallel over the candidates): every candidate pulls
//     w(v,u)·(r_u·H̃) from its active neighbors into its own residual row —
//     W is symmetric, so scanning the candidate's row yields exactly its
//     in-edges — and recomputes its norm; each row is written by exactly
//     one worker, so no synchronization touches the data;
//  3. the survivors (norm > tol) become the next round's active list.
//
// Past n/deltaDivisor active nodes the round degenerates to a delta sweep
// — F += R, R ← εW·R·H̃ (exactly the same Jacobi round applied to every
// row at once, by linearity) — which runs on the branch-free CSR multiply
// kernel. Parallel rounds are a Jacobi schedule: mass absorbed in a round
// is forwarded strictly in the next one, so the result is independent of
// worker count.
//
// Below minPullWorkers the drain is the classic sequential Gauss–Seidel
// scatter scan: each active node pushes directly into its neighbors' rows,
// with mass forwarded within the round. All schedules contract at ~s per
// round and drain to the same tolerance; final beliefs differ only inside
// it.
type PullPass struct {
	w   RowIterator
	n   int
	hs  []float64 // k×k, row-major, ε-scaled
	k   int
	f   *dense.Matrix
	r   *dense.Matrix
	nrm []float64
	tol float64
	run Runner

	// sched holds the drain thresholds; NewPullPass seeds the static
	// defaults and SetSchedule installs a tuned one. Both schedules drain
	// to the same tolerance, so swapping mid-life is safe.
	sched Schedule

	activeIdx []int32  // node → slot in rh, -1 when inactive (pull)
	mark      []uint32 // candidate-claim words (pull) / in-queue flags (scatter)
	rh        []float64
	cand      [][]int32
	next      [][]int32
	candBuf   []int32
	buckets   [][]int32 // sticky gather: candidates bucketed by node range

	fh, wfh *dense.Matrix // delta-sweep scratch, allocated on first use

	// trackedRounds / deltaRounds / scatterRounds count which schedule each
	// round of this pass actually ran; the scheduling-boundary tests pin the
	// n/deltaDivisor and minPullWorkers heuristics on them.
	trackedRounds, deltaRounds, scatterRounds int
}

// NewPullPass builds a pass over dense (f, r, norms) storage. The two
// n-length scratch arrays (slot map and mark words) are allocated here and
// freed with the pass — callers demoting their dense tier drop the whole
// pass. norms must reflect r (∞-norm per row); the pass maintains it.
func NewPullPass(w RowIterator, hScaled, f, r *dense.Matrix, norms []float64, tol float64, run Runner) *PullPass {
	n := w.Dim()
	p := &PullPass{
		w: w, n: n, hs: hScaled.Data, k: hScaled.Rows,
		f: f, r: r, nrm: norms, tol: tol, run: run,
		sched:     DefaultSchedule(),
		activeIdx: make([]int32, n),
		mark:      make([]uint32, n),
		cand:      make([][]int32, run.MaxChunks()),
		next:      make([][]int32, run.MaxChunks()),
	}
	for i := range p.activeIdx {
		p.activeIdx[i] = -1
	}
	return p
}

// SetSchedule installs drain thresholds (zero fields fall back to the
// static defaults). The engine calls this when the per-epoch tuner runs;
// it must not race a Drain in flight.
func (p *PullPass) SetSchedule(s Schedule) {
	p.sched = s.normalized()
}

// Drain runs rounds until the frontier empties or edge traversals exceed
// edgeBudget (<= 0 = unbounded). It returns the push work performed, the
// number of rounds run and, when the budget was exceeded, the still-dirty
// frontier (norms are exact for it); remaining is nil on a clean drain.
// The schedule — parallel pull vs sequential scatter — is chosen by the
// available worker count; both produce a frontier drained to tolerance.
func (p *PullPass) Drain(active []int32, edgeBudget int) (pushed, edges, rounds int, remaining []int32) {
	if p.run.MaxChunks() >= p.sched.MinPullWorkers {
		return p.drainPull(active, edgeBudget)
	}
	return p.drainScatter(active, edgeBudget)
}

func (p *PullPass) drainPull(active []int32, edgeBudget int) (pushed, edges, rounds int, remaining []int32) {
	for len(active) > 0 {
		rounds++
		pushed += len(active)
		if len(active) > p.n/p.sched.DeltaDivisor {
			p.deltaRounds++
			mRoundsDelta.Inc()
			active, edges = p.deltaRound(active, edges)
		} else {
			p.trackedRounds++
			mRoundsTracked.Inc()
			active, edges = p.pullRound(active, edges)
		}
		if edgeBudget > 0 && edges > edgeBudget {
			if len(active) == 0 {
				return pushed, edges, rounds, nil
			}
			return pushed, edges, rounds, active
		}
	}
	return pushed, edges, rounds, nil
}

// pullRound is one candidate-tracked Jacobi round: absorb + discover in
// parallel over the active list, then gather in parallel over the
// candidates. Work is proportional to the frontier's neighborhood.
func (p *PullPass) pullRound(active []int32, edges int) ([]int32, int) {
	k := p.k
	if cap(p.rh) < len(active)*k {
		p.rh = make([]float64, len(active)*k)
	}
	rh := p.rh[:len(active)*k]
	edgeCh := make([]int, p.run.MaxChunks())

	// Phase 1: absorb active rows, precompute messages, claim candidates.
	p.run.RowsIndexed(len(active), func(chunk, lo, hi int) {
		cand := p.cand[chunk][:0]
		edgeN := 0
		for idx := lo; idx < hi; idx++ {
			u := int(active[idx])
			rRow := p.r.Data[u*k : (u+1)*k]
			fRow := p.f.Data[u*k : (u+1)*k]
			out := rh[idx*k : (idx+1)*k]
			for j := 0; j < k; j++ {
				acc := 0.0
				for c := 0; c < k; c++ {
					acc += rRow[c] * p.hs[c*k+j]
				}
				out[j] = acc
			}
			for j := 0; j < k; j++ {
				fRow[j] += rRow[j]
				rRow[j] = 0
			}
			p.nrm[u] = 0
			p.activeIdx[u] = int32(idx)
			cols, _ := p.w.Row(u)
			edgeN += len(cols)
			for _, v := range cols {
				if atomic.CompareAndSwapUint32(&p.mark[v], 0, 1) {
					cand = append(cand, v)
				}
			}
		}
		p.cand[chunk] = cand
		edgeCh[chunk] = edgeN
	})
	for c := range edgeCh {
		edges += edgeCh[c]
	}

	// Phase 2: candidates gather their incoming mass and re-norm. Under a
	// sticky schedule candidates are first bucketed by node range so chunk
	// c gathers the same belief/residual range round after round — repeat
	// rounds touch cache-warm rows instead of an arbitrary slice of the
	// discovery order. Each row is gathered exactly once either way, so
	// the two layouts produce identical results.
	p.candBuf = p.candBuf[:0]
	for c := range p.cand {
		p.candBuf = append(p.candBuf, p.cand[c]...)
	}
	if p.sched.Sticky {
		nChunks := p.run.MaxChunks()
		if len(p.buckets) != nChunks {
			p.buckets = make([][]int32, nChunks)
		}
		for b := range p.buckets {
			p.buckets[b] = p.buckets[b][:0]
		}
		span := (p.n + nChunks - 1) / nChunks
		for _, v := range p.candBuf {
			b := int(v) / span
			p.buckets[b] = append(p.buckets[b], v)
		}
		p.run.RowsIndexed(nChunks, func(chunk, lo, hi int) {
			next := p.next[chunk][:0]
			for b := lo; b < hi; b++ {
				for _, v := range p.buckets[b] {
					next = p.gatherOne(int(v), rh, next)
				}
			}
			p.next[chunk] = next
		})
	} else {
		p.run.RowsIndexed(len(p.candBuf), func(chunk, lo, hi int) {
			next := p.next[chunk][:0]
			for i := lo; i < hi; i++ {
				next = p.gatherOne(int(p.candBuf[i]), rh, next)
			}
			p.next[chunk] = next
		})
	}

	// Phase 3: clear the slot map, install the survivors.
	p.run.Rows(len(active), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p.activeIdx[active[i]] = -1
		}
	})
	nextActive := active[:0] // reuse; phase 1/2 no longer read it
	for c := range p.next {
		nextActive = append(nextActive, p.next[c]...)
	}
	return nextActive, edges
}

// gatherOne folds the active neighbors' messages into candidate v's
// residual row (phase 2 of a tracked round), re-norms it and appends v to
// next when it stays above tolerance.
func (p *PullPass) gatherOne(v int, rh []float64, next []int32) []int32 {
	k := p.k
	p.mark[v] = 0
	rRow := p.r.Data[v*k : (v+1)*k]
	cols, wts := p.w.Row(v)
	for q, u := range cols {
		idx := p.activeIdx[u]
		if idx < 0 {
			continue
		}
		wv := 1.0
		if wts != nil {
			wv = wts[q]
		}
		msg := rh[int(idx)*k : (int(idx)+1)*k]
		for j := 0; j < k; j++ {
			rRow[j] += wv * msg[j]
		}
	}
	norm := 0.0
	for _, a := range rRow {
		if a < 0 {
			a = -a
		}
		if a > norm {
			norm = a
		}
	}
	p.nrm[v] = norm
	if norm > p.tol {
		next = append(next, int32(v))
	}
	return next
}

// deltaRound is one whole-matrix Jacobi round: F += R, then R ← εW·R·H̃
// (the forwarded mass of every row at once — linearity makes it identical
// to absorbing and scattering each row individually, sub-tolerance rows
// included). It runs entirely on flat parallel passes and the CSR multiply
// kernel, with no per-edge bookkeeping; edge accounting still charges the
// active degrees so the budget semantics match the tracked rounds.
func (p *PullPass) deltaRound(active []int32, edges int) ([]int32, int) {
	n, k := p.n, p.k
	if p.fh == nil {
		p.fh = dense.New(n, k)
		p.wfh = dense.New(n, k)
	}
	for _, u := range active {
		cols, _ := p.w.Row(int(u))
		edges += len(cols)
	}
	// Phase 1: fh ← R·H̃ and F ← F + R, row-parallel.
	p.run.Rows(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rRow := p.r.Data[i*k : (i+1)*k]
			fRow := p.f.Data[i*k : (i+1)*k]
			out := p.fh.Data[i*k : (i+1)*k]
			for j := 0; j < k; j++ {
				acc := 0.0
				for c := 0; c < k; c++ {
					acc += rRow[c] * p.hs[c*k+j]
				}
				out[j] = acc
			}
			for j := 0; j < k; j++ {
				fRow[j] += rRow[j]
			}
		}
	})
	// Phase 2: wfh ← W·(R·H̃) on the shared multiply kernel.
	p.w.MulDenseInto(p.wfh, p.fh)
	// Phase 3: R ← wfh, re-norm, collect survivors.
	p.run.RowsIndexed(n, func(chunk, lo, hi int) {
		next := p.next[chunk][:0]
		for i := lo; i < hi; i++ {
			rRow := p.r.Data[i*k : (i+1)*k]
			wRow := p.wfh.Data[i*k : (i+1)*k]
			norm := 0.0
			for j := 0; j < k; j++ {
				v := wRow[j]
				rRow[j] = v
				if v < 0 {
					v = -v
				}
				if v > norm {
					norm = v
				}
			}
			p.nrm[i] = norm
			if norm > p.tol {
				next = append(next, int32(i))
			}
		}
		p.next[chunk] = next
	})
	nextActive := active[:0]
	for c := range p.next {
		nextActive = append(nextActive, p.next[c]...)
	}
	return nextActive, edges
}

// drainScatter is the single-worker schedule: a Gauss–Seidel scan of the
// active list pushing straight into neighbor rows. mark doubles as the
// in-next-queue flag (no atomics — the scan is sequential by design).
func (p *PullPass) drainScatter(active []int32, edgeBudget int) (pushed, edges, rounds int, remaining []int32) {
	k := p.k
	if cap(p.rh) < k {
		p.rh = make([]float64, k)
	}
	rh := p.rh[:k]
	for _, v := range active {
		p.mark[v] = 1
	}
	next := make([]int32, 0, len(active))
	for len(active) > 0 {
		rounds++
		p.scatterRounds++
		mRoundsScatter.Inc()
		next = next[:0]
		for _, u32 := range active {
			u := int(u32)
			p.mark[u] = 0
			if p.nrm[u] <= p.tol {
				continue // absorbed earlier this round
			}
			rRow := p.r.Data[u*k : (u+1)*k]
			fRow := p.f.Data[u*k : (u+1)*k]
			for j := 0; j < k; j++ {
				acc := 0.0
				for c := 0; c < k; c++ {
					acc += rRow[c] * p.hs[c*k+j]
				}
				rh[j] = acc
			}
			for j := 0; j < k; j++ {
				fRow[j] += rRow[j]
				rRow[j] = 0
			}
			p.nrm[u] = 0
			pushed++
			cols, wts := p.w.Row(u)
			edges += len(cols)
			for q, v32 := range cols {
				v := int(v32)
				wv := 1.0
				if wts != nil {
					wv = wts[q]
				}
				nRow := p.r.Data[v*k : (v+1)*k]
				norm := 0.0
				for j := 0; j < k; j++ {
					nRow[j] += wv * rh[j]
					a := nRow[j]
					if a < 0 {
						a = -a
					}
					if a > norm {
						norm = a
					}
				}
				p.nrm[v] = norm
				// Re-queue only nodes not still pending this round (their
				// later scan absorbs the fresh mass — that is the
				// Gauss–Seidel advantage) and not already queued for next.
				if norm > p.tol && p.mark[v] == 0 {
					p.mark[v] = 1
					next = append(next, int32(v))
				}
			}
		}
		active, next = next, active
		if edgeBudget > 0 && edges > edgeBudget {
			for _, v := range active {
				p.mark[v] = 0 // leave the marks clean for a later drain
			}
			if len(active) == 0 {
				return pushed, edges, rounds, nil
			}
			return pushed, edges, rounds, active
		}
	}
	return pushed, edges, rounds, nil
}

// DenseRound computes wfh = W·(f·hScaled) — the dense matrix core both
// solvers iterate — and then invokes finish over row chunks in parallel.
// fh and wfh are caller scratch (n×k); finish typically fuses the solver's
// per-row update (belief update, residual recomputation) so each round is
// exactly three parallel passes over the data. The sparse multiply always
// runs on the full shared pool; the Runner's worker cap applies to the
// dense passes.
func (r Runner) DenseRound(w RowIterator, f, hScaled, fh, wfh *dense.Matrix, finish func(chunk, lo, hi int)) {
	mDenseRounds.Inc()
	k := hScaled.Cols
	r.Rows(f.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fRow := f.Data[i*k : (i+1)*k]
			out := fh.Data[i*k : (i+1)*k]
			for j := 0; j < k; j++ {
				acc := 0.0
				for c := 0; c < k; c++ {
					acc += fRow[c] * hScaled.Data[c*k+j]
				}
				out[j] = acc
			}
		}
	})
	w.MulDenseInto(wfh, fh)
	r.RowsIndexed(w.Dim(), finish)
}
