package exec

import (
	"math"
	"runtime"
	"testing"

	"factorgraph/internal/dense"
	"factorgraph/internal/sparse"
)

// ringCSR builds an n-node ring (each node adjacent to its two neighbors).
func ringCSR(t *testing.T, n int) *sparse.CSR {
	t.Helper()
	edges := make([][2]int32, n)
	for i := 0; i < n; i++ {
		edges[i] = [2]int32{int32(i), int32((i + 1) % n)}
	}
	c, err := sparse.NewSymmetricFromEdges(n, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// schedulePass builds a PullPass over an n-node ring with `active` dirty
// rows of unit residual and a near-zero H̃, so every drain finishes in
// exactly ONE round — the pass's round counters then pin precisely which
// schedule the first (and only) round chose.
func schedulePass(t *testing.T, n, active, workers int) (*PullPass, []int32) {
	t.Helper()
	w := ringCSR(t, n)
	const k = 2
	h := dense.New(k, k)
	for i := range h.Data {
		h.Data[i] = 1e-12 // forwarded mass lands far below tol
	}
	f := dense.New(n, k)
	r := dense.New(n, k)
	norms := make([]float64, n)
	list := make([]int32, active)
	for i := 0; i < active; i++ {
		r.Data[i*k] = 1
		norms[i] = 1
		list[i] = int32(i)
	}
	return NewPullPass(w, h, f, r, norms, 1e-8, Runner{Workers: workers}), list
}

// TestPullPassScheduleByWorkers pins the minPullWorkers boundary: with
// fewer than minPullWorkers chunks the drain runs the sequential
// Gauss–Seidel scatter, at or above it the parallel pull schedule. The
// expectation is derived from the runner's actual chunk count, so the test
// holds on small CI machines too (where a large Workers cap still yields
// few chunks); the boundary cases 3/4 are additionally pinned exactly when
// the machine can express them.
func TestPullPassScheduleByWorkers(t *testing.T) {
	for workers := 1; workers <= 8; workers++ {
		p, active := schedulePass(t, 80, 4, workers)
		pushed, _, rounds, remaining := p.Drain(active, 0)
		if remaining != nil || pushed != 4 || rounds != 1 {
			t.Fatalf("workers=%d: drain = pushed %d rounds %d remaining %v", workers, pushed, rounds, remaining)
		}
		wantPull := (Runner{Workers: workers}).MaxChunks() >= minPullWorkers
		gotPull := p.trackedRounds+p.deltaRounds > 0
		if gotPull != wantPull {
			t.Errorf("workers=%d (chunks=%d): pull schedule = %v, want %v (scatter=%d tracked=%d delta=%d)",
				workers, (Runner{Workers: workers}).MaxChunks(), gotPull, wantPull,
				p.scatterRounds, p.trackedRounds, p.deltaRounds)
		}
	}
	// The exact promotion edge, when this machine can express it: 3 chunks
	// must scatter, 4 must pull.
	if runtime.GOMAXPROCS(0) < minPullWorkers {
		t.Skipf("GOMAXPROCS %d < %d: pull side of the boundary not expressible", runtime.GOMAXPROCS(0), minPullWorkers)
	}
	p3, a3 := schedulePass(t, 80, 4, minPullWorkers-1)
	p3.Drain(a3, 0)
	if p3.scatterRounds != 1 || p3.trackedRounds+p3.deltaRounds != 0 {
		t.Errorf("workers=%d: want exactly one scatter round, got scatter=%d tracked=%d delta=%d",
			minPullWorkers-1, p3.scatterRounds, p3.trackedRounds, p3.deltaRounds)
	}
	p4, a4 := schedulePass(t, 80, 4, minPullWorkers)
	p4.Drain(a4, 0)
	if p4.scatterRounds != 0 || p4.trackedRounds != 1 {
		t.Errorf("workers=%d: want exactly one tracked pull round, got scatter=%d tracked=%d delta=%d",
			minPullWorkers, p4.scatterRounds, p4.trackedRounds, p4.deltaRounds)
	}
}

// TestPullPassFullScanThreshold pins the n/deltaDivisor promotion edge of
// the parallel schedule: an active set of exactly n/8 runs the
// candidate-tracked gather, one more node degenerates to the whole-matrix
// delta sweep.
func TestPullPassFullScanThreshold(t *testing.T) {
	if (Runner{}).MaxChunks() < minPullWorkers {
		t.Skipf("machine parallelism %d < %d: parallel schedule unavailable", (Runner{}).MaxChunks(), minPullWorkers)
	}
	const n = 80 // n/deltaDivisor = 10
	cases := []struct {
		active      int
		wantTracked int
		wantDelta   int
	}{
		{n/deltaDivisor - 1, 1, 0}, // below: tracked gather
		{n / deltaDivisor, 1, 0},   // exactly at the threshold: still tracked (strict >)
		{n/deltaDivisor + 1, 0, 1}, // one past: whole-matrix delta sweep
	}
	for _, c := range cases {
		p, active := schedulePass(t, n, c.active, 0)
		pushed, _, rounds, remaining := p.Drain(active, 0)
		if remaining != nil || pushed != c.active || rounds != 1 {
			t.Fatalf("active=%d: drain = pushed %d rounds %d remaining %v", c.active, pushed, rounds, remaining)
		}
		if p.trackedRounds != c.wantTracked || p.deltaRounds != c.wantDelta {
			t.Errorf("active=%d (threshold %d): tracked=%d delta=%d, want tracked=%d delta=%d",
				c.active, n/deltaDivisor, p.trackedRounds, p.deltaRounds, c.wantTracked, c.wantDelta)
		}
	}
}

// TestPullPassSchedulesAgree: both schedules (and the delta sweep) drain
// to the same beliefs on the same input — the boundary is a performance
// decision, never a correctness one. Uses a real H̃ so multiple rounds run.
func TestPullPassSchedulesAgree(t *testing.T) {
	const n, k = 64, 2
	w := ringCSR(t, n)
	h := dense.New(k, k)
	h.Data[0], h.Data[1], h.Data[2], h.Data[3] = 0.2, -0.1, -0.1, 0.2
	build := func(workers, active int) (*PullPass, *dense.Matrix, []int32) {
		f := dense.New(n, k)
		r := dense.New(n, k)
		norms := make([]float64, n)
		list := make([]int32, active)
		for i := 0; i < active; i++ {
			r.Data[i*k] = 1
			norms[i] = 1
			list[i] = int32(i)
		}
		return NewPullPass(w, h, f, r, norms, 1e-10, Runner{Workers: workers}), f, list
	}
	// Sequential scatter reference vs parallel pull (small frontier →
	// tracked) vs forced delta sweeps (frontier > n/8).
	pSeq, fSeq, aSeq := build(1, 12)
	pSeq.Drain(aSeq, 0)
	if pSeq.scatterRounds == 0 {
		t.Fatal("sequential reference did not run the scatter schedule")
	}
	if (Runner{}).MaxChunks() < minPullWorkers {
		t.Skipf("machine parallelism %d < %d: parallel schedules unavailable", (Runner{}).MaxChunks(), minPullWorkers)
	}
	pPar, fPar, aPar := build(0, 12)
	pPar.Drain(aPar, 0)
	if pPar.trackedRounds == 0 {
		t.Fatal("parallel drain did not run tracked rounds")
	}
	for i := range fSeq.Data {
		if d := math.Abs(fSeq.Data[i] - fPar.Data[i]); d > 1e-9 {
			t.Fatalf("scatter and pull disagree at %d by %g", i, d)
		}
	}
}

// TestTunedSchedulesConverge is the property test behind the auto-tuner:
// ANY schedule the tuner can emit — DeltaDivisor across its full clamp
// range, MinPullWorkers across its clamp range, sticky on or off — must
// drain to the same fixed point as the sequential Gauss–Seidel reference.
// The tuner is free to pick whatever the microbenchmark measured; it can
// only ever change performance, never beliefs.
func TestTunedSchedulesConverge(t *testing.T) {
	const n, k = 96, 2
	w := ringCSR(t, n)
	h := dense.New(k, k)
	h.Data[0], h.Data[1], h.Data[2], h.Data[3] = 0.2, -0.1, -0.1, 0.2
	build := func(workers int, sched Schedule, active int) (*PullPass, *dense.Matrix, []int32) {
		f := dense.New(n, k)
		r := dense.New(n, k)
		norms := make([]float64, n)
		list := make([]int32, active)
		for i := 0; i < active; i++ {
			r.Data[i*k] = 1
			norms[i] = 1
			list[i] = int32(i)
		}
		p := NewPullPass(w, h, f, r, norms, 1e-10, Runner{Workers: workers})
		p.SetSchedule(sched)
		return p, f, list
	}
	// Sequential reference: one worker forces the scatter schedule.
	pSeq, fSeq, aSeq := build(1, DefaultSchedule(), 24)
	pSeq.Drain(aSeq, 0)
	if pSeq.scatterRounds == 0 {
		t.Fatal("sequential reference did not run the scatter schedule")
	}
	for _, dd := range []int{minTunedDeltaDivisor, deltaDivisor, maxTunedDeltaDivisor} {
		for _, mpw := range []int{minTunedPullWorkers, maxTunedPullWorkers} {
			for _, sticky := range []bool{false, true} {
				sched := Schedule{DeltaDivisor: dd, MinPullWorkers: mpw, Sticky: sticky, Tuned: true}
				p, f, active := build(0, sched, 24)
				pushed, _, _, remaining := p.Drain(active, 0)
				if remaining != nil || pushed == 0 {
					t.Fatalf("sched %+v: drain = pushed %d remaining %v", sched, pushed, remaining)
				}
				for i := range fSeq.Data {
					if d := math.Abs(fSeq.Data[i] - f.Data[i]); d > 1e-9 {
						t.Fatalf("sched %+v disagrees with sequential at %d by %g", sched, i, d)
					}
				}
			}
		}
	}
}

// TestTuneEmitsClampedSchedule pins that Tune only ever emits schedules
// inside the clamp ranges TestTunedSchedulesConverge proves safe, and that
// tiny graphs fall back to the static defaults.
func TestTuneEmitsClampedSchedule(t *testing.T) {
	s := Tune(ringCSR(t, 4096), 4, Runner{}, DefaultTuneBudget)
	if !s.Tuned {
		t.Fatal("Tune on a 4096-node graph returned the untuned defaults")
	}
	if s.DeltaDivisor < minTunedDeltaDivisor || s.DeltaDivisor > maxTunedDeltaDivisor {
		t.Errorf("DeltaDivisor %d outside [%d,%d]", s.DeltaDivisor, minTunedDeltaDivisor, maxTunedDeltaDivisor)
	}
	if s.MinPullWorkers < minTunedPullWorkers || s.MinPullWorkers > maxTunedPullWorkers {
		t.Errorf("MinPullWorkers %d outside [%d,%d]", s.MinPullWorkers, minTunedPullWorkers, maxTunedPullWorkers)
	}
	small := Tune(ringCSR(t, 16), 4, Runner{}, DefaultTuneBudget)
	if small.Tuned || small != DefaultSchedule() {
		t.Errorf("Tune on a 16-node graph = %+v, want untuned defaults %+v", small, DefaultSchedule())
	}
}
