// Package exec is the shared parallel execution core of the two LinBP
// solvers. Before it existed the repo had two divergent execution paths:
// internal/propagation ran dense rounds on the sparse worker pool while
// internal/residual drained its push queue single-threaded under the
// serving engine's write lock. This package owns what both need —
//
//   - Runner: a chunked row-parallel executor over internal/sparse's
//     long-lived worker pool, with a worker cap so benchmarks can pin a
//     sequential baseline against identical code;
//   - Frontier: the small-tier dirty-node set of the push solver — a
//     Gauss–Southwell priority heap over a sparse membership map, with a
//     promotion signal once the set saturates (the saturated tier's
//     active arrays and mark bitmaps belong to PullPass);
//   - Drain: the sequential largest-first push loop for heap-tier
//     frontiers, generic over a PushKernel so the resident state and its
//     copy-on-write views (overlays, patch sessions) share one loop;
//   - PullPass: the level-synchronous parallel drain for saturated
//     frontiers — per round, every active node's residual is absorbed in
//     parallel, then the dirtied neighborhood *pulls* its incoming mass in
//     parallel (gather, not scatter, so rows are written by exactly one
//     worker and the pass is race-free without atomics on the data);
//   - DenseRound: the one dense iteration W·(F·H̃) both solvers share, with
//     a parallel per-row-chunk finish hook (propagation fuses its belief
//     update into it, residual its residual recomputation).
//
// The package deliberately contains no solver mathematics beyond the pull
// gather: tolerances, scaling and storage tiers stay with the solvers.
package exec

import (
	"factorgraph/internal/sparse"
)

// Runner executes row-chunked work on the shared sparse worker pool.
// The zero value uses every available worker; Workers=1 is a strictly
// sequential executor running the same code path (speedup baselines and
// deterministic debugging use it).
type Runner struct {
	// Workers caps the parallelism (0 = GOMAXPROCS, bounded by the pool).
	Workers int
}

// Rows runs fn over [0, n) split into one chunk per worker.
func (r Runner) Rows(n int, fn func(lo, hi int)) {
	sparse.ParallelRowsLimit(n, r.Workers, fn)
}

// MaxChunks reports an upper bound on the chunk indices RowsIndexed will
// produce; callers allocate per-chunk scratch (partial reductions,
// worker-local lists) with it.
func (r Runner) MaxChunks() int {
	return sparse.MaxParallelWorkers(r.Workers)
}

// RowsIndexed is Rows with a stable chunk index: [0, n) is split into
// exactly MaxChunks() contiguous ranges (empty ranges are skipped) and fn
// receives the index of the range it is running. Per-chunk scratch indexed
// by chunk is therefore written by exactly one worker at a time.
func (r Runner) RowsIndexed(n int, fn func(chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	chunks := r.MaxChunks()
	if chunks > n {
		chunks = n
	}
	size := (n + chunks - 1) / chunks
	sparse.ParallelRowsLimit(chunks, r.Workers, func(clo, chi int) {
		for c := clo; c < chi; c++ {
			lo, hi := c*size, (c+1)*size
			if hi > n {
				hi = n
			}
			if lo >= hi {
				continue
			}
			fn(c, lo, hi)
		}
	})
}
