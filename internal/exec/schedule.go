package exec

import (
	"sync/atomic"
	"time"
)

// Schedule holds the drain-schedule thresholds a PullPass runs under. The
// zero value is normalized to the static defaults; Tune produces a measured
// one per graph (pinned per epoch by the engine).
type Schedule struct {
	// DeltaDivisor: a tracked round degenerates to a whole-matrix delta
	// sweep once the active set exceeds n/DeltaDivisor.
	DeltaDivisor int
	// MinPullWorkers: below this many chunks the drain runs the sequential
	// Gauss–Seidel scatter schedule instead of parallel pull rounds.
	MinPullWorkers int
	// Sticky routes gather candidates to workers by node range, so chunk c
	// touches the same belief/residual range every round (cache-warm
	// repeats) instead of whatever slice of the discovery order it drew.
	Sticky bool
	// Tuned records whether the thresholds came from a live measurement
	// (Tune) rather than the static defaults.
	Tuned bool
}

// DefaultSchedule returns the static heuristics the pass shipped with.
func DefaultSchedule() Schedule {
	return Schedule{DeltaDivisor: deltaDivisor, MinPullWorkers: minPullWorkers}
}

func (s Schedule) normalized() Schedule {
	if s.DeltaDivisor <= 0 {
		s.DeltaDivisor = deltaDivisor
	}
	if s.MinPullWorkers <= 0 {
		s.MinPullWorkers = minPullWorkers
	}
	return s
}

// DefaultTuneBudget bounds the microbenchmark Tune runs on the live graph.
// Tuning happens once per epoch (build or compaction), so a couple of
// milliseconds is noise next to the ρ(W) power iteration it rides along.
const DefaultTuneBudget = 2 * time.Millisecond

// Tuner bounds for the measured thresholds: however noisy the probe, the
// emitted schedule stays inside the regime the convergence tests cover.
const (
	minTunedDeltaDivisor = 2
	maxTunedDeltaDivisor = 64
	minTunedPullWorkers  = 2
	maxTunedPullWorkers  = 8

	// tuneSampleEdges caps how many stored entries each probe kernel
	// walks; tuneScratchRows is the modulus folding column ids into the
	// probe's scratch matrix (large enough to exercise real cache misses,
	// small enough to allocate per tune).
	tuneSampleEdges = 1 << 16
	tuneScratchRows = 1 << 12

	// Sticky gather pays a sequential bucketing pass per round; it wins
	// once the dense rows outgrow L2, i.e. when repeat-touch locality is
	// worth protecting.
	stickyMinBytes = 1 << 20
)

// Tune microbenchmarks the three drain kernels — sequential scatter,
// tracked pull (discovery + gather re-scan), and the branch-free delta
// sweep — on a sample of the live graph's rows, and derives the thresholds
// where each schedule's per-edge cost curve crosses the next:
//
//   - a tracked round costs ~cPull per frontier-adjacent edge while a delta
//     sweep costs cDelta per stored edge, so tracking wins while
//     active·deg·cPull < nnz·cDelta, i.e. active < n·(cDelta/cPull);
//     DeltaDivisor ≈ cPull/cDelta.
//   - a parallel pull round breaks even with the sequential scatter scan
//     once its worker count covers the per-edge overhead ratio;
//     MinPullWorkers ≈ cPull/cScatter.
//
// The probe allocates O(tuneScratchRows·k) scratch, walks at most
// tuneSampleEdges entries per kernel and respects the wall-clock budget; on
// a graph too small to measure it returns the static defaults. Results are
// exposed on the fg_exec_tuned_* gauges (last tune wins — the per-graph
// values live in the engine's numeric health).
func Tune(w RowIterator, k int, run Runner, budget time.Duration) Schedule {
	s := DefaultSchedule()
	n, nnz := w.Dim(), w.NNZ()
	if n < 256 || nnz < 2048 || k <= 0 {
		return s
	}
	if budget <= 0 {
		budget = DefaultTuneBudget
	}
	deadline := time.Now().Add(budget)

	// Deterministic row sample: a fixed stride spreading the probe across
	// the whole matrix so skewed degree distributions are represented.
	stride := nnz / tuneSampleEdges
	if stride < 1 {
		stride = 1
	}
	sample := make([]int32, 0, n/int(stride)+1)
	for i := 0; i < n; i += int(stride) {
		sample = append(sample, int32(i))
	}

	scratch := make([]float64, tuneScratchRows*k)
	msg := make([]float64, k)
	for j := range msg {
		msg[j] = 1e-3
	}
	var marks [tuneScratchRows]uint32
	perBudget := budget / 4

	// Each probe repeats its edge walk until it has both enough edges and
	// enough wall-clock to trust the division, then reports ns/edge.
	probe := func(kernel func() int) float64 {
		start := time.Now()
		edges := 0
		for it := 0; ; it++ {
			edges += kernel()
			el := time.Since(start)
			if (edges >= tuneSampleEdges && el >= perBudget/4) || el >= perBudget || time.Now().After(deadline) {
				if edges == 0 {
					return 0
				}
				return float64(el.Nanoseconds()) / float64(edges)
			}
		}
	}

	// Delta sweep: the branch-free accumulate of the CSR multiply.
	cDelta := probe(func() int {
		e := 0
		for _, u := range sample {
			cols, wts := w.Row(int(u))
			orow := scratch[(int(u)%tuneScratchRows)*k : (int(u)%tuneScratchRows+1)*k]
			if wts == nil {
				for _, col := range cols {
					xrow := scratch[(int(col)%tuneScratchRows)*k : (int(col)%tuneScratchRows+1)*k]
					for j, v := range xrow {
						orow[j] += v
					}
				}
			} else {
				for q, col := range cols {
					xrow := scratch[(int(col)%tuneScratchRows)*k : (int(col)%tuneScratchRows+1)*k]
					for j, v := range xrow {
						orow[j] += wts[q] * v
					}
				}
			}
			e += len(cols)
		}
		return e
	})

	// Scatter: per-edge push with the fused norm update.
	cScatter := probe(func() int {
		e := 0
		for _, u := range sample {
			cols, wts := w.Row(int(u))
			for q, col := range cols {
				wv := 1.0
				if wts != nil {
					wv = wts[q]
				}
				nRow := scratch[(int(col)%tuneScratchRows)*k : (int(col)%tuneScratchRows+1)*k]
				norm := 0.0
				for j := 0; j < k; j++ {
					nRow[j] += wv * msg[j]
					a := nRow[j]
					if a < 0 {
						a = -a
					}
					if a > norm {
						norm = a
					}
				}
			}
			e += len(cols)
		}
		return e
	})

	// Pull: discovery CAS plus the candidate's full-row gather re-scan —
	// the two passes a tracked round pays per frontier-adjacent edge.
	cPull := probe(func() int {
		e := 0
		for _, u := range sample {
			cols, _ := w.Row(int(u))
			for _, col := range cols {
				m := &marks[int(col)%tuneScratchRows]
				if atomic.CompareAndSwapUint32(m, 0, 1) {
					atomic.StoreUint32(m, 0)
				}
			}
			e += len(cols)
			cols, wts := w.Row(int(u))
			rRow := scratch[(int(u)%tuneScratchRows)*k : (int(u)%tuneScratchRows+1)*k]
			for q, col := range cols {
				wv := 1.0
				if wts != nil {
					wv = wts[q]
				}
				xrow := scratch[(int(col)%tuneScratchRows)*k : (int(col)%tuneScratchRows+1)*k]
				for j, v := range xrow {
					rRow[j] += wv * v
				}
			}
			e += len(cols)
		}
		return e
	})

	if cDelta > 0 && cScatter > 0 && cPull > 0 {
		dd := int(cPull/cDelta + 0.5)
		if dd < minTunedDeltaDivisor {
			dd = minTunedDeltaDivisor
		}
		if dd > maxTunedDeltaDivisor {
			dd = maxTunedDeltaDivisor
		}
		mpw := int(cPull/cScatter + 0.5)
		if mpw < minTunedPullWorkers {
			mpw = minTunedPullWorkers
		}
		if mpw > maxTunedPullWorkers {
			mpw = maxTunedPullWorkers
		}
		s = Schedule{
			DeltaDivisor:   dd,
			MinPullWorkers: mpw,
			Sticky:         n*k*8 > stickyMinBytes,
			Tuned:          true,
		}
	}
	gTunedDeltaDivisor.Set(float64(s.DeltaDivisor))
	gTunedMinPullWorkers.Set(float64(s.MinPullWorkers))
	return s
}
