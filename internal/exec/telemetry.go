package exec

import "factorgraph/internal/telemetry"

// Process-wide schedule counters: which drain schedule each round actually
// ran. The auto-tuning roadmap item reads these to see where the
// n/deltaDivisor and minPullWorkers boundaries land in production; a round
// is O(frontier·degree) work, so one increment per round is free.
var (
	mRoundsTracked = telemetry.Default().Counter("fg_exec_rounds_total",
		"Pull-pass drain rounds by schedule.", telemetry.Labels{"schedule": "tracked"})
	mRoundsDelta = telemetry.Default().Counter("fg_exec_rounds_total",
		"Pull-pass drain rounds by schedule.", telemetry.Labels{"schedule": "delta"})
	mRoundsScatter = telemetry.Default().Counter("fg_exec_rounds_total",
		"Pull-pass drain rounds by schedule.", telemetry.Labels{"schedule": "scatter"})
	mDenseRounds = telemetry.Default().Counter("fg_exec_dense_rounds_total",
		"Full-matrix dense Jacobi rounds (sweeps and delta-round cores).")
)

// Tuner gauges: the thresholds the most recent Tune emitted (last tune
// wins process-wide; per-graph pinned values are reported through the
// engine's numeric health and /v1/admin/health).
var (
	gTunedDeltaDivisor = telemetry.Default().Gauge("fg_exec_tuned_delta_divisor",
		"DeltaDivisor chosen by the most recent exec schedule tune.")
	gTunedMinPullWorkers = telemetry.Default().Gauge("fg_exec_tuned_min_pull_workers",
		"MinPullWorkers chosen by the most recent exec schedule tune.")
)
