package exec

import "factorgraph/internal/telemetry"

// DrainTraced is Drain wrapped in an "exec.drain" trace span, so sampled
// requests see the execution core's share of a flush as its own node in
// the span tree. A nil trace costs one nil check over plain Drain.
func DrainTraced(tr *telemetry.Trace, f *Frontier, k PushKernel, edgeBudget int) (pushed, edges int, outcome DrainOutcome) {
	if tr == nil {
		return Drain(f, k, edgeBudget)
	}
	done := tr.Start("exec.drain")
	pushed, edges, outcome = Drain(f, k, edgeBudget)
	done()
	return pushed, edges, outcome
}
