package experiments

import (
	"fmt"
	"time"

	"factorgraph/internal/bp"
	"factorgraph/internal/core"
	"factorgraph/internal/labels"
	"factorgraph/internal/metrics"
	"factorgraph/internal/propagation"
)

func init() {
	register("ablation-ec", AblationEC)
	register("ablation-nb", AblationNB)
	register("ablation-bp", AblationBP)
	register("ablation-optimizer", AblationOptimizer)
}

// AblationEC tests the paper's §2.3 design decision to drop the echo
// cancellation term from LinBP: accuracy with and without the EC term
// across sparsity levels. The paper reports no parameter regime where EC
// consistently helps; the table lets the reader check.
func AblationEC(cfg Config) (*Table, error) {
	cfg.defaults()
	n := 10000 / cfg.Scale
	t := &Table{
		ID:      "ablation-ec",
		Title:   "LinBP with vs without the echo-cancellation term",
		Params:  fmt.Sprintf("n=%d, d=25, h=3, GS compatibilities, reps=%d", n, cfg.Reps),
		Columns: []string{"f", "LinBP", "LinBP+EC"},
		Notes:   "Paper §2.3: EC has no consistent accuracy benefit and complicates the convergence threshold.",
	}
	for _, f := range []float64{0.001, 0.01, 0.1} {
		var plain, ec []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			seed := cfg.Seed + uint64(rep)
			res, err := syntheticGraph(n, 25, 3, seed)
			if err != nil {
				return nil, err
			}
			sl, err := sampleSeeds(res.Labels, 3, f, seed)
			if err != nil {
				return nil, err
			}
			gs, err := core.GoldStandard(res.Graph.Adj, res.Labels, 3)
			if err != nil {
				return nil, err
			}
			x, err := labels.Matrix(sl, 3)
			if err != nil {
				return nil, err
			}
			for _, variant := range []struct {
				ecOn bool
				dst  *[]float64
			}{{false, &plain}, {true, &ec}} {
				opts := propagation.DefaultLinBPOptions()
				opts.EchoCancellation = variant.ecOn
				pred, err := propagation.LinBPLabels(res.Graph.Adj, x, gs, opts)
				if err != nil {
					return nil, err
				}
				*variant.dst = append(*variant.dst, metrics.MacroAccuracy(pred, res.Labels, sl, 3))
			}
		}
		cfg.logf("ablation-ec: f=%g", f)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%.3f", f), fmtF(mean(plain)), fmtF(mean(ec))})
	}
	return t, nil
}

// AblationNB isolates the non-backtracking correction (§4.5): end-to-end
// DCEr accuracy and estimation L2 using NB path statistics versus plain
// powers of W. The NB variant's consistency (Theorem 4.1) should show up
// as lower L2, most visibly at low average degree where the O(1/d) bias of
// full paths is largest.
func AblationNB(cfg Config) (*Table, error) {
	cfg.defaults()
	n := 10000 / cfg.Scale
	H := core.HFromSkew(8)
	t := &Table{
		ID:      "ablation-nb",
		Title:   "DCEr with non-backtracking vs full-path statistics",
		Params:  fmt.Sprintf("n=%d, h=8, f=0.05, reps=%d", n, cfg.Reps),
		Columns: []string{"d", "L2 (NB)", "L2 (full)", "acc (NB)", "acc (full)"},
	}
	for _, d := range []float64{5, 10, 25} {
		var l2NB, l2Full, accNB, accFull []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			seed := cfg.Seed + uint64(rep)
			res, err := syntheticGraph(n, d, 8, seed)
			if err != nil {
				return nil, err
			}
			sl, err := sampleSeeds(res.Labels, 3, 0.05, seed)
			if err != nil {
				return nil, err
			}
			for _, variant := range []struct {
				nb  bool
				l2  *[]float64
				acc *[]float64
			}{{true, &l2NB, &accNB}, {false, &l2Full, &accFull}} {
				s, err := core.Summarize(res.Graph.Adj, sl, 3, core.SummaryOptions{
					LMax: 5, NonBacktracking: variant.nb, Variant: core.Variant1,
				})
				if err != nil {
					return nil, err
				}
				est, err := core.EstimateDCE(s, core.DCEOptions{Lambda: 10, Restarts: 10, Seed: seed})
				if err != nil {
					return nil, err
				}
				*variant.l2 = append(*variant.l2, metrics.L2(est, H))
				acc, err := propagateAccuracy(res.Graph.Adj, sl, res.Labels, 3, est)
				if err != nil {
					return nil, err
				}
				*variant.acc = append(*variant.acc, acc)
			}
		}
		cfg.logf("ablation-nb: d=%g", d)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", d),
			fmtF(mean(l2NB)), fmtF(mean(l2Full)),
			fmtF(mean(accNB)), fmtF(mean(accFull)),
		})
	}
	return t, nil
}

// AblationBP compares standard loopy belief propagation (§2.2, with
// damping and ε-softened potentials to coax convergence) against LinBP on
// the same graphs: accuracy, wall-clock time, and whether BP converged.
// This is the tradeoff that motivates linearization.
func AblationBP(cfg Config) (*Table, error) {
	cfg.defaults()
	n := 2000 / cfg.Scale
	if n < 100 {
		n = 100
	}
	t := &Table{
		ID:      "ablation-bp",
		Title:   "Loopy BP vs LinBP with gold-standard compatibilities",
		Params:  fmt.Sprintf("n=%d, d=10, h=3, reps=%d, BP: damping 0.2, eps 0.7, ≤50 rounds", n, cfg.Reps),
		Columns: []string{"f", "acc LinBP", "acc BP", "time LinBP[s]", "time BP[s]", "BP converged"},
	}
	for _, f := range []float64{0.01, 0.1} {
		var accLin, accBP, timeLin, timeBP []float64
		converged := true
		for rep := 0; rep < cfg.Reps; rep++ {
			seed := cfg.Seed + uint64(rep)
			res, err := syntheticGraph(n, 10, 3, seed)
			if err != nil {
				return nil, err
			}
			sl, err := sampleSeeds(res.Labels, 3, f, seed)
			if err != nil {
				return nil, err
			}
			gs, err := core.GoldStandard(res.Graph.Adj, res.Labels, 3)
			if err != nil {
				return nil, err
			}
			x, err := labels.Matrix(sl, 3)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			pred, err := propagation.LinBPLabels(res.Graph.Adj, x, gs, propagation.DefaultLinBPOptions())
			if err != nil {
				return nil, err
			}
			timeLin = append(timeLin, time.Since(start).Seconds())
			accLin = append(accLin, metrics.MacroAccuracy(pred, res.Labels, sl, 3))

			start = time.Now()
			bpPred, bpRes, err := bp.Labels(res.Graph.Adj, sl, 3, gs, bp.Options{
				MaxIterations: 50, Damping: 0.2, Epsilon: 0.7,
			})
			if err != nil {
				return nil, err
			}
			timeBP = append(timeBP, time.Since(start).Seconds())
			accBP = append(accBP, metrics.MacroAccuracy(bpPred, res.Labels, sl, 3))
			converged = converged && bpRes.Converged
		}
		cfg.logf("ablation-bp: f=%g", f)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", f),
			fmtF(mean(accLin)), fmtF(mean(accBP)),
			fmtF(mean(timeLin)), fmtF(mean(timeBP)),
			fmt.Sprintf("%v", converged),
		})
	}
	return t, nil
}

// AblationOptimizer compares the two inner solvers for the DCE energy:
// plain gradient descent with backtracking versus L-BFGS, over λ (the
// energy gets more ill-conditioned as λ grows). Both should reach the same
// energy; L-BFGS in fewer evaluations / less time.
func AblationOptimizer(cfg Config) (*Table, error) {
	cfg.defaults()
	n := 10000 / cfg.Scale
	H := core.HFromSkew(8)
	t := &Table{
		ID:      "ablation-optimizer",
		Title:   "DCEr inner solver: gradient descent vs L-BFGS",
		Params:  fmt.Sprintf("n=%d, d=25, h=8, f=0.01, r=10, reps=%d", n, cfg.Reps),
		Columns: []string{"lambda", "L2 (GD)", "L2 (LBFGS)", "time GD[s]", "time LBFGS[s]"},
	}
	for _, lambda := range []float64{1, 10, 100} {
		var l2GD, l2LB, tGD, tLB []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			seed := cfg.Seed + uint64(rep)
			res, err := syntheticGraph(n, 25, 8, seed)
			if err != nil {
				return nil, err
			}
			sl, err := sampleSeeds(res.Labels, 3, 0.01, seed)
			if err != nil {
				return nil, err
			}
			s, err := core.Summarize(res.Graph.Adj, sl, 3, core.DefaultSummaryOptions())
			if err != nil {
				return nil, err
			}
			start := time.Now()
			gd, err := core.EstimateDCE(s, core.DCEOptions{Lambda: lambda, Restarts: 10, Seed: seed, Solver: core.SolverGD})
			if err != nil {
				return nil, err
			}
			tGD = append(tGD, time.Since(start).Seconds())
			l2GD = append(l2GD, metrics.L2(gd, H))

			start = time.Now()
			lb, err := core.EstimateDCE(s, core.DCEOptions{Lambda: lambda, Restarts: 10, Seed: seed, Solver: core.SolverLBFGS})
			if err != nil {
				return nil, err
			}
			tLB = append(tLB, time.Since(start).Seconds())
			l2LB = append(l2LB, metrics.L2(lb, H))
		}
		cfg.logf("ablation-optimizer: lambda=%g", lambda)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", lambda),
			fmtF(mean(l2GD)), fmtF(mean(l2LB)),
			fmtF(mean(tGD)), fmtF(mean(tLB)),
		})
	}
	return t, nil
}
