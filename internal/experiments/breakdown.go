package experiments

import (
	"fmt"
	"time"

	"factorgraph/internal/core"
)

func init() {
	register("breakdown", Breakdown)
}

// Breakdown decomposes DCEr's runtime into its two stages (the paper's
// Figure 2 and the §4.8/§5.2 discussion): the O(mkℓmax) graph
// summarization, which scales with the graph, and the O(k⁴r) optimization,
// which does not. The crossover explains why "DCE and DCEr are effectively
// equal for large graphs" (Fig 6k): the sketch computation dominates, so
// the 10 restarts come for free.
func Breakdown(cfg Config) (*Table, error) {
	cfg.defaults()
	t := &Table{
		ID:      "breakdown",
		Title:   "DCEr phase timing: graph summarization vs sketch optimization",
		Params:  fmt.Sprintf("d=5, h=8, f=0.01, r=10, maxEdges=%d", cfg.MaxEdges),
		Columns: []string{"m", "summarize[s]", "optimize r=10[s]", "optimize share"},
		Notes:   "Optimization time is flat in m (it runs on k×k sketches); its share goes to 0 as the graph grows.",
	}
	const d = 5
	for _, m := range grow(1000, cfg.MaxEdges, 10) {
		n := 2 * m / d
		res, err := syntheticGraph(n, d, 8, cfg.Seed)
		if err != nil {
			return nil, err
		}
		sl, err := sampleSeeds(res.Labels, 3, 0.01, cfg.Seed)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		sums, err := core.Summarize(res.Graph.Adj, sl, 3, core.DefaultSummaryOptions())
		if err != nil {
			return nil, err
		}
		summarizeTime := time.Since(start)
		start = time.Now()
		if _, err := core.EstimateDCE(sums, core.DefaultDCErOptions()); err != nil {
			return nil, err
		}
		optimizeTime := time.Since(start)
		share := optimizeTime.Seconds() / (optimizeTime.Seconds() + summarizeTime.Seconds())
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", m), fmtT(summarizeTime), fmtT(optimizeTime), fmtF(share),
		})
		cfg.logf("breakdown: m=%d", m)
	}
	return t, nil
}
