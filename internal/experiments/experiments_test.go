package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// quickCfg shrinks everything so the whole registry runs in CI time.
func quickCfg() Config {
	return Config{Scale: 20, Reps: 1, Seed: 42, MaxEdges: 20000, Quiet: true}
}

// skipInShort guards the slower experiment smoke runs so tier-1
// (`go test -short ./...`) finishes in seconds; a plain `go test ./...`
// still runs the full registry.
func skipInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment smoke run skipped in -short mode")
	}
}

func TestIDsComplete(t *testing.T) {
	want := []string{
		"ablation-bp", "ablation-ec", "ablation-nb", "ablation-optimizer",
		"breakdown",
		"fig10", "fig12", "fig13", "fig14", "fig3a", "fig3b", "fig5a", "fig5b",
		"fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "fig6f", "fig6g", "fig6h",
		"fig6i", "fig6j", "fig6k", "fig6l", "fig7", "fig7d", "fig8",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("have %d experiments %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", quickCfg()); err == nil {
		t.Error("expected unknown-experiment error")
	}
}

func parse(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", cell, err)
	}
	return v
}

func TestFig3aShape(t *testing.T) {
	skipInShort(t)
	tab, err := Run("fig3a", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 || len(tab.Columns) != 7 {
		t.Fatalf("bad table shape: %d rows, %d cols", len(tab.Rows), len(tab.Columns))
	}
	// At full labels (last row) every estimator should be usable and GS
	// accuracy should beat random (1/3).
	last := tab.Rows[len(tab.Rows)-1]
	gs := parse(t, last[1])
	if gs < 0.4 {
		t.Errorf("GS accuracy at f=1 is %v, want > 0.4", gs)
	}
	// DCEr (column 5) should track GS within 0.1 at high f.
	dcer := parse(t, last[5])
	if gs-dcer > 0.1 {
		t.Errorf("DCEr %v far below GS %v at f=1", dcer, gs)
	}
}

func TestFig3bShape(t *testing.T) {
	tab, err := Run("fig3b", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 2 {
		t.Fatalf("need ≥2 sizes, got %d", len(tab.Rows))
	}
	// Times must be positive.
	for _, row := range tab.Rows {
		if parse(t, row[1]) < 0 {
			t.Errorf("negative DCEr time in %v", row)
		}
	}
}

func TestFig5aConsistencyShape(t *testing.T) {
	cfg := quickCfg()
	cfg.Scale = 2 // needs a moderately large graph for the statistics
	tab, err := Run("fig5a", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("want 5 path lengths, got %d", len(tab.Rows))
	}
	// For every ℓ, the NB estimate must be closer to Hℓ than the full-path
	// estimate at ℓ≥2 (Theorem 4.1's point).
	for _, row := range tab.Rows[1:] {
		hl := parse(t, row[1])
		full := parse(t, row[2])
		nb := parse(t, row[3])
		if abs(nb-hl) > abs(full-hl)+0.02 {
			t.Errorf("l=%s: NB estimate %v further from H^l=%v than full %v", row[0], nb, hl, full)
		}
	}
}

func TestFig5bShape(t *testing.T) {
	skipInShort(t)
	cfg := quickCfg()
	tab, err := Run("fig5b", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("want 8 rows, got %d", len(tab.Rows))
	}
}

func TestFig6Runners(t *testing.T) {
	skipInShort(t)
	// Smoke-run every Figure 6 experiment at tiny scale; check row counts.
	wantRows := map[string]int{
		"fig6a": 5, "fig6b": 8, "fig6c": 5, "fig6d": 5, "fig6e": 7,
		"fig6f": 9, "fig6g": 7, "fig6h": 5, "fig6i": 4, "fig6j": 5,
		"fig6l": 6,
	}
	cfg := quickCfg()
	for id, want := range wantRows {
		tab, err := Run(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) != want {
			t.Errorf("%s: %d rows, want %d", id, len(tab.Rows), want)
		}
	}
}

func TestFig6kShape(t *testing.T) {
	skipInShort(t)
	tab, err := Run("fig6k", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 2 || len(tab.Columns) != 7 {
		t.Fatalf("bad fig6k shape %dx%d", len(tab.Rows), len(tab.Columns))
	}
}

func TestFig7Family(t *testing.T) {
	skipInShort(t)
	cfg := quickCfg()
	cfg.Scale = 8
	for _, id := range []string{"fig7", "fig7d", "fig8", "fig13", "fig14"} {
		tab, err := Run(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", id)
		}
	}
}

func TestFig12HeuristicGap(t *testing.T) {
	skipInShort(t)
	cfg := quickCfg()
	cfg.Scale = 4
	tab, err := Run("fig12", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("want 6 rows, got %d", len(tab.Rows))
	}
}

func TestFig10DivergenceAndAgreement(t *testing.T) {
	skipInShort(t)
	tab, err := Run("fig10", quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	first, last := tab.Rows[0], tab.Rows[len(tab.Rows)-1]
	// Uncentered beliefs must blow up; centered must stay bounded.
	u0, uN := parse(t, first[2]), parse(t, last[2])
	c0, cN := parse(t, first[1]), parse(t, last[1])
	if uN < 100*u0 {
		t.Errorf("uncentered beliefs did not diverge: %v -> %v", u0, uN)
	}
	if cN > 100*(c0+1) {
		t.Errorf("centered beliefs diverged: %v -> %v", c0, cN)
	}
	for _, row := range tab.Rows {
		if row[3] != "yes" {
			t.Errorf("labels disagreed at iteration %s (Theorem 3.1 violated)", row[0])
		}
	}
}

func TestAblationRunners(t *testing.T) {
	skipInShort(t)
	wantRows := map[string]int{
		"ablation-ec":        3,
		"ablation-nb":        3,
		"ablation-bp":        2,
		"ablation-optimizer": 3,
	}
	cfg := quickCfg()
	for id, want := range wantRows {
		tab, err := Run(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) != want {
			t.Errorf("%s: %d rows, want %d", id, len(tab.Rows), want)
		}
	}
}

func TestBreakdownSharesDecrease(t *testing.T) {
	cfg := quickCfg()
	cfg.MaxEdges = 100000
	tab, err := Run("breakdown", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 2 {
		t.Fatalf("need ≥2 sizes, got %d", len(tab.Rows))
	}
	first := parse(t, tab.Rows[0][3])
	last := parse(t, tab.Rows[len(tab.Rows)-1][3])
	if last >= first {
		t.Errorf("optimization share should fall with graph size: %v -> %v", first, last)
	}
}

func TestTablePrint(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "T", Params: "p",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   "n",
	}
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	for _, want := range []string{"== x: T", "params: p", "a", "bb", "333", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("Print output missing %q:\n%s", want, out)
		}
	}
}

func TestGrow(t *testing.T) {
	g := grow(10, 1000, 10)
	if len(g) != 3 || g[0] != 10 || g[2] != 1000 {
		t.Errorf("grow = %v", g)
	}
}

func TestMean(t *testing.T) {
	if mean(nil) != 0 {
		t.Error("mean(nil)")
	}
	if mean([]float64{1, 3}) != 2 {
		t.Error("mean([1,3])")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
