package experiments

import (
	"fmt"

	"factorgraph/internal/dense"
	"factorgraph/internal/labels"
	"factorgraph/internal/propagation"
	"factorgraph/internal/sparse"
)

func init() {
	register("fig10", Fig10)
}

// Fig10 reproduces Figure 10 / Example C.1: LinBP with the uncentered H
// (ρ(H)=1) diverges — belief magnitudes grow without bound — while the
// centered H̃ (ρ=0.7) converges; yet at every iteration the argmax labels
// of the two runs are identical (Theorem 3.1). The table tracks the belief
// spread and label agreement per iteration for one observed node.
func Fig10(cfg Config) (*Table, error) {
	cfg.defaults()
	h := dense.FromRows([][]float64{
		{0.1, 0.8, 0.1},
		{0.8, 0.1, 0.1},
		{0.1, 0.1, 0.8},
	})
	const k = 3
	// Small deterministic heterophilous graph: two triangles joined by a
	// path, a few seeds.
	n := 60
	var edges [][2]int32
	for i := 0; i < n-1; i++ {
		edges = append(edges, [2]int32{int32(i), int32(i + 1)})
		if i%3 == 0 && i+3 < n {
			edges = append(edges, [2]int32{int32(i), int32(i + 3)})
		}
	}
	w, err := sparse.NewSymmetricFromEdges(n, edges, nil)
	if err != nil {
		return nil, err
	}
	seed := make([]int, n)
	for i := range seed {
		seed[i] = labels.Unlabeled
	}
	seed[0], seed[20], seed[40] = 0, 1, 2
	x, err := labels.Matrix(seed, k)
	if err != nil {
		return nil, err
	}

	hTilde := dense.AddScalar(h, -1.0/float64(k))
	// s chosen so the centered run converges (s=0.95 < 1) — the same ε
	// makes the uncentered spectral radius exceed 1 (s≈1.18 in the paper).
	eps, err := propagation.ScalingFactor(w, hTilde, 0.95, 100)
	if err != nil {
		return nil, err
	}
	xTilde := dense.AddScalar(x, -1.0/float64(k))

	t := &Table{
		ID:      "fig10",
		Title:   "Uncentered LinBP diverges while labels stay identical (Example C.1)",
		Params:  "k=3, rho(H)=1, rho(H~)=0.7, s=0.95",
		Columns: []string{"iter", "max|F~| (centered)", "max|F| (uncentered)", "labels agree"},
		Notes:   "Centered beliefs stay bounded; uncentered grow; argmax labels agree every iteration (Theorem 3.1).",
	}
	hc := dense.Scale(hTilde, eps)
	hu := dense.Scale(h, eps)
	fc := xTilde.Clone()
	fu := x.Clone()
	for it := 1; it <= 30; it++ {
		fc = dense.Add(xTilde, w.MulDense(dense.Mul(fc, hc)))
		fu = dense.Add(x, w.MulDense(dense.Mul(fu, hu)))
		agree := "yes"
		lc := dense.ArgmaxRows(fc)
		lu := dense.ArgmaxRows(fu)
		for i := range lc {
			if lc[i] == lu[i] {
				continue
			}
			// Theorem 3.1 guarantees identical orderings; disagreement can
			// only come from exactly tied beliefs (nodes equidistant from
			// symmetric seeds) resolving differently under last-bit
			// rounding. Treat near-ties as agreement.
			rc := fc.Row(i)
			tol := 1e-9 * (1 + dense.MaxAbs(fc))
			if diff := rc[lc[i]] - rc[lu[i]]; diff > tol || diff < -tol {
				agree = "no"
				break
			}
		}
		if it%3 == 0 || it == 1 {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", it),
				fmt.Sprintf("%.3g", dense.MaxAbs(fc)),
				fmt.Sprintf("%.3g", dense.MaxAbs(fu)),
				agree,
			})
		}
	}
	return t, nil
}
