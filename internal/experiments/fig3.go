package experiments

import (
	"fmt"
	"time"

	"factorgraph/internal/core"
	"factorgraph/internal/labels"
	"factorgraph/internal/propagation"
)

func init() {
	register("fig3a", Fig3a)
	register("fig3b", Fig3b)
}

// Fig3a reproduces Figure 3a: end-to-end macro-accuracy versus label
// sparsity f on the n=10k, d=25, h=3 synthetic graph for GS, LCE, MCE,
// DCE, DCEr and Holdout. The paper's headline: DCEr matches GS down to
// f = 0.0008 (8 labeled nodes), accuracy ≈ 0.51.
func Fig3a(cfg Config) (*Table, error) {
	cfg.defaults()
	n := 10000 / cfg.Scale
	methods := []string{"GS", "LCE", "MCE", "DCE", "DCEr", "Holdout"}
	fs := []float64{0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 0.9}

	t := &Table{
		ID:      "fig3a",
		Title:   "Estimation & propagation accuracy vs label sparsity",
		Params:  fmt.Sprintf("n=%d, d=25, h=3, k=3, reps=%d", n, cfg.Reps),
		Columns: append([]string{"f"}, methods...),
		Notes:   "DCEr should track GS across all f; MCE/LCE degrade for small f; Holdout is close but orders of magnitude slower.",
	}
	for _, f := range fs {
		cfg.logf("fig3a: f=%g", f)
		sums := make([][]float64, len(methods))
		for rep := 0; rep < cfg.Reps; rep++ {
			seed := cfg.Seed + uint64(rep)
			res, err := syntheticGraph(n, 25, 3, seed)
			if err != nil {
				return nil, err
			}
			sl, err := sampleSeeds(res.Labels, 3, f, seed)
			if err != nil {
				return nil, err
			}
			accs, err := endToEnd(methods, res.Graph.Adj, sl, res.Labels, 3, seed)
			if err != nil {
				return nil, err
			}
			for i, a := range accs {
				sums[i] = append(sums[i], a)
			}
		}
		row := []string{fmt.Sprintf("%.4f", f)}
		for i := range methods {
			row = append(row, fmtF(mean(sums[i])))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig3b reproduces Figure 3b: wall-clock time of DCEr, Holdout and LinBP
// propagation versus the number of edges m (d=5, h=8). The shape to
// reproduce: all linear in m, DCEr well below propagation, Holdout
// 3–4 orders of magnitude above DCEr.
func Fig3b(cfg Config) (*Table, error) {
	cfg.defaults()
	t := &Table{
		ID:      "fig3b",
		Title:   "Scalability: estimation vs propagation time",
		Params:  fmt.Sprintf("d=5, h=8, k=3, f=0.01, maxEdges=%d", cfg.MaxEdges),
		Columns: []string{"m", "DCEr[s]", "Propagation[s]", "Holdout[s]"},
		Notes:   "Holdout is run only up to 100k edges (as in the paper, it becomes infeasible).",
	}
	const d = 5
	for _, m := range grow(1000, cfg.MaxEdges, 10) {
		n := 2 * m / d
		cfg.logf("fig3b: m=%d", m)
		res, err := syntheticGraph(n, d, 8, cfg.Seed)
		if err != nil {
			return nil, err
		}
		sl, err := sampleSeeds(res.Labels, 3, 0.01, cfg.Seed)
		if err != nil {
			return nil, err
		}
		_, dcerTime, err := estimate("DCEr", res.Graph.Adj, sl, res.Labels, 3, cfg.Seed)
		if err != nil {
			return nil, err
		}
		// Propagation time: LinBP with the gold standard, 10 iterations.
		gs, err := core.GoldStandard(res.Graph.Adj, res.Labels, 3)
		if err != nil {
			return nil, err
		}
		x, err := labels.Matrix(sl, 3)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := propagation.LinBP(res.Graph.Adj, x, gs, propagation.DefaultLinBPOptions()); err != nil {
			return nil, err
		}
		propTime := time.Since(start)

		holdoutCell := "-"
		if m <= 100000 {
			_, hoTime, err := estimate("Holdout", res.Graph.Adj, sl, res.Labels, 3, cfg.Seed)
			if err != nil {
				return nil, err
			}
			holdoutCell = fmtT(hoTime)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", m), fmtT(dcerTime), fmtT(propTime), holdoutCell,
		})
	}
	return t, nil
}
