package experiments

import (
	"fmt"
	"time"

	"factorgraph/internal/core"
	"factorgraph/internal/dense"
	"factorgraph/internal/gen"
)

func init() {
	register("fig5a", Fig5a)
	register("fig5b", Fig5b)
}

// Fig5a reproduces Figure 5a / Example 4.2: the top entry of Hℓ versus the
// corresponding entries of the full-path statistic P̂⁽ℓ⁾ and the
// non-backtracking statistic P̂⁽ℓ⁾NB on an n=10k, d=20, h=3, f=0.1 graph.
// The NB column should track Hℓ (consistent estimator); the full-path
// column overshoots (diagonal bias O(1/d) pushes the top entry down...
// and the diagonal up).
func Fig5a(cfg Config) (*Table, error) {
	cfg.defaults()
	n := 10000 / cfg.Scale
	H := core.HFromSkew(3)
	// The tracked entry is the (0,1) "top" entry of Hℓ: series
	// 0.6, 0.44, 0.376, 0.3504, … for ℓ = 1..5 (uniform degrees as in the
	// example).
	const lmax = 5
	t := &Table{
		ID:      "fig5a",
		Title:   "Consistency: Hℓ vs full-path P̂(ℓ) vs non-backtracking P̂(ℓ)NB (entry (1,2))",
		Params:  fmt.Sprintf("n=%d, d=20, h=3, f=0.1, uniform degrees, reps=%d", n, cfg.Reps),
		Columns: []string{"l", "H^l", "P_full", "P_NB"},
		Notes:   "P_NB should match H^l (Theorem 4.1); P_full is biased.",
	}
	hl := dense.Powers(H, lmax)
	var full, nb [lmax][]float64
	for rep := 0; rep < cfg.Reps; rep++ {
		seed := cfg.Seed + uint64(rep)
		res, err := gen.Generate(gen.Config{
			N: n, M: 10 * n, Alpha: gen.Balanced(3), H: H, Dist: gen.Uniform{}, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		sl, err := sampleSeeds(res.Labels, 3, 0.1, seed)
		if err != nil {
			return nil, err
		}
		sFull, err := core.Summarize(res.Graph.Adj, sl, 3, core.SummaryOptions{LMax: lmax, NonBacktracking: false})
		if err != nil {
			return nil, err
		}
		sNB, err := core.Summarize(res.Graph.Adj, sl, 3, core.SummaryOptions{LMax: lmax, NonBacktracking: true})
		if err != nil {
			return nil, err
		}
		for l := 0; l < lmax; l++ {
			full[l] = append(full[l], sFull.P[l].At(0, 1))
			nb[l] = append(nb[l], sNB.P[l].At(0, 1))
		}
	}
	for l := 0; l < lmax; l++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", l+1),
			fmtF(hl[l].At(0, 1)),
			fmtF(mean(full[l])),
			fmtF(mean(nb[l])),
		})
	}
	return t, nil
}

// Fig5b reproduces Figure 5b / Example 4.6: time to materialize the
// explicit Wℓ_NB powers versus the factorized sketch computation of
// Algorithm 4.4 for growing ℓ. The explicit path blows up (intermediate
// densification ~dℓ⁻¹m entries); the factorized path stays linear.
func Fig5b(cfg Config) (*Table, error) {
	cfg.defaults()
	n := 10000 / cfg.Scale
	t := &Table{
		ID:      "fig5b",
		Title:   "Factorized path summation vs explicit W^l",
		Params:  fmt.Sprintf("n=%d, d=20, h=3, f=0.1", n),
		Columns: []string{"l", "explicit W^l [s]", "factorized P(l)NB [s]"},
		Notes:   "Explicit evaluation stops once it exceeds 20s (the paper's point: it becomes infeasible; the factorized sketch does 10^14 paths in <0.1s).",
	}
	res, err := gen.Generate(gen.Config{
		N: n, M: 10 * n, Alpha: gen.Balanced(3), H: core.HFromSkew(3), Dist: gen.Uniform{}, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	sl, err := sampleSeeds(res.Labels, 3, 0.1, cfg.Seed)
	if err != nil {
		return nil, err
	}
	explicitDead := false
	for l := 1; l <= 8; l++ {
		explicitCell := "-"
		if !explicitDead {
			start := time.Now()
			if _, err := core.ExplicitNBPowers(res.Graph.Adj, l); err != nil {
				return nil, err
			}
			el := time.Since(start)
			explicitCell = fmtT(el)
			if el > 20*time.Second {
				explicitDead = true
			}
		}
		start := time.Now()
		if _, err := core.Summarize(res.Graph.Adj, sl, 3, core.SummaryOptions{LMax: l, NonBacktracking: true}); err != nil {
			return nil, err
		}
		factored := time.Since(start)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", l), explicitCell, fmtT(factored)})
		cfg.logf("fig5b: l=%d done", l)
	}
	return t, nil
}
