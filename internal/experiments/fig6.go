package experiments

import (
	"fmt"
	"time"

	"factorgraph/internal/core"
	"factorgraph/internal/dense"
	"factorgraph/internal/gen"
	"factorgraph/internal/labels"
	"factorgraph/internal/metrics"
	"factorgraph/internal/optimize"
	"factorgraph/internal/propagation"
	"factorgraph/internal/sparse"
)

func init() {
	register("fig6a", Fig6a)
	register("fig6b", Fig6b)
	register("fig6c", Fig6c)
	register("fig6d", Fig6d)
	register("fig6e", Fig6e)
	register("fig6f", Fig6f)
	register("fig6g", Fig6g)
	register("fig6h", Fig6h)
	register("fig6i", Fig6i)
	register("fig6j", Fig6j)
	register("fig6k", Fig6k)
	register("fig6l", Fig6l)
}

// dceWithVariantAndLmax estimates H with DCE using a specific normalization
// variant and maximum path length.
func dceWithVariantAndLmax(w *sparse.CSR, seed []int, k int, variant core.Normalization, lmax int, lambda float64, restarts int, rngSeed uint64) (*dense.Matrix, error) {
	s, err := core.Summarize(w, seed, k, core.SummaryOptions{LMax: lmax, NonBacktracking: true, Variant: variant})
	if err != nil {
		return nil, err
	}
	return core.EstimateDCE(s, core.DCEOptions{Lambda: lambda, Restarts: restarts, Seed: rngSeed})
}

// Fig6a reproduces Figure 6a: L2 norm of the DCE estimate from the planted
// H for the 3 normalization variants as ℓmax grows (λ=10, f=0.05, h=8).
// Expected shape: variant 1 best and improving with ℓmax; variant 3 worst.
func Fig6a(cfg Config) (*Table, error) {
	cfg.defaults()
	n := 10000 / cfg.Scale
	H := core.HFromSkew(8)
	t := &Table{
		ID:      "fig6a",
		Title:   "L2 norm of DCE for 3 normalization variants vs max path length",
		Params:  fmt.Sprintf("n=%d, d=25, h=8, f=0.05, lambda=10, reps=%d", n, cfg.Reps),
		Columns: []string{"lmax", "variant1", "variant2", "variant3"},
	}
	for lmax := 1; lmax <= 5; lmax++ {
		row := []string{fmt.Sprintf("%d", lmax)}
		for _, v := range []core.Normalization{core.Variant1, core.Variant2, core.Variant3} {
			var l2s []float64
			for rep := 0; rep < cfg.Reps; rep++ {
				seed := cfg.Seed + uint64(rep)
				res, err := syntheticGraph(n, 25, 8, seed)
				if err != nil {
					return nil, err
				}
				sl, err := sampleSeeds(res.Labels, 3, 0.05, seed)
				if err != nil {
					return nil, err
				}
				est, err := dceWithVariantAndLmax(res.Graph.Adj, sl, 3, v, lmax, 10, 1, seed)
				if err != nil {
					return nil, err
				}
				l2s = append(l2s, metrics.L2(est, H))
			}
			row = append(row, fmtF(mean(l2s)))
		}
		cfg.logf("fig6a: lmax=%d", lmax)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig6b reproduces Figure 6b: L2 norm of DCEr as a function of the scaling
// factor λ and ℓmax, in the extremely sparse regime f=0.001. Longer paths
// (ℓmax=5) with λ≈10 should win; ℓmax=1 (MCE-equivalent) fails.
func Fig6b(cfg Config) (*Table, error) {
	cfg.defaults()
	n := 10000 / cfg.Scale
	H := core.HFromSkew(8)
	lambdas := []float64{0.1, 0.3, 1, 3, 10, 30, 100, 1000}
	t := &Table{
		ID:      "fig6b",
		Title:   "L2 norm of DCEr vs lambda and lmax",
		Params:  fmt.Sprintf("n=%d, d=25, h=8, f=0.001, reps=%d", n, cfg.Reps),
		Columns: []string{"lambda", "lmax=1", "lmax=2", "lmax=3", "lmax=4", "lmax=5"},
	}
	for _, lambda := range lambdas {
		row := []string{fmt.Sprintf("%g", lambda)}
		for lmax := 1; lmax <= 5; lmax++ {
			var l2s []float64
			for rep := 0; rep < cfg.Reps; rep++ {
				seed := cfg.Seed + uint64(rep)
				res, err := syntheticGraph(n, 25, 8, seed)
				if err != nil {
					return nil, err
				}
				sl, err := sampleSeeds(res.Labels, 3, 0.001, seed)
				if err != nil {
					return nil, err
				}
				est, err := dceWithVariantAndLmax(res.Graph.Adj, sl, 3, core.Variant1, lmax, lambda, 10, seed)
				if err != nil {
					return nil, err
				}
				l2s = append(l2s, metrics.L2(est, H))
			}
			row = append(row, fmtF(mean(l2s)))
		}
		cfg.logf("fig6b: lambda=%g", lambda)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// lambdaGrid is the λ sweep used to locate the optimum in Figures 6c/6d.
var lambdaGrid = []float64{0.1, 0.3, 1, 3, 10, 30, 100}

// optimalLambda returns the grid λ minimizing the mean L2 of DCEr from the
// planted H on the given workload.
func optimalLambda(cfg Config, n int, d float64, skew, f float64) (float64, float64, error) {
	H := core.HFromSkew(skew)
	bestLambda, bestL2 := 0.0, 0.0
	for li, lambda := range lambdaGrid {
		var l2s []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			seed := cfg.Seed + uint64(rep)
			res, err := syntheticGraph(n, d, skew, seed)
			if err != nil {
				return 0, 0, err
			}
			sl, err := sampleSeeds(res.Labels, 3, f, seed)
			if err != nil {
				return 0, 0, err
			}
			est, err := dceWithVariantAndLmax(res.Graph.Adj, sl, 3, core.Variant1, 5, lambda, 10, seed)
			if err != nil {
				return 0, 0, err
			}
			l2s = append(l2s, metrics.L2(est, H))
		}
		if m := mean(l2s); li == 0 || m < bestL2 {
			bestLambda, bestL2 = lambda, m
		}
	}
	return bestLambda, bestL2, nil
}

// Fig6c reproduces Figure 6c: the optimal λ as label sparsity f varies
// (n=10k, h=8, d=25). Expected shape: λ≈10 is robust for sparse labels,
// dropping toward small λ once labels are plentiful.
func Fig6c(cfg Config) (*Table, error) {
	cfg.defaults()
	n := 10000 / cfg.Scale
	t := &Table{
		ID:      "fig6c",
		Title:   "Optimal lambda vs label sparsity",
		Params:  fmt.Sprintf("n=%d, d=25, h=8, reps=%d", n, cfg.Reps),
		Columns: []string{"f", "opt lambda", "L2 at opt"},
	}
	for _, f := range []float64{0.01, 0.03, 0.1, 0.3, 1} {
		lam, l2, err := optimalLambda(cfg, n, 25, 8, f)
		if err != nil {
			return nil, err
		}
		cfg.logf("fig6c: f=%g -> lambda=%g", f, lam)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%.2f", f), fmt.Sprintf("%g", lam), fmtF(l2)})
	}
	return t, nil
}

// Fig6d reproduces Figure 6d: the optimal λ as the average degree d varies
// (n=10k, h=8, f=0.1).
func Fig6d(cfg Config) (*Table, error) {
	cfg.defaults()
	n := 10000 / cfg.Scale
	t := &Table{
		ID:      "fig6d",
		Title:   "Optimal lambda vs average degree",
		Params:  fmt.Sprintf("n=%d, h=8, f=0.1, reps=%d", n, cfg.Reps),
		Columns: []string{"d", "opt lambda", "L2 at opt"},
	}
	for _, d := range []float64{3, 5, 10, 30, 100} {
		lam, l2, err := optimalLambda(cfg, n, d, 8, 0.1)
		if err != nil {
			return nil, err
		}
		cfg.logf("fig6d: d=%g -> lambda=%g", d, lam)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%g", d), fmt.Sprintf("%g", lam), fmtF(l2)})
	}
	return t, nil
}

// Fig6e reproduces Figure 6e: estimation L2 of MCE, DCE and DCEr versus f
// (n=10k, h=8, d=25). DCE gets trapped in local optima at small f; DCEr's
// restarts recover the global optimum.
func Fig6e(cfg Config) (*Table, error) {
	cfg.defaults()
	n := 10000 / cfg.Scale
	H := core.HFromSkew(8)
	t := &Table{
		ID:      "fig6e",
		Title:   "L2 norm of MCE, DCE, DCEr vs label sparsity",
		Params:  fmt.Sprintf("n=%d, d=25, h=8, reps=%d", n, cfg.Reps),
		Columns: []string{"f", "MCE", "DCE", "DCEr"},
	}
	for _, f := range []float64{0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1} {
		mceL2s, dceL2s, dcerL2s := []float64{}, []float64{}, []float64{}
		for rep := 0; rep < cfg.Reps; rep++ {
			seed := cfg.Seed + uint64(rep)
			res, err := syntheticGraph(n, 25, 8, seed)
			if err != nil {
				return nil, err
			}
			sl, err := sampleSeeds(res.Labels, 3, f, seed)
			if err != nil {
				return nil, err
			}
			for _, m := range []struct {
				name string
				dst  *[]float64
			}{{"MCE", &mceL2s}, {"DCE", &dceL2s}, {"DCEr", &dcerL2s}} {
				est, _, err := estimate(m.name, res.Graph.Adj, sl, res.Labels, 3, seed)
				if err != nil {
					return nil, err
				}
				*m.dst = append(*m.dst, metrics.L2(est, H))
			}
		}
		cfg.logf("fig6e: f=%g", f)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f", f), fmtF(mean(mceL2s)), fmtF(mean(dceL2s)), fmtF(mean(dcerL2s)),
		})
	}
	return t, nil
}

// Fig6f reproduces Figure 6f: the accuracy-versus-estimation-time scatter
// at f=0.003 (n=10k, d=25, h=3), with the Holdout baseline at
// b ∈ {1,2,4,8} splits. DCEr should reach GS-level accuracy thousands of
// times faster than Holdout.
func Fig6f(cfg Config) (*Table, error) {
	cfg.defaults()
	n := 10000 / cfg.Scale
	t := &Table{
		ID:      "fig6f",
		Title:   "Accuracy vs estimation time",
		Params:  fmt.Sprintf("n=%d, d=25, h=3, f=0.003, reps=%d", n, cfg.Reps),
		Columns: []string{"method", "time[s]", "accuracy"},
	}
	type cell struct {
		times, accs []float64
	}
	results := map[string]*cell{}
	order := []string{"GS", "MCE", "LCE", "DCE", "DCEr", "Holdout-b1", "Holdout-b2", "Holdout-b4", "Holdout-b8"}
	for _, name := range order {
		results[name] = &cell{}
	}
	for rep := 0; rep < cfg.Reps; rep++ {
		seed := cfg.Seed + uint64(rep)
		res, err := syntheticGraph(n, 25, 3, seed)
		if err != nil {
			return nil, err
		}
		sl, err := sampleSeeds(res.Labels, 3, 0.003, seed)
		if err != nil {
			return nil, err
		}
		for _, name := range []string{"GS", "MCE", "LCE", "DCE", "DCEr"} {
			h, dt, err := estimate(name, res.Graph.Adj, sl, res.Labels, 3, seed)
			if err != nil {
				return nil, err
			}
			acc, err := propagateAccuracy(res.Graph.Adj, sl, res.Labels, 3, h)
			if err != nil {
				return nil, err
			}
			results[name].times = append(results[name].times, dt.Seconds())
			results[name].accs = append(results[name].accs, acc)
		}
		for _, b := range []int{1, 2, 4, 8} {
			start := time.Now()
			h, err := core.EstimateHoldout(res.Graph.Adj, sl, 3, core.HoldoutOptions{Splits: b, Seed: seed})
			if err != nil {
				return nil, err
			}
			dt := time.Since(start)
			acc, err := propagateAccuracy(res.Graph.Adj, sl, res.Labels, 3, h)
			if err != nil {
				return nil, err
			}
			name := fmt.Sprintf("Holdout-b%d", b)
			results[name].times = append(results[name].times, dt.Seconds())
			results[name].accs = append(results[name].accs, acc)
		}
		cfg.logf("fig6f: rep %d done", rep)
	}
	for _, name := range order {
		c := results[name]
		t.Rows = append(t.Rows, []string{name, fmtF(mean(c.times)), fmtF(mean(c.accs))})
	}
	return t, nil
}

// Fig6g reproduces Figure 6g: end-to-end accuracy versus the number of
// classes k (n=10k, d=25, h=3, f=0.01), with a random-assignment baseline.
// DCEr should degrade gracefully while LCE/MCE fall toward random.
func Fig6g(cfg Config) (*Table, error) {
	cfg.defaults()
	n := 10000 / cfg.Scale
	methods := []string{"GS", "LCE", "MCE", "DCE", "DCEr", "Holdout"}
	t := &Table{
		ID:      "fig6g",
		Title:   "Estimation & propagation accuracy vs number of classes",
		Params:  fmt.Sprintf("n=%d, d=25, h=3, f=0.01, reps=%d", n, cfg.Reps),
		Columns: append(append([]string{"k"}, methods...), "Random"),
	}
	for k := 2; k <= 8; k++ {
		sums := make([][]float64, len(methods))
		for rep := 0; rep < cfg.Reps; rep++ {
			seed := cfg.Seed + uint64(rep)
			res, err := gen.Generate(gen.Config{
				N: n, M: int(25 * float64(n) / 2), Alpha: gen.Balanced(k),
				H: core.HPlanted(k, 3), Dist: gen.PowerLaw{Exponent: 0.3}, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			sl, err := sampleSeeds(res.Labels, k, 0.01, seed)
			if err != nil {
				return nil, err
			}
			accs, err := endToEnd(methods, res.Graph.Adj, sl, res.Labels, k, seed)
			if err != nil {
				return nil, err
			}
			for i, a := range accs {
				sums[i] = append(sums[i], a)
			}
		}
		row := []string{fmt.Sprintf("%d", k)}
		for i := range methods {
			row = append(row, fmtF(mean(sums[i])))
		}
		row = append(row, fmtF(1/float64(k)))
		cfg.logf("fig6g: k=%d", k)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig6h reproduces Figure 6h: accuracy of DCEr with r restarts relative to
// the "global minimum" baseline (DCE initialized at the gold standard), for
// k = 3..7 (n=10k, d=15, h=8, f=0.09). With r=10, relative accuracy ≈ 1.
func Fig6h(cfg Config) (*Table, error) {
	cfg.defaults()
	n := 10000 / cfg.Scale
	restarts := []int{2, 3, 4, 5, 10}
	t := &Table{
		ID:      "fig6h",
		Title:   "Relative accuracy of DCEr vs restarts (baseline: DCE initialized at GS)",
		Params:  fmt.Sprintf("n=%d, d=15, h=8, f=0.09, reps=%d", n, cfg.Reps),
		Columns: []string{"k", "r=2", "r=3", "r=4", "r=5", "r=10"},
	}
	for k := 3; k <= 7; k++ {
		rel := make([][]float64, len(restarts))
		for rep := 0; rep < cfg.Reps; rep++ {
			seed := cfg.Seed + uint64(rep)
			H := core.HPlanted(k, 8)
			res, err := gen.Generate(gen.Config{
				N: n, M: int(15 * float64(n) / 2), Alpha: gen.Balanced(k),
				H: H, Dist: gen.PowerLaw{Exponent: 0.3}, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			sl, err := sampleSeeds(res.Labels, k, 0.09, seed)
			if err != nil {
				return nil, err
			}
			sums, err := core.Summarize(res.Graph.Adj, sl, k, core.DefaultSummaryOptions())
			if err != nil {
				return nil, err
			}
			// Global-minimum baseline: descend from the planted H itself.
			obj, err := core.NewDCEObjective(sums, core.PathWeights(10, sums.LMax))
			if err != nil {
				return nil, err
			}
			start, err := core.ToFree(H)
			if err != nil {
				return nil, err
			}
			resOpt, err := optimize.GradientDescent(obj, start, optimize.GDOptions{})
			if err != nil {
				return nil, err
			}
			hGlobal, err := core.FromFree(resOpt.X, k)
			if err != nil {
				return nil, err
			}
			accGlobal, err := propagateAccuracy(res.Graph.Adj, sl, res.Labels, k, hGlobal)
			if err != nil {
				return nil, err
			}
			for ri, r := range restarts {
				est, err := core.EstimateDCE(sums, core.DCEOptions{Lambda: 10, Restarts: r, Seed: seed})
				if err != nil {
					return nil, err
				}
				acc, err := propagateAccuracy(res.Graph.Adj, sl, res.Labels, k, est)
				if err != nil {
					return nil, err
				}
				if accGlobal > 0 {
					rel[ri] = append(rel[ri], acc/accGlobal)
				}
			}
		}
		row := []string{fmt.Sprintf("%d", k)}
		for ri := range restarts {
			row = append(row, fmtF(mean(rel[ri])))
		}
		cfg.logf("fig6h: k=%d", k)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig6i reproduces Figure 6i: the homophily sanity check. On a
// heterophilous graph (h=3 pattern), a homophily method (harmonic
// functions) collapses while GS-LinBP and DCEr-LinBP stay accurate.
func Fig6i(cfg Config) (*Table, error) {
	cfg.defaults()
	n := 10000 / cfg.Scale
	t := &Table{
		ID:      "fig6i",
		Title:   "Homophily baselines under heterophily",
		Params:  fmt.Sprintf("n=%d, d=15, h=3, reps=%d", n, cfg.Reps),
		Columns: []string{"f", "GS", "DCEr", "Homophily(harmonic)"},
	}
	for _, f := range []float64{0.001, 0.01, 0.1, 0.9} {
		var gsA, dcerA, homA []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			seed := cfg.Seed + uint64(rep)
			res, err := syntheticGraph(n, 15, 3, seed)
			if err != nil {
				return nil, err
			}
			sl, err := sampleSeeds(res.Labels, 3, f, seed)
			if err != nil {
				return nil, err
			}
			accs, err := endToEnd([]string{"GS", "DCEr"}, res.Graph.Adj, sl, res.Labels, 3, seed)
			if err != nil {
				return nil, err
			}
			gsA = append(gsA, accs[0])
			dcerA = append(dcerA, accs[1])
			pred, err := propagation.Harmonic(res.Graph.Adj, sl, 3, propagation.HarmonicOptions{})
			if err != nil {
				return nil, err
			}
			homA = append(homA, metrics.MacroAccuracy(pred, res.Labels, sl, 3))
		}
		cfg.logf("fig6i: f=%g", f)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f", f), fmtF(mean(gsA)), fmtF(mean(dcerA)), fmtF(mean(homA)),
		})
	}
	return t, nil
}

// fig6jH is the general (imbalanced) compatibility matrix of Figure 6j.
func fig6jH() *dense.Matrix {
	return dense.FromRows([][]float64{
		{0.2, 0.6, 0.2},
		{0.6, 0.1, 0.3},
		{0.2, 0.3, 0.5},
	})
}

// Fig6j reproduces Figure 6j: end-to-end accuracy under class imbalance
// α = [1/6, 1/3, 1/2] and the general H above (n=10k, d=25).
func Fig6j(cfg Config) (*Table, error) {
	cfg.defaults()
	n := 10000 / cfg.Scale
	methods := []string{"GS", "LCE", "MCE", "DCE", "DCEr", "Holdout"}
	t := &Table{
		ID:      "fig6j",
		Title:   "Accuracy vs sparsity under class imbalance alpha=[1/6,1/3,1/2]",
		Params:  fmt.Sprintf("n=%d, d=25, general H, reps=%d", n, cfg.Reps),
		Columns: append([]string{"f"}, methods...),
	}
	alpha := []float64{1.0 / 6, 1.0 / 3, 1.0 / 2}
	for _, f := range []float64{0.0001, 0.001, 0.01, 0.1, 0.9} {
		sums := make([][]float64, len(methods))
		for rep := 0; rep < cfg.Reps; rep++ {
			seed := cfg.Seed + uint64(rep)
			res, err := gen.Generate(gen.Config{
				N: n, M: int(25 * float64(n) / 2), Alpha: alpha, H: fig6jH(),
				Dist: gen.PowerLaw{Exponent: 0.3}, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			sl, err := sampleSeeds(res.Labels, 3, f, seed)
			if err != nil {
				return nil, err
			}
			accs, err := endToEnd(methods, res.Graph.Adj, sl, res.Labels, 3, seed)
			if err != nil {
				return nil, err
			}
			for i, a := range accs {
				sums[i] = append(sums[i], a)
			}
		}
		row := []string{fmt.Sprintf("%.4f", f)}
		for i := range methods {
			row = append(row, fmtF(mean(sums[i])))
		}
		cfg.logf("fig6j: f=%g", f)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig6k reproduces Figure 6k: estimation time of all methods plus
// propagation versus the number of edges m (d=5, h=8, f=0.01). MCE fastest,
// DCE ≈ DCEr for large graphs (summaries dominate), LCE scales with n,
// Holdout off the chart.
func Fig6k(cfg Config) (*Table, error) {
	cfg.defaults()
	t := &Table{
		ID:      "fig6k",
		Title:   "Scalability of all estimators with graph size",
		Params:  fmt.Sprintf("d=5, h=8, f=0.01, maxEdges=%d", cfg.MaxEdges),
		Columns: []string{"m", "MCE[s]", "LCE[s]", "DCE[s]", "DCEr[s]", "Holdout[s]", "prop[s]"},
		Notes:   "Holdout only up to 100k edges.",
	}
	const d = 5
	for _, m := range grow(1000, cfg.MaxEdges, 10) {
		n := 2 * m / d
		res, err := syntheticGraph(n, d, 8, cfg.Seed)
		if err != nil {
			return nil, err
		}
		sl, err := sampleSeeds(res.Labels, 3, 0.01, cfg.Seed)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", m)}
		for _, name := range []string{"MCE", "LCE", "DCE", "DCEr"} {
			_, dt, err := estimate(name, res.Graph.Adj, sl, res.Labels, 3, cfg.Seed)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtT(dt))
		}
		if m <= 100000 {
			_, dt, err := estimate("Holdout", res.Graph.Adj, sl, res.Labels, 3, cfg.Seed)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtT(dt))
		} else {
			row = append(row, "-")
		}
		gs, err := core.GoldStandard(res.Graph.Adj, res.Labels, 3)
		if err != nil {
			return nil, err
		}
		x, err := labels.Matrix(sl, 3)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := propagation.LinBP(res.Graph.Adj, x, gs, propagation.DefaultLinBPOptions()); err != nil {
			return nil, err
		}
		row = append(row, fmtT(time.Since(start)))
		cfg.logf("fig6k: m=%d", m)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig6l reproduces Figure 6l: estimation time versus the number of classes
// k (n=10k, d=25, h=3, f=0.01). The O(k⁴r) optimization term grows for
// DCEr; MCE stays cheap.
func Fig6l(cfg Config) (*Table, error) {
	cfg.defaults()
	n := 10000 / cfg.Scale
	t := &Table{
		ID:      "fig6l",
		Title:   "Scalability with number of classes",
		Params:  fmt.Sprintf("n=%d, d=25, h=3, f=0.01", n),
		Columns: []string{"k", "LCE[s]", "MCE[s]", "DCE[s]", "DCEr[s]", "Holdout[s]"},
	}
	for k := 2; k <= 7; k++ {
		res, err := gen.Generate(gen.Config{
			N: n, M: int(25 * float64(n) / 2), Alpha: gen.Balanced(k),
			H: core.HPlanted(k, 3), Dist: gen.PowerLaw{Exponent: 0.3}, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		sl, err := sampleSeeds(res.Labels, k, 0.01, cfg.Seed)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("%d", k)}
		for _, name := range []string{"LCE", "MCE", "DCE", "DCEr", "Holdout"} {
			_, dt, err := estimate(name, res.Graph.Adj, sl, res.Labels, k, cfg.Seed)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtT(dt))
		}
		cfg.logf("fig6l: k=%d", k)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
