package experiments

import (
	"fmt"
	"strings"

	"factorgraph/internal/core"
	"factorgraph/internal/datasets"
	"factorgraph/internal/metrics"
)

func init() {
	register("fig7", Fig7)
	register("fig8", Fig8)
	register("fig12", Fig12)
	register("fig13", Fig13)
	register("fig14", Fig14)
}

// datasetScale picks a per-dataset shrink factor so the full 8-dataset
// sweeps stay tractable under cfg.Scale=1; the two web-scale graphs
// (Pokec, Flickr) are additionally reduced ×20 — their published sizes
// (18–30M edges) are exercised by the dedicated scalability benches.
func datasetScale(d datasets.Dataset, cfg Config) int {
	s := cfg.Scale
	if d.M > 5_000_000 {
		s *= 20
	} else if d.M > 500_000 {
		s *= 4
	}
	if s < 1 {
		s = 1
	}
	return s
}

// fig7Fs picks the sparsity sweep for a dataset replica, bounded below so
// that every class keeps at least one seed.
func fig7Fs(n int) []float64 {
	all := []float64{0.0001, 0.001, 0.01, 0.1, 0.5}
	var out []float64
	for _, f := range all {
		if f*float64(n) >= 2 || f >= 0.01 {
			out = append(out, f)
		}
	}
	return out
}

// Fig7 reproduces Figures 7a–7h: end-to-end accuracy versus label sparsity
// on the 8 real-world dataset replicas for GS, LCE, MCE, DCE, DCEr.
// Expected shape per the paper: DCEr within ±0.01 of GS for f<10%; MCE/LCE
// collapse in the sparse regime.
func Fig7(cfg Config) (*Table, error) {
	cfg.defaults()
	methods := []string{"GS", "LCE", "MCE", "DCE", "DCEr"}
	t := &Table{
		ID:      "fig7",
		Title:   "Accuracy vs label sparsity on the 8 real-world replicas",
		Params:  fmt.Sprintf("reps=%d (replica scale per dataset; see DESIGN.md substitutions)", cfg.Reps),
		Columns: append(append([]string{"dataset", "f"}, methods...), "DCEr-auto"),
		Notes:   "DCE/DCEr use the paper's fixed lambda=10; DCEr-auto cross-validates lambda on sketches (small lambda wins once labels are dense, Figure 6c).",
	}
	for _, d := range datasets.All() {
		scale := datasetScale(d, cfg)
		for _, f := range fig7Fs(d.N / scale) {
			sums := make([][]float64, len(methods)+1)
			for rep := 0; rep < cfg.Reps; rep++ {
				seed := cfg.Seed + uint64(rep)
				res, err := d.Replica(scale, seed)
				if err != nil {
					return nil, err
				}
				sl, err := sampleSeeds(res.Labels, d.K, f, seed)
				if err != nil {
					return nil, err
				}
				accs, err := endToEnd(methods, res.Graph.Adj, sl, res.Labels, d.K, seed)
				if err != nil {
					return nil, err
				}
				for i, a := range accs {
					sums[i] = append(sums[i], a)
				}
				auto, _, err := core.EstimateDCErAuto(res.Graph.Adj, sl, d.K, core.AutoLambdaOptions{Seed: seed})
				if err != nil {
					return nil, err
				}
				acc, err := propagateAccuracy(res.Graph.Adj, sl, res.Labels, d.K, auto)
				if err != nil {
					return nil, err
				}
				sums[len(methods)] = append(sums[len(methods)], acc)
			}
			row := []string{d.Name, fmt.Sprintf("%.4f", f)}
			for i := range sums {
				row = append(row, fmtF(mean(sums[i])))
			}
			t.Rows = append(t.Rows, row)
			cfg.logf("fig7: %s f=%g", d.Name, f)
		}
	}
	return t, nil
}

// Fig8 reproduces the dataset-statistics table (Figure 8): n, m, d, k and
// the DCEr estimation runtime on each replica.
func Fig8(cfg Config) (*Table, error) {
	cfg.defaults()
	t := &Table{
		ID:      "fig8",
		Title:   "Real-world dataset statistics and DCEr runtime",
		Params:  "runtime measured on the replica at the reported scale",
		Columns: []string{"dataset", "n", "m", "d", "k", "scale", "DCEr[s]"},
	}
	for _, d := range datasets.All() {
		scale := datasetScale(d, cfg)
		res, err := d.Replica(scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		sl, err := sampleSeeds(res.Labels, d.K, 0.01, cfg.Seed)
		if err != nil {
			return nil, err
		}
		_, dt, err := estimate("DCEr", res.Graph.Adj, sl, res.Labels, d.K, cfg.Seed)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			d.Name,
			fmt.Sprintf("%d", d.N),
			fmt.Sprintf("%d", d.M),
			fmt.Sprintf("%.1f", 2*float64(d.M)/float64(d.N)),
			fmt.Sprintf("%d", d.K),
			fmt.Sprintf("%d", scale),
			fmtT(dt),
		})
		cfg.logf("fig8: %s", d.Name)
	}
	return t, nil
}

// Fig12 reproduces Figure 12 (Appendix E.1): the two-value H/L heuristic on
// MovieLens (where it works — clear two-level compatibilities) and Prop-37
// (where its binary High/Low quantization collapses to near-random).
func Fig12(cfg Config) (*Table, error) {
	cfg.defaults()
	t := &Table{
		ID:      "fig12",
		Title:   "Heuristic H/L baseline vs DCEr on MovieLens and Prop-37",
		Params:  fmt.Sprintf("reps=%d", cfg.Reps),
		Columns: []string{"dataset", "f", "GS", "DCEr", "Heuristic"},
		Notes:   "Heuristic assumes H has two value levels with positions known; works on MovieLens, fails on Prop-37's graded compatibilities.",
	}
	for _, name := range []string{"MovieLens", "Prop-37"} {
		d, err := datasets.ByName(name)
		if err != nil {
			return nil, err
		}
		scale := datasetScale(d, cfg)
		for _, f := range []float64{0.001, 0.01, 0.1} {
			var gsA, dcerA, heuA []float64
			for rep := 0; rep < cfg.Reps; rep++ {
				seed := cfg.Seed + uint64(rep)
				res, err := d.Replica(scale, seed)
				if err != nil {
					return nil, err
				}
				sl, err := sampleSeeds(res.Labels, d.K, f, seed)
				if err != nil {
					return nil, err
				}
				accs, err := endToEnd([]string{"GS", "DCEr", "Heuristic"}, res.Graph.Adj, sl, res.Labels, d.K, seed)
				if err != nil {
					return nil, err
				}
				gsA = append(gsA, accs[0])
				dcerA = append(dcerA, accs[1])
				heuA = append(heuA, accs[2])
			}
			t.Rows = append(t.Rows, []string{
				name, fmt.Sprintf("%.3f", f), fmtF(mean(gsA)), fmtF(mean(dcerA)), fmtF(mean(heuA)),
			})
			cfg.logf("fig12: %s f=%g", name, f)
		}
	}
	return t, nil
}

// Fig13 reproduces Figure 13 (Appendix E.2): the gold-standard
// compatibility matrices of the 8 datasets, as measured on the fully
// labeled replica (they should match the published, planted matrices).
func Fig13(cfg Config) (*Table, error) {
	cfg.defaults()
	t := &Table{
		ID:      "fig13",
		Title:   "Gold-standard compatibility matrices (measured on fully labeled replicas)",
		Columns: []string{"dataset", "k", "measured H (rows ; separated)", "L2 from planted"},
	}
	for _, d := range datasets.All() {
		scale := datasetScale(d, cfg)
		res, err := d.Replica(scale, cfg.Seed)
		if err != nil {
			return nil, err
		}
		gs, err := core.GoldStandard(res.Graph.Adj, res.Labels, d.K)
		if err != nil {
			return nil, err
		}
		var rows []string
		for i := 0; i < d.K; i++ {
			cells := make([]string, d.K)
			for j := 0; j < d.K; j++ {
				cells[j] = fmt.Sprintf("%.2f", gs.At(i, j))
			}
			rows = append(rows, strings.Join(cells, " "))
		}
		t.Rows = append(t.Rows, []string{
			d.Name,
			fmt.Sprintf("%d", d.K),
			strings.Join(rows, " ; "),
			fmtF(metrics.L2(gs, d.H)),
		})
		cfg.logf("fig13: %s", d.Name)
	}
	return t, nil
}

// Fig14 reproduces Figure 14 (Appendix E.2): the L2 distance of each
// estimator from the gold-standard neighbor frequency distribution versus
// f, on every replica. DCEr should be the closest estimate across the
// sparse regime.
func Fig14(cfg Config) (*Table, error) {
	cfg.defaults()
	methods := []string{"LCE", "MCE", "DCE", "DCEr"}
	t := &Table{
		ID:      "fig14",
		Title:   "L2 distance of estimates from the gold standard vs sparsity",
		Params:  fmt.Sprintf("reps=%d", cfg.Reps),
		Columns: append([]string{"dataset", "f"}, methods...),
	}
	for _, d := range datasets.All() {
		scale := datasetScale(d, cfg)
		for _, f := range []float64{0.001, 0.01, 0.1} {
			if f*float64(d.N/scale) < 2 {
				continue
			}
			sums := make([][]float64, len(methods))
			for rep := 0; rep < cfg.Reps; rep++ {
				seed := cfg.Seed + uint64(rep)
				res, err := d.Replica(scale, seed)
				if err != nil {
					return nil, err
				}
				gs, err := core.GoldStandard(res.Graph.Adj, res.Labels, d.K)
				if err != nil {
					return nil, err
				}
				sl, err := sampleSeeds(res.Labels, d.K, f, seed)
				if err != nil {
					return nil, err
				}
				for i, m := range methods {
					est, _, err := estimate(m, res.Graph.Adj, sl, res.Labels, d.K, seed)
					if err != nil {
						return nil, err
					}
					sums[i] = append(sums[i], metrics.L2(est, gs))
				}
			}
			row := []string{d.Name, fmt.Sprintf("%.3f", f)}
			for i := range methods {
				row = append(row, fmtF(mean(sums[i])))
			}
			t.Rows = append(t.Rows, row)
			cfg.logf("fig14: %s f=%g", d.Name, f)
		}
	}
	return t, nil
}
