package experiments

import (
	"fmt"

	"factorgraph/internal/core"
	"factorgraph/internal/datasets"
)

func init() {
	register("fig7d", Fig7d)
}

// Fig7d reproduces the extra series of Figure 7d: on MovieLens the paper
// plots DCE and DCEr at both λ=1 and λ=10 (legend DCE1/DCE10/DCEr1/DCEr10)
// because the two regimes split — λ=10 wins in the sparse regime (f < 1%)
// where weak distant signals must be amplified, λ=1 wins for f > 1% where
// the strong direct signal suffices (the paper's discussion of λ
// fine-tuning). The table also includes the auto-λ extension.
func Fig7d(cfg Config) (*Table, error) {
	cfg.defaults()
	d, err := datasets.ByName("MovieLens")
	if err != nil {
		return nil, err
	}
	scale := datasetScale(d, cfg)
	t := &Table{
		ID:      "fig7d",
		Title:   "MovieLens: DCE/DCEr at lambda 1 vs 10 (plus auto-lambda)",
		Params:  fmt.Sprintf("replica scale %d, reps=%d", scale, cfg.Reps),
		Columns: []string{"f", "GS", "DCE1", "DCE10", "DCEr1", "DCEr10", "DCEr-auto"},
	}
	type variant struct {
		name     string
		lambda   float64
		restarts int
	}
	variants := []variant{
		{"DCE1", 1, 1}, {"DCE10", 10, 1}, {"DCEr1", 1, 10}, {"DCEr10", 10, 10},
	}
	for _, f := range []float64{0.001, 0.01, 0.1, 0.5} {
		sums := make(map[string][]float64)
		for rep := 0; rep < cfg.Reps; rep++ {
			seed := cfg.Seed + uint64(rep)
			res, err := d.Replica(scale, seed)
			if err != nil {
				return nil, err
			}
			sl, err := sampleSeeds(res.Labels, d.K, f, seed)
			if err != nil {
				return nil, err
			}
			gsAcc, err := endToEnd([]string{"GS"}, res.Graph.Adj, sl, res.Labels, d.K, seed)
			if err != nil {
				return nil, err
			}
			sums["GS"] = append(sums["GS"], gsAcc[0])
			s, err := core.Summarize(res.Graph.Adj, sl, d.K, core.DefaultSummaryOptions())
			if err != nil {
				return nil, err
			}
			for _, v := range variants {
				est, err := core.EstimateDCE(s, core.DCEOptions{Lambda: v.lambda, Restarts: v.restarts, Seed: seed})
				if err != nil {
					return nil, err
				}
				acc, err := propagateAccuracy(res.Graph.Adj, sl, res.Labels, d.K, est)
				if err != nil {
					return nil, err
				}
				sums[v.name] = append(sums[v.name], acc)
			}
			auto, _, err := core.EstimateDCErAuto(res.Graph.Adj, sl, d.K, core.AutoLambdaOptions{Seed: seed})
			if err != nil {
				return nil, err
			}
			acc, err := propagateAccuracy(res.Graph.Adj, sl, res.Labels, d.K, auto)
			if err != nil {
				return nil, err
			}
			sums["DCEr-auto"] = append(sums["DCEr-auto"], acc)
		}
		cfg.logf("fig7d: f=%g", f)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f", f),
			fmtF(mean(sums["GS"])),
			fmtF(mean(sums["DCE1"])), fmtF(mean(sums["DCE10"])),
			fmtF(mean(sums["DCEr1"])), fmtF(mean(sums["DCEr10"])),
			fmtF(mean(sums["DCEr-auto"])),
		})
	}
	return t, nil
}
