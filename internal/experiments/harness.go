// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5 and the appendix): each runner produces the same
// rows/series the paper reports, on synthetic graphs and on the dataset
// replicas. Runners are deterministic given Config.Seed.
package experiments

import (
	"fmt"
	"io"
	"math/rand/v2"
	"sort"
	"strings"
	"time"

	"factorgraph/internal/core"
	"factorgraph/internal/dense"
	"factorgraph/internal/gen"
	"factorgraph/internal/labels"
	"factorgraph/internal/metrics"
	"factorgraph/internal/optimize"
	"factorgraph/internal/propagation"
	"factorgraph/internal/sparse"
)

// Config scales and seeds an experiment run.
type Config struct {
	// Scale divides the paper's graph sizes (n and m) to shorten runs;
	// 1 reproduces the published sizes. Default 1.
	Scale int
	// Reps is the number of seeded repetitions averaged per data point.
	// Default 3 (the paper averages over more; shapes stabilize quickly).
	Reps int
	// Seed is the base RNG seed; repetition i uses Seed+i.
	Seed uint64
	// MaxEdges caps the largest graph in the scalability sweeps
	// (Figures 3b, 5b, 6k). Default 1,000,000; the paper goes to 16.4M.
	MaxEdges int
	// Quiet suppresses progress output.
	Quiet bool
	// Progress receives progress lines when not Quiet (default io.Discard).
	Progress io.Writer
}

func (c *Config) defaults() {
	if c.Scale < 1 {
		c.Scale = 1
	}
	if c.Reps < 1 {
		c.Reps = 3
	}
	if c.MaxEdges == 0 {
		c.MaxEdges = 1_000_000
	}
	if c.Progress == nil {
		c.Progress = io.Discard
	}
}

func (c Config) logf(format string, args ...any) {
	if !c.Quiet {
		fmt.Fprintf(c.Progress, format+"\n", args...)
	}
}

// Table is a reproduced figure or table: column headers plus formatted
// rows, ready to print or diff against the paper.
type Table struct {
	ID      string
	Title   string
	Params  string
	Columns []string
	Rows    [][]string
	Notes   string
}

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title)
	if t.Params != "" {
		fmt.Fprintf(w, "   params: %s\n", t.Params)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Columns)
	for _, row := range t.Rows {
		printRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "   note: %s\n", t.Notes)
	}
	fmt.Fprintln(w)
}

// Runner produces one reproduced figure/table.
type Runner func(Config) (*Table, error)

// registry maps experiment ids to runners, populated in init() functions of
// the fig*.go files.
var registry = map[string]Runner{}

func register(id string, r Runner) { registry[id] = r }

// IDs returns the sorted experiment identifiers.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the runner registered under id.
func Run(id string, cfg Config) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	cfg.defaults()
	return r(cfg)
}

// ----- shared estimation/propagation plumbing -----

// estimate runs one named estimator and reports the estimated H and the
// wall-clock estimation time. Method names follow the paper's legends.
func estimate(method string, w *sparse.CSR, seed []int, truth []int, k int, rngSeed uint64) (*dense.Matrix, time.Duration, error) {
	start := time.Now()
	var h *dense.Matrix
	var err error
	switch method {
	case "GS":
		h, err = core.GoldStandard(w, truth, k)
	case "LCE":
		h, err = core.EstimateLCE(w, seed, k, core.LCEOptions{})
	case "MCE":
		var s *core.Summaries
		s, err = core.Summarize(w, seed, k, core.SummaryOptions{LMax: 1, NonBacktracking: true})
		if err == nil {
			h, err = core.EstimateMCE(s, core.MCEOptions{})
		}
	case "DCE", "DCEr":
		var s *core.Summaries
		s, err = core.Summarize(w, seed, k, core.DefaultSummaryOptions())
		if err == nil {
			opts := core.DefaultDCEOptions()
			if method == "DCEr" {
				opts = core.DefaultDCErOptions()
				opts.Seed = rngSeed
			}
			h, err = core.EstimateDCE(s, opts)
		}
	case "Holdout":
		// Cap the simplex search: the holdout energy is a step function of
		// H, so long tail iterations buy nothing (the paper notes
		// Nelder–Mead suits this discrete, non-contiguous objective).
		h, err = core.EstimateHoldout(w, seed, k, core.HoldoutOptions{
			Seed: rngSeed,
			NM:   optimize.NMOptions{MaxIter: 60 * core.NumFree(k), Tol: 1e-4},
		})
	case "Heuristic":
		var gs *dense.Matrix
		gs, err = core.GoldStandard(w, truth, k)
		if err == nil {
			h, err = core.HeuristicHL(gs)
		}
	default:
		return nil, 0, fmt.Errorf("experiments: unknown estimator %q", method)
	}
	if err != nil {
		return nil, 0, fmt.Errorf("experiments: %s: %w", method, err)
	}
	return h, time.Since(start), nil
}

// propagateAccuracy labels the graph with LinBP under h and scores
// macro-accuracy on the non-seed nodes.
func propagateAccuracy(w *sparse.CSR, seed, truth []int, k int, h *dense.Matrix) (float64, error) {
	x, err := labels.Matrix(seed, k)
	if err != nil {
		return 0, err
	}
	pred, err := propagation.LinBPLabels(w, x, h, propagation.DefaultLinBPOptions())
	if err != nil {
		return 0, err
	}
	return metrics.MacroAccuracy(pred, truth, seed, k), nil
}

// endToEnd estimates with each method and propagates, returning
// macro-accuracy per method (in input order).
func endToEnd(methods []string, w *sparse.CSR, seed, truth []int, k int, rngSeed uint64) ([]float64, error) {
	accs := make([]float64, len(methods))
	for i, m := range methods {
		h, _, err := estimate(m, w, seed, truth, k, rngSeed)
		if err != nil {
			return nil, err
		}
		acc, err := propagateAccuracy(w, seed, truth, k, h)
		if err != nil {
			return nil, err
		}
		accs[i] = acc
	}
	return accs, nil
}

// syntheticGraph generates the standard synthetic workload of Section 5:
// n nodes, average degree d, k=3 with skew h, power-law degrees.
func syntheticGraph(n int, d float64, skew float64, seed uint64) (*gen.Result, error) {
	m := int(d * float64(n) / 2)
	return gen.Generate(gen.Config{
		N:     n,
		M:     m,
		Alpha: gen.Balanced(3),
		H:     core.HFromSkew(skew),
		Dist:  gen.PowerLaw{Exponent: 0.3},
		Seed:  seed,
	})
}

// sampleSeeds draws the stratified seed labels at fraction f.
func sampleSeeds(truth []int, k int, f float64, seed uint64) ([]int, error) {
	rng := rand.New(rand.NewPCG(seed, 0x6a09e667f3bcc908))
	return labels.SampleStratified(truth, k, f, rng)
}

// mean averages a slice.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// fmtF formats a float with 3 decimals; fmtT formats seconds.
func fmtF(v float64) string { return fmt.Sprintf("%.3f", v) }

func fmtT(d time.Duration) string { return fmt.Sprintf("%.4f", d.Seconds()) }

// grow keeps doubling-style sweeps tidy: returns geometric sequence from lo
// to hi multiplying by factor each step.
func grow(lo, hi int, factor float64) []int {
	var out []int
	v := float64(lo)
	for int(v) <= hi {
		out = append(out, int(v))
		v *= factor
	}
	return out
}
