package gen

import (
	"fmt"
	"math/rand/v2"
)

// aliasTable samples indices in O(1) with probability proportional to the
// weights it was built from (Walker/Vose alias method). Used to draw edge
// endpoints according to the planted degree distribution; graphs in the
// scalability experiments have up to ~10⁷ edges, so per-draw cost matters.
type aliasTable struct {
	prob  []float64
	alias []int32
}

func newAliasTable(weights []float64) (*aliasTable, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("gen: empty weight vector")
	}
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("gen: negative weight %v at %d", w, i)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("gen: all weights zero")
	}
	t := &aliasTable{prob: make([]float64, n), alias: make([]int32, n)}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		t.prob[i] = 1
	}
	for _, i := range small {
		t.prob[i] = 1 // numerical leftovers
	}
	return t, nil
}

// draw returns an index with probability proportional to its weight.
func (t *aliasTable) draw(rng *rand.Rand) int32 {
	i := rng.IntN(len(t.prob))
	if rng.Float64() < t.prob[i] {
		return int32(i)
	}
	return t.alias[i]
}
