package gen

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// DegreeDist is a family of node degree distributions: it assigns each node
// a positive sampling weight; expected node degree is proportional to the
// weight (a degree-corrected block-model, which is how the paper's
// generator "actively controls the degree distributions").
type DegreeDist interface {
	// Weights returns n positive sampling weights.
	Weights(n int, rng *rand.Rand) []float64
	// Name is used in experiment reports.
	Name() string
}

// Uniform gives every node the same weight, producing a Poisson-like
// concentrated degree distribution around the average degree.
type Uniform struct{}

// Weights implements DegreeDist.
func (Uniform) Weights(n int, _ *rand.Rand) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// Name implements DegreeDist.
func (Uniform) Name() string { return "uniform" }

// PowerLaw draws Pareto-tailed weights w = u^(−Exponent): larger exponents
// give heavier tails. The paper's synthetic experiments use coefficient 0.3
// ("power law (coefficient 0.3) distributions", Section 5).
type PowerLaw struct {
	Exponent float64 // default 0.3
}

// Weights implements DegreeDist.
func (p PowerLaw) Weights(n int, rng *rand.Rand) []float64 {
	exp := p.Exponent
	if exp == 0 {
		exp = 0.3
	}
	w := make([]float64, n)
	for i := range w {
		u := rng.Float64()
		if u < 1e-12 {
			u = 1e-12
		}
		w[i] = math.Pow(u, -exp)
	}
	return w
}

// Name implements DegreeDist.
func (p PowerLaw) Name() string {
	exp := p.Exponent
	if exp == 0 {
		exp = 0.3
	}
	return fmt.Sprintf("powerlaw(%.2g)", exp)
}
