// Package gen implements the paper's synthetic graph generator (Section 5):
// a variant of the stochastic block model that (1) controls the degree
// distribution and (2) plants exact graph properties — the number of edges
// between every pair of classes is fixed by the requested compatibility
// matrix H and label distribution α, not just in expectation.
package gen

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"factorgraph/internal/dense"
	"factorgraph/internal/graph"
)

// Config is the generator input tuple (n, m, α, H, dist) of Section 5.
type Config struct {
	N     int           // number of nodes
	M     int           // number of undirected edges
	Alpha []float64     // node label distribution; α[i] = fraction of class i
	H     *dense.Matrix // symmetric doubly-stochastic compatibility matrix
	Dist  DegreeDist    // degree distribution family (default Uniform)
	Seed  uint64        // RNG seed; runs are deterministic given the seed

	// WeightJitter, when positive, assigns each edge an independent weight
	// drawn uniformly from [1−j, 1+j] (clamped positive). Weights are
	// label-independent, so the planted compatibility statistics remain
	// valid in expectation; this exercises the weighted-graph code paths
	// of the estimators (W is a weighted adjacency matrix throughout the
	// paper's formalism, §2.1).
	WeightJitter float64

	// EdgeMass optionally overrides how edges distribute over class pairs.
	// By default the ordered edge-class distribution is Q_ij = α_i·H_ij
	// (each node draws neighbor classes from its H row), which — as the
	// paper's footnote 4 notes — reproduces H in the measured statistics
	// only for balanced labels. Setting EdgeMass to a symmetric
	// non-negative matrix E makes class pair (i,j) carry fraction
	// E_ij/ΣE of the edge endpoints instead. With E = H (doubly
	// stochastic), every class receives equal total degree mass and the
	// measured row-normalized XᵀWX equals H exactly, for ANY α — this is
	// how the dataset replicas reproduce the published gold-standard
	// matrices under class imbalance.
	EdgeMass *dense.Matrix
}

// Balanced returns the uniform label distribution [1/k, …, 1/k].
func Balanced(k int) []float64 {
	a := make([]float64, k)
	for i := range a {
		a[i] = 1 / float64(k)
	}
	return a
}

// Result is a generated graph together with its ground-truth labels.
type Result struct {
	Graph  *graph.Graph
	Labels []int // ground-truth class per node
	// PairCounts[i][j] is the planted number of undirected edges between
	// classes i and j (symmetric; diagonal counts within-class edges).
	PairCounts *dense.Matrix
}

// Generate creates a graph with the planted properties. The class of every
// node is exact (largest-remainder rounding of α·n), the number of edges
// between every class pair is exact (largest-remainder rounding of the
// H-implied distribution), there are no self-loops or duplicate edges, and
// node degrees follow cfg.Dist.
func Generate(cfg Config) (*Result, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	k := len(cfg.Alpha)
	if cfg.Dist == nil {
		cfg.Dist = Uniform{}
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x2545f4914f6cdd1d))

	sizes := largestRemainder(cfg.Alpha, cfg.N)
	offsets := make([]int, k+1)
	for c := 0; c < k; c++ {
		offsets[c+1] = offsets[c] + sizes[c]
	}
	nodeLabels := make([]int, cfg.N)
	for c := 0; c < k; c++ {
		for i := offsets[c]; i < offsets[c+1]; i++ {
			nodeLabels[i] = c
		}
	}

	mass := cfg.EdgeMass
	if mass == nil {
		// Default ordered distribution Q_ij = α_i·H_ij, symmetrized.
		mass = dense.New(k, k)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				mass.Set(i, j, (cfg.Alpha[i]*cfg.H.At(i, j)+cfg.Alpha[j]*cfg.H.At(j, i))/2)
			}
		}
	}
	pairTargets, err := pairEdgeCounts(mass, cfg.M, sizes)
	if err != nil {
		return nil, err
	}

	weights := cfg.Dist.Weights(cfg.N, rng)
	tables := make([]*aliasTable, k)
	for c := 0; c < k; c++ {
		if sizes[c] == 0 {
			continue
		}
		t, err := newAliasTable(weights[offsets[c]:offsets[c+1]])
		if err != nil {
			return nil, fmt.Errorf("gen: class %d: %w", c, err)
		}
		tables[c] = t
	}

	edges := make([][2]int32, 0, cfg.M)
	counts := dense.New(k, k)
	for ci := 0; ci < k; ci++ {
		for cj := ci; cj < k; cj++ {
			target := pairTargets[ci][cj]
			if target == 0 {
				continue
			}
			pairEdges, err := samplePairEdges(rng, tables[ci], tables[cj], offsets[ci], offsets[cj], sizes[ci], sizes[cj], ci == cj, target)
			if err != nil {
				return nil, fmt.Errorf("gen: classes (%d,%d): %w", ci, cj, err)
			}
			edges = append(edges, pairEdges...)
			counts.Set(ci, cj, float64(len(pairEdges)))
			counts.Set(cj, ci, float64(len(pairEdges)))
		}
	}

	var edgeWeights []float64
	if cfg.WeightJitter > 0 {
		edgeWeights = make([]float64, len(edges))
		for i := range edgeWeights {
			w := 1 + cfg.WeightJitter*(2*rng.Float64()-1)
			if w < 1e-3 {
				w = 1e-3
			}
			edgeWeights[i] = w
		}
	}
	g, err := graph.New(cfg.N, edges, edgeWeights)
	if err != nil {
		return nil, err
	}
	return &Result{Graph: g, Labels: nodeLabels, PairCounts: counts}, nil
}

func validate(cfg Config) error {
	if cfg.N <= 0 {
		return fmt.Errorf("gen: n=%d, want positive", cfg.N)
	}
	if cfg.M < 0 {
		return fmt.Errorf("gen: m=%d, want non-negative", cfg.M)
	}
	k := len(cfg.Alpha)
	if k < 2 {
		return fmt.Errorf("gen: %d classes, want at least 2", k)
	}
	var sum float64
	for i, a := range cfg.Alpha {
		if a < 0 {
			return fmt.Errorf("gen: alpha[%d]=%v negative", i, a)
		}
		sum += a
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("gen: alpha sums to %v, want 1", sum)
	}
	if cfg.H == nil {
		return fmt.Errorf("gen: nil compatibility matrix")
	}
	if cfg.H.Rows != k || cfg.H.Cols != k {
		return fmt.Errorf("gen: H is %d×%d but alpha has %d classes", cfg.H.Rows, cfg.H.Cols, k)
	}
	for i := 0; i < k; i++ {
		rowSum := 0.0
		for j := 0; j < k; j++ {
			v := cfg.H.At(i, j)
			if v < 0 {
				return fmt.Errorf("gen: H has negative entry %v at (%d,%d)", v, i, j)
			}
			if math.Abs(v-cfg.H.At(j, i)) > 1e-6 {
				return fmt.Errorf("gen: H not symmetric at (%d,%d)", i, j)
			}
			rowSum += v
		}
		if math.Abs(rowSum-1) > 1e-6 {
			return fmt.Errorf("gen: H row %d sums to %v, want 1", i, rowSum)
		}
	}
	maxEdges := int64(cfg.N) * int64(cfg.N-1) / 2
	if int64(cfg.M) > maxEdges {
		return fmt.Errorf("gen: m=%d exceeds simple-graph capacity %d", cfg.M, maxEdges)
	}
	if cfg.WeightJitter < 0 || cfg.WeightJitter >= 1 {
		if cfg.WeightJitter != 0 {
			return fmt.Errorf("gen: WeightJitter=%v outside [0,1)", cfg.WeightJitter)
		}
	}
	if cfg.EdgeMass != nil {
		e := cfg.EdgeMass
		if e.Rows != k || e.Cols != k {
			return fmt.Errorf("gen: EdgeMass is %d×%d, want %d×%d", e.Rows, e.Cols, k, k)
		}
		total := 0.0
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				v := e.At(i, j)
				if v < 0 {
					return fmt.Errorf("gen: EdgeMass has negative entry at (%d,%d)", i, j)
				}
				if math.Abs(v-e.At(j, i)) > 1e-9 {
					return fmt.Errorf("gen: EdgeMass not symmetric at (%d,%d)", i, j)
				}
				total += v
			}
		}
		if total == 0 {
			return fmt.Errorf("gen: EdgeMass is all zero")
		}
	}
	return nil
}

// pairEdgeCounts converts a symmetric edge-mass matrix into exact
// undirected edge counts per unordered class pair: pair (i,j) with i<j
// carries mass_ij + mass_ji, pair (i,i) carries mass_ii. Totals sum to m
// via largest-remainder rounding; targets that exceed a pair's
// simple-graph capacity spill over to pairs with headroom.
func pairEdgeCounts(mass *dense.Matrix, m int, sizes []int) ([][]int, error) {
	k := mass.Rows
	type pair struct{ i, j int }
	var pairs []pair
	var fracs []float64
	for i := 0; i < k; i++ {
		for j := i; j < k; j++ {
			q := mass.At(i, j)
			if i != j {
				q += mass.At(j, i)
			}
			pairs = append(pairs, pair{i, j})
			fracs = append(fracs, q)
		}
	}
	counts := largestRemainder(fracs, m)

	capacity := func(p pair) int64 {
		if p.i == p.j {
			return int64(sizes[p.i]) * int64(sizes[p.i]-1) / 2
		}
		return int64(sizes[p.i]) * int64(sizes[p.j])
	}
	// Spill excess over capacity to other pairs, proportional to headroom.
	for iter := 0; iter < k*k+2; iter++ {
		excess := 0
		var headroom int64
		for idx, p := range pairs {
			c := capacity(p)
			if int64(counts[idx]) > c {
				excess += counts[idx] - int(c)
				counts[idx] = int(c)
			} else {
				headroom += c - int64(counts[idx])
			}
		}
		if excess == 0 {
			break
		}
		if headroom < int64(excess) {
			return nil, fmt.Errorf("gen: cannot place %d edges: insufficient capacity", excess)
		}
		// Distribute the excess round-robin over pairs with headroom.
		for idx := range pairs {
			if excess == 0 {
				break
			}
			room := capacity(pairs[idx]) - int64(counts[idx])
			take := int64(excess)
			if take > room {
				take = room
			}
			counts[idx] += int(take)
			excess -= int(take)
		}
	}

	out := make([][]int, k)
	for i := range out {
		out[i] = make([]int, k)
	}
	for idx, p := range pairs {
		out[p.i][p.j] = counts[idx]
	}
	return out, nil
}

// samplePairEdges draws `target` distinct edges between the node blocks of
// two classes, endpoints weighted by the degree distribution. Rejection
// sampling with a dedup set; if the pair is nearly complete it falls back
// to exhaustive enumeration so generation always terminates.
func samplePairEdges(rng *rand.Rand, ti, tj *aliasTable, offI, offJ, sizeI, sizeJ int, same bool, target int) ([][2]int32, error) {
	var capacity int64
	if same {
		capacity = int64(sizeI) * int64(sizeI-1) / 2
	} else {
		capacity = int64(sizeI) * int64(sizeJ)
	}
	if int64(target) > capacity {
		return nil, fmt.Errorf("gen: target %d exceeds capacity %d", target, capacity)
	}
	if ti == nil || tj == nil {
		return nil, fmt.Errorf("gen: empty class cannot host %d edges", target)
	}
	seen := make(map[uint64]struct{}, target+target/8)
	edges := make([][2]int32, 0, target)
	attempts := 0
	maxAttempts := 50*target + 1000
	for len(edges) < target && attempts < maxAttempts {
		attempts++
		u := int32(offI) + ti.draw(rng)
		v := int32(offJ) + tj.draw(rng)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		edges = append(edges, [2]int32{u, v})
	}
	if len(edges) == target {
		return edges, nil
	}
	// Dense-pair fallback: enumerate the remaining capacity and sample
	// uniformly from it (degree weighting is no longer meaningful when the
	// pair is this saturated).
	var free [][2]int32
	if same {
		for a := 0; a < sizeI; a++ {
			for b := a + 1; b < sizeI; b++ {
				u, v := int32(offI+a), int32(offI+b)
				if _, dup := seen[uint64(u)<<32|uint64(v)]; !dup {
					free = append(free, [2]int32{u, v})
				}
			}
		}
	} else {
		for a := 0; a < sizeI; a++ {
			for b := 0; b < sizeJ; b++ {
				u, v := int32(offI+a), int32(offJ+b)
				if u > v {
					u, v = v, u
				}
				if _, dup := seen[uint64(u)<<32|uint64(v)]; !dup {
					free = append(free, [2]int32{u, v})
				}
			}
		}
	}
	need := target - len(edges)
	if need > len(free) {
		return nil, fmt.Errorf("gen: internal: need %d edges but only %d positions free", need, len(free))
	}
	rng.Shuffle(len(free), func(a, b int) { free[a], free[b] = free[b], free[a] })
	edges = append(edges, free[:need]...)
	return edges, nil
}

// largestRemainder rounds fractional shares to integers summing exactly to
// total, assigning leftover units to the largest remainders first.
func largestRemainder(shares []float64, total int) []int {
	var sum float64
	for _, s := range shares {
		sum += s
	}
	out := make([]int, len(shares))
	if total == 0 || sum == 0 {
		return out
	}
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, len(shares))
	assigned := 0
	for i, s := range shares {
		exact := s / sum * float64(total)
		out[i] = int(math.Floor(exact))
		assigned += out[i]
		rems[i] = rem{i, exact - math.Floor(exact)}
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].idx < rems[b].idx
	})
	for u := 0; u < total-assigned; u++ {
		out[rems[u%len(rems)].idx]++
	}
	return out
}
