package gen

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"factorgraph/internal/dense"
)

func skew3(h float64) *dense.Matrix {
	d := 2 + h
	return dense.FromRows([][]float64{
		{1 / d, h / d, 1 / d},
		{h / d, 1 / d, 1 / d},
		{1 / d, 1 / d, h / d},
	})
}

func TestGenerateBasicInvariants(t *testing.T) {
	cfg := Config{N: 1000, M: 5000, Alpha: Balanced(3), H: skew3(3), Seed: 1}
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.N != 1000 {
		t.Errorf("n = %d", res.Graph.N)
	}
	if res.Graph.M != 5000 {
		t.Errorf("m = %d, want 5000 (exact planting)", res.Graph.M)
	}
	if err := res.Graph.Validate(); err != nil {
		t.Errorf("invalid graph: %v", err)
	}
	// No self loops: diagonal empty.
	for i := 0; i < res.Graph.N; i++ {
		if res.Graph.Adj.At(i, i) != 0 {
			t.Fatalf("self-loop at %d", i)
		}
	}
	// Class sizes exact.
	counts := make([]int, 3)
	for _, l := range res.Labels {
		counts[l]++
	}
	for c, n := range counts {
		if n != 1000/3 && n != 1000/3+1 {
			t.Errorf("class %d size %d", c, n)
		}
	}
}

func TestGenerateExactPairCounts(t *testing.T) {
	h := skew3(8)
	cfg := Config{N: 900, M: 9000, Alpha: Balanced(3), H: h, Seed: 2}
	res, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Recount edges between classes from the graph itself.
	recount := dense.New(3, 3)
	adj := res.Graph.Adj
	for i := 0; i < adj.N; i++ {
		for p := adj.IndPtr[i]; p < adj.IndPtr[i+1]; p++ {
			j := int(adj.Indices[p])
			if j < i {
				continue
			}
			ci, cj := res.Labels[i], res.Labels[j]
			recount.Set(ci, cj, recount.At(ci, cj)+1)
			if ci != cj {
				recount.Set(cj, ci, recount.At(cj, ci)+1)
			}
		}
	}
	if !dense.Equal(recount, res.PairCounts, 0) {
		t.Errorf("pair counts mismatch:\ngraph\n%v planted\n%v", recount, res.PairCounts)
	}
	var total float64
	for i := 0; i < 3; i++ {
		for j := i; j < 3; j++ {
			total += res.PairCounts.At(i, j)
		}
	}
	if int(total) != 9000 {
		t.Errorf("total pair count %v ≠ m", total)
	}
	// Relative pair frequencies should match α_i·H_ij: e.g. pair (0,1)
	// carries 2·(1/3)(0.8) = 0.5333 of all edges.
	if frac := res.PairCounts.At(0, 1) / 9000; math.Abs(frac-2.0/3*0.8) > 0.01 {
		t.Errorf("pair (0,1) fraction %v, want %v", frac, 2.0/3*0.8)
	}
}

func TestGenerateImbalancedAlpha(t *testing.T) {
	alpha := []float64{1.0 / 6, 1.0 / 3, 1.0 / 2}
	h := dense.FromRows([][]float64{
		{0.2, 0.6, 0.2},
		{0.6, 0.1, 0.3},
		{0.2, 0.3, 0.5},
	}) // the paper's Figure 6j matrix
	res, err := Generate(Config{N: 1200, M: 12000, Alpha: alpha, H: h, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 3)
	for _, l := range res.Labels {
		counts[l]++
	}
	if counts[0] != 200 || counts[1] != 400 || counts[2] != 600 {
		t.Errorf("class sizes %v, want exact largest-remainder split", counts)
	}
	if res.Graph.M != 12000 {
		t.Errorf("m = %d", res.Graph.M)
	}
}

func TestGeneratePowerLawSkewsDegrees(t *testing.T) {
	uni, err := Generate(Config{N: 2000, M: 20000, Alpha: Balanced(3), H: skew3(3), Dist: Uniform{}, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Generate(Config{N: 2000, M: 20000, Alpha: Balanced(3), H: skew3(3), Dist: PowerLaw{Exponent: 0.6}, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	maxDeg := func(d []float64) float64 {
		m := 0.0
		for _, v := range d {
			if v > m {
				m = v
			}
		}
		return m
	}
	if maxDeg(pl.Graph.Degrees()) <= maxDeg(uni.Graph.Degrees()) {
		t.Errorf("power-law max degree %v not heavier than uniform %v",
			maxDeg(pl.Graph.Degrees()), maxDeg(uni.Graph.Degrees()))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{N: 500, M: 2500, Alpha: Balanced(3), H: skew3(3), Seed: 7}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equal(a.Graph.Adj.ToDense(), b.Graph.Adj.ToDense(), 0) {
		t.Error("same seed produced different graphs")
	}
	c, err := Generate(Config{N: 500, M: 2500, Alpha: Balanced(3), H: skew3(3), Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if dense.Equal(a.Graph.Adj.ToDense(), c.Graph.Adj.ToDense(), 0) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestGenerateDensePairFallback(t *testing.T) {
	// Tiny graph close to complete forces the exhaustive-enumeration path.
	res, err := Generate(Config{N: 20, M: 150, Alpha: Balanced(2), H: dense.FromRows([][]float64{{0.5, 0.5}, {0.5, 0.5}}), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.M != 150 {
		t.Errorf("m = %d, want 150", res.Graph.M)
	}
	if err := res.Graph.Validate(); err != nil {
		t.Error(err)
	}
}

func TestGenerateValidation(t *testing.T) {
	h2 := dense.FromRows([][]float64{{0.5, 0.5}, {0.5, 0.5}})
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero n", Config{N: 0, M: 1, Alpha: Balanced(2), H: h2}},
		{"negative m", Config{N: 10, M: -1, Alpha: Balanced(2), H: h2}},
		{"one class", Config{N: 10, M: 5, Alpha: []float64{1}, H: dense.FromRows([][]float64{{1}})}},
		{"alpha not prob", Config{N: 10, M: 5, Alpha: []float64{0.5, 0.2}, H: h2}},
		{"negative alpha", Config{N: 10, M: 5, Alpha: []float64{-0.5, 1.5}, H: h2}},
		{"nil H", Config{N: 10, M: 5, Alpha: Balanced(2)}},
		{"H shape", Config{N: 10, M: 5, Alpha: Balanced(3), H: h2}},
		{"H asymmetric", Config{N: 10, M: 5, Alpha: Balanced(2), H: dense.FromRows([][]float64{{0.3, 0.7}, {0.6, 0.4}})}},
		{"H negative", Config{N: 10, M: 5, Alpha: Balanced(2), H: dense.FromRows([][]float64{{1.5, -0.5}, {-0.5, 1.5}})}},
		{"m too large", Config{N: 4, M: 100, Alpha: Balanced(2), H: h2}},
	}
	for _, tc := range cases {
		if _, err := Generate(tc.cfg); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// Property: generation succeeds and plants exactly m edges with no
// duplicates for random feasible configurations.
func TestGeneratePropertyExactM(t *testing.T) {
	r := rand.New(rand.NewPCG(51, 52))
	f := func() bool {
		k := 2 + r.IntN(3)
		n := 60 + r.IntN(200)
		maxM := n * (n - 1) / 8
		m := 10 + r.IntN(maxM)
		skew := 1 + r.Float64()*7
		var h *dense.Matrix
		if k == 3 {
			h = skew3(skew)
		} else {
			// Uniform H for other k keeps the test simple and feasible.
			h = dense.Constant(k, k, 1/float64(k))
		}
		res, err := Generate(Config{N: n, M: m, Alpha: Balanced(k), H: h, Seed: r.Uint64()})
		if err != nil {
			return false
		}
		if res.Graph.M != m {
			return false
		}
		// NNZ must be exactly 2m (no dupes, no self loops).
		return res.Graph.Adj.NNZ() == 2*m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLargestRemainder(t *testing.T) {
	got := largestRemainder([]float64{1.0 / 3, 1.0 / 3, 1.0 / 3}, 10)
	sum := 0
	for _, v := range got {
		sum += v
	}
	if sum != 10 {
		t.Errorf("largestRemainder sums to %d", sum)
	}
	zero := largestRemainder([]float64{0, 0}, 0)
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("zero case: %v", zero)
	}
}

func TestAliasTableDistribution(t *testing.T) {
	weights := []float64{1, 2, 7}
	tab, err := newAliasTable(weights)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(61, 62))
	counts := make([]int, 3)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[tab.draw(rng)]++
	}
	for i, w := range weights {
		want := w / 10 * draws
		if math.Abs(float64(counts[i])-want) > 0.05*want+100 {
			t.Errorf("index %d drawn %d times, want ≈%v", i, counts[i], want)
		}
	}
}

func TestAliasTableErrors(t *testing.T) {
	if _, err := newAliasTable(nil); err == nil {
		t.Error("expected empty error")
	}
	if _, err := newAliasTable([]float64{0, 0}); err == nil {
		t.Error("expected all-zero error")
	}
	if _, err := newAliasTable([]float64{1, -1}); err == nil {
		t.Error("expected negative error")
	}
}

func TestDegreeDistNames(t *testing.T) {
	if (Uniform{}).Name() != "uniform" {
		t.Error("uniform name")
	}
	if (PowerLaw{}).Name() == "" || (PowerLaw{Exponent: 0.5}).Name() == "" {
		t.Error("powerlaw name")
	}
	w := (PowerLaw{}).Weights(10, rand.New(rand.NewPCG(1, 1)))
	for _, v := range w {
		if v < 1 {
			t.Errorf("powerlaw weight %v < 1 (u^-0.3 ≥ 1)", v)
		}
	}
}

func TestBalanced(t *testing.T) {
	b := Balanced(4)
	for _, v := range b {
		if v != 0.25 {
			t.Errorf("Balanced entry %v", v)
		}
	}
}
