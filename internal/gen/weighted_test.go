package gen

import (
	"testing"

	"factorgraph/internal/dense"
)

func TestGenerateWeightedJitter(t *testing.T) {
	res, err := Generate(Config{
		N: 500, M: 2500, Alpha: Balanced(3), H: skew3(3), Seed: 9, WeightJitter: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.Adj.Data == nil {
		t.Fatal("weighted graph stored as implicit ones")
	}
	var lo, hi float64 = 10, 0
	for _, w := range res.Graph.Adj.Data {
		if w < lo {
			lo = w
		}
		if w > hi {
			hi = w
		}
		if w <= 0 {
			t.Fatalf("non-positive weight %v", w)
		}
	}
	if lo < 0.5-1e-9 || hi > 1.5+1e-9 {
		t.Errorf("weights outside [0.5,1.5]: [%v, %v]", lo, hi)
	}
	if hi-lo < 0.5 {
		t.Errorf("weights not spread: [%v, %v]", lo, hi)
	}
	if err := res.Graph.Validate(); err != nil {
		t.Error(err)
	}
}

func TestGenerateWeightJitterValidation(t *testing.T) {
	h2 := dense.FromRows([][]float64{{0.5, 0.5}, {0.5, 0.5}})
	for _, j := range []float64{-0.5, 1.0, 2} {
		_, err := Generate(Config{
			N: 50, M: 100, Alpha: Balanced(2), H: h2, WeightJitter: j,
		})
		if err == nil {
			t.Errorf("WeightJitter=%v: expected error", j)
		}
	}
}

func TestGenerateUnweightedStaysImplicit(t *testing.T) {
	res, err := Generate(Config{N: 200, M: 800, Alpha: Balanced(3), H: skew3(3), Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph.Adj.Data != nil {
		t.Error("unweighted graph should use the implicit-ones representation")
	}
}
