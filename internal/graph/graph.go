// Package graph provides the undirected-graph substrate: a thin, validated
// wrapper around the CSR adjacency matrix together with node labels and the
// degree statistics the estimators need.
package graph

import (
	"fmt"

	"factorgraph/internal/sparse"
)

// Graph is an undirected graph with n nodes backed by a symmetric CSR
// adjacency matrix W.
type Graph struct {
	N   int
	M   int // number of undirected edges
	Adj *sparse.CSR

	degrees []float64 // lazily computed weighted degrees
}

// New builds a graph from an undirected edge list. Edges must reference
// nodes in [0, n); duplicate edges are merged by weight summation in the
// adjacency matrix but still counted once in M per input occurrence, so
// callers should pass deduplicated lists (the generator and loaders do).
func New(n int, edges [][2]int32, weights []float64) (*Graph, error) {
	adj, err := sparse.NewSymmetricFromEdges(n, edges, weights)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	return &Graph{N: n, M: len(edges), Adj: adj}, nil
}

// FromCSR wraps an existing symmetric CSR adjacency matrix.
func FromCSR(adj *sparse.CSR) *Graph {
	m := adj.NNZ()
	// Off-diagonal entries appear twice; count diagonal entries once.
	diag := 0
	for i := 0; i < adj.N; i++ {
		if adj.At(i, i) != 0 {
			diag++
		}
	}
	return &Graph{N: adj.N, M: (m-diag)/2 + diag, Adj: adj}
}

// Degrees returns the weighted degree of every node (cached).
func (g *Graph) Degrees() []float64 {
	if g.degrees == nil {
		g.degrees = g.Adj.Degrees()
	}
	return g.degrees
}

// AvgDegree returns the average weighted degree 2m/n.
func (g *Graph) AvgDegree() float64 {
	if g.N == 0 {
		return 0
	}
	var s float64
	for _, d := range g.Degrees() {
		s += d
	}
	return s / float64(g.N)
}

// Neighbors returns the neighbor ids of node i (aliasing CSR storage).
func (g *Graph) Neighbors(i int) []int32 {
	if i < 0 || i >= g.N {
		panic(fmt.Sprintf("graph: node %d out of range n=%d", i, g.N))
	}
	return g.Adj.Indices[g.Adj.IndPtr[i]:g.Adj.IndPtr[i+1]]
}

// Components labels each node with a connected-component id (0-based,
// ordered by first-seen node) and returns the component count. Useful as a
// pre-flight diagnostic: label propagation cannot reach components without
// seed labels.
func (g *Graph) Components() (ids []int, count int) {
	ids = make([]int, g.N)
	for i := range ids {
		ids[i] = -1
	}
	var stack []int32
	for start := 0; start < g.N; start++ {
		if ids[start] >= 0 {
			continue
		}
		ids[start] = count
		stack = append(stack[:0], int32(start))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.Neighbors(int(u)) {
				if ids[v] < 0 {
					ids[v] = count
					stack = append(stack, v)
				}
			}
		}
		count++
	}
	return ids, count
}

// UnreachableFrom counts nodes in components that contain none of the
// given labeled nodes (label < 0 means unlabeled); those nodes can never
// receive a propagated signal.
func (g *Graph) UnreachableFrom(seed []int) int {
	ids, count := g.Components()
	hasSeed := make([]bool, count)
	for i, l := range seed {
		if l >= 0 {
			hasSeed[ids[i]] = true
		}
	}
	unreachable := 0
	for i := range ids {
		if !hasSeed[ids[i]] {
			unreachable++
		}
	}
	return unreachable
}

// Validate checks structural invariants: symmetry of the adjacency matrix
// and absence of negative weights. It is O(m log d) and intended for tests
// and loaders, not hot paths.
func (g *Graph) Validate() error {
	for i := 0; i < g.N; i++ {
		for p := g.Adj.IndPtr[i]; p < g.Adj.IndPtr[i+1]; p++ {
			j := int(g.Adj.Indices[p])
			w := 1.0
			if g.Adj.Data != nil {
				w = g.Adj.Data[p]
			}
			if w < 0 {
				return fmt.Errorf("graph: negative weight %v on edge (%d,%d)", w, i, j)
			}
			if g.Adj.At(j, i) != w {
				return fmt.Errorf("graph: asymmetry at (%d,%d): %v vs %v", i, j, w, g.Adj.At(j, i))
			}
		}
	}
	return nil
}
