package graph

import (
	"bytes"
	"strings"
	"testing"

	"factorgraph/internal/dense"
	"factorgraph/internal/sparse"
)

func testGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := New(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNew(t *testing.T) {
	g := testGraph(t)
	if g.N != 4 || g.M != 4 {
		t.Errorf("n=%d m=%d", g.N, g.M)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
}

func TestNewError(t *testing.T) {
	if _, err := New(2, [][2]int32{{0, 5}}, nil); err == nil {
		t.Error("expected out-of-range error")
	}
}

func TestDegreesAndAvg(t *testing.T) {
	g := testGraph(t)
	for i, d := range g.Degrees() {
		if d != 2 {
			t.Errorf("degree[%d]=%v", i, d)
		}
	}
	if g.AvgDegree() != 2 {
		t.Errorf("avg degree %v", g.AvgDegree())
	}
}

func TestNeighbors(t *testing.T) {
	g := testGraph(t)
	nb := g.Neighbors(0)
	if len(nb) != 2 {
		t.Fatalf("neighbors of 0: %v", nb)
	}
	if nb[0] != 1 || nb[1] != 3 {
		t.Errorf("neighbors of 0 = %v, want [1 3]", nb)
	}
}

func TestFromCSR(t *testing.T) {
	w, err := sparse.NewSymmetricFromEdges(3, [][2]int32{{0, 1}, {1, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := FromCSR(w)
	if g.N != 3 || g.M != 2 {
		t.Errorf("FromCSR n=%d m=%d", g.N, g.M)
	}
}

func TestValidateCatchesNegativeWeight(t *testing.T) {
	g, err := New(2, [][2]int32{{0, 1}}, []float64{-1})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err == nil {
		t.Error("expected negative-weight error")
	}
}

func TestComponents(t *testing.T) {
	// Two disjoint edges + an isolated node = 3 components.
	g, err := New(5, [][2]int32{{0, 1}, {2, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ids, count := g.Components()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if ids[0] != ids[1] || ids[2] != ids[3] || ids[0] == ids[2] || ids[4] == ids[0] || ids[4] == ids[2] {
		t.Errorf("component ids wrong: %v", ids)
	}
}

func TestComponentsConnected(t *testing.T) {
	g := testGraph(t) // 4-cycle
	_, count := g.Components()
	if count != 1 {
		t.Errorf("cycle should be one component, got %d", count)
	}
}

func TestUnreachableFrom(t *testing.T) {
	g, err := New(5, [][2]int32{{0, 1}, {2, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	seed := []int{0, -1, -1, -1, -1} // only component {0,1} has a seed
	if got := g.UnreachableFrom(seed); got != 3 {
		t.Errorf("UnreachableFrom = %d, want 3 (nodes 2,3,4)", got)
	}
	all := []int{0, -1, 1, -1, 2}
	if got := g.UnreachableFrom(all); got != 0 {
		t.Errorf("UnreachableFrom = %d, want 0", got)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g, err := New(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}}, []float64{1, 2.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != 4 || back.M != 3 {
		t.Errorf("round trip n=%d m=%d", back.N, back.M)
	}
	if !dense.Equal(back.Adj.ToDense(), g.Adj.ToDense(), 0) {
		t.Error("round trip changed adjacency")
	}
}

func TestReadEdgeListComments(t *testing.T) {
	in := "# comment\n\n0 1\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.M != 2 {
		t.Errorf("n=%d m=%d", g.N, g.M)
	}
}

func TestReadEdgeListMinN(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 10 {
		t.Errorf("minN not honored: %d", g.N)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",          // too few fields
		"0 1 2 3\n",    // too many fields
		"x 1\n",        // bad id
		"0 y\n",        // bad id
		"-1 2\n",       // negative id
		"0 1 weight\n", // bad weight
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), 0); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestLabelsRoundTrip(t *testing.T) {
	labels := []int{0, -1, 2, 1}
	var buf bytes.Buffer
	if err := WriteLabels(&buf, labels); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLabels(&buf, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range labels {
		if back[i] != labels[i] {
			t.Errorf("label[%d] = %d, want %d", i, back[i], labels[i])
		}
	}
}

func TestReadLabelsErrors(t *testing.T) {
	cases := []string{
		"0\n",     // too few fields
		"0 1 2\n", // too many fields
		"x 1\n",   // bad node
		"0 y\n",   // bad label
		"99 1\n",  // node out of range
		"0 -2\n",  // negative label
	}
	for _, in := range cases {
		if _, err := ReadLabels(strings.NewReader(in), 4); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}
