package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// LoadFiles reads an edge-list file (TSV "u\tv[\tw]") and a labels file
// ("node\tlabel") into a graph and a length-n label vector; the shared
// loader behind both the one-shot CLI and the serving binary.
func LoadFiles(edgesPath, labelsPath string) (*Graph, []int, error) {
	ef, err := os.Open(edgesPath)
	if err != nil {
		return nil, nil, err
	}
	defer ef.Close()
	g, err := ReadEdgeList(ef, 0)
	if err != nil {
		return nil, nil, err
	}
	lf, err := os.Open(labelsPath)
	if err != nil {
		return nil, nil, err
	}
	defer lf.Close()
	labels, err := ReadLabels(lf, g.N)
	if err != nil {
		return nil, nil, err
	}
	return g, labels, nil
}

// WriteEdgeList writes the graph as a TSV edge list: one "u\tv[\tw]" line
// per undirected edge (u ≤ v). Weights are written only when non-unit.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	adj := g.Adj
	for i := 0; i < g.N; i++ {
		for p := adj.IndPtr[i]; p < adj.IndPtr[i+1]; p++ {
			j := int(adj.Indices[p])
			if j < i {
				continue // emit each undirected edge once
			}
			wt := 1.0
			if adj.Data != nil {
				wt = adj.Data[p]
			}
			var err error
			if wt == 1 {
				_, err = fmt.Fprintf(bw, "%d\t%d\n", i, j)
			} else {
				_, err = fmt.Fprintf(bw, "%d\t%d\t%g\n", i, j, wt)
			}
			if err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses a TSV/whitespace edge list. Lines starting with '#'
// and blank lines are skipped. Node ids must be non-negative; n is inferred
// as max id + 1 unless minN is larger.
func ReadEdgeList(r io.Reader, minN int) (*Graph, error) {
	var edges [][2]int32
	var weights []float64
	weighted := false
	maxID := int32(-1)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("graph: line %d: want 2 or 3 fields, got %d", lineNo, len(fields))
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad node id %q: %w", lineNo, fields[0], err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad node id %q: %w", lineNo, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative node id", lineNo)
		}
		wt := 1.0
		if len(fields) == 3 {
			wt, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q: %w", lineNo, fields[2], err)
			}
			weighted = true
		}
		edges = append(edges, [2]int32{int32(u), int32(v)})
		weights = append(weights, wt)
		if int32(u) > maxID {
			maxID = int32(u)
		}
		if int32(v) > maxID {
			maxID = int32(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	n := int(maxID) + 1
	if minN > n {
		n = minN
	}
	if !weighted {
		weights = nil
	}
	return New(n, edges, weights)
}

// WriteLabels writes node labels as "node\tlabel" lines, skipping
// unlabeled (-1) entries.
func WriteLabels(w io.Writer, labels []int) error {
	bw := bufio.NewWriter(w)
	for i, l := range labels {
		if l < 0 {
			continue
		}
		if _, err := fmt.Fprintf(bw, "%d\t%d\n", i, l); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLabels parses "node\tlabel" lines into a length-n label slice with -1
// for unlabeled nodes.
func ReadLabels(r io.Reader, n int) ([]int, error) {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: labels line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		node, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: labels line %d: bad node %q: %w", lineNo, fields[0], err)
		}
		lab, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: labels line %d: bad label %q: %w", lineNo, fields[1], err)
		}
		if node < 0 || node >= n {
			return nil, fmt.Errorf("graph: labels line %d: node %d out of range n=%d", lineNo, node, n)
		}
		if lab < 0 {
			return nil, fmt.Errorf("graph: labels line %d: negative label %d", lineNo, lab)
		}
		labels[node] = lab
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading labels: %w", err)
	}
	return labels, nil
}
