package graph

import (
	"bytes"
	"fmt"

	"factorgraph/internal/labels"
)

// ParseUpload parses an uploaded graph: an edge-list payload (TSV
// "u\tv[\tw]", same format ReadEdgeList accepts) and a seed-labels payload
// ("node\tlabel"). It returns the graph, the length-n seed vector and the
// inferred class count (max label + 1). This is the admission path for
// graphs POSTed to the multi-tenant serving API; the raw bytes are small
// enough to retain for transparent rebuilds after eviction, so parsing must
// be deterministic on the same payload.
func ParseUpload(edges, seedLabels []byte) (*Graph, []int, int, error) {
	if len(bytes.TrimSpace(edges)) == 0 {
		return nil, nil, 0, fmt.Errorf("graph: empty edge-list upload")
	}
	g, err := ReadEdgeList(bytes.NewReader(edges), 0)
	if err != nil {
		return nil, nil, 0, err
	}
	seeds, err := ReadLabels(bytes.NewReader(seedLabels), g.N)
	if err != nil {
		return nil, nil, 0, err
	}
	if labels.NumLabeled(seeds) == 0 {
		return nil, nil, 0, fmt.Errorf("graph: upload has no seed labels")
	}
	return g, seeds, labels.NumClasses(seeds), nil
}
