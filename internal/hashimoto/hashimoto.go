// Package hashimoto implements the 2m×2m non-backtracking edge-adjacency
// ("Hashimoto") matrix that prior work (paper §2.6) uses to reason about
// non-backtracking walks: one state per directed edge, with a transition
// (u→v) → (v→w) whenever w ≠ u.
//
// The paper's contribution is precisely that compatibility estimation does
// NOT need this augmented state space (Proposition 4.3 counts NB paths on
// the original n×n matrices). This package exists as the reference
// implementation the recurrence is validated against, and to quantify the
// blow-up the factorized approach avoids: the Hashimoto matrix has 2m
// states and O(m·(d−1)) nonzeros.
package hashimoto

import (
	"fmt"

	"factorgraph/internal/dense"
	"factorgraph/internal/sparse"
)

// Matrix is the Hashimoto operator of an undirected graph.
type Matrix struct {
	// B is the 2m×2m edge-adjacency matrix.
	B *sparse.CSR
	// Tail and Head give, for each directed-edge state, its endpoints:
	// state s represents the directed edge Tail[s] → Head[s].
	Tail, Head []int32
}

// New builds the Hashimoto matrix of the graph behind w. States are the
// 2m directed versions of w's undirected edges, indexed by their position
// in the CSR structure (state p is the directed edge i→w.Indices[p] for p
// in row i's range). Self-loops are rejected: non-backtracking walks are
// not well defined on them.
func New(w *sparse.CSR) (*Matrix, error) {
	nnz := w.NNZ()
	tail := make([]int32, nnz)
	head := make([]int32, nnz)
	for i := 0; i < w.N; i++ {
		for p := w.IndPtr[i]; p < w.IndPtr[i+1]; p++ {
			if int(w.Indices[p]) == i {
				return nil, fmt.Errorf("hashimoto: self-loop at node %d", i)
			}
			tail[p] = int32(i)
			head[p] = w.Indices[p]
		}
	}
	// Transition (u→v) → (v→w) for every neighbor w of v with w ≠ u.
	var coords []sparse.Coord
	for s := 0; s < nnz; s++ {
		v := head[s]
		u := tail[s]
		for q := w.IndPtr[v]; q < w.IndPtr[v+1]; q++ {
			if w.Indices[q] == u {
				continue // backtracking
			}
			coords = append(coords, sparse.Coord{Row: int32(s), Col: int32(q), W: 1})
		}
	}
	b, err := sparse.NewFromCoords(nnz, coords)
	if err != nil {
		return nil, err
	}
	return &Matrix{B: b, Tail: tail, Head: head}, nil
}

// States returns the number of directed-edge states (2m).
func (h *Matrix) States() int { return len(h.Tail) }

// NBPathCounts returns, for each ℓ in 1..lmax, the n×n matrix of
// non-backtracking path counts computed through the augmented state space:
// count(i→j, ℓ) = Σ_{e: tail=i} (B^{ℓ−1} T_j)(e) where T_j selects states
// with head j. This is the expensive reference computation; it
// materializes n×2m intermediates and exists for validation and for
// quantifying the factorization's advantage.
func (h *Matrix) NBPathCounts(n, lmax int) ([]*dense.Matrix, error) {
	if lmax < 1 {
		return nil, fmt.Errorf("hashimoto: lmax=%d, want ≥ 1", lmax)
	}
	s := h.States()
	// state-indicator matrix S ∈ R^{s×n}: S[e][head(e)] = 1.
	indicator := dense.New(s, n)
	for e := 0; e < s; e++ {
		indicator.Set(e, int(h.Head[e]), 1)
	}
	out := make([]*dense.Matrix, lmax)
	cur := indicator.Clone() // B^{ℓ−1}·S, starting at ℓ=1
	for l := 1; l <= lmax; l++ {
		// counts[i][j] = Σ_{e: tail(e)=i} cur[e][j]
		counts := dense.New(n, n)
		for e := 0; e < s; e++ {
			i := int(h.Tail[e])
			crow := cur.Row(e)
			orow := counts.Row(i)
			for j, v := range crow {
				orow[j] += v
			}
		}
		out[l-1] = counts
		if l < lmax {
			cur = h.B.MulDense(cur)
		}
	}
	return out, nil
}

// SpectralRadius estimates ρ(B), which governs the detectability threshold
// in NB-walk community detection (Krzakala et al., reference [30]).
func (h *Matrix) SpectralRadius(iters int) float64 {
	return h.B.SpectralRadius(iters)
}
