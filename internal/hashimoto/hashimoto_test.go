package hashimoto

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"factorgraph/internal/core"
	"factorgraph/internal/dense"
	"factorgraph/internal/sparse"
)

func triangle(t *testing.T) *sparse.CSR {
	t.Helper()
	w, err := sparse.NewSymmetricFromEdges(3, [][2]int32{{0, 1}, {1, 2}, {0, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewBasics(t *testing.T) {
	w := triangle(t)
	h, err := New(w)
	if err != nil {
		t.Fatal(err)
	}
	if h.States() != 6 {
		t.Errorf("states = %d, want 2m = 6", h.States())
	}
	// Each state (u→v) transitions to deg(v)−1 = 1 states on a triangle.
	if h.B.NNZ() != 6 {
		t.Errorf("B nnz = %d, want 6 (one continuation per state)", h.B.NNZ())
	}
}

func TestNewRejectsSelfLoops(t *testing.T) {
	w, err := sparse.NewSymmetricFromEdges(2, [][2]int32{{0, 0}, {0, 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(w); err == nil {
		t.Error("expected self-loop rejection")
	}
}

func TestNBPathCountsTriangle(t *testing.T) {
	// On a triangle, NB paths of length 2 from i reach the third node only
	// (no return to i), and length 3 returns to i exactly around the two
	// cycle orientations.
	w := triangle(t)
	h, err := New(w)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := h.NBPathCounts(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// ℓ=1: adjacency.
	if !dense.Equal(counts[0], w.ToDense(), 1e-12) {
		t.Errorf("l=1 counts ≠ W:\n%v", counts[0])
	}
	// ℓ=2: exactly one NB path between distinct nodes, none to self.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 1.0
			if i == j {
				want = 0
			}
			if got := counts[1].At(i, j); got != want {
				t.Errorf("l=2 count(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
	// ℓ=3: two NB closed walks per node (clockwise, counterclockwise).
	for i := 0; i < 3; i++ {
		if got := counts[2].At(i, i); got != 2 {
			t.Errorf("l=3 count(%d,%d) = %v, want 2", i, i, got)
		}
	}
}

// Property: the Hashimoto-based NB path counts equal the paper's
// Proposition 4.3 recurrence on random graphs — the two formulations count
// the same objects.
func TestHashimotoMatchesRecurrenceProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(101, 102))
	f := func() bool {
		n := 3 + r.IntN(7)
		var edges [][2]int32
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.5 {
					edges = append(edges, [2]int32{int32(i), int32(j)})
				}
			}
		}
		if len(edges) == 0 {
			return true
		}
		w, err := sparse.NewSymmetricFromEdges(n, edges, nil)
		if err != nil {
			return false
		}
		h, err := New(w)
		if err != nil {
			return false
		}
		const lmax = 5
		viaB, err := h.NBPathCounts(n, lmax)
		if err != nil {
			return false
		}
		viaRec, err := core.ExplicitNBPowers(w, lmax)
		if err != nil {
			return false
		}
		for l := 0; l < lmax; l++ {
			if !dense.Equal(viaB[l], viaRec[l].ToDense(), 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestNBPathCountsErrors(t *testing.T) {
	w := triangle(t)
	h, err := New(w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.NBPathCounts(3, 0); err == nil {
		t.Error("expected lmax error")
	}
}

func TestSpectralRadiusRegularGraph(t *testing.T) {
	// On a d-regular graph ρ(B) = d−1 (Hashimoto's theorem); a triangle is
	// 2-regular so ρ(B) = 1.
	w := triangle(t)
	h, err := New(w)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.SpectralRadius(400); math.Abs(got-1) > 1e-6 {
		t.Errorf("ρ(B) = %v, want 1 on a 2-regular graph", got)
	}
	// Complete graph K4 is 3-regular: ρ(B) = 2.
	var edges [][2]int32
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			edges = append(edges, [2]int32{int32(i), int32(j)})
		}
	}
	w4, err := sparse.NewSymmetricFromEdges(4, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	h4, err := New(w4)
	if err != nil {
		t.Fatal(err)
	}
	if got := h4.SpectralRadius(400); math.Abs(got-2) > 1e-6 {
		t.Errorf("ρ(B) = %v, want 2 on K4", got)
	}
}

// TestStateSpaceBlowup documents the size contrast the paper's §2.6 draws:
// the Hashimoto representation needs 2m states and O(m(d−1)) nonzeros,
// versus the n-state factorized recurrence.
func TestStateSpaceBlowup(t *testing.T) {
	var edges [][2]int32
	n := 40
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if (i+j)%3 == 0 {
				edges = append(edges, [2]int32{int32(i), int32(j)})
			}
		}
	}
	w, err := sparse.NewSymmetricFromEdges(n, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(w)
	if err != nil {
		t.Fatal(err)
	}
	if h.States() != w.NNZ() {
		t.Errorf("states %d ≠ 2m %d", h.States(), w.NNZ())
	}
	if h.States() <= n {
		t.Errorf("expected state blow-up beyond n=%d, got %d", n, h.States())
	}
}
