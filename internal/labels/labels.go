// Package labels handles node label vectors, the explicit-belief matrix X,
// and the stratified seed sampling used by every experiment in the paper
// (Section 5, "Quality assessment").
package labels

import (
	"fmt"
	"math/rand/v2"

	"factorgraph/internal/dense"
)

// Unlabeled marks a node without a known class in a label vector.
const Unlabeled = -1

// NumClasses returns 1 + the maximum label, ignoring unlabeled entries.
func NumClasses(labels []int) int {
	k := 0
	for _, l := range labels {
		if l+1 > k {
			k = l + 1
		}
	}
	return k
}

// Matrix builds the n×k explicit-belief matrix X: X[i][c] = 1 iff node i is
// labeled c; unlabeled nodes have an all-zero row (paper Section 2.1).
func Matrix(labels []int, k int) (*dense.Matrix, error) {
	x := dense.New(len(labels), k)
	for i, l := range labels {
		if l == Unlabeled {
			continue
		}
		if l < 0 || l >= k {
			return nil, fmt.Errorf("labels: node %d has label %d outside [0,%d)", i, l, k)
		}
		x.Set(i, l, 1)
	}
	return x, nil
}

// Counts returns the number of labeled nodes per class.
func Counts(labels []int, k int) []int {
	c := make([]int, k)
	for _, l := range labels {
		if l >= 0 && l < k {
			c[l]++
		}
	}
	return c
}

// NumLabeled returns the number of labeled entries.
func NumLabeled(labels []int) int {
	n := 0
	for _, l := range labels {
		if l != Unlabeled {
			n++
		}
	}
	return n
}

// SampleStratified returns a copy of truth where only a stratified random
// fraction f of nodes stays labeled: classes are sampled in proportion to
// their frequencies, with at least one seed per non-empty class so that
// estimation is well-posed (mirrors the paper's stratified sampling).
func SampleStratified(truth []int, k int, f float64, rng *rand.Rand) ([]int, error) {
	if f < 0 || f > 1 {
		return nil, fmt.Errorf("labels: fraction f=%v outside [0,1]", f)
	}
	byClass := make([][]int, k)
	for i, l := range truth {
		if l == Unlabeled {
			continue
		}
		if l < 0 || l >= k {
			return nil, fmt.Errorf("labels: node %d has label %d outside [0,%d)", i, l, k)
		}
		byClass[l] = append(byClass[l], i)
	}
	out := make([]int, len(truth))
	for i := range out {
		out[i] = Unlabeled
	}
	for c, nodes := range byClass {
		if len(nodes) == 0 {
			continue
		}
		want := int(f*float64(len(nodes)) + 0.5)
		if want < 1 {
			want = 1
		}
		if want > len(nodes) {
			want = len(nodes)
		}
		// Partial Fisher–Yates: choose `want` nodes uniformly.
		perm := make([]int, len(nodes))
		copy(perm, nodes)
		for i := 0; i < want; i++ {
			j := i + rng.IntN(len(perm)-i)
			perm[i], perm[j] = perm[j], perm[i]
		}
		for _, node := range perm[:want] {
			out[node] = c
		}
	}
	return out, nil
}

// SplitSeedHoldout partitions the labeled nodes of seeds into two disjoint
// label vectors: a seed set with fraction seedFrac of the labeled nodes
// (stratified per class) and a holdout set with the rest. Used by the
// Holdout baseline (Section 4.1).
func SplitSeedHoldout(seeds []int, k int, seedFrac float64, rng *rand.Rand) (seed, holdout []int, err error) {
	if seedFrac <= 0 || seedFrac >= 1 {
		return nil, nil, fmt.Errorf("labels: seedFrac=%v outside (0,1)", seedFrac)
	}
	seed = make([]int, len(seeds))
	holdout = make([]int, len(seeds))
	for i := range seed {
		seed[i] = Unlabeled
		holdout[i] = Unlabeled
	}
	byClass := make([][]int, k)
	for i, l := range seeds {
		if l == Unlabeled {
			continue
		}
		if l < 0 || l >= k {
			return nil, nil, fmt.Errorf("labels: node %d has label %d outside [0,%d)", i, l, k)
		}
		byClass[l] = append(byClass[l], i)
	}
	// Classes with a single labeled node cannot be split; alternate them
	// between seed and holdout so extremely sparse regimes (one seed per
	// class) still yield a non-empty holdout set.
	singletonToSeed := true
	for c, nodes := range byClass {
		if len(nodes) == 0 {
			continue
		}
		if len(nodes) == 1 {
			if singletonToSeed {
				seed[nodes[0]] = c
			} else {
				holdout[nodes[0]] = c
			}
			singletonToSeed = !singletonToSeed
			continue
		}
		perm := make([]int, len(nodes))
		copy(perm, nodes)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		cut := int(seedFrac * float64(len(perm)))
		if cut < 1 {
			cut = 1
		}
		if cut >= len(perm) {
			cut = len(perm) - 1
		}
		for _, node := range perm[:cut] {
			seed[node] = c
		}
		for _, node := range perm[cut:] {
			holdout[node] = c
		}
	}
	return seed, holdout, nil
}
