package labels

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNumClasses(t *testing.T) {
	if got := NumClasses([]int{0, 2, Unlabeled, 1}); got != 3 {
		t.Errorf("NumClasses = %d", got)
	}
	if got := NumClasses([]int{Unlabeled}); got != 0 {
		t.Errorf("NumClasses = %d", got)
	}
}

func TestMatrix(t *testing.T) {
	x, err := Matrix([]int{0, Unlabeled, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if x.At(0, 0) != 1 || x.At(2, 1) != 1 {
		t.Errorf("Matrix wrong: %v", x)
	}
	// Unlabeled row all zero.
	if x.At(1, 0) != 0 || x.At(1, 1) != 0 {
		t.Errorf("unlabeled row not zero: %v", x)
	}
	if _, err := Matrix([]int{5}, 2); err == nil {
		t.Error("expected out-of-range error")
	}
}

func TestCountsAndNumLabeled(t *testing.T) {
	l := []int{0, 0, 1, Unlabeled, 2}
	c := Counts(l, 3)
	if c[0] != 2 || c[1] != 1 || c[2] != 1 {
		t.Errorf("Counts = %v", c)
	}
	if NumLabeled(l) != 4 {
		t.Errorf("NumLabeled = %d", NumLabeled(l))
	}
}

func TestSampleStratifiedBasic(t *testing.T) {
	truth := make([]int, 1000)
	for i := range truth {
		truth[i] = i % 4
	}
	rng := rand.New(rand.NewPCG(1, 2))
	s, err := SampleStratified(truth, 4, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := Counts(s, 4)
	for c, n := range counts {
		if n != 25 {
			t.Errorf("class %d sampled %d, want 25 (stratified)", c, n)
		}
	}
	// Sampled labels agree with truth.
	for i, l := range s {
		if l != Unlabeled && l != truth[i] {
			t.Errorf("sample changed label at %d", i)
		}
	}
}

func TestSampleStratifiedAtLeastOnePerClass(t *testing.T) {
	truth := make([]int, 10000)
	for i := range truth {
		truth[i] = i % 2
	}
	rng := rand.New(rand.NewPCG(3, 4))
	s, err := SampleStratified(truth, 2, 0.00001, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := Counts(s, 2)
	if counts[0] < 1 || counts[1] < 1 {
		t.Errorf("extreme sparsity lost a class: %v", counts)
	}
}

func TestSampleStratifiedErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	if _, err := SampleStratified([]int{0}, 1, -0.5, rng); err == nil {
		t.Error("expected bad-f error")
	}
	if _, err := SampleStratified([]int{7}, 2, 0.5, rng); err == nil {
		t.Error("expected out-of-range label error")
	}
}

// Property: the stratified sample size per class is round(f·count) clamped
// to [1, count].
func TestSampleStratifiedSizeProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	f := func() bool {
		k := 2 + r.IntN(4)
		n := 50 + r.IntN(500)
		truth := make([]int, n)
		for i := range truth {
			truth[i] = r.IntN(k)
		}
		frac := r.Float64()
		s, err := SampleStratified(truth, k, frac, r)
		if err != nil {
			return false
		}
		tc := Counts(truth, k)
		sc := Counts(s, k)
		for c := 0; c < k; c++ {
			if tc[c] == 0 {
				if sc[c] != 0 {
					return false
				}
				continue
			}
			want := int(frac*float64(tc[c]) + 0.5)
			if want < 1 {
				want = 1
			}
			if want > tc[c] {
				want = tc[c]
			}
			if sc[c] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSplitSeedHoldout(t *testing.T) {
	seeds := make([]int, 100)
	for i := range seeds {
		if i < 40 {
			seeds[i] = i % 2
		} else {
			seeds[i] = Unlabeled
		}
	}
	rng := rand.New(rand.NewPCG(9, 10))
	s, h, err := SplitSeedHoldout(seeds, 2, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seeds {
		switch {
		case seeds[i] == Unlabeled:
			if s[i] != Unlabeled || h[i] != Unlabeled {
				t.Fatalf("unlabeled node %d got a label", i)
			}
		case s[i] != Unlabeled && h[i] != Unlabeled:
			t.Fatalf("node %d in both seed and holdout", i)
		case s[i] == Unlabeled && h[i] == Unlabeled:
			t.Fatalf("labeled node %d lost from both sets", i)
		}
	}
	sc, hc := Counts(s, 2), Counts(h, 2)
	if sc[0] != 10 || sc[1] != 10 || hc[0] != 10 || hc[1] != 10 {
		t.Errorf("split sizes seed=%v holdout=%v", sc, hc)
	}
}

func TestSplitSeedHoldoutErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	if _, _, err := SplitSeedHoldout([]int{0}, 2, 0, rng); err == nil {
		t.Error("expected bad-frac error")
	}
	if _, _, err := SplitSeedHoldout([]int{9}, 2, 0.5, rng); err == nil {
		t.Error("expected out-of-range label error")
	}
}

func TestSplitSeedHoldoutTinyClass(t *testing.T) {
	// A class with 2 members must put one in each set.
	seeds := []int{0, 0, 1, 1, Unlabeled}
	rng := rand.New(rand.NewPCG(13, 14))
	s, h, err := SplitSeedHoldout(seeds, 2, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if NumLabeled(s) != 2 || NumLabeled(h) != 2 {
		t.Errorf("tiny split seed=%v holdout=%v", s, h)
	}
}
