// Package metrics implements the quality measures of Section 5: micro and
// macro-averaged labeling accuracy over unlabeled nodes, and the L2
// (Frobenius) distance between compatibility-matrix estimates.
package metrics

import (
	"factorgraph/internal/dense"
	"factorgraph/internal/labels"
)

// Accuracy returns the fraction of evaluation nodes whose prediction
// matches the truth. A node is evaluated when truth is labeled and seed is
// unlabeled (the paper scores only the remaining nodes). Returns 0 when no
// node qualifies.
func Accuracy(pred, truth, seed []int) float64 {
	correct, total := 0, 0
	for i, tl := range truth {
		if tl == labels.Unlabeled || (seed != nil && seed[i] != labels.Unlabeled) {
			continue
		}
		total++
		if pred[i] == tl {
			correct++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// MacroAccuracy macro-averages the per-class accuracies over the evaluation
// nodes (truth labeled, seed unlabeled), the paper's measure for
// class-imbalanced graphs. Classes with no evaluation node are skipped.
func MacroAccuracy(pred, truth, seed []int, k int) float64 {
	correct := make([]int, k)
	total := make([]int, k)
	for i, tl := range truth {
		if tl == labels.Unlabeled || (seed != nil && seed[i] != labels.Unlabeled) {
			continue
		}
		total[tl]++
		if pred[i] == tl {
			correct[tl]++
		}
	}
	sum, classes := 0.0, 0
	for c := 0; c < k; c++ {
		if total[c] == 0 {
			continue
		}
		classes++
		sum += float64(correct[c]) / float64(total[c])
	}
	if classes == 0 {
		return 0
	}
	return sum / float64(classes)
}

// MacroAccuracyOn scores predictions against a holdout label vector (every
// labeled entry of holdout is an evaluation node). Used by the Holdout
// estimator's inner loop.
func MacroAccuracyOn(pred, holdout []int, k int) float64 {
	return MacroAccuracy(pred, holdout, nil, k)
}

// L2 returns the Frobenius distance ‖A − B‖ between two compatibility
// matrices, the estimation-quality measure of Figures 6a–e and 14.
func L2(a, b *dense.Matrix) float64 {
	return dense.FrobeniusDist(a, b)
}

// ConfusionMatrix tallies prediction counts: entry (t, p) counts evaluation
// nodes of true class t predicted as p.
func ConfusionMatrix(pred, truth, seed []int, k int) *dense.Matrix {
	m := dense.New(k, k)
	for i, tl := range truth {
		if tl == labels.Unlabeled || (seed != nil && seed[i] != labels.Unlabeled) {
			continue
		}
		if pred[i] >= 0 && pred[i] < k {
			m.Set(tl, pred[i], m.At(tl, pred[i])+1)
		}
	}
	return m
}
