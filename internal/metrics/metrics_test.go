package metrics

import (
	"math"
	"testing"

	"factorgraph/internal/dense"
	"factorgraph/internal/labels"
)

func TestAccuracyExcludesSeeds(t *testing.T) {
	truth := []int{0, 1, 0, 1}
	seed := []int{0, labels.Unlabeled, labels.Unlabeled, labels.Unlabeled}
	pred := []int{0, 1, 1, 1} // node 0 is a seed (excluded); 2 of 3 correct
	got := Accuracy(pred, truth, seed)
	if math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Accuracy = %v, want 2/3", got)
	}
}

func TestAccuracyNilSeed(t *testing.T) {
	truth := []int{0, 1}
	pred := []int{0, 0}
	if got := Accuracy(pred, truth, nil); got != 0.5 {
		t.Errorf("Accuracy = %v", got)
	}
}

func TestAccuracyEmpty(t *testing.T) {
	if got := Accuracy(nil, nil, nil); got != 0 {
		t.Errorf("empty Accuracy = %v", got)
	}
	truth := []int{labels.Unlabeled}
	if got := Accuracy([]int{0}, truth, nil); got != 0 {
		t.Errorf("all-unlabeled Accuracy = %v", got)
	}
}

func TestMacroAccuracyImbalance(t *testing.T) {
	// 9 nodes of class 0 (all correct), 1 node of class 1 (wrong):
	// micro = 0.9 but macro = (1.0 + 0.0)/2 = 0.5.
	truth := make([]int, 10)
	pred := make([]int, 10)
	truth[9] = 1
	pred[9] = 0
	micro := Accuracy(pred, truth, nil)
	macro := MacroAccuracy(pred, truth, nil, 2)
	if math.Abs(micro-0.9) > 1e-12 {
		t.Errorf("micro = %v", micro)
	}
	if math.Abs(macro-0.5) > 1e-12 {
		t.Errorf("macro = %v", macro)
	}
}

func TestMacroAccuracySkipsEmptyClasses(t *testing.T) {
	truth := []int{0, 0}
	pred := []int{0, 0}
	if got := MacroAccuracy(pred, truth, nil, 5); got != 1 {
		t.Errorf("macro with empty classes = %v", got)
	}
	if got := MacroAccuracy(nil, nil, nil, 3); got != 0 {
		t.Errorf("macro empty = %v", got)
	}
}

func TestMacroAccuracyOn(t *testing.T) {
	holdout := []int{labels.Unlabeled, 1, 0}
	pred := []int{0, 1, 1}
	// class 1: 1/1; class 0: 0/1 → macro 0.5
	if got := MacroAccuracyOn(pred, holdout, 2); got != 0.5 {
		t.Errorf("MacroAccuracyOn = %v", got)
	}
}

func TestL2(t *testing.T) {
	a := dense.FromRows([][]float64{{1, 0}, {0, 1}})
	b := dense.FromRows([][]float64{{0, 0}, {0, 0}})
	if got := L2(a, b); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Errorf("L2 = %v", got)
	}
}

func TestConfusionMatrix(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	pred := []int{0, 1, 1, 1}
	cm := ConfusionMatrix(pred, truth, nil, 2)
	if cm.At(0, 0) != 1 || cm.At(0, 1) != 1 || cm.At(1, 1) != 2 || cm.At(1, 0) != 0 {
		t.Errorf("confusion = %v", cm)
	}
}
