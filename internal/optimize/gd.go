// Package optimize provides the two optimizers the reproduction needs:
// gradient descent with Armijo backtracking (a stand-in for the paper's
// SLSQP — the equality constraints are eliminated by the free-parameter
// encoding of H, Eq. 6) and a Nelder–Mead simplex (used by the Holdout
// baseline, as in the paper).
package optimize

import (
	"errors"
	"math"
)

// Objective is a differentiable scalar function of a parameter vector.
type Objective interface {
	Value(x []float64) float64
	Grad(x []float64) []float64
}

// GDOptions configures GradientDescent.
type GDOptions struct {
	MaxIter  int     // maximum outer iterations (default 500)
	GradTol  float64 // stop when ‖∇E‖∞ < GradTol (default 1e-9)
	StepInit float64 // initial step size per iteration (default 1.0)
	Shrink   float64 // backtracking shrink factor in (0,1) (default 0.5)
	Armijo   float64 // sufficient-decrease constant (default 1e-4)
}

func (o *GDOptions) defaults() {
	if o.MaxIter == 0 {
		o.MaxIter = 500
	}
	if o.GradTol == 0 {
		o.GradTol = 1e-9
	}
	if o.StepInit == 0 {
		o.StepInit = 1.0
	}
	if o.Shrink == 0 {
		o.Shrink = 0.5
	}
	if o.Armijo == 0 {
		o.Armijo = 1e-4
	}
}

// Result reports the outcome of an optimization run.
type Result struct {
	X          []float64
	Value      float64
	Iterations int
	Converged  bool
}

// GradientDescent minimizes obj starting from x0 using steepest descent with
// Armijo backtracking line search. It is robust on the small (k*≤66
// dimensional) problems of this codebase and needs no constraint handling.
func GradientDescent(obj Objective, x0 []float64, opts GDOptions) (Result, error) {
	if len(x0) == 0 {
		return Result{}, errors.New("optimize: empty starting point")
	}
	opts.defaults()
	x := append([]float64(nil), x0...)
	fx := obj.Value(x)
	if math.IsNaN(fx) || math.IsInf(fx, 0) {
		return Result{}, errors.New("optimize: objective not finite at start")
	}
	trial := make([]float64, len(x))
	for it := 0; it < opts.MaxIter; it++ {
		g := obj.Grad(x)
		gInf, gSq := 0.0, 0.0
		for _, v := range g {
			a := math.Abs(v)
			if a > gInf {
				gInf = a
			}
			gSq += v * v
		}
		if gInf < opts.GradTol {
			return Result{X: x, Value: fx, Iterations: it, Converged: true}, nil
		}
		// Backtracking line search along −g.
		step := opts.StepInit
		improved := false
		for ls := 0; ls < 60; ls++ {
			for i := range x {
				trial[i] = x[i] - step*g[i]
			}
			ft := obj.Value(trial)
			if ft <= fx-opts.Armijo*step*gSq && !math.IsNaN(ft) {
				copy(x, trial)
				fx = ft
				improved = true
				break
			}
			step *= opts.Shrink
		}
		if !improved {
			// Line search failed: gradient direction yields no decrease at
			// machine precision — treat as converged.
			return Result{X: x, Value: fx, Iterations: it, Converged: true}, nil
		}
	}
	return Result{X: x, Value: fx, Iterations: opts.MaxIter, Converged: false}, nil
}

// FiniteDiffGrad computes a central-difference gradient of f at x with step
// h. Used by tests to validate analytic gradients and by objectives that
// have no closed-form gradient.
func FiniteDiffGrad(f func([]float64) float64, x []float64, h float64) []float64 {
	g := make([]float64, len(x))
	xx := append([]float64(nil), x...)
	for i := range x {
		xx[i] = x[i] + h
		fp := f(xx)
		xx[i] = x[i] - h
		fm := f(xx)
		xx[i] = x[i]
		g[i] = (fp - fm) / (2 * h)
	}
	return g
}

// FuncObjective adapts a value function (with optional gradient) to the
// Objective interface; a nil gradient falls back to central differences.
type FuncObjective struct {
	F  func([]float64) float64
	G  func([]float64) []float64
	FD float64 // finite-difference step when G is nil (default 1e-6)
}

// Value implements Objective.
func (f FuncObjective) Value(x []float64) float64 { return f.F(x) }

// Grad implements Objective.
func (f FuncObjective) Grad(x []float64) []float64 {
	if f.G != nil {
		return f.G(x)
	}
	h := f.FD
	if h == 0 {
		h = 1e-6
	}
	return FiniteDiffGrad(f.F, x, h)
}
