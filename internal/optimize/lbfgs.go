package optimize

import (
	"errors"
	"math"
)

// LBFGSOptions configures LBFGS.
type LBFGSOptions struct {
	MaxIter int     // maximum iterations (default 300)
	GradTol float64 // stop when ‖∇E‖∞ < GradTol (default 1e-9)
	Memory  int     // number of correction pairs (default 7)
	Armijo  float64 // sufficient-decrease constant (default 1e-4)
	Shrink  float64 // line-search shrink factor (default 0.5)
}

func (o *LBFGSOptions) defaults() {
	if o.MaxIter == 0 {
		o.MaxIter = 300
	}
	if o.GradTol == 0 {
		o.GradTol = 1e-9
	}
	if o.Memory == 0 {
		o.Memory = 7
	}
	if o.Armijo == 0 {
		o.Armijo = 1e-4
	}
	if o.Shrink == 0 {
		o.Shrink = 0.5
	}
}

// LBFGS minimizes obj with the limited-memory BFGS two-loop recursion and
// Armijo backtracking. It typically needs far fewer iterations than
// steepest descent on the ill-conditioned DCE energies with large λ; the
// ablation benchmark quantifies the difference. Falls back to the steepest
// descent direction whenever curvature information is unusable.
func LBFGS(obj Objective, x0 []float64, opts LBFGSOptions) (Result, error) {
	dim := len(x0)
	if dim == 0 {
		return Result{}, errors.New("optimize: empty starting point")
	}
	opts.defaults()

	x := append([]float64(nil), x0...)
	fx := obj.Value(x)
	if math.IsNaN(fx) || math.IsInf(fx, 0) {
		return Result{}, errors.New("optimize: objective not finite at start")
	}
	g := obj.Grad(x)

	type pair struct {
		s, y []float64
		rho  float64
	}
	var hist []pair
	dir := make([]float64, dim)
	trial := make([]float64, dim)
	alpha := make([]float64, opts.Memory)

	for it := 0; it < opts.MaxIter; it++ {
		gInf := 0.0
		for _, v := range g {
			if a := math.Abs(v); a > gInf {
				gInf = a
			}
		}
		if gInf < opts.GradTol {
			return Result{X: x, Value: fx, Iterations: it, Converged: true}, nil
		}
		// Two-loop recursion: dir = −H·g.
		copy(dir, g)
		for i := len(hist) - 1; i >= 0; i-- {
			p := hist[i]
			alpha[i] = p.rho * dot(p.s, dir)
			axpy(dir, p.y, -alpha[i])
		}
		if len(hist) > 0 {
			last := hist[len(hist)-1]
			gamma := dot(last.s, last.y) / dot(last.y, last.y)
			if gamma > 0 && !math.IsNaN(gamma) {
				for i := range dir {
					dir[i] *= gamma
				}
			}
		}
		for i := 0; i < len(hist); i++ {
			p := hist[i]
			beta := p.rho * dot(p.y, dir)
			axpy(dir, p.s, alpha[i]-beta)
		}
		for i := range dir {
			dir[i] = -dir[i]
		}
		// Descent check; fall back to −g.
		dg := dot(dir, g)
		if dg >= 0 || math.IsNaN(dg) {
			for i := range dir {
				dir[i] = -g[i]
			}
			dg = -dot(g, g)
		}
		// Armijo backtracking along dir.
		step := 1.0
		improved := false
		var fNew float64
		for ls := 0; ls < 60; ls++ {
			for i := range x {
				trial[i] = x[i] + step*dir[i]
			}
			fNew = obj.Value(trial)
			if fNew <= fx+opts.Armijo*step*dg && !math.IsNaN(fNew) {
				improved = true
				break
			}
			step *= opts.Shrink
		}
		if !improved {
			return Result{X: x, Value: fx, Iterations: it, Converged: true}, nil
		}
		gNew := obj.Grad(trial)
		// Curvature pair.
		s := make([]float64, dim)
		y := make([]float64, dim)
		for i := range x {
			s[i] = trial[i] - x[i]
			y[i] = gNew[i] - g[i]
		}
		if sy := dot(s, y); sy > 1e-12 {
			hist = append(hist, pair{s: s, y: y, rho: 1 / sy})
			if len(hist) > opts.Memory {
				hist = hist[1:]
			}
		}
		copy(x, trial)
		fx = fNew
		g = gNew
	}
	return Result{X: x, Value: fx, Iterations: opts.MaxIter, Converged: false}, nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// axpy computes dst += c·src.
func axpy(dst, src []float64, c float64) {
	for i := range dst {
		dst[i] += c * src[i]
	}
}
