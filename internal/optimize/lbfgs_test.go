package optimize

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestLBFGSQuadratic(t *testing.T) {
	q := quadratic{a: []float64{1, 100, 0.1}, c: []float64{2, -1, 3}} // ill-conditioned
	res, err := LBFGS(q, []float64{0, 0, 0}, LBFGSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("LBFGS did not converge on a quadratic")
	}
	for i := range q.c {
		if math.Abs(res.X[i]-q.c[i]) > 1e-5 {
			t.Errorf("x[%d] = %v, want %v", i, res.X[i], q.c[i])
		}
	}
}

func TestLBFGSRosenbrockFasterThanGD(t *testing.T) {
	rosen := FuncObjective{
		F: func(x []float64) float64 {
			return 100*math.Pow(x[1]-x[0]*x[0], 2) + math.Pow(1-x[0], 2)
		},
	}
	res, err := LBFGS(rosen, []float64{-1.2, 1}, LBFGSOptions{MaxIter: 2000, GradTol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Fatalf("LBFGS Rosenbrock min = %v, want (1,1)", res.X)
	}
	// GD needs tens of thousands of iterations on Rosenbrock; LBFGS should
	// be at least an order of magnitude cheaper.
	if res.Iterations > 2000 {
		t.Errorf("LBFGS took %d iterations", res.Iterations)
	}
}

// Property: LBFGS finds the minimizer of random strictly convex quadratics.
func TestLBFGSQuadraticProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(111, 112))
	f := func() bool {
		dim := 1 + r.IntN(8)
		q := quadratic{a: make([]float64, dim), c: make([]float64, dim)}
		for i := 0; i < dim; i++ {
			q.a[i] = 0.1 + 10*r.Float64()
			q.c[i] = 3 * r.NormFloat64()
		}
		res, err := LBFGS(q, make([]float64, dim), LBFGSOptions{MaxIter: 1000})
		if err != nil {
			return false
		}
		for i := range q.c {
			if math.Abs(res.X[i]-q.c[i]) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLBFGSErrors(t *testing.T) {
	if _, err := LBFGS(quadratic{a: []float64{1}, c: []float64{0}}, nil, LBFGSOptions{}); err == nil {
		t.Error("expected empty-start error")
	}
	bad := FuncObjective{F: func(x []float64) float64 { return math.Inf(1) }}
	if _, err := LBFGS(bad, []float64{1}, LBFGSOptions{}); err == nil {
		t.Error("expected non-finite error")
	}
}

func TestDotAxpy(t *testing.T) {
	if dot([]float64{1, 2}, []float64{3, 4}) != 11 {
		t.Error("dot")
	}
	dst := []float64{1, 1}
	axpy(dst, []float64{2, 3}, 2)
	if dst[0] != 5 || dst[1] != 7 {
		t.Errorf("axpy = %v", dst)
	}
}
