package optimize

import (
	"errors"
	"math"
	"sort"
)

// NMOptions configures NelderMead.
type NMOptions struct {
	MaxIter int     // maximum iterations (default 200·dim)
	Tol     float64 // stop when the simplex value spread < Tol (default 1e-8)
	Scale   float64 // initial simplex edge length (default 0.05)
}

func (o *NMOptions) defaults(dim int) {
	if o.MaxIter == 0 {
		o.MaxIter = 200 * dim
	}
	if o.Tol == 0 {
		o.Tol = 1e-8
	}
	if o.Scale == 0 {
		o.Scale = 0.05
	}
}

// NelderMead minimizes f starting from x0 using the derivative-free
// Nelder–Mead simplex method with standard coefficients (reflection 1,
// expansion 2, contraction 0.5, shrink 0.5). The paper uses SciPy's
// Nelder–Mead for the Holdout baseline because the holdout energy
// (negative accuracy) is discrete and non-contiguous.
func NelderMead(f func([]float64) float64, x0 []float64, opts NMOptions) (Result, error) {
	dim := len(x0)
	if dim == 0 {
		return Result{}, errors.New("optimize: empty starting point")
	}
	opts.defaults(dim)

	type vertex struct {
		x []float64
		v float64
	}
	simplex := make([]vertex, dim+1)
	simplex[0] = vertex{append([]float64(nil), x0...), f(x0)}
	for i := 0; i < dim; i++ {
		x := append([]float64(nil), x0...)
		x[i] += opts.Scale
		simplex[i+1] = vertex{x, f(x)}
	}
	evals := dim + 1

	centroid := make([]float64, dim)
	xr := make([]float64, dim)
	xe := make([]float64, dim)
	xc := make([]float64, dim)

	for it := 0; it < opts.MaxIter; it++ {
		sort.Slice(simplex, func(a, b int) bool { return simplex[a].v < simplex[b].v })
		best, worst := simplex[0], simplex[dim]
		if math.Abs(worst.v-best.v) < opts.Tol {
			return Result{X: best.x, Value: best.v, Iterations: it, Converged: true}, nil
		}
		// Centroid of all but the worst vertex.
		for j := range centroid {
			centroid[j] = 0
		}
		for i := 0; i < dim; i++ {
			for j, v := range simplex[i].x {
				centroid[j] += v
			}
		}
		for j := range centroid {
			centroid[j] /= float64(dim)
		}
		// Reflection.
		for j := range xr {
			xr[j] = centroid[j] + (centroid[j] - worst.x[j])
		}
		fr := f(xr)
		evals++
		switch {
		case fr < best.v:
			// Expansion.
			for j := range xe {
				xe[j] = centroid[j] + 2*(centroid[j]-worst.x[j])
			}
			fe := f(xe)
			evals++
			if fe < fr {
				copy(simplex[dim].x, xe)
				simplex[dim].v = fe
			} else {
				copy(simplex[dim].x, xr)
				simplex[dim].v = fr
			}
		case fr < simplex[dim-1].v:
			copy(simplex[dim].x, xr)
			simplex[dim].v = fr
		default:
			// Contraction (toward the better of worst/reflected).
			ref := worst.x
			fref := worst.v
			if fr < worst.v {
				ref = xr
				fref = fr
			}
			for j := range xc {
				xc[j] = centroid[j] + 0.5*(ref[j]-centroid[j])
			}
			fc := f(xc)
			evals++
			if fc < fref {
				copy(simplex[dim].x, xc)
				simplex[dim].v = fc
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= dim; i++ {
					for j := range simplex[i].x {
						simplex[i].x[j] = best.x[j] + 0.5*(simplex[i].x[j]-best.x[j])
					}
					simplex[i].v = f(simplex[i].x)
					evals++
				}
			}
		}
	}
	sort.Slice(simplex, func(a, b int) bool { return simplex[a].v < simplex[b].v })
	return Result{X: simplex[0].x, Value: simplex[0].v, Iterations: opts.MaxIter, Converged: false}, nil
}
