package optimize

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// quadratic is a convex test objective (x−c)ᵀdiag(a)(x−c).
type quadratic struct {
	a, c []float64
}

func (q quadratic) Value(x []float64) float64 {
	s := 0.0
	for i := range x {
		d := x[i] - q.c[i]
		s += q.a[i] * d * d
	}
	return s
}

func (q quadratic) Grad(x []float64) []float64 {
	g := make([]float64, len(x))
	for i := range x {
		g[i] = 2 * q.a[i] * (x[i] - q.c[i])
	}
	return g
}

func TestGradientDescentQuadratic(t *testing.T) {
	q := quadratic{a: []float64{1, 4, 0.5}, c: []float64{2, -1, 3}}
	res, err := GradientDescent(q, []float64{0, 0, 0}, GDOptions{MaxIter: 2000, GradTol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("did not converge")
	}
	for i := range q.c {
		if math.Abs(res.X[i]-q.c[i]) > 1e-5 {
			t.Errorf("x[%d] = %v, want %v", i, res.X[i], q.c[i])
		}
	}
}

// Property: GD on random positive-definite quadratics finds the minimizer.
func TestGradientDescentQuadraticProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(81, 82))
	f := func() bool {
		dim := 1 + r.IntN(6)
		q := quadratic{a: make([]float64, dim), c: make([]float64, dim)}
		for i := 0; i < dim; i++ {
			q.a[i] = 0.5 + 3*r.Float64()
			q.c[i] = 4 * r.NormFloat64()
		}
		x0 := make([]float64, dim)
		res, err := GradientDescent(q, x0, GDOptions{MaxIter: 3000, GradTol: 1e-10})
		if err != nil {
			return false
		}
		for i := range q.c {
			if math.Abs(res.X[i]-q.c[i]) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGradientDescentErrors(t *testing.T) {
	q := quadratic{a: []float64{1}, c: []float64{0}}
	if _, err := GradientDescent(q, nil, GDOptions{}); err == nil {
		t.Error("expected empty-start error")
	}
	bad := FuncObjective{F: func(x []float64) float64 { return math.NaN() }}
	if _, err := GradientDescent(bad, []float64{1}, GDOptions{}); err == nil {
		t.Error("expected non-finite error")
	}
}

func TestGradientDescentRosenbrock(t *testing.T) {
	// Rosenbrock: non-convex banana valley, minimum at (1,1).
	rosen := FuncObjective{
		F: func(x []float64) float64 {
			return 100*math.Pow(x[1]-x[0]*x[0], 2) + math.Pow(1-x[0], 2)
		},
	}
	res, err := GradientDescent(rosen, []float64{-1.2, 1}, GDOptions{MaxIter: 50000, GradTol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 0.05 || math.Abs(res.X[1]-1) > 0.05 {
		t.Errorf("Rosenbrock min = %v, want (1,1)", res.X)
	}
}

func TestFiniteDiffGrad(t *testing.T) {
	f := func(x []float64) float64 { return x[0]*x[0] + 3*x[1] }
	g := FiniteDiffGrad(f, []float64{2, 5}, 1e-6)
	if math.Abs(g[0]-4) > 1e-5 || math.Abs(g[1]-3) > 1e-5 {
		t.Errorf("FiniteDiffGrad = %v", g)
	}
}

func TestFuncObjectiveFallback(t *testing.T) {
	f := FuncObjective{F: func(x []float64) float64 { return x[0] * x[0] }}
	g := f.Grad([]float64{3})
	if math.Abs(g[0]-6) > 1e-4 {
		t.Errorf("fallback gradient = %v", g)
	}
}

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-1)*(x[0]-1) + (x[1]+2)*(x[1]+2)
	}
	res, err := NelderMead(f, []float64{0, 0}, NMOptions{MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]+2) > 1e-3 {
		t.Errorf("NM min = %v, want (1,-2)", res.X)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	rosen := func(x []float64) float64 {
		return 100*math.Pow(x[1]-x[0]*x[0], 2) + math.Pow(1-x[0], 2)
	}
	res, err := NelderMead(rosen, []float64{-1.2, 1}, NMOptions{MaxIter: 5000, Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 0.01 || math.Abs(res.X[1]-1) > 0.01 {
		t.Errorf("NM Rosenbrock = %v, want (1,1)", res.X)
	}
}

func TestNelderMeadDiscontinuous(t *testing.T) {
	// Step function with a clear basin: NM handles non-smoothness (this is
	// why the Holdout baseline uses it).
	f := func(x []float64) float64 {
		return math.Floor(math.Abs(x[0]-3) * 4)
	}
	res, err := NelderMead(f, []float64{0}, NMOptions{MaxIter: 500, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 {
		t.Errorf("NM on step function stopped at %v (x=%v)", res.Value, res.X)
	}
}

func TestNelderMeadErrors(t *testing.T) {
	if _, err := NelderMead(func(x []float64) float64 { return 0 }, nil, NMOptions{}); err == nil {
		t.Error("expected empty-start error")
	}
}

func TestNelderMeadMaxIterNonConverged(t *testing.T) {
	f := func(x []float64) float64 { return x[0] } // unbounded below
	res, err := NelderMead(f, []float64{0}, NMOptions{MaxIter: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("unbounded problem reported converged")
	}
}
