package propagation

import (
	"fmt"

	"factorgraph/internal/dense"
	"factorgraph/internal/labels"
	"factorgraph/internal/sparse"
)

// HarmonicOptions configures the harmonic-functions baseline.
type HarmonicOptions struct {
	Iterations int // default 100
}

// Harmonic implements the Gaussian-fields / harmonic-functions method of
// Zhu, Ghahramani & Lafferty (reference [65] in the paper): labeled nodes
// are clamped and every unlabeled node repeatedly takes the degree-weighted
// average of its neighbors' beliefs. It assumes homophily — Figure 6i uses
// it to show homophily methods collapse under heterophily.
func Harmonic(w *sparse.CSR, seed []int, k int, opts HarmonicOptions) ([]int, error) {
	if len(seed) != w.N {
		return nil, fmt.Errorf("propagation: %d seed labels for %d nodes", len(seed), w.N)
	}
	if opts.Iterations == 0 {
		opts.Iterations = 100
	}
	x, err := labels.Matrix(seed, k)
	if err != nil {
		return nil, err
	}
	deg := w.Degrees()
	f := x.Clone()
	next := dense.New(w.N, k)
	for it := 0; it < opts.Iterations; it++ {
		w.MulDenseInto(next, f)
		for i := 0; i < w.N; i++ {
			row := next.Row(i)
			if seed[i] != labels.Unlabeled {
				// Clamp labeled nodes to their one-hot belief.
				copy(row, x.Row(i))
				continue
			}
			if deg[i] > 0 {
				for j := range row {
					row[j] /= deg[i]
				}
			}
		}
		f, next = next, f
	}
	return dense.ArgmaxRows(f), nil
}

// MRWOptions configures MultiRankWalk.
type MRWOptions struct {
	Alpha      float64 // damping (walk-continuation) probability, default 0.85
	Iterations int     // default 50
}

// MultiRankWalk implements the random-walk-with-restarts baseline of Lin &
// Cohen (reference [33]): one personalized PageRank per class, restarting at
// that class's seeds, F ← ᾱU + αW_col F (Section 2.4), then a one-vs-all
// argmax.
func MultiRankWalk(w *sparse.CSR, seed []int, k int, opts MRWOptions) ([]int, error) {
	if len(seed) != w.N {
		return nil, fmt.Errorf("propagation: %d seed labels for %d nodes", len(seed), w.N)
	}
	if opts.Alpha == 0 {
		opts.Alpha = 0.85
	}
	if opts.Alpha < 0 || opts.Alpha >= 1 {
		return nil, fmt.Errorf("propagation: alpha=%v outside [0,1)", opts.Alpha)
	}
	if opts.Iterations == 0 {
		opts.Iterations = 50
	}
	// Build the teleport matrix U: column c is uniform over class-c seeds.
	u := dense.New(w.N, k)
	counts := labels.Counts(seed, k)
	for i, l := range seed {
		if l != labels.Unlabeled && counts[l] > 0 {
			u.Set(i, l, 1/float64(counts[l]))
		}
	}
	// Column-normalized W: W_col = W·diag(deg)⁻¹ applied as
	// (W_col F)_i = Σ_j W_ij F_j / deg_j.
	deg := w.Degrees()
	scaled := dense.New(w.N, k)
	f := u.Clone()
	next := dense.New(w.N, k)
	for it := 0; it < opts.Iterations; it++ {
		for i := 0; i < w.N; i++ {
			srow := scaled.Row(i)
			frow := f.Row(i)
			if deg[i] > 0 {
				for j := range srow {
					srow[j] = frow[j] / deg[i]
				}
			} else {
				for j := range srow {
					srow[j] = 0
				}
			}
		}
		w.MulDenseInto(next, scaled)
		for i := range next.Data {
			next.Data[i] = opts.Alpha*next.Data[i] + (1-opts.Alpha)*u.Data[i]
		}
		f, next = next, f
	}
	return dense.ArgmaxRows(f), nil
}
