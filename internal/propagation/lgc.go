package propagation

import (
	"fmt"
	"math"

	"factorgraph/internal/dense"
	"factorgraph/internal/labels"
	"factorgraph/internal/sparse"
)

// LGCOptions configures the local-and-global-consistency baseline.
type LGCOptions struct {
	// Alpha is the propagation weight in F ← αSF + (1−α)Y, α ∈ (0,1)
	// (default 0.9, the value used by Zhou et al.).
	Alpha float64
	// Iterations (default 50).
	Iterations int
}

// LGC implements Zhou et al.'s "Learning with Local and Global
// Consistency" (reference [63]; its symmetric normalization is the
// template for the paper's normalization variant 2): iterate
// F ← αSF + (1−α)Y with S = D^(−1/2)·W·D^(−1/2). A homophily method —
// included as a baseline alongside Harmonic and MultiRankWalk.
func LGC(w *sparse.CSR, seed []int, k int, opts LGCOptions) ([]int, error) {
	if len(seed) != w.N {
		return nil, fmt.Errorf("propagation: %d seed labels for %d nodes", len(seed), w.N)
	}
	if opts.Alpha == 0 {
		opts.Alpha = 0.9
	}
	if opts.Alpha <= 0 || opts.Alpha >= 1 {
		return nil, fmt.Errorf("propagation: LGC alpha=%v outside (0,1)", opts.Alpha)
	}
	if opts.Iterations == 0 {
		opts.Iterations = 50
	}
	y, err := labels.Matrix(seed, k)
	if err != nil {
		return nil, err
	}
	deg := w.Degrees()
	invSqrt := make([]float64, w.N)
	for i, d := range deg {
		if d > 0 {
			invSqrt[i] = 1 / math.Sqrt(d)
		}
	}
	f := y.Clone()
	scaled := dense.New(w.N, k)
	next := dense.New(w.N, k)
	for it := 0; it < opts.Iterations; it++ {
		// scaled = D^(−1/2)·F
		for i := 0; i < w.N; i++ {
			srow := scaled.Row(i)
			frow := f.Row(i)
			for j := range srow {
				srow[j] = frow[j] * invSqrt[i]
			}
		}
		w.MulDenseInto(next, scaled)
		// next = α·D^(−1/2)·(W·scaled) + (1−α)·Y
		for i := 0; i < w.N; i++ {
			nrow := next.Row(i)
			yrow := y.Row(i)
			for j := range nrow {
				nrow[j] = opts.Alpha*nrow[j]*invSqrt[i] + (1-opts.Alpha)*yrow[j]
			}
		}
		f, next = next, f
	}
	return dense.ArgmaxRows(f), nil
}

// ZooBPOptions configures the ZooBP variant.
type ZooBPOptions struct {
	// EpsH is the interaction strength ε_h ∈ (0,1]; ZooBP's update is
	// F ← X̃ + (ε_h/k)·W·F·H̃ for a centered residual potential H̃.
	// Default 0.5.
	EpsH float64
	// Iterations (default 10).
	Iterations int
}

// ZooBP implements the homogeneous-graph special case of ZooBP (Eswaran et
// al., reference [15]), which the paper positions as a restriction of
// LinBP to constant row-sum symmetric potentials: the update
// F ← X̃ + (ε_h/k)WFH̃ is exactly LinBP's with a fixed scaling instead of
// the spectral-radius-derived ε. Requires a symmetric doubly-stochastic H
// (constant row sums).
func ZooBP(w *sparse.CSR, x *dense.Matrix, h *dense.Matrix, opts ZooBPOptions) (*dense.Matrix, error) {
	if err := checkShapes(w, x, h); err != nil {
		return nil, err
	}
	if opts.EpsH == 0 {
		opts.EpsH = 0.5
	}
	if opts.EpsH < 0 || opts.EpsH > 1 {
		return nil, fmt.Errorf("propagation: ZooBP eps_h=%v outside (0,1]", opts.EpsH)
	}
	if opts.Iterations == 0 {
		opts.Iterations = 10
	}
	k := h.Rows
	// Verify the constant row-sum restriction ZooBP is limited to.
	for i := 0; i < k; i++ {
		s := 0.0
		for j := 0; j < k; j++ {
			s += h.At(i, j)
		}
		if math.Abs(s-1) > 1e-6 {
			return nil, fmt.Errorf("propagation: ZooBP requires constant row sums; row %d sums to %v", i, s)
		}
	}
	hTilde := dense.AddScalar(h, -1.0/float64(k))
	hs := dense.Scale(hTilde, opts.EpsH/float64(k))
	xt := dense.AddScalar(x, -1.0/float64(k))
	f := xt.Clone()
	fh := dense.New(x.Rows, k)
	wfh := dense.New(x.Rows, k)
	for it := 0; it < opts.Iterations; it++ {
		dense.MulInto(fh, f, hs)
		w.MulDenseInto(wfh, fh)
		f.CopyFrom(xt)
		dense.AddInPlace(f, wfh)
	}
	return f, nil
}
