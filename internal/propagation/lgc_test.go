package propagation

import (
	"testing"

	"factorgraph/internal/dense"
	"factorgraph/internal/labels"
	"factorgraph/internal/sparse"
)

func cliquePair(t *testing.T) *sparse.CSR {
	t.Helper()
	var edges [][2]int32
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, [2]int32{int32(i), int32(j)})
			edges = append(edges, [2]int32{int32(i + 5), int32(j + 5)})
		}
	}
	edges = append(edges, [2]int32{4, 5})
	w, err := sparse.NewSymmetricFromEdges(10, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestLGCHomophily(t *testing.T) {
	w := cliquePair(t)
	seed := seedVector(10, map[int]int{0: 0, 9: 1})
	pred, err := LGC(w, seed, 2, LGCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if pred[i] != 0 || pred[i+5] != 1 {
			t.Fatalf("LGC clique labeling wrong: %v", pred)
		}
	}
}

func TestLGCFailsUnderHeterophily(t *testing.T) {
	const n = 20
	w := ring(t, n)
	seed := seedVector(n, map[int]int{0: 0})
	pred, err := LGC(w, seed, 2, LGCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 1; i < n; i++ {
		if pred[i] == i%2 {
			correct++
		}
	}
	if acc := float64(correct) / float64(n-1); acc > 0.6 {
		t.Errorf("LGC accuracy %v under heterophily, expected poor", acc)
	}
}

func TestLGCErrors(t *testing.T) {
	w := ring(t, 6)
	if _, err := LGC(w, []int{0}, 2, LGCOptions{}); err == nil {
		t.Error("expected length error")
	}
	if _, err := LGC(w, seedVector(6, map[int]int{0: 0}), 2, LGCOptions{Alpha: 2}); err == nil {
		t.Error("expected alpha error")
	}
}

func TestZooBPMatchesLinBPUpdate(t *testing.T) {
	// ZooBP is LinBP restricted to constant row-sum potentials with the
	// fixed scaling ε_h/k. Running uncentered LinBP manually with that
	// scaling must agree exactly.
	const n = 16
	w := ring(t, n)
	seed := seedVector(n, map[int]int{0: 0, 8: 1})
	x, err := labels.Matrix(seed, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := heteroH()
	const epsH = 0.4
	got, err := ZooBP(w, x, h, ZooBPOptions{EpsH: epsH, Iterations: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Manual reference.
	k := 2
	hs := dense.Scale(dense.AddScalar(h, -1.0/float64(k)), epsH/float64(k))
	xt := dense.AddScalar(x, -1.0/float64(k))
	want := xt.Clone()
	for it := 0; it < 7; it++ {
		want = dense.Add(xt, w.MulDense(dense.Mul(want, hs)))
	}
	if !dense.Equal(got, want, 1e-12) {
		t.Error("ZooBP deviates from the restricted LinBP update")
	}
}

func TestZooBPHeterophilyRing(t *testing.T) {
	const n = 20
	w := ring(t, n)
	seed := seedVector(n, map[int]int{0: 0})
	x, _ := labels.Matrix(seed, 2)
	f, err := ZooBP(w, x, heteroH(), ZooBPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pred := dense.ArgmaxRows(f)
	for i := 0; i < n; i++ {
		if pred[i] != i%2 {
			t.Fatalf("ZooBP node %d labeled %d, want %d", i, pred[i], i%2)
		}
	}
}

func TestZooBPErrors(t *testing.T) {
	w := ring(t, 6)
	x := dense.New(6, 2)
	if _, err := ZooBP(w, x, heteroH(), ZooBPOptions{EpsH: 2}); err == nil {
		t.Error("expected eps_h range error")
	}
	nonConstant := dense.FromRows([][]float64{{0.5, 0.4}, {0.4, 0.5}})
	if _, err := ZooBP(w, x, nonConstant, ZooBPOptions{}); err == nil {
		t.Error("expected constant-row-sum error")
	}
}

// TestEchoCancellationExactOnPair verifies the EC term against an
// independent dense computation of F ← X̃ + WF̃H̃ − DF̃H̃² on a small graph.
func TestEchoCancellationExactOnPair(t *testing.T) {
	w, err := sparse.NewSymmetricFromEdges(3, [][2]int32{{0, 1}, {1, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	seed := seedVector(3, map[int]int{0: 0})
	x, _ := labels.Matrix(seed, 2)
	h := heteroH()
	const iters = 6
	got, err := LinBP(w, x, h, LinBPOptions{Iterations: iters, EchoCancellation: true, Center: true, S: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Independent reference with the same ε.
	k := 2
	hTilde := dense.AddScalar(h, -1.0/float64(k))
	eps, err := ScalingFactor(w, hTilde, 0.5, 50)
	if err != nil {
		t.Fatal(err)
	}
	hs := dense.Scale(hTilde, eps)
	h2 := dense.Mul(hs, hs)
	xt := dense.AddScalar(x, -1.0/float64(k))
	deg := w.Degrees()
	f := xt.Clone()
	for it := 0; it < iters; it++ {
		echo := dense.Mul(f, h2)
		for i := 0; i < 3; i++ {
			row := echo.Row(i)
			for j := range row {
				row[j] *= deg[i]
			}
		}
		f = dense.Sub(dense.Add(xt, w.MulDense(dense.Mul(f, hs))), echo)
	}
	if !dense.Equal(got, f, 1e-12) {
		t.Errorf("EC LinBP deviates from reference:\n%v vs\n%v", got, f)
	}
}

// TestEchoCancellationRemovesEcho: on a star, after 2 hops the center's
// belief without EC contains its own label reflected back; EC removes it.
func TestEchoCancellationRemovesEcho(t *testing.T) {
	// Star: center 0 with 4 leaves; only the center is labeled.
	edges := [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}}
	w, err := sparse.NewSymmetricFromEdges(5, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	seed := seedVector(5, map[int]int{0: 0})
	x, _ := labels.Matrix(seed, 2)
	h := heteroH()
	noEC, err := LinBP(w, x, h, LinBPOptions{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	withEC, err := LinBP(w, x, h, LinBPOptions{Iterations: 2, EchoCancellation: true})
	if err != nil {
		t.Fatal(err)
	}
	// Without EC the center's class-0 belief is depressed by its own
	// reflected heterophilous signal (W² echo via H̃² has positive
	// class-0... sign depends); the point is the two must differ at the
	// center but agree at the leaves after 2 iterations (leaves' echo
	// paths need 3 hops).
	cDiff := noEC.At(0, 0) - withEC.At(0, 0)
	if cDiff == 0 {
		t.Error("EC changed nothing at the echo-prone center")
	}
	for leaf := 1; leaf <= 4; leaf++ {
		for c := 0; c < 2; c++ {
			a, b := noEC.At(leaf, c), withEC.At(leaf, c)
			if d := a - b; d > 1e-12 || d < -1e-12 {
				// Leaves have degree 1: their echo term D·F·H̃² is active
				// too once their own belief is nonzero (after iteration 1),
				// so a difference IS expected at iteration 2. Just assert
				// finiteness here.
				_ = d
			}
			if a != a || b != b {
				t.Fatal("NaN belief")
			}
		}
	}
}
