// Package propagation implements the label-propagation algorithms of the
// paper: linearized belief propagation (LinBP, Eq. 1/4 with the convergence
// criterion Eq. 2), plus the homophily baselines used in Figure 6i — the
// harmonic-functions method and MultiRankWalk (random walks with restarts).
package propagation

import (
	"errors"
	"fmt"

	"factorgraph/internal/dense"
	"factorgraph/internal/sparse"
)

// LinBPOptions configures LinBP.
type LinBPOptions struct {
	// S is the convergence parameter s ∈ (0,1): the compatibility matrix is
	// scaled by ε = S / (ρ(W)·ρ(H̃)) so that the update contracts (Eq. 2).
	// The paper uses s = 0.5 following [18]. Default 0.5.
	S float64
	// Iterations of the update F ← X + εWFH̃. Default 10 (as in §5.3).
	Iterations int
	// Center, when true, centers X and H around 1/k before propagating.
	// Theorem 3.1 proves the resulting labels are identical either way;
	// centering keeps the iterates bounded (Example C.1). Default true.
	Center bool
	// StopWhenStable, when positive, stops early once the argmax labels
	// have not changed for that many consecutive iterations — the labels
	// (not the beliefs) are what the classification uses, and they
	// typically stabilize well before belief convergence. 0 disables.
	StopWhenStable int
	// EchoCancellation enables the EC term of the original LinBP
	// linearization [18]: F ← X̃ + WF̃H̃ − DF̃H̃². The paper drops it (§2.3:
	// no parameter regime where it consistently helps, and it complicates
	// the convergence threshold); it is kept here for the ablation
	// experiment. Default false.
	EchoCancellation bool
	// SpectralIters bounds the power iterations for ρ(W). Default 50.
	SpectralIters int
	// F32 runs the iterate in float32 storage and arithmetic (the
	// memory-bandwidth tier behind EngineOptions.F32Beliefs): X, F and the
	// round scratch halve their footprint and the SpMM streams half the
	// bytes. Accumulating in float32 costs accuracy — with centered inputs
	// (|entries| ≤ 1, contraction s < 1) the belief drift vs the float64
	// kernel is bounded by ~k·deg·2⁻²³ per round and observed ≤1e-3
	// end-to-end, which the engine pins in tests. Incompatible with
	// EchoCancellation; beliefs are widened back to float64 on return.
	F32 bool
}

func (o *LinBPOptions) defaults() {
	if o.S == 0 {
		o.S = 0.5
	}
	if o.Iterations == 0 {
		o.Iterations = 10
	}
	if o.SpectralIters == 0 {
		o.SpectralIters = 50
	}
}

// DefaultLinBPOptions returns the paper's propagation settings
// (s = 0.5, 10 iterations, centered).
func DefaultLinBPOptions() LinBPOptions {
	return LinBPOptions{S: 0.5, Iterations: 10, Center: true}
}

// LinBP iterates F ← X + εWFH̃ and returns the final belief matrix F
// (n×k). W must be the symmetric adjacency matrix, X the explicit-belief
// matrix and H a k×k compatibility matrix (doubly stochastic or already
// centered — Theorem 3.1 makes the choice irrelevant for labels).
func LinBP(w *sparse.CSR, x *dense.Matrix, h *dense.Matrix, opts LinBPOptions) (*dense.Matrix, error) {
	if err := checkShapes(w, x, h); err != nil {
		return nil, err
	}
	st, err := NewState(w, h, opts)
	if err != nil {
		return nil, err
	}
	return st.Run(x)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// LinBPLabels runs LinBP and returns the predicted class per node
// (argmax over beliefs, the paper's label(·) operator).
func LinBPLabels(w *sparse.CSR, x *dense.Matrix, h *dense.Matrix, opts LinBPOptions) ([]int, error) {
	f, err := LinBP(w, x, h, opts)
	if err != nil {
		return nil, err
	}
	return dense.ArgmaxRows(f), nil
}

// ScalingFactor returns ε = s/(ρ(W)·ρ(H)), the scaling that guarantees
// convergence of LinBP for s < 1 (Eq. 2). H is the (centered) compatibility
// matrix actually used in the update.
func ScalingFactor(w *sparse.CSR, h *dense.Matrix, s float64, spectralIters int) (float64, error) {
	if spectralIters <= 0 {
		spectralIters = 50
	}
	return ScalingFactorWithRho(w.SpectralRadiusCached(spectralIters), h, s)
}

// ScalingFactorWithRho is ScalingFactor with ρ(W) supplied by the caller.
// The mutable-topology engine pins ρ(W) per compaction epoch (re-deriving
// it canonically from the compacted CSR), so the scaling of a mutated
// graph is computed from the pinned value, not a fresh power iteration.
func ScalingFactorWithRho(rhoW float64, h *dense.Matrix, s float64) (float64, error) {
	if s <= 0 {
		return 0, fmt.Errorf("propagation: convergence parameter s=%v must be positive", s)
	}
	rhoH := dense.SpectralRadiusSym(dense.Symmetrize(h), 200)
	if rhoW == 0 || rhoH == 0 {
		// Degenerate: empty graph or uniform H. Any ε works; use 1.
		return 1, nil
	}
	return s / (rhoW * rhoH), nil
}

// Energy evaluates the LinBP objective E(F) = ‖F − X − WFH‖² of
// Proposition 3.2 (squared Frobenius norm). The fixed point of the update
// equations has zero energy.
func Energy(w *sparse.CSR, f, x, h *dense.Matrix) (float64, error) {
	if err := checkShapes(w, x, h); err != nil {
		return 0, err
	}
	if f.Rows != x.Rows || f.Cols != x.Cols {
		return 0, fmt.Errorf("propagation: F is %d×%d, want %d×%d", f.Rows, f.Cols, x.Rows, x.Cols)
	}
	fh := dense.Mul(f, h)
	wfh := w.MulDense(fh)
	r := dense.Sub(dense.Sub(f, x), wfh)
	fr := dense.Frobenius(r)
	return fr * fr, nil
}

func checkShapes(w *sparse.CSR, x *dense.Matrix, h *dense.Matrix) error {
	if x.Rows != w.N {
		return fmt.Errorf("propagation: X has %d rows, graph has %d nodes", x.Rows, w.N)
	}
	if h.Rows != h.Cols {
		return fmt.Errorf("propagation: H is %d×%d, want square", h.Rows, h.Cols)
	}
	if x.Cols != h.Rows {
		return fmt.Errorf("propagation: X has %d cols, H is %d×%d", x.Cols, h.Rows, h.Cols)
	}
	if w.N == 0 {
		return errors.New("propagation: empty graph")
	}
	return nil
}
