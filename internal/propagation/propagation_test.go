package propagation

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"factorgraph/internal/dense"
	"factorgraph/internal/labels"
	"factorgraph/internal/sparse"
)

// ring builds an even cycle, 2-colorable with perfect heterophily.
func ring(t *testing.T, n int) *sparse.CSR {
	t.Helper()
	edges := make([][2]int32, n)
	for i := 0; i < n; i++ {
		edges[i] = [2]int32{int32(i), int32((i + 1) % n)}
	}
	w, err := sparse.NewSymmetricFromEdges(n, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func heteroH() *dense.Matrix {
	return dense.FromRows([][]float64{{0.1, 0.9}, {0.9, 0.1}})
}

func homoH() *dense.Matrix {
	return dense.FromRows([][]float64{{0.9, 0.1}, {0.1, 0.9}})
}

func seedVector(n int, known map[int]int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = labels.Unlabeled
	}
	for i, c := range known {
		s[i] = c
	}
	return s
}

func TestLinBPHeterophilyRing(t *testing.T) {
	const n = 20
	w := ring(t, n)
	seed := seedVector(n, map[int]int{0: 0})
	x, err := labels.Matrix(seed, 2)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := LinBPLabels(w, x, heteroH(), LinBPOptions{Iterations: 30, Center: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if pred[i] != i%2 {
			t.Fatalf("node %d labeled %d, want alternating %d; preds %v", i, pred[i], i%2, pred)
		}
	}
}

func TestLinBPHomophilyRing(t *testing.T) {
	const n = 20
	w := ring(t, n)
	// Two seeds on opposite sides; homophily H propagates same labels.
	seed := seedVector(n, map[int]int{0: 0, 10: 1})
	x, _ := labels.Matrix(seed, 2)
	pred, err := LinBPLabels(w, x, homoH(), LinBPOptions{Iterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	if pred[1] != 0 || pred[19] != 0 {
		t.Errorf("neighbors of seed 0 not class 0: %v", pred)
	}
	if pred[9] != 1 || pred[11] != 1 {
		t.Errorf("neighbors of seed 10 not class 1: %v", pred)
	}
}

// Property (Theorem 3.1): centering is unnecessary — LinBP labels are
// identical with H or H̃, X or X̃ (for the same ε).
func TestCenteringInvarianceProperty(t *testing.T) {
	r := rand.New(rand.NewPCG(71, 72))
	f := func() bool {
		n := 8 + r.IntN(12)
		k := 2 + r.IntN(3)
		var edges [][2]int32
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.3 {
					edges = append(edges, [2]int32{int32(i), int32(j)})
				}
			}
		}
		if len(edges) == 0 {
			return true
		}
		w, err := sparse.NewSymmetricFromEdges(n, edges, nil)
		if err != nil {
			return false
		}
		seed := make([]int, n)
		for i := range seed {
			if r.Float64() < 0.3 {
				seed[i] = r.IntN(k)
			} else {
				seed[i] = labels.Unlabeled
			}
		}
		seed[0] = 0
		x, err := labels.Matrix(seed, k)
		if err != nil {
			return false
		}
		// Random symmetric doubly-stochastic-ish H via symmetrized dirichlet
		// rows is overkill; use convex combo of identity and uniform plus a
		// symmetric perturbation pattern.
		h := dense.Constant(k, k, 1/float64(k))
		a := r.Float64() * 0.5
		for i := 0; i < k; i++ {
			h.Set(i, i, h.At(i, i)+a)
			h.Set(i, (i+1)%k, h.At(i, (i+1)%k)-a/2)
			h.Set((i+1)%k, i, h.At((i+1)%k, i)-a/2)
		}
		// Few iterations with identical ε: compute ε from centered version
		// for both runs.
		opts := LinBPOptions{Iterations: 5, S: 0.5}
		opts.Center = true
		predCentered, err := LinBPLabels(w, x, h, opts)
		if err != nil {
			return false
		}
		// Uncentered run, but force the same ε by pre-centering H scale:
		// LinBP computes ε from the H it is given; to apply Theorem 3.1 we
		// must compare H vs H̃ under the same ε. Centered H̃ = H − 1/k has
		// the same ρ as used in the first run, so pass Center=false with
		// pre-centered X only — i.e. H uncentered, X uncentered.
		hTilde := dense.AddScalar(h, -1.0/float64(k))
		eps, err := ScalingFactor(w, hTilde, 0.5, 50)
		if err != nil {
			return false
		}
		predUncentered := linBPRaw(w, x, h, eps, 5)
		for i := range predCentered {
			if predCentered[i] != predUncentered[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// linBPRaw runs the update F ← X + εWFH without any centering, mirroring
// Eq. 4 exactly; used to validate Theorem 3.1 against the library path.
func linBPRaw(w *sparse.CSR, x, h *dense.Matrix, eps float64, iters int) []int {
	hs := dense.Scale(h, eps)
	f := x.Clone()
	for it := 0; it < iters; it++ {
		f = dense.Add(x, w.MulDense(dense.Mul(f, hs)))
	}
	return dense.ArgmaxRows(f)
}

func TestEnergyZeroAtFixedPoint(t *testing.T) {
	// Iterate far past convergence; the energy of Proposition 3.2 must be
	// ~0 at the fixed point.
	const n = 16
	w := ring(t, n)
	seed := seedVector(n, map[int]int{0: 0, 7: 1})
	x, _ := labels.Matrix(seed, 2)
	k := 2
	hTilde := dense.AddScalar(heteroH(), -1.0/float64(k))
	eps, err := ScalingFactor(w, hTilde, 0.5, 100)
	if err != nil {
		t.Fatal(err)
	}
	hs := dense.Scale(hTilde, eps)
	xt := dense.AddScalar(x, -1.0/float64(k))
	f := xt.Clone()
	for it := 0; it < 500; it++ {
		f = dense.Add(xt, w.MulDense(dense.Mul(f, hs)))
	}
	e, err := Energy(w, f, xt, hs)
	if err != nil {
		t.Fatal(err)
	}
	if e > 1e-12 {
		t.Errorf("energy at fixed point = %v, want ~0", e)
	}
	// A perturbed F must have strictly higher energy.
	fPert := f.Clone()
	fPert.Set(3, 0, fPert.At(3, 0)+0.5)
	e2, _ := Energy(w, fPert, xt, hs)
	if e2 <= e {
		t.Errorf("perturbed energy %v not larger than fixed point %v", e2, e)
	}
}

func TestScalingFactorConvergence(t *testing.T) {
	// With ε = s/(ρ(W)ρ(H)) and s<1 the iteration converges: iterates stop
	// changing. With s>1 on the same graph it diverges (Example C.1).
	const n = 30
	w := ring(t, n)
	seed := seedVector(n, map[int]int{0: 0, 15: 1})
	x, _ := labels.Matrix(seed, 2)
	h := dense.AddScalar(heteroH(), -0.5)
	for _, tc := range []struct {
		s        float64
		converge bool
	}{{0.5, true}, {3.0, false}} {
		eps, err := ScalingFactor(w, h, tc.s, 100)
		if err != nil {
			t.Fatal(err)
		}
		hs := dense.Scale(h, eps)
		f := x.Clone()
		var prev *dense.Matrix
		for it := 0; it < 300; it++ {
			prev = f
			f = dense.Add(x, w.MulDense(dense.Mul(f, hs)))
		}
		delta := dense.FrobeniusDist(f, prev)
		if tc.converge && delta > 1e-9 {
			t.Errorf("s=%v: did not converge, Δ=%v", tc.s, delta)
		}
		if !tc.converge && delta < 1e3 {
			t.Errorf("s=%v: expected divergence, Δ=%v", tc.s, delta)
		}
	}
}

func TestLinBPShapeErrors(t *testing.T) {
	w := ring(t, 6)
	x := dense.New(5, 2) // wrong rows
	if _, err := LinBP(w, x, heteroH(), LinBPOptions{}); err == nil {
		t.Error("expected row-mismatch error")
	}
	x2 := dense.New(6, 3) // k mismatch
	if _, err := LinBP(w, x2, heteroH(), LinBPOptions{}); err == nil {
		t.Error("expected k-mismatch error")
	}
	if _, err := LinBP(w, dense.New(6, 2), dense.New(2, 3), LinBPOptions{}); err == nil {
		t.Error("expected square-H error")
	}
	if _, err := ScalingFactor(w, heteroH(), -1, 10); err == nil {
		t.Error("expected bad-s error")
	}
}

func TestHarmonicHomophily(t *testing.T) {
	// Two cliques joined by one edge; seeds in each clique spread by
	// homophily.
	var edges [][2]int32
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, [2]int32{int32(i), int32(j)})
			edges = append(edges, [2]int32{int32(i + 5), int32(j + 5)})
		}
	}
	edges = append(edges, [2]int32{4, 5})
	w, err := sparse.NewSymmetricFromEdges(10, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	seed := seedVector(10, map[int]int{0: 0, 9: 1})
	pred, err := Harmonic(w, seed, 2, HarmonicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if pred[i] != 0 {
			t.Errorf("clique-A node %d labeled %d", i, pred[i])
		}
	}
	for i := 5; i < 10; i++ {
		if pred[i] != 1 {
			t.Errorf("clique-B node %d labeled %d", i, pred[i])
		}
	}
}

func TestHarmonicFailsUnderHeterophily(t *testing.T) {
	// On a heterophilous ring, harmonic functions (homophily assumption)
	// must do poorly: near the seed it predicts the same class, which is
	// wrong for alternating truth (Figure 6i's point).
	const n = 20
	w := ring(t, n)
	seed := seedVector(n, map[int]int{0: 0})
	pred, err := Harmonic(w, seed, 2, HarmonicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pred[1] == 1 && pred[19] == 1 {
		t.Skip("harmonic unexpectedly matched heterophily") // should not happen
	}
	correct := 0
	for i := 1; i < n; i++ {
		if pred[i] == i%2 {
			correct++
		}
	}
	acc := float64(correct) / float64(n-1)
	if acc > 0.6 {
		t.Errorf("harmonic accuracy %v under heterophily, expected poor", acc)
	}
}

func TestMultiRankWalkHomophily(t *testing.T) {
	var edges [][2]int32
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, [2]int32{int32(i), int32(j)})
			edges = append(edges, [2]int32{int32(i + 5), int32(j + 5)})
		}
	}
	edges = append(edges, [2]int32{4, 5})
	w, err := sparse.NewSymmetricFromEdges(10, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	seed := seedVector(10, map[int]int{0: 0, 9: 1})
	pred, err := MultiRankWalk(w, seed, 2, MRWOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pred[1] != 0 || pred[8] != 1 {
		t.Errorf("MRW predictions wrong: %v", pred)
	}
}

func TestMultiRankWalkErrors(t *testing.T) {
	w := ring(t, 6)
	if _, err := MultiRankWalk(w, []int{0}, 2, MRWOptions{}); err == nil {
		t.Error("expected length error")
	}
	if _, err := MultiRankWalk(w, seedVector(6, map[int]int{0: 0}), 2, MRWOptions{Alpha: 1.5}); err == nil {
		t.Error("expected alpha range error")
	}
	if _, err := Harmonic(w, []int{0}, 2, HarmonicOptions{}); err == nil {
		t.Error("expected length error")
	}
}

func TestDefaultLinBPOptions(t *testing.T) {
	o := DefaultLinBPOptions()
	if o.S != 0.5 || o.Iterations != 10 || !o.Center {
		t.Errorf("defaults changed: %+v", o)
	}
}

func TestScalingFactorDegenerate(t *testing.T) {
	// Empty graph: ε defaults to 1.
	e, _ := sparse.NewFromCoords(3, nil)
	eps, err := ScalingFactor(e, heteroH(), 0.5, 10)
	if err != nil || eps != 1 {
		t.Errorf("degenerate ε = %v, err %v", eps, err)
	}
}

func TestLinBPStopWhenStable(t *testing.T) {
	// With early stopping the labels must match the full run.
	const n = 24
	w := ring(t, n)
	seed := seedVector(n, map[int]int{0: 0, 11: 1})
	x, _ := labels.Matrix(seed, 2)
	full, err := LinBPLabels(w, x, heteroH(), LinBPOptions{Iterations: 200})
	if err != nil {
		t.Fatal(err)
	}
	early, err := LinBPLabels(w, x, heteroH(), LinBPOptions{Iterations: 200, StopWhenStable: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range full {
		if full[i] != early[i] {
			t.Fatalf("early-stopped labels differ at node %d", i)
		}
	}
}

func TestLinBPBeliefsBounded(t *testing.T) {
	const n = 24
	w := ring(t, n)
	seed := seedVector(n, map[int]int{0: 0, 13: 1})
	x, _ := labels.Matrix(seed, 2)
	f, err := LinBP(w, x, heteroH(), LinBPOptions{Iterations: 100})
	if err != nil {
		t.Fatal(err)
	}
	if dense.MaxAbs(f) > 10 || math.IsNaN(dense.MaxAbs(f)) {
		t.Errorf("beliefs unbounded after 100 centered iterations: max %v", dense.MaxAbs(f))
	}
}
