package propagation

import (
	"fmt"

	"factorgraph/internal/dense"
	"factorgraph/internal/exec"
	"factorgraph/internal/sparse"
)

// State is a reusable LinBP execution context bound to one graph W and one
// compatibility matrix H. Everything that does not depend on the
// explicit-belief matrix X is computed once — the centered and ε-scaled H̃
// (Eq. 2), the spectral radius ρ(W) via the matrix-level cache, and the
// F/FH/WFH iteration buffers — so repeated propagation runs allocate
// nothing beyond the label scratch.
//
// A State is NOT safe for concurrent use: callers that serve parallel
// queries keep a pool of States (the Engine in the facade does exactly
// that). The graph and H must not be mutated while the State is live.
type State struct {
	w    exec.RowIterator
	n    int
	rhoW float64 // ρ(W) the ε-scaling was derived from
	opts LinBPOptions
	k    int

	hScaled *dense.Matrix // centered (if opts.Center) and ε-scaled H̃
	h2      *dense.Matrix // H̃² for echo cancellation, nil otherwise
	deg     []float64     // degrees for echo cancellation, nil otherwise

	x        *dense.Matrix // centered copy of the caller's X
	f        *dense.Matrix // belief iterate, returned by Run
	fh, wfh  *dense.Matrix
	echo     *dense.Matrix
	cur, prv []int // label-stability scratch

	// Float32 tier (opts.F32): the iterate, inputs and round scratch in
	// half-width storage plus the narrowed H̃. s.f stays allocated as the
	// widened output buffer Run returns.
	x32, f32, fh32, wfh32 *dense.Matrix32
	hs32                  []float32

	run exec.Runner // shared execution core; all dense rounds go through it
}

// mul32er is the float32 SpMM an adjacency must additionally provide for
// the F32 tier; *sparse.CSR implements it.
type mul32er interface {
	MulDenseInto32(out, x *dense.Matrix32)
}

// NewState validates shapes, computes ε = s/(ρ(W)·ρ(H̃)) once, and
// allocates the iteration buffers for an n×k propagation.
func NewState(w *sparse.CSR, h *dense.Matrix, opts LinBPOptions) (*State, error) {
	iters := opts.SpectralIters
	if iters <= 0 {
		iters = 50
	}
	if w.N == 0 {
		return nil, fmt.Errorf("propagation: empty graph")
	}
	return NewStateOn(w, h, opts, w.SpectralRadiusCached(iters))
}

// NewStateOn is NewState over an arbitrary RowIterator adjacency with a
// caller-supplied ρ(W): the mutable-topology engine builds states over its
// delta overlay with the ρ pinned at the last compaction, so the scaling
// matches the engine's residual solver instead of re-running a power
// iteration over a moving graph.
func NewStateOn(w exec.RowIterator, h *dense.Matrix, opts LinBPOptions, rhoW float64) (*State, error) {
	if h.Rows != h.Cols {
		return nil, fmt.Errorf("propagation: H is %d×%d, want square", h.Rows, h.Cols)
	}
	n := w.Dim()
	if n == 0 {
		return nil, fmt.Errorf("propagation: empty graph")
	}
	if opts.S < 0 {
		return nil, fmt.Errorf("propagation: convergence parameter s=%v must be positive", opts.S)
	}
	if opts.Iterations < 0 {
		return nil, fmt.Errorf("propagation: negative iteration count %d", opts.Iterations)
	}
	opts.defaults()
	if opts.F32 {
		if opts.EchoCancellation {
			return nil, fmt.Errorf("propagation: F32 is incompatible with EchoCancellation")
		}
		if _, ok := w.(mul32er); !ok {
			return nil, fmt.Errorf("propagation: adjacency %T does not support the float32 tier", w)
		}
	}
	s := &State{
		w:    w,
		n:    n,
		rhoW: rhoW,
		opts: opts,
		k:    h.Rows,
		x:    dense.New(n, h.Rows),
		f:    dense.New(n, h.Rows),
	}
	if opts.F32 {
		s.x32 = dense.New32(n, h.Rows)
		s.f32 = dense.New32(n, h.Rows)
		s.fh32 = dense.New32(n, h.Rows)
		s.wfh32 = dense.New32(n, h.Rows)
	} else {
		s.fh = dense.New(n, h.Rows)
		s.wfh = dense.New(n, h.Rows)
	}
	if opts.EchoCancellation {
		s.echo = dense.New(n, h.Rows)
		s.deg = rowDegrees(w)
	}
	if err := s.setH(h); err != nil {
		return nil, err
	}
	return s, nil
}

// rowDegrees computes weighted degrees through the row iterator.
func rowDegrees(w exec.RowIterator) []float64 {
	d := make([]float64, w.Dim())
	for i := range d {
		cols, wts := w.Row(i)
		if wts == nil {
			d[i] = float64(len(cols))
			continue
		}
		var s float64
		for _, v := range wts {
			s += v
		}
		d[i] = s
	}
	return d
}

// setH (re)computes the centered, ε-scaled compatibility matrix. ρ(W) is
// the state's pinned value (cached on the CSR for frozen graphs), so
// swapping H on a live engine never re-runs the power iteration over the
// graph.
func (s *State) setH(h *dense.Matrix) error {
	hUse := h.Clone()
	if s.opts.Center {
		hUse = dense.AddScalar(hUse, -1.0/float64(s.k))
	}
	eps, err := ScalingFactorWithRho(s.rhoW, hUse, s.opts.S)
	if err != nil {
		return err
	}
	s.hScaled = dense.Scale(hUse, eps)
	if s.opts.EchoCancellation {
		s.h2 = dense.Mul(s.hScaled, s.hScaled)
	}
	if s.opts.F32 {
		if s.hs32 == nil {
			s.hs32 = make([]float32, len(s.hScaled.Data))
		}
		for i, v := range s.hScaled.Data {
			s.hs32[i] = float32(v)
		}
	}
	return nil
}

// SetH swaps the compatibility matrix (same k) without reallocating
// buffers or recomputing ρ(W). Only safe on a single-owner State: the
// Engine instead replaces its whole state pool on an H change, because a
// pooled State may be mid-Run in a concurrent query.
func (s *State) SetH(h *dense.Matrix) error {
	if h.Rows != s.k || h.Cols != s.k {
		return fmt.Errorf("propagation: SetH got %d×%d, state is k=%d", h.Rows, h.Cols, s.k)
	}
	return s.setH(h)
}

// K returns the class count the state was built for.
func (s *State) K() int { return s.k }

// Run iterates F ← X + εWFH̃ and returns the final belief matrix. The
// returned matrix aliases the state's buffer: it is valid until the next
// Run and must be cloned to outlive it. x is not mutated.
//
// Every round runs on the shared execution core (internal/exec): the dense
// products and the fused per-row belief update are row-parallel on the same
// worker pool the residual solver's saturated drains use.
func (s *State) Run(x *dense.Matrix) (*dense.Matrix, error) {
	if x.Rows != s.n || x.Cols != s.k {
		return nil, fmt.Errorf("propagation: X is %d×%d, state wants %d×%d", x.Rows, x.Cols, s.n, s.k)
	}
	xUse := x
	if s.opts.Center {
		s.x.CopyFrom(x)
		for i := range s.x.Data {
			s.x.Data[i] -= 1.0 / float64(s.k)
		}
		xUse = s.x
	}
	if s.opts.F32 {
		return s.runF32(xUse)
	}
	s.f.CopyFrom(xUse)
	k := s.k
	stable := 0
	havePrev := false
	for it := 0; it < s.opts.Iterations; it++ {
		if s.opts.EchoCancellation {
			// −DF̃H̃²: each node subtracts the degree-weighted reflection of
			// its own belief.
			s.run.Rows(s.n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					fRow := s.f.Data[i*k : (i+1)*k]
					eRow := s.echo.Data[i*k : (i+1)*k]
					for j := 0; j < k; j++ {
						acc := 0.0
						for c := 0; c < k; c++ {
							acc += fRow[c] * s.h2.Data[c*k+j]
						}
						eRow[j] = acc * s.deg[i]
					}
				}
			})
		}
		// One dense round: wfh = W·(F·H̃), then the fused belief update
		// F ← X (+ WFH̃ − echo) per row chunk.
		s.run.DenseRound(s.w, s.f, s.hScaled, s.fh, s.wfh, func(_, lo, hi int) {
			if s.opts.EchoCancellation {
				for i := lo * k; i < hi*k; i++ {
					s.f.Data[i] = xUse.Data[i] + s.wfh.Data[i] - s.echo.Data[i]
				}
				return
			}
			for i := lo * k; i < hi*k; i++ {
				s.f.Data[i] = xUse.Data[i] + s.wfh.Data[i]
			}
		})
		if s.opts.StopWhenStable > 0 {
			s.cur = dense.ArgmaxRowsInto(s.cur, s.f)
			if havePrev && equalInts(s.cur, s.prv) {
				stable++
				if stable >= s.opts.StopWhenStable {
					break
				}
			} else {
				stable = 0
			}
			s.cur, s.prv = s.prv, s.cur
			havePrev = true
		}
	}
	return s.f, nil
}

// runF32 is the float32 round loop: the same F ← X + εWFH̃ iteration with
// every buffer and accumulation in half-width. The final iterate is widened
// into s.f so callers see the usual float64 belief matrix.
func (s *State) runF32(xUse *dense.Matrix) (*dense.Matrix, error) {
	n, k := s.n, s.k
	s.x32.FillFrom(xUse)
	copy(s.f32.Data, s.x32.Data)
	w32 := s.w.(mul32er) // checked at construction
	stable := 0
	havePrev := false
	for it := 0; it < s.opts.Iterations; it++ {
		s.run.Rows(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				fRow := s.f32.Data[i*k : (i+1)*k]
				out := s.fh32.Data[i*k : (i+1)*k]
				for j := 0; j < k; j++ {
					var acc float32
					for c := 0; c < k; c++ {
						acc += fRow[c] * s.hs32[c*k+j]
					}
					out[j] = acc
				}
			}
		})
		w32.MulDenseInto32(s.wfh32, s.fh32)
		s.run.Rows(n, func(lo, hi int) {
			for i := lo * k; i < hi*k; i++ {
				s.f32.Data[i] = s.x32.Data[i] + s.wfh32.Data[i]
			}
		})
		if s.opts.StopWhenStable > 0 {
			s.cur = argmaxRows32Into(s.cur, s.f32)
			if havePrev && equalInts(s.cur, s.prv) {
				stable++
				if stable >= s.opts.StopWhenStable {
					break
				}
			} else {
				stable = 0
			}
			s.cur, s.prv = s.prv, s.cur
			havePrev = true
		}
	}
	s.f32.StoreTo(s.f)
	return s.f, nil
}

// argmaxRows32Into is dense.ArgmaxRowsInto for the float32 tier.
func argmaxRows32Into(dst []int, m *dense.Matrix32) []int {
	if cap(dst) < m.Rows {
		dst = make([]int, m.Rows)
	}
	dst = dst[:m.Rows]
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		best := 0
		for j := 1; j < len(row); j++ {
			if row[j] > row[best] {
				best = j
			}
		}
		dst[i] = best
	}
	return dst
}

// RunLabels is Run followed by the row-argmax label(·) operator.
func (s *State) RunLabels(x *dense.Matrix) ([]int, error) {
	f, err := s.Run(x)
	if err != nil {
		return nil, err
	}
	return dense.ArgmaxRows(f), nil
}
