package propagation

import (
	"testing"

	"factorgraph/internal/dense"
	"factorgraph/internal/sparse"
)

func stateFixture(t *testing.T) (*sparse.CSR, *dense.Matrix, *dense.Matrix) {
	t.Helper()
	// Two triangles bridged by one edge, heterophilous H.
	edges := [][2]int32{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}}
	w, err := sparse.NewSymmetricFromEdges(6, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	x := dense.New(6, 2)
	x.Set(0, 0, 1)
	x.Set(5, 1, 1)
	h := dense.FromRows([][]float64{{0.8, 0.2}, {0.2, 0.8}})
	return w, x, h
}

// TestStateMatchesLinBP asserts that a reused State produces bit-identical
// beliefs to the one-shot LinBP entry point, run after run.
func TestStateMatchesLinBP(t *testing.T) {
	w, x, h := stateFixture(t)
	for _, opts := range []LinBPOptions{
		DefaultLinBPOptions(),
		{S: 0.3, Iterations: 7, Center: false},
		{S: 0.5, Iterations: 20, Center: true, StopWhenStable: 2},
		{S: 0.5, Iterations: 10, Center: true, EchoCancellation: true},
	} {
		want, err := LinBP(w, x, h, opts)
		if err != nil {
			t.Fatal(err)
		}
		st, err := NewState(w, h, opts)
		if err != nil {
			t.Fatal(err)
		}
		for run := 0; run < 3; run++ {
			got, err := st.Run(x)
			if err != nil {
				t.Fatal(err)
			}
			if !dense.Equal(got, want, 0) {
				t.Fatalf("opts %+v run %d: state beliefs differ from LinBP", opts, run)
			}
		}
	}
}

// TestStateRunDoesNotMutateX guards the centering path: Run must work on a
// private copy of the explicit beliefs.
func TestStateRunDoesNotMutateX(t *testing.T) {
	w, x, h := stateFixture(t)
	orig := x.Clone()
	st, err := NewState(w, h, DefaultLinBPOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Run(x); err != nil {
		t.Fatal(err)
	}
	if !dense.Equal(x, orig, 0) {
		t.Error("Run mutated the caller's X")
	}
}

// TestStateSetH swaps compatibility matrices on a live state without
// rebuilding and checks the result tracks a fresh state.
func TestStateSetH(t *testing.T) {
	w, x, h := stateFixture(t)
	st, err := NewState(w, h, DefaultLinBPOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Run(x); err != nil {
		t.Fatal(err)
	}
	h2 := dense.FromRows([][]float64{{0.1, 0.9}, {0.9, 0.1}})
	if err := st.SetH(h2); err != nil {
		t.Fatal(err)
	}
	got, err := st.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := LinBP(w, x, h2, DefaultLinBPOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Equal(got, want, 0) {
		t.Error("post-SetH beliefs differ from fresh LinBP")
	}
	if err := st.SetH(dense.New(3, 3)); err == nil {
		t.Error("SetH accepted a wrong-k matrix")
	}
}

// TestStateShapeErrors covers validation.
func TestStateShapeErrors(t *testing.T) {
	w, x, h := stateFixture(t)
	if _, err := NewState(w, dense.New(2, 3), DefaultLinBPOptions()); err == nil {
		t.Error("non-square H accepted")
	}
	empty, _ := sparse.NewSymmetricFromEdges(0, nil, nil)
	if _, err := NewState(empty, h, DefaultLinBPOptions()); err == nil {
		t.Error("empty graph accepted")
	}
	st, err := NewState(w, h, DefaultLinBPOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Run(dense.New(5, 2)); err == nil {
		t.Error("wrong-row X accepted")
	}
	if _, err := NewState(w, h, LinBPOptions{S: -1}); err == nil {
		t.Error("negative convergence parameter accepted")
	}
	if _, err := NewState(w, h, LinBPOptions{Iterations: -5}); err == nil {
		t.Error("negative iteration count accepted")
	}
	if _, err := LinBP(w, x, h, LinBPOptions{S: -1}); err == nil {
		t.Error("LinBP accepted negative convergence parameter")
	}
}
