package registry

import (
	"testing"

	"factorgraph"
)

// TestPartialReleaseTier: under a budget a shed engine fits but a full one
// does not, memory pressure must drop the transient working state (tier 1)
// instead of evicting — the engine stays resident, the next access rebuilds
// NOTHING but the solve (no parse, no CSR build, no estimation).
func TestPartialReleaseTier(t *testing.T) {
	// Between one shed footprint and one full footprint.
	r := New(Options{MemoryBudget: testEngineBytes() / 2})
	builds := countBuilds(r)
	if _, err := r.Register("g", testSpec(1)); err != nil {
		t.Fatal(err)
	}
	eng, release, err := r.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Classify(factorgraph.Query{Nodes: []int{0}}); err != nil {
		t.Fatal(err)
	}
	propsBefore := eng.Stats().Propagations
	fullMem, _ := r.Info("g")
	release() // over budget → tier-1 partial release

	info, err := r.Info("g")
	if err != nil {
		t.Fatal(err)
	}
	if info.State != "built" {
		t.Fatalf("partial release changed state to %q, want built", info.State)
	}
	if !info.Shed || info.PartialReleases != 1 {
		t.Fatalf("expected shed/1 partial release, got %+v", info)
	}
	if info.MemBytes >= fullMem.MemBytes {
		t.Fatalf("partial release did not shrink the footprint: %d → %d", fullMem.MemBytes, info.MemBytes)
	}
	if st := r.Stats(); st.PartialReleases != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v, want 1 partial release, 0 evictions", st)
	}

	// Re-acquire: the SAME engine (no rebuild), shed cleared, and the next
	// query pays exactly one propagation — o(build), not o(parse+build).
	eng2, release2, err := r.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	if eng2 != eng {
		t.Fatal("partial release replaced the engine instance")
	}
	if got := builds.Load(); got != 1 {
		t.Fatalf("re-acquire after partial release ran %d builds, want 1", got)
	}
	if _, err := eng2.Classify(factorgraph.Query{Nodes: []int{0}}); err != nil {
		t.Fatal(err)
	}
	st := eng2.Stats()
	if st.Estimations != 1 {
		t.Errorf("post-shed query re-ran estimation (%d), want the cached H", st.Estimations)
	}
	if st.Propagations != propsBefore+1 {
		t.Errorf("post-shed query ran %d propagations, want %d (exactly one re-solve)", st.Propagations, propsBefore+1)
	}
	release2()
	if info, _ := r.Info("g"); info.Shed && info.PartialReleases < 2 {
		t.Errorf("shed flag not cleared by acquisition: %+v", info)
	}
}

// TestPartialReleaseKeepsMutations: a partially released INCREMENTAL
// engine keeps its delta overlay and label patches — shedding loses no
// acknowledged state, which is exactly why mutated engines qualify for
// tier 1 even though tier 2 must skip them.
func TestPartialReleaseKeepsMutations(t *testing.T) {
	r := New(Options{}) // no budget; shed explicitly via the engine API
	spec := testSpec(1)
	spec.Options.Incremental = true
	if _, err := r.Register("g", spec); err != nil {
		t.Fatal(err)
	}
	eng, release, err := r.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if _, err := eng.Classify(factorgraph.Query{Nodes: []int{0}}); err != nil {
		t.Fatal(err)
	}
	n0, m0 := eng.Dims()
	if _, err := eng.MutateTopology(1, []factorgraph.EdgeMutation{{U: n0, V: 0}, {U: 1, V: 3}}); err != nil {
		t.Fatal(err)
	}
	if err := eng.UpdateLabels(map[int]int{2: 1}, nil); err != nil {
		t.Fatal(err)
	}
	eng.ReleaseTransient()

	// Everything acknowledged survives the shed.
	if n, m := eng.Dims(); n != n0+1 || m < m0+1 {
		t.Fatalf("dims after shed (%d, %d), want (%d, ≥%d)", n, m, n0+1, m0+1)
	}
	if eng.Seeds()[2] != 1 {
		t.Fatal("label patch lost by partial release")
	}
	// The re-solve serves the mutated topology: the added node answers.
	res, err := eng.Classify(factorgraph.Query{Nodes: []int{n0}, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Node != n0 {
		t.Fatalf("added node unqueryable after shed: %+v", res)
	}
	if st := eng.Stats(); st.Estimations != 1 {
		t.Errorf("shed+resolve re-ran estimation: %d", st.Estimations)
	}
}
