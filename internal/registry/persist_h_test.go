package registry

import (
	"testing"

	"factorgraph"
)

// TestEvictionPersistsH: rebuilding an evicted graph must reuse the H
// captured at eviction — the rebuilt engine runs zero estimations and
// serves the identical compatibility matrix.
func TestEvictionPersistsH(t *testing.T) {
	// Budget below even a partially-released engine's footprint: the tier-1
	// shed cannot satisfy it, so admitting the second graph fully evicts
	// the first.
	r := New(Options{MemoryBudget: testEngineBytes() / 2})
	if _, err := r.Register("a", testSpec(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("b", testSpec(2)); err != nil {
		t.Fatal(err)
	}
	engA, release, err := r.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	hBefore := engA.Estimate().H.Clone()
	methodBefore := engA.Estimate().Method
	if st := engA.Stats(); st.Estimations != 1 {
		t.Fatalf("first build ran %d estimations, want 1", st.Estimations)
	}
	release()

	// Build b: evicts a (cold, unpinned, unmutated).
	if _, release, err = r.Acquire("b"); err != nil {
		t.Fatal(err)
	}
	release()
	info, err := r.Info("a")
	if err != nil {
		t.Fatal(err)
	}
	if info.State != "cold" || info.Evictions != 1 {
		t.Fatalf("a not evicted: %+v", info)
	}
	if !info.HRetained {
		t.Errorf("eviction did not retain H: %+v", info)
	}

	// Rebuild a: no estimation, same H.
	engA2, release, err := r.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if st := engA2.Stats(); st.Estimations != 0 {
		t.Errorf("rebuild ran %d estimations, want 0 (persisted H)", st.Estimations)
	}
	hAfter := engA2.Estimate().H
	if hAfter.Rows != hBefore.Rows || hAfter.Cols != hBefore.Cols {
		t.Fatalf("rebuilt H is %dx%d, want %dx%d", hAfter.Rows, hAfter.Cols, hBefore.Rows, hBefore.Cols)
	}
	for i := range hBefore.Data {
		if hBefore.Data[i] != hAfter.Data[i] {
			t.Fatalf("rebuilt H differs at %d: %g vs %g", i, hBefore.Data[i], hAfter.Data[i])
		}
	}
	if m := engA2.Estimate().Method; m != methodBefore {
		t.Errorf("rebuilt method %q, want %q", m, methodBefore)
	}
	// The rebuilt engine still classifies.
	if _, err := engA2.Classify(factorgraph.Query{Nodes: []int{0}}); err != nil {
		t.Fatal(err)
	}
}
