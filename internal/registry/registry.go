// Package registry is the multi-tenant core of the serving layer: a
// concurrent registry mapping graph names to lazily-built factorgraph
// Engines. It provides
//
//   - admission by spec (synthetic planted-partition, server-side files,
//     or an inline upload whose raw bytes are retained for rebuilds),
//   - singleflight build deduplication, so N concurrent first requests
//     for a cold graph trigger exactly one engine build,
//   - an LRU with a configurable memory budget (engine footprints are
//     estimated from n, m, k) that evicts cold engines while refcounts
//     pin the ones serving in-flight requests, and
//   - per-graph statistics (hits, builds, evictions, last access) for
//     the admin endpoint.
//
// Eviction is transparent: the spec stays registered, so the next access
// rebuilds the engine as if it were the first.
package registry

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"factorgraph"
	"factorgraph/internal/telemetry"
)

// ErrNotFound is wrapped by lookups of unregistered graph names; the HTTP
// layer maps it to 404.
var ErrNotFound = errors.New("graph not found")

// ErrExists is wrapped by registrations of an already-taken name; the HTTP
// layer maps it to 409.
var ErrExists = errors.New("graph already exists")

var nameRE = regexp.MustCompile(`^[A-Za-z0-9._-]{1,64}$`)

// Options configures a Registry.
type Options struct {
	// MemoryBudget is the target resident budget in bytes — built engines
	// plus retained inline-upload payloads; 0 means unlimited. The budget
	// is soft in three ways: an in-flight (pinned) engine is never evicted
	// even while over budget, a mutated engine (label patches, installed
	// H) is never evicted because its spec rebuild would silently lose the
	// mutations, and a single engine larger than the whole budget is still
	// admitted (it just evicts everything else that is cold). Inline
	// payloads count against the budget for as long as the graph is
	// registered but can only be released by DELETE, not eviction.
	MemoryBudget int64
}

// Registry is safe for concurrent use by the HTTP handlers.
type Registry struct {
	mu       sync.Mutex
	entries  map[string]*entry
	resident int64  // sum of built engines' mem estimates
	budget   int64  // 0 = unlimited
	tick     uint64 // monotonic access counter driving the LRU order

	// hooks are the lifecycle callbacks the serve layer wires per-graph
	// telemetry through (atomic so SetHooks never contends with releases).
	hooks atomic.Pointer[Hooks]

	// builder is swapped out by tests to count or fail builds.
	builder func(Spec) (*factorgraph.Engine, error)
}

// Hooks are optional lifecycle callbacks for per-graph state owned by the
// layers above the registry — the serve layer hangs per-graph metric
// vectors, timeline probes and health gauges on them.
type Hooks struct {
	// OnRelease fires as a request's engine pin is released, OUTSIDE the
	// registry lock and with the engine still pinned, so it may take the
	// engine's own (read) locks — this mirrors the footprint re-measure
	// and is where per-graph gauges refresh.
	OnRelease func(name string, eng *factorgraph.Engine)
	// OnForget fires when a graph's per-name state must be dropped: on
	// DELETE, on a tier-2 (full) eviction, and again at the deferred
	// engine close when a DELETE raced in-flight requests (so a gauge
	// refresh that slipped between the two cannot leak series). It runs
	// under the registry lock — keep it fast and never call back into the
	// registry.
	OnForget func(name string)
}

// SetHooks installs the lifecycle callbacks; call it during wiring,
// before traffic. Passing a zero Hooks clears them.
func (r *Registry) SetHooks(h Hooks) { r.hooks.Store(&h) }

func (r *Registry) onRelease(name string, eng *factorgraph.Engine) {
	if h := r.hooks.Load(); h != nil && h.OnRelease != nil {
		h.OnRelease(name, eng)
	}
}

func (r *Registry) onForgetLocked(name string) {
	if h := r.hooks.Load(); h != nil && h.OnForget != nil {
		h.OnForget(name)
	}
}

type entry struct {
	name        string
	spec        Spec
	rebuildable bool // spec-backed; RegisterEngine entries cannot rebuild

	engine   *factorgraph.Engine // nil ⇒ cold (not built or evicted)
	building chan struct{}       // non-nil while a build is in flight
	buildErr error               // outcome of the most recent build
	refs     int                 // in-flight acquisitions pinning engine
	deleted  bool                // removed from the map; close on last release
	mem      int64               // engine footprint counted in resident
	specMem  int64               // retained inline payload bytes (freed only by Delete)

	nodes, edges, classes int // known dimensions (0 until discoverable)

	// lastH is the engine's compatibility estimate captured at eviction
	// (k×k — a few hundred bytes). Rebuilds install it via the spec's
	// presetH, cutting rebuild cost from estimation + propagation to one
	// propagation. Freed with the entry on Delete.
	lastH       *factorgraph.Matrix
	lastHMethod string

	// shed marks an engine partially released under memory pressure
	// (snapshot + solver + pooled state dropped, CSR and delta overlay
	// kept); cleared on the next acquisition. partials counts them.
	shed     bool
	partials int64

	// topo is the engine's live topology view (dimensions, mutation
	// counters, overlay fraction), refreshed at request release like mem.
	topo factorgraph.TopoStats

	hits, builds, evictions int64
	lastTick                uint64 // registry tick of the last acquisition
	lastAccess              time.Time
	registered              time.Time
}

// New builds an empty registry.
func New(opts Options) *Registry {
	return &Registry{
		entries: make(map[string]*entry),
		budget:  opts.MemoryBudget,
		builder: buildEngine,
	}
}

func validateName(name string) error {
	if !nameRE.MatchString(name) {
		return fmt.Errorf("registry: invalid graph name %q (want 1-64 chars of [A-Za-z0-9._-])", name)
	}
	return nil
}

// Register admits a named graph by spec without building its engine; the
// first Acquire builds lazily. Inline uploads are parsed (and rejected)
// here, so a registered spec is expected to build.
func (r *Registry) Register(name string, spec Spec) (GraphInfo, error) {
	if err := validateName(name); err != nil {
		return GraphInfo{}, err
	}
	if err := spec.validate(); err != nil {
		return GraphInfo{}, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		return GraphInfo{}, fmt.Errorf("registry: %w: %q", ErrExists, name)
	}
	e := &entry{name: name, spec: spec, rebuildable: true, registered: time.Now()}
	e.nodes, e.edges, e.classes = spec.dims()
	if spec.Inline != nil {
		// The raw upload is retained for transparent rebuilds, so it is
		// resident memory the budget must see (eviction cannot free it —
		// only DELETE can).
		e.specMem = int64(len(spec.Inline.Edges) + len(spec.Inline.Labels))
		r.resident += e.specMem
	}
	r.entries[name] = e
	r.evictLocked()
	r.syncGaugesLocked()
	return r.infoLocked(e), nil
}

// RegisterEngine admits a pre-built engine under name. Such entries have no
// spec to rebuild from, so they are never evicted (their footprint still
// counts against the budget); cmd/serve uses this for engines it builds
// eagerly at boot.
func (r *Registry) RegisterEngine(name string, eng *factorgraph.Engine) error {
	if err := validateName(name); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		return fmt.Errorf("registry: %w: %q", ErrExists, name)
	}
	g := eng.Graph()
	e := &entry{
		name: name, engine: eng, mem: eng.MemoryFootprint(),
		nodes: g.N, edges: g.M, classes: eng.K(), registered: time.Now(),
	}
	r.entries[name] = e
	r.resident += e.mem
	r.touchLocked(e)
	r.evictLocked()
	r.syncGaugesLocked()
	return nil
}

// Acquire resolves name to its engine, building it if cold, and pins it
// against eviction until the returned release function is called (release
// is idempotent). Concurrent acquisitions of the same cold graph share one
// build; the losers of that race block until it completes.
func (r *Registry) Acquire(name string) (*factorgraph.Engine, func(), error) {
	r.mu.Lock()
	for {
		e, ok := r.entries[name]
		if !ok {
			r.mu.Unlock()
			return nil, nil, fmt.Errorf("registry: %w: %q", ErrNotFound, name)
		}
		if e.engine != nil {
			eng := e.engine
			e.refs++
			e.hits++
			r.touchLocked(e)
			r.mu.Unlock()
			return eng, r.releaseFunc(e, eng), nil
		}
		if e.building != nil {
			// Another goroutine is building this engine; wait for it and
			// re-evaluate. A successful build is taken on the next loop
			// iteration; a failed one is reported to every waiter without
			// a rebuild stampede.
			mCoalesces.Inc()
			ch := e.building
			r.mu.Unlock()
			<-ch
			r.mu.Lock()
			if cur, ok := r.entries[name]; ok && cur == e &&
				e.engine == nil && e.building == nil && e.buildErr != nil {
				err := e.buildErr
				r.mu.Unlock()
				return nil, nil, err
			}
			continue
		}
		// This goroutine becomes the builder. The build runs outside the
		// registry lock — it is the expensive O(mkℓ) preprocessing — with
		// the channel signalling completion to concurrent waiters.
		ch := make(chan struct{})
		e.building = ch
		spec := e.spec
		// A rebuild after eviction reuses the H persisted from the evicted
		// engine, skipping the estimator pass.
		spec.presetH, spec.presetHMethod = e.lastH, e.lastHMethod
		r.mu.Unlock()

		buildStart := telemetry.Now()
		eng, err := r.builder(spec)
		hBuild.ObserveSince(buildStart)

		r.mu.Lock()
		e.building = nil
		e.buildErr = err
		close(ch)
		if err != nil {
			r.mu.Unlock()
			return nil, nil, fmt.Errorf("registry: building graph %q: %w", name, err)
		}
		if cur, ok := r.entries[name]; !ok || cur != e {
			// Deleted (or replaced) while building; discard the result.
			r.mu.Unlock()
			eng.Close()
			return nil, nil, fmt.Errorf("registry: %w: %q (deleted during build)", ErrNotFound, name)
		}
		g := eng.Graph()
		e.engine = eng
		e.mem = eng.MemoryFootprint()
		e.nodes, e.edges, e.classes = g.N, g.M, eng.K()
		e.builds++
		mBuilds.Inc()
		e.refs++
		r.resident += e.mem
		r.touchLocked(e)
		r.evictLocked()
		r.syncGaugesLocked()
		r.mu.Unlock()
		return eng, r.releaseFunc(e, eng), nil
	}
}

// AcquireIfBuilt pins and returns the engine only if it is currently
// resident; it never triggers a build. Liveness probes use this so that
// GET /healthz cannot set off a multi-second engine build. The access is
// not counted as a hit and does not refresh the LRU position.
func (r *Registry) AcquireIfBuilt(name string) (*factorgraph.Engine, func(), bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok || e.engine == nil {
		return nil, nil, false
	}
	e.refs++
	return e.engine, r.releaseFunc(e, e.engine), true
}

// Delete unregisters a graph. An engine with in-flight requests stays
// usable for them and is closed when the last one releases; its footprint
// stops counting against the budget immediately.
func (r *Registry) Delete(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return fmt.Errorf("registry: %w: %q", ErrNotFound, name)
	}
	delete(r.entries, name)
	e.deleted = true
	r.resident -= e.specMem
	e.specMem = 0
	if e.engine != nil {
		r.resident -= e.mem
		e.mem = 0
		if e.refs == 0 {
			e.engine.Close()
			e.engine = nil
		}
	}
	r.onForgetLocked(name)
	r.syncGaugesLocked()
	return nil
}

// releaseFunc returns the idempotent unpin closure handed out by Acquire.
func (r *Registry) releaseFunc(e *entry, eng *factorgraph.Engine) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			// The request may have grown (patch promoted a residual tier,
			// edge mutations grew the delta overlay) or shrunk (tier
			// demoted, compaction) the engine; measure BEFORE taking
			// r.mu — MemoryFootprint takes the engine's own read lock, and
			// holding the registry-global mutex while waiting on one
			// tenant's engine lock would stall every other tenant. The
			// engine is still pinned by our ref, so it cannot be closed
			// under us; applyMemLocked re-checks it is still installed.
			m := eng.MemoryFootprint()
			ts := eng.TopoStats()
			// Per-graph gauge refresh: outside r.mu for the same reason as
			// the measurements above, and before refs-- so the engine stays
			// pinned throughout the callback.
			r.onRelease(e.name, eng)
			r.mu.Lock()
			e.refs--
			if e.deleted && e.refs == 0 && e.engine != nil {
				e.engine.Close()
				e.engine = nil
				// The refresh above may have recreated series a racing
				// DELETE already forgot; forget again now that the last
				// pin is gone.
				r.onForgetLocked(e.name)
			}
			if e.engine == eng && !e.deleted {
				e.topo = ts
				if ts.Nodes > 0 {
					e.nodes, e.edges = ts.Nodes, ts.Edges
				}
			}
			r.applyMemLocked(e, eng, m)
			r.evictLocked()
			r.syncGaugesLocked()
			r.mu.Unlock()
		})
	}
}

func (r *Registry) touchLocked(e *entry) {
	r.tick++
	e.lastTick = r.tick
	e.lastAccess = time.Now()
	e.shed = false // re-acquired: transient state rebuilds on use
}

// applyMemLocked folds a footprint measurement (taken OUTSIDE r.mu — see
// releaseFunc) into the registry's resident total, provided the entry
// still holds the engine it was measured on. Incremental engines'
// footprints move at runtime — the residual tier promotes and demotes, the
// snapshot comes and goes — and the budget (plus /v1/admin/registry) must
// see the tier actually in use, not the build-time estimate.
func (r *Registry) applyMemLocked(e *entry, eng *factorgraph.Engine, m int64) {
	if e.engine != eng || e.engine == nil || e.deleted {
		return
	}
	if m != e.mem {
		r.resident += m - e.mem
		e.mem = m
	}
}

// evictLocked reclaims memory in two tiers until the resident estimate
// fits the budget.
//
// Tier 1 — partial release: the LRU engine's transient working state
// (belief snapshot, residual solver, pooled propagation states, caches)
// is dropped while the CSR (plus delta overlay), seeds and H stay
// resident. No acknowledged state is lost, so EVERY cold engine
// qualifies — mutated and non-rebuildable ones included — and the next
// access re-solves with one propagation: o(build), not o(parse+build).
//
// Tier 2 — full eviction: least-recently-used cold engines are closed
// outright. Pinned (refs > 0), non-rebuildable and mutated engines are
// skipped: evicting the first would close an engine mid-request, evicting
// the second would lose the graph for good, and evicting the third would
// silently roll back acknowledged label patches, an installed H, or
// streamed topology mutations (the spec rebuild restores construction
// state only).
func (r *Registry) evictLocked() {
	if r.budget <= 0 {
		return
	}
	for r.resident > r.budget {
		var victim *entry
		for _, e := range r.entries {
			if e.engine == nil || e.refs > 0 || e.shed {
				continue
			}
			if victim == nil || e.lastTick < victim.lastTick {
				victim = e
			}
		}
		if victim == nil {
			break // everything resident is pinned or already shed
		}
		// ReleaseTransient takes the engine's own lock briefly (row swaps
		// only, never propagation) — same trade Close makes below.
		m := victim.engine.ReleaseTransient()
		victim.shed = true
		victim.partials++
		mEvictPartial.Inc()
		r.resident += m - victim.mem
		victim.mem = m
	}
	for r.resident > r.budget {
		var victim *entry
		for _, e := range r.entries {
			if e.engine == nil || e.refs > 0 || !e.rebuildable || e.engine.Mutated() {
				continue
			}
			if victim == nil || e.lastTick < victim.lastTick {
				victim = e
			}
		}
		if victim == nil {
			return // everything resident is pinned or unevictable
		}
		// Persist the engine's H (k×k) before dropping it: the next access
		// then rebuilds with one propagation instead of re-estimating.
		// Victims are never mutated (see the skip above), so this H is the
		// one the spec's own seeds produced.
		if est := victim.engine.Estimate(); est != nil && est.H != nil {
			victim.lastH, victim.lastHMethod = est.H.Clone(), est.Method
		}
		victim.engine.Close()
		victim.engine = nil
		r.resident -= victim.mem
		victim.mem = 0
		victim.evictions++
		mEvictFull.Inc()
		// The graph stays registered but its engine is gone; per-graph
		// series drop with it and reappear on the rebuild's first use.
		r.onForgetLocked(victim.name)
	}
}

// GraphInfo is the externally visible state of one registered graph.
type GraphInfo struct {
	Name    string `json:"name"`
	State   string `json:"state"`  // built | building | cold
	Source  string `json:"source"` // synthetic | files | inline | engine
	Nodes   int    `json:"nodes"`
	Edges   int    `json:"edges"`
	Classes int    `json:"classes"`
	// Evictable is false for pre-built (RegisterEngine) entries.
	Evictable bool `json:"evictable"`
	// Mutated marks a resident engine whose labels or H were changed
	// after build; such engines are pinned against eviction (a spec
	// rebuild would lose the mutations — DELETE and re-admit to release).
	Mutated bool `json:"mutated,omitempty"`
	// HRetained marks a graph whose last compatibility estimate survived
	// an eviction: the next (re)build skips estimation.
	HRetained bool `json:"h_retained,omitempty"`
	// Shed marks a resident engine whose transient working state was
	// partially released under memory pressure (tier-1 eviction): the CSR
	// and delta overlay are still resident, the next query re-solves.
	// PartialReleases counts how often that happened.
	Shed            bool  `json:"shed,omitempty"`
	PartialReleases int64 `json:"partial_releases,omitempty"`
	// EdgeMutations / TopoCompactions / OverlayFraction describe the
	// streaming-mutation state of the engine (PATCH /edges): applied edge
	// mutations, delta-overlay compactions, and the live share of
	// adjacency entries in the overlay. Refreshed at request release.
	EdgeMutations   int64   `json:"edge_mutations,omitempty"`
	TopoCompactions int64   `json:"topo_compactions,omitempty"`
	OverlayFraction float64 `json:"overlay_fraction,omitempty"`
	// AsyncCompactions counts compactions built by the engine's background
	// compactor; Compacting reports one currently in flight (async_compact
	// graphs only). Refreshed at request release like the fields above.
	AsyncCompactions int64 `json:"async_compactions,omitempty"`
	Compacting       bool  `json:"compacting,omitempty"`
	Refs             int   `json:"refs"`
	MemBytes         int64 `json:"mem_bytes"`
	SpecBytes        int64 `json:"spec_bytes,omitempty"`
	Hits             int64 `json:"hits"`
	Builds           int64 `json:"builds"`
	Evictions        int64 `json:"evictions"`
	// LastAccessUnixMS is 0 until the graph is first acquired.
	LastAccessUnixMS int64 `json:"last_access_unix_ms,omitempty"`
	RegisteredUnixMS int64 `json:"registered_unix_ms"`
}

// infoLocked reports e.mem as-is: footprints are re-measured at every
// request release (see releaseFunc), deliberately NOT here — measuring
// takes the engine's own lock, and the admin/listing paths must not hold
// the registry-global mutex while waiting on one tenant's engine.
func (r *Registry) infoLocked(e *entry) GraphInfo {
	state := "cold"
	switch {
	case e.engine != nil:
		state = "built"
	case e.building != nil:
		state = "building"
	}
	info := GraphInfo{
		Name: e.name, State: state, Source: e.spec.source(),
		Nodes: e.nodes, Edges: e.edges, Classes: e.classes,
		Evictable: e.rebuildable, Refs: e.refs,
		MemBytes: e.mem, SpecBytes: e.specMem,
		Hits: e.hits, Builds: e.builds, Evictions: e.evictions,
		RegisteredUnixMS: e.registered.UnixMilli(),
	}
	info.HRetained = e.lastH != nil
	info.Shed = e.shed && e.engine != nil
	info.PartialReleases = e.partials
	info.EdgeMutations = e.topo.EdgeMutations
	info.TopoCompactions = e.topo.Compactions
	info.OverlayFraction = e.topo.OverlayFraction
	info.AsyncCompactions = e.topo.AsyncCompactions
	info.Compacting = e.topo.Compacting
	if e.engine != nil {
		info.Mutated = e.engine.Mutated()
	}
	if !e.lastAccess.IsZero() {
		info.LastAccessUnixMS = e.lastAccess.UnixMilli()
	}
	return info
}

// Info returns the state of one graph.
func (r *Registry) Info(name string) (GraphInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return GraphInfo{}, fmt.Errorf("registry: %w: %q", ErrNotFound, name)
	}
	return r.infoLocked(e), nil
}

// List returns the state of every registered graph, sorted by name.
func (r *Registry) List() []GraphInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]GraphInfo, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, r.infoLocked(e))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Stats is the registry-wide aggregate for the admin endpoint.
type Stats struct {
	Graphs        int   `json:"graphs"`
	Built         int   `json:"built"`
	ResidentBytes int64 `json:"resident_bytes"`
	BudgetBytes   int64 `json:"budget_bytes"` // 0 = unlimited
	Hits          int64 `json:"hits"`
	Builds        int64 `json:"builds"`
	Evictions     int64 `json:"evictions"`
	// PartialReleases counts tier-1 evictions: transient state shed with
	// the CSR kept resident (rebuild is o(build), not o(parse+build)).
	PartialReleases int64 `json:"partial_releases"`
	// EdgeMutations aggregates streamed topology mutations across graphs.
	EdgeMutations int64 `json:"edge_mutations"`
}

// Stats aggregates the per-graph counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Stats{Graphs: len(r.entries), ResidentBytes: r.resident, BudgetBytes: r.budget}
	for _, e := range r.entries {
		if e.engine != nil {
			s.Built++
		}
		s.Hits += e.hits
		s.Builds += e.builds
		s.Evictions += e.evictions
		s.PartialReleases += e.partials
		s.EdgeMutations += e.topo.EdgeMutations
	}
	return s
}
