package registry

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"factorgraph"
)

// testSpec is a small synthetic graph that builds in milliseconds.
func testSpec(seed uint64) Spec {
	return Spec{Synthetic: &SyntheticSpec{N: 200, M: 1000, F: 0.1, Seed: seed}}
}

// testEngineBytes is the footprint estimate for testSpec engines.
func testEngineBytes() int64 {
	return factorgraph.EstimateEngineBytes(200, 1000, 3, false)
}

// countBuilds wraps the registry's builder with an atomic build counter.
func countBuilds(r *Registry) *atomic.Int64 {
	var n atomic.Int64
	orig := r.builder
	r.builder = func(s Spec) (*factorgraph.Engine, error) {
		n.Add(1)
		return orig(s)
	}
	return &n
}

func TestRegisterValidation(t *testing.T) {
	r := New(Options{})
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"", testSpec(1)},
		{"bad name", testSpec(1)},
		{"a/b", testSpec(1)},
		{"ok", Spec{}},                                // no source
		{"ok", Spec{Synthetic: &SyntheticSpec{}}},     // n=m=0
		{"ok", Spec{Files: &FileSpec{Edges: "only"}}}, // missing labels
		{"ok", Spec{Synthetic: &SyntheticSpec{N: 10, M: 20}, K: 1}},
		{"ok", Spec{Synthetic: &SyntheticSpec{N: 10, M: 20},
			Options: factorgraph.EngineOptions{Estimator: "bogus"}}},
		{"ok", Spec{Inline: &InlineSpec{Edges: []byte("not\tvalid\tat\tall\tx")}}},
		{"ok", Spec{Synthetic: &SyntheticSpec{N: 10, M: 20}, Files: &FileSpec{Edges: "e", Labels: "l"}}},
	} {
		if _, err := r.Register(tc.name, tc.spec); err == nil {
			t.Errorf("Register(%q, %+v) accepted an invalid registration", tc.name, tc.spec)
		}
	}

	if _, err := r.Register("ok", testSpec(1)); err != nil {
		t.Fatalf("valid Register failed: %v", err)
	}
	if _, err := r.Register("ok", testSpec(2)); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate Register: err=%v, want ErrExists", err)
	}
	if _, _, err := r.Acquire("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Acquire unknown: err=%v, want ErrNotFound", err)
	}
	if err := r.Delete("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Delete unknown: err=%v, want ErrNotFound", err)
	}
}

// TestAcquireSingleflight is the registry's concurrency acceptance test:
// many concurrent first requests for the same cold graph must trigger
// exactly one engine build, and everyone must get that one engine. Run
// with -race.
func TestAcquireSingleflight(t *testing.T) {
	r := New(Options{})
	builds := countBuilds(r)
	if _, err := r.Register("g", testSpec(1)); err != nil {
		t.Fatal(err)
	}
	const goros = 16
	engines := make([]*factorgraph.Engine, goros)
	var wg sync.WaitGroup
	for i := 0; i < goros; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eng, release, err := r.Acquire("g")
			if err != nil {
				t.Error(err)
				return
			}
			defer release()
			// Exercise the engine while pinned.
			if _, err := eng.Classify(factorgraph.Query{Nodes: []int{i}}); err != nil {
				t.Error(err)
			}
			engines[i] = eng
		}(i)
	}
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Errorf("%d concurrent acquires ran %d builds, want 1", goros, got)
	}
	for i := 1; i < goros; i++ {
		if engines[i] != engines[0] {
			t.Fatalf("goroutine %d got a different engine instance", i)
		}
	}
	info, err := r.Info("g")
	if err != nil {
		t.Fatal(err)
	}
	if info.Builds != 1 || info.Hits != int64(goros-1) {
		t.Errorf("info = builds %d hits %d, want builds 1 hits %d", info.Builds, info.Hits, goros-1)
	}
}

// TestEvictionPinnedSurvives covers the LRU under a budget that admits
// only one engine: pinned engines survive over-budget pressure, cold ones
// are evicted, and an evicted graph is transparently rebuilt on the next
// acquisition.
func TestEvictionPinnedSurvives(t *testing.T) {
	// Budget below a shed engine's footprint, so the tier-1 partial
	// release never satisfies it and the full-eviction ladder runs.
	r := New(Options{MemoryBudget: testEngineBytes() / 2})
	builds := countBuilds(r)
	for _, name := range []string{"a", "b"} {
		if _, err := r.Register(name, testSpec(1)); err != nil {
			t.Fatal(err)
		}
	}

	engA, releaseA, err := r.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	// Build b while a is pinned: both resident, over budget.
	_, releaseB, err := r.Acquire("b")
	if err != nil {
		t.Fatal(err)
	}
	// On b's release the pinned a must survive even though it is the
	// LRU-older entry; b, the only evictable engine, goes instead.
	releaseB()
	if info, _ := r.Info("a"); info.State != "built" {
		t.Fatalf("pinned graph a was evicted (state %q)", info.State)
	}
	if info, _ := r.Info("b"); info.State != "cold" || info.Evictions != 1 {
		t.Fatalf("b state %q evictions %d, want cold/1", info.State, info.Evictions)
	}
	// a is still fully usable while pinned over budget.
	if _, err := engA.Classify(factorgraph.Query{Nodes: []int{0}}); err != nil {
		t.Fatalf("pinned engine query failed: %v", err)
	}
	releaseA()
	if info, _ := r.Info("a"); info.State != "built" {
		t.Fatalf("a evicted while within budget (state %q)", info.State)
	}

	// Rebuilding b evicts the now-cold a during install.
	_, releaseB2, err := r.Acquire("b")
	if err != nil {
		t.Fatal(err)
	}
	releaseB2()
	if info, _ := r.Info("a"); info.State != "cold" || info.Evictions != 1 {
		t.Fatalf("a state %q evictions %d after b's rebuild, want cold/1", info.State, info.Evictions)
	}

	// Transparent rebuild of the evicted a on next access.
	engA2, releaseA2, err := r.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engA2.Classify(factorgraph.Query{Nodes: []int{1}}); err != nil {
		t.Fatalf("rebuilt engine query failed: %v", err)
	}
	releaseA2()
	if info, _ := r.Info("a"); info.Builds != 2 {
		t.Errorf("a rebuilt %d times, want 2", info.Builds)
	}
	if info, _ := r.Info("b"); info.State != "cold" || info.Evictions != 2 {
		t.Errorf("b state %q evictions %d after a's rebuild, want cold/2", info.State, info.Evictions)
	}
	if got := builds.Load(); got != 4 {
		t.Errorf("total builds %d, want 4 (a, b, b-again, a-again)", got)
	}
	st := r.Stats()
	if st.Evictions != 3 || st.Builds != 4 {
		t.Errorf("stats = %+v, want 3 evictions, 4 builds", st)
	}
}

// TestEvictionUnderLoad churns two graphs under a one-engine budget from
// many goroutines; every acquisition must succeed (rebuilding as needed)
// and no pinned engine may ever be closed mid-request. Run with -race.
func TestEvictionUnderLoad(t *testing.T) {
	r := New(Options{MemoryBudget: testEngineBytes() * 3 / 2})
	for _, name := range []string{"a", "b"} {
		if _, err := r.Register(name, testSpec(1)); err != nil {
			t.Fatal(err)
		}
	}
	const goros = 8
	var wg sync.WaitGroup
	for i := 0; i < goros; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := "a"
			if i%2 == 1 {
				name = "b"
			}
			for j := 0; j < 10; j++ {
				eng, release, err := r.Acquire(name)
				if err != nil {
					t.Errorf("acquire %s: %v", name, err)
					return
				}
				if _, err := eng.Classify(factorgraph.Query{Nodes: []int{j}}); err != nil {
					t.Errorf("classify on %s: %v", name, err)
				}
				release()
			}
		}(i)
	}
	wg.Wait()
	st := r.Stats()
	if st.Builds < 2 {
		t.Errorf("expected at least one build per graph, got %d", st.Builds)
	}
}

func TestBuildFailurePropagation(t *testing.T) {
	r := New(Options{})
	var builds atomic.Int64
	r.builder = func(s Spec) (*factorgraph.Engine, error) {
		builds.Add(1)
		return nil, fmt.Errorf("boom")
	}
	if _, err := r.Register("g", testSpec(1)); err != nil {
		t.Fatal(err)
	}
	const goros = 8
	var wg sync.WaitGroup
	errs := make([]error, goros)
	for i := 0; i < goros; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = r.Acquire("g")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("goroutine %d: failed build reported no error", i)
		}
	}
	// Failures must not brick the entry: a later acquire retries the build.
	before := builds.Load()
	if _, _, err := r.Acquire("g"); err == nil {
		t.Fatal("expected build failure")
	}
	if builds.Load() != before+1 {
		t.Errorf("post-failure acquire did not retry the build")
	}
	if info, _ := r.Info("g"); info.Builds != 0 {
		t.Errorf("failed builds counted as successes: %d", info.Builds)
	}
}

func TestDeleteWithInFlightRequests(t *testing.T) {
	r := New(Options{})
	if _, err := r.Register("g", testSpec(1)); err != nil {
		t.Fatal(err)
	}
	eng, release, err := r.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("g"); err != nil {
		t.Fatal(err)
	}
	// The in-flight request keeps a usable engine until it releases.
	if _, err := eng.Classify(factorgraph.Query{Nodes: []int{0}}); err != nil {
		t.Fatalf("in-flight query after delete: %v", err)
	}
	release()
	// The last release closes the engine.
	if _, err := eng.Classify(factorgraph.Query{Nodes: []int{0}}); !errors.Is(err, factorgraph.ErrEngineClosed) {
		t.Errorf("query after final release: err=%v, want ErrEngineClosed", err)
	}
	if _, _, err := r.Acquire("g"); !errors.Is(err, ErrNotFound) {
		t.Errorf("acquire after delete: err=%v, want ErrNotFound", err)
	}
}

func TestRegisterEngineNotEvictable(t *testing.T) {
	eng := buildTestEngine(t)
	// A budget far below the engine footprint must still not evict a
	// pre-built (non-rebuildable) engine.
	r := New(Options{MemoryBudget: 1})
	if err := r.RegisterEngine("pinned", eng); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("spec", testSpec(2)); err != nil {
		t.Fatal(err)
	}
	_, release, err := r.Acquire("spec")
	if err != nil {
		t.Fatal(err)
	}
	release() // spec graph is evictable and over budget ⇒ evicted
	if info, _ := r.Info("pinned"); info.State != "built" {
		t.Errorf("non-rebuildable engine evicted (state %q)", info.State)
	}
	if info, _ := r.Info("spec"); info.State != "cold" {
		t.Errorf("evictable engine survived a 1-byte budget (state %q)", info.State)
	}
	got, release2, ok := r.AcquireIfBuilt("pinned")
	if !ok || got != eng {
		t.Fatalf("AcquireIfBuilt(pinned) = %v, %v", got, ok)
	}
	release2()
	if _, _, ok := r.AcquireIfBuilt("spec"); ok {
		t.Error("AcquireIfBuilt returned a cold graph")
	}
}

// TestMutatedEngineNotEvicted: once a graph's labels (or H) are patched,
// a spec rebuild would silently roll the mutations back, so the registry
// must pin mutated engines against eviction.
func TestMutatedEngineNotEvicted(t *testing.T) {
	// Budget below a shed footprint: pressure escalates past the partial
	// release to full eviction, which must still skip the mutated engine.
	r := New(Options{MemoryBudget: testEngineBytes() / 2})
	for _, name := range []string{"patched", "other"} {
		if _, err := r.Register(name, testSpec(1)); err != nil {
			t.Fatal(err)
		}
	}
	eng, release, err := r.Acquire("patched")
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.UpdateLabels(map[int]int{0: 1}, nil); err != nil {
		t.Fatal(err)
	}
	release()
	// Building "other" pushes resident over budget; the cold LRU victim
	// would be "patched", but it is mutated and must survive.
	_, release2, err := r.Acquire("other")
	if err != nil {
		t.Fatal(err)
	}
	release2()
	info, _ := r.Info("patched")
	if info.State != "built" || !info.Mutated || info.Evictions != 0 {
		t.Errorf("mutated graph: %+v, want built/mutated/0 evictions", info)
	}
	// The mutated engine WAS partially released (tier 1 loses nothing) but
	// never fully evicted.
	if !info.Shed || info.PartialReleases == 0 {
		t.Errorf("mutated graph not partially released under pressure: %+v", info)
	}
	// "other" (unmutated, refs 0) is the one evicted to chase the budget.
	if info, _ := r.Info("other"); info.State != "cold" {
		t.Errorf("unmutated graph state %q, want cold", info.State)
	}
	// The patch is still visible — nothing was rolled back.
	if eng2, release3, err := r.Acquire("patched"); err != nil {
		t.Fatal(err)
	} else {
		if eng2.Seeds()[0] != 1 {
			t.Error("label patch lost")
		}
		release3()
	}
}

// TestInlineSpecBytesCounted: retained upload payloads are resident
// memory; the budget must see them, and DELETE must release them.
func TestInlineSpecBytesCounted(t *testing.T) {
	r := New(Options{})
	edges := []byte("0\t1\n1\t2\n2\t0\n")
	labels := []byte("0\t0\n1\t1\n")
	if _, err := r.Register("up", Spec{K: 2, Inline: &InlineSpec{Edges: edges, Labels: labels}}); err != nil {
		t.Fatal(err)
	}
	want := int64(len(edges) + len(labels))
	if st := r.Stats(); st.ResidentBytes != want {
		t.Errorf("resident %d after inline register, want %d (payload bytes)", st.ResidentBytes, want)
	}
	if info, _ := r.Info("up"); info.SpecBytes != want {
		t.Errorf("spec bytes %d, want %d", info.SpecBytes, want)
	}
	if err := r.Delete("up"); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.ResidentBytes != 0 {
		t.Errorf("resident %d after delete, want 0", st.ResidentBytes)
	}
}

func buildTestEngine(t *testing.T) *factorgraph.Engine {
	t.Helper()
	eng, err := buildEngine(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	return eng
}
