package registry

import (
	"fmt"

	"factorgraph"
	"factorgraph/internal/graph"
	"factorgraph/internal/labels"
	"factorgraph/internal/sparse"
)

// SyntheticSpec plants a partition graph with the paper's generator
// (Section 5): n nodes, m edges, k classes connected by a skewed
// compatibility matrix, with a stratified fraction f of the true labels
// kept as seeds.
type SyntheticSpec struct {
	N int `json:"n"`
	M int `json:"m"`
	// Skew is the compatibility skew h; 0 (or omitted) selects the
	// default 3. Zero-skew graphs are not expressible: their uniform H
	// carries no class signal to estimate or propagate.
	Skew float64 `json:"skew"`
	// F is the labeled seed fraction; 0 (or omitted) selects the default
	// 0.05. Seedless graphs are not expressible: an engine cannot
	// estimate H from zero labels.
	F    float64 `json:"f"`
	Seed uint64  `json:"seed"`
}

// FileSpec loads a graph from TSV files on the server's filesystem.
type FileSpec struct {
	Edges  string `json:"edges"`
	Labels string `json:"labels"`
}

// InlineSpec holds an uploaded graph verbatim: the raw edge-list and
// seed-label payloads. The registry keeps these bytes (not the parsed
// graph) so an evicted engine can be rebuilt without the client
// re-uploading, while eviction still releases the CSR matrix and all
// propagation buffers.
type InlineSpec struct {
	Edges  []byte `json:"-"`
	Labels []byte `json:"-"`
}

// Spec describes how to (re)build one named graph's engine. Exactly one of
// Synthetic, Files or Inline must be set.
type Spec struct {
	Synthetic *SyntheticSpec
	Files     *FileSpec
	Inline    *InlineSpec
	// K is the class count; 0 means infer from the labels (files/inline)
	// or the 3-class demo default (synthetic).
	K int
	// Options configures the engine (estimator, LinBP parameters).
	Options factorgraph.EngineOptions

	// dimsN/M/K cache the known dimensions, filled by validate so inline
	// uploads are parsed once at admission, not once per stats query.
	dimsN, dimsM, dimsK int

	// presetH, when set, is installed as the engine's compatibility
	// estimate instead of running the estimator — the registry fills it
	// from the H persisted at eviction, so a spec-backed rebuild costs one
	// propagation, not estimation + propagation.
	presetH       *factorgraph.Matrix
	presetHMethod string
}

// source names the admission path for stats.
func (s *Spec) source() string {
	switch {
	case s.Synthetic != nil:
		return "synthetic"
	case s.Files != nil:
		return "files"
	case s.Inline != nil:
		return "inline"
	}
	return "engine" // pre-built via RegisterEngine
}

// validate checks that exactly one source is set and that cheap-to-check
// parameters are sane, so registration (not the first query) rejects bad
// specs. Inline payloads are parsed here once to surface syntax errors at
// admission time; the parsed graph is discarded.
func (s *Spec) validate() error {
	sources := 0
	for _, set := range []bool{s.Synthetic != nil, s.Files != nil, s.Inline != nil} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return fmt.Errorf("registry: spec needs exactly one of synthetic, files or inline (got %d)", sources)
	}
	if s.K < 0 || s.K == 1 {
		return fmt.Errorf("registry: k=%d, want 0 (infer) or ≥ 2", s.K)
	}
	if !factorgraph.KnownEstimator(s.Options.Estimator) {
		return fmt.Errorf("registry: %w %q (want dcer, dce, mce, lce or holdout)",
			factorgraph.ErrUnknownEstimator, s.Options.Estimator)
	}
	if s.Options.ResidualTol < 0 || s.Options.ResidualEdgeBudget < 0 {
		return fmt.Errorf("registry: negative residual tolerance/edge budget")
	}
	if s.Options.CompactFraction < 0 || s.Options.CompactFraction >= 1 {
		if s.Options.CompactFraction != 0 {
			return fmt.Errorf("registry: compact_fraction %v outside (0,1)", s.Options.CompactFraction)
		}
	}
	if (s.Options.ResidualTol > 0 || s.Options.ResidualEdgeBudget > 0 || s.Options.CompactFraction > 0 || s.Options.AsyncCompact) && !s.Options.Incremental {
		return fmt.Errorf("registry: residual_tol/residual_edge_budget/compact_fraction/async_compact require incremental")
	}
	if !sparse.KnownReorder(s.Options.Reorder) {
		return fmt.Errorf("registry: unknown reorder mode %q (want \"\", %q, %q or %q)",
			s.Options.Reorder, sparse.ReorderNone, sparse.ReorderDegree, sparse.ReorderRCM)
	}
	if s.Options.F32Beliefs && s.Options.Incremental {
		return fmt.Errorf("registry: f32_beliefs requires a non-incremental engine (the residual subsystem accumulates in float64)")
	}
	switch {
	case s.Synthetic != nil:
		sp := s.Synthetic
		if sp.N <= 0 || sp.M <= 0 {
			return fmt.Errorf("registry: synthetic spec needs n > 0 and m > 0, got n=%d m=%d", sp.N, sp.M)
		}
		if sp.F < 0 || sp.F > 1 {
			return fmt.Errorf("registry: synthetic labeled fraction f=%v outside [0,1]", sp.F)
		}
		s.dimsN, s.dimsM, s.dimsK = sp.N, sp.M, s.K
		if s.dimsK == 0 {
			s.dimsK = 3
		}
	case s.Files != nil:
		if s.Files.Edges == "" || s.Files.Labels == "" {
			return fmt.Errorf("registry: file spec needs both edges and labels paths")
		}
	case s.Inline != nil:
		g, _, k, err := graph.ParseUpload(s.Inline.Edges, s.Inline.Labels)
		if err != nil {
			return fmt.Errorf("registry: %w", err)
		}
		if s.K != 0 {
			k = s.K
		}
		s.dimsN, s.dimsM, s.dimsK = g.N, g.M, k
	}
	return nil
}

// dims reports (n, m, k) when they are knowable without building: synthetic
// specs carry them, inline specs are parsed for them at registration.
// File-backed specs return zeros until the first build.
func (s *Spec) dims() (n, m, k int) {
	return s.dimsN, s.dimsM, s.dimsK
}

// load materializes the graph, seed labels and class count for this spec.
func (s *Spec) load() (*factorgraph.Graph, []int, int, error) {
	switch {
	case s.Synthetic != nil:
		return s.loadSynthetic()
	case s.Files != nil:
		g, seeds, err := graph.LoadFiles(s.Files.Edges, s.Files.Labels)
		if err != nil {
			return nil, nil, 0, err
		}
		k := s.K
		if k == 0 {
			k = labels.NumClasses(seeds)
		}
		return g, seeds, k, nil
	case s.Inline != nil:
		g, seeds, k, err := graph.ParseUpload(s.Inline.Edges, s.Inline.Labels)
		if err != nil {
			return nil, nil, 0, err
		}
		if s.K != 0 {
			k = s.K
		}
		return g, seeds, k, nil
	}
	return nil, nil, 0, fmt.Errorf("registry: spec has no source")
}

func (s *Spec) loadSynthetic() (*factorgraph.Graph, []int, int, error) {
	sp := s.Synthetic
	k := s.K
	if k == 0 {
		k = 3
	}
	skew := sp.Skew
	if skew == 0 {
		skew = 3
	}
	f := sp.F
	if f == 0 {
		f = 0.05
	}
	g, truth, err := factorgraph.Generate(factorgraph.GenerateConfig{
		N: sp.N, M: sp.M, K: k, H: factorgraph.SkewedH(k, skew), Seed: sp.Seed,
	})
	if err != nil {
		return nil, nil, 0, err
	}
	seeds, err := factorgraph.SampleSeeds(truth, k, f, sp.Seed)
	if err != nil {
		return nil, nil, 0, err
	}
	return g, seeds, k, nil
}

// buildEngine is the default builder: load the spec's graph and run the
// full engine preprocessing (CSR, ρ(W), compatibility estimate). A rebuild
// after eviction reuses the persisted H (presetH), skipping the estimator.
func buildEngine(s Spec) (*factorgraph.Engine, error) {
	g, seeds, k, err := s.load()
	if err != nil {
		return nil, err
	}
	if s.presetH != nil && s.presetH.Rows == k {
		return factorgraph.NewEngineWithH(g, seeds, k, s.presetH, s.presetHMethod, s.Options)
	}
	return factorgraph.NewEngine(g, seeds, k, s.Options)
}
