package registry

import "factorgraph/internal/telemetry"

var (
	mBuilds = telemetry.Default().Counter("fg_registry_builds_total",
		"Engine builds performed (cold admissions and post-eviction rebuilds).")
	mCoalesces = telemetry.Default().Counter("fg_registry_coalesced_waits_total",
		"Acquisitions that joined an in-flight singleflight build instead of starting one.")
	mEvictPartial = telemetry.Default().Counter("fg_registry_evictions_total",
		"Evictions by tier: partial sheds transient state, full closes the engine.",
		telemetry.Labels{"tier": "partial"})
	mEvictFull = telemetry.Default().Counter("fg_registry_evictions_total",
		"Evictions by tier: partial sheds transient state, full closes the engine.",
		telemetry.Labels{"tier": "full"})
	hBuild = telemetry.Default().Histogram("fg_registry_build_seconds",
		"Engine build duration.", nil)
	// Gauges reflect the most recently mutated Registry instance; a serving
	// process has exactly one.
	mResident = telemetry.Default().Gauge("fg_registry_resident_bytes",
		"Estimated resident bytes of built engines plus retained inline payloads.")
	mGraphs = telemetry.Default().Gauge("fg_registry_graphs",
		"Registered graphs.")
)

// syncGaugesLocked refreshes the process gauges from the registry's state;
// call after any change to resident accounting or the entry map.
func (r *Registry) syncGaugesLocked() {
	mResident.Set(float64(r.resident))
	mGraphs.Set(float64(len(r.entries)))
}
