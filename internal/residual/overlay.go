package residual

import "container/heap"

// Overlay is a copy-on-write view over a base State for what-if queries:
// ephemeral seed changes land as residual deltas in the overlay, and the
// push loop clones exactly the belief rows its frontier touches — the rest
// of the graph is read through to the base. An overlay never mutates its
// base, so concurrent queries each run their own Overlay over one shared
// State; the caller must only guarantee the base is not flushed (mutated)
// while overlays read it, which the Engine does with its read lock.
type Overlay struct {
	base *State

	rows map[int][]float64 // CoW belief rows (node → owned row)
	res  map[int][]float64 // overlay residual rows (sparse)
	inq  map[int]bool
	pq   nodeHeap

	rowBuf []float64
	rhBuf  []float64

	edges int
}

// NewOverlay returns an empty overlay over the state. The base must be
// initialized (Init) first.
func (s *State) NewOverlay() *Overlay {
	return &Overlay{
		base:   s,
		rows:   make(map[int][]float64),
		res:    make(map[int][]float64),
		inq:    make(map[int]bool),
		rowBuf: make([]float64, s.k),
		rhBuf:  make([]float64, s.k),
	}
}

// resRow returns the overlay residual row for node, creating it zeroed.
func (o *Overlay) resRow(node int) []float64 {
	row, ok := o.res[node]
	if !ok {
		row = make([]float64, o.base.k)
		o.res[node] = row
	}
	return row
}

// beliefRow returns the writable (cloned) belief row for node.
func (o *Overlay) beliefRow(node int) []float64 {
	row, ok := o.rows[node]
	if !ok {
		row = append([]float64(nil), o.base.f.Row(node)...)
		o.rows[node] = row
	}
	return row
}

// AddDelta adds an explicit-belief change for node to the overlay residual
// (delta in uncentered space, as in State.AddDelta). The base's X is not
// modified.
func (o *Overlay) AddDelta(node int, delta []float64) {
	row := o.resRow(node)
	norm := 0.0
	for j, d := range delta {
		row[j] += d
		v := row[j]
		if v < 0 {
			v = -v
		}
		if v > norm {
			norm = v
		}
	}
	if norm > o.base.opts.Tol && !o.inq[node] {
		heap.Push(&o.pq, heapEntry{node: int32(node), norm: norm})
		o.inq[node] = true
	}
}

// SetSeed overlays "this node's explicit belief becomes one-hot class c"
// (c < 0 clears the seed): the delta against the base's retained X is
// computed internally. The base X rows are centered or not according to the
// state; the constant shift cancels in the delta either way.
func (o *Overlay) SetSeed(node, c int) {
	x := o.base.XRow(node)
	k := o.base.k
	shift := 0.0
	if o.base.Centered() {
		shift = 1.0 / float64(k)
	}
	delta := make([]float64, k)
	for j := 0; j < k; j++ {
		delta[j] = -(x[j] + shift) // remove current uncentered mass
		if j == c {
			delta[j] += 1 // ... and place the new one-hot seed
		}
	}
	o.AddDelta(node, delta)
}

// Flush pushes the overlay's residual queue to the tolerance of the base
// state, cloning belief rows as the frontier reaches them. If the frontier
// exceeds the base's edge budget the overlay gives up and reports
// FellBack=true with the flush incomplete — the caller should answer the
// query with a full propagation instead (a what-if that perturbs a large
// fraction of the graph has no cheap incremental answer).
func (o *Overlay) Flush() Stats {
	var st Stats
	k := o.base.k
	tol := o.base.opts.Tol
	hs := o.base.hScaled
	w := o.base.w
	for len(o.pq) > 0 {
		top := heap.Pop(&o.pq).(heapEntry)
		u := int(top.node)
		o.inq[u] = false
		rRow := o.res[u]
		if rRow == nil || infNorm(rRow) <= tol {
			continue
		}
		fRow := o.beliefRow(u)
		copy(o.rowBuf, rRow)
		for j := 0; j < k; j++ {
			fRow[j] += rRow[j]
			rRow[j] = 0
		}
		st.Pushed++
		rh := o.rhBuf
		for j := 0; j < k; j++ {
			acc := 0.0
			for c := 0; c < k; c++ {
				acc += o.rowBuf[c] * hs.Data[c*k+j]
			}
			rh[j] = acc
		}
		lo, hi := w.IndPtr[u], w.IndPtr[u+1]
		st.Edges += hi - lo
		o.edges += hi - lo
		for p := lo; p < hi; p++ {
			v := int(w.Indices[p])
			wv := 1.0
			if w.Data != nil {
				wv = w.Data[p]
			}
			nRow := o.resRow(v)
			norm := 0.0
			for j := 0; j < k; j++ {
				nRow[j] += wv * rh[j]
				a := nRow[j]
				if a < 0 {
					a = -a
				}
				if a > norm {
					norm = a
				}
			}
			if norm > tol && !o.inq[v] {
				heap.Push(&o.pq, heapEntry{node: int32(v), norm: norm})
				o.inq[v] = true
			}
		}
		if o.edges > o.base.edgeBudget {
			st.FellBack = true
			return st
		}
	}
	return st
}

// Row returns node's belief row through the overlay: the cloned row when
// the frontier touched it, the base row otherwise. The returned slice
// aliases either the overlay or the base; treat it as read-only and do not
// retain it past the lock that protects the base.
func (o *Overlay) Row(node int) []float64 {
	if row, ok := o.rows[node]; ok {
		return row
	}
	return o.base.f.Row(node)
}

// Touched returns how many belief rows the overlay cloned.
func (o *Overlay) Touched() int { return len(o.rows) }

func infNorm(row []float64) float64 {
	m := 0.0
	for _, v := range row {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}
