package residual

import (
	"factorgraph/internal/exec"
	"factorgraph/internal/telemetry"
)

// Overlay is a copy-on-write view over a base State for what-if queries:
// ephemeral seed changes land as residual deltas in the overlay, and the
// push loop clones exactly the belief rows its frontier touches — the rest
// of the graph is read through to the base. An overlay never mutates its
// base, so concurrent queries each run their own Overlay over one shared
// State; the caller must only guarantee the base is not mutated (flushed or
// patched) while overlays read it, which the Engine does with its read
// lock.
//
// Overlays drain through the same exec.Drain loop as the resident state but
// never promote: a what-if whose frontier would saturate has no cheap
// incremental answer, and the edge budget reroutes it to a full propagation
// long before a saturated drain could pay off.
type Overlay struct {
	base *State

	rows map[int32][]float64 // CoW belief rows (node → owned row)
	res  map[int32][]float64 // overlay residual rows (sparse)

	front *exec.Frontier

	rowBuf []float64
	rhBuf  []float64

	edges int

	// Trace, when set by the query path, records the flush as a
	// "residual.flush" span with the exec drain nested under it.
	Trace *telemetry.Trace
}

// NewOverlay returns an empty overlay over the state. The base must be
// initialized (Init) first.
func (s *State) NewOverlay() *Overlay {
	return &Overlay{
		base:   s,
		rows:   make(map[int32][]float64),
		res:    make(map[int32][]float64),
		front:  exec.NewFrontier(s.opts.Tol, 0),
		rowBuf: make([]float64, s.k),
		rhBuf:  make([]float64, s.k),
	}
}

// resRow returns the overlay residual row for node, creating it zeroed.
func (o *Overlay) resRow(node int32) []float64 {
	row, ok := o.res[node]
	if !ok {
		row = make([]float64, o.base.k)
		o.res[node] = row
	}
	return row
}

// beliefRow returns the writable (cloned) belief row for node.
func (o *Overlay) beliefRow(node int32) []float64 {
	row, ok := o.rows[node]
	if !ok {
		row = append([]float64(nil), o.base.f.Row(int(node))...)
		o.rows[node] = row
	}
	return row
}

// AddDelta adds an explicit-belief change for node to the overlay residual
// (delta in uncentered space, as in State.AddDelta). The base's X is not
// modified.
func (o *Overlay) AddDelta(node int, delta []float64) {
	row := o.resRow(int32(node))
	for j, d := range delta {
		row[j] += d
	}
	o.front.Add(int32(node), infNorm(row))
}

// SetSeed overlays "this node's explicit belief becomes one-hot class c"
// (c < 0 clears the seed): the delta against the base's retained X is
// computed internally. The base X rows are centered or not according to the
// state; the constant shift cancels in the delta either way.
func (o *Overlay) SetSeed(node, c int) {
	x := o.base.XRow(node)
	k := o.base.k
	shift := 0.0
	if o.base.Centered() {
		shift = 1.0 / float64(k)
	}
	delta := make([]float64, k)
	for j := 0; j < k; j++ {
		delta[j] = -(x[j] + shift) // remove current uncentered mass
		if j == c {
			delta[j] += 1 // ... and place the new one-hot seed
		}
	}
	o.AddDelta(node, delta)
}

// Flush pushes the overlay's residual queue to the tolerance of the base
// state, cloning belief rows as the frontier reaches them. If the frontier
// exceeds the base's edge budget (cumulative across flushes) the overlay
// gives up and reports FellBack=true with the flush incomplete — the caller
// should answer the query with a full propagation instead.
func (o *Overlay) Flush() Stats {
	var st Stats
	defer func() { recordStats(st) }()
	budget := o.base.edgeBudget - o.edges
	if budget <= 0 {
		// A previous flush already exhausted the budget; don't hand Drain a
		// non-positive budget (it would read it as unbounded).
		if o.front.Len() > 0 {
			st.FellBack = true
		}
		return st
	}
	doneFlush := o.Trace.Start("residual.flush")
	pushed, edges, outcome := exec.DrainTraced(o.Trace, o.front, overlayKernel{o}, budget)
	doneFlush()
	o.edges += edges
	st.Pushed, st.Edges = pushed, edges
	if outcome == exec.BudgetExceeded {
		st.FellBack = true
	}
	return st
}

// overlayKernel is the copy-on-write push step.
type overlayKernel struct{ o *Overlay }

func (k overlayKernel) Norm(node int32) float64 {
	return infNorm(k.o.res[node])
}

func (k overlayKernel) Push(node int32, dirtied func(int32, float64)) int {
	o := k.o
	base := o.base
	kk := base.k
	rRow := o.res[node]
	fRow := o.beliefRow(node)
	for j := 0; j < kk; j++ {
		fRow[j] += rRow[j]
	}
	copy(o.rowBuf, rRow)
	delete(o.res, node)
	mulRowH(o.rhBuf, o.rowBuf, base.hScaled.Data, kk)
	cols, wts := base.w.Row(int(node))
	for p, v := range cols {
		wv := 1.0
		if wts != nil {
			wv = wts[p]
		}
		nRow := o.resRow(v)
		norm := 0.0
		for j := 0; j < kk; j++ {
			nRow[j] += wv * o.rhBuf[j]
			a := nRow[j]
			if a < 0 {
				a = -a
			}
			if a > norm {
				norm = a
			}
		}
		dirtied(v, norm)
	}
	return len(cols)
}

// Row returns node's belief row through the overlay: the cloned row when
// the frontier touched it, the base row otherwise. The returned slice
// aliases either the overlay or the base; treat it as read-only and do not
// retain it past the lock that protects the base.
func (o *Overlay) Row(node int) []float64 {
	if row, ok := o.rows[int32(node)]; ok {
		return row
	}
	return o.base.f.Row(node)
}

// Touched returns how many belief rows the overlay cloned.
func (o *Overlay) Touched() int { return len(o.rows) }

// ClonedBeliefRows hands out the overlay's cloned rows (node → owned row).
// The engine's what-if cache retains them after the overlay is discarded;
// the map must not be mutated while the overlay is still in use.
func (o *Overlay) ClonedBeliefRows() map[int32][]float64 { return o.rows }
