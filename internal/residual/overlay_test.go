package residual

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"factorgraph/internal/dense"
)

// TestOverlayMatchesFullPropagation: an overlay seed change answers the
// same beliefs as a from-scratch propagation with that seed applied, while
// the base state stays untouched.
func TestOverlayMatchesFullPropagation(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n, k := 300, 3
	w := randGraph(t, n, 6, 21)
	h := testH(k, 0.4)
	x := randX(n, k, 0.1, rng)
	// Generous edge budget: at 300 nodes the frontier saturates the graph
	// well before a 1e-10 tolerance is reached (see TestPatchIsLocal).
	s, err := NewState(w, h, Options{Tol: 1e-10, EdgeBudgetFactor: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Init(x); err != nil {
		t.Fatal(err)
	}
	baseCopy := s.Beliefs().Clone()

	// Overlay: plant node 5 as class 2, clear node 6's seed (if any).
	o := s.NewOverlay()
	o.SetSeed(5, 2)
	o.SetSeed(6, -1)
	st := o.Flush()
	if st.FellBack {
		t.Fatal("small overlay fell back")
	}
	if st.Pushed == 0 || o.Touched() == 0 {
		t.Fatalf("overlay did no work: %+v, touched=%d", st, o.Touched())
	}
	if o.Touched() == n {
		t.Errorf("overlay cloned every row; frontier is not localized")
	}

	// Reference: full converged propagation on the overlaid X.
	x2 := x.Clone()
	for j := 0; j < k; j++ {
		x2.Set(5, j, 0)
		x2.Set(6, j, 0)
	}
	x2.Set(5, 2, 1)
	want := fixedPoint(t, w, h, x2)
	worst := 0.0
	for i := 0; i < n; i++ {
		row := o.Row(i)
		for j := 0; j < k; j++ {
			if d := math.Abs(row[j] - want.At(i, j)); d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-6 {
		t.Errorf("overlay beliefs differ from full propagation by %g", worst)
	}

	// Base state bit-identical.
	if d := maxAbsDiff(s.Beliefs(), baseCopy); d != 0 {
		t.Errorf("overlay mutated base beliefs by %g", d)
	}
	if mr := s.MaxResidual(); mr > 1e-10 {
		t.Errorf("overlay left residual %g in base", mr)
	}
}

// TestOverlayFrontierIsolationConcurrent runs many overlays with different
// seeds concurrently over one base state (plus concurrent plain readers)
// and checks every overlay answers its own what-if, unpolluted by the
// others. Run with -race.
func TestOverlayFrontierIsolationConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n, k := 400, 3
	w := randGraph(t, n, 6, 31)
	h := testH(k, 0.4)
	x := randX(n, k, 0.1, rng)
	s, err := NewState(w, h, Options{EdgeBudgetFactor: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Init(x); err != nil {
		t.Fatal(err)
	}
	baseCopy := s.Beliefs().Clone()

	const workers = 16
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			node := wk * 20
			class := wk % k
			o := s.NewOverlay()
			o.SetSeed(node, class)
			o.Flush()
			// The overlaid node's own belief must now favor its class.
			row := o.Row(node)
			best := 0
			for j := 1; j < k; j++ {
				if row[j] > row[best] {
					best = j
				}
			}
			if best != class {
				t.Errorf("overlay %d: node %d argmax %d, want %d", wk, node, best, class)
			}
		}(wk)
	}
	// Plain readers scanning base rows concurrently.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n; i++ {
				_ = s.Row(i)[0]
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if d := maxAbsDiff(s.Beliefs(), baseCopy); d != 0 {
		t.Errorf("concurrent overlays mutated base by %g", d)
	}
}

// TestOverlayFallbackSignal: an overlay that floods the graph reports
// FellBack so the caller can reroute to a full propagation.
func TestOverlayFallbackSignal(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	n, k := 300, 3
	w := randGraph(t, n, 8, 41)
	h := testH(k, 0.5)
	x := randX(n, k, 0.1, rng)
	s, err := NewState(w, h, Options{EdgeBudgetFactor: 1, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Init(x); err != nil {
		t.Fatal(err)
	}
	o := s.NewOverlay()
	for i := 0; i < n; i++ {
		o.SetSeed(i, i%k)
	}
	if st := o.Flush(); !st.FellBack {
		t.Error("graph-wide overlay did not signal fallback")
	}
}

// TestOverlaySetSeedDelta: SetSeed must produce the exact delta between the
// current explicit row and the requested one, including for already-seeded
// nodes and for clearing.
func TestOverlaySetSeedDelta(t *testing.T) {
	w := randGraph(t, 30, 4, 51)
	h := testH(2, 0.4)
	x := dense.New(30, 2)
	x.Set(3, 1, 1) // node 3 seeded class 1
	s, err := NewState(w, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Init(x); err != nil {
		t.Fatal(err)
	}
	o := s.NewOverlay()
	o.SetSeed(3, 1) // no-op: already class 1
	if len(o.res) != 0 {
		row := o.res[3]
		if infNorm(row) > 1e-15 {
			t.Errorf("no-op SetSeed produced residual %v", row)
		}
	}
	o.SetSeed(3, 0) // flip 1 → 0: delta (+1, −1)
	row := o.res[3]
	if math.Abs(row[0]-1) > 1e-15 || math.Abs(row[1]+1) > 1e-15 {
		t.Errorf("flip delta = %v, want [1 -1]", row)
	}
}
