package residual

import (
	"factorgraph/internal/dense"
	"factorgraph/internal/exec"
	"factorgraph/internal/telemetry"
)

// Patch is a copy-on-write flush session over a base State for label
// patches: the serving engine queues seed deltas on it, flushes it OUTSIDE
// the engine write lock — readers keep serving the pre-patch beliefs from
// the untouched base meanwhile — and then applies the result under the
// write lock with Apply, which only swaps rows (or, for a promoted patch,
// whole matrices). That is the narrow-locking contract: propagation-scale
// work never runs under a lock readers contend on.
//
// A small patch stays in the sparse tier: residual rows copy-on-write from
// the base's sparse map, belief rows clone on first touch, and the drain is
// the same sequential exec.Drain loop overlays use. A wide patch — one
// whose frontier saturates or whose pushes exhaust the edge budget —
// promotes to a private dense view: the base beliefs are cloned wholesale
// (O(n·k), far below a propagation's O(m·k·T)) and the drain becomes
// exec.PullPass parallel rounds, with dense sweeps as the final fallback.
// Either way Flush converges, so the engine never discards its residual
// state on a flooding patch anymore; FellBack merely reports that sweeps
// finished the job.
//
// A Patch never mutates its base before Apply. The caller must serialize
// patch sessions against each other and Apply against every base access
// (the engine holds its patch mutex across the session and its write lock
// across Apply). Exactly one Apply or Abort per patch: a session whose
// result is discarded (the owner dropped or replaced the base mid-flush)
// must be Aborted so a promoted session's O(n·k) clones release eagerly.
type Patch struct {
	base *State

	xdel map[int32][]float64 // accumulated explicit-belief deltas

	// sparse copy-on-write tier
	rows          map[int32][]float64 // cloned belief rows
	res           map[int32][]float64 // patch residual rows (seeded from base rows)
	front         *exec.Frontier
	rowBuf, rhBuf []float64

	// private dense tier; non-nil once promoted
	df, dr *dense.Matrix
	dx     *dense.Matrix // cloned X̃ with deltas applied; built only for sweeps
	norms  []float64
	pull   *exec.PullPass

	// Trace, when set by the mutation path, records the flush tiers as
	// "residual.flush" / "exec.drain" / "exec.pull" spans.
	Trace *telemetry.Trace
}

// BeginPatch opens a patch session. If the base's dense residual tier is
// resident (a bounded flush stopped mid-drain), the session starts
// promoted so the retained residual is carried exactly.
func (s *State) BeginPatch() *Patch {
	p := &Patch{
		base:   s,
		xdel:   make(map[int32][]float64),
		rowBuf: make([]float64, s.k),
		rhBuf:  make([]float64, s.k),
	}
	if s.r != nil {
		p.df = s.f.Clone()
		p.dr = s.r.Clone()
		p.norms = append([]float64(nil), s.norms...)
		p.pull = exec.NewPullPass(s.w, s.hScaled, p.df, p.dr, p.norms, s.opts.Tol, s.run)
		return p
	}
	p.rows = make(map[int32][]float64)
	p.res = make(map[int32][]float64)
	p.front = exec.NewFrontier(s.opts.Tol, s.promoteAt)
	return p
}

// resRow returns the patch's residual row for node, seeding it from the
// base's retained row so sub-tolerance mass participates in the flush.
func (p *Patch) resRow(node int32) []float64 {
	row, ok := p.res[node]
	if !ok {
		if b, had := p.base.sRows[node]; had {
			row = append([]float64(nil), b...)
		} else {
			row = make([]float64, p.base.k)
		}
		p.res[node] = row
	}
	return row
}

// beliefRow returns the writable (cloned) belief row for node.
func (p *Patch) beliefRow(node int32) []float64 {
	row, ok := p.rows[node]
	if !ok {
		row = append([]float64(nil), p.base.f.Row(int(node))...)
		p.rows[node] = row
	}
	return row
}

// AddDelta queues an explicit-belief change (newXRow − oldXRow, uncentered
// space) for node. The base is untouched; X̃ catches up at Apply.
func (p *Patch) AddDelta(node int, delta []float64) {
	d, ok := p.xdel[int32(node)]
	if !ok {
		d = make([]float64, p.base.k)
		p.xdel[int32(node)] = d
	}
	for j, v := range delta {
		d[j] += v
	}
	if p.df != nil {
		rRow := p.dr.Row(node)
		for j, v := range delta {
			rRow[j] += v
		}
		p.norms[node] = infNorm(rRow)
		return
	}
	row := p.resRow(int32(node))
	for j, v := range delta {
		row[j] += v
	}
	p.front.Add(int32(node), infNorm(row))
}

// AddResidual queues a raw residual delta for node — no explicit-belief
// change. The topology-mutation path lands edge perturbations here: an
// edge-weight change modifies A·F, not X̃, so only R moves.
func (p *Patch) AddResidual(node int, delta []float64) {
	if p.df != nil {
		rRow := p.dr.Row(node)
		for j, v := range delta {
			rRow[j] += v
		}
		p.norms[node] = infNorm(rRow)
		return
	}
	row := p.resRow(int32(node))
	for j, v := range delta {
		row[j] += v
	}
	p.front.Add(int32(node), infNorm(row))
}

// AddEdgeDelta seeds the residual perturbation of an edge-weight change on
// the undirected edge (u, v): with ΔW carrying dw at (u,v) and (v,u), the
// residual invariant R = X̃ + εW F H̃ − F shifts by ΔR = ε·ΔW·F·H̃ — i.e.
// dw·(F_v·H̃ε) lands on row u and dw·(F_u·H̃ε) on row v (a single diagonal
// term when u == v). F here is the base's pre-flush beliefs, exactly the F
// the invariant holds for. The caller must have already swapped the
// mutated adjacency into the base (State.SetAdj) so the flush drains
// against the new topology.
func (p *Patch) AddEdgeDelta(u, v int, dw float64) {
	s := p.base
	buf := make([]float64, s.k)
	mulRowH(buf, s.f.Row(v), s.hScaled.Data, s.k)
	for j := range buf {
		buf[j] *= dw
	}
	p.AddResidual(u, buf)
	if u == v {
		return
	}
	mulRowH(buf, s.f.Row(u), s.hScaled.Data, s.k)
	for j := range buf {
		buf[j] *= dw
	}
	p.AddResidual(v, buf)
}

// promote switches the session to its private dense view: base beliefs are
// cloned wholesale, base and patch residual rows fold into a dense array,
// and the sparse session storage is dropped.
func (p *Patch) promote() {
	if p.df != nil {
		return
	}
	p.promoteForSweep()
	s := p.base
	p.pull = exec.NewPullPass(s.w, s.hScaled, p.df, p.dr, p.norms, s.opts.Tol, s.run)
}

// promoteForSweep is promote without the PullPass scratch: a session that
// goes straight to dense sweeps never drains node-at-a-time, and the
// sweep's first recomputation regenerates the residual from (X̃+Δ, F)
// anyway — the exact invariant makes the folded rows a consistency nicety,
// not an input.
func (p *Patch) promoteForSweep() {
	if p.df != nil {
		return
	}
	mPromotions.Inc()
	s := p.base
	p.df = s.f.Clone()
	p.dr = dense.New(s.n, s.k)
	p.norms = make([]float64, s.n)
	for node, row := range s.sRows {
		copy(p.dr.Row(int(node)), row)
		p.norms[node] = infNorm(row)
	}
	for node, row := range p.res { // patch rows already include base content
		copy(p.dr.Row(int(node)), row)
		p.norms[node] = infNorm(row)
	}
	for node, row := range p.rows {
		copy(p.df.Row(int(node)), row)
	}
	p.rows, p.res = nil, nil
	p.front = nil
}

// ensureDX materializes the patched explicit-belief matrix for sweeps.
func (p *Patch) ensureDX() *dense.Matrix {
	if p.dx == nil {
		p.dx = p.base.x.Clone()
		for node, d := range p.xdel {
			row := p.dx.Row(int(node))
			for j, v := range d {
				row[j] += v
			}
		}
	}
	return p.dx
}

// Flush drains the queued deltas to the base's tolerance. It always
// converges: a frontier past the promotion threshold switches to parallel
// pull rounds on the private dense view, and one past the edge budget
// finishes with dense sweeps there (FellBack reports it). Safe to call
// with concurrent readers on the base.
func (p *Patch) Flush() Stats {
	s := p.base
	var st Stats
	defer func() { recordStats(st) }()
	doneFlush := p.Trace.Start("residual.flush")
	defer doneFlush()
	if p.df == nil {
		pushed, edges, outcome := exec.DrainTraced(p.Trace, p.front, patchKernel{p}, s.edgeBudget)
		st.Pushed += pushed
		st.Edges += edges
		switch outcome {
		case exec.Drained:
			return st
		case exec.BudgetExceeded:
			st.FellBack = true
			p.promoteForSweep()
			p.ensureDX()
			sw := sweepToTol(s.run, s.w, s.hScaled, p.dx, p.df, p.dr, p.norms,
				s.opts.Tol*sweepSlack, s.opts.MaxSweeps)
			st.Sweeps, st.MaxResidual = sw.Sweeps, sw.MaxResidual
			return st
		case exec.Saturated:
			p.promote()
		}
	}
	active := activeFromNorms(p.norms, s.opts.Tol)
	budget := s.edgeBudget - st.Edges
	if budget < 1 {
		budget = 1
	}
	donePull := p.Trace.Start("exec.pull")
	pushed, edges, rounds, remaining := p.pull.Drain(active, budget)
	donePull()
	st.Pushed += pushed
	st.Edges += edges
	st.Rounds += rounds
	if remaining != nil {
		st.FellBack = true
		p.ensureDX()
		sw := sweepToTol(s.run, s.w, s.hScaled, p.dx, p.df, p.dr, p.norms,
			s.opts.Tol*sweepSlack, s.opts.MaxSweeps)
		st.Sweeps, st.MaxResidual = sw.Sweeps, sw.MaxResidual
	}
	return st
}

// Apply merges the flushed session into the base. The caller must hold the
// lock that excludes every base reader and mutator; the work here is row
// copies for a sparse patch and pointer swaps for a promoted one — never
// propagation.
func (p *Patch) Apply() {
	s := p.base
	for node, d := range p.xdel {
		row := s.x.Row(int(node))
		for j, v := range d {
			row[j] += v
		}
	}
	if p.df != nil {
		s.f = p.df
		// The private dense residual supersedes whatever tier the base
		// held; carry still-dirty rows (post-sweep there normally are none)
		// into a fresh sparse tier and drop the rest — the same
		// Tol-bounded discard as a demotion.
		s.r, s.norms, s.pull = nil, nil, nil
		s.sRows = make(map[int32][]float64)
		s.front.Reset()
		dropped := 0.0
		for i, norm := range p.norms {
			if norm > s.opts.Tol {
				s.sRows[int32(i)] = append([]float64(nil), p.dr.Row(i)...)
				s.front.Add(int32(i), norm)
			} else if norm > 0 {
				dropped += norm
			}
		}
		s.addDropped(dropped)
		return
	}
	for node, row := range p.rows {
		copy(s.f.Row(int(node)), row)
	}
	for node, row := range p.res {
		if infNorm(row) > 0 {
			s.sRows[node] = row
		} else {
			delete(s.sRows, node)
		}
	}
	s.compact()
}

// Abort ends the session without merging anything into the base: every
// session buffer — including a promoted session's O(n·k) belief/residual
// clones — is released eagerly rather than pinned until the session header
// itself is collected. The base is untouched (a Patch never writes it
// before Apply), so aborting a flushed session simply discards the flush.
// The session is dead afterwards; further use panics.
func (p *Patch) Abort() {
	p.base = nil
	p.xdel = nil
	p.rows, p.res, p.front = nil, nil, nil
	p.rowBuf, p.rhBuf = nil, nil
	p.df, p.dr, p.dx = nil, nil, nil
	p.norms, p.pull = nil, nil
}

// patchKernel is the copy-on-write push step of a sparse-tier patch.
type patchKernel struct{ p *Patch }

func (k patchKernel) Norm(node int32) float64 {
	if row, ok := k.p.res[node]; ok {
		return infNorm(row)
	}
	return infNorm(k.p.base.sRows[node])
}

func (k patchKernel) Push(node int32, dirtied func(int32, float64)) int {
	p := k.p
	base := p.base
	kk := base.k
	rRow := p.resRow(node)
	fRow := p.beliefRow(node)
	for j := 0; j < kk; j++ {
		fRow[j] += rRow[j]
	}
	copy(p.rowBuf, rRow)
	for j := 0; j < kk; j++ {
		rRow[j] = 0
	}
	mulRowH(p.rhBuf, p.rowBuf, base.hScaled.Data, kk)
	cols, wts := base.w.Row(int(node))
	for q, v := range cols {
		wv := 1.0
		if wts != nil {
			wv = wts[q]
		}
		nRow := p.resRow(v)
		norm := 0.0
		for j := 0; j < kk; j++ {
			nRow[j] += wv * p.rhBuf[j]
			a := nRow[j]
			if a < 0 {
				a = -a
			}
			if a > norm {
				norm = a
			}
		}
		dirtied(v, norm)
	}
	return len(cols)
}
