// Package residual implements push-based (Gauss–Southwell-style) residual
// propagation for LinBP: an incremental solver for the fixed point
//
//	F* = X̃ + εW F* H̃
//
// that the dense iteration of internal/propagation approaches one full
// sweep at a time. The State keeps the current belief matrix F, the
// explicit-belief matrix X̃ and a per-node residual matrix R with the
// invariant
//
//	F* = F + (I − A)⁻¹ R,   A·M := εW M H̃,
//
// so beliefs are exact up to the residual mass still queued. When seed
// labels change, the change lands as a sparse delta in R; Flush then pushes
// residual rows whose ∞-norm exceeds the tolerance to their neighbors,
// largest first (a priority work-queue), touching only the perturbed
// neighborhood instead of re-running O(m·k·iters) over the whole graph.
// Because ε is chosen so that ρ(A) = s < 1 (Eq. 2 of the paper), pushed
// mass contracts geometrically and the loop terminates.
//
// The same push kernel powers two layers above:
//
//   - the serving Engine keeps one live State per graph so PATCH /labels
//     costs o(Δ) instead of a full re-propagation, and
//   - what-if queries run on an Overlay — copy-on-write belief/residual
//     rows over a shared base State — so each overlay clones only the
//     frontier its extra seeds actually touch.
//
// A State is NOT safe for concurrent mutation; the Engine serializes
// Init/AddDelta/Flush behind its write lock and reads behind its read lock.
// Overlays never mutate their base, so any number of them may run
// concurrently over one State as long as the base is not flushed meanwhile.
package residual

import (
	"container/heap"
	"fmt"
	"math"

	"factorgraph/internal/dense"
	"factorgraph/internal/propagation"
	"factorgraph/internal/sparse"
)

// DefaultTol is the per-node residual ∞-norm below which residual mass is
// left unpushed. Leftover mass perturbs final beliefs by O(tol/(1−s)) per
// node in the worst case; 1e-8 keeps serving beliefs well inside the 1e-6
// agreement budget the parity tests enforce.
const DefaultTol = 1e-8

// Options configures a State. The zero value matches the serving engine's
// propagation settings (s = 0.5, centered) with DefaultTol.
type Options struct {
	// S is the LinBP convergence parameter s ∈ (0,1); default 0.5. The
	// compatibility matrix is scaled by ε = S/(ρ(W)·ρ(H̃)) exactly as in
	// internal/propagation, so the fixed point is the same.
	S float64
	// Center centers X and H̃ around 1/k before propagating (Theorem 3.1:
	// labels are identical either way). Default true; set CenterOff to
	// disable.
	CenterOff bool
	// Tol is the per-node residual ∞-norm threshold; rows at or below it
	// are not pushed. 0 means DefaultTol.
	Tol float64
	// MaxSweeps bounds the dense Jacobi sweeps of Init and of the push
	// fallback; default 100 (with s = 0.5 the residual contracts by ~s per
	// sweep, so 100 is far past any realistic tolerance).
	MaxSweeps int
	// SpectralIters bounds the power iterations for ρ(W); default 50.
	SpectralIters int
	// EdgeBudgetFactor bounds a single Flush: once a push pass has touched
	// more than EdgeBudgetFactor·nnz(W) edges it abandons the queue and
	// finishes with dense sweeps (at that point a sweep is cheaper than
	// continuing node-at-a-time). Default 4.
	EdgeBudgetFactor float64
}

func (o *Options) defaults() {
	if o.S == 0 {
		o.S = 0.5
	}
	if o.Tol == 0 {
		o.Tol = DefaultTol
	}
	if o.MaxSweeps == 0 {
		// Residual mass decays like s^t per sweep, so reaching Tol from
		// O(1) mass needs ~log_s(Tol) sweeps; slack plus a floor of 100
		// covers mid-range s. A fixed cap independent of s would silently
		// stop short of the tolerance for s close to 1.
		o.MaxSweeps = int(math.Ceil(math.Log(o.Tol)/math.Log(o.S))) + 10
		if o.MaxSweeps < 100 {
			o.MaxSweeps = 100
		}
	}
	if o.SpectralIters == 0 {
		o.SpectralIters = 50
	}
	if o.EdgeBudgetFactor == 0 {
		o.EdgeBudgetFactor = 4
	}
}

// Stats reports the work one Init or Flush performed; the Engine surfaces
// them through its own counters and the HTTP layer puts them in responses.
type Stats struct {
	// Pushed is the number of node pushes (a node may be pushed more than
	// once as returning mass re-raises its residual).
	Pushed int
	// Edges is the number of edge traversals performed by pushes.
	Edges int
	// Sweeps is the number of dense full-graph sweeps (Init always sweeps;
	// Flush sweeps only after exhausting its edge budget).
	Sweeps int
	// FellBack reports that Flush abandoned the push queue for dense
	// sweeps (the perturbation had spread past the point where push-based
	// propagation is cheaper).
	FellBack bool
	// MaxResidual is the largest per-node residual ∞-norm left behind.
	MaxResidual float64
}

// State is a resident incremental propagation context for one (W, H) pair.
type State struct {
	w    *sparse.CSR
	opts Options
	k    int

	hScaled *dense.Matrix // centered, ε-scaled H̃ (same as propagation.State)

	x *dense.Matrix // centered explicit beliefs, kept in sync via AddDelta
	f *dense.Matrix // current belief estimate
	r *dense.Matrix // residual rows

	norms []float64 // cached residual ∞-norm per node
	inq   []bool    // node currently enqueued
	pq    nodeHeap

	fh, wfh *dense.Matrix // dense-sweep scratch
	rowBuf  []float64     // push scratch: the row being pushed
	rhBuf   []float64     // push scratch: row × H̃

	edgeBudget int
}

// NewState validates shapes, computes the ε-scaled compatibility matrix
// (sharing the CSR-level ρ(W) cache with internal/propagation) and
// allocates the n×k working set. Call Init before anything else.
func NewState(w *sparse.CSR, h *dense.Matrix, opts Options) (*State, error) {
	if h.Rows != h.Cols {
		return nil, fmt.Errorf("residual: H is %d×%d, want square", h.Rows, h.Cols)
	}
	if w.N == 0 {
		return nil, fmt.Errorf("residual: empty graph")
	}
	if opts.S < 0 || opts.S >= 1 {
		return nil, fmt.Errorf("residual: convergence parameter s=%v outside (0,1)", opts.S)
	}
	if opts.Tol < 0 {
		return nil, fmt.Errorf("residual: negative tolerance %v", opts.Tol)
	}
	opts.defaults()
	k := h.Rows
	hUse := h.Clone()
	if !opts.CenterOff {
		hUse = dense.AddScalar(hUse, -1.0/float64(k))
	}
	eps, err := propagation.ScalingFactor(w, hUse, opts.S, opts.SpectralIters)
	if err != nil {
		return nil, err
	}
	s := &State{
		w:       w,
		opts:    opts,
		k:       k,
		hScaled: dense.Scale(hUse, eps),
		x:       dense.New(w.N, k),
		f:       dense.New(w.N, k),
		r:       dense.New(w.N, k),
		norms:   make([]float64, w.N),
		inq:     make([]bool, w.N),
		fh:      dense.New(w.N, k),
		wfh:     dense.New(w.N, k),
		rowBuf:  make([]float64, k),
		rhBuf:   make([]float64, k),
	}
	s.edgeBudget = int(opts.EdgeBudgetFactor * float64(w.NNZ()))
	if s.edgeBudget < w.NNZ() {
		s.edgeBudget = w.NNZ()
	}
	return s, nil
}

// K returns the class count the state was built for.
func (s *State) K() int { return s.k }

// N returns the node count.
func (s *State) N() int { return s.w.N }

// Tol returns the configured per-node residual tolerance.
func (s *State) Tol() float64 { return s.opts.Tol }

// Init solves for the fixed point from scratch: it installs x (the
// explicit-belief matrix, uncentered) and runs dense Jacobi sweeps
// F ← X̃ + εWFH̃ until every node's residual is at or below the tolerance.
// This is the one full-graph propagation the incremental engine pays per
// (graph, H) pair; everything after is o(Δ).
func (s *State) Init(x *dense.Matrix) (Stats, error) {
	if x.Rows != s.w.N || x.Cols != s.k {
		return Stats{}, fmt.Errorf("residual: X is %d×%d, state wants %d×%d", x.Rows, x.Cols, s.w.N, s.k)
	}
	s.x.CopyFrom(x)
	if !s.opts.CenterOff {
		shift := 1.0 / float64(s.k)
		for i := range s.x.Data {
			s.x.Data[i] -= shift
		}
	}
	s.f.CopyFrom(s.x)
	for i := range s.r.Data {
		s.r.Data[i] = 0
	}
	for i := range s.norms {
		s.norms[i] = 0
	}
	s.pq = s.pq[:0]
	for i := range s.inq {
		s.inq[i] = false
	}
	return s.sweepToTol(), nil
}

// sweepToTol repeatedly applies one dense Jacobi step f ← f + r followed by
// a residual recomputation r ← x + A·f − f, until the largest per-node
// residual ∞-norm is at or below the tolerance (or MaxSweeps is hit).
// Precondition: s.r holds the residual of s.f — which is trivially true
// right after Init seeds f = x̃, r = 0 once the first recomputation runs, so
// the loop recomputes first and absorbs second.
func (s *State) sweepToTol() Stats {
	var st Stats
	for {
		// r ← x̃ + εW f H̃ − f
		dense.MulInto(s.fh, s.f, s.hScaled)
		s.w.MulDenseInto(s.wfh, s.fh)
		maxNorm := 0.0
		k := s.k
		for i := 0; i < s.w.N; i++ {
			rRow := s.r.Data[i*k : (i+1)*k]
			fRow := s.f.Data[i*k : (i+1)*k]
			xRow := s.x.Data[i*k : (i+1)*k]
			wRow := s.wfh.Data[i*k : (i+1)*k]
			norm := 0.0
			for j := 0; j < k; j++ {
				v := xRow[j] + wRow[j] - fRow[j]
				rRow[j] = v
				if v < 0 {
					v = -v
				}
				if v > norm {
					norm = v
				}
			}
			s.norms[i] = norm
			if norm > maxNorm {
				maxNorm = norm
			}
		}
		st.Sweeps++
		st.MaxResidual = maxNorm
		if maxNorm <= s.opts.Tol || st.Sweeps >= s.opts.MaxSweeps {
			return st
		}
		// f ← f + r (absorb the whole residual at once: a dense push). The
		// recomputation at the top of the next iteration replaces r, so the
		// (f, r) pair is consistent at every loop exit.
		for i := range s.f.Data {
			s.f.Data[i] += s.r.Data[i]
		}
	}
}

// AddDelta adds a sparse explicit-belief change to node's residual (and to
// the retained X̃): delta is newXRow − oldXRow in the uncentered space —
// centering is a constant shift, so deltas are identical either way. Call
// Flush afterwards to propagate; beliefs read between AddDelta and Flush
// simply predate the patch.
func (s *State) AddDelta(node int, delta []float64) {
	xRow := s.x.Row(node)
	rRow := s.r.Row(node)
	norm := 0.0
	for j, d := range delta {
		xRow[j] += d
		rRow[j] += d
		v := rRow[j]
		if v < 0 {
			v = -v
		}
		if v > norm {
			norm = v
		}
	}
	s.norms[node] = norm
	if norm > s.opts.Tol && !s.inq[node] {
		heap.Push(&s.pq, heapEntry{node: int32(node), norm: norm})
		s.inq[node] = true
	}
}

// heapFrontierMax is the queue size at which Flush abandons strict
// Gauss–Southwell ordering for round-synchronous active-set scans: the
// priority heap wins while the perturbation is a handful of nodes (it
// pushes the largest residuals first and often converges without ever
// growing the frontier), but once thousands of nodes are dirty the heap's
// per-edge overhead dwarfs the ordering benefit — sequential scans over an
// active list run at dense-sweep speed while still skipping every clean
// node.
const heapFrontierMax = 1024

// Flush pushes queued residual rows — largest ∞-norm first — until every
// node is at or below the tolerance. Each push absorbs the node's residual
// into its belief row and forwards ε·w(u,v)·(r H̃) to every neighbor,
// so the work is proportional to the perturbed neighborhood. Wide
// perturbations degrade gracefully twice: past heapFrontierMax queued nodes
// the strict priority order gives way to round-synchronous scans of the
// active set, and past EdgeBudgetFactor·nnz edge traversals Flush finishes
// with dense sweeps instead (cheaper at that point) and reports FellBack.
//
// On clean completion MaxResidual is left 0: the queue-drain itself
// guarantees every node is at or below Tol, and scanning all n norms to
// report the exact value would make the o(Δ) path Ω(n). It is populated
// only when dense sweeps ran (they track it for free); call the
// MaxResidual method for an on-demand exact scan.
func (s *State) Flush() Stats {
	st, _ := s.flush(true)
	return st
}

// FlushBounded is Flush without the dense-sweep fallback: once the edge
// budget is exhausted it stops and returns converged=false, leaving the
// residual invariant intact (F + (I−A)⁻¹R is unchanged, R just isn't
// drained). Callers that hold a lock other readers contend on — the
// serving engine flushes patches under its write lock — use this so a
// frontier that outgrew push economics never runs propagation-scale dense
// sweeps inside the lock; they discard the state and rebuild it outside.
func (s *State) FlushBounded() (Stats, bool) {
	return s.flush(false)
}

func (s *State) flush(sweepFallback bool) (Stats, bool) {
	var st Stats
	k := s.k
	for len(s.pq) > 0 {
		if len(s.pq) > heapFrontierMax {
			done := s.flushRounds(&st, sweepFallback)
			return st, done
		}
		top := heap.Pop(&s.pq).(heapEntry)
		u := int(top.node)
		s.inq[u] = false
		if s.norms[u] <= s.opts.Tol {
			continue // pushed down (or absorbed) since it was enqueued
		}
		// Absorb: F_u += R_u, R_u = 0.
		rRow := s.r.Row(u)
		fRow := s.f.Row(u)
		copy(s.rowBuf, rRow)
		for j := 0; j < k; j++ {
			fRow[j] += rRow[j]
			rRow[j] = 0
		}
		s.norms[u] = 0
		st.Pushed++
		// Forward: R_v += w(u,v) · (r · H̃scaled) for every neighbor v.
		// H̃scaled already carries ε, and W is symmetric so the row scan
		// of u yields exactly the in-edges of the update.
		rh := s.rhBuf
		for j := 0; j < k; j++ {
			acc := 0.0
			for c := 0; c < k; c++ {
				acc += s.rowBuf[c] * s.hScaled.Data[c*k+j]
			}
			rh[j] = acc
		}
		lo, hi := s.w.IndPtr[u], s.w.IndPtr[u+1]
		st.Edges += hi - lo
		for p := lo; p < hi; p++ {
			v := int(s.w.Indices[p])
			wv := 1.0
			if s.w.Data != nil {
				wv = s.w.Data[p]
			}
			nRow := s.r.Row(v)
			norm := 0.0
			for j := 0; j < k; j++ {
				nRow[j] += wv * rh[j]
				a := nRow[j]
				if a < 0 {
					a = -a
				}
				if a > norm {
					norm = a
				}
			}
			s.norms[v] = norm
			if norm > s.opts.Tol && !s.inq[v] {
				heap.Push(&s.pq, heapEntry{node: int32(v), norm: norm})
				s.inq[v] = true
			}
		}
		if st.Edges > s.edgeBudget {
			st.FellBack = true
			if !sweepFallback {
				// Leave the queue (and the residual invariant) intact;
				// the caller rebuilds densely outside its locks.
				return st, false
			}
			// The frontier has grown past the point where node-at-a-time
			// pushing beats a dense sweep; drain the queue and finish flat.
			s.pq = s.pq[:0]
			for i := range s.inq {
				s.inq[i] = false
			}
			sw := s.sweepToTol()
			st.Sweeps += sw.Sweeps
			st.MaxResidual = sw.MaxResidual
			return st, true
		}
	}
	return st, true
}

// flushRounds drains a wide frontier with level-synchronous passes over the
// active set: every dirty node is absorbed and forwarded once per round,
// newly-dirtied nodes join the next round. Per round the pending mass
// contracts by ~s (the same rate as a dense sweep) but only active rows are
// touched, and the sequential row scans avoid the heap's per-edge overhead.
// The edge budget still applies; past it the flush finishes densely (or,
// with sweepFallback false, stops and reports false).
func (s *State) flushRounds(st *Stats, sweepFallback bool) bool {
	k := s.k
	// Rebuild the frontier from the norm table; the heap's ordering is no
	// longer needed and its entries may be stale.
	s.pq = s.pq[:0]
	active := make([]int32, 0, 2*heapFrontierMax)
	for i := range s.inq {
		s.inq[i] = false
	}
	for i, norm := range s.norms {
		if norm > s.opts.Tol {
			active = append(active, int32(i))
			s.inq[i] = true
		}
	}
	next := make([]int32, 0, len(active))
	for len(active) > 0 {
		next = next[:0]
		for _, u32 := range active {
			u := int(u32)
			s.inq[u] = false
			if s.norms[u] <= s.opts.Tol {
				continue
			}
			rRow := s.r.Row(u)
			fRow := s.f.Row(u)
			copy(s.rowBuf, rRow)
			for j := 0; j < k; j++ {
				fRow[j] += rRow[j]
				rRow[j] = 0
			}
			s.norms[u] = 0
			st.Pushed++
			rh := s.rhBuf
			for j := 0; j < k; j++ {
				acc := 0.0
				for c := 0; c < k; c++ {
					acc += s.rowBuf[c] * s.hScaled.Data[c*k+j]
				}
				rh[j] = acc
			}
			lo, hi := s.w.IndPtr[u], s.w.IndPtr[u+1]
			st.Edges += hi - lo
			for p := lo; p < hi; p++ {
				v := int(s.w.Indices[p])
				wv := 1.0
				if s.w.Data != nil {
					wv = s.w.Data[p]
				}
				nRow := s.r.Row(v)
				norm := 0.0
				for j := 0; j < k; j++ {
					nRow[j] += wv * rh[j]
					a := nRow[j]
					if a < 0 {
						a = -a
					}
					if a > norm {
						norm = a
					}
				}
				s.norms[v] = norm
				if norm > s.opts.Tol && !s.inq[v] {
					next = append(next, int32(v))
					s.inq[v] = true
				}
			}
		}
		if st.Edges > s.edgeBudget {
			st.FellBack = true
			if !sweepFallback {
				// Re-queue the still-dirty nodes so the state stays
				// consistent for a caller that keeps it; inq marks exactly
				// the members of next.
				for _, v := range next {
					heap.Push(&s.pq, heapEntry{node: v, norm: s.norms[v]})
				}
				return false
			}
			for i := range s.inq {
				s.inq[i] = false
			}
			sw := s.sweepToTol()
			st.Sweeps += sw.Sweeps
			st.MaxResidual = sw.MaxResidual
			return true
		}
		active, next = next, active
	}
	return true
}

func (s *State) maxNorm() float64 {
	m := 0.0
	for _, v := range s.norms {
		if v > m {
			m = v
		}
	}
	return m
}

// Beliefs returns the live belief matrix. It aliases internal storage:
// callers must hold whatever lock serializes AddDelta/Flush, and must clone
// rows that need to outlive that lock.
func (s *State) Beliefs() *dense.Matrix { return s.f }

// Row returns node's live belief row (aliasing; see Beliefs).
func (s *State) Row(node int) []float64 { return s.f.Row(node) }

// XRow returns node's retained explicit-belief row in centered space
// (aliasing; see Beliefs). Overlays use it to turn "set this seed" into a
// delta against the current X.
func (s *State) XRow(node int) []float64 { return s.x.Row(node) }

// Centered reports whether the state works in centered coordinates (and
// therefore what space XRow rows live in).
func (s *State) Centered() bool { return !s.opts.CenterOff }

// MaxResidual returns the largest pending per-node residual ∞-norm — the
// quality bound on the current beliefs.
func (s *State) MaxResidual() float64 { return s.maxNorm() }

// heapEntry orders the work queue by residual ∞-norm at enqueue time
// (Gauss–Southwell selection). Norms may grow while queued; the pop-side
// re-check against the live norm keeps correctness independent of staleness.
type heapEntry struct {
	node int32
	norm float64
}

type nodeHeap []heapEntry

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].norm > h[j].norm }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(heapEntry)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
