// Package residual implements push-based (Gauss–Southwell-style) residual
// propagation for LinBP: an incremental solver for the fixed point
//
//	F* = X̃ + εW F* H̃
//
// that the dense iteration of internal/propagation approaches one full
// sweep at a time. The State keeps the current belief matrix F, the
// explicit-belief matrix X̃ and a per-node residual R with the invariant
//
//	F* = F + (I − A)⁻¹ R,   A·M := εW M H̃,
//
// so beliefs are exact up to the residual mass still queued. When seed
// labels change, the change lands as a sparse delta in R; Flush then pushes
// residual rows whose ∞-norm exceeds the tolerance to their neighbors,
// largest first, touching only the perturbed neighborhood instead of
// re-running O(m·k·iters) over the whole graph. Because ε is chosen so that
// ρ(A) = s < 1 (Eq. 2 of the paper), pushed mass contracts geometrically
// and the loop terminates.
//
// Scheduling lives in internal/exec and is tiered. A small frontier drains
// through exec.Drain — the sequential priority-queue push loop — over a
// compact sparse residual map holding only the dirty rows. Past a
// load-factor threshold the frontier saturates: the residual promotes to
// dense arrays and exec.PullPass drains it with level-synchronous PARALLEL
// pull rounds on the shared worker pool. When the frontier drains the dense
// tier is demoted and freed again, so an idle State holds two n×k matrices
// (X̃ and F), not five — the sparse tier is what keeps a quiescent
// Incremental engine's footprint near a plain engine's.
//
// The demotion discards residual mass at or below the tolerance (retaining
// it would keep the dense array alive). Each discard perturbs the fixed
// point by at most Tol·s/(1−s) per node, and the sparse tier's compaction
// applies the same bound; DefaultTol keeps the cumulative drift of any
// realistic patch sequence orders of magnitude inside the 1e-6 agreement
// budget the parity tests enforce. FlushBounded never discards: a
// non-converged bounded flush keeps the dense tier resident so the
// invariant stays exact for the caller.
//
// The same push kernel powers three layers above:
//
//   - the serving Engine keeps one live State per graph so PATCH /labels
//     costs o(Δ) instead of a full re-propagation,
//   - label patches flush on a Patch — a copy-on-write session over the
//     base State — so the engine's write lock is held only for the final
//     row swap, not the propagation work, and
//   - what-if queries run on an Overlay — copy-on-write belief/residual
//     rows over a shared base State — so each overlay clones only the
//     frontier its extra seeds actually touch.
//
// A State is NOT safe for concurrent mutation; the Engine serializes
// Init/AddDelta/Flush/Patch.Apply behind its write lock and reads behind
// its read lock. Overlays and Patches never mutate their base, so any
// number of them may run concurrently over one State as long as the base
// is not mutated meanwhile.
package residual

import (
	"fmt"
	"math"
	"sync/atomic"

	"factorgraph/internal/dense"
	"factorgraph/internal/exec"
	"factorgraph/internal/propagation"
	"factorgraph/internal/sparse"
)

// DefaultTol is the per-node residual ∞-norm below which residual mass is
// left unpushed. Leftover mass perturbs final beliefs by O(tol/(1−s)) per
// node in the worst case; 1e-8 keeps serving beliefs well inside the 1e-6
// agreement budget the parity tests enforce.
const DefaultTol = 1e-8

// sweepSlack tightens the dense-sweep convergence target below the push
// tolerance: sweeps run until the residual is at or below Tol·sweepSlack.
// Sweeps end in a demotion that discards the leftover sub-threshold mass,
// so the tighter target shrinks what a fallback discards to a quarter of a
// push drain's — two extra sweeps at s = 0.5.
const sweepSlack = 0.25

// Options configures a State. The zero value matches the serving engine's
// propagation settings (s = 0.5, centered) with DefaultTol.
type Options struct {
	// S is the LinBP convergence parameter s ∈ (0,1); default 0.5. The
	// compatibility matrix is scaled by ε = S/(ρ(W)·ρ(H̃)) exactly as in
	// internal/propagation, so the fixed point is the same.
	S float64
	// Center centers X and H̃ around 1/k before propagating (Theorem 3.1:
	// labels are identical either way). Default true; set CenterOff to
	// disable.
	CenterOff bool
	// Tol is the per-node residual ∞-norm threshold; rows at or below it
	// are not pushed. 0 means DefaultTol.
	Tol float64
	// MaxSweeps bounds the dense Jacobi sweeps of Init and of the push
	// fallback; default 100 (with s = 0.5 the residual contracts by ~s per
	// sweep, so 100 is far past any realistic tolerance).
	MaxSweeps int
	// SpectralIters bounds the power iterations for ρ(W); default 50.
	SpectralIters int
	// EdgeBudgetFactor bounds a single Flush: once a push pass has touched
	// more than EdgeBudgetFactor·nnz(W) edges it abandons the queue and
	// finishes with dense sweeps (at that point a sweep is cheaper than
	// continuing node-at-a-time). Default 4.
	EdgeBudgetFactor float64
	// Workers caps the parallelism of saturated-round drains and dense
	// sweeps (0 = all available workers, 1 = sequential). Benchmarks use 1
	// as the like-for-like sequential baseline.
	Workers int
	// Schedule sets the drain-schedule thresholds of saturated drains. The
	// zero value uses the static defaults; the engine passes the per-epoch
	// measured schedule from exec.Tune.
	Schedule exec.Schedule
}

func (o *Options) defaults() {
	if o.S == 0 {
		o.S = 0.5
	}
	if o.Tol == 0 {
		o.Tol = DefaultTol
	}
	if o.MaxSweeps == 0 {
		// Residual mass decays like s^t per sweep, so reaching Tol from
		// O(1) mass needs ~log_s(Tol) sweeps; slack plus a floor of 100
		// covers mid-range s. A fixed cap independent of s would silently
		// stop short of the tolerance for s close to 1.
		o.MaxSweeps = int(math.Ceil(math.Log(o.Tol*sweepSlack)/math.Log(o.S))) + 10
		if o.MaxSweeps < 100 {
			o.MaxSweeps = 100
		}
	}
	if o.SpectralIters == 0 {
		o.SpectralIters = 50
	}
	if o.EdgeBudgetFactor == 0 {
		o.EdgeBudgetFactor = 4
	}
}

// Stats reports the work one Init or Flush performed; the Engine surfaces
// them through its own counters and the HTTP layer puts them in responses.
type Stats struct {
	// Pushed is the number of node pushes (a node may be pushed more than
	// once as returning mass re-raises its residual).
	Pushed int
	// Edges is the number of edge traversals performed by pushes.
	Edges int
	// Sweeps is the number of dense full-graph sweeps (Init always sweeps;
	// Flush sweeps only after exhausting its edge budget).
	Sweeps int
	// Rounds is the number of parallel pull rounds run by a saturated
	// drain (0 when the frontier never outgrew the priority queue).
	Rounds int
	// FellBack reports that Flush abandoned the push queue for dense
	// sweeps (the perturbation had spread past the point where push-based
	// propagation is cheaper).
	FellBack bool
	// MaxResidual is the largest per-node residual ∞-norm left behind.
	MaxResidual float64
}

// State is a resident incremental propagation context for one (W, H) pair.
// On mutable-topology engines W is a delta overlay (internal/delta): edge
// mutations swap in a new adjacency epoch with SetAdj and land their
// residual perturbation through Patch.AddEdgeDelta, so the same push
// machinery converges label patches and topology patches alike.
type State struct {
	w    exec.RowIterator
	n    int
	opts Options
	k    int

	hScaled *dense.Matrix // centered, ε-scaled H̃ (same as propagation.State)

	x *dense.Matrix // centered explicit beliefs, kept in sync via AddDelta
	f *dense.Matrix // current belief estimate

	run       exec.Runner
	front     *exec.Frontier
	promoteAt int

	// Sparse residual tier: the only residual storage while the frontier
	// is small. Rows are exact residual rows; absent means zero.
	sRows map[int32][]float64

	// Dense residual tier; non-nil while promoted (saturated drains,
	// sweeps, or a bounded flush that stopped mid-drain).
	r     *dense.Matrix
	norms []float64
	pull  *exec.PullPass

	rowBuf []float64 // push scratch: the row being pushed
	rhBuf  []float64 // push scratch: row × H̃

	edgeBudget int

	// droppedMass accumulates the residual ∞-norm mass discarded by
	// demotions, sparse-tier compactions and patch applies — the numeric
	// cost of the Tol-bounded discards the package comment bounds at
	// Tol·s/(1−s) per node per discard. Float64 bits, CAS-added: patch
	// sessions flush outside the engine locks, so plain arithmetic would
	// race with a concurrent health read.
	droppedMass atomic.Uint64
}

// NewState validates shapes, computes the ε-scaled compatibility matrix
// (sharing the CSR-level ρ(W) cache with internal/propagation) and
// allocates the belief/explicit-belief working set (the residual tier
// starts empty). Call Init before anything else.
func NewState(w *sparse.CSR, h *dense.Matrix, opts Options) (*State, error) {
	if w.N == 0 {
		return nil, fmt.Errorf("residual: empty graph")
	}
	iters := opts.SpectralIters
	if iters <= 0 {
		iters = 50
	}
	return NewStateOn(w, h, opts, w.SpectralRadiusCached(iters))
}

// NewStateOn is NewState over an arbitrary RowIterator adjacency with a
// caller-supplied ρ(W). The mutable-topology engine builds its state over
// the delta overlay with ρ pinned at the last compaction epoch, so the
// fixed point between compactions is exactly defined (the pinned scaling
// over the live topology) instead of drifting with every edge.
func NewStateOn(w exec.RowIterator, h *dense.Matrix, opts Options, rhoW float64) (*State, error) {
	if h.Rows != h.Cols {
		return nil, fmt.Errorf("residual: H is %d×%d, want square", h.Rows, h.Cols)
	}
	n := w.Dim()
	if n == 0 {
		return nil, fmt.Errorf("residual: empty graph")
	}
	if opts.S < 0 || opts.S >= 1 {
		return nil, fmt.Errorf("residual: convergence parameter s=%v outside (0,1)", opts.S)
	}
	if opts.Tol < 0 {
		return nil, fmt.Errorf("residual: negative tolerance %v", opts.Tol)
	}
	opts.defaults()
	k := h.Rows
	hUse := h.Clone()
	if !opts.CenterOff {
		hUse = dense.AddScalar(hUse, -1.0/float64(k))
	}
	eps, err := propagation.ScalingFactorWithRho(rhoW, hUse, opts.S)
	if err != nil {
		return nil, err
	}
	s := &State{
		w:         w,
		n:         n,
		opts:      opts,
		k:         k,
		hScaled:   dense.Scale(hUse, eps),
		x:         dense.New(n, k),
		f:         dense.New(n, k),
		run:       exec.Runner{Workers: opts.Workers},
		promoteAt: promoteThreshold(n),
		sRows:     make(map[int32][]float64),
		rowBuf:    make([]float64, k),
		rhBuf:     make([]float64, k),
	}
	s.front = exec.NewFrontier(opts.Tol, s.promoteAt)
	s.resetEdgeBudget()
	return s, nil
}

// resetEdgeBudget re-derives the flush edge budget from the CURRENT
// stored-entry count; SetAdj calls it so the budget tracks a mutating
// topology.
func (s *State) resetEdgeBudget() {
	nnz := s.w.NNZ()
	s.edgeBudget = int(s.opts.EdgeBudgetFactor * float64(nnz))
	if s.edgeBudget < nnz {
		s.edgeBudget = nnz
	}
}

// SetAdj swaps the adjacency the state pushes over — the topology-mutation
// path publishes each new delta-overlay epoch here BEFORE flushing the
// edge perturbation, so the drain converges against the mutated graph.
// The caller must hold the lock that excludes every reader and serialize
// against flushes; the new adjacency must have Dim() == N() (grow first
// via Grow for node additions).
func (s *State) SetAdj(w exec.RowIterator) {
	s.w = w
	s.resetEdgeBudget()
	if s.r != nil {
		// A resident dense tier drains through a PullPass that caches the
		// adjacency (and sizes its scratch from it): rebuild it over the
		// new epoch. A preceding Grow discarded the old pass, so this is
		// also where a grown state gets its correctly-sized scratch.
		s.pull = s.newPull()
	}
}

// SetSchedule installs new drain thresholds (per-epoch tuner output). The
// caller must serialize against flushes, same as SetAdj.
func (s *State) SetSchedule(sched exec.Schedule) {
	s.opts.Schedule = sched
	if s.pull != nil {
		s.pull.SetSchedule(sched)
	}
}

// newPull builds a PullPass over the current adjacency/storage with the
// state's schedule applied.
func (s *State) newPull() *exec.PullPass {
	p := exec.NewPullPass(s.w, s.hScaled, s.f, s.r, s.norms, s.opts.Tol, s.run)
	p.SetSchedule(s.opts.Schedule)
	return p
}

// Permute renumbers every node-indexed structure of the state by
// newID[old] = new — the locality-aware compaction path re-orders the
// graph at an epoch swap and carries the resident solver state across
// instead of discarding the o(Δ) machinery. The dense-tier PullPass is
// dropped; the caller must follow with SetAdj (the permuted epoch), which
// rebuilds it — the same contract Grow has. Beliefs, residuals and the
// fixed point are unchanged up to row order.
func (s *State) Permute(newID []int32) {
	if len(newID) != s.n {
		panic(fmt.Sprintf("residual: Permute map length %d, want %d", len(newID), s.n))
	}
	s.x = permuteMatrix(s.x, newID)
	s.f = permuteMatrix(s.f, newID)
	if s.r != nil {
		s.r = permuteMatrix(s.r, newID)
		norms := make([]float64, s.n)
		for old, nn := range newID {
			norms[nn] = s.norms[old]
		}
		s.norms = norms
		s.pull = nil
	}
	if len(s.sRows) > 0 {
		rows := make(map[int32][]float64, len(s.sRows))
		for node, row := range s.sRows {
			rows[newID[node]] = row
		}
		s.sRows = rows
	}
	// The frontier stores node ids; rebuild it from the renumbered rows.
	s.front.Reset()
	for node, row := range s.sRows {
		s.front.Add(node, infNorm(row))
	}
}

// permuteMatrix returns m with row i moved to newID[i].
func permuteMatrix(m *dense.Matrix, newID []int32) *dense.Matrix {
	out := dense.New(m.Rows, m.Cols)
	k := m.Cols
	for old := 0; old < m.Rows; old++ {
		copy(out.Data[int(newID[old])*k:(int(newID[old])+1)*k], m.Data[old*k:(old+1)*k])
	}
	return out
}

// Grow extends the state to n nodes (appended ids, no edges yet — the
// caller wires them afterwards through its delta overlay + AddEdgeDelta).
// New rows start at the fixed point of an isolated node: X̃ row (centered
// zero) with zero residual. The caller must hold its write lock.
func (s *State) Grow(n int) {
	if n <= s.n {
		return
	}
	fill := 0.0
	if !s.opts.CenterOff {
		fill = -1.0 / float64(s.k)
	}
	s.x = growMatrix(s.x, n, fill)
	s.f = growMatrix(s.f, n, fill)
	if s.r != nil {
		s.r = growMatrix(s.r, n, 0)
		norms := make([]float64, n)
		copy(norms, s.norms)
		s.norms = norms
		// The old PullPass scratch is sized to the old n; drop it. The
		// caller's SetAdj (mandatory before the next flush — the adjacency
		// must match the grown dimension) builds the replacement.
		s.pull = nil
	}
	s.n = n
	s.promoteAt = promoteThreshold(n)
	if s.front.Len() == 0 {
		s.front = exec.NewFrontier(s.opts.Tol, s.promoteAt)
	}
}

// growMatrix returns a copy of m extended to n rows, new rows filled with
// fill.
func growMatrix(m *dense.Matrix, n int, fill float64) *dense.Matrix {
	out := dense.New(n, m.Cols)
	copy(out.Data, m.Data)
	if fill != 0 {
		for i := m.Rows * m.Cols; i < len(out.Data); i++ {
			out.Data[i] = fill
		}
	}
	return out
}

// Rescale moves the state to a new ε-scaling: H̃ε ← c·H̃ε with
// c = ε_new/ε_old. The fixed point changes globally, but the residual
// catches the whole difference in closed form — from R = X̃ + εWFH̃ − F,
// the new residual is R' = R + (c−1)·(R − X̃ + F), a pure elementwise
// O(n·k) transform with no matrix multiply. The state is left on the dense
// tier with every norm exact and typically most rows dirty; the caller
// drains it (the engine runs a Patch session outside its locks) to
// converge the beliefs to the rescaled fixed point. The compaction path
// uses this when the canonically re-derived ρ(W) moved ε.
func (s *State) Rescale(c float64) {
	if c == 1 {
		return
	}
	s.promote()
	k := s.k
	s.run.Rows(s.n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rRow := s.r.Data[i*k : (i+1)*k]
			xRow := s.x.Data[i*k : (i+1)*k]
			fRow := s.f.Data[i*k : (i+1)*k]
			norm := 0.0
			for j := 0; j < k; j++ {
				v := rRow[j] + (c-1)*(rRow[j]-xRow[j]+fRow[j])
				rRow[j] = v
				if v < 0 {
					v = -v
				}
				if v > norm {
					norm = v
				}
			}
			s.norms[i] = norm
		}
	})
	for i := range s.hScaled.Data {
		s.hScaled.Data[i] *= c
	}
}

// promoteThreshold is the frontier size at which a drain abandons the
// sparse tier: the priority queue wins while the perturbation is a handful
// of nodes (it pushes the largest residuals first and often converges
// without ever growing the frontier), but once the dirty set is a
// noticeable fraction of the graph the heap's per-edge overhead dwarfs the
// ordering benefit — promoted drains run parallel level-synchronous rounds
// over dense arrays at sweep-like speed while still skipping clean nodes.
func promoteThreshold(n int) int {
	t := n / 32
	if t < 1024 {
		t = 1024
	}
	return t
}

// K returns the class count the state was built for.
func (s *State) K() int { return s.k }

// N returns the node count.
func (s *State) N() int { return s.n }

// Tol returns the configured per-node residual tolerance.
func (s *State) Tol() float64 { return s.opts.Tol }

// Init solves for the fixed point from scratch: it installs x (the
// explicit-belief matrix, uncentered) and runs dense Jacobi sweeps
// F ← X̃ + εWFH̃ until every node's residual is at or below the tolerance.
// This is the one full-graph propagation the incremental engine pays per
// (graph, H) pair; everything after is o(Δ).
func (s *State) Init(x *dense.Matrix) (Stats, error) {
	if x.Rows != s.n || x.Cols != s.k {
		return Stats{}, fmt.Errorf("residual: X is %d×%d, state wants %d×%d", x.Rows, x.Cols, s.n, s.k)
	}
	s.x.CopyFrom(x)
	if !s.opts.CenterOff {
		shift := 1.0 / float64(s.k)
		for i := range s.x.Data {
			s.x.Data[i] -= shift
		}
	}
	s.f.CopyFrom(s.x)
	s.sRows = make(map[int32][]float64)
	s.front.Reset()
	s.promote()
	st := s.sweepToTol()
	s.demote()
	mSweeps.Add(int64(st.Sweeps))
	return st, nil
}

// promote moves the residual into the dense tier: allocates the n×k array,
// folds the sparse rows in, and builds the PullPass scratch.
func (s *State) promote() {
	if s.r != nil {
		return
	}
	s.promoteForSweep()
	s.pull = s.newPull()
}

// promoteForSweep is the cheap promotion for a drain that goes straight to
// dense sweeps: just the dense array and the norm table. The sparse rows
// are NOT folded in — the invariant R = X̃ + A·F − F holds exactly at all
// times, so the sweep's first recomputation regenerates the residual from
// (X̃, F) and anything folded would be overwritten unread. No PullPass is
// built either; sweeps never drain node-at-a-time.
func (s *State) promoteForSweep() {
	if s.r != nil {
		return
	}
	mPromotions.Inc()
	s.r = dense.New(s.n, s.k)
	s.norms = make([]float64, s.n)
	for node, row := range s.sRows {
		copy(s.r.Row(int(node)), row)
		s.norms[node] = infNorm(row)
	}
	s.sRows = make(map[int32][]float64)
	s.front.Reset()
}

// demote releases the dense tier, carrying any still-dirty rows back into
// the sparse map. Residual mass at or below the tolerance is discarded
// (see the package comment for the error bound); after a complete drain or
// sweep that is all of it, so an idle State holds no residual storage.
func (s *State) demote() {
	if s.r == nil {
		return
	}
	mDemotions.Inc()
	dropped := 0.0
	for i, norm := range s.norms {
		if norm > s.opts.Tol {
			row := append([]float64(nil), s.r.Row(i)...)
			s.sRows[int32(i)] = row
			s.front.Add(int32(i), norm)
		} else if norm > 0 {
			dropped += norm
		}
	}
	s.addDropped(dropped)
	s.r, s.norms, s.pull = nil, nil, nil
}

// sweepToTol runs the shared dense-sweep loop over the state's dense tier.
func (s *State) sweepToTol() Stats {
	return sweepToTol(s.run, s.w, s.hScaled, s.x, s.f, s.r, s.norms,
		s.opts.Tol*sweepSlack, s.opts.MaxSweeps)
}

// sweepToTol repeatedly applies one dense Jacobi step f ← f + r followed by
// a residual recomputation r ← x + A·f − f, until the largest per-node
// residual ∞-norm is at or below target (or maxSweeps is hit). The
// recompute-then-absorb order keeps the (f, r) pair consistent at every
// loop exit. State fallbacks and Patch fallbacks share it (a Patch passes
// its private clones); the scratch matrices are transient, so a quiescent
// state retains nothing from its last sweep.
func sweepToTol(run exec.Runner, w exec.RowIterator, hScaled, x, f, r *dense.Matrix, norms []float64, target float64, maxSweeps int) Stats {
	k := hScaled.Rows
	n := w.Dim()
	fh := dense.New(n, k)
	wfh := dense.New(n, k)
	var st Stats
	chunkMax := make([]float64, run.MaxChunks())
	for {
		for c := range chunkMax {
			chunkMax[c] = 0
		}
		// r ← x̃ + εW f H̃ − f, fused with the norm scan.
		run.DenseRound(w, f, hScaled, fh, wfh, func(chunk, lo, hi int) {
			maxNorm := chunkMax[chunk]
			for i := lo; i < hi; i++ {
				rRow := r.Data[i*k : (i+1)*k]
				fRow := f.Data[i*k : (i+1)*k]
				xRow := x.Data[i*k : (i+1)*k]
				wRow := wfh.Data[i*k : (i+1)*k]
				norm := 0.0
				for j := 0; j < k; j++ {
					v := xRow[j] + wRow[j] - fRow[j]
					rRow[j] = v
					if v < 0 {
						v = -v
					}
					if v > norm {
						norm = v
					}
				}
				norms[i] = norm
				if norm > maxNorm {
					maxNorm = norm
				}
			}
			chunkMax[chunk] = maxNorm
		})
		maxNorm := 0.0
		for _, v := range chunkMax {
			if v > maxNorm {
				maxNorm = v
			}
		}
		st.Sweeps++
		st.MaxResidual = maxNorm
		if maxNorm <= target || st.Sweeps >= maxSweeps {
			return st
		}
		// f ← f + r (absorb the whole residual at once: a dense push).
		run.Rows(n, func(lo, hi int) {
			for i := lo * k; i < hi*k; i++ {
				f.Data[i] += r.Data[i]
			}
		})
	}
}

// sRow returns node's sparse residual row, creating it zeroed.
func (s *State) sRow(node int32) []float64 {
	row, ok := s.sRows[node]
	if !ok {
		row = make([]float64, s.k)
		s.sRows[node] = row
	}
	return row
}

// AddDelta adds a sparse explicit-belief change to node's residual (and to
// the retained X̃): delta is newXRow − oldXRow in the uncentered space —
// centering is a constant shift, so deltas are identical either way. Call
// Flush afterwards to propagate; beliefs read between AddDelta and Flush
// simply predate the patch.
func (s *State) AddDelta(node int, delta []float64) {
	xRow := s.x.Row(node)
	for j, d := range delta {
		xRow[j] += d
	}
	if s.r != nil {
		// Dense tier resident (a bounded flush stopped mid-drain): land the
		// delta directly; the next flush rebuilds its frontier from norms.
		rRow := s.r.Row(node)
		for j, d := range delta {
			rRow[j] += d
		}
		s.norms[node] = infNorm(rRow)
		return
	}
	rRow := s.sRow(int32(node))
	for j, d := range delta {
		rRow[j] += d
	}
	s.front.Add(int32(node), infNorm(rRow))
}

// Flush pushes queued residual rows until every node is at or below the
// tolerance. Small frontiers drain largest-first through the sequential
// priority queue; saturated ones promote to the dense tier and drain with
// parallel pull rounds. Past EdgeBudgetFactor·nnz edge traversals Flush
// finishes with dense sweeps instead (cheaper at that point) and reports
// FellBack.
//
// On clean completion MaxResidual is left 0: the drain itself guarantees
// every node is at or below Tol, and scanning all n norms to report the
// exact value would make the o(Δ) path Ω(n). It is populated only when
// dense sweeps ran (they track it for free); call the MaxResidual method
// for an on-demand exact scan.
func (s *State) Flush() Stats {
	st, _ := s.flush(true)
	recordStats(st)
	return st
}

// FlushBounded is Flush without the dense-sweep fallback: once the edge
// budget is exhausted it stops and returns converged=false, leaving the
// residual invariant exactly intact (F + (I−A)⁻¹R is unchanged, R just
// isn't drained — the dense tier stays resident to retain the
// sub-tolerance rows). Callers that must bound a flush's work — historical
// engine builds flushed patches under their write lock — use this; the
// current engine instead flushes on a Patch outside its locks.
func (s *State) FlushBounded() (Stats, bool) {
	st, converged := s.flush(false)
	recordStats(st)
	return st, converged
}

func (s *State) flush(sweepFallback bool) (Stats, bool) {
	var st Stats
	if s.r == nil {
		pushed, edges, outcome := exec.Drain(s.front, stateKernel{s}, s.edgeBudget)
		st.Pushed += pushed
		st.Edges += edges
		switch outcome {
		case exec.Drained:
			s.compact()
			return st, true
		case exec.BudgetExceeded:
			st.FellBack = true
			if !sweepFallback {
				// Keep the queue (and the residual invariant) intact in the
				// sparse tier; the caller decides what to do with the state.
				return st, false
			}
			s.promoteForSweep()
			sw := s.sweepToTol()
			st.Sweeps, st.MaxResidual = sw.Sweeps, sw.MaxResidual
			s.demote()
			return st, true
		case exec.Saturated:
			s.promote()
		}
	}
	// Dense tier: rebuild the frontier from the norm table and drain it
	// with parallel pull rounds.
	active := activeFromNorms(s.norms, s.opts.Tol)
	budget := s.edgeBudget - st.Edges
	if budget < 1 {
		budget = 1 // spent at promotion: the first round decides the fallback
	}
	pushed, edges, rounds, remaining := s.pull.Drain(active, budget)
	st.Pushed += pushed
	st.Edges += edges
	st.Rounds += rounds
	if remaining == nil {
		s.demote()
		return st, true
	}
	st.FellBack = true
	if !sweepFallback {
		// Stay promoted: the dense tier holds the exact residual for the
		// caller's follow-up flush.
		return st, false
	}
	sw := s.sweepToTol()
	st.Sweeps, st.MaxResidual = sw.Sweeps, sw.MaxResidual
	s.demote()
	return st, true
}

// compact bounds the sparse tier after a drain: if retained sub-tolerance
// rows have accumulated past the promotion threshold they are discarded
// (the same Tol-bounded error as a demotion) so the map can never creep
// toward a dense matrix worth of entries.
func (s *State) compact() {
	if len(s.sRows) <= s.promoteAt {
		return
	}
	dropped := 0.0
	for node, row := range s.sRows {
		if norm := infNorm(row); norm <= s.opts.Tol {
			dropped += norm
			delete(s.sRows, node)
		}
	}
	s.addDropped(dropped)
}

// addDropped folds discarded residual mass into the running total.
func (s *State) addDropped(v float64) {
	if v <= 0 {
		return
	}
	for {
		old := s.droppedMass.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.droppedMass.CompareAndSwap(old, next) {
			return
		}
	}
}

// DroppedMass reports the cumulative residual ∞-norm mass this state has
// discarded at tier demotions, sparse compactions and patch applies. Each
// unit of reported mass perturbs the served fixed point by at most
// s/(1−s) of itself (see the package comment), so the health rollup can
// compare it against the 1e-6 parity budget directly. Safe to call
// concurrently with flushes.
func (s *State) DroppedMass() float64 {
	return math.Float64frombits(s.droppedMass.Load())
}

// activeFromNorms lists every node whose residual norm exceeds tol.
func activeFromNorms(norms []float64, tol float64) []int32 {
	active := make([]int32, 0, 1024)
	for i, norm := range norms {
		if norm > tol {
			active = append(active, int32(i))
		}
	}
	return active
}

// stateKernel is the resident state's push step over the sparse tier.
type stateKernel struct{ s *State }

func (k stateKernel) Norm(node int32) float64 {
	return infNorm(k.s.sRows[node])
}

func (k stateKernel) Push(node int32, dirtied func(int32, float64)) int {
	s := k.s
	rRow := s.sRows[node]
	fRow := s.f.Row(int(node))
	for j := 0; j < s.k; j++ {
		fRow[j] += rRow[j]
	}
	copy(s.rowBuf, rRow)
	delete(s.sRows, node)
	mulRowH(s.rhBuf, s.rowBuf, s.hScaled.Data, s.k)
	cols, wts := s.w.Row(int(node))
	for p, v := range cols {
		wv := 1.0
		if wts != nil {
			wv = wts[p]
		}
		nRow := s.sRow(v)
		norm := 0.0
		for j := 0; j < s.k; j++ {
			nRow[j] += wv * s.rhBuf[j]
			a := nRow[j]
			if a < 0 {
				a = -a
			}
			if a > norm {
				norm = a
			}
		}
		dirtied(v, norm)
	}
	return len(cols)
}

// mulRowH computes dst = row · H̃ for a k×k row-major H̃.
func mulRowH(dst, row, hs []float64, k int) {
	for j := 0; j < k; j++ {
		acc := 0.0
		for c := 0; c < k; c++ {
			acc += row[c] * hs[c*k+j]
		}
		dst[j] = acc
	}
}

func (s *State) maxNorm() float64 {
	if s.r != nil {
		m := 0.0
		for _, v := range s.norms {
			if v > m {
				m = v
			}
		}
		return m
	}
	m := 0.0
	for _, row := range s.sRows {
		if v := infNorm(row); v > m {
			m = v
		}
	}
	return m
}

// Beliefs returns the live belief matrix. It aliases internal storage:
// callers must hold whatever lock serializes AddDelta/Flush/Patch.Apply,
// and must clone rows that need to outlive that lock.
func (s *State) Beliefs() *dense.Matrix { return s.f }

// Row returns node's live belief row (aliasing; see Beliefs).
func (s *State) Row(node int) []float64 { return s.f.Row(node) }

// XRow returns node's retained explicit-belief row in centered space
// (aliasing; see Beliefs). Overlays use it to turn "set this seed" into a
// delta against the current X.
func (s *State) XRow(node int) []float64 { return s.x.Row(node) }

// Centered reports whether the state works in centered coordinates (and
// therefore what space XRow rows live in).
func (s *State) Centered() bool { return !s.opts.CenterOff }

// MaxResidual returns the largest pending per-node residual ∞-norm — the
// quality bound on the current beliefs.
func (s *State) MaxResidual() float64 { return s.maxNorm() }

// DirtyRows reports how many residual rows are materialized: sparse-tier
// map entries, or the dirty count of a resident dense tier. Memory
// accounting and the tier tests read it.
func (s *State) DirtyRows() int {
	if s.r != nil {
		n := 0
		for _, v := range s.norms {
			if v > 0 {
				n++
			}
		}
		return n
	}
	return len(s.sRows)
}

// DenseTier reports whether the dense residual tier is currently resident
// (it is only between a bounded non-converged flush and the flush that
// drains it; an idle state is always sparse).
func (s *State) DenseTier() bool { return s.r != nil }

// mapRowBytes approximates the per-entry cost of a sparse residual row:
// the float64 payload plus map bucket and slice header overhead.
func (s *State) mapRowBytes() int64 { return int64(8*s.k) + 64 }

// MemoryBytes estimates the state's resident bytes in its CURRENT tier:
// the two permanent n×k matrices (X̃ and F), the sparse rows actually
// materialized, and — only while promoted — the dense residual array with
// its norm/scheduling scratch. The serving engine's MemoryFootprint sums
// this into what /v1/admin/registry reports.
func (s *State) MemoryBytes() int64 {
	n, k := int64(s.n), int64(s.k)
	b := 2 * 8 * n * k // X̃ + F
	b += int64(len(s.sRows)) * s.mapRowBytes()
	if s.r != nil {
		b += 8*n*k + 8*n // r + norms
		b += 8 * n       // PullPass activeIdx + mark
	}
	return b
}

func infNorm(row []float64) float64 {
	m := 0.0
	for _, v := range row {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}
