package residual

import (
	"math"
	"math/rand"
	"testing"

	"factorgraph/internal/dense"
	"factorgraph/internal/propagation"
	"factorgraph/internal/sparse"
)

// randGraph builds a random undirected multigraph with n nodes and roughly
// n·deg/2 edges.
func randGraph(t *testing.T, n, deg int, seed int64) *sparse.CSR {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges := make([][2]int32, 0, n*deg/2)
	for i := 0; i < n*deg/2; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		edges = append(edges, [2]int32{int32(u), int32(v)})
	}
	w, err := sparse.NewSymmetricFromEdges(n, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// testH is a homophilous k×k compatibility matrix.
func testH(k int, boost float64) *dense.Matrix {
	h := dense.Constant(k, k, (1-boost)/float64(k))
	for i := 0; i < k; i++ {
		h.Set(i, i, h.At(i, i)+boost)
	}
	return h
}

// randX seeds a fraction f of nodes with one-hot labels.
func randX(n, k int, f float64, rng *rand.Rand) *dense.Matrix {
	x := dense.New(n, k)
	for i := 0; i < n; i++ {
		if rng.Float64() < f {
			x.Set(i, rng.Intn(k), 1)
		}
	}
	return x
}

// fixedPoint runs the dense LinBP iteration far past convergence.
func fixedPoint(t *testing.T, w *sparse.CSR, h, x *dense.Matrix) *dense.Matrix {
	t.Helper()
	st, err := propagation.NewState(w, h, propagation.LinBPOptions{S: 0.5, Iterations: 120, Center: true})
	if err != nil {
		t.Fatal(err)
	}
	f, err := st.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	return f.Clone()
}

func maxAbsDiff(a, b *dense.Matrix) float64 {
	m := 0.0
	for i := range a.Data {
		d := math.Abs(a.Data[i] - b.Data[i])
		if d > m {
			m = d
		}
	}
	return m
}

// TestInitMatchesFixedPoint: Init's dense sweeps land on the same fixed
// point as the propagation package's iteration.
func TestInitMatchesFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w := randGraph(t, 400, 8, 11)
	h := testH(3, 0.5)
	x := randX(400, 3, 0.1, rng)

	s, err := NewState(w, h, Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Init(x)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sweeps == 0 {
		t.Error("Init reported zero sweeps")
	}
	want := fixedPoint(t, w, h, x)
	if d := maxAbsDiff(s.Beliefs(), want); d > 1e-9 {
		t.Errorf("Init beliefs differ from fixed point by %g", d)
	}
	if mr := s.MaxResidual(); mr > 1e-12 {
		t.Errorf("post-Init max residual %g > tol", mr)
	}
}

// TestPatchParityRandomSequence is the randomized property test of the
// issue: a random graph, a random sequence of seed patches, each flushed
// incrementally, must agree with a from-scratch propagation on the final
// seed state within 1e-6.
func TestPatchParityRandomSequence(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		n, k := 300, 3
		w := randGraph(t, n, 6, seed)
		h := testH(k, 0.4)
		x := randX(n, k, 0.08, rng)

		s, err := NewState(w, h, Options{Tol: 1e-10})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Init(x); err != nil {
			t.Fatal(err)
		}

		var totalPushed int
		for patch := 0; patch < 25; patch++ {
			// Random patch: set, change or clear 1-4 seeds.
			for c := 0; c < 1+rng.Intn(4); c++ {
				node := rng.Intn(n)
				row := x.Row(node)
				delta := make([]float64, k)
				for j := range delta {
					delta[j] = -row[j]
					row[j] = 0
				}
				if rng.Float64() < 0.8 { // 20% of patches clear the seed
					c := rng.Intn(k)
					delta[c] += 1
					row[c] = 1
				}
				s.AddDelta(node, delta)
			}
			st := s.Flush()
			totalPushed += st.Pushed
		}
		if totalPushed == 0 {
			t.Fatalf("seed %d: no pushes across 25 patches", seed)
		}
		want := fixedPoint(t, w, h, x)
		if d := maxAbsDiff(s.Beliefs(), want); d > 1e-6 {
			t.Errorf("seed %d: incremental beliefs differ from full propagation by %g", seed, d)
		}
	}
}

// TestPatchIsLocal: on a graph with an isolated far region, a single-seed
// patch must push only the perturbed neighborhood, not the whole graph.
func TestPatchIsLocal(t *testing.T) {
	// Two 100-node communities joined by nothing: patching in one must
	// never push nodes of the other.
	n := 200
	rng := rand.New(rand.NewSource(5))
	edges := make([][2]int32, 0, 600)
	for i := 0; i < 300; i++ {
		u, v := rng.Intn(100), rng.Intn(100)
		if u != v {
			edges = append(edges, [2]int32{int32(u), int32(v)})
		}
		u, v = 100+rng.Intn(100), 100+rng.Intn(100)
		if u != v {
			edges = append(edges, [2]int32{int32(u), int32(v)})
		}
	}
	w, err := sparse.NewSymmetricFromEdges(n, edges, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := testH(3, 0.5)
	x := randX(n, 3, 0.1, rng)
	// On a 200-node toy graph the frontier saturates a community long
	// before the tolerance bites, so give the push loop ample budget: the
	// point here is isolation, not push-vs-sweep economics.
	s, err := NewState(w, h, Options{EdgeBudgetFactor: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Init(x); err != nil {
		t.Fatal(err)
	}
	before := s.Beliefs().Clone()

	s.AddDelta(7, []float64{1, 0, 0})
	st := s.Flush()
	if st.Pushed == 0 {
		t.Fatal("patch pushed nothing")
	}
	if st.FellBack {
		t.Fatal("local patch fell back to dense sweeps")
	}
	// The second community's rows must be bit-identical.
	for i := 100; i < 200; i++ {
		for j := 0; j < 3; j++ {
			if s.Beliefs().At(i, j) != before.At(i, j) {
				t.Fatalf("patch in community A mutated node %d of community B", i)
			}
		}
	}
}

// TestFlushFallback: a patch that perturbs most of the graph must trip the
// edge budget and finish with dense sweeps, still converging.
func TestFlushFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, k := 300, 3
	w := randGraph(t, n, 8, 9)
	h := testH(k, 0.5)
	x := randX(n, k, 0.1, rng)
	s, err := NewState(w, h, Options{EdgeBudgetFactor: 1, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Init(x); err != nil {
		t.Fatal(err)
	}
	// Flip every node's seed: the frontier is the whole graph.
	for i := 0; i < n; i++ {
		row := x.Row(i)
		delta := make([]float64, k)
		for j := range delta {
			delta[j] = -row[j]
			row[j] = 0
		}
		c := (i + 1) % k
		delta[c] += 1
		row[c] = 1
		s.AddDelta(i, delta)
	}
	st := s.Flush()
	if !st.FellBack {
		t.Error("whole-graph patch did not fall back to dense sweeps")
	}
	if st.Sweeps == 0 {
		t.Error("fallback reported zero sweeps")
	}
	want := fixedPoint(t, w, h, x)
	if d := maxAbsDiff(s.Beliefs(), want); d > 1e-6 {
		t.Errorf("post-fallback beliefs differ from full propagation by %g", d)
	}
}

// TestFlushBounded: the no-sweep variant stops at the edge budget with
// converged=false and never runs a dense sweep; a later unbounded Flush on
// the same state still converges (the invariant survived).
func TestFlushBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n, k := 300, 3
	w := randGraph(t, n, 8, 13)
	h := testH(k, 0.5)
	x := randX(n, k, 0.1, rng)
	s, err := NewState(w, h, Options{EdgeBudgetFactor: 1, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Init(x); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		row := x.Row(i)
		delta := make([]float64, k)
		for j := range delta {
			delta[j] = -row[j]
			row[j] = 0
		}
		c := (i + 1) % k
		delta[c] += 1
		row[c] = 1
		s.AddDelta(i, delta)
	}
	st, converged := s.FlushBounded()
	if converged {
		t.Fatal("whole-graph patch reported converged under a tight budget")
	}
	if !st.FellBack || st.Sweeps != 0 {
		t.Errorf("bounded flush: %+v, want FellBack with zero sweeps", st)
	}
	// The state is still usable: a full Flush drains it to the tolerance.
	if st := s.Flush(); !st.FellBack && s.MaxResidual() > 1e-10 {
		t.Errorf("follow-up flush left residual %g", s.MaxResidual())
	}
	want := fixedPoint(t, w, h, x)
	if d := maxAbsDiff(s.Beliefs(), want); d > 1e-6 {
		t.Errorf("post-bounded-flush beliefs differ from full propagation by %g", d)
	}
}

// TestStateValidation covers constructor and Init error paths.
func TestStateValidation(t *testing.T) {
	w := randGraph(t, 20, 4, 1)
	h := testH(3, 0.5)
	if _, err := NewState(w, dense.New(3, 2), Options{}); err == nil {
		t.Error("non-square H accepted")
	}
	if _, err := NewState(w, h, Options{S: 1.5}); err == nil {
		t.Error("s >= 1 accepted")
	}
	if _, err := NewState(w, h, Options{Tol: -1}); err == nil {
		t.Error("negative tolerance accepted")
	}
	s, err := NewState(w, h, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Init(dense.New(19, 3)); err == nil {
		t.Error("short X accepted")
	}
}
