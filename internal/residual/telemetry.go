package residual

import "factorgraph/internal/telemetry"

// Flush-level work counters. They are batched: each Flush (state, patch or
// overlay) adds its Stats once at the end, so the push kernel itself —
// the o(Δ) hot loop — carries zero instrumentation.
var (
	mFlushes = telemetry.Default().Counter("fg_residual_flushes_total",
		"Residual flush sessions completed (state, patch and overlay).")
	mPushes = telemetry.Default().Counter("fg_residual_pushes_total",
		"Node pushes performed by residual drains.")
	mEdges = telemetry.Default().Counter("fg_residual_edges_traversed_total",
		"Edge traversals performed by residual drains.")
	mSweeps = telemetry.Default().Counter("fg_residual_sweeps_total",
		"Dense full-graph Jacobi sweeps (Init and fallbacks).")
	mFallbacks = telemetry.Default().Counter("fg_residual_fallback_sweeps_total",
		"Flushes that abandoned the push queue for dense sweeps.")
	mPromotions = telemetry.Default().Counter("fg_residual_tier_promotions_total",
		"Sparse-to-dense residual tier promotions (state and patch sessions).")
	mDemotions = telemetry.Default().Counter("fg_residual_tier_demotions_total",
		"Dense-to-sparse residual tier demotions.")
)

// recordStats folds one completed drain's work into the process counters.
func recordStats(st Stats) {
	mFlushes.Inc()
	if st.Pushed > 0 {
		mPushes.Add(int64(st.Pushed))
	}
	if st.Edges > 0 {
		mEdges.Add(int64(st.Edges))
	}
	if st.Sweeps > 0 {
		mSweeps.Add(int64(st.Sweeps))
	}
	if st.FellBack {
		mFallbacks.Inc()
	}
}
