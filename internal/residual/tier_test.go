package residual

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"factorgraph/internal/dense"
)

// widePatch flips a fraction of all seeds so the flush frontier saturates.
func widePatch(s *State, x *dense.Matrix, n, k int, frac float64, rng *rand.Rand) {
	for i := 0; i < n; i++ {
		if rng.Float64() >= frac {
			continue
		}
		row := x.Row(i)
		delta := make([]float64, k)
		for j := range delta {
			delta[j] = -row[j]
			row[j] = 0
		}
		c := rng.Intn(k)
		delta[c] += 1
		row[c] = 1
		s.AddDelta(i, delta)
	}
}

// TestWidePatchParallelParity is the parallel-pushes-vs-sequential parity
// property: a patch wide enough to saturate the frontier (promoting to
// parallel pull rounds) must land on the same fixed point as (a) the
// worker-pinned sequential drain of the identical state and (b) a
// from-scratch converged propagation, all within 1e-6. Run under -race in
// CI: the saturated drain is the only concurrently-mutating kernel in the
// repo.
func TestWidePatchParallelParity(t *testing.T) {
	n, k := 6000, 3
	w := randGraph(t, n, 6, 21)
	h := testH(k, 0.4)
	for _, opt := range []Options{
		{Tol: 1e-10, EdgeBudgetFactor: 64},             // parallel (all workers)
		{Tol: 1e-10, EdgeBudgetFactor: 64, Workers: 1}, // pinned sequential baseline
	} {
		rng := rand.New(rand.NewSource(5))
		x := randX(n, k, 0.08, rng)
		s, err := NewState(w, h, opt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Init(x); err != nil {
			t.Fatal(err)
		}
		widePatch(s, x, n, k, 0.4, rng)
		if s.DenseTier() {
			t.Fatal("dense tier resident before flush")
		}
		st := s.Flush()
		if st.Rounds == 0 {
			t.Errorf("workers=%d: wide patch never promoted to pull rounds (pushed=%d)", opt.Workers, st.Pushed)
		}
		if st.FellBack {
			t.Errorf("workers=%d: wide patch fell back to sweeps under a 64× budget", opt.Workers)
		}
		if s.DenseTier() {
			t.Errorf("workers=%d: dense tier still resident after a drained flush", opt.Workers)
		}
		want := fixedPoint(t, w, h, x)
		if d := maxAbsDiff(s.Beliefs(), want); d > 1e-6 {
			t.Errorf("workers=%d: beliefs differ from converged propagation by %g", opt.Workers, d)
		}
	}
}

// TestSaturatedRoundScheduling: a saturated flush must promote exactly when
// the frontier passes the threshold, drain in level-synchronous rounds, and
// demote to an empty sparse tier — while a narrow patch must never leave
// the sparse tier.
func TestSaturatedRoundScheduling(t *testing.T) {
	n, k := 40000, 3 // promoteThreshold(40000) = 1250
	w := randGraph(t, n, 4, 33)
	h := testH(k, 0.5)
	rng := rand.New(rand.NewSource(9))
	x := randX(n, k, 0.05, rng)
	s, err := NewState(w, h, Options{Tol: 1e-9, EdgeBudgetFactor: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Init(x); err != nil {
		t.Fatal(err)
	}
	if got := s.DirtyRows(); got != 0 {
		t.Fatalf("post-Init dirty rows = %d, want 0", got)
	}

	// Narrow patch: a perturbation that decays below tolerance within a
	// few hops must drain entirely in the sparse tier — no promotion, no
	// rounds, no sweeps. (A unit-mass patch on an expander legitimately
	// saturates: its above-tolerance ball is thousands of nodes, which is
	// exactly what the promotion threshold is for.)
	s.AddDelta(17, []float64{1e-5, 0, 0})
	st := s.Flush()
	if st.Rounds != 0 || st.Sweeps != 0 {
		t.Errorf("narrow patch used rounds=%d sweeps=%d, want pure sparse-tier drain", st.Rounds, st.Sweeps)
	}
	if st.Pushed == 0 {
		t.Error("narrow patch pushed nothing")
	}
	if s.DirtyRows() > promoteThreshold(n) {
		t.Errorf("narrow patch left %d dirty rows", s.DirtyRows())
	}

	// Wide patch: saturates past promoteThreshold, drains in rounds.
	widePatch(s, x, n, k, 0.2, rng)
	st = s.Flush()
	if st.Rounds < 2 {
		t.Errorf("wide patch ran %d rounds, want level-synchronous drain (≥2)", st.Rounds)
	}
	if st.Pushed < promoteThreshold(n) {
		t.Errorf("wide patch pushed %d < promotion threshold %d", st.Pushed, promoteThreshold(n))
	}
	if s.DenseTier() {
		t.Error("dense tier resident after drain")
	}
	if got := s.DirtyRows(); got != 0 {
		t.Errorf("post-drain dirty rows = %d, want 0 (all mass above tol drained)", got)
	}
	if mr := s.MaxResidual(); mr > 1e-9 {
		t.Errorf("post-drain max residual %g > tol", mr)
	}
}

// TestMemoryTier: an idle state is sparse and small; a bounded flush that
// stops mid-drain keeps the dense tier (and the exact invariant) resident,
// and the next full flush demotes it again.
func TestMemoryTier(t *testing.T) {
	n, k := 3000, 3
	w := randGraph(t, n, 6, 13)
	h := testH(k, 0.5)
	rng := rand.New(rand.NewSource(2))
	x := randX(n, k, 0.1, rng)
	s, err := NewState(w, h, Options{Tol: 1e-10, EdgeBudgetFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Init(x); err != nil {
		t.Fatal(err)
	}
	idle := s.MemoryBytes()
	permanent := int64(2 * 8 * n * k)
	if idle < permanent || idle > permanent+int64(promoteThreshold(n))*s.mapRowBytes() {
		t.Errorf("idle MemoryBytes = %d, want ≈ %d (X̃+F only)", idle, permanent)
	}

	widePatch(s, x, n, k, 0.9, rng)
	if _, converged := s.FlushBounded(); converged {
		t.Fatal("whole-graph patch converged under a 1× budget")
	}
	if !s.DenseTier() {
		t.Fatal("bounded non-converged flush did not retain the dense tier")
	}
	if grown := s.MemoryBytes(); grown <= idle+int64(8*n*k) {
		t.Errorf("dense tier not accounted: %d ≤ %d", grown, idle)
	}
	st := s.Flush()
	if s.DenseTier() {
		t.Error("dense tier resident after completing flush")
	}
	if after := s.MemoryBytes(); after > idle+int64(promoteThreshold(n))*s.mapRowBytes() {
		t.Errorf("post-flush MemoryBytes = %d, did not shrink back toward %d", after, idle)
	}
	_ = st
	want := fixedPoint(t, w, h, x)
	if d := maxAbsDiff(s.Beliefs(), want); d > 1e-6 {
		t.Errorf("beliefs differ from converged propagation by %g after tier round-trip", d)
	}
}

// TestWidePatchParallelSpeedup is the tentpole latency acceptance: on ≥4
// cores, draining a wide patch (≥5% of nodes) with the parallel pull
// rounds must be ≥2× faster than the pinned sequential drain of identical
// work. Skipped in -short and on small machines, where the assert would
// measure the scheduler, not the executor.
func TestWidePatchParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("200k-node benchmark; run without -short")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("need ≥4 cores for the 2× parallel assert, have %d", runtime.GOMAXPROCS(0))
	}
	n, k := 200_000, 3
	w := randGraph(t, n, 4, 99)
	h := testH(k, 0.5)

	drain := func(workers int) (time.Duration, Stats, *State) {
		rng := rand.New(rand.NewSource(4))
		x := randX(n, k, 0.05, rng)
		s, err := NewState(w, h, Options{Tol: 1e-8, EdgeBudgetFactor: 256, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Init(x); err != nil {
			t.Fatal(err)
		}
		widePatch(s, x, n, k, 0.05, rng)
		start := time.Now()
		st := s.Flush()
		return time.Since(start), st, s
	}

	// Best of 3 per mode to shrug scheduler noise.
	best := func(workers int) (time.Duration, Stats, *State) {
		bd, bst, bs := time.Duration(1<<62), Stats{}, (*State)(nil)
		for i := 0; i < 3; i++ {
			d, st, s := drain(workers)
			if d < bd {
				bd, bst, bs = d, st, s
			}
		}
		return bd, bst, bs
	}
	seqDur, seqSt, seqS := best(1)
	parDur, parSt, parS := best(0)
	if parSt.Rounds == 0 || seqSt.Rounds == 0 {
		t.Fatalf("wide patch did not promote: rounds par=%d seq=%d", parSt.Rounds, seqSt.Rounds)
	}
	t.Logf("wide patch drain: parallel %v (%d pushes, %d rounds) vs sequential %v — %.2fx",
		parDur, parSt.Pushed, parSt.Rounds, seqDur, float64(seqDur)/float64(parDur))
	if seqDur < 2*parDur {
		t.Errorf("parallel drain %v not ≥2× faster than sequential %v", parDur, seqDur)
	}
	if d := maxAbsDiff(parS.Beliefs(), seqS.Beliefs()); d > 1e-6 {
		t.Errorf("parallel and sequential drains disagree by %g", d)
	}
}
