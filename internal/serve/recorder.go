package serve

import (
	"net/http"
	"runtime"
	"sync"
	"time"

	"factorgraph"
	"factorgraph/internal/telemetry"
)

// recorder is the flight-recorder layer: per-graph metric vectors feeding
// /metrics, the rolling timeline behind /v1/admin/timeline, and the
// adaptive slow-query log behind /v1/admin/slowlog. One recorder per
// Server; the registry's lifecycle hooks (OnRelease/OnForget) keep the
// per-graph series in step with engine residency, and the telemetry.Vec
// LRU bound caps cardinality even if a forget is missed.
type recorder struct {
	// Work counters and latency, labelled {graph}.
	requests  *telemetry.CounterVec
	queries   *telemetry.CounterVec
	patches   *telemetry.CounterVec
	mutations *telemetry.CounterVec
	latency   *telemetry.HistogramVec

	// Numeric-health gauges, labelled {graph}; refreshed on every engine
	// release (OnRelease fires with the engine still pinned).
	resident *telemetry.GaugeVec
	dropped  *telemetry.GaugeVec
	margin   *telemetry.GaugeVec
	overlay  *telemetry.GaugeVec
	epochAge *telemetry.GaugeVec
	drift    *telemetry.GaugeVec

	// Per-tenant cost accounting, labelled {graph}: work attribution
	// accumulated on the request trace, rolled up on the way out and
	// served both as fg_graph_cost_* series and via /v1/admin/tenants.
	costPushes   *telemetry.CounterVec
	costEdges    *telemetry.CounterVec
	costRows     *telemetry.CounterVec
	costFlush    *telemetry.FloatCounterVec
	costLockWait *telemetry.FloatCounterVec

	timeline *telemetry.Timeline
	slowlog  *telemetry.SlowLog

	// Distributed-tracing tail: the head sampler decides which requests
	// record into the bounded trace ring behind /v1/admin/traces; errors
	// and slow-log threshold exceedances are force-captured regardless.
	sampler *telemetry.Sampler
	traces  *telemetry.TraceStore

	// tracked remembers which graphs have timeline probes installed, so
	// the per-request path is one sync.Map load after the first request.
	tracked sync.Map // graph name -> struct{}
}

// graphCardinality bounds the number of per-graph label values each vector
// family holds; beyond it the least-recently-used graph's series are
// evicted from /metrics (the counters themselves survive in the handles of
// any in-flight request, they just stop being exported).
const graphCardinality = 512

// DefaultTraceSampleRate is the head-sampling fraction when
// Options.TraceSampleRate is zero: 1% keeps the trace ring representative
// without letting tracing cost show up in the latency distribution.
const DefaultTraceSampleRate = 0.01

func newRecorder(o Options) *recorder {
	reg := telemetry.Default()
	interval := o.TimelineInterval
	if interval <= 0 {
		interval = telemetry.DefaultTimelineInterval
	}
	samples := o.TimelineSamples
	if samples <= 0 {
		samples = telemetry.DefaultTimelineSamples
	}
	factor := o.SlowLogFactor
	if factor <= 0 {
		factor = telemetry.DefaultSlowLogFactor
	}
	capacity := o.SlowLogCapacity
	if capacity <= 0 {
		capacity = telemetry.DefaultSlowLogCapacity
	}
	rate := o.TraceSampleRate
	switch {
	case rate == 0:
		rate = DefaultTraceSampleRate
	case rate < 0:
		rate = 0 // explicit off: only errors and slow requests are captured
	}
	return &recorder{
		requests: telemetry.NewCounterVec(reg, "fg_graph_requests_total",
			"Engine-backed HTTP requests, by graph.", "graph", graphCardinality),
		queries: telemetry.NewCounterVec(reg, "fg_graph_queries_total",
			"Classify/estimate queries, by graph.", "graph", graphCardinality),
		patches: telemetry.NewCounterVec(reg, "fg_graph_label_patches_total",
			"Label patch requests, by graph.", "graph", graphCardinality),
		mutations: telemetry.NewCounterVec(reg, "fg_graph_edge_mutations_total",
			"Edge mutation requests, by graph.", "graph", graphCardinality),
		latency: telemetry.NewHistogramVec(reg, "fg_graph_request_duration_seconds",
			"Engine-backed request duration, by graph.", "graph", nil, graphCardinality),

		resident: telemetry.NewGaugeVec(reg, "fg_graph_resident_bytes",
			"Estimated resident bytes of the graph's engine.", "graph", graphCardinality),
		dropped: telemetry.NewGaugeVec(reg, "fg_graph_residual_dropped_mass",
			"Cumulative residual mass discarded by tier demotions and compactions.", "graph", graphCardinality),
		margin: telemetry.NewGaugeVec(reg, "fg_graph_contraction_margin",
			"Contraction-guard margin (guard minus worst-case effective s); compaction is forced at zero.", "graph", graphCardinality),
		overlay: telemetry.NewGaugeVec(reg, "fg_graph_overlay_fraction",
			"Delta-overlay patched fraction of the graph's stored entries.", "graph", graphCardinality),
		epochAge: telemetry.NewGaugeVec(reg, "fg_graph_epoch_age_seconds",
			"Age of the graph's current topology epoch.", "graph", graphCardinality),
		drift: telemetry.NewGaugeVec(reg, "fg_graph_sketch_drift_fraction",
			"Estimator-sketch drift as a fraction of the drop threshold.", "graph", graphCardinality),

		costPushes: telemetry.NewCounterVec(reg, "fg_graph_cost_pushes_total",
			"Residual pushes attributed to requests, by graph.", "graph", graphCardinality),
		costEdges: telemetry.NewCounterVec(reg, "fg_graph_cost_edges_traversed_total",
			"Edges traversed by request-attributed push work, by graph.", "graph", graphCardinality),
		costRows: telemetry.NewCounterVec(reg, "fg_graph_cost_rows_cloned_total",
			"Copy-on-write belief rows cloned for requests, by graph.", "graph", graphCardinality),
		costFlush: telemetry.NewFloatCounterVec(reg, "fg_graph_cost_flush_seconds_total",
			"Residual-flush time attributed to requests, by graph.", "graph", graphCardinality),
		costLockWait: telemetry.NewFloatCounterVec(reg, "fg_graph_cost_lock_wait_seconds_total",
			"Engine-lock wait time attributed to requests, by graph.", "graph", graphCardinality),

		timeline: telemetry.NewTimeline(interval, samples),
		slowlog:  telemetry.NewSlowLog(capacity, factor, o.SlowLogFloor),
		sampler:  telemetry.NewSampler(rate),
		traces:   telemetry.NewTraceStore(o.TraceStoreCapacity),
	}
}

// trackGlobals installs the process-wide timeline probes (scope "").
func (c *recorder) trackGlobals(s *Server) {
	c.timeline.Track("", "http_in_flight", httpInFlight.Value)
	c.timeline.Track("", "goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	c.timeline.Track("", "registry_resident_bytes", func() float64 {
		return float64(s.reg.Stats().ResidentBytes)
	})
}

// startTrace begins the request trace for one engine-backed request: the
// inbound W3C traceparent (when present and well-formed) supplies the trace
// id and remote parent span, otherwise a fresh id is minted; the head
// sampler (or an upstream sampled flag) decides whether the trace is
// destined for the trace store. Returns nil — the fully inert trace — when
// telemetry is disabled.
func (c *recorder) startTrace(r *http.Request) *telemetry.Trace {
	if !telemetry.Enabled() {
		return nil
	}
	tid, parent, parentSampled, ok := telemetry.ParseTraceparent(r.Header.Get("traceparent"))
	if !ok {
		tid, parent, parentSampled = telemetry.NewTraceID(), telemetry.SpanID{}, false
	}
	sampled := parentSampled || c.sampler.Sample(tid)
	return telemetry.NewRequestTrace(tid, parent, parentSampled, sampled)
}

// capture is the tail of the tracing pipeline: it decides whether the
// finished request's trace lands in the trace store (errors always, sampled
// traces always, slow-log threshold exceedances always), synthesizes the
// request root span, and returns the stored trace id (hex) for exemplar
// linkage — "" when nothing was captured.
func (c *recorder) capture(graph, kind string, d time.Duration, status int, tr *telemetry.Trace) string {
	if tr == nil {
		return ""
	}
	var reason string
	switch {
	case status >= http.StatusInternalServerError:
		reason = "error"
	case tr.Sampled():
		reason = "head"
		if tr.RemoteSampled() {
			reason = "parent"
		}
	case d >= c.slowlog.Threshold():
		reason = "slow"
	default:
		return ""
	}
	// The request itself becomes the root span, so the stored tree is
	// self-contained: every engine span's Parent chain terminates at it,
	// and it links onward to the remote parent when one came in.
	spans := tr.Spans()
	tree := make([]telemetry.Span, 0, len(spans)+1)
	tree = append(tree, telemetry.Span{
		Name: kind, ID: tr.RootSpanID(), Parent: tr.RemoteParent(), Dur: d,
	})
	tree = append(tree, spans...)
	c.traces.Put(telemetry.StoredTrace{
		ID:           tr.TraceID(),
		Root:         tr.RootSpanID(),
		RemoteParent: tr.RemoteParent(),
		Graph:        graph,
		Kind:         kind,
		Start:        tr.StartTime(),
		Duration:     d,
		Status:       status,
		Reason:       reason,
		Spans:        tree,
		Cost:         tr.Cost(),
	})
	return tr.TraceID().String()
}

// observe is the per-request tail of withEngine: per-graph counters and
// latency (exemplar-linked when the request's trace was captured), the
// per-tenant cost rollup, the slow-query threshold check, and (on a
// graph's first request) timeline probe installation. The fast path is a
// handful of LRU-map resolutions plus one atomic threshold compare.
func (c *recorder) observe(graph, kind string, d time.Duration, tr *telemetry.Trace, exemplar string) {
	c.requests.With(graph).Inc()
	if exemplar != "" {
		c.latency.With(graph).ObserveExemplar(d.Seconds(), exemplar)
	} else {
		c.latency.With(graph).Observe(d.Seconds())
	}
	switch kind {
	case "classify", "estimate":
		c.queries.With(graph).Inc()
	case "labels_patch":
		c.patches.With(graph).Inc()
	case "edges_patch":
		c.mutations.With(graph).Inc()
	}
	if cost := tr.Cost(); cost != (telemetry.Cost{}) {
		if cost.Pushes > 0 {
			c.costPushes.With(graph).Add(cost.Pushes)
		}
		if cost.EdgesTraversed > 0 {
			c.costEdges.With(graph).Add(cost.EdgesTraversed)
		}
		if cost.RowsCloned > 0 {
			c.costRows.With(graph).Add(cost.RowsCloned)
		}
		c.costFlush.With(graph).Add(cost.FlushSeconds)
		c.costLockWait.With(graph).Add(cost.LockWaitSeconds)
	}
	c.slowlog.Observe(graph, kind, d, tr)
	c.ensureProbes(graph)
}

// ensureProbes installs the per-graph timeline probes once per resident
// graph. Probes read vector handles (atomics), so the 10s sampler never
// touches engine locks.
func (c *recorder) ensureProbes(graph string) {
	if _, loaded := c.tracked.LoadOrStore(graph, struct{}{}); loaded {
		return
	}
	req := c.requests.With(graph)
	c.timeline.Track(graph, "requests_total", func() float64 {
		return float64(req.Value())
	})
	c.timeline.Track(graph, "resident_bytes", c.resident.With(graph).Value)
	c.timeline.Track(graph, "overlay_fraction", c.overlay.With(graph).Value)
	c.timeline.Track(graph, "residual_dropped_mass", c.dropped.With(graph).Value)
}

// refresh is the registry's OnRelease hook: the engine is still pinned, so
// reading its numeric health and footprint is safe. Runs on every request
// release — NumericHealth is a brief read-lock snapshot by design.
func (c *recorder) refresh(graph string, eng *factorgraph.Engine) {
	h := eng.NumericHealth()
	c.resident.With(graph).Set(float64(eng.MemoryFootprint()))
	c.dropped.With(graph).Set(h.ResidualDroppedMass)
	c.epochAge.With(graph).Set(h.EpochAgeSeconds)
	c.margin.With(graph).Set(h.ContractionMargin)
	c.overlay.With(graph).Set(h.OverlayFraction)
	if h.SketchDriftLimit > 0 {
		c.drift.With(graph).Set(h.SketchDrift / h.SketchDriftLimit)
	} else {
		c.drift.With(graph).Set(0)
	}
}

// forget is the registry's OnForget hook: the graph was deleted or fully
// evicted, so every per-graph series leaves /metrics and its timeline
// history is dropped. Runs under the registry lock — everything here is
// registry-free (telemetry and timeline have their own locks).
func (c *recorder) forget(graph string) {
	c.tracked.Delete(graph)
	c.timeline.Untrack(graph)
	c.requests.Delete(graph)
	c.queries.Delete(graph)
	c.patches.Delete(graph)
	c.mutations.Delete(graph)
	c.latency.Delete(graph)
	c.resident.Delete(graph)
	c.dropped.Delete(graph)
	c.margin.Delete(graph)
	c.overlay.Delete(graph)
	c.epochAge.Delete(graph)
	c.drift.Delete(graph)
	c.costPushes.Delete(graph)
	c.costEdges.Delete(graph)
	c.costRows.Delete(graph)
	c.costFlush.Delete(graph)
	c.costLockWait.Delete(graph)
}

// Numeric-health rollup thresholds. The warn levels are deliberately
// early — the point of the rollup is headroom, not alarms after the
// machinery already fell back.
const (
	// healthMarginWarn: warn when the contraction margin drops below this —
	// the next mutation batches are likely to force a synchronous
	// compaction.
	healthMarginWarn = 0.05
	// healthTriggerShare: warn when the overlay fraction or the sketch
	// drift passes this share of its compaction/drop trigger.
	healthTriggerShare = 0.8
	// healthDroppedTolMultiple: warn when the cumulative dropped residual
	// mass exceeds this many multiples of the per-node tolerance — the
	// discards are no longer individually negligible in aggregate.
	healthDroppedTolMultiple = 1e4
	// healthEpochAgeWarn: warn when an epoch older than this still has an
	// overlay past the warn share of its compaction trigger — the
	// compaction that should have swapped a fresh epoch in never landed.
	// Old epochs with small overlays are normal (slow-mutating graphs
	// never cross the trigger) and stay ok.
	healthEpochAgeWarn = float64(3600)
)

const (
	healthOK   = "ok"
	healthWarn = "warn"
)

// numericChecks applies the rollup thresholds to one engine's health
// snapshot.
func numericChecks(h factorgraph.NumericHealth) []HealthCheck {
	checks := []HealthCheck{{
		Name:   "residual_dropped_mass",
		Value:  h.ResidualDroppedMass,
		WarnAt: healthDroppedTolMultiple * h.ResidualTol,
		Detail: "cumulative residual mass discarded by demotions/compactions",
	}}
	checks[0].Status = statusAbove(h.ResidualDroppedMass, checks[0].WarnAt)
	if h.Incremental {
		checks = append(checks,
			HealthCheck{
				Name:   "contraction_margin",
				Value:  h.ContractionMargin,
				WarnAt: healthMarginWarn,
				Status: statusBelow(h.ContractionMargin, healthMarginWarn),
				Detail: "guard minus worst-case effective s under the live overlay",
			},
			HealthCheck{
				Name:   "overlay_fraction",
				Value:  h.OverlayFraction,
				WarnAt: healthTriggerShare * h.CompactTrigger,
				Status: statusAbove(h.OverlayFraction, healthTriggerShare*h.CompactTrigger),
				Detail: "patched share of stored entries vs the compaction trigger",
			},
			HealthCheck{
				Name:   "epoch_age_seconds",
				Value:  h.EpochAgeSeconds,
				WarnAt: healthEpochAgeWarn,
				Status: statusEpochAge(h),
				Detail: "age of the current epoch; warns only when compaction looks overdue",
			})
		if h.SketchDriftLimit > 0 {
			frac := h.SketchDrift / h.SketchDriftLimit
			checks = append(checks, HealthCheck{
				Name:   "sketch_drift_fraction",
				Value:  frac,
				WarnAt: healthTriggerShare,
				Status: statusAbove(frac, healthTriggerShare),
				Detail: "estimator-sketch drift vs the cache-drop threshold",
			})
		}
	}
	return checks
}

func statusAbove(v, warnAt float64) string {
	if warnAt > 0 && v >= warnAt {
		return healthWarn
	}
	return healthOK
}

func statusBelow(v, warnAt float64) string {
	if v < warnAt {
		return healthWarn
	}
	return healthOK
}

func statusEpochAge(h factorgraph.NumericHealth) string {
	if h.EpochAgeSeconds > healthEpochAgeWarn &&
		h.OverlayFraction >= healthTriggerShare*h.CompactTrigger && h.CompactTrigger > 0 {
		return healthWarn
	}
	return healthOK
}

// handleTimeline serves GET /v1/admin/timeline[?graph=]: the rolling ring
// of sampled series, oldest point first — trend data with no external
// Prometheus. Without ?graph it returns every scope (process-wide series
// carry no "graph" key).
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	graph := r.URL.Query().Get("graph")
	series := s.rec.timeline.Snapshot(graph, graph == "")
	writeJSON(w, http.StatusOK, TimelineResponse{
		IntervalSeconds: s.rec.timeline.Interval().Seconds(),
		Series:          series,
	})
}

// handleSlowLog serves GET /v1/admin/slowlog: the most recent slow-query
// captures (newest first) plus the adaptive threshold currently in force.
func (s *Server) handleSlowLog(w http.ResponseWriter, r *http.Request) {
	entries := s.rec.slowlog.Entries()
	resp := SlowLogResponse{
		ThresholdUs: s.rec.slowlog.Threshold().Microseconds(),
		Entries:     make([]SlowLogEntry, 0, len(entries)),
	}
	for _, e := range entries {
		we := SlowLogEntry{
			Time:        e.Time.UTC().Format(time.RFC3339Nano),
			Graph:       e.Scope,
			Route:       e.Route,
			DurationUs:  e.Duration.Microseconds(),
			ThresholdUs: e.Threshold.Microseconds(),
		}
		for _, sp := range e.Spans {
			we.Stages = append(we.Stages, StageTiming{
				Stage: sp.Name,
				Us:    float64(sp.Dur) / float64(time.Microsecond),
			})
		}
		resp.Entries = append(resp.Entries, we)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleNumericHealth serves GET /v1/admin/health: per-graph numeric-health
// checks with ok/warn thresholds, rolled up to one top-level status. Cold
// graphs are listed but never built — health polling must not change
// residency.
func (s *Server) handleNumericHealth(w http.ResponseWriter, r *http.Request) {
	resp := NumericHealthResponse{Status: healthOK}
	for _, info := range s.reg.List() {
		eng, release, ok := s.reg.AcquireIfBuilt(info.Name)
		if !ok {
			resp.Cold = append(resp.Cold, info.Name)
			continue
		}
		h := eng.NumericHealth()
		release()
		gh := GraphHealth{
			Graph:               info.Name,
			Status:              healthOK,
			Incremental:         h.Incremental,
			Epoch:               h.Epoch,
			ScheduleTuned:       h.ScheduleTuned,
			TunedDeltaDivisor:   h.TunedDeltaDivisor,
			TunedMinPullWorkers: h.TunedMinPullWorkers,
			Checks:              numericChecks(h),
		}
		for _, c := range gh.Checks {
			if c.Status == healthWarn {
				gh.Status = healthWarn
				resp.Status = healthWarn
			}
		}
		resp.Graphs = append(resp.Graphs, gh)
	}
	writeJSON(w, http.StatusOK, resp)
}
