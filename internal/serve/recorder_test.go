package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"factorgraph"
)

// rawScrape fetches /metrics and returns the raw exposition text, for
// per-label (not summed) assertions.
func rawScrape(t *testing.T, srv *Server) string {
	t.Helper()
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", rec.Code)
	}
	return rec.Body.String()
}

func classifyGraph(t *testing.T, srv *Server, name string) {
	t.Helper()
	rec, _ := doJSON(t, srv, "POST", "/v1/graphs/"+name+"/classify", `{"nodes":[0,1]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("classify %s: status %d: %s", name, rec.Code, rec.Body.String())
	}
}

// TestPerGraphSeriesLifecycle is the flight-recorder cardinality
// acceptance test: per-graph series appear on the first request, refresh
// while resident, and leave /metrics completely on DELETE. The telemetry
// registry is process-global, so assertions are scoped to this test's
// graph names.
func TestPerGraphSeriesLifecycle(t *testing.T) {
	srv := newMultiServer(0, Options{})
	for _, name := range []string{"recldaa", "recldab"} {
		rec, _ := doJSON(t, srv, "POST", "/v1/graphs", synthBody(name, 200, 1000))
		if rec.Code != http.StatusCreated {
			t.Fatalf("create %s: status %d", name, rec.Code)
		}
		classifyGraph(t, srv, name)
	}

	text := rawScrape(t, srv)
	for _, name := range []string{"recldaa", "recldab"} {
		for _, fam := range []string{
			"fg_graph_requests_total", "fg_graph_queries_total",
			"fg_graph_resident_bytes", "fg_graph_epoch_age_seconds",
		} {
			if !strings.Contains(text, fmt.Sprintf("%s{graph=%q}", fam, name)) {
				t.Errorf("%s missing series for graph %q", fam, name)
			}
		}
		if !strings.Contains(text, fmt.Sprintf("fg_graph_request_duration_seconds_count{graph=%q}", name)) {
			t.Errorf("latency histogram missing for graph %q", name)
		}
	}

	// DELETE drops every series of that graph and leaves the other's.
	rec, _ := doJSON(t, srv, "DELETE", "/v1/graphs/recldaa", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("delete: status %d", rec.Code)
	}
	text = rawScrape(t, srv)
	if strings.Contains(text, `graph="recldaa"`) {
		t.Errorf("deleted graph's series still exported:\n%s", grepLines(text, "recldaa"))
	}
	if !strings.Contains(text, `fg_graph_requests_total{graph="recldab"}`) {
		t.Errorf("surviving graph's series disappeared")
	}
}

// TestPerGraphSeriesEviction: a tier-2 (full) eviction unregisters the
// graph's series exactly like a DELETE; the next request re-registers
// them.
func TestPerGraphSeriesEviction(t *testing.T) {
	// Budget below a single shed footprint: every release fully evicts.
	budget := factorgraph.EstimateEngineBytes(300, 1500, 3, false) / 4
	srv := newMultiServer(budget, Options{})
	rec, _ := doJSON(t, srv, "POST", "/v1/graphs", synthBody("recevict", 300, 1500))
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: status %d", rec.Code)
	}
	classifyGraph(t, srv, "recevict")

	if text := rawScrape(t, srv); strings.Contains(text, `graph="recevict"`) {
		t.Errorf("evicted graph's series still exported:\n%s", grepLines(text, "recevict"))
	}

	// While the transparently-rebuilt engine is pinned resident, the
	// series are re-registered and exported again...
	_, release, err := srv.Registry().Acquire("recevict")
	if err != nil {
		t.Fatal(err)
	}
	classifyGraph(t, srv, "recevict")
	if text := rawScrape(t, srv); !strings.Contains(text, `fg_graph_requests_total{graph="recevict"}`) {
		t.Errorf("series not re-registered after transparent rebuild")
	}
	// ...and the pin's release re-evicts under the tiny budget, dropping
	// them once more.
	release()
	if text := rawScrape(t, srv); strings.Contains(text, `graph="recevict"`) {
		t.Errorf("re-evicted graph's series still exported:\n%s", grepLines(text, "recevict"))
	}
}

func grepLines(text, needle string) string {
	var hits []string
	for _, ln := range strings.Split(text, "\n") {
		if strings.Contains(ln, needle) {
			hits = append(hits, ln)
		}
	}
	return strings.Join(hits, "\n")
}

// TestTimelineEndpoint: probes install on a graph's first request, the
// sampler snapshots them into the ring, and /v1/admin/timeline serves the
// history — filtered per graph with ?graph=.
func TestTimelineEndpoint(t *testing.T) {
	// A huge interval so only explicit Sample() calls add points — the
	// test owns the clock.
	srv := newMultiServer(0, Options{TimelineInterval: time.Hour, TimelineSamples: 8})
	rec, _ := doJSON(t, srv, "POST", "/v1/graphs", synthBody("rectl", 200, 1000))
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: status %d", rec.Code)
	}
	classifyGraph(t, srv, "rectl")
	srv.rec.timeline.Sample()
	classifyGraph(t, srv, "rectl")
	srv.rec.timeline.Sample()

	var resp TimelineResponse
	hrec, _ := doJSON(t, srv, "GET", "/v1/admin/timeline", "")
	if hrec.Code != http.StatusOK {
		t.Fatalf("timeline: status %d", hrec.Code)
	}
	if err := json.Unmarshal(hrec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.IntervalSeconds != 3600 {
		t.Errorf("interval_seconds = %v, want 3600", resp.IntervalSeconds)
	}
	find := func(scope, name string) *TimelineSeriesCheck {
		for _, s := range resp.Series {
			if s.Scope == scope && s.Name == name {
				return &TimelineSeriesCheck{s.Points[0].Value, s.Points[len(s.Points)-1].Value, len(s.Points)}
			}
		}
		return nil
	}
	got := find("rectl", "requests_total")
	if got == nil {
		t.Fatalf("no requests_total series for graph rectl in %d series", len(resp.Series))
	}
	if got.n != 2 || got.first != 1 || got.last != 2 {
		t.Errorf("requests_total points = %+v, want 2 points 1→2", got)
	}
	if find("", "goroutines") == nil {
		t.Errorf("process-wide goroutines series missing")
	}

	// ?graph= filters to one scope.
	hrec, _ = doJSON(t, srv, "GET", "/v1/admin/timeline?graph=rectl", "")
	resp = TimelineResponse{}
	if err := json.Unmarshal(hrec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	for _, s := range resp.Series {
		if s.Scope != "rectl" {
			t.Errorf("filtered snapshot leaked scope %q", s.Scope)
		}
	}
	if len(resp.Series) == 0 {
		t.Errorf("filtered snapshot empty")
	}

	// DELETE drops the graph's timeline history.
	if drec, _ := doJSON(t, srv, "DELETE", "/v1/graphs/rectl", ""); drec.Code != http.StatusOK {
		t.Fatalf("delete: status %d", drec.Code)
	}
	hrec, _ = doJSON(t, srv, "GET", "/v1/admin/timeline?graph=rectl", "")
	resp = TimelineResponse{}
	if err := json.Unmarshal(hrec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Series) != 0 {
		t.Errorf("deleted graph still has %d timeline series", len(resp.Series))
	}
}

type TimelineSeriesCheck struct {
	first, last float64
	n           int
}

// TestSlowLogEndToEnd forces the slow-query path over HTTP: with a 1ns
// floor every request lands beyond the threshold, and the captured entry
// carries the engine's full stage trace.
func TestSlowLogEndToEnd(t *testing.T) {
	srv := newMultiServer(0, Options{SlowLogFloor: time.Nanosecond})
	rec, _ := doJSON(t, srv, "POST", "/v1/graphs", synthBody("recslow", 200, 1000))
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: status %d", rec.Code)
	}
	classifyGraph(t, srv, "recslow")

	hrec, _ := doJSON(t, srv, "GET", "/v1/admin/slowlog", "")
	if hrec.Code != http.StatusOK {
		t.Fatalf("slowlog: status %d", hrec.Code)
	}
	var resp SlowLogResponse
	if err := json.Unmarshal(hrec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Entries) == 0 {
		t.Fatalf("no slow-log entries captured")
	}
	e := resp.Entries[0]
	if e.Graph != "recslow" || e.Route != "classify" {
		t.Errorf("entry = %s/%s, want recslow/classify", e.Graph, e.Route)
	}
	if e.DurationUs <= 0 {
		t.Errorf("duration_us = %d, want > 0", e.DurationUs)
	}
	if len(e.Stages) == 0 {
		t.Errorf("captured entry has no stage trace")
	}
	if _, err := time.Parse(time.RFC3339Nano, e.Time); err != nil {
		t.Errorf("entry time %q: %v", e.Time, err)
	}
}

// TestNumericHealthEndpoint: resident graphs report their checks, cold
// graphs are listed without being built, and an incremental graph carries
// the contraction/overlay/sketch checks.
func TestNumericHealthEndpoint(t *testing.T) {
	srv := newMultiServer(0, Options{})
	body := `{"name":"rechealth","incremental":true,"synthetic":{"n":200,"m":1000,"f":0.1,"seed":7}}`
	if rec, _ := doJSON(t, srv, "POST", "/v1/graphs", body); rec.Code != http.StatusCreated {
		t.Fatalf("create: status %d", rec.Code)
	}
	if rec, _ := doJSON(t, srv, "POST", "/v1/graphs", synthBody("reccold", 200, 1000)); rec.Code != http.StatusCreated {
		t.Fatalf("create cold: status %d", rec.Code)
	}
	classifyGraph(t, srv, "rechealth")

	hrec, _ := doJSON(t, srv, "GET", "/v1/admin/health", "")
	if hrec.Code != http.StatusOK {
		t.Fatalf("health: status %d", hrec.Code)
	}
	var resp NumericHealthResponse
	if err := json.Unmarshal(hrec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" {
		t.Errorf("status = %q, want ok: %+v", resp.Status, resp)
	}
	var gh *GraphHealth
	for i := range resp.Graphs {
		if resp.Graphs[i].Graph == "rechealth" {
			gh = &resp.Graphs[i]
		}
	}
	if gh == nil {
		t.Fatalf("no health entry for rechealth: %+v", resp)
	}
	if !gh.Incremental {
		t.Errorf("incremental graph reported as non-incremental")
	}
	want := map[string]bool{"residual_dropped_mass": false, "contraction_margin": false, "overlay_fraction": false, "epoch_age_seconds": false}
	for _, c := range gh.Checks {
		if _, ok := want[c.Name]; ok {
			want[c.Name] = true
		}
		if c.Status != "ok" && c.Status != "warn" {
			t.Errorf("check %s has status %q", c.Name, c.Status)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("check %s missing from %+v", name, gh.Checks)
		}
	}
	found := false
	for _, c := range resp.Cold {
		if c == "reccold" {
			found = true
		}
	}
	if !found {
		t.Errorf("cold graph not listed: %+v", resp.Cold)
	}
	// Health polling must not build engines.
	if rec, _ := doJSON(t, srv, "GET", "/v1/graphs/reccold", ""); !strings.Contains(rec.Body.String(), `"state":"cold"`) {
		t.Errorf("health poll built the cold graph: %s", rec.Body.String())
	}
}

// TestNumericChecksThresholds pins the warn directions of the rollup.
func TestNumericChecksThresholds(t *testing.T) {
	h := factorgraph.NumericHealth{
		Incremental:         true,
		ResidualDroppedMass: 1,
		ResidualTol:         1e-8,
		ContractionMargin:   0.01,
		OverlayFraction:     0.24,
		CompactTrigger:      0.25,
		EpochAgeSeconds:     7200,
		SketchDrift:         9,
		SketchDriftLimit:    10,
	}
	status := map[string]string{}
	for _, c := range numericChecks(h) {
		status[c.Name] = c.Status
	}
	for name, wantStatus := range map[string]string{
		"residual_dropped_mass": "warn", // 1 >> 1e4 × 1e-8
		"contraction_margin":    "warn", // 0.01 < 0.05
		"overlay_fraction":      "warn", // 0.24 ≥ 0.8 × 0.25
		"epoch_age_seconds":     "warn", // 2h old with a live overlay
		"sketch_drift_fraction": "warn", // 0.9 ≥ 0.8
	} {
		if status[name] != wantStatus {
			t.Errorf("check %s = %q, want %q", name, status[name], wantStatus)
		}
	}

	// The healthy side of every threshold.
	h = factorgraph.NumericHealth{
		Incremental:         true,
		ResidualDroppedMass: 1e-6,
		ResidualTol:         1e-8,
		ContractionMargin:   0.3,
		OverlayFraction:     0.05,
		CompactTrigger:      0.25,
		EpochAgeSeconds:     7200, // old but with an empty overlay: fine
		SketchDrift:         1,
		SketchDriftLimit:    10,
	}
	for _, c := range numericChecks(h) {
		if c.Status != "ok" {
			t.Errorf("check %s = %q, want ok (value %v, warn_at %v)", c.Name, c.Status, c.Value, c.WarnAt)
		}
	}
}

// TestPerGraphSeriesLifecycleConcurrent races live writers against DELETE
// and the admin read paths: classify goroutines hammer two graphs while
// the main goroutine deletes one mid-burst and scrapers walk /metrics,
// /v1/admin/tenants and /v1/admin/traces. A request that acquired its
// engine before the DELETE re-creates series in observe(); the registry
// re-forgets on the last pin's release, so once the writers drain, the
// deleted graph's series — including the fg_graph_cost_* families — must
// be gone for good, and the read paths' Each() snapshots must never have
// resurrected them. The -race acceptance for the recorder lifecycle.
func TestPerGraphSeriesLifecycleConcurrent(t *testing.T) {
	srv := newMultiServer(0, Options{TraceSampleRate: 1})
	// Incremental graphs so label patches do attributable o(Δ) push work —
	// on a snapshot engine a patch bills only lock-wait time.
	for _, name := range []string{"racedel", "racekeep"} {
		rec, _ := doJSON(t, srv, "POST", "/v1/graphs", incrementalBody(name, 200, 1000))
		if rec.Code != http.StatusCreated {
			t.Fatalf("create %s: status %d", name, rec.Code)
		}
		classifyGraph(t, srv, name)
	}

	do := func(method, path, body string) int {
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec.Code
	}

	stopRead := make(chan struct{})
	var readers sync.WaitGroup
	for _, path := range []string{"/metrics", "/v1/admin/tenants", "/v1/admin/traces"} {
		readers.Add(1)
		go func(path string) {
			defer readers.Done()
			for {
				select {
				case <-stopRead:
					return
				default:
					do("GET", path, "")
				}
			}
		}(path)
	}

	stopWrite := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 6; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			name := "racedel"
			if w%2 == 1 {
				name = "racekeep"
			}
			for i := 0; ; i++ {
				select {
				case <-stopWrite:
					return
				default:
				}
				// Mostly classify, with label patches mixed in so the
				// survivor accrues attributable cost (a warm classify with
				// no pending work legitimately bills zero). Writers on the
				// deleted graph flip to 404 once the DELETE lands; anything
				// else is a real failure.
				method, path, body := "POST", "/v1/graphs/"+name+"/classify", `{"nodes":[0,1]}`
				if i%4 == 0 {
					method, path, body = "PATCH", "/v1/graphs/"+name+"/labels",
						fmt.Sprintf(`{"set":{"%d":%d}}`, (w*37+i)%200, i%3)
				}
				if code := do(method, path, body); code != http.StatusOK && code != http.StatusNotFound {
					t.Errorf("%s %s: status %d", method, path, code)
					return
				}
			}
		}(w)
	}

	time.Sleep(10 * time.Millisecond) // writers in flight before the DELETE
	if code := do("DELETE", "/v1/graphs/racedel", ""); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	time.Sleep(10 * time.Millisecond) // and still in flight after it
	close(stopWrite)
	writers.Wait()
	close(stopRead)
	readers.Wait()

	// One synchronous survivor patch after the burst drains: under -race a
	// short run can end before any concurrent racekeep patch lands, and the
	// cost assertions below need at least one attributed write.
	rec, _ := doJSON(t, srv, "PATCH", "/v1/graphs/racekeep/labels", `{"set":{"42":1}}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-burst patch: status %d: %s", rec.Code, rec.Body.String())
	}

	text := rawScrape(t, srv)
	if strings.Contains(text, `graph="racedel"`) {
		t.Errorf("deleted graph's series resurrected:\n%s", grepLines(text, "racedel"))
	}
	for _, fam := range []string{
		"fg_graph_requests_total", "fg_graph_cost_pushes_total",
		"fg_graph_cost_edges_traversed_total",
	} {
		if !strings.Contains(text, fam+`{graph="racekeep"}`) {
			t.Errorf("%s missing for surviving graph", fam)
		}
	}

	// The cost report agrees: the deleted tenant is gone, the survivor is
	// billed.
	hrec, _ := doJSON(t, srv, "GET", "/v1/admin/tenants", "")
	if hrec.Code != http.StatusOK {
		t.Fatalf("tenants: status %d", hrec.Code)
	}
	var tenants TenantsResponse
	if err := json.Unmarshal(hrec.Body.Bytes(), &tenants); err != nil {
		t.Fatal(err)
	}
	var keep *TenantCost
	for i := range tenants.Tenants {
		switch tenants.Tenants[i].Graph {
		case "racedel":
			t.Errorf("deleted tenant still in cost report: %+v", tenants.Tenants[i])
		case "racekeep":
			keep = &tenants.Tenants[i]
		}
	}
	if keep == nil {
		t.Fatal("surviving tenant missing from cost report")
	}
	if keep.Requests == 0 || keep.WorkUnits == 0 {
		t.Errorf("surviving tenant has no accounted work: %+v", keep)
	}
}
