// Package serve is the HTTP/JSON layer over the multi-tenant graph
// registry: request validation, wire types and handlers for the
// classification service exposed by cmd/serve.
//
// Graph management:
//
//	POST   /v1/graphs              register a graph (synthetic spec, server
//	                               file paths, or inline upload)
//	GET    /v1/graphs              list graphs with per-graph stats
//	GET    /v1/graphs/{name}       one graph's state and stats
//	DELETE /v1/graphs/{name}       unregister (in-flight requests drain)
//	GET    /v1/admin/registry      registry totals + per-graph stats
//
// Per-graph serving (engines are built lazily on first use, evicted LRU
// under the registry's memory budget, and rebuilt transparently):
//
//	POST  /v1/graphs/{name}/estimate  run a compatibility estimator
//	POST  /v1/graphs/{name}/classify  classify nodes; NDJSON streaming and
//	                                  gzip (Accept-Encoding) for large results
//	GET   /v1/graphs/{name}/labels    current seed labels
//	PATCH /v1/graphs/{name}/labels    incremental seed updates
//	PATCH /v1/graphs/{name}/edges     streaming topology mutations (edge
//	                                  add/remove, node additions; JSON
//	                                  batch or NDJSON stream)
//
// The single-graph endpoints of PR 1 (POST /v1/estimate, POST /v1/classify,
// GET|PATCH /v1/labels, GET /healthz) remain as aliases for the graph named
// "default", which cmd/serve pre-registers from its -synthetic/-edges
// flags, so existing clients keep working unchanged.
//
// Observability:
//
//	GET /metrics            Prometheus text exposition of the whole stack
//	GET /v1/admin/build     the serving binary: module, VCS, Go, GOMAXPROCS
//	/debug/pprof/*          with Options.Pprof (cmd/serve -pprof)
//	POST .../classify?debug=1   per-stage timing breakdown in the response
//
// Every route is wrapped in a telemetry middleware (request counts,
// latency histograms, error classes, in-flight gauge) and, when
// Options.Logger is set, a debug-level access log.
package serve

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"factorgraph"
	"factorgraph/internal/registry"
	"factorgraph/internal/telemetry"
)

// DefaultGraph is the graph name the legacy single-graph endpoints resolve
// to; cmd/serve pre-registers it from its flags.
const DefaultGraph = "default"

// maxBodyBytes bounds ordinary request bodies; a classify request listing
// every node of a 10M-node graph is ~80MB, far above any sane request.
const maxBodyBytes = 8 << 20

// maxUploadBytes bounds POST /v1/graphs bodies, which may carry a whole
// inline edge list.
const maxUploadBytes = 64 << 20

// defaultFlushEvery is how many NDJSON records are written between explicit
// flushes when Options.FlushEvery is unset, so large streaming responses
// reach slow clients incrementally.
const defaultFlushEvery = 256

// Options tunes the HTTP layer.
type Options struct {
	// FlushEvery is the initial (and minimum) NDJSON record interval
	// between explicit flushes on streaming classify responses (default
	// 256; lower = lower latency to first byte for slow consumers, higher
	// = fewer syscalls). The interval is backpressure-aware: when a flush
	// stalls on a slow client the interval doubles (up to 16× this value)
	// so the handler amortizes the stalls, and it halves back once writes
	// are fast again.
	FlushEvery int
	// Logger, when set, emits debug-level access logs (route, method,
	// status, duration, graph) through the wrapping middleware. nil
	// disables access logging; metrics are collected either way.
	Logger *slog.Logger
	// Pprof mounts net/http/pprof under /debug/pprof/ on the server's own
	// mux. cmd/serve sets it for same-port profiling; a separate admin
	// listener (-metrics-addr) mounts its own handlers instead.
	Pprof bool

	// TimelineInterval / TimelineSamples size the flight recorder's
	// rolling ring behind GET /v1/admin/timeline: one point per interval,
	// samples points of history per series (defaults 10s × 90 — 15
	// minutes). Zero values take the defaults.
	TimelineInterval time.Duration
	TimelineSamples  int
	// SlowLogFactor scales the tracked p99 latency into the slow-query
	// capture threshold (default 3: capture requests 3× slower than the
	// recent p99). SlowLogFloor, when set, is a hard minimum threshold —
	// and doubles as the pre-warmup threshold so cold servers with a
	// floor still capture. SlowLogCapacity bounds the capture ring
	// (default 64 entries).
	SlowLogFactor   float64
	SlowLogFloor    time.Duration
	SlowLogCapacity int

	// TraceSampleRate is the head-sampling fraction of requests whose
	// span trees are captured into the in-process trace store behind
	// GET /v1/admin/traces (0 = the 1% default, negative = off). The
	// decision is deterministic on the trace id, so an inbound W3C
	// traceparent sampled upstream is honored regardless of the local
	// rate, and errors (5xx) and slow-log threshold exceedances are
	// force-captured even at rate 0. TraceStoreCapacity bounds the trace
	// ring (default 256 entries; the oldest is evicted).
	TraceSampleRate    float64
	TraceStoreCapacity int
}

// Adaptive flush bounds: a flush slower than slowFlushLatency doubles the
// interval (the client, not the engine, is the bottleneck — flush less);
// one faster than fastFlushLatency halves it back toward the configured
// floor. maxFlushScale caps the growth so a stalled client still receives
// records in bounded batches.
const (
	maxFlushScale    = 16
	slowFlushLatency = 3 * time.Millisecond
	fastFlushLatency = 300 * time.Microsecond
)

// nextFlushInterval is the backpressure controller: pure so the boundary
// behavior is unit-testable.
func nextFlushInterval(cur, base int, flushDur time.Duration) int {
	switch {
	case flushDur > slowFlushLatency && cur < base*maxFlushScale:
		cur *= 2
		if cur > base*maxFlushScale {
			cur = base * maxFlushScale
		}
	case flushDur < fastFlushLatency && cur > base:
		cur /= 2
		if cur < base {
			cur = base
		}
	}
	return cur
}

// Server routes HTTP requests to engines resolved through a graph registry.
type Server struct {
	reg        *registry.Registry
	mux        *http.ServeMux
	start      time.Time
	flushEvery int
	log        *slog.Logger
	rec        *recorder
}

// New builds a single-graph Server around an initialized engine: the engine
// is registered as the pinned "default" graph of a fresh registry. This is
// the PR 1 constructor, kept so embedders (and the original tests) work
// unchanged.
func New(eng *factorgraph.Engine) *Server {
	reg := registry.New(registry.Options{})
	if err := reg.RegisterEngine(DefaultGraph, eng); err != nil {
		// A fresh registry cannot collide on "default"; a failure here is
		// a programming error, not a runtime condition.
		panic(err)
	}
	return NewMulti(reg, Options{})
}

// NewMulti builds a multi-tenant Server over an existing registry.
func NewMulti(reg *registry.Registry, o Options) *Server {
	if o.FlushEvery <= 0 {
		o.FlushEvery = defaultFlushEvery
	}
	s := &Server{reg: reg, mux: http.NewServeMux(), start: time.Now(), flushEvery: o.FlushEvery, log: o.Logger}
	s.rec = newRecorder(o)
	// The registry drives per-graph series lifecycle: gauges refresh while
	// the engine is still pinned, and every per-graph series is dropped
	// when the graph is deleted or fully evicted.
	reg.SetHooks(registry.Hooks{OnRelease: s.rec.refresh, OnForget: s.rec.forget})
	s.rec.trackGlobals(s)
	s.rec.timeline.Start()

	s.route("GET /healthz", "healthz", s.handleHealth)
	s.route("GET /v1/admin/registry", "admin_registry", s.handleAdmin)
	s.route("GET /v1/admin/build", "admin_build", s.handleBuildInfo)
	s.route("GET /v1/admin/timeline", "admin_timeline", s.handleTimeline)
	s.route("GET /v1/admin/slowlog", "admin_slowlog", s.handleSlowLog)
	s.route("GET /v1/admin/health", "admin_health", s.handleNumericHealth)
	s.route("GET /v1/admin/traces", "admin_traces", s.handleTraces)
	s.route("GET /v1/admin/tenants", "admin_tenants", s.handleTenants)

	metrics := telemetry.Handler(telemetry.Default())
	s.route("GET /metrics", "metrics", func(w http.ResponseWriter, r *http.Request) {
		metrics.ServeHTTP(w, r)
	})

	s.route("POST /v1/graphs", "graph_create", s.handleGraphCreate)
	s.route("GET /v1/graphs", "graph_list", s.handleGraphList)
	s.route("GET /v1/graphs/{name}", "graph_get", s.handleGraphGet)
	s.route("DELETE /v1/graphs/{name}", "graph_delete", s.handleGraphDelete)

	s.route("POST /v1/graphs/{name}/estimate", "estimate", s.withEngine("estimate", s.handleEstimate))
	s.route("POST /v1/graphs/{name}/classify", "classify", s.withEngine("classify", s.handleClassify))
	s.route("GET /v1/graphs/{name}/labels", "labels_get", s.withEngine("labels_get", s.handleLabelsGet))
	s.route("PATCH /v1/graphs/{name}/labels", "labels_patch", s.withEngine("labels_patch", s.handleLabelsPatch))
	s.route("PATCH /v1/graphs/{name}/edges", "edges_patch", s.withEngine("edges_patch", s.handleEdgesPatch))

	// Legacy single-graph aliases resolving to the default graph. They share
	// the canonical route's metric series.
	s.route("POST /v1/estimate", "estimate", s.withEngine("estimate", s.handleEstimate))
	s.route("POST /v1/classify", "classify", s.withEngine("classify", s.handleClassify))
	s.route("GET /v1/labels", "labels_get", s.withEngine("labels_get", s.handleLabelsGet))
	s.route("PATCH /v1/labels", "labels_patch", s.withEngine("labels_patch", s.handleLabelsPatch))

	if o.Pprof {
		// Unwrapped: profile downloads run for -seconds and would distort
		// the request latency series.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Registry exposes the backing registry (cmd/serve registers the default
// graph through it before listening).
func (s *Server) Registry() *registry.Registry { return s.reg }

// Close stops the flight recorder's background sampler. The Server holds
// no listeners of its own; cmd/serve calls this during shutdown.
func (s *Server) Close() { s.rec.timeline.Stop() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// withEngine resolves the request's graph (the {name} path component, or
// "default" on the legacy routes) through the registry — building the
// engine if it is cold or was evicted — and pins it for the duration of the
// handler via the registry refcount, so eviction can never close an engine
// mid-request. It is also the tracing boundary and the flight recorder's
// capture point: the inbound W3C traceparent (when present) is extracted
// into the request trace that rides the context (handlers thread it into
// engine queries), the response carries a traceparent naming this request's
// root span, and on the way out the trace is captured into the trace store
// when sampled (or forced by an error or the slow-log threshold), the
// per-graph counters and cost rollup land, and the latency histograms gain
// an exemplar linking to the captured trace. kind names the request class
// for the query/patch/mutation counters, the slow-log entries and the
// synthesized root span.
func (s *Server) withEngine(kind string, fn func(http.ResponseWriter, *http.Request, *factorgraph.Engine)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if name == "" {
			name = DefaultGraph
		}
		eng, release, err := s.reg.Acquire(name)
		if err != nil {
			writeRegistryError(w, err)
			return
		}
		defer release()
		tr := s.rec.startTrace(r)
		if tr != nil {
			// Inject before the handler writes the header: the client learns
			// this request's root span id and the sampling verdict, so a
			// round-tripped traceparent proves context propagation.
			w.Header().Set("traceparent",
				telemetry.Traceparent(tr.TraceID(), tr.RootSpanID(), tr.Sampled()))
		}
		start := time.Now()
		fn(w, r.WithContext(telemetry.WithTrace(r.Context(), tr)), eng)
		d := time.Since(start)
		status := http.StatusOK
		sw, _ := w.(*statusWriter)
		if sw != nil && sw.status != 0 {
			status = sw.status
		}
		exemplar := s.rec.capture(name, kind, d, status, tr)
		if sw != nil {
			sw.exemplar = exemplar
		}
		s.rec.observe(name, kind, d, tr, exemplar)
	}
}

// writeRegistryError maps registry errors to status codes: unknown graph is
// the caller's 404, anything else (an engine build failure) is the
// server's 500.
func writeRegistryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, registry.ErrNotFound):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, registry.ErrExists):
		writeError(w, http.StatusConflict, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeJSONNegotiated is writeJSON with gzip content negotiation: the body
// is compressed when the client advertised Accept-Encoding: gzip.
func writeJSONNegotiated(w http.ResponseWriter, r *http.Request, status int, v any) {
	if !acceptsGzip(r) {
		writeJSON(w, status, v)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Encoding", "gzip")
	w.WriteHeader(status)
	gz := gzip.NewWriter(w)
	_ = json.NewEncoder(gz).Encode(v)
	_ = gz.Close()
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, APIError{Error: fmt.Sprintf(format, args...)})
}

// decodeBody decodes a JSON body into v with strict field checking. An
// empty body decodes as the zero value, so every POST/PATCH field is
// optional by default.
func decodeBody(w http.ResponseWriter, r *http.Request, v any, limit int64) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return true
		}
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return false
	}
	return true
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	rs := s.reg.Stats()
	h := Health{
		Status:        "ok",
		Graphs:        rs.Graphs,
		GraphsBuilt:   rs.Built,
		ResidentBytes: rs.ResidentBytes,
		GoVersion:     runtime.Version(),
		UptimeMS:      float64(time.Since(s.start)) / float64(time.Millisecond),
	}
	// The default graph's engine details are reported when resident, for
	// compatibility with single-graph deployments. AcquireIfBuilt never
	// triggers a build: a liveness probe must stay O(1).
	if eng, release, ok := s.reg.AcquireIfBuilt(DefaultGraph); ok {
		defer release()
		st := eng.Stats()
		// Live dimensions: streaming mutations move them between builds.
		h.Nodes, h.Edges = eng.Dims()
		h.Classes = eng.K()
		h.Labeled = eng.LabeledCount()
		h.Estimations, h.Propagations, h.Queries = st.Estimations, st.Propagations, st.Queries
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleAdmin(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, AdminResponse{
		Stats:  s.reg.Stats(),
		Graphs: s.reg.List(),
	})
}

func (s *Server) handleBuildInfo(w http.ResponseWriter, r *http.Request) {
	resp := BuildResponse{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		resp.Path = bi.Main.Path
		resp.Version = bi.Main.Version
		for _, st := range bi.Settings {
			switch st.Key {
			case "vcs.revision", "vcs.time", "vcs.modified", "GOARCH", "GOOS", "-buildmode":
				if resp.Build == nil {
					resp.Build = make(map[string]string)
				}
				resp.Build[st.Key] = st.Value
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleGraphCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateGraphRequest
	if !decodeBody(w, r, &req, maxUploadBytes) {
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, "graph name is required")
		return
	}
	info, err := s.reg.Register(req.Name, req.Spec())
	if err != nil {
		if errors.Is(err, registry.ErrExists) {
			writeRegistryError(w, err)
		} else {
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	if req.Warm {
		// Build the engine now rather than on first query. A failed warm
		// build unregisters the graph so creation stays all-or-nothing.
		_, release, err := s.reg.Acquire(req.Name)
		if err != nil {
			_ = s.reg.Delete(req.Name)
			writeError(w, http.StatusUnprocessableEntity, "graph build failed: %v", err)
			return
		}
		release()
		info, _ = s.reg.Info(req.Name)
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleGraphList(w http.ResponseWriter, r *http.Request) {
	graphs := s.reg.List()
	writeJSON(w, http.StatusOK, GraphListResponse{Count: len(graphs), Graphs: graphs})
}

func (s *Server) handleGraphGet(w http.ResponseWriter, r *http.Request) {
	info, err := s.reg.Info(r.PathValue("name"))
	if err != nil {
		writeRegistryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleGraphDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.reg.Delete(name); err != nil {
		writeRegistryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, DeleteGraphResponse{Deleted: name})
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request, eng *factorgraph.Engine) {
	var req EstimateRequest
	if !decodeBody(w, r, &req, maxBodyBytes) {
		return
	}
	est, err := eng.EstimateWith(req.Method, factorgraph.EstimateOptions{
		LMax: req.LMax, Lambda: req.Lambda, Restarts: req.Restarts, Seed: req.Seed,
	})
	if errors.Is(err, factorgraph.ErrUnknownEstimator) {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "estimation failed: %v", err)
		return
	}
	if req.Apply {
		if err := eng.SetH(est.H, est.Method); err != nil {
			writeError(w, http.StatusInternalServerError, "apply failed: %v", err)
			return
		}
	}
	h := make([][]float64, est.H.Rows)
	for i := range h {
		h[i] = append([]float64(nil), est.H.Row(i)...)
	}
	writeJSONNegotiated(w, r, http.StatusOK, EstimateResponse{
		Method:    est.Method,
		H:         h,
		RuntimeMS: float64(est.Runtime) / float64(time.Millisecond),
		Applied:   req.Apply,
	})
}

// acceptsGzip reports whether the client advertised gzip support. A
// qvalue of 0 ("gzip;q=0") means gzip is explicitly NOT acceptable
// (RFC 9110 §12.4.2).
func acceptsGzip(r *http.Request) bool {
	for _, enc := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		parts := strings.Split(enc, ";")
		if strings.TrimSpace(parts[0]) != "gzip" {
			continue
		}
		for _, param := range parts[1:] {
			if v, ok := strings.CutPrefix(strings.TrimSpace(param), "q="); ok {
				if q, err := strconv.ParseFloat(v, 64); err != nil || q == 0 {
					return false
				}
			}
		}
		return true
	}
	return false
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request, eng *factorgraph.Engine) {
	var req ClassifyRequest
	if !decodeBody(w, r, &req, maxBodyBytes) {
		return
	}
	q, err := req.Query()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	gzipOK := acceptsGzip(r)
	if !req.Stream {
		// The middleware's stage trace threads through the query: the
		// engine records where the time went (overlay vs resolve vs emit),
		// the slow-query log captures it when the request lands beyond the
		// adaptive threshold, and debug=1 additionally returns the
		// breakdown in the response.
		tr := telemetry.TraceFrom(r.Context())
		q.Trace = tr
		debug := r.URL.Query().Get("debug") == "1"
		var results []factorgraph.NodeResult
		if q.Nodes != nil {
			results = make([]factorgraph.NodeResult, 0, len(q.Nodes))
		}
		meta, err := eng.ClassifyEachMeta(q, func(res factorgraph.NodeResult) error {
			results = append(results, res)
			return nil
		})
		if err != nil {
			writeError(w, classifyStatus(err), "%v", err)
			return
		}
		resp := ClassifyResponse{
			Count: len(results), Results: results,
			Residual: meta.Residual, PushedNodes: meta.PushedNodes,
			TouchedEdges: meta.TouchedEdges, ClonedRows: meta.ClonedRows,
			Cached: meta.CacheHit,
		}
		if debug && tr != nil {
			for _, sp := range tr.Spans() {
				resp.Stages = append(resp.Stages, StageTiming{
					Stage: sp.Name,
					Us:    float64(sp.Dur) / float64(time.Microsecond),
				})
			}
		}
		writeJSONNegotiated(w, r, http.StatusOK, resp)
		return
	}
	// NDJSON streaming: records are produced and written one at a time via
	// ClassifyEach (node validation happens before the first record), so a
	// classify-everything request over a huge graph never materializes the
	// full result set server-side. Flushed every flushEvery records so the
	// response reaches slow clients incrementally; with gzip the compressor
	// is flushed on the same cadence, trading a little ratio for latency.
	headerSent := false
	var gz *gzip.Writer
	var enc *json.Encoder
	sendHeader := func() {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if gzipOK {
			w.Header().Set("Content-Encoding", "gzip")
		}
		w.WriteHeader(http.StatusOK)
		if gzipOK {
			gz = gzip.NewWriter(w)
			enc = json.NewEncoder(gz)
		} else {
			enc = json.NewEncoder(w)
		}
		headerSent = true
	}
	flusher, _ := w.(http.Flusher)
	interval := s.flushEvery
	sinceFlush := 0
	err = eng.ClassifyEach(q, func(res factorgraph.NodeResult) error {
		if !headerSent {
			sendHeader()
		}
		if err := enc.Encode(&res); err != nil {
			return err // client went away
		}
		sinceFlush++
		if sinceFlush >= interval {
			mNDJSONRecords.Add(int64(sinceFlush))
			sinceFlush = 0
			start := time.Now()
			if gz != nil {
				_ = gz.Flush()
			}
			if flusher != nil {
				flusher.Flush()
			}
			flushDur := time.Since(start)
			mNDJSONFlushes.Inc()
			hNDJSONFlush.Observe(flushDur.Seconds())
			if flushDur > slowFlushLatency {
				mNDJSONSlowFlushes.Inc()
			}
			// Backpressure-aware chunk sizing: scale the interval by the
			// observed write latency instead of flushing a slow client on
			// the static cadence.
			interval = nextFlushInterval(interval, s.flushEvery, flushDur)
		}
		return nil
	})
	if sinceFlush > 0 {
		mNDJSONRecords.Add(int64(sinceFlush)) // trailing partial batch
	}
	if err != nil && !headerSent {
		writeError(w, classifyStatus(err), "%v", err)
		return
	}
	if err == nil && !headerSent {
		sendHeader() // valid zero-record stream, e.g. "nodes":[]
	}
	if gz != nil {
		_ = gz.Close()
	}
	if flusher != nil {
		flusher.Flush()
	}
}

// classifyStatus maps a Classify error to a status class: engine faults are
// the server's, everything else is request validation.
func classifyStatus(err error) int {
	if errors.Is(err, factorgraph.ErrEngineInternal) || errors.Is(err, factorgraph.ErrEngineClosed) {
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

// handleEdgesPatch applies a streaming topology mutation batch. Two body
// formats: a JSON EdgesPatch, or (Content-Type: application/x-ndjson) one
// EdgeOp per line, so mutation feeds can stream without buffering
// client-side. Mutations require an incremental engine (409 otherwise).
func (s *Server) handleEdgesPatch(w http.ResponseWriter, r *http.Request, eng *factorgraph.Engine) {
	var (
		addNodes int
		muts     []factorgraph.EdgeMutation
		compact  bool
	)
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/x-ndjson") {
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUploadBytes))
		for {
			var op EdgeOp
			if err := dec.Decode(&op); err != nil {
				if errors.Is(err, io.EOF) {
					break
				}
				writeError(w, http.StatusBadRequest, "invalid NDJSON edge op: %v", err)
				return
			}
			switch op.Op {
			case "set":
				muts = append(muts, factorgraph.EdgeMutation{U: op.U, V: op.V, W: op.W})
			case "remove":
				muts = append(muts, factorgraph.EdgeMutation{U: op.U, V: op.V, Remove: true})
			case "add_nodes":
				if op.Count < 0 {
					writeError(w, http.StatusBadRequest, "add_nodes count %d is negative", op.Count)
					return
				}
				addNodes += op.Count
			case "compact":
				compact = true
			default:
				writeError(w, http.StatusBadRequest, "unknown edge op %q (want set, remove, add_nodes or compact)", op.Op)
				return
			}
		}
	} else {
		var req EdgesPatch
		if !decodeBody(w, r, &req, maxUploadBytes) {
			return
		}
		if req.AddNodes < 0 {
			writeError(w, http.StatusBadRequest, "add_nodes %d is negative", req.AddNodes)
			return
		}
		addNodes = req.AddNodes
		compact = req.Compact
		for _, e := range req.Set {
			if len(e) != 2 && len(e) != 3 {
				writeError(w, http.StatusBadRequest, "set entry %v: want [u, v] or [u, v, w]", e)
				return
			}
			m := factorgraph.EdgeMutation{U: int(e[0]), V: int(e[1])}
			if float64(m.U) != e[0] || float64(m.V) != e[1] {
				writeError(w, http.StatusBadRequest, "set entry %v: node ids must be integers", e)
				return
			}
			if len(e) == 3 {
				m.W = e[2]
			}
			muts = append(muts, m)
		}
		for _, e := range req.Remove {
			if len(e) != 2 {
				writeError(w, http.StatusBadRequest, "remove entry %v: want [u, v]", e)
				return
			}
			muts = append(muts, factorgraph.EdgeMutation{U: e[0], V: e[1], Remove: true})
		}
	}
	if addNodes == 0 && len(muts) == 0 && !compact {
		writeError(w, http.StatusBadRequest, "edge patch has no add_nodes, set, remove or compact")
		return
	}
	var meta factorgraph.MutateMeta
	var err error
	if addNodes > 0 || len(muts) > 0 {
		// The Ctx variant threads the middleware's trace into the engine:
		// sampled mutations record the engine.mutate span tree and their
		// push work lands in the per-tenant cost rollup.
		meta, err = eng.MutateTopologyCtx(r.Context(), addNodes, muts)
	} else {
		meta, err = eng.CompactTopology()
		compact = false // already done
	}
	if err != nil {
		writeError(w, edgesPatchStatus(err), "%v", err)
		return
	}
	if compact && !meta.Compacted {
		cm, err := eng.CompactTopology()
		if err != nil {
			writeError(w, edgesPatchStatus(err), "%v", err)
			return
		}
		meta.Compacted = cm.Compacted
		meta.Rescaled = meta.Rescaled || cm.Rescaled
		meta.Nodes, meta.Edges, meta.OverlayFraction = cm.Nodes, cm.Edges, cm.OverlayFraction
	}
	mode := "full"
	if meta.Residual {
		mode = "residual"
	}
	writeJSON(w, http.StatusOK, EdgesPatchResponse{
		Nodes: meta.Nodes, Edges: meta.Edges,
		AddedNodes: meta.AddedNodes, SetEdges: meta.SetEdges,
		RemovedEdges: meta.RemovedEdges, MissingRemoves: meta.MissingRemoves,
		Mode: mode, PushedNodes: meta.PushedNodes, TouchedEdges: meta.TouchedEdges,
		FellBack: meta.FellBack, Compacted: meta.Compacted, Rescaled: meta.Rescaled,
		Compacting:      meta.CompactPending,
		OverlayFraction: meta.OverlayFraction,
	})
}

// edgesPatchStatus maps a MutateTopology error: an immutable topology is
// the caller addressing the wrong kind of graph (409 — re-register with
// "incremental": true), engine faults are 5xx, anything else is request
// validation.
func edgesPatchStatus(err error) int {
	switch {
	case errors.Is(err, factorgraph.ErrTopologyImmutable):
		return http.StatusConflict
	case errors.Is(err, factorgraph.ErrEngineClosed), errors.Is(err, factorgraph.ErrEngineInternal):
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

func (s *Server) handleLabelsGet(w http.ResponseWriter, r *http.Request, eng *factorgraph.Engine) {
	seeds := eng.Seeds()
	out := make(map[string]int)
	for node, c := range seeds {
		if c != factorgraph.Unlabeled {
			out[strconv.Itoa(node)] = c
		}
	}
	writeJSON(w, http.StatusOK, LabelsResponse{Count: len(out), Labels: out})
}

func (s *Server) handleLabelsPatch(w http.ResponseWriter, r *http.Request, eng *factorgraph.Engine) {
	var req LabelsPatch
	if !decodeBody(w, r, &req, maxBodyBytes) {
		return
	}
	if len(req.Set) == 0 && len(req.Remove) == 0 && !req.Reestimate {
		writeError(w, http.StatusBadRequest, "patch has no set, remove or reestimate")
		return
	}
	set := make(map[int]int, len(req.Set))
	for key, c := range req.Set {
		node, err := strconv.Atoi(key)
		if err != nil {
			writeError(w, http.StatusBadRequest, "set key %q is not a node id", key)
			return
		}
		set[node] = c
	}
	var meta factorgraph.PatchMeta
	if len(set) > 0 || len(req.Remove) > 0 {
		var err error
		// The Ctx variant threads the middleware's trace into the engine:
		// sampled patches record the engine.patch span tree and their push
		// work lands in the per-tenant cost rollup.
		if meta, err = eng.UpdateLabelsMetaCtx(r.Context(), set, req.Remove); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if req.Reestimate {
		if _, err := eng.Reestimate(); err != nil {
			// The label updates above WERE applied (set/remove are
			// idempotent, so a retry is safe); only the re-estimation
			// failed. Say so, or a client would assume the patch was
			// rejected wholesale.
			writeError(w, http.StatusUnprocessableEntity,
				"labels applied, but re-estimation failed: %v", err)
			return
		}
	}
	mode := "full"
	if meta.Residual {
		mode = "residual"
	}
	writeJSON(w, http.StatusOK, LabelsPatchResponse{
		Labeled:      eng.LabeledCount(),
		Reestimated:  req.Reestimate,
		Mode:         mode,
		PushedNodes:  meta.PushedNodes,
		TouchedEdges: meta.TouchedEdges,
		FellBack:     meta.FellBack,
	})
}
