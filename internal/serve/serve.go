// Package serve is the HTTP/JSON layer over the long-lived factorgraph
// Engine: request validation, wire types and handlers for the
// classification service exposed by cmd/serve.
//
// Endpoints:
//
//	GET   /healthz      liveness + engine statistics
//	POST  /v1/estimate  run a compatibility estimator (optionally apply)
//	POST  /v1/classify  classify nodes; NDJSON streaming for large results
//	GET   /v1/labels    current seed labels
//	PATCH /v1/labels    incremental seed updates (no rebuild, no re-estimate
//	                    unless requested)
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"factorgraph"
)

// maxBodyBytes bounds request bodies; a classify request listing every node
// of a 10M-node graph is ~80MB, far above any sane request.
const maxBodyBytes = 8 << 20

// streamFlushEvery is how many NDJSON records are written between explicit
// flushes, so large streaming responses reach slow clients incrementally.
const streamFlushEvery = 256

// Server routes HTTP requests to a factorgraph.Engine.
type Server struct {
	eng   *factorgraph.Engine
	mux   *http.ServeMux
	start time.Time
}

// New builds a Server around an initialized engine.
func New(eng *factorgraph.Engine) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("POST /v1/estimate", s.handleEstimate)
	s.mux.HandleFunc("POST /v1/classify", s.handleClassify)
	s.mux.HandleFunc("GET /v1/labels", s.handleLabelsGet)
	s.mux.HandleFunc("PATCH /v1/labels", s.handleLabelsPatch)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, APIError{Error: fmt.Sprintf(format, args...)})
}

// decodeBody decodes a JSON body into v with strict field checking. An
// empty body decodes as the zero value, so every POST/PATCH field is
// optional by default.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return true
		}
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return false
	}
	return true
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	g := s.eng.Graph()
	st := s.eng.Stats()
	writeJSON(w, http.StatusOK, Health{
		Status:       "ok",
		Nodes:        g.N,
		Edges:        g.M,
		Classes:      s.eng.K(),
		Labeled:      s.eng.LabeledCount(),
		Estimations:  st.Estimations,
		Propagations: st.Propagations,
		Queries:      st.Queries,
		UptimeMS:     float64(time.Since(s.start)) / float64(time.Millisecond),
	})
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req EstimateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	est, err := s.eng.EstimateWith(req.Method, factorgraph.EstimateOptions{
		LMax: req.LMax, Lambda: req.Lambda, Restarts: req.Restarts, Seed: req.Seed,
	})
	if errors.Is(err, factorgraph.ErrUnknownEstimator) {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "estimation failed: %v", err)
		return
	}
	if req.Apply {
		if err := s.eng.SetH(est.H, est.Method); err != nil {
			writeError(w, http.StatusInternalServerError, "apply failed: %v", err)
			return
		}
	}
	h := make([][]float64, est.H.Rows)
	for i := range h {
		h[i] = append([]float64(nil), est.H.Row(i)...)
	}
	writeJSON(w, http.StatusOK, EstimateResponse{
		Method:    est.Method,
		H:         h,
		RuntimeMS: float64(est.Runtime) / float64(time.Millisecond),
		Applied:   req.Apply,
	})
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req ClassifyRequest
	if !decodeBody(w, r, &req) {
		return
	}
	q, err := req.Query()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !req.Stream {
		results, err := s.eng.Classify(q)
		if err != nil {
			writeError(w, classifyStatus(err), "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, ClassifyResponse{Count: len(results), Results: results})
		return
	}
	// NDJSON streaming: records are produced and written one at a time via
	// ClassifyEach (node validation happens before the first record), so a
	// classify-everything request over a huge graph never materializes the
	// full result set server-side. Flushed in chunks so the response
	// reaches slow clients incrementally.
	headerSent := false
	sendHeader := func() {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		headerSent = true
	}
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	i := 0
	err = s.eng.ClassifyEach(q, func(r factorgraph.NodeResult) error {
		if !headerSent {
			sendHeader()
		}
		if err := enc.Encode(&r); err != nil {
			return err // client went away
		}
		i++
		if flusher != nil && i%streamFlushEvery == 0 {
			flusher.Flush()
		}
		return nil
	})
	if err != nil && !headerSent {
		writeError(w, classifyStatus(err), "%v", err)
		return
	}
	if err == nil && !headerSent {
		sendHeader() // valid zero-record stream, e.g. "nodes":[]
	}
	if flusher != nil {
		flusher.Flush()
	}
}

// classifyStatus maps a Classify error to a status class: engine faults are
// the server's, everything else is request validation.
func classifyStatus(err error) int {
	if errors.Is(err, factorgraph.ErrEngineInternal) {
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

func (s *Server) handleLabelsGet(w http.ResponseWriter, r *http.Request) {
	seeds := s.eng.Seeds()
	out := make(map[string]int)
	for node, c := range seeds {
		if c != factorgraph.Unlabeled {
			out[strconv.Itoa(node)] = c
		}
	}
	writeJSON(w, http.StatusOK, LabelsResponse{Count: len(out), Labels: out})
}

func (s *Server) handleLabelsPatch(w http.ResponseWriter, r *http.Request) {
	var req LabelsPatch
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Set) == 0 && len(req.Remove) == 0 && !req.Reestimate {
		writeError(w, http.StatusBadRequest, "patch has no set, remove or reestimate")
		return
	}
	set := make(map[int]int, len(req.Set))
	for key, c := range req.Set {
		node, err := strconv.Atoi(key)
		if err != nil {
			writeError(w, http.StatusBadRequest, "set key %q is not a node id", key)
			return
		}
		set[node] = c
	}
	if len(set) > 0 || len(req.Remove) > 0 {
		if err := s.eng.UpdateLabels(set, req.Remove); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if req.Reestimate {
		if _, err := s.eng.Reestimate(); err != nil {
			// The label updates above WERE applied (set/remove are
			// idempotent, so a retry is safe); only the re-estimation
			// failed. Say so, or a client would assume the patch was
			// rejected wholesale.
			writeError(w, http.StatusUnprocessableEntity,
				"labels applied, but re-estimation failed: %v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, LabelsPatchResponse{
		Labeled:     s.eng.LabeledCount(),
		Reestimated: req.Reestimate,
	})
}
