package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// incSynthBody registers an incremental synthetic graph.
func incSynthBody(name string, n, m int) string {
	return fmt.Sprintf(`{"name":%q,"incremental":true,"warm":true,"synthetic":{"n":%d,"m":%d,"f":0.1,"seed":7}}`, name, n, m)
}

func patchEdges(t *testing.T, srv *Server, graph, body string) (*httptest.ResponseRecorder, EdgesPatchResponse) {
	t.Helper()
	rec, _ := doJSON(t, srv, "PATCH", "/v1/graphs/"+graph+"/edges", body)
	var resp EdgesPatchResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad edges response %q: %v", rec.Body.String(), err)
		}
	}
	return rec, resp
}

// TestEdgesPatchLifecycle drives the full streaming-mutation surface over
// HTTP: batched adds/removes, node additions, forced compaction, admin
// counters, and the consistency of subsequent queries.
func TestEdgesPatchLifecycle(t *testing.T) {
	srv := newMultiServer(0, Options{})
	rec, _ := doJSON(t, srv, "POST", "/v1/graphs", incSynthBody("live", 400, 2000))
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d: %s", rec.Code, rec.Body.String())
	}
	// Warm query so mutations ride the residual subsystem.
	if rec, _ := doJSON(t, srv, "POST", "/v1/graphs/live/classify", `{"nodes":[0]}`); rec.Code != http.StatusOK {
		t.Fatalf("warm classify: %d", rec.Code)
	}

	// Batched JSON mutation: add a node wired to two existing nodes and
	// remove nothing yet.
	rec, resp := patchEdges(t, srv, "live", `{"add_nodes":1,"set":[[400,1],[400,2],[5,9]]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("edges patch: %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Nodes != 401 || resp.AddedNodes != 1 || resp.SetEdges != 3 {
		t.Errorf("patch response: %+v", resp)
	}
	if resp.Mode != "residual" || resp.PushedNodes == 0 {
		t.Errorf("warm mutation not residual: %+v", resp)
	}
	if resp.OverlayFraction <= 0 {
		t.Errorf("overlay fraction %v after mutation, want > 0", resp.OverlayFraction)
	}

	// The added node is queryable immediately.
	rec, _ = doJSON(t, srv, "POST", "/v1/graphs/live/classify", `{"nodes":[400],"top_k":2}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("classify new node: %d: %s", rec.Code, rec.Body.String())
	}

	// Remove one of the edges again, forcing a compaction with it.
	rec, resp = patchEdges(t, srv, "live", `{"remove":[[5,9],[7,333]],"compact":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("remove patch: %d: %s", rec.Code, rec.Body.String())
	}
	if resp.RemovedEdges != 1 || resp.MissingRemoves != 1 {
		t.Errorf("remove accounting: %+v", resp)
	}
	if !resp.Compacted || resp.OverlayFraction != 0 {
		t.Errorf("forced compaction not applied: %+v", resp)
	}

	// Admin surfaces the mutation counters and overlay fraction.
	rec, _ = doJSON(t, srv, "GET", "/v1/admin/registry", "")
	var admin AdminResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &admin); err != nil {
		t.Fatal(err)
	}
	if admin.Stats.EdgeMutations != 4 {
		t.Errorf("admin edge mutations = %d, want 4", admin.Stats.EdgeMutations)
	}
	found := false
	for _, g := range admin.Graphs {
		if g.Name == "live" {
			found = true
			if g.EdgeMutations != 4 || g.TopoCompactions == 0 {
				t.Errorf("graph info counters: %+v", g)
			}
			if g.Nodes != 401 {
				t.Errorf("admin nodes = %d, want 401 (refreshed live dims)", g.Nodes)
			}
			if !g.Mutated {
				t.Error("mutated flag not set after topology mutations")
			}
		}
	}
	if !found {
		t.Fatal("graph missing from admin listing")
	}
}

// TestEdgesPatchNDJSON streams the mutation feed line by line.
func TestEdgesPatchNDJSON(t *testing.T) {
	srv := newMultiServer(0, Options{})
	if rec, _ := doJSON(t, srv, "POST", "/v1/graphs", incSynthBody("live", 300, 1500)); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d", rec.Code)
	}
	if rec, _ := doJSON(t, srv, "POST", "/v1/graphs/live/classify", `{"nodes":[0]}`); rec.Code != http.StatusOK {
		t.Fatal("warm classify failed")
	}
	body := strings.Join([]string{
		`{"op":"add_nodes","count":2}`,
		`{"op":"set","u":300,"v":301}`,
		`{"op":"set","u":300,"v":4,"w":2}`,
		`{"op":"remove","u":300,"v":301}`,
	}, "\n")
	req := httptest.NewRequest("PATCH", "/v1/graphs/live/edges", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/x-ndjson")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("NDJSON patch: %d: %s", rec.Code, rec.Body.String())
	}
	var resp EdgesPatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Nodes != 302 || resp.AddedNodes != 2 || resp.SetEdges != 2 || resp.RemovedEdges != 1 {
		t.Errorf("NDJSON patch response: %+v", resp)
	}

	// Unknown op → 400.
	req = httptest.NewRequest("PATCH", "/v1/graphs/live/edges", strings.NewReader(`{"op":"frobnicate"}`))
	req.Header.Set("Content-Type", "application/x-ndjson")
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown op: %d, want 400", rec.Code)
	}
}

// TestEdgesPatchErrors covers the rejection paths: frozen engines (409),
// malformed bodies and out-of-range endpoints (400).
func TestEdgesPatchErrors(t *testing.T) {
	srv := newMultiServer(0, Options{})
	if rec, _ := doJSON(t, srv, "POST", "/v1/graphs", synthBody("frozen", 200, 1000)); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d", rec.Code)
	}
	if rec, _ := patchEdges(t, srv, "frozen", `{"set":[[0,1]]}`); rec.Code != http.StatusConflict {
		t.Errorf("frozen graph mutation: %d, want 409", rec.Code)
	}

	if rec, _ := doJSON(t, srv, "POST", "/v1/graphs", incSynthBody("live", 200, 1000)); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d", rec.Code)
	}
	for body, why := range map[string]string{
		`{}`:                   "empty patch",
		`{"set":[[1]]}`:        "short set tuple",
		`{"set":[[1.5,2]]}`:    "fractional node id",
		`{"set":[[0,200]]}`:    "out-of-range endpoint",
		`{"set":[[0,1,-3]]}`:   "negative weight",
		`{"set":[[7,7]]}`:      "self-loop upsert",
		`{"remove":[[7,7]]}`:   "self-loop removal",
		`{"remove":[[1,2,3]]}`: "long remove tuple",
		`{"add_nodes":-1}`:     "negative add_nodes",
		`{"bogus":true}`:       "unknown field",
	} {
		if rec, _ := patchEdges(t, srv, "live", body); rec.Code != http.StatusBadRequest {
			t.Errorf("%s (%s): %d, want 400", why, body, rec.Code)
		}
	}
	if rec, _ := patchEdges(t, srv, "missing", `{"set":[[0,1]]}`); rec.Code != http.StatusNotFound {
		t.Errorf("unknown graph: %d, want 404", rec.Code)
	}
}

// TestNextFlushInterval pins the backpressure controller's boundaries:
// slow flushes double the interval up to the cap, fast ones halve it back
// to the floor, mid-range latencies leave it alone.
func TestNextFlushInterval(t *testing.T) {
	const base = 256
	cases := []struct {
		cur  int
		dur  time.Duration
		want int
	}{
		{base, slowFlushLatency + time.Millisecond, 2 * base},           // slow → double
		{2 * base, slowFlushLatency + time.Millisecond, 4 * base},       // keeps doubling
		{base * maxFlushScale, time.Second, base * maxFlushScale},       // capped
		{base * maxFlushScale / 2, time.Second, base * maxFlushScale},   // doubles to exactly the cap
		{base, slowFlushLatency, base},                                  // boundary: not strictly slower
		{4 * base, fastFlushLatency / 2, 2 * base},                      // fast → halve
		{2 * base, fastFlushLatency / 2, base},                          // halves to the floor
		{base, fastFlushLatency / 2, base},                              // never below the floor
		{base, fastFlushLatency, base},                                  // boundary: not strictly faster
		{2 * base, (slowFlushLatency + fastFlushLatency) / 2, 2 * base}, // mid-range: hold
	}
	for _, c := range cases {
		if got := nextFlushInterval(c.cur, base, c.dur); got != c.want {
			t.Errorf("nextFlushInterval(%d, %d, %v) = %d, want %d", c.cur, base, c.dur, got, c.want)
		}
	}
}

// TestStreamingAdaptiveFlush: a streaming classify against a slow writer
// must still deliver every record (the adaptive interval changes flush
// cadence, never correctness).
func TestStreamingAdaptiveFlush(t *testing.T) {
	srv, _ := newTestServer(t, 500, 3000)
	req := httptest.NewRequest("POST", "/v1/classify", strings.NewReader(`{"stream":true}`))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stream: %d", rec.Code)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) != 500 {
		t.Fatalf("streamed %d records, want 500", len(lines))
	}
}

// TestEdgesPatchAsyncCompact registers an async_compact graph, drives it
// past the compaction threshold, and checks the epoch swap happens off the
// mutation path: the tripping PATCH returns compacting=true instead of
// compacted=true, and the background install eventually surfaces in the
// admin counters while queries keep serving.
func TestEdgesPatchAsyncCompact(t *testing.T) {
	srv := newMultiServer(0, Options{})
	body := `{"name":"bg","incremental":true,"async_compact":true,"compact_fraction":0.02,"warm":true,"synthetic":{"n":400,"m":2000,"f":0.1,"seed":7}}`
	if rec, _ := doJSON(t, srv, "POST", "/v1/graphs", body); rec.Code != http.StatusCreated {
		t.Fatalf("create: %d: %s", rec.Code, rec.Body.String())
	}
	if rec, _ := doJSON(t, srv, "POST", "/v1/graphs/bg/classify", `{"nodes":[0]}`); rec.Code != http.StatusOK {
		t.Fatalf("warm classify: %d", rec.Code)
	}
	sawPending := false
	for i := 0; i < 120; i++ {
		u, v := (i*3)%400, (i*7+11)%400
		if u == v {
			v = (v + 1) % 400
		}
		rec, resp := patchEdges(t, srv, "bg", fmt.Sprintf(`{"set":[[%d,%d]]}`, u, v))
		if rec.Code != http.StatusOK {
			t.Fatalf("patch %d: %d: %s", i, rec.Code, rec.Body.String())
		}
		if resp.Compacted {
			t.Fatalf("async graph compacted synchronously on patch %d: %+v", i, resp)
		}
		if resp.Compacting {
			sawPending = true
		}
	}
	if !sawPending {
		t.Error("no patch reported compacting=true despite crossing the threshold")
	}
	// The background swap lands shortly. Topology counters are refreshed
	// at request release, so poll with a query in front of each admin read.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if rec, _ := doJSON(t, srv, "POST", "/v1/graphs/bg/classify", `{"nodes":[1,2,3]}`); rec.Code != http.StatusOK {
			t.Fatalf("classify during swap: %d", rec.Code)
		}
		rec, _ := doJSON(t, srv, "GET", "/v1/admin/registry", "")
		var admin AdminResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &admin); err != nil {
			t.Fatal(err)
		}
		done := false
		for _, g := range admin.Graphs {
			if g.Name == "bg" && g.AsyncCompactions > 0 && !g.Compacting {
				done = true
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background compaction never installed")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
