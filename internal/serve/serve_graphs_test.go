package serve

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"factorgraph"
	"factorgraph/internal/registry"
)

// newMultiServer builds an empty multi-tenant server with the given memory
// budget (0 = unlimited).
func newMultiServer(budget int64, o Options) *Server {
	return NewMulti(registry.New(registry.Options{MemoryBudget: budget}), o)
}

// synthBody is a POST /v1/graphs body for a small synthetic graph.
func synthBody(name string, n, m int) string {
	return fmt.Sprintf(`{"name":%q,"synthetic":{"n":%d,"m":%d,"f":0.1,"seed":7}}`, name, n, m)
}

func TestGraphLifecycle(t *testing.T) {
	srv := newMultiServer(0, Options{})

	// Create.
	rec, _ := doJSON(t, srv, "POST", "/v1/graphs", synthBody("web", 300, 1500))
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: status %d: %s", rec.Code, rec.Body.String())
	}
	var info registry.GraphInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "web" || info.State != "cold" || info.Nodes != 300 || info.Classes != 3 {
		t.Errorf("create response: %+v", info)
	}

	// Duplicate name → 409.
	rec, _ = doJSON(t, srv, "POST", "/v1/graphs", synthBody("web", 100, 500))
	if rec.Code != http.StatusConflict {
		t.Errorf("duplicate create: status %d, want 409", rec.Code)
	}

	// First classify lazily builds the engine.
	rec, _ = doJSON(t, srv, "POST", "/v1/graphs/web/classify", `{"nodes":[0,1,2],"top_k":2}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("classify: status %d: %s", rec.Code, rec.Body.String())
	}
	var cr ClassifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Count != 3 || len(cr.Results[0].Top) != 2 {
		t.Errorf("classify response: %+v", cr)
	}

	// Estimate and labels routes work per graph.
	rec, _ = doJSON(t, srv, "POST", "/v1/graphs/web/estimate", `{"method":"mce"}`)
	if rec.Code != http.StatusOK {
		t.Errorf("estimate: status %d: %s", rec.Code, rec.Body.String())
	}
	rec, _ = doJSON(t, srv, "GET", "/v1/graphs/web/labels", "")
	if rec.Code != http.StatusOK {
		t.Errorf("labels: status %d", rec.Code)
	}

	// Stats reflect the build and the hits.
	rec, _ = doJSON(t, srv, "GET", "/v1/graphs/web", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("get: status %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	// The first classify was the build; estimate and labels were hits.
	if info.State != "built" || info.Builds != 1 || info.Hits != 2 || info.MemBytes <= 0 {
		t.Errorf("graph info after traffic: %+v", info)
	}
	if info.LastAccessUnixMS == 0 {
		t.Error("last access not recorded")
	}

	// List + admin.
	rec, _ = doJSON(t, srv, "GET", "/v1/graphs", "")
	var list GraphListResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if list.Count != 1 || list.Graphs[0].Name != "web" {
		t.Errorf("list: %+v", list)
	}
	rec, _ = doJSON(t, srv, "GET", "/v1/admin/registry", "")
	var admin AdminResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &admin); err != nil {
		t.Fatal(err)
	}
	if admin.Stats.Graphs != 1 || admin.Stats.Builds != 1 || len(admin.Graphs) != 1 {
		t.Errorf("admin: %+v", admin)
	}

	// Delete, then every route 404s.
	rec, _ = doJSON(t, srv, "DELETE", "/v1/graphs/web", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("delete: status %d: %s", rec.Code, rec.Body.String())
	}
	for _, probe := range [][2]string{
		{"DELETE", "/v1/graphs/web"},
		{"GET", "/v1/graphs/web"},
		{"POST", "/v1/graphs/web/classify"},
		{"POST", "/v1/graphs/nope/estimate"},
		{"GET", "/v1/graphs/nope/labels"},
	} {
		rec, out := doJSON(t, srv, probe[0], probe[1], "")
		if rec.Code != http.StatusNotFound {
			t.Errorf("%s %s after delete: status %d, want 404", probe[0], probe[1], rec.Code)
		}
		if _, ok := out["error"]; !ok {
			t.Errorf("%s %s: 404 without error body", probe[0], probe[1])
		}
	}
}

func TestGraphCreateValidation(t *testing.T) {
	srv := newMultiServer(0, Options{})
	for _, body := range []string{
		`{"synthetic":{"n":10,"m":20}}`,                                                // no name
		`{"name":"x y","synthetic":{"n":10,"m":20}}`,                                   // bad name
		`{"name":"ok"}`,                                                                // no source
		`{"name":"ok","synthetic":{"n":0,"m":0}}`,                                      // empty synthetic
		`{"name":"ok","synthetic":{"n":10,"m":20},"k":1}`,                              // bad k
		`{"name":"ok","synthetic":{"n":10,"m":20},"estimator":"bogus"}`,                // unknown estimator
		`{"name":"ok","inline":{"edges":"","labels":""}}`,                              // empty upload
		`{"name":"ok","inline":{"edges":"0\t1","labels":""}}`,                          // no seed labels
		`{"name":"ok","files":{"edges":"/e.tsv"}}`,                                     // missing labels path
		`{"name":"ok","synthetic":{"n":10,"m":20},"files":{"edges":"e","labels":"l"}}`, // two sources
		`{"name":"ok","unknown_field":1}`,
		`not json`,
	} {
		rec, out := doJSON(t, srv, "POST", "/v1/graphs", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400 (%s)", body, rec.Code, rec.Body.String())
		}
		if _, ok := out["error"]; !ok {
			t.Errorf("body %q: missing error field", body)
		}
	}
	// A warm create of an unbuildable spec (missing files) must not leave
	// the name registered.
	body := `{"name":"ghost","files":{"edges":"/does/not/exist.tsv","labels":"/nope.tsv"},"warm":true}`
	rec, _ := doJSON(t, srv, "POST", "/v1/graphs", body)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("warm bad files: status %d, want 422 (%s)", rec.Code, rec.Body.String())
	}
	rec, _ = doJSON(t, srv, "GET", "/v1/graphs/ghost", "")
	if rec.Code != http.StatusNotFound {
		t.Errorf("failed warm create left graph registered (status %d)", rec.Code)
	}
}

// TestGraphInlineUpload admits a tiny hand-written graph over HTTP and
// queries it: two triangles bridged by one edge, two seeds per triangle
// (adjacent seeds, so MCE sees labeled neighbor pairs and learns the
// homophily).
func TestGraphInlineUpload(t *testing.T) {
	srv := newMultiServer(0, Options{})
	edges := `0\t1\n0\t2\n1\t2\n3\t4\n3\t5\n4\t5\n2\t3\n`
	labels := `0\t0\n1\t0\n4\t1\n5\t1\n`
	body := fmt.Sprintf(`{"name":"tiny","k":2,"estimator":"mce","inline":{"edges":"%s","labels":"%s"},"warm":true}`, edges, labels)
	rec, _ := doJSON(t, srv, "POST", "/v1/graphs", body)
	if rec.Code != http.StatusCreated {
		t.Fatalf("inline create: status %d: %s", rec.Code, rec.Body.String())
	}
	var info registry.GraphInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.State != "built" || info.Nodes != 6 || info.Edges != 7 || info.Classes != 2 {
		t.Errorf("inline graph info: %+v", info)
	}
	rec, _ = doJSON(t, srv, "POST", "/v1/graphs/tiny/classify", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("inline classify: status %d: %s", rec.Code, rec.Body.String())
	}
	var cr ClassifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Count != 6 {
		t.Fatalf("classified %d nodes, want 6", cr.Count)
	}
	// The unlabeled bridge nodes take their triangle's label.
	if cr.Results[2].Label != 0 || cr.Results[3].Label != 1 {
		t.Errorf("inline classification: %+v", cr.Results)
	}
}

// TestTwoGraphsServedConcurrently is the multi-tenant acceptance test: two
// registered graphs answer interleaved classify traffic from concurrent
// clients through the full HTTP stack.
func TestTwoGraphsServedConcurrently(t *testing.T) {
	srv := newMultiServer(0, Options{})
	for _, tc := range []struct {
		name string
		n, m int
	}{{"alpha", 400, 2000}, {"beta", 250, 1200}} {
		rec, _ := doJSON(t, srv, "POST", "/v1/graphs", synthBody(tc.name, tc.n, tc.m))
		if rec.Code != http.StatusCreated {
			t.Fatalf("create %s: status %d", tc.name, rec.Code)
		}
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	const goros = 8
	var wg sync.WaitGroup
	errc := make(chan error, goros)
	for g := 0; g < goros; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name, n := "alpha", 400
			if g%2 == 1 {
				name, n = "beta", 250
			}
			for i := 0; i < 15; i++ {
				body := fmt.Sprintf(`{"nodes":[%d],"top_k":2}`, (g*37+i)%n)
				resp, err := http.Post(ts.URL+"/v1/graphs/"+name+"/classify",
					"application/json", strings.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("classify %s: status %d", name, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	for _, name := range []string{"alpha", "beta"} {
		rec, _ := doJSON(t, srv, "GET", "/v1/graphs/"+name, "")
		var info registry.GraphInfo
		if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
			t.Fatal(err)
		}
		if info.Builds != 1 {
			t.Errorf("%s built %d times under concurrent first requests, want 1", name, info.Builds)
		}
	}
}

// TestEvictionTransparentOverHTTP is the memory-pressure acceptance test
// over HTTP. With a budget that fits partially-released engines but not
// full ones, the tier-1 shed keeps BOTH graphs resident — alternating
// between them never rebuilds (that is the partial-release payoff: rebuild
// after pressure is a re-solve, not a re-parse). Under a budget below even
// a shed footprint the ladder escalates to full eviction and the evicted
// graph rebuilds transparently (with its H persisted) on next access.
func TestEvictionTransparentOverHTTP(t *testing.T) {
	classify := func(srv *Server, name string) {
		t.Helper()
		rec, _ := doJSON(t, srv, "POST", "/v1/graphs/"+name+"/classify", `{"nodes":[1]}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("classify %s: status %d: %s", name, rec.Code, rec.Body.String())
		}
	}
	adminStats := func(srv *Server) registry.Stats {
		t.Helper()
		rec, _ := doJSON(t, srv, "GET", "/v1/admin/registry", "")
		var admin AdminResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &admin); err != nil {
			t.Fatal(err)
		}
		return admin.Stats
	}

	// Tier 1: both engines stay resident shed; no rebuild ever happens.
	budget := factorgraph.EstimateEngineBytes(300, 1500, 3, false) * 3 / 2
	srv := newMultiServer(budget, Options{})
	for _, name := range []string{"hot", "cold"} {
		rec, _ := doJSON(t, srv, "POST", "/v1/graphs", synthBody(name, 300, 1500))
		if rec.Code != http.StatusCreated {
			t.Fatalf("create %s: status %d", name, rec.Code)
		}
	}
	classify(srv, "hot")
	classify(srv, "cold")
	classify(srv, "hot")
	st := adminStats(srv)
	if st.Builds != 2 || st.Evictions != 0 || st.Built != 2 {
		t.Errorf("tier-1 stats: %+v, want 2 builds, 0 evictions, 2 built (shed keeps both resident)", st)
	}
	if st.PartialReleases == 0 {
		t.Errorf("no partial releases under pressure: %+v", st)
	}
	if st.ResidentBytes <= 0 || st.ResidentBytes > budget {
		t.Errorf("resident %d outside (0, budget=%d]", st.ResidentBytes, budget)
	}

	// Tier 2: budget below a shed footprint — full evictions, transparent
	// rebuilds.
	budget = factorgraph.EstimateEngineBytes(300, 1500, 3, false) / 4
	srv = newMultiServer(budget, Options{})
	for _, name := range []string{"hot", "cold"} {
		rec, _ := doJSON(t, srv, "POST", "/v1/graphs", synthBody(name, 300, 1500))
		if rec.Code != http.StatusCreated {
			t.Fatalf("create %s: status %d", name, rec.Code)
		}
	}
	classify(srv, "hot")  // builds hot; evicted on release
	classify(srv, "cold") // builds cold; evicted on release
	classify(srv, "hot")  // transparent rebuild of hot
	st = adminStats(srv)
	if st.Builds != 3 || st.Evictions != 3 {
		t.Errorf("tier-2 stats: %+v, want 3 builds, 3 evictions", st)
	}
}

func TestClassifyGzip(t *testing.T) {
	srv, _ := newTestServer(t, 500, 3000)
	for _, stream := range []bool{false, true} {
		body := fmt.Sprintf(`{"top_k":2,"stream":%v}`, stream)
		req := httptest.NewRequest("POST", "/v1/classify", strings.NewReader(body))
		req.Header.Set("Accept-Encoding", "gzip")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("stream=%v: status %d: %s", stream, rec.Code, rec.Body.String())
		}
		if enc := rec.Header().Get("Content-Encoding"); enc != "gzip" {
			t.Fatalf("stream=%v: Content-Encoding %q, want gzip", stream, enc)
		}
		gz, err := gzip.NewReader(rec.Body)
		if err != nil {
			t.Fatalf("stream=%v: %v", stream, err)
		}
		if stream {
			sc := bufio.NewScanner(gz)
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			lines := 0
			for sc.Scan() {
				var r factorgraph.NodeResult
				if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
					t.Fatalf("line %d: %v", lines, err)
				}
				lines++
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
			if lines != 500 {
				t.Errorf("gzip stream: %d lines, want 500", lines)
			}
		} else {
			var cr ClassifyResponse
			if err := json.NewDecoder(gz).Decode(&cr); err != nil {
				t.Fatal(err)
			}
			if cr.Count != 500 {
				t.Errorf("gzip response: count %d, want 500", cr.Count)
			}
		}
	}
	// Clients that do not advertise gzip get identity responses.
	rec, _ := doJSON(t, srv, "POST", "/v1/classify", `{"stream":true}`)
	if enc := rec.Header().Get("Content-Encoding"); enc != "" {
		t.Errorf("unsolicited Content-Encoding %q", enc)
	}
	// Errors on gzip-accepting requests stay identity-encoded JSON.
	req := httptest.NewRequest("POST", "/v1/classify", strings.NewReader(`{"nodes":[99999],"stream":true}`))
	req.Header.Set("Accept-Encoding", "gzip")
	rec2 := httptest.NewRecorder()
	srv.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusBadRequest {
		t.Fatalf("invalid gzip request: status %d", rec2.Code)
	}
	if enc := rec2.Header().Get("Content-Encoding"); enc != "" {
		t.Errorf("error response Content-Encoding %q, want identity", enc)
	}
}

// TestFlushEveryConfigurable exercises a server configured to flush every
// record; the stream must still be complete and well-formed.
func TestFlushEveryConfigurable(t *testing.T) {
	srv := newMultiServer(0, Options{FlushEvery: 1})
	rec, _ := doJSON(t, srv, "POST", "/v1/graphs", synthBody("g", 200, 1000))
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: status %d", rec.Code)
	}
	rec, _ = doJSON(t, srv, "POST", "/v1/graphs/g/classify", `{"stream":true,"top_k":1}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("classify: status %d: %s", rec.Code, rec.Body.String())
	}
	sc := bufio.NewScanner(rec.Body)
	lines := 0
	for sc.Scan() {
		lines++
	}
	if lines != 200 {
		t.Errorf("flush-every-1 stream: %d lines, want 200", lines)
	}
}

// TestLegacyRoutesHitDefaultGraph confirms the PR 1 endpoints are aliases
// of /v1/graphs/default/...: a label patched through the legacy route is
// visible through the named route and vice versa.
func TestLegacyRoutesHitDefaultGraph(t *testing.T) {
	srv, eng := newTestServer(t, 300, 1500)
	node := -1
	for i, c := range eng.Seeds() {
		if c == factorgraph.Unlabeled {
			node = i
			break
		}
	}
	rec, _ := doJSON(t, srv, "PATCH", "/v1/labels", fmt.Sprintf(`{"set":{"%d":1}}`, node))
	if rec.Code != http.StatusOK {
		t.Fatalf("legacy patch: status %d", rec.Code)
	}
	rec, _ = doJSON(t, srv, "GET", "/v1/graphs/default/labels", "")
	var lr LabelsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Labels[fmt.Sprint(node)] != 1 {
		t.Errorf("label set via legacy route not visible on named route: %+v", lr.Labels[fmt.Sprint(node)])
	}
	rec, _ = doJSON(t, srv, "POST", "/v1/graphs/default/classify", `{"nodes":[0]}`)
	if rec.Code != http.StatusOK {
		t.Errorf("named classify on default graph: status %d", rec.Code)
	}
	// The default engine is pre-built (not spec-backed), so deleting it is
	// allowed but classify then 404s — the legacy routes degrade loudly,
	// not silently.
	rec, _ = doJSON(t, srv, "DELETE", "/v1/graphs/default", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("delete default: status %d", rec.Code)
	}
	rec, _ = doJSON(t, srv, "POST", "/v1/classify", `{"nodes":[0]}`)
	if rec.Code != http.StatusNotFound {
		t.Errorf("legacy classify after default delete: status %d, want 404", rec.Code)
	}
}
