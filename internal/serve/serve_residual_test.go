package serve

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// incrementalBody is a POST /v1/graphs body enabling the residual
// subsystem. The generous edge budget keeps small test graphs on the push
// path (their frontiers saturate long before the default budget expects).
func incrementalBody(name string, n, m int) string {
	return fmt.Sprintf(`{"name":%q,"synthetic":{"n":%d,"m":%d,"f":0.1,"seed":7},"incremental":true,"residual_edge_budget":256,"warm":true}`, name, n, m)
}

// TestIncrementalPatchOverHTTP: PATCH /labels on an incremental graph
// reports mode "residual" with pushed-node counts, and subsequent classify
// answers reflect the patch without a propagation.
func TestIncrementalPatchOverHTTP(t *testing.T) {
	srv := newMultiServer(0, Options{})
	rec, _ := doJSON(t, srv, "POST", "/v1/graphs", incrementalBody("inc", 500, 2500))
	if rec.Code != 201 {
		t.Fatalf("create: status %d: %s", rec.Code, rec.Body.String())
	}
	// Warm the residual state: the first classify pays the initial solve.
	rec, _ = doJSON(t, srv, "POST", "/v1/graphs/inc/classify", `{"nodes":[0]}`)
	if rec.Code != 200 {
		t.Fatalf("warm classify: status %d: %s", rec.Code, rec.Body.String())
	}

	rec, _ = doJSON(t, srv, "PATCH", "/v1/graphs/inc/labels", `{"set":{"3":2,"4":1}}`)
	if rec.Code != 200 {
		t.Fatalf("patch: status %d: %s", rec.Code, rec.Body.String())
	}
	var pr LabelsPatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Mode != "residual" {
		t.Errorf("patch mode = %q, want residual (resp %s)", pr.Mode, rec.Body.String())
	}
	if pr.PushedNodes == 0 || pr.TouchedEdges == 0 {
		t.Errorf("patch reported no push work: %+v", pr)
	}

	// The patched node serves its new label from live residual rows.
	rec, _ = doJSON(t, srv, "POST", "/v1/graphs/inc/classify", `{"nodes":[3]}`)
	var cr ClassifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cr); err != nil {
		t.Fatal(err)
	}
	if !cr.Residual {
		t.Errorf("post-patch classify did not report the residual path: %s", rec.Body.String())
	}
	if len(cr.Results) != 1 || cr.Results[0].Label != 2 {
		t.Errorf("patched node label: %+v", cr.Results)
	}

	// A non-incremental graph reports mode "full".
	rec, _ = doJSON(t, srv, "POST", "/v1/graphs", synthBody("plain", 500, 2500))
	if rec.Code != 201 {
		t.Fatalf("create plain: status %d", rec.Code)
	}
	rec, _ = doJSON(t, srv, "PATCH", "/v1/graphs/plain/labels", `{"set":{"3":2}}`)
	if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Mode != "full" {
		t.Errorf("plain patch mode = %q, want full", pr.Mode)
	}
}

// TestIncrementalWhatIfOverHTTP: extra_seeds queries on an incremental
// graph report overlay push/clone counts and do not leak into the graph.
func TestIncrementalWhatIfOverHTTP(t *testing.T) {
	srv := newMultiServer(0, Options{})
	if rec, _ := doJSON(t, srv, "POST", "/v1/graphs", incrementalBody("inc", 500, 2500)); rec.Code != 201 {
		t.Fatalf("create: status %d", rec.Code)
	}
	rec, _ := doJSON(t, srv, "POST", "/v1/graphs/inc/classify",
		`{"nodes":[10],"top_k":2,"extra_seeds":{"10":1}}`)
	if rec.Code != 200 {
		t.Fatalf("what-if: status %d: %s", rec.Code, rec.Body.String())
	}
	var cr ClassifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cr); err != nil {
		t.Fatal(err)
	}
	if !cr.Residual {
		t.Errorf("what-if did not use the residual overlay: %s", rec.Body.String())
	}
	if cr.PushedNodes == 0 || cr.ClonedRows == 0 {
		t.Errorf("overlay reported no work: %+v", cr)
	}
	if cr.Results[0].Label != 1 {
		t.Errorf("overlaid node label %d, want 1", cr.Results[0].Label)
	}
	// Engine state untouched: the same node answers its base label and the
	// response carries no overlay counters.
	rec, _ = doJSON(t, srv, "POST", "/v1/graphs/inc/classify", `{"nodes":[10]}`)
	var base ClassifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &base); err != nil {
		t.Fatal(err)
	}
	if base.PushedNodes != 0 || base.ClonedRows != 0 {
		t.Errorf("plain query reports overlay counters: %+v", base)
	}
}

// TestValidationOfResidualSpec: residual knobs without incremental are
// rejected at registration, not at first build.
func TestValidationOfResidualSpec(t *testing.T) {
	srv := newMultiServer(0, Options{})
	rec, _ := doJSON(t, srv, "POST", "/v1/graphs",
		`{"name":"bad","synthetic":{"n":100,"m":500},"residual_tol":1e-6}`)
	if rec.Code != 400 {
		t.Errorf("residual_tol without incremental: status %d, want 400", rec.Code)
	}
	rec, _ = doJSON(t, srv, "POST", "/v1/graphs",
		`{"name":"bad2","synthetic":{"n":100,"m":500},"incremental":true,"residual_tol":-1}`)
	if rec.Code != 400 {
		t.Errorf("negative residual_tol: status %d, want 400", rec.Code)
	}
}

// TestEstimateGzip: /v1/estimate honors Accept-Encoding: gzip.
func TestEstimateGzip(t *testing.T) {
	srv, _ := newTestServer(t, 500, 3000)
	req := httptest.NewRequest("POST", "/v1/estimate", strings.NewReader(`{"method":"mce"}`))
	req.Header.Set("Accept-Encoding", "gzip")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("estimate: status %d: %s", rec.Code, rec.Body.String())
	}
	if enc := rec.Header().Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("Content-Encoding %q, want gzip", enc)
	}
	zr, err := gzip.NewReader(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	var er EstimateResponse
	if err := json.Unmarshal(blob, &er); err != nil {
		t.Fatalf("bad gzipped body: %v", err)
	}
	if er.Method == "" || len(er.H) != 3 {
		t.Errorf("estimate response: %+v", er)
	}
	// Without the header the body stays uncompressed.
	req = httptest.NewRequest("POST", "/v1/estimate", strings.NewReader(`{"method":"mce"}`))
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if enc := rec.Header().Get("Content-Encoding"); enc != "" {
		t.Fatalf("unrequested Content-Encoding %q", enc)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
}
